// Scenario: sizing a cache for a mail-server volume (the paper's Exchange
// traces are the motivating workload). Replays an exch-like synthetic
// trace against SRC and against Bcache-over-RAID-5 and reports which
// delivers more throughput from the same four SSDs.
#include <cstdio>
#include <memory>

#include "baselines/bcache_like.hpp"
#include "flash/sim_ssd.hpp"
#include "hdd/iscsi_target.hpp"
#include "raid/raid_device.hpp"
#include "src_cache/src_cache.hpp"
#include "workload/runner.hpp"
#include "workload/trace_synth.hpp"

using namespace srcache;

namespace {

flash::SsdSpec small_ssd() {
  flash::SsdSpec spec = flash::spec_840pro_128();
  spec.capacity_bytes = 3 * GiB;
  spec.pages_per_block = 512;
  return spec;
}

// The Exchange server trace profile from Table 6 (exch9), scaled down.
workload::TraceSynth::Config exchange_profile() {
  workload::TraceSynth::Config cfg;
  cfg.spec = workload::TraceSpec{"exch9", 21.06, 110.46, 31};
  cfg.footprint_blocks = 10 * GiB / kBlockSize;
  cfg.seed = 99;
  return cfg;
}

struct Outcome {
  double mbps;
  double hit;
};

Outcome run(cache::CacheDevice* cache,
            std::vector<blockdev::BlockDevice*> ssds) {
  workload::TraceSynth trace(exchange_profile());
  workload::Runner runner(cache, std::move(ssds));
  workload::RunConfig rc;
  rc.threads_per_gen = 4;
  rc.iodepth = 4;
  rc.duration = 5 * sim::kSec;
  rc.warmup_bytes = 2 * GiB;
  const auto res = runner.run({&trace}, rc);
  return {res.throughput_mbps, res.hit_ratio};
}

}  // namespace

int main() {
  std::printf("Mail-server cache shoot-out: 4x commodity SATA SSDs, "
              "Exchange-like workload (21 KiB avg, 31%% reads)\n\n");
  const flash::SsdSpec spec = small_ssd();

  // Candidate A: SRC, paper defaults.
  Outcome src_result{};
  {
    std::vector<std::unique_ptr<flash::SimSsd>> ssds;
    std::vector<blockdev::BlockDevice*> ptrs;
    for (int i = 0; i < 4; ++i) {
      ssds.push_back(std::make_unique<flash::SimSsd>(spec, false));
      ssds.back()->precondition();
      ptrs.push_back(ssds.back().get());
    }
    hdd::IscsiConfig pc;
    pc.disk.capacity_bytes = 32 * GiB;
    pc.disk.track_content = false;
    auto primary = std::make_unique<hdd::IscsiTarget>(pc);
    src::SrcConfig cfg;
    cfg.erase_group_bytes = spec.erase_group_bytes();
    cfg.region_bytes_per_ssd = 18 * cfg.erase_group_bytes;
    cfg.verify_checksums = false;
    src::SrcCache cache(cfg, ptrs, primary.get());
    cache.format(0);
    src_result = run(&cache, ptrs);
  }

  // Candidate B: Bcache over md-RAID-5 of the same SSDs.
  Outcome bcache_result{};
  {
    std::vector<std::unique_ptr<flash::SimSsd>> ssds;
    std::vector<blockdev::BlockDevice*> ptrs;
    for (int i = 0; i < 4; ++i) {
      ssds.push_back(std::make_unique<flash::SimSsd>(spec, false));
      ssds.back()->precondition();
      ptrs.push_back(ssds.back().get());
    }
    raid::RaidDevice raid5(raid::RaidConfig{raid::RaidLevel::kRaid5, 1}, ptrs);
    hdd::IscsiConfig pc;
    pc.disk.capacity_bytes = 32 * GiB;
    pc.disk.track_content = false;
    auto primary = std::make_unique<hdd::IscsiTarget>(pc);
    baselines::BcacheConfig cfg;
    cfg.cache_blocks = 3 * (18 * spec.erase_group_bytes() / kBlockSize);
    cfg.writeback_percent = 0.9;
    baselines::BcacheLike cache(cfg, &raid5, primary.get());
    bcache_result = run(&cache, ptrs);
  }

  std::printf("SRC (RAID-5, Sel-GC):   %7.1f MB/s  hit %.2f\n",
              src_result.mbps, src_result.hit);
  std::printf("Bcache over RAID-5:     %7.1f MB/s  hit %.2f\n",
              bcache_result.mbps, bcache_result.hit);
  std::printf("\n=> %s delivers %.1fx the throughput from identical "
              "hardware.\n",
              src_result.mbps > bcache_result.mbps ? "SRC" : "Bcache",
              src_result.mbps > bcache_result.mbps
                  ? src_result.mbps / bcache_result.mbps
                  : bcache_result.mbps / src_result.mbps);
  return 0;
}
