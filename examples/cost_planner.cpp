// Scenario: the paper's §5.3 question as a tool — "which SSDs should I
// buy for my cache tier?" Evaluates every catalog configuration against a
// user workload profile and prints the winner per criterion.
#include <cstdio>

#include "cost/cost_model.hpp"
#include "flash/ssd_specs.hpp"

using namespace srcache;

int main() {
  // The user's planning inputs: how much the tier must absorb per day and
  // a conservative end-to-end write amplification (cache layer x FTL).
  const double daily_write_bytes = 512e9;  // the paper's assumption
  const double write_amplification = 2.5;

  std::printf("Cost planner: 512 GB/day of cache writes, WA %.1f\n\n",
              write_amplification);
  std::printf("%-14s %6s %9s %8s %12s %14s\n", "config", "$", "GB/$",
              "MB/s*", "lifetime(d)", "lifetime(d)/$");

  struct Candidate {
    cost::ArrayConfig array;
    double nominal_mbps;  // aggregate sequential-write capability
  };
  std::vector<Candidate> candidates;
  for (const auto& spec : flash::table12_catalog()) {
    const int count = spec.interface == "NVMe" ? 1 : 4;
    const double per_drive = std::min(
        spec.nand_write_mbps(), spec.interface_mbps);
    // RAID-5 arrays lose one drive's bandwidth to parity.
    const double mbps =
        count == 1 ? per_drive : per_drive * (count - 1);
    candidates.push_back({cost::ArrayConfig{spec, count}, mbps});
  }

  const Candidate* best_perf = nullptr;
  const Candidate* best_perf_per_dollar = nullptr;
  const Candidate* best_life_per_dollar = nullptr;
  double bp = 0, bppd = 0, blpd = 0;

  for (const auto& c : candidates) {
    const auto report = cost::evaluate(c.array, c.nominal_mbps,
                                       daily_write_bytes, write_amplification);
    std::printf("%-14s %6.0f %9.2f %8.0f %12.0f %14.2f\n",
                c.array.spec.name.c_str(), c.array.total_price(),
                c.array.gb_per_dollar(), report.throughput_mbps,
                report.lifetime_days, report.lifetime_days_per_dollar);
    if (report.throughput_mbps > bp) {
      bp = report.throughput_mbps;
      best_perf = &c;
    }
    if (report.mbps_per_dollar > bppd) {
      bppd = report.mbps_per_dollar;
      best_perf_per_dollar = &c;
    }
    if (report.lifetime_days_per_dollar > blpd) {
      blpd = report.lifetime_days_per_dollar;
      best_life_per_dollar = &c;
    }
  }

  std::printf("\n* nominal aggregate write bandwidth (interface/NAND bound)\n");
  std::printf("\nbest raw performance:     %s\n",
              best_perf->array.spec.name.c_str());
  std::printf("best performance/$:       %s\n",
              best_perf_per_dollar->array.spec.name.c_str());
  std::printf("best lifetime/$:          %s\n",
              best_life_per_dollar->array.spec.name.c_str());
  std::printf("\n(the paper's conclusion: TLC arrays win MB/s per dollar, MLC"
              " arrays win lifetime per dollar, the single NVMe drive wins"
              " raw speed but is a fail-stop risk)\n");
  return 0;
}
