// Quickstart: build an SRC cache over four simulated commodity SSDs in
// front of an iSCSI HDD array, run a mixed workload, and read the gauges.
//
//   $ ./build/examples/quickstart
//
// This walks the whole public API surface: SSD specs, devices, SrcConfig,
// SrcCache, the FIO-style generator and the Runner.
#include <cstdio>
#include <memory>

#include "flash/sim_ssd.hpp"
#include "hdd/iscsi_target.hpp"
#include "src_cache/src_cache.hpp"
#include "workload/generators.hpp"
#include "workload/runner.hpp"

using namespace srcache;

int main() {
  // 1. Four commodity SATA SSDs (Samsung 840 Pro class, scaled to 3 GiB so
  // the example runs in seconds) — preconditioned to steady state.
  flash::SsdSpec spec = flash::spec_840pro_128();
  spec.capacity_bytes = 3 * GiB;
  spec.pages_per_block = 512;  // 2 MiB flash blocks at this small capacity
  std::vector<std::unique_ptr<flash::SimSsd>> ssds;
  std::vector<blockdev::BlockDevice*> ssd_ptrs;
  for (int i = 0; i < 4; ++i) {
    ssds.push_back(std::make_unique<flash::SimSsd>(spec, false));
    ssds.back()->precondition();
    ssd_ptrs.push_back(ssds.back().get());
  }
  std::printf("SSD: %s, erase group %llu MiB, NAND write %.0f MB/s\n",
              spec.name.c_str(),
              static_cast<unsigned long long>(spec.erase_group_bytes() / MiB),
              spec.nand_write_mbps());

  // 2. Primary storage: 8-disk RAID-10 behind a 1 Gbps iSCSI link.
  hdd::IscsiConfig pcfg;
  pcfg.disk.capacity_bytes = 64 * GiB;
  pcfg.disk.track_content = false;
  auto primary = std::make_unique<hdd::IscsiTarget>(pcfg);

  // 3. SRC with the paper's default design choices (Table 7): RAID-5
  // stripes, NPC clean segments, Sel-GC with FIFO victims, UMAX 90%,
  // flush per segment group.
  src::SrcConfig cfg;
  cfg.erase_group_bytes = spec.erase_group_bytes();
  cfg.region_bytes_per_ssd = 18 * cfg.erase_group_bytes;
  cfg.verify_checksums = false;
  cfg.twait = 50 * sim::kMs;  // partial-segment timeout
  // Uniform-random traffic has no cold data for Sel-GC to shed, so cap
  // utilization earlier than the paper's 90% skewed-workload default.
  cfg.umax = 0.75;
  src::SrcCache cache(cfg, ssd_ptrs, primary.get());
  cache.format(0);
  std::printf("cache: %s\n", cfg.describe().c_str());
  std::printf("cache data capacity: %llu MiB\n\n",
              static_cast<unsigned long long>(
                  blocks_to_bytes(cfg.capacity_blocks()) / MiB));

  // 4. A 70/30 write/read workload, 8 KiB requests, over a 4 GiB hot
  // region of the volume (a bit larger than the cache).
  workload::FioGen::Config fio;
  fio.span_blocks = 4 * GiB / kBlockSize;
  fio.req_blocks = 2;
  fio.read_pct = 30;
  fio.seed = 42;
  workload::FioGen gen(fio);

  workload::Runner runner(&cache, ssd_ptrs);
  workload::RunConfig rc;
  rc.threads_per_gen = 4;
  rc.iodepth = 8;
  rc.duration = 5 * sim::kSec;
  rc.warmup_bytes = 6 * GiB;  // fill the cache before measuring
  const workload::RunResult res = runner.run({&gen}, rc);

  // 5. The gauges the paper reports.
  std::printf("throughput:        %.1f MB/s\n", res.throughput_mbps);
  std::printf("hit ratio:         %.2f\n", res.hit_ratio);
  std::printf("I/O amplification: %.2f\n", res.io_amplification);
  const auto& ex = cache.extra();
  std::printf("segments written:  %llu (%llu partial)\n",
              static_cast<unsigned long long>(ex.segments_written),
              static_cast<unsigned long long>(ex.partial_segments));
  std::printf("SG reclaims:       %llu (%llu S2S, %llu S2D)\n",
              static_cast<unsigned long long>(ex.sg_reclaims),
              static_cast<unsigned long long>(ex.s2s_reclaims),
              static_cast<unsigned long long>(ex.s2d_reclaims));
  std::printf("utilization:       %.2f\n", cache.utilization());
  return 0;
}
