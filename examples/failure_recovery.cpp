// Scenario: what actually happens when things break.
//
// Demonstrates the reliability machinery of §4.1/§4.3 end to end:
//   1. crash + restart -> recovery scan restores dirty AND clean data;
//   2. silent corruption -> checksum detects it, parity repairs it;
//   3. whole-SSD failure -> parity-protected data survives, NPC clean
//      blocks degrade to misses, and the array keeps serving.
#include <cstdio>
#include <memory>

#include "block/mem_disk.hpp"
#include "src_cache/src_cache.hpp"

using namespace srcache;

namespace {

struct Stack {
  std::vector<std::unique_ptr<blockdev::MemDisk>> ssds;
  std::unique_ptr<blockdev::MemDisk> primary;
  std::unique_ptr<src::SrcCache> cache;
  src::SrcConfig cfg;

  Stack() {
    cfg.num_ssds = 4;
    cfg.chunk_bytes = 64 * KiB;
    cfg.erase_group_bytes = 1 * MiB;
    cfg.region_bytes_per_ssd = 16 * MiB;
    cfg.raid = src::SrcRaidLevel::kRaid5;
    blockdev::MemDiskConfig fast;
    fast.capacity_blocks = 20 * MiB / kBlockSize;
    for (u32 i = 0; i < 4; ++i)
      ssds.push_back(std::make_unique<blockdev::MemDisk>(fast));
    blockdev::MemDiskConfig slow;
    slow.capacity_blocks = 1 * GiB / kBlockSize;
    slow.op_latency = 5 * sim::kMs;
    primary = std::make_unique<blockdev::MemDisk>(slow);
    attach();
    cache->format(0);
  }

  void attach() {
    std::vector<blockdev::BlockDevice*> ptrs;
    for (auto& s : ssds) ptrs.push_back(s.get());
    cache = std::make_unique<src::SrcCache>(cfg, ptrs, primary.get());
  }
};

u64 read_block(src::SrcCache& c, u64 lba, sim::SimTime now) {
  u64 tag = 0;
  cache::AppRequest r;
  r.now = now;
  r.lba = lba;
  r.nblocks = 1;
  r.tags_out = &tag;
  c.submit(r);
  return tag;
}

}  // namespace

int main() {
  Stack s;
  // Write a full segment's worth of recognisable data.
  const u64 n = s.cfg.segment_data_slots(true) * 4;
  std::vector<u64> tags(n);
  sim::SimTime t = 0;
  for (u64 i = 0; i < n; ++i) {
    tags[i] = 0xFACE0000 + i;
    cache::AppRequest r;
    r.now = t;
    r.is_write = true;
    r.lba = i;
    r.nblocks = 1;
    r.tags = &tags[i];
    t = s.cache->submit(r);
  }
  t = s.cache->flush(t);
  std::printf("wrote %llu dirty blocks, sealed into segments\n",
              static_cast<unsigned long long>(n));

  // --- 1. Crash and recover -------------------------------------------------
  s.attach();  // all in-memory state gone
  sim::SimTime recovered_at = 0;
  const Status st = s.cache->recover(t, &recovered_at);
  std::printf("\n[crash] recovery: %s, %llu blocks restored in %.1f ms "
              "(virtual)\n",
              st.is_ok() ? "OK" : st.to_string().c_str(),
              static_cast<unsigned long long>(s.cache->cached_blocks()),
              sim::to_ms(recovered_at - t));
  u64 ok = 0;
  for (u64 i = 0; i < n; ++i)
    if (read_block(*s.cache, i, recovered_at) == tags[i]) ++ok;
  std::printf("[crash] verified %llu/%llu blocks intact\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(n));

  // --- 2. Silent corruption -------------------------------------------------
  const u64 sg1_base = s.cfg.erase_group_bytes / kBlockSize;
  s.ssds[0]->corrupt(sg1_base + 1);  // first data block of segment 0, SSD 0
  const auto scrub = s.cache->scrub(recovered_at + sim::kSec);
  const auto& ex = s.cache->extra();
  std::printf("\n[scrub] corrupted one on-SSD block; scrub scanned %llu, "
              "repaired %llu (checksum errors seen: %llu)\n",
              static_cast<unsigned long long>(scrub.scanned),
              static_cast<unsigned long long>(scrub.repaired),
              static_cast<unsigned long long>(ex.checksum_errors));
  ok = 0;
  for (u64 i = 0; i < n; ++i)
    if (read_block(*s.cache, i, recovered_at + sim::kSec) == tags[i]) ++ok;
  std::printf("[scrub] verified %llu/%llu after repair\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(n));

  // --- 3. Whole-SSD failure ---------------------------------------------------
  s.ssds[2]->fail();
  s.cache->on_ssd_failure(2);
  ok = 0;
  for (u64 i = 0; i < n; ++i)
    if (read_block(*s.cache, i, recovered_at + 2 * sim::kSec) == tags[i]) ++ok;
  std::printf("\n[fail-stop] SSD 2 died; verified %llu/%llu dirty blocks via "
              "on-the-fly reconstruction (lost dirty: %llu, lost clean: %llu)\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(ex.lost_dirty_blocks),
              static_cast<unsigned long long>(ex.lost_clean_blocks));
  std::printf("\nRAID-5 SRC: zero data loss across all three incidents.\n");
  return ok == n ? 0 : 1;
}
