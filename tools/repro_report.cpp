// repro_report: the regression end of the REPRO_JSON loop.
//
// Loads one or two REPRO_JSON documents (schema srcache-repro-v1 or -v2,
// written by any bench binary with REPRO_JSON=<path>):
//
//   repro_report A.json            per-run summary of one document
//   repro_report A.json B.json     A/B comparison: A is the baseline, B the
//                                  candidate; exits 1 when B regresses any
//                                  matched run beyond the thresholds
//
// Options:
//   --thr-throughput F   max relative throughput drop        (default 0.05)
//   --thr-p99 F          max relative read/write p99 increase (default 0.25)
//   --thr-waf F          max relative I/O-amplification increase (default 0.25)
//   --csv DIR            write each run's embedded time series (v2 only) as
//                        DIR/<bench>__<name>.csv for plotting
//   --tenants            per-tenant partition view of every run that carries
//                        a v3 "tenants" block (share targets, hit ratios,
//                        adapt epochs/rebalances)
//   --assert-hit-gt C B  exit 1 unless run C's aggregate hit_ratio is
//                        strictly greater than run B's (names match the
//                        "name" field; first document only) — the CI gate
//                        for "adaptive beats the static split"
//   --assert-tier ON OFF exit 1 unless run ON (tier enabled) wrote strictly
//                        fewer flash blocks (ssd.write_blocks) than run OFF
//                        at an equal-or-better aggregate hit_ratio — the CI
//                        gate for "the compressed DRAM tier pays for itself"
//   --digest             print crc32c of each document minus its "perf"
//                        section (the only execution-dependent part, v4);
//                        with two files, exit 1 on digest mismatch — the CI
//                        gate for "sharded == serial, bit for bit"
//   --slo                per-run SLO watchdog summary of every run carrying
//                        a v5 "slo" block (policy, per-epoch verdicts, burn
//                        rate); exits 1 when any run's SLO is breached — the
//                        CI gate for "the run held its service levels"
//   --frontier           hit-ratio vs NAND-write-amplification view of every
//                        "<Trace>/<eviction>+<admission>" run (written by
//                        bench_policy_frontier). NAND WA = SSD pages
//                        programmed (host + device GC) per application
//                        block. One document: per-trace Pareto table. Two
//                        documents: the CI gate — exits 1 when a baseline
//                        frontier run is missing from the candidate, when a
//                        policy is Pareto-dominated in the candidate but was
//                        not in the baseline, or when the paper anchor
//                        (*/paper+always) regresses its WA beyond --thr-waf
//   --frontier-csv PATH  write the frontier points (of the candidate when
//                        two documents are given) as one CSV for artifacts
//
// Comparison is by field name, so a v2 baseline checks cleanly against a v3
// candidate: the added "tenants"/"adapt"/"trace" blocks are simply ignored.
// Documents carrying a v4 "perf" section additionally get a wall-clock
// summary (simulated-ops/sec, per-shard breakdown) and, in A/B mode, a
// speedup line — informational only, wall clock never gates.
//
// Exit codes: 0 = ok, 1 = regression (or baseline run missing from B, or a
// failed --assert-hit-gt, or a --digest mismatch), 2 = usage / I/O / parse
// error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <span>

#include "common/crc32c.hpp"
#include "common/table.hpp"
#include "obs/json.hpp"
#include "obs/timeseries.hpp"

namespace {

using srcache::common::Table;
using srcache::obs::JsonValue;
using srcache::obs::TimeSeries;

struct Options {
  double thr_throughput = 0.05;
  double thr_p99 = 0.25;
  double thr_waf = 0.25;
  std::string csv_dir;
  bool tenants = false;
  bool digest = false;
  bool slo = false;
  bool frontier = false;
  std::string frontier_csv;
  std::string assert_cand;  // --assert-hit-gt: candidate run name
  std::string assert_base;  // --assert-hit-gt: baseline run name
  std::string tier_on;      // --assert-tier: tier-enabled run name
  std::string tier_off;     // --assert-tier: tier-disabled run name
  std::vector<std::string> files;
};

struct Run {
  std::string bench;
  std::string name;
  const JsonValue* json = nullptr;
};

struct Doc {
  std::string schema;
  JsonValue root;
  std::vector<Run> runs;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--thr-throughput F] [--thr-p99 F] [--thr-waf F]\n"
      "       %*s [--csv DIR] [--tenants] [--assert-hit-gt CAND BASE]\n"
      "       %*s [--assert-tier ON OFF] [--digest] [--slo] [--frontier]\n"
      "       %*s [--frontier-csv PATH]\n"
      "           baseline.json [candidate.json]\n",
      argv0, static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "",
      static_cast<int>(std::strlen(argv0)), "");
  return 2;
}

bool parse_args(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      *out = std::strtod(argv[++i], &end);
      return end != nullptr && *end == '\0' && *out >= 0.0;
    };
    if (a == "--thr-throughput") {
      if (!next(&opt->thr_throughput)) return false;
    } else if (a == "--thr-p99") {
      if (!next(&opt->thr_p99)) return false;
    } else if (a == "--thr-waf") {
      if (!next(&opt->thr_waf)) return false;
    } else if (a == "--csv") {
      if (i + 1 >= argc) return false;
      opt->csv_dir = argv[++i];
    } else if (a == "--tenants") {
      opt->tenants = true;
    } else if (a == "--digest") {
      opt->digest = true;
    } else if (a == "--slo") {
      opt->slo = true;
    } else if (a == "--frontier") {
      opt->frontier = true;
    } else if (a == "--frontier-csv") {
      if (i + 1 >= argc) return false;
      opt->frontier_csv = argv[++i];
    } else if (a == "--assert-hit-gt") {
      if (i + 2 >= argc) return false;
      opt->assert_cand = argv[++i];
      opt->assert_base = argv[++i];
    } else if (a == "--assert-tier") {
      if (i + 2 >= argc) return false;
      opt->tier_on = argv[++i];
      opt->tier_off = argv[++i];
    } else if (!a.empty() && a[0] == '-') {
      return false;
    } else {
      opt->files.push_back(a);
    }
  }
  return opt->files.size() == 1 || opt->files.size() == 2;
}

bool load_doc(const std::string& path, Doc* doc) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "repro_report: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = srcache::obs::parse_json(buf.str());
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "repro_report: %s: %s\n", path.c_str(),
                 parsed.status().to_string().c_str());
    return false;
  }
  doc->root = std::move(parsed).take();
  const JsonValue* schema = doc->root.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      !schema->string.starts_with("srcache-repro-v")) {
    std::fprintf(stderr, "repro_report: %s: not a REPRO_JSON document\n",
                 path.c_str());
    return false;
  }
  doc->schema = schema->string;
  const JsonValue* runs = doc->root.find("runs");
  if (runs == nullptr || !runs->is_array()) {
    std::fprintf(stderr, "repro_report: %s: missing \"runs\"\n", path.c_str());
    return false;
  }
  for (const JsonValue& r : runs->array) {
    const JsonValue* bench = r.find("bench");
    const JsonValue* name = r.find("name");
    if (bench == nullptr || name == nullptr) continue;
    doc->runs.push_back({bench->string, name->string, &r});
  }
  return true;
}

double metric(const JsonValue& run, std::string_view key) {
  return run.number_or(key, 0.0);
}

double p99(const JsonValue& run, const char* dir) {
  const JsonValue* lat = run.find("latency_ns");
  if (lat == nullptr) return 0.0;
  const JsonValue* d = lat->find(dir);
  return d == nullptr ? 0.0 : d->number_or("p99", 0.0);
}

size_t timeseries_samples(const JsonValue& run) {
  const JsonValue* ts = run.find("timeseries");
  if (ts == nullptr) return 0;
  const JsonValue* samples = ts->find("samples");
  return samples != nullptr && samples->is_array() ? samples->array.size() : 0;
}

std::string sanitize(const std::string& s) {
  std::string out;
  for (char c : s)
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  return out;
}

// Writes DIR/<bench>__<name>.csv for every run that embeds a time series.
bool export_csv(const Doc& doc, const std::string& dir) {
  bool all_ok = true;
  size_t written = 0;
  for (const Run& run : doc.runs) {
    const JsonValue* ts = run.json->find("timeseries");
    if (ts == nullptr) continue;
    auto parsed = TimeSeries::from_json(*ts);
    if (!parsed.is_ok()) {
      std::fprintf(stderr, "repro_report: %s/%s: %s\n", run.bench.c_str(),
                   run.name.c_str(), parsed.status().to_string().c_str());
      all_ok = false;
      continue;
    }
    const std::string path =
        dir + "/" + sanitize(run.bench) + "__" + sanitize(run.name) + ".csv";
    std::ofstream out(path, std::ios::binary);
    if (!out || !(out << parsed.value().to_csv())) {
      std::fprintf(stderr, "repro_report: cannot write %s\n", path.c_str());
      all_ok = false;
      continue;
    }
    std::printf("wrote %s (%zu samples)\n", path.c_str(),
                parsed.value().samples.size());
    ++written;
  }
  if (written == 0)
    std::printf("--csv: no runs carry a time series "
                "(run the bench with REPRO_TIMESERIES_MS set)\n");
  return all_ok;
}

// crc32c over the canonical serialization of the document minus its "perf"
// section. Everything else in a REPRO_JSON document is deterministic, so two
// runs of the same experiment — at any REPRO_SHARDS/REPRO_THREADS — must
// produce the same digest.
srcache::u32 digest_minus_perf(const Doc& doc) {
  JsonValue stripped = doc.root;
  if (stripped.is_object()) {
    std::erase_if(stripped.object,
                  [](const auto& kv) { return kv.first == "perf"; });
  }
  const std::string canon = srcache::obs::to_json(stripped);
  return srcache::common::crc32c(std::span(
      reinterpret_cast<const srcache::u8*>(canon.data()), canon.size()));
}

// Wall-clock summary of a v4 "perf" section: simulated-ops/sec per run plus
// the per-shard lane breakdown. Informational only — never gates, never
// digested.
void print_perf(const Doc& doc) {
  const JsonValue* perf = doc.root.find("perf");
  if (perf == nullptr) return;
  std::printf("perf: shards=%.0f threads=%.0f (wall-clock; outside --digest)\n",
              perf->number_or("shards", 0.0), perf->number_or("threads", 0.0));
  const JsonValue* runs = perf->find("runs");
  if (runs == nullptr || !runs->is_array()) return;
  Table t({"bench", "run", "wall s", "sim-ops/s", "per-shard wall s"});
  for (const JsonValue& r : runs->array) {
    std::string lanes;
    if (const JsonValue* ps = r.find("per_shard");
        ps != nullptr && ps->is_array()) {
      for (const JsonValue& s : ps->array) {
        if (!lanes.empty()) lanes += " ";
        lanes += Table::num(s.number_or("wall_seconds", 0.0), 2);
      }
    }
    const JsonValue* bench = r.find("bench");
    const JsonValue* name = r.find("name");
    t.add_row({bench != nullptr ? bench->string : "?",
               name != nullptr ? name->string : "?",
               Table::num(r.number_or("wall_seconds", 0.0), 2),
               Table::num(r.number_or("sim_ops_per_sec", 0.0), 0), lanes});
  }
  t.print();
}

// A/B wall-clock speedup over matched perf runs (v4). Kept out of the
// regression verdict: host load and shard counts legitimately differ
// between the two documents.
void print_speedup(const Doc& base, const Doc& cand) {
  const JsonValue* pa = base.root.find("perf");
  const JsonValue* pb = cand.root.find("perf");
  if (pa == nullptr || pb == nullptr) return;
  const JsonValue* ra = pa->find("runs");
  const JsonValue* rb = pb->find("runs");
  if (ra == nullptr || !ra->is_array() || rb == nullptr || !rb->is_array())
    return;
  std::printf(
      "\nwall-clock speedup, baseline shards=%.0f vs candidate shards=%.0f "
      "(informational):\n",
      pa->number_or("shards", 0.0), pb->number_or("shards", 0.0));
  Table t({"bench", "run", "base ops/s", "cand ops/s", "speedup"});
  for (const JsonValue& a : ra->array) {
    const JsonValue* ab = a.find("bench");
    const JsonValue* an = a.find("name");
    if (ab == nullptr || an == nullptr) continue;
    for (const JsonValue& b : rb->array) {
      const JsonValue* bb = b.find("bench");
      const JsonValue* bn = b.find("name");
      if (bb == nullptr || bn == nullptr || bb->string != ab->string ||
          bn->string != an->string)
        continue;
      const double oa = a.number_or("sim_ops_per_sec", 0.0);
      const double ob = b.number_or("sim_ops_per_sec", 0.0);
      t.add_row({ab->string, an->string, Table::num(oa, 0), Table::num(ob, 0),
                 oa > 0.0 ? Table::num(ob / oa, 2) + "x" : "-"});
      break;
    }
  }
  t.print();
}

void print_summary(const std::string& path, const Doc& doc) {
  std::printf("%s  (%s, %zu runs, scale=%g, %gs virtual)\n", path.c_str(),
              doc.schema.c_str(), doc.runs.size(),
              doc.root.number_or("scale", 0.0),
              doc.root.number_or("virtual_seconds", 0.0));
  Table t({"bench", "run", "MB/s", "IOA", "hit", "r p99 us", "w p99 us",
           "clamped", "ts samples"});
  for (const Run& run : doc.runs) {
    const JsonValue* lat = run.json->find("latency_ns");
    const double clamped =
        lat == nullptr ? 0.0 : lat->number_or("clamped", 0.0);
    t.add_row({run.bench, run.name,
               Table::num(metric(*run.json, "throughput_mbps"), 1),
               Table::num(metric(*run.json, "io_amplification"), 2),
               Table::num(metric(*run.json, "hit_ratio"), 3),
               Table::num(p99(*run.json, "read") / 1e3, 1),
               Table::num(p99(*run.json, "write") / 1e3, 1),
               Table::num(clamped, 0),
               std::to_string(timeseries_samples(*run.json))});
  }
  t.print();
  print_perf(doc);
}

// Per-tenant partition view (schema v3): how each run split the cache and
// what every tenant got out of its share.
void print_tenants(const Doc& doc) {
  Table t({"bench", "run", "tenant", "ops", "hit", "target blk", "epochs",
           "rebal"});
  size_t rows = 0;
  for (const Run& run : doc.runs) {
    const JsonValue* tenants = run.json->find("tenants");
    if (tenants == nullptr || !tenants->is_array()) continue;
    const JsonValue* adapt = run.json->find("adapt");
    const double epochs = adapt == nullptr ? 0.0 : adapt->number_or("epochs", 0.0);
    const double rebal =
        adapt == nullptr ? 0.0 : adapt->number_or("rebalances", 0.0);
    for (const JsonValue& tn : tenants->array) {
      t.add_row({run.bench, run.name,
                 Table::num(tn.number_or("tenant", 0.0), 0),
                 Table::num(tn.number_or("ops", 0.0), 0),
                 Table::num(tn.number_or("hit_ratio", 0.0), 3),
                 Table::num(tn.number_or("target_blocks", 0.0), 0),
                 Table::num(epochs, 0), Table::num(rebal, 0)});
      ++rows;
    }
  }
  if (rows == 0) {
    std::printf("--tenants: no runs carry a tenants block "
                "(needs a multi-tenant bench and schema v3)\n");
    return;
  }
  t.print();
}

// --slo: per-run verdict table for every run carrying a v5 "slo" block.
// Returns 1 when any run's SLO counts as breached (burn rate > 1), 0
// otherwise — the CI gate for "the run held its service levels".
int print_slo(const Doc& doc) {
  Table t({"bench", "run", "epochs", "viol", "degr", "burn", "verdict"});
  size_t rows = 0;
  int breached = 0;
  for (const Run& run : doc.runs) {
    const JsonValue* slo = run.json->find("slo");
    if (slo == nullptr) continue;
    const bool bad = slo->number_or("breached", 0.0) != 0.0;
    if (bad) ++breached;
    t.add_row({run.bench, run.name, Table::num(slo->number_or("epochs", 0.0), 0),
               Table::num(slo->number_or("violations", 0.0), 0),
               Table::num(slo->number_or("degraded_epochs", 0.0), 0),
               Table::num(slo->number_or("burn_rate", 0.0), 2),
               bad ? "BREACHED" : "ok"});
    ++rows;
  }
  if (rows == 0) {
    std::printf("--slo: no runs carry an slo block "
                "(needs REPRO_SLO_* knobs and schema v5)\n");
    return 0;
  }
  t.print();
  // Violating epochs, spelled out so the failing window is identifiable
  // without opening the JSON.
  for (const Run& run : doc.runs) {
    const JsonValue* slo = run.json->find("slo");
    if (slo == nullptr) continue;
    const JsonValue* verdicts = slo->find("verdicts");
    if (verdicts == nullptr || !verdicts->is_array()) continue;
    for (const JsonValue& v : verdicts->array) {
      if (v.number_or("ok", 1.0) != 0.0) continue;
      const JsonValue* violated = v.find("violated");
      std::printf("  %s/%s epoch %.0f: %s (%.1f MB/s, r p99 %.2f ms, "
                  "w p99 %.2f ms, %0.f degraded)\n",
                  run.bench.c_str(), run.name.c_str(),
                  v.number_or("epoch", 0.0),
                  violated != nullptr ? violated->string.c_str() : "?",
                  v.number_or("throughput_mbps", 0.0),
                  v.number_or("read_p99_ms", 0.0),
                  v.number_or("write_p99_ms", 0.0),
                  v.number_or("degraded_domains", 0.0));
    }
  }
  if (breached > 0) {
    std::printf("%d run(s) breached their SLO\n", breached);
    return 1;
  }
  std::printf("all SLOs held\n");
  return 0;
}

// --- frontier (hit ratio vs NAND write amplification) ----------------------

// One "<Trace>/<eviction>+<admission>" run reduced to its frontier
// coordinates. NAND WA counts every page the SSD array programmed (host
// writes AND device-internal GC copies) per application block served —
// the endurance price of one unit of traffic.
struct FrontierPoint {
  std::string bench;
  std::string name;
  std::string trace;   // name before the first '/'
  std::string policy;  // name after it ("paper+always", ...)
  double hit = 0.0;
  double wa = 0.0;
  double mbps = 0.0;
  bool dominated = false;
};

std::vector<FrontierPoint> frontier_points(const Doc& doc) {
  std::vector<FrontierPoint> pts;
  for (const Run& run : doc.runs) {
    const size_t slash = run.name.find('/');
    if (slash == std::string::npos) continue;
    const std::string policy = run.name.substr(slash + 1);
    // Frontier runs are named "<Trace>/<eviction>+<admission>"; the '+'
    // distinguishes them from other multi-scheme benches ("Write/S2D/FIFO").
    if (policy.find('+') == std::string::npos) continue;
    FrontierPoint p;
    p.bench = run.bench;
    p.name = run.name;
    p.trace = run.name.substr(0, slash);
    p.policy = policy;
    p.hit = run.json->number_or("hit_ratio", 0.0);
    p.mbps = run.json->number_or("throughput_mbps", 0.0);
    double programmed = 0.0;
    if (const JsonValue* m = run.json->find("metrics")) {
      if (const JsonValue* c = m->find("counters"); c != nullptr &&
                                                    c->is_object()) {
        for (const auto& [key, value] : c->object) {
          if (key.starts_with("ssd.") && key.ends_with(".pages_programmed"))
            programmed += value.number;
        }
      }
    }
    double app = 0.0;
    if (const JsonValue* c = run.json->find("cache")) {
      app = c->number_or("app_read_blocks", 0.0) +
            c->number_or("app_write_blocks", 0.0);
    }
    p.wa = app == 0.0 ? 0.0 : programmed / app;
    pts.push_back(std::move(p));
  }
  return pts;
}

// Pareto dominance with a small material margin: ties (and sub-margin
// differences, e.g. cross-compiler double noise) never count as dominating,
// so the gate only fires on genuine frontier shifts.
constexpr double kHitEps = 1e-4;   // absolute, on hit ratio in [0, 1]
constexpr double kWaEps = 1e-3;    // relative, on NAND WA

bool dominates(const FrontierPoint& y, const FrontierPoint& x) {
  const bool no_worse =
      y.hit >= x.hit - kHitEps && y.wa <= x.wa * (1.0 + kWaEps);
  const bool strictly_better =
      y.hit > x.hit + kHitEps || y.wa < x.wa * (1.0 - kWaEps);
  return no_worse && strictly_better;
}

// Marks each point dominated/non-dominated within its trace group.
void mark_dominated(std::vector<FrontierPoint>* pts) {
  for (FrontierPoint& x : *pts) {
    x.dominated = false;
    for (const FrontierPoint& y : *pts) {
      if (&x == &y || y.trace != x.trace) continue;
      if (dominates(y, x)) {
        x.dominated = true;
        break;
      }
    }
  }
}

void print_frontier(const std::string& path,
                    const std::vector<FrontierPoint>& pts) {
  std::printf("%s  frontier (%zu points; NAND WA = SSD pages programmed per "
              "app block)\n",
              path.c_str(), pts.size());
  Table t({"trace", "policy", "hit", "NAND WA", "MB/s", "pareto"});
  for (const FrontierPoint& p : pts) {
    t.add_row({p.trace, p.policy, Table::num(p.hit, 4), Table::num(p.wa, 4),
               Table::num(p.mbps, 1), p.dominated ? "dominated" : "frontier"});
  }
  t.print();
}

bool write_frontier_csv(const std::string& path,
                        const std::vector<FrontierPoint>& pts) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "repro_report: cannot write %s\n", path.c_str());
    return false;
  }
  out << "trace,policy,hit_ratio,nand_wa,throughput_mbps,pareto\n";
  for (const FrontierPoint& p : pts) {
    out << p.trace << ',' << p.policy << ',' << p.hit << ',' << p.wa << ','
        << p.mbps << ',' << (p.dominated ? "dominated" : "frontier") << '\n';
  }
  std::printf("wrote %s (%zu points)\n", path.c_str(), pts.size());
  return true;
}

// Two-document frontier gate. The committed baseline is the statement of
// which policies are allowed to be Pareto-dominated; the candidate must not
// newly dominate away a policy, lose a run, or regress the paper anchor's
// WA beyond --thr-waf. (A policy dominated in BOTH documents is fine — the
// baseline already conceded that point.)
int gate_frontier(const Options& opt, std::vector<FrontierPoint> base,
                  std::vector<FrontierPoint> cand) {
  mark_dominated(&base);
  mark_dominated(&cand);
  int failures = 0;
  Table t({"trace", "policy", "check", "baseline", "candidate", "verdict"});
  for (const FrontierPoint& b : base) {
    const FrontierPoint* c = nullptr;
    for (const FrontierPoint& p : cand) {
      if (p.trace == b.trace && p.policy == b.policy) {
        c = &p;
        break;
      }
    }
    if (c == nullptr) {
      t.add_row({b.trace, b.policy, "present", "yes", "missing", "FAIL"});
      ++failures;
      continue;
    }
    const bool newly_dominated = c->dominated && !b.dominated;
    if (newly_dominated) ++failures;
    t.add_row({b.trace, b.policy, "pareto",
               b.dominated ? "dominated" : "frontier",
               c->dominated ? "dominated" : "frontier",
               newly_dominated ? "FAIL" : "ok"});
    if (b.policy == "paper+always") {
      const bool wa_regressed = c->wa > b.wa * (1.0 + opt.thr_waf);
      if (wa_regressed) ++failures;
      t.add_row({b.trace, b.policy, "nand_wa", Table::num(b.wa, 4),
                 Table::num(c->wa, 4), wa_regressed ? "FAIL" : "ok"});
    }
  }
  t.print();
  std::printf("\nfrontier gate: pareto margin hit±%g wa±%.1f%%, paper WA "
              "threshold +%.0f%%\n",
              kHitEps, 100.0 * kWaEps, 100.0 * opt.thr_waf);
  if (failures > 0) {
    std::printf("%d frontier failure(s)\n", failures);
    return 1;
  }
  std::printf("frontier holds\n");
  return 0;
}

// --assert-hit-gt: the CI gate. Finds each named run (first match by "name")
// and demands a strictly higher aggregate hit ratio from the candidate.
int assert_hit_gt(const Doc& doc, const std::string& cand_name,
                  const std::string& base_name) {
  const JsonValue* cand = nullptr;
  const JsonValue* base = nullptr;
  for (const Run& run : doc.runs) {
    if (cand == nullptr && run.name == cand_name) cand = run.json;
    if (base == nullptr && run.name == base_name) base = run.json;
  }
  if (cand == nullptr || base == nullptr) {
    std::fprintf(stderr, "--assert-hit-gt: run \"%s\" not found\n",
                 (cand == nullptr ? cand_name : base_name).c_str());
    return 2;
  }
  const double hc = cand->number_or("hit_ratio", 0.0);
  const double hb = base->number_or("hit_ratio", 0.0);
  const bool ok = hc > hb;
  std::printf("assert-hit-gt: %s %.4f %s %s %.4f\n", cand_name.c_str(), hc,
              ok ? ">" : "<=", base_name.c_str(), hb);
  return ok ? 0 : 1;
}

// --assert-tier: the CI gate for the compressed DRAM tier. The tier-on run
// must write strictly fewer flash blocks than the tier-off run while holding
// an equal-or-better aggregate hit ratio — i.e. the tier absorbed writes
// without costing hits. First match by "name", first document only.
int assert_tier(const Doc& doc, const std::string& on_name,
                const std::string& off_name) {
  const JsonValue* on = nullptr;
  const JsonValue* off = nullptr;
  for (const Run& run : doc.runs) {
    if (on == nullptr && run.name == on_name) on = run.json;
    if (off == nullptr && run.name == off_name) off = run.json;
  }
  if (on == nullptr || off == nullptr) {
    std::fprintf(stderr, "--assert-tier: run \"%s\" not found\n",
                 (on == nullptr ? on_name : off_name).c_str());
    return 2;
  }
  auto flash_writes = [](const JsonValue& run) {
    const JsonValue* ssd = run.find("ssd");
    return ssd == nullptr ? 0.0 : ssd->number_or("write_blocks", 0.0);
  };
  const double won = flash_writes(*on);
  const double woff = flash_writes(*off);
  const double hon = on->number_or("hit_ratio", 0.0);
  const double hoff = off->number_or("hit_ratio", 0.0);
  const bool writes_ok = won < woff;
  const bool hit_ok = hon >= hoff;
  std::printf("assert-tier: flash write_blocks %s %.0f %s %s %.0f (%s)\n",
              on_name.c_str(), won, writes_ok ? "<" : ">=", off_name.c_str(),
              woff, writes_ok ? "ok" : "FAIL");
  std::printf("assert-tier: hit_ratio %s %.4f %s %s %.4f (%s)\n",
              on_name.c_str(), hon, hit_ok ? ">=" : "<", off_name.c_str(),
              hoff, hit_ok ? "ok" : "FAIL");
  if (const JsonValue* tier = on->find("tier")) {
    std::printf("assert-tier: %s tier hit %.4f, compression %.3f, "
                "destaged %.0f blocks\n",
                on_name.c_str(), tier->number_or("hit_ratio", 0.0),
                tier->number_or("compression_ratio", 0.0),
                tier->number_or("destage_blocks", 0.0));
  }
  return writes_ok && hit_ok ? 0 : 1;
}

// Relative change of `b` vs baseline `a`; 0 when the baseline is 0.
double rel(double a, double b) { return a == 0.0 ? 0.0 : (b - a) / a; }

int compare(const Options& opt, const Doc& base, const Doc& cand) {
  std::map<std::pair<std::string, std::string>, const JsonValue*> in_cand;
  for (const Run& r : cand.runs) in_cand[{r.bench, r.name}] = r.json;

  Table t({"bench", "run", "metric", "baseline", "candidate", "delta",
           "verdict"});
  int regressions = 0;
  auto check = [&](const Run& run, const char* name, double a, double b,
                   double worse_rel, double thr, int precision) {
    const double d = rel(a, b);
    const bool bad = worse_rel > thr;
    if (bad) ++regressions;
    t.add_row({run.bench, run.name, name, Table::num(a, precision),
               Table::num(b, precision),
               Table::num(100.0 * d, 1) + "%",
               bad ? "REGRESSION" : "ok"});
  };

  for (const Run& run : base.runs) {
    const auto it = in_cand.find({run.bench, run.name});
    if (it == in_cand.end()) {
      t.add_row({run.bench, run.name, "-", "-", "missing", "-", "REGRESSION"});
      ++regressions;
      continue;
    }
    const JsonValue& a = *run.json;
    const JsonValue& b = *it->second;
    check(run, "throughput_mbps", metric(a, "throughput_mbps"),
          metric(b, "throughput_mbps"),
          -rel(metric(a, "throughput_mbps"), metric(b, "throughput_mbps")),
          opt.thr_throughput, 1);
    check(run, "read_p99_us", p99(a, "read") / 1e3, p99(b, "read") / 1e3,
          rel(p99(a, "read"), p99(b, "read")), opt.thr_p99, 1);
    check(run, "write_p99_us", p99(a, "write") / 1e3, p99(b, "write") / 1e3,
          rel(p99(a, "write"), p99(b, "write")), opt.thr_p99, 1);
    check(run, "io_amplification", metric(a, "io_amplification"),
          metric(b, "io_amplification"),
          rel(metric(a, "io_amplification"), metric(b, "io_amplification")),
          opt.thr_waf, 2);
  }
  t.print();
  std::printf("\nthresholds: throughput -%.0f%%, p99 +%.0f%%, waf +%.0f%%\n",
              100.0 * opt.thr_throughput, 100.0 * opt.thr_p99,
              100.0 * opt.thr_waf);
  if (regressions > 0) {
    std::printf("%d regression(s) detected\n", regressions);
    return 1;
  }
  std::printf("no regressions\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) return usage(argv[0]);

  Doc a;
  if (!load_doc(opt.files[0], &a)) return 2;

  if (opt.digest) {
    const srcache::u32 da = digest_minus_perf(a);
    std::printf("%08x  %s\n", da, opt.files[0].c_str());
    if (opt.files.size() == 2) {
      Doc b;
      if (!load_doc(opt.files[1], &b)) return 2;
      const srcache::u32 db = digest_minus_perf(b);
      std::printf("%08x  %s\n", db, opt.files[1].c_str());
      if (da != db) {
        std::fprintf(stderr,
                     "digest mismatch: the deterministic parts of the two "
                     "documents differ\n");
        return 1;
      }
      std::printf("digests match\n");
    }
    return 0;
  }

  if (opt.frontier) {
    std::vector<FrontierPoint> pa = frontier_points(a);
    mark_dominated(&pa);
    if (pa.empty()) {
      std::fprintf(stderr,
                   "--frontier: no \"<Trace>/<eviction>+<admission>\" runs in "
                   "%s (run bench_policy_frontier with REPRO_JSON set)\n",
                   opt.files[0].c_str());
      return 2;
    }
    print_frontier(opt.files[0], pa);
    int rc = 0;
    std::vector<FrontierPoint>* csv_pts = &pa;
    std::vector<FrontierPoint> pb;
    if (opt.files.size() == 2) {
      Doc b;
      if (!load_doc(opt.files[1], &b)) return 2;
      pb = frontier_points(b);
      mark_dominated(&pb);
      std::printf("\n");
      print_frontier(opt.files[1], pb);
      std::printf("\n");
      rc = gate_frontier(opt, pa, pb);
      csv_pts = &pb;
    }
    if (!opt.frontier_csv.empty() &&
        !write_frontier_csv(opt.frontier_csv, *csv_pts))
      return 2;
    return rc;
  }

  print_summary(opt.files[0], a);

  bool csv_ok = true;
  if (!opt.csv_dir.empty()) csv_ok = export_csv(a, opt.csv_dir);
  if (opt.tenants) print_tenants(a);

  int rc = 0;
  if (opt.slo) rc = print_slo(a);
  if (!opt.assert_cand.empty()) {
    rc = assert_hit_gt(a, opt.assert_cand, opt.assert_base);
    if (rc == 2) return 2;
  }
  if (!opt.tier_on.empty()) {
    const int trc = assert_tier(a, opt.tier_on, opt.tier_off);
    if (trc == 2) return 2;
    rc = std::max(rc, trc);
  }
  if (opt.files.size() == 2) {
    Doc b;
    if (!load_doc(opt.files[1], &b)) return 2;
    std::printf("\n");
    print_summary(opt.files[1], b);
    std::printf("\n");
    rc = std::max(rc, compare(opt, a, b));
    print_speedup(a, b);
  }
  return csv_ok ? rc : 2;
}
