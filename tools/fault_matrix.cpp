// fault_matrix: the CI reliability gate.
//
// Runs the scripted fault-scenario grid (fail-stop x silent corruption x
// latent sector errors x link degradation x combinations, across the four
// stripe organisations of §5.2), the hot-spare rebuild grid (fail ->
// replace -> online reconstruction to completion under full traffic for
// every protected level, plus a second-failure-during-rebuild case that
// must surface as detected-unrepairable), and the crash-consistency sweep
// (fault/crash_harness.hpp). It asserts the §4.3 failure-handling
// guarantees, the fault-ledger reconciliation invariant
// (injected == detected + undetected), and the rebuild provenance balance
// (ledgered rebuild_copy bytes == the spare's rebuild write bytes), and
// writes one machine-readable JSON document for the CI artifact.
//
//   fault_matrix [--out <path>] [--quick]
//
//   --out    artifact path (default: $REPRO_JSON, else fault_matrix.json)
//   --quick  subsample the crash sweep's boundaries (CI smoke settings)
//
// Exit status: 0 when every scenario passed, 1 otherwise (the gate).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "block/mem_disk.hpp"
#include "fault/crash_harness.hpp"
#include "fault/fault_injector.hpp"
#include "obs/json.hpp"
#include "raid/rebuild.hpp"
#include "src_cache/src_cache.hpp"
#include "workload/generators.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

namespace {

using namespace srcache;

// Small geometry over content-tracked MemDisks: every behaviour (sealing,
// GC, repair) triggers within a few thousand requests, and CRC verification
// has real content to catch corruption against.
src::SrcConfig matrix_config(src::SrcRaidLevel raid) {
  src::SrcConfig cfg;
  cfg.num_ssds = 4;
  cfg.chunk_bytes = 32 * KiB;          // 8 blocks: MS + 6 slots + ME
  cfg.erase_group_bytes = 256 * KiB;   // 8 segments per SG
  cfg.region_bytes_per_ssd = 4 * MiB;  // 16 SGs (SG 0 = superblock)
  cfg.twait = 1 * sim::kSec;
  cfg.raid = raid;
  cfg.verify_checksums = true;
  return cfg;
}

struct Rig {
  std::vector<std::unique_ptr<blockdev::MemDisk>> ssds;
  std::unique_ptr<blockdev::MemDisk> primary;
  std::unique_ptr<src::SrcCache> cache;

  explicit Rig(const src::SrcConfig& cfg) {
    blockdev::MemDiskConfig fast;
    fast.capacity_blocks =
        cfg.region_start_block + cfg.region_bytes_per_ssd / kBlockSize + 64;
    fast.op_latency = 20 * sim::kUs;
    fast.bandwidth_mbps = 500.0;
    fast.flush_latency = 4 * sim::kMs;
    for (u32 i = 0; i < cfg.num_ssds; ++i)
      ssds.push_back(std::make_unique<blockdev::MemDisk>(fast));
    blockdev::MemDiskConfig slow;
    slow.capacity_blocks = 1 * GiB / kBlockSize;
    slow.op_latency = 5 * sim::kMs;
    slow.bandwidth_mbps = 110.0;
    primary = std::make_unique<blockdev::MemDisk>(slow);
    std::vector<blockdev::BlockDevice*> devs;
    for (auto& s : ssds) devs.push_back(s.get());
    cache = std::make_unique<src::SrcCache>(cfg, devs, primary.get());
    cache->format(0);
  }
};

struct Scenario {
  std::string name;
  src::SrcRaidLevel raid;
  std::string plan;       // fault/fault_plan.hpp syntax
  bool scrub = false;     // run a full scrub after the workload
  bool expect_detect = true;  // at least one fault must be detected
  // Dirty blocks must never be lost (holds for every protected stripe
  // organisation; RAID-0 accepts dirty loss on fail-stop, §4.3).
  bool expect_no_dirty_loss = true;
  // Hot-spare rebuild scenarios: wire a RebuildManager to the injector's
  // replace/spare actions and assert the expected end state.
  bool rebuild = false;
  bool expect_rebuild_complete = false;  // reconstruction finished cleanly
  bool expect_unrecoverable = false;     // a second failure lost blocks
  double rebuild_mbps = 256.0;  // slow rates keep a rebuild window open for
                                // the second failure to land inside
};

struct ScenarioOutcome {
  std::string name;
  std::vector<std::string> violations;
  std::string run_json;  // workload::run_json of the measured window
  src::SrcCache::ScrubReport scrub;
  u64 lost_dirty = 0;
  u64 lost_clean = 0;
  raid::RebuildOutcome rebuild;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

ScenarioOutcome run_scenario(const Scenario& sc) {
  ScenarioOutcome out;
  out.name = sc.name;
  auto fail = [&out](const std::string& why) { out.violations.push_back(why); };

  const src::SrcConfig cfg = matrix_config(sc.raid);
  Rig rig(cfg);

  fault::FaultInjector inj(fault::FaultPlan::parse_or_die(sc.plan, /*seed=*/7));
  std::vector<blockdev::BlockDevice*> devs;
  for (auto& s : rig.ssds) devs.push_back(s.get());
  inj.attach_ssds(devs);
  inj.attach_primary(rig.primary.get());
  rig.cache->set_fault_ledger(&inj.ledger());

  // Hot-spare rebuild scenarios get the full production wiring: the cache's
  // SRC-aware extent map feeds the rebuilder, aborted extents flow back as
  // counted losses, spare writes are ledgered as rebuild_copy provenance,
  // and a completed rebuild credits the fail-stop's ledger record.
  std::unique_ptr<raid::RebuildManager> mgr;
  if (sc.rebuild) {
    raid::RebuildConfig rbc;
    rbc.mbps = sc.rebuild_mbps;
    mgr = std::make_unique<raid::RebuildManager>(rbc, devs);
    src::SrcCache* cache = rig.cache.get();
    mgr->set_extent_source(
        [cache](size_t dev) { return cache->rebuild_extents(dev); });
    mgr->set_abort_callback(
        [cache](size_t dev, const std::vector<raid::RebuildExtent>& lost) {
          cache->on_rebuild_lost(dev, lost);
        });
    mgr->set_provenance(&cache->mutable_provenance());
    mgr->set_fault_ledger(&inj.ledger());
    cache->set_rebuild(mgr.get());
    inj.set_replace_callback([&mgr](size_t ssd, sim::SimTime t) {
      mgr->on_device_replaced(ssd, t);
    });
    inj.set_spare_callback([&mgr](u32 n) { mgr->add_spares(n); });
  }
  inj.set_failure_callback([&rig, &mgr](size_t ssd, sim::SimTime t) {
    rig.cache->on_ssd_failure(ssd);
    if (mgr) mgr->on_device_failed(ssd, t);
  });

  // Write-heavy mixed workload over ~1.5x the cache capacity: forces GC,
  // misses and destages, so faults land on a busy array.
  workload::FioGen::Config gc;
  gc.span_blocks = cfg.capacity_blocks() * 3 / 2;
  gc.req_blocks = 4;
  gc.read_pct = 30;
  gc.seed = 11;
  workload::FioGen gen(gc);

  workload::Runner runner(rig.cache.get(), devs);
  workload::RunConfig rc;
  rc.duration = 120 * sim::kSec;  // op budget is the real stop condition
  rc.max_ops = 6000;
  rc.fault = &inj;
  rc.rebuild = mgr.get();
  workload::RunResult res = runner.run({&gen}, rc);

  if (!res.fault.active) fail("runner did not report a fault outcome");
  if (res.fault.events_fired != inj.plan().events().size())
    fail("not every planned event fired within the run");

  // Surface latent damage the workload didn't happen to touch: a full
  // scrub reads every live block through the verified path.
  if (sc.scrub) {
    sim::SimTime done = 0;
    out.scrub = rig.cache->scrub(200 * sim::kSec, &done);
    if (out.scrub.scanned == 0) fail("scrub scanned no blocks");
  }

  const fault::FaultLedger& led = inj.ledger();
  if (!led.reconciles())
    fail("fault ledger does not reconcile (injected != detected + undetected)");
  if (led.repaired() > led.detected())
    fail("ledger counts more repairs than detections");
  if (sc.expect_detect && led.detected() == 0)
    fail("no injected fault was ever detected");

  out.lost_dirty = rig.cache->extra().lost_dirty_blocks;
  out.lost_clean = rig.cache->extra().lost_clean_blocks;
  if (sc.expect_no_dirty_loss && out.lost_dirty != 0)
    fail("acked dirty blocks were lost under a survivable fault");
  if (sc.expect_no_dirty_loss && out.scrub.unrecoverable != 0)
    fail("scrub found unrecoverable blocks under a survivable fault");

  const Status audit = rig.cache->verify_consistency();
  if (!audit.is_ok()) fail("post-scenario audit: " + audit.to_string());

  if (sc.rebuild) {
    out.rebuild = mgr->outcome();
    if (!res.rebuild.active) fail("runner did not report a rebuild outcome");
    // Provenance balance: every byte the rebuilder wrote to the spare must
    // be ledgered as a rebuild_copy write, nothing more, nothing less.
    const u64 prov = rig.cache->provenance().cause_bytes(
        obs::WriteCause::kRebuildCopy);
    if (prov != out.rebuild.write_bytes)
      fail("rebuild_copy provenance bytes != rebuild write bytes");
    if (out.rebuild.rebuilds_started == 0)
      fail("replace action never started a rebuild");
    if (out.rebuild.degraded_ns == 0)
      fail("degraded window was not measured");
    if (sc.expect_rebuild_complete) {
      if (out.rebuild.rebuilds_completed == 0)
        fail("rebuild did not complete within the run");
      if (out.rebuild.blocks_unrecovered != 0)
        fail("completed rebuild reported unrecovered blocks");
      if (out.rebuild.blocks_copied == 0 || out.rebuild.write_bytes == 0)
        fail("completed rebuild copied nothing");
      if (led.repaired_by_rebuild() == 0)
        fail("completed rebuild did not credit the ledger's fail-stop record");
    }
    if (sc.expect_unrecoverable) {
      // Second failure during rebuild: single redundancy cannot decode the
      // still-pending extents. The gate requires the loss to be aborted,
      // counted, and left detected-unrepairable — never silently served.
      if (out.rebuild.rebuilds_aborted == 0)
        fail("second failure did not abort the in-flight rebuild");
      if (out.rebuild.blocks_unrecovered == 0)
        fail("second failure during rebuild lost no blocks (window missed)");
      if (led.detected() <= led.repaired())
        fail("double fault left no detected-unrepairable ledger records");
    }
  }

  // Re-read the final ledger state into the result before serializing.
  res.fault.injected = led.injected();
  res.fault.detected = led.detected();
  res.fault.repaired = led.repaired();
  res.fault.repaired_by_rebuild = led.repaired_by_rebuild();
  res.fault.undetected = led.undetected();
  out.run_json = workload::run_json("fault_matrix", sc.name, res);
  return out;
}

std::vector<Scenario> build_grid() {
  using src::SrcRaidLevel;
  const struct {
    SrcRaidLevel raid;
    const char* tag;
  } raids[] = {
      {SrcRaidLevel::kRaid0, "raid0"},
      {SrcRaidLevel::kRaid1, "raid1"},
      {SrcRaidLevel::kRaid4, "raid4"},
      {SrcRaidLevel::kRaid5, "raid5"},
  };
  // Device-LBA range of the cache region (region_start_block = 0 here).
  const std::string region = "lba=0..1024";

  std::vector<Scenario> grid;
  for (const auto& r : raids) {
    const bool protected_stripe = r.raid != SrcRaidLevel::kRaid0;
    // Whole-device fail-stop mid-run. RAID-0 drops the failed device's
    // blocks (dirty ones are lost by design); every other level keeps
    // serving via mirror or parity.
    grid.push_back({std::string("fail-stop/") + r.tag, r.raid,
                    "at=ops:1500 fail dev=ssd1", /*scrub=*/false,
                    /*expect_detect=*/true, protected_stripe});
    // Silent corruption: seeded random picks across the whole region;
    // the scrub must catch (and on protected levels, repair) every hit.
    grid.push_back({std::string("corrupt/") + r.tag, r.raid,
                    "at=ops:1000 corrupt dev=ssd0 " + region + " count=64",
                    /*scrub=*/true, /*expect_detect=*/true, protected_stripe});
    // Latent sector errors: reads fail until the blocks are rewritten;
    // repair (parity rebuild or refetch + write-back) must clear them.
    // ssd0 is a read-target column under every stripe organisation (RAID-1
    // reads only primary copies, so a mirror-column fault would sit
    // undetected until the mirror is actually needed).
    grid.push_back({std::string("latent/") + r.tag, r.raid,
                    "at=ops:1000 latent dev=ssd0 lba=0..512",
                    /*scrub=*/true, /*expect_detect=*/true, protected_stripe});
  }
  // Link degradation is stripe-independent; one level suffices.
  grid.push_back({"degrade/raid5", src::SrcRaidLevel::kRaid5,
                  "at=ops:1000 degrade dev=primary factor=8 for=5s",
                  /*scrub=*/false, /*expect_detect=*/true, true});
  // Combined: corruption and latent errors discovered by reads running
  // degraded after a fail-stop — the §4.3 worst case. For RAID-5 this is a
  // double fault (a second device's blocks go bad while one is already
  // down), which single parity cannot repair: the gate requires the damage
  // to be *detected and counted*, not survived.
  grid.push_back({"combined/raid5", src::SrcRaidLevel::kRaid5,
                  "at=ops:1000 fail dev=ssd1; "
                  "at=ops:1500 corrupt dev=ssd0 " + region + " count=32; "
                  "at=ops:2000 latent dev=ssd2 lba=0..256",
                  /*scrub=*/true, /*expect_detect=*/true,
                  /*expect_no_dirty_loss=*/false});
  grid.push_back({"combined/raid1", src::SrcRaidLevel::kRaid1,
                  "at=ops:1000 fail dev=ssd1; "
                  "at=ops:1500 corrupt dev=ssd0 " + region + " count=32",
                  /*scrub=*/true, /*expect_detect=*/true, true});
  // Hot-spare rebuild to completion under full traffic, every protected
  // level: fail -> replace installs a blank spare -> background
  // reconstruction finishes inside the run and the post-run scrub reads the
  // rebuilt device back through the verified path. The raid4 plan also
  // provisions an extra spare first, exercising the `spare` action.
  for (const auto& r : raids) {
    if (r.raid == SrcRaidLevel::kRaid0) continue;  // nothing to rebuild from
    const bool extra_spare = r.raid == SrcRaidLevel::kRaid4;
    Scenario sc{std::string("rebuild/") + r.tag, r.raid,
                std::string(extra_spare ? "at=ops:900 spare count=1; " : "") +
                    "at=ops:1000 fail dev=ssd1; at=ops:2000 replace dev=ssd1",
                /*scrub=*/true, /*expect_detect=*/true,
                /*expect_no_dirty_loss=*/true};
    sc.rebuild = true;
    sc.expect_rebuild_complete = true;
    grid.push_back(std::move(sc));
  }
  // Second failure while the rebuild is still running (the vulnerability
  // window §4.3 warns about): a deliberately slow copy rate keeps pending
  // extents open when ssd3 dies, so single parity can no longer decode
  // them. Expected outcome is an aborted rebuild with counted, detected-
  // unrepairable losses — not completion, and never silent garbage.
  {
    Scenario sc{"rebuild-second-fault/raid5", SrcRaidLevel::kRaid5,
                "at=ops:1000 fail dev=ssd1; at=ops:1500 replace dev=ssd1; "
                "at=ops:1550 fail dev=ssd3",
                /*scrub=*/false, /*expect_detect=*/true,
                /*expect_no_dirty_loss=*/false};
    sc.rebuild = true;
    sc.expect_unrecoverable = true;
    sc.rebuild_mbps = 0.001;  // ~0.26 blocks/s: pending extents stay open
    grid.push_back(std::move(sc));
  }
  return grid;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = std::getenv("REPRO_JSON");
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out <path>] [--quick]\n", argv[0]);
      return 2;
    }
  }
  if (out_path == nullptr) out_path = "fault_matrix.json";

  int failures = 0;
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", "srcache-fault-matrix-v2");
  w.key("scenarios").begin_array();

  for (const Scenario& sc : build_grid()) {
    const ScenarioOutcome out = run_scenario(sc);
    std::printf("%-18s %s\n", out.name.c_str(),
                out.ok() ? "ok" : "FAIL");
    for (const std::string& v : out.violations) {
      std::printf("    %s\n", v.c_str());
      failures++;
    }
    w.begin_object();
    w.kv("name", out.name);
    w.kv("ok", out.ok() ? 1 : 0);
    w.kv("lost_dirty_blocks", out.lost_dirty);
    w.kv("lost_clean_blocks", out.lost_clean);
    w.kv("scrub_scanned", out.scrub.scanned);
    w.kv("scrub_repaired", out.scrub.repaired);
    w.kv("scrub_refetched", out.scrub.refetched);
    w.kv("scrub_unrecoverable", out.scrub.unrecoverable);
    w.kv("rebuilds_completed", static_cast<u64>(out.rebuild.rebuilds_completed));
    w.kv("rebuilds_aborted", static_cast<u64>(out.rebuild.rebuilds_aborted));
    w.kv("rebuild_blocks_copied", out.rebuild.blocks_copied);
    w.kv("rebuild_blocks_skipped", out.rebuild.blocks_skipped);
    w.kv("rebuild_blocks_unrecovered", out.rebuild.blocks_unrecovered);
    w.key("violations").begin_array();
    for (const std::string& v : out.violations) w.value(v);
    w.end_array();
    w.key("run").raw(out.run_json);
    w.end_object();
  }
  w.end_array();

  // Crash-consistency sweep: a power cut at every segment-seal boundary
  // (subsampled with --quick), three cut points each.
  fault::CrashSweepConfig cc;
  cc.src = matrix_config(src::SrcRaidLevel::kRaid5);
  cc.ops = 400;
  cc.working_set_blocks = 2048;
  cc.max_boundaries = quick ? 12 : 0;
  const fault::CrashSweepResult sweep = fault::run_crash_sweep(cc);
  std::printf("crash-sweep        %s  (%llu boundaries, %llu cases, "
              "%llu torn segments discarded)\n",
              sweep.ok() ? "ok" : "FAIL",
              static_cast<unsigned long long>(sweep.boundaries),
              static_cast<unsigned long long>(sweep.cases),
              static_cast<unsigned long long>(sweep.torn_segments));
  for (const std::string& v : sweep.violations) {
    std::printf("    %s\n", v.c_str());
    failures++;
  }
  w.key("crash_sweep").begin_object();
  w.kv("ok", sweep.ok() ? 1 : 0);
  w.kv("boundaries", sweep.boundaries);
  w.kv("cases", sweep.cases);
  w.kv("torn_segments", sweep.torn_segments);
  w.kv("injected", sweep.injected);
  w.kv("detected", sweep.detected);
  w.kv("undetected", sweep.undetected);
  w.key("violations").begin_array();
  for (const std::string& v : sweep.violations) w.value(v);
  w.end_array();
  w.end_object();

  w.kv("failures", static_cast<u64>(failures));
  w.end_object();

  const std::string json = w.take();
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr ||
      std::fwrite(json.data(), 1, json.size(), f) != json.size() ||
      std::fputc('\n', f) == EOF) {
    std::fprintf(stderr, "fault_matrix: cannot write %s\n", out_path);
    if (f != nullptr) std::fclose(f);
    return 2;
  }
  std::fclose(f);
  std::printf("\n%d failure(s); artifact: %s\n", failures, out_path);
  return failures == 0 ? 0 : 1;
}
