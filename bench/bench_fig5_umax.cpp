// Figure 5: impact of the UMAX threshold on Sel-GC.
//
// Paper result: throughput peaks around UMAX = 90% and drops at 95%
// (keeping hot data pays until the cache is too full to copy); I/O
// amplification rises monotonically with UMAX.
//
// Runs on the sharded engine (run_group_sharded), so REPRO_SHARDS/
// REPRO_THREADS parallelize the fifteen points and every run lands in
// REPRO_JSON with the full observability surface.
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

int main() {
  print_header("Figure 5: impact of UMAX on Sel-GC", "Fig. 5");
  const double k = scale();

  common::Table t({"Workload", "UMAX", "MB/s", "I/O amp"});
  for (auto group : {workload::TraceGroup::kWrite, workload::TraceGroup::kMixed,
                     workload::TraceGroup::kRead}) {
    for (double umax : {0.30, 0.50, 0.70, 0.90, 0.95}) {
      src::SrcConfig cfg = default_src_config();
      cfg.gc = src::GcPolicy::kSelGc;
      cfg.umax = umax;
      const std::string name =
          std::string(workload::to_string(group)) + "/umax-" +
          std::to_string(static_cast<int>(umax * 100));
      const auto res =
          run_group_sharded(cfg, flash::spec_840pro_128(), group, k,
                            "bench_fig5_umax", 42, name.c_str());
      t.add_row({workload::to_string(group),
                 std::to_string(static_cast<int>(umax * 100)) + "%",
                 common::Table::num(res.throughput_mbps, 1),
                 common::Table::num(res.io_amplification, 2)});
    }
  }
  t.print();
  std::printf("\npaper shape: throughput peaks at UMAX=90%% then drops at "
              "95%%; amplification increases with UMAX.\n");
  return 0;
}
