// Figure 6: cost-effectiveness of SRC with different SSD products —
// RAID-5 arrays of MLC/TLC SATA drives from two vendors vs a single
// high-end NVMe drive (no parity).
//
// Paper result: the NVMe drive wins raw performance slightly; TLC arrays
// win MB/s per dollar; MLC arrays win lifetime and lifetime per dollar.
//
// Every config point runs through the sharded engine (run_group_sharded).
// NAND write amplification is derived from the merged metrics-registry
// delta ("ssd.<i>.host_pages_written" / "ssd.<i>.pages_programmed" summed
// across devices and domains) — the per-domain FTLs are not reachable after
// the engine tears the rigs down, and the window delta is the honest input
// to a lifetime model anyway.
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

namespace {

struct ConfigPoint {
  flash::SsdSpec spec;
  int count;
  src::SrcRaidLevel raid;
};

// Sums the per-device FTL page counters out of a merged metrics delta and
// folds in the cache-layer amplification, mirroring the old direct-FTL
// computation: (NAND pages / host pages) x (cache-layer writes / app writes).
double nand_wa_from(const workload::RunResult& res) {
  u64 host = 0, nand = 0;
  for (const auto& [name, v] : res.metrics.counters) {
    if (name.size() > 4 && name.compare(0, 4, "ssd.") == 0) {
      if (name.find(".host_pages_written") != std::string::npos) host += v;
      if (name.find(".pages_programmed") != std::string::npos) nand += v;
    }
  }
  double wa =
      host ? static_cast<double>(nand) / static_cast<double>(host) : 1.0;
  wa *= res.cache.app_blocks()
            ? static_cast<double>(res.ssd.write_blocks) /
                  static_cast<double>(res.cache.app_blocks())
            : 1.0;
  return wa;
}

}  // namespace

int main() {
  print_header("Figure 6: performance/lifetime per dollar", "Fig. 6(a)-(d)");
  const double k = scale();

  const std::vector<ConfigPoint> points = {
      {flash::spec_a_mlc_sata(), 4, src::SrcRaidLevel::kRaid5},
      {flash::spec_a_tlc_sata(), 4, src::SrcRaidLevel::kRaid5},
      {flash::spec_b_mlc_sata(), 4, src::SrcRaidLevel::kRaid5},
      {flash::spec_b_tlc_sata(), 4, src::SrcRaidLevel::kRaid5},
      {flash::spec_c_mlc_nvme(), 1, src::SrcRaidLevel::kRaid0},
  };

  common::Table t({"Workload", "Config", "MB/s", "(MB/s)/$", "Lifetime(d)",
                   "Lifetime(d)/$x100", "eff GB/$"});
  for (auto group : {workload::TraceGroup::kWrite, workload::TraceGroup::kMixed,
                     workload::TraceGroup::kRead}) {
    for (const auto& p : points) {
      src::SrcConfig cfg = default_src_config();
      cfg.raid = p.raid;
      const std::string name =
          std::string(workload::to_string(group)) + "/" + p.spec.name;
      workload::RunResult res;
      if (p.count == 4) {
        res = run_group_sharded(cfg, p.spec, group, k, "fig6", 42,
                                name.c_str());
      } else {
        // Single NVMe drive: a 2-device RAID-0 SRC is the closest layout;
        // the paper runs SRC without parity on one device. We model one
        // large device as two half-capacity "channels" of the same spec.
        flash::SsdSpec half = p.spec;
        half.capacity_bytes /= 2;
        half.units /= 2;
        half.price_usd /= 2;
        src::SrcConfig c0 = cfg;
        c0.num_ssds = 2;
        c0.raid = src::SrcRaidLevel::kRaid0;
        res = run_group_sharded(c0, half, group, k, "fig6", 42, name.c_str());
      }
      const double nand_wa = nand_wa_from(res);
      cost::ArrayConfig array{p.spec, p.count};
      // The paper assumes 512 GB of workload writes per day.
      const auto report =
          cost::evaluate(array, res.throughput_mbps, 512e9,
                         std::max(0.25, nand_wa));
      // Effective cache capacity per dollar: with REPRO_TIER_MB set, the
      // compressed DRAM tier stretches its budget by the measured
      // compression ratio and its price is added to the array's.
      const double eff_gb =
          res.tier.active
              ? cost::effective_gb_per_dollar(
                    array, static_cast<double>(res.tier.budget_bytes),
                    res.tier.compression_ratio())
              : array.gb_per_dollar();
      t.add_row({workload::to_string(group), p.spec.name,
                 common::Table::num(report.throughput_mbps, 0),
                 common::Table::num(report.mbps_per_dollar, 2),
                 common::Table::num(report.lifetime_days, 0),
                 common::Table::num(report.lifetime_days_per_dollar * 100, 1),
                 common::Table::num(eff_gb, 2)});
    }
  }
  t.print();
  std::printf(
      "\npaper shape: NVMe best raw MB/s; TLC best (MB/s)/$; MLC best "
      "lifetime and lifetime/$; RAID-5 arrays beat the single NVMe on "
      "lifetime per dollar.\n");
  return 0;
}
