// Table 2: FIO 4 KiB uniform-random write bandwidth, write-through vs
// write-back, for Bcache and Flashcache over a single SSD.
//
// Paper result: WB beats WT by 4.3x (Bcache) and 17.5x (Flashcache);
// Bcache WB (65.9 MB/s) trails Flashcache WB (100.3 MB/s) because of its
// journal flushes.
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

namespace {

double run_fio_write(cache::CacheDevice* cache,
                     std::vector<blockdev::BlockDevice*> ssds, u64 span_blocks) {
  workload::FioGen::Config fc;
  fc.span_blocks = span_blocks;
  fc.req_blocks = 1;  // 4 KiB
  fc.read_pct = 0;
  fc.seed = 7;
  workload::FioGen gen(fc);
  workload::Runner runner(cache, std::move(ssds));
  workload::RunConfig rc;
  rc.threads_per_gen = 4;  // FIO: 4 threads x iodepth 32
  rc.iodepth = 32;
  rc.duration = run_duration();
  return runner.run({&gen}, rc).throughput_mbps;
}

}  // namespace

int main() {
  print_header("Table 2: write-through vs write-back (single SSD, FIO 4K UR)",
               "Table 2");
  const double k = scale();
  const Geometry geo = Geometry::at(k);
  const flash::SsdSpec spec = sized_spec(flash::spec_840pro_128(),
                                         geo.ssd_capacity_bytes);
  // FIO span: twice the cache (uniform random over a volume larger than
  // the cache, as in the paper's setup).
  const u64 cache_blocks = geo.region_bytes_per_ssd / kBlockSize;
  const u64 span = 2 * cache_blocks;

  struct Cell {
    const char* name;
    double wt = 0, wb = 0;
  } rows[2] = {{"Bcache"}, {"Flashcache"}};

  for (bool write_back : {false, true}) {
    {
      auto ssd = std::make_unique<flash::SimSsd>(spec, false);
      ssd->precondition();
      auto primary = make_primary(k);
      baselines::BcacheConfig cfg;
      cfg.cache_blocks = cache_blocks;
      cfg.write_back = write_back;
      baselines::BcacheLike cache(cfg, ssd.get(), primary.get());
      const double mbps = run_fio_write(&cache, {ssd.get()}, span);
      (write_back ? rows[0].wb : rows[0].wt) = mbps;
    }
    {
      auto ssd = std::make_unique<flash::SimSsd>(spec, false);
      ssd->precondition();
      auto primary = make_primary(k);
      baselines::FlashcacheConfig cfg;
      cfg.cache_blocks = cache_blocks;
      cfg.write_back = write_back;
      baselines::FlashcacheLike cache(cfg, ssd.get(), primary.get());
      const double mbps = run_fio_write(&cache, {ssd.get()}, span);
      (write_back ? rows[1].wb : rows[1].wt) = mbps;
    }
  }

  common::Table t({"Type", "WT (MB/s)", "WB (MB/s)", "Improvement (x)",
                   "paper WT", "paper WB", "paper (x)"});
  t.add_row({"Bcache", common::Table::num(rows[0].wt, 1),
             common::Table::num(rows[0].wb, 1),
             common::Table::num(rows[0].wb / rows[0].wt, 1), "15.3", "65.9",
             "4.3"});
  t.add_row({"Flashcache", common::Table::num(rows[1].wt, 1),
             common::Table::num(rows[1].wb, 1),
             common::Table::num(rows[1].wb / rows[1].wt, 1), "5.7", "100.3",
             "17.5"});
  t.print();
  return 0;
}
