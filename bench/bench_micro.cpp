// Microbenchmarks (google-benchmark): hot paths of the simulation substrate.
#include <benchmark/benchmark.h>

#include "block/mem_disk.hpp"
#include "common/crc32c.hpp"
#include "common/rng.hpp"
#include "flash/ftl.hpp"
#include "raid/raid_device.hpp"

namespace {

using namespace srcache;

void BM_Crc32cBlockTag(benchmark::State& state) {
  u64 tag = 0x123456789ABCDEF0ull;
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::crc32c_of(tag));
    ++tag;
  }
}
BENCHMARK(BM_Crc32cBlockTag);

void BM_Crc32c4K(benchmark::State& state) {
  std::vector<u8> buf(4096, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::crc32c(buf));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 4096);
}
BENCHMARK(BM_Crc32c4K);

void BM_XoshiroNext(benchmark::State& state) {
  common::Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_XoshiroNext);

void BM_ZipfNext(benchmark::State& state) {
  common::ZipfSampler zipf(1 << 20, 1.1, 2);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.next());
}
BENCHMARK(BM_ZipfNext);

void BM_FtlRandomWrite(benchmark::State& state) {
  flash::FtlConfig cfg;
  cfg.units = 8;
  cfg.pages_per_block = 256;
  cfg.exported_pages = 1 << 18;
  cfg.ops_fraction = 0.07;
  flash::Ftl ftl(cfg);
  for (u64 p = 0; p < cfg.exported_pages; ++p) ftl.write(p);
  common::Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.write(rng.below(cfg.exported_pages)));
  }
  state.counters["WA"] = ftl.stats().write_amplification();
}
BENCHMARK(BM_FtlRandomWrite);

void BM_Raid5SmallWrite(benchmark::State& state) {
  blockdev::MemDiskConfig mc;
  mc.capacity_blocks = 1 << 16;
  mc.track_content = false;
  std::vector<std::unique_ptr<blockdev::MemDisk>> disks;
  std::vector<blockdev::BlockDevice*> members;
  for (int i = 0; i < 4; ++i) {
    disks.push_back(std::make_unique<blockdev::MemDisk>(mc));
    members.push_back(disks.back().get());
  }
  raid::RaidDevice r5(raid::RaidConfig{raid::RaidLevel::kRaid5, 1}, members);
  common::Xoshiro256 rng(4);
  sim::SimTime t = 0;
  for (auto _ : state) {
    const u64 lba = rng.below(r5.capacity_blocks());
    benchmark::DoNotOptimize(r5.write(t, lba, 1, {}));
    t += 1000;
  }
}
BENCHMARK(BM_Raid5SmallWrite);

}  // namespace

BENCHMARK_MAIN();
