// Microbenchmarks (google-benchmark): hot paths of the simulation substrate,
// followed by one end-to-end SRC run whose latency percentiles and metrics
// are printed and (with REPRO_JSON=<path>) written as machine-readable JSON.
#include <benchmark/benchmark.h>

#include "block/mem_disk.hpp"
#include "common/crc32c.hpp"
#include "common/rng.hpp"
#include "flash/ftl.hpp"
#include "harness.hpp"
#include "raid/raid_device.hpp"

namespace {

using namespace srcache;

void BM_Crc32cBlockTag(benchmark::State& state) {
  u64 tag = 0x123456789ABCDEF0ull;
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::crc32c_of(tag));
    ++tag;
  }
}
BENCHMARK(BM_Crc32cBlockTag);

void BM_Crc32c4K(benchmark::State& state) {
  std::vector<u8> buf(4096, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::crc32c(buf));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 4096);
}
BENCHMARK(BM_Crc32c4K);

void BM_XoshiroNext(benchmark::State& state) {
  common::Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_XoshiroNext);

void BM_ZipfNext(benchmark::State& state) {
  common::ZipfSampler zipf(1 << 20, 1.1, 2);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.next());
}
BENCHMARK(BM_ZipfNext);

void BM_FtlRandomWrite(benchmark::State& state) {
  flash::FtlConfig cfg;
  cfg.units = 8;
  cfg.pages_per_block = 256;
  cfg.exported_pages = 1 << 18;
  cfg.ops_fraction = 0.07;
  flash::Ftl ftl(cfg);
  for (u64 p = 0; p < cfg.exported_pages; ++p) ftl.write(p);
  common::Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.write(rng.below(cfg.exported_pages)));
  }
  state.counters["WA"] = ftl.stats().write_amplification();
}
BENCHMARK(BM_FtlRandomWrite);

void BM_Raid5SmallWrite(benchmark::State& state) {
  blockdev::MemDiskConfig mc;
  mc.capacity_blocks = 1 << 16;
  mc.track_content = false;
  std::vector<std::unique_ptr<blockdev::MemDisk>> disks;
  std::vector<blockdev::BlockDevice*> members;
  for (int i = 0; i < 4; ++i) {
    disks.push_back(std::make_unique<blockdev::MemDisk>(mc));
    members.push_back(disks.back().get());
  }
  raid::RaidDevice r5(raid::RaidConfig{raid::RaidLevel::kRaid5, 1}, members);
  common::Xoshiro256 rng(4);
  sim::SimTime t = 0;
  for (auto _ : state) {
    const u64 lba = rng.below(r5.capacity_blocks());
    benchmark::DoNotOptimize(r5.write(t, lba, 1, {}));
    t += 1000;
  }
}
BENCHMARK(BM_Raid5SmallWrite);

// MetricsRegistry snapshot cost (pull path; nothing touches the hot path).
void BM_RegistrySnapshot(benchmark::State& state) {
  obs::MetricsRegistry reg;
  u64 n = 0;
  for (int i = 0; i < 64; ++i) {
    reg.counter_fn("c" + std::to_string(i), [&n] { return n; });
  }
  for (auto _ : state) {
    ++n;
    benchmark::DoNotOptimize(reg.snapshot());
  }
}
BENCHMARK(BM_RegistrySnapshot);

// Per-request cost of the latency recorder (the only per-op instrumentation
// the Runner adds) — a couple of branches and a histogram bucket increment.
void BM_LatencyRecord(benchmark::State& state) {
  obs::LatencyRecorder rec;
  common::Xoshiro256 rng(5);
  for (auto _ : state) {
    rec.record(static_cast<obs::ReqClass>(rng.below(obs::kNumReqClasses)),
               static_cast<sim::SimTime>(rng.below(1u << 24)));
  }
  benchmark::DoNotOptimize(rec.reads().count());
}
BENCHMARK(BM_LatencyRecord);

void BM_TraceComplete(benchmark::State& state) {
  obs::TraceLog trace(4096);
  sim::SimTime t = 0;
  for (auto _ : state) {
    trace.complete("req.read", obs::kTrackApp, t, t + 1000, 8);
    t += 1000;
  }
  benchmark::DoNotOptimize(trace.size());
}
BENCHMARK(BM_TraceComplete);

// One end-to-end SRC run (small scale) so a single `bench_micro` invocation
// exercises the full stack and — with REPRO_JSON — emits the paper metrics,
// latency percentiles and per-layer counters machine-readably.
void run_end_to_end() {
  using namespace srcache::bench;
  const double k = std::min(scale(), 0.1);
  auto rig = make_src_rig(default_src_config(), flash::spec_840pro_128(), k);
  const auto res = run_group(*rig, workload::TraceGroup::kMixed, k);

  std::printf("\n=== end-to-end SRC sample (mixed group, scale=%.3g) ===\n", k);
  common::Table t({"Metric", "Value"});
  t.add_row({"throughput MB/s", common::Table::num(res.throughput_mbps, 1)});
  t.add_row({"I/O amplification", common::Table::num(res.io_amplification, 3)});
  t.add_row({"hit ratio", common::Table::num(res.hit_ratio, 3)});
  t.add_row({"read p50 us", common::Table::num(res.read_lat.p50 / 1e3, 1)});
  t.add_row({"read p95 us", common::Table::num(res.read_lat.p95 / 1e3, 1)});
  t.add_row({"read p99 us", common::Table::num(res.read_lat.p99 / 1e3, 1)});
  t.add_row({"write p50 us", common::Table::num(res.write_lat.p50 / 1e3, 1)});
  t.add_row({"write p95 us", common::Table::num(res.write_lat.p95 / 1e3, 1)});
  t.add_row({"write p99 us", common::Table::num(res.write_lat.p99 / 1e3, 1)});
  t.print();

  report_run("bench_micro", "src_mixed", res);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_end_to_end();
  return 0;
}
