// Policy bake-off: hit ratio vs NAND write amplification across the Table 6
// trace groups, for every interesting (eviction, admission) combination.
//
// The paper's SRC design fixes one replacement/admission scheme; its claim
// of cost-effective flash caching is really one point on a hit-ratio vs
// flash-write frontier (ECI-Cache's argument — policy should answer to
// endurance, not hit ratio alone). This bench maps that frontier: each run
// is one (trace group, eviction+admission) cell on the sharded engine, and
// NAND WA = NAND pages programmed (host + device GC, summed over the
// array) per application block — the endurance cost of one unit of served
// traffic. tools/repro_report --frontier turns the REPRO_JSON document
// into the Pareto view and gates CI against FRONTIER_baseline.json.
//
// Run names are "<Group>/<eviction>+<admission>" (e.g. "Read/s3fifo+ghost");
// the eviction/admission fields are set explicitly per run, so REPRO_POLICY/
// REPRO_ADMIT do not change this bench (they select policies for the
// single-policy benches).
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

namespace {

// NAND write amplification for one run: pages programmed by the SSD array
// (host writes + device-internal GC copies) per application block in the
// measurement window. Mirrors tools/repro_report's --frontier computation.
double nand_wa(const workload::RunResult& r) {
  u64 programmed = 0;
  for (const auto& [key, value] : r.metrics.counters) {
    if (key.starts_with("ssd.") && key.ends_with(".pages_programmed"))
      programmed += value;
  }
  const u64 app = r.cache.app_blocks();
  return app == 0 ? 0.0
                  : static_cast<double>(programmed) / static_cast<double>(app);
}

}  // namespace

int main() {
  print_header(
      "Policy frontier: hit ratio vs NAND write amplification",
      "extension (ROADMAP bake-off; Table 6 trace groups, ECI-Cache metric)");
  const double k = scale();

  struct Combo {
    policy::EvictionKind ev;
    policy::AdmissionKind ad;
  };
  // paper+always is the paper's exact behaviour (the frontier anchor);
  // sieve+ghost adds nothing over sieve+always at smoke scale, so the grid
  // stays at the five combinations the CI gate tracks.
  const Combo combos[] = {
      {policy::EvictionKind::kPaper, policy::AdmissionKind::kAlways},
      {policy::EvictionKind::kPaper, policy::AdmissionKind::kGhost},
      {policy::EvictionKind::kS3Fifo, policy::AdmissionKind::kAlways},
      {policy::EvictionKind::kS3Fifo, policy::AdmissionKind::kGhost},
      {policy::EvictionKind::kSieve, policy::AdmissionKind::kAlways},
  };

  common::Table t({"Set", "Policy", "MB/s", "Hit%", "NAND WA", "I/O amp"});
  for (auto group : {workload::TraceGroup::kWrite, workload::TraceGroup::kMixed,
                     workload::TraceGroup::kRead}) {
    for (const Combo& c : combos) {
      src::SrcConfig cfg = default_src_config();
      cfg.eviction = c.ev;
      cfg.admission = c.ad;
      const std::string name = std::string(workload::to_string(group)) + "/" +
                               policy::to_string(c.ev) + "+" +
                               policy::to_string(c.ad);
      const auto res =
          run_group_sharded(cfg, flash::spec_840pro_128(), group, k,
                            "bench_policy_frontier", 42, name.c_str());
      t.add_row({workload::to_string(group),
                 std::string(policy::to_string(c.ev)) + "+" +
                     policy::to_string(c.ad),
                 common::Table::num(res.throughput_mbps, 0),
                 common::Table::num(res.hit_ratio * 100.0, 1),
                 common::Table::num(nand_wa(res), 3),
                 common::Table::num(res.io_amplification, 2)});
    }
  }
  t.print();
  std::printf(
      "\nNAND WA = SSD pages programmed (host + device GC) per application "
      "block.\nLower WA at equal-or-better hit ratio strictly improves "
      "endurance per served I/O;\nrepro_report --frontier prints the "
      "Pareto view and CI gates it against\nFRONTIER_baseline.json.\n");
  return 0;
}
