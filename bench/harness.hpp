// Shared experiment rig for the bench binaries.
//
// Every bench reproduces one table or figure of the paper at a configurable
// scale: REPRO_SCALE (default 0.25) multiplies device capacities, erase
// groups, cache regions and workload footprints together, preserving every
// pressure ratio (cache/working-set, OPS fraction, segments per SG);
// REPRO_SECONDS (default 10) sets the measured virtual duration per point
// (the paper measures 10 wall-clock minutes; virtual seconds only change
// statistical noise, not the shape).
//
// Observability hooks:
//   REPRO_JSON=<path>   also write every reported run (paper metrics,
//                       latency percentiles, metrics-registry delta) as one
//                       JSON document — see workload/report.hpp.
//   REPRO_TRACE=<path>  record a Chrome trace-event timeline of the runs
//                       executed through run_group(SrcRig&, ...).
//   REPRO_SPAN_SAMPLE=<rate in [0,1]>  head-sample that fraction of measured
//                       ops into causal op-span trees (obs/span.hpp): the
//                       sampled ops' full descent — cache lookup, segment
//                       fill, destage, RAID stripe strategy, per-die NAND
//                       phases, backend fetch — lands in the REPRO_JSON
//                       "spans" block and (with REPRO_TRACE) as nested Chrome
//                       slices with flow arrows. Deterministic per shard
//                       domain: the merged aggregate is bit-identical across
//                       REPRO_SHARDS/REPRO_THREADS.
//   REPRO_SLO_MBPS / REPRO_SLO_READ_P99_MS / REPRO_SLO_WRITE_P99_MS /
//   REPRO_SLO_MAX_DEGRADED / REPRO_SLO_BUDGET  arm the epoch SLO watchdog
//                       (obs/slo.hpp) on engine-driven runs: each epoch
//                       barrier is judged against the targets and the
//                       verdicts land in the REPRO_JSON "slo" block
//                       (inspect with tools/repro_report --slo).
//   REPRO_FAULT_PLAN=<plan>  arm a scripted fault schedule (fault/
//                       fault_plan.hpp syntax) on every engine domain of a
//                       run_group_sharded bench; `replace`/`spare` actions
//                       route to a per-domain background rebuild engine
//                       (raid/rebuild.hpp) whose outcome lands in the
//                       REPRO_JSON "rebuild" block.
//   REPRO_REBUILD_MBPS / REPRO_REBUILD_SPARES  rate-limit the background
//                       reconstruction stream / size the hot-spare pool.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/bcache_like.hpp"
#include "baselines/flashcache_like.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "engine/engine.hpp"
#include "cost/cost_model.hpp"
#include "fault/fault_injector.hpp"
#include "flash/sim_ssd.hpp"
#include "hdd/iscsi_target.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "raid/raid_device.hpp"
#include "raid/rebuild.hpp"
#include "src_cache/src_cache.hpp"
#include "tier/tier_cache.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"
#include "workload/trace_synth.hpp"

namespace srcache::bench {

// Strict env-knob parsing: a typo'd REPRO_SCALE=0,5 or REPRO_SECONDS=10x
// must abort with a clear message, not silently run the wrong experiment
// (atof would read them as 0 and 10). The whole value must parse as a finite
// number within [lo, hi].
inline double env_knob(const char* name, double fallback, double lo,
                       double hi) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0' || !std::isfinite(v) || v < lo ||
      v > hi) {
    std::fprintf(stderr,
                 "%s=\"%s\" is not a number in [%g, %g]; "
                 "refusing to run with a misconfigured knob\n",
                 name, s, lo, hi);
    std::exit(2);
  }
  return v;
}

// Integer variant of env_knob, same philosophy: the whole value must parse
// as an integer in [lo, hi] or the bench refuses to run.
inline u32 env_knob_u32(const char* name, u32 fallback, u32 lo, u32 hi) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v < static_cast<long>(lo) ||
      v > static_cast<long>(hi)) {
    std::fprintf(stderr,
                 "%s=\"%s\" is not an integer in [%u, %u]; "
                 "refusing to run with a misconfigured knob\n",
                 name, s, lo, hi);
    std::exit(2);
  }
  return static_cast<u32>(v);
}

inline double scale() {
  static const double k = env_knob("REPRO_SCALE", 0.25, 1e-3, 64.0);
  return k;
}

inline sim::SimTime run_duration() {
  static const double secs = env_knob("REPRO_SECONDS", 10.0, 1e-3, 86400.0);
  return static_cast<sim::SimTime>(secs * 1e9);
}

// Borrowed raw pointers over an owning SSD vector (shared by all rigs).
inline std::vector<blockdev::BlockDevice*> borrow_ssds(
    const std::vector<std::unique_ptr<flash::SimSsd>>& ssds) {
  std::vector<blockdev::BlockDevice*> v;
  v.reserve(ssds.size());
  for (const auto& s : ssds) v.push_back(s.get());
  return v;
}

// --- machine-readable output (REPRO_JSON) ----------------------------------

inline const char* repro_json_path() { return std::getenv("REPRO_JSON"); }
inline const char* repro_trace_path() { return std::getenv("REPRO_TRACE"); }

// REPRO_TIMESERIES_MS=<virtual ms> turns on fixed-interval sampling of every
// measured run; the per-interval series (throughput, hit ratio, GC, per-
// resource utilization) are embedded in the REPRO_JSON document (v2 schema)
// and exportable as CSV via tools/repro_report. 0/unset = off.
inline sim::SimTime repro_timeseries_interval() {
  static const double ms = env_knob("REPRO_TIMESERIES_MS", 0.0, 0.0, 1e9);
  return static_cast<sim::SimTime>(ms * 1e6);
}

// Multi-tenant knobs (bench_multitenant): adaptive-partition epoch length
// and the SHARDS spatial sampling rate of the per-tenant MRC profilers.
inline sim::SimTime repro_epoch() {
  static const double ms = env_knob("REPRO_EPOCH_MS", 1000.0, 1.0, 1e9);
  return static_cast<sim::SimTime>(ms * 1e6);
}

inline double repro_shards_rate() {
  static const double r = env_knob("REPRO_SHARDS_RATE", 0.1, 1e-4, 1.0);
  return r;
}

// Sharded-engine execution knobs (src/engine). REPRO_SHARDS sets how many
// execution lanes run the fixed domain partition concurrently; REPRO_THREADS
// caps the worker pool (0 = min(lanes, hardware threads)). Both change only
// wall-clock behaviour — the deterministic parts of REPRO_JSON are
// bit-identical across every shards/threads combination.
inline u32 repro_shards() {
  static const u32 n = env_knob_u32("REPRO_SHARDS", 1, 1, 256);
  return n;
}

inline u32 repro_threads() {
  static const u32 n = env_knob_u32("REPRO_THREADS", 0, 0, 256);
  return n;
}

// Op-span head-sampling rate (REPRO_SPAN_SAMPLE). 0 = tracing off. The draw
// happens once per measured op in issue order (obs::SpanTracer), so the rate
// changes only how many ops are recorded, never the simulated outcome.
inline double repro_span_sample() {
  static const double r = env_knob("REPRO_SPAN_SAMPLE", 0.0, 0.0, 1.0);
  return r;
}

// Replacement/admission selection (REPRO_POLICY / REPRO_ADMIT): which
// eviction scheme GC consults for clean blocks and whether read-miss fills
// are gated on reuse evidence (src/policy). Same strictness as the numeric
// knobs — a misspelled policy name must abort, not silently run the paper
// default and pollute a bake-off.
inline policy::EvictionKind repro_policy() {
  static const policy::EvictionKind k = [] {
    const char* s = std::getenv("REPRO_POLICY");
    if (s == nullptr || *s == '\0') return policy::EvictionKind::kPaper;
    const auto parsed = policy::parse_eviction(s);
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "REPRO_POLICY=\"%s\" is not one of {paper, s3fifo, "
                   "sieve}; refusing to run with a misconfigured knob\n",
                   s);
      std::exit(2);
    }
    return *parsed;
  }();
  return k;
}

inline policy::AdmissionKind repro_admit() {
  static const policy::AdmissionKind k = [] {
    const char* s = std::getenv("REPRO_ADMIT");
    if (s == nullptr || *s == '\0') return policy::AdmissionKind::kAlways;
    const auto parsed = policy::parse_admission(s);
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "REPRO_ADMIT=\"%s\" is not one of {always, ghost}; "
                   "refusing to run with a misconfigured knob\n",
                   s);
      std::exit(2);
    }
    return *parsed;
  }();
  return k;
}

// Compressed-DRAM-tier knobs (src/tier). REPRO_TIER_MB=0 (the default)
// runs without a tier; >0 fronts every engine domain's SRC stack with a
// compressed DRAM cache whose budgets sum to that many MiB across the
// domain partition. The dependent knobs select the tier's eviction policy,
// its dirty-share bound and the simulated compressor's per-byte CPU charge;
// setting any of them without REPRO_TIER_MB aborts (validate_repro_knobs)
// because the run would silently ignore them.
inline u32 repro_tier_mb() {
  static const u32 n = env_knob_u32("REPRO_TIER_MB", 0, 0, 1u << 20);
  return n;
}

inline policy::EvictionKind repro_tier_policy() {
  static const policy::EvictionKind k = [] {
    const char* s = std::getenv("REPRO_TIER_POLICY");
    if (s == nullptr || *s == '\0') return policy::EvictionKind::kPaper;
    const auto parsed = policy::parse_eviction(s);
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "REPRO_TIER_POLICY=\"%s\" is not one of {paper, s3fifo, "
                   "sieve}; refusing to run with a misconfigured knob\n",
                   s);
      std::exit(2);
    }
    return *parsed;
  }();
  return k;
}

inline u32 repro_tier_dirty_pct() {
  static const u32 n = env_knob_u32("REPRO_TIER_DIRTY_PCT", 50, 0, 100);
  return n;
}

inline double repro_tier_cpu_nspb() {
  static const double r = env_knob("REPRO_TIER_CPU_NSPB", 1.0, 0.0, 1000.0);
  return r;
}

// Scripted fault schedule (REPRO_FAULT_PLAN, fault/fault_plan.hpp syntax),
// armed per engine domain by run_group_sharded. nullptr = no faults.
inline const char* repro_fault_plan() {
  const char* s = std::getenv("REPRO_FAULT_PLAN");
  return (s == nullptr || *s == '\0') ? nullptr : s;
}

// Background-rebuild knobs (raid/rebuild.hpp): the reconstruction copy rate
// limit and the initial hot-spare pool. Parsed with the same strictness as
// every other knob — REPRO_REBUILD_MBPS=-1 must abort, not silently rebuild
// at the default rate.
inline double repro_rebuild_mbps() {
  static const double r = env_knob("REPRO_REBUILD_MBPS", 256.0, 1e-3, 1e6);
  return r;
}

inline u32 repro_rebuild_spares() {
  static const u32 n = env_knob_u32("REPRO_REBUILD_SPARES", 1, 0, 255);
  return n;
}

// Epoch SLO watchdog targets (REPRO_SLO_*). Unset targets stay disarmed;
// policy.any() == false means no watchdog hook is installed at all.
inline obs::SloPolicy repro_slo_policy() {
  obs::SloPolicy p;
  p.min_throughput_mbps = env_knob("REPRO_SLO_MBPS", 0.0, 0.0, 1e9);
  p.max_read_p99_ms = env_knob("REPRO_SLO_READ_P99_MS", 0.0, 0.0, 1e9);
  p.max_write_p99_ms = env_knob("REPRO_SLO_WRITE_P99_MS", 0.0, 0.0, 1e9);
  if (std::getenv("REPRO_SLO_MAX_DEGRADED") != nullptr) {
    p.max_degraded_domains = static_cast<i32>(
        env_knob_u32("REPRO_SLO_MAX_DEGRADED", 0, 0, 256));
  }
  p.error_budget = env_knob("REPRO_SLO_BUDGET", 0.1, 0.0, 1.0);
  return p;
}

// Knob-interaction validation, run once from print_header() before any
// experiment starts. Each individual knob already fails fast on a malformed
// value (env_knob); this catches combinations that would silently produce a
// useless run — better to refuse than to burn minutes and emit nothing.
inline void validate_repro_knobs() {
  const char* json = repro_json_path();
  const char* trace = repro_trace_path();
  if (repro_timeseries_interval() > 0 && json == nullptr) {
    std::fprintf(stderr,
                 "REPRO_TIMESERIES_MS is set but REPRO_JSON is not: the "
                 "sampled series are only emitted into the JSON document, so "
                 "this run would sample and then discard everything. Set "
                 "REPRO_JSON=<path> or unset REPRO_TIMESERIES_MS.\n");
    std::exit(2);
  }
  if (json != nullptr && trace != nullptr &&
      std::string(json) == std::string(trace)) {
    std::fprintf(stderr,
                 "REPRO_JSON and REPRO_TRACE point at the same file (%s); "
                 "the two outputs would overwrite each other.\n",
                 json);
    std::exit(2);
  }
  if (repro_timeseries_interval() > run_duration()) {
    std::fprintf(stderr,
                 "REPRO_TIMESERIES_MS (%.0f ms) exceeds the measurement "
                 "window REPRO_SECONDS (%.3g s): not a single interval would "
                 "close. Lower the interval or lengthen the run.\n",
                 static_cast<double>(repro_timeseries_interval()) / 1e6,
                 sim::to_seconds(run_duration()));
    std::exit(2);
  }
  // Force both engine knobs through strict parsing even when unused, and
  // catch combinations that would silently under-deliver: REPRO_THREADS
  // without parallel lanes does nothing, and more threads than lanes can
  // never all be busy — both almost certainly mean a mistyped knob.
  const u32 shards = repro_shards();
  const u32 threads = repro_threads();
  if (threads > 0 && shards == 1) {
    std::fprintf(stderr,
                 "REPRO_THREADS=%u with REPRO_SHARDS=1: a single execution "
                 "lane cannot use a thread pool. Set REPRO_SHARDS>1 or unset "
                 "REPRO_THREADS.\n",
                 threads);
    std::exit(2);
  }
  if (threads > shards) {
    std::fprintf(stderr,
                 "REPRO_THREADS=%u exceeds REPRO_SHARDS=%u: extra threads "
                 "would sit idle. Lower REPRO_THREADS or raise "
                 "REPRO_SHARDS.\n",
                 threads, shards);
    std::exit(2);
  }
  // Force the observability knobs through strict parsing up front: a typo'd
  // REPRO_SPAN_SAMPLE or REPRO_SLO_* must abort before any experiment runs,
  // not silently trace nothing.
  (void)repro_span_sample();
  (void)repro_slo_policy();
  (void)repro_policy();
  (void)repro_admit();
  (void)repro_rebuild_mbps();
  (void)repro_rebuild_spares();
  // Tier knobs: force strict parsing, then refuse dependent knobs that a
  // tier-less run would silently ignore — a bake-off that thinks it swept
  // REPRO_TIER_POLICY but never enabled the tier is worse than no run.
  (void)repro_tier_policy();
  (void)repro_tier_dirty_pct();
  (void)repro_tier_cpu_nspb();
  if (repro_tier_mb() == 0) {
    for (const char* dep :
         {"REPRO_TIER_POLICY", "REPRO_TIER_DIRTY_PCT", "REPRO_TIER_CPU_NSPB"}) {
      if (std::getenv(dep) != nullptr) {
        std::fprintf(stderr,
                     "%s is set but REPRO_TIER_MB is 0/unset: the compressed "
                     "DRAM tier is disabled, so the knob would be silently "
                     "ignored. Set REPRO_TIER_MB>0 or unset %s.\n",
                     dep, dep);
        std::exit(2);
      }
    }
  }
  // A malformed fault plan must abort before any experiment runs, with the
  // parser's message naming the offending clause.
  if (repro_fault_plan() != nullptr) {
    const auto plan = fault::FaultPlan::parse(repro_fault_plan());
    if (!plan.is_ok()) {
      std::fprintf(stderr,
                   "REPRO_FAULT_PLAN: %s; refusing to run with a "
                   "misconfigured knob\n",
                   plan.status().to_string().c_str());
      std::exit(2);
    }
  }
}

// Writes a recorded TraceLog to REPRO_TRACE as Chrome trace-event JSON.
// The two-argument form merges the event timeline with the sampled op-span
// trees (obs::combined_chrome_json) into one document; either input may be
// null.
inline void write_chrome_trace_json(const std::string& json) {
  std::FILE* f = std::fopen(repro_trace_path(), "w");
  if (f == nullptr ||
      std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
    std::fprintf(stderr, "REPRO_TRACE: cannot write %s\n", repro_trace_path());
  }
  if (f != nullptr) std::fclose(f);
}

inline void write_chrome_trace(obs::TraceLog& log) {
  write_chrome_trace_json(log.to_chrome_json());
}

inline void write_chrome_trace(const obs::TraceLog* log,
                               const obs::SpanTracer* spans) {
  write_chrome_trace_json(obs::combined_chrome_json(log, spans));
}

inline workload::ReproReport& json_report() {
  static workload::ReproReport report(scale(),
                                      sim::to_seconds(run_duration()));
  return report;
}

// Records one measured run into the REPRO_JSON document (no-op without the
// env var). The file is rewritten after every run so a crashed or
// interrupted bench still leaves valid JSON behind.
inline void report_run(const char* bench, const std::string& name,
                       const workload::RunResult& r) {
  if (repro_json_path() == nullptr) return;
  json_report().add(bench, name, r);
  if (!json_report().write_file(repro_json_path()))
    std::fprintf(stderr, "REPRO_JSON: cannot write %s\n", repro_json_path());
}

// Paper geometry scaled: erase group, chunk, 18-SG cache region.
struct Geometry {
  u64 erase_group_bytes;
  u64 chunk_bytes;
  u64 region_bytes_per_ssd;  // 18 erase groups
  u64 ssd_capacity_bytes;    // region + spare (the paper's dummy-filled rest)
  u64 group_footprint_bytes; // ~50 GB per trace group at scale 1

  static Geometry at(double k) {
    Geometry g;
    g.erase_group_bytes = static_cast<u64>(256.0 * k) * MiB;
    if (g.erase_group_bytes < 8 * MiB) g.erase_group_bytes = 8 * MiB;
    g.chunk_bytes = 512 * KiB;
    g.region_bytes_per_ssd = 18 * g.erase_group_bytes;
    g.ssd_capacity_bytes = g.region_bytes_per_ssd + 2 * g.erase_group_bytes;
    g.group_footprint_bytes = static_cast<u64>(50.0 * k * 1024.0) * MiB;
    return g;
  }
};

// Scales an SsdSpec's NAND geometry so the device exports exactly
// `capacity` with its erase group scaled by the same factor as everything
// else (flash block count and per-op timing stay realistic).
inline flash::SsdSpec sized_spec(flash::SsdSpec s, u64 capacity_bytes,
                                 double k = scale()) {
  s.capacity_bytes = capacity_bytes;
  const u64 target_eg = std::max<u64>(
      8 * MiB, static_cast<u64>(static_cast<double>(s.erase_group_bytes()) * k));
  u64 ppb = target_eg / (static_cast<u64>(s.units) * kBlockSize);
  // Power-of-two pages per block, at least 64 (256 KiB flash blocks).
  u64 rounded = 64;
  while (rounded * 2 <= ppb) rounded *= 2;
  s.pages_per_block = rounded;
  // Never let one erase group exceed a quarter of the device.
  while (static_cast<u64>(s.units) * s.pages_per_block * kBlockSize >
             capacity_bytes / 4 &&
         s.pages_per_block > 64) {
    s.pages_per_block /= 2;
  }
  return s;
}

struct SrcRig {
  Geometry geo;
  std::vector<std::unique_ptr<flash::SimSsd>> ssds;
  std::unique_ptr<hdd::IscsiTarget> primary;
  std::unique_ptr<src::SrcCache> cache;
  // Registry over the whole stack ("src.*", "ssd.<i>.*", "hdd.*"); wired by
  // make_src_rig. Event trace and op-span tracer, allocated on demand by
  // enable_tracing() / enable_spans().
  obs::MetricsRegistry registry;
  std::unique_ptr<obs::TraceLog> trace;
  std::unique_ptr<obs::SpanTracer> spans;

  [[nodiscard]] std::vector<blockdev::BlockDevice*> ssd_ptrs() const {
    return borrow_ssds(ssds);
  }
};

// Attaches a TraceLog to every layer of the rig (idempotent). The log drops
// the newest events once full instead of overwriting old ones; the drop
// count is exported as the "obs.trace.dropped" gauge so a truncated timeline
// is visible in the metrics delta, never silent.
inline obs::TraceLog& enable_tracing(SrcRig& rig, size_t capacity = 1 << 16) {
  if (!rig.trace) {
    rig.trace = std::make_unique<obs::TraceLog>(capacity);
    rig.cache->set_trace(rig.trace.get(), obs::kTrackSrc);
    rig.primary->set_trace(rig.trace.get(), obs::kTrackPrimary);
    for (size_t i = 0; i < rig.ssds.size(); ++i)
      rig.ssds[i]->set_trace(rig.trace.get(),
                             obs::kTrackSsdBase + static_cast<u32>(i));
    obs::TraceLog* log = rig.trace.get();
    obs::Scope(rig.registry, "obs").gauge_fn("trace.dropped", [log] {
      return static_cast<double>(log->dropped());
    });
  }
  return *rig.trace;
}

// Attaches an op-span tracer to every layer of the rig (idempotent): the
// cache contributes src.*/backend.* child spans, each SSD its ssd.*/nand.*
// descent tagged with its array index. The caller wires the tracer into
// RunConfig::spans so the closed loop opens the per-op roots.
inline obs::SpanTracer& enable_spans(SrcRig& rig, u64 seed, double rate) {
  if (!rig.spans) {
    rig.spans = std::make_unique<obs::SpanTracer>(seed, rate);
    rig.cache->set_span(rig.spans.get());
    for (size_t i = 0; i < rig.ssds.size(); ++i)
      rig.ssds[i]->set_span(rig.spans.get(), static_cast<u32>(i));
  }
  return *rig.spans;
}

inline std::unique_ptr<hdd::IscsiTarget> make_primary(double k) {
  hdd::IscsiConfig cfg;
  cfg.disk.capacity_bytes = static_cast<u64>(2000.0 * k * 1024.0) * MiB;
  cfg.disk.track_content = false;
  // The target server's page cache scales with the testbed (32 GB host).
  cfg.server_cache_bytes = static_cast<u64>(24.0 * k * 1024.0) * MiB;
  cfg.dirty_limit_bytes = static_cast<u64>(1.0 * k * 1024.0) * MiB;
  return std::make_unique<hdd::IscsiTarget>(cfg);
}

// Builds the full SRC stack: 4 preconditioned SSDs + iSCSI primary.
// `cfg_tweak`, when set, runs after the geometry-derived fields are filled
// in and before the cache is built — the hook a bench uses to sweep a
// geometry-coupled parameter (e.g. Fig. 4's erase-group size) without
// make_src_rig overwriting it.
inline std::unique_ptr<SrcRig> make_src_rig(
    const src::SrcConfig& overrides, const flash::SsdSpec& base_spec,
    double k = scale(), bool precondition = true,
    const std::function<void(src::SrcConfig&, const Geometry&)>& cfg_tweak =
        {}) {
  auto rig = std::make_unique<SrcRig>();
  rig->geo = Geometry::at(k);

  src::SrcConfig cfg = overrides;
  cfg.erase_group_bytes = rig->geo.erase_group_bytes;
  cfg.chunk_bytes = rig->geo.chunk_bytes;
  cfg.region_bytes_per_ssd = rig->geo.region_bytes_per_ssd;
  cfg.verify_checksums = false;  // perf runs use non-tracking devices
  cfg.twait = 10 * sim::kMs;     // see EXPERIMENTS.md (paper: 20 us)
  if (cfg_tweak) cfg_tweak(cfg, rig->geo);

  const flash::SsdSpec spec = sized_spec(base_spec, rig->geo.ssd_capacity_bytes);
  for (u32 i = 0; i < cfg.num_ssds; ++i) {
    rig->ssds.push_back(
        std::make_unique<flash::SimSsd>(spec, /*track_content=*/false));
    if (precondition) rig->ssds.back()->precondition();
    rig->ssds.back()->register_metrics(
        obs::Scope(rig->registry, "ssd." + std::to_string(i)));
  }
  rig->primary = make_primary(k);
  rig->primary->register_metrics(obs::Scope(rig->registry, "hdd"));
  rig->cache =
      std::make_unique<src::SrcCache>(cfg, rig->ssd_ptrs(), rig->primary.get());
  rig->cache->register_metrics(obs::Scope(rig->registry, "src"));
  rig->cache->format(0);
  return rig;
}

inline src::SrcConfig default_src_config() {
  src::SrcConfig cfg;  // paper defaults (Table 7 bold entries)
  // Benches pass this config into make_src_rig / run_group_sharded, so the
  // knob-selected policies propagate into every engine domain's stack.
  cfg.eviction = repro_policy();
  cfg.admission = repro_admit();
  return cfg;
}

// Bcache5 / Flashcache5: the baseline over a RAID-5 of the same four SSDs
// (§5.4 settings: 4 KiB RAID chunk, 2 MiB sets/buckets, 90% thresholds).
struct BaselineRig {
  Geometry geo;
  std::vector<std::unique_ptr<flash::SimSsd>> ssds;
  std::unique_ptr<raid::RaidDevice> raid5;
  std::unique_ptr<hdd::IscsiTarget> primary;
  std::unique_ptr<cache::CacheDevice> cache;
  // Op-span tracer (REPRO_SPAN_SAMPLE): the RAID layer contributes stripe-
  // strategy children, the SSDs their NAND descent.
  std::unique_ptr<obs::SpanTracer> spans;

  [[nodiscard]] std::vector<blockdev::BlockDevice*> ssd_ptrs() const {
    return borrow_ssds(ssds);
  }
};

inline std::unique_ptr<BaselineRig> make_baseline_devices(
    const flash::SsdSpec& base_spec, double k,
    raid::RaidLevel level = raid::RaidLevel::kRaid5, int num_ssds = 4) {
  auto rig = std::make_unique<BaselineRig>();
  rig->geo = Geometry::at(k);
  const flash::SsdSpec spec =
      sized_spec(base_spec, rig->geo.ssd_capacity_bytes);
  for (int i = 0; i < num_ssds; ++i) {
    rig->ssds.push_back(
        std::make_unique<flash::SimSsd>(spec, /*track_content=*/false));
    rig->ssds.back()->precondition();
  }
  raid::RaidConfig rc{level, 1};  // 4 KiB chunks (paper's optimal for 4K RW)
  std::vector<blockdev::BlockDevice*> members = rig->ssd_ptrs();
  rig->raid5 = std::make_unique<raid::RaidDevice>(rc, members);
  rig->primary = make_primary(k);
  return rig;
}

inline u64 baseline_cache_blocks(const BaselineRig& rig) {
  // Same cache region as SRC: 18 erase groups per SSD worth of data space.
  const u64 data_ssds =
      rig.raid5->config().level == raid::RaidLevel::kRaid1
          ? rig.ssds.size() / 2
          : (rig.raid5->config().level == raid::RaidLevel::kRaid0
                 ? rig.ssds.size()
                 : rig.ssds.size() - 1);
  return data_ssds * (rig.geo.region_bytes_per_ssd / kBlockSize);
}

inline std::unique_ptr<BaselineRig> make_bcache5_rig(
    const flash::SsdSpec& spec, double k,
    raid::RaidLevel level = raid::RaidLevel::kRaid5) {
  auto rig = make_baseline_devices(spec, k, level);
  baselines::BcacheConfig cfg;
  cfg.cache_blocks = baseline_cache_blocks(*rig);
  cfg.bucket_blocks = 512;        // 2 MiB buckets
  cfg.writeback_percent = 0.90;   // §5.4 setting
  rig->cache = std::make_unique<baselines::BcacheLike>(cfg, rig->raid5.get(),
                                                       rig->primary.get());
  return rig;
}

inline std::unique_ptr<BaselineRig> make_flashcache5_rig(
    const flash::SsdSpec& spec, double k,
    raid::RaidLevel level = raid::RaidLevel::kRaid5) {
  auto rig = make_baseline_devices(spec, k, level);
  baselines::FlashcacheConfig cfg;
  cfg.cache_blocks = baseline_cache_blocks(*rig);
  cfg.set_blocks = 512;           // 2 MiB sets
  cfg.dirty_thresh_pct = 0.90;    // §5.4 setting
  rig->cache = std::make_unique<baselines::FlashcacheLike>(
      cfg, rig->raid5.get(), rig->primary.get());
  return rig;
}

// Runs one trace group against a cache and reports the paper's metrics.
// The measurement window starts after an untimed warm-up of twice the
// cache's data capacity, approximating the paper's long warm runs.
inline workload::RunResult run_group(cache::CacheDevice* cache,
                                     std::vector<blockdev::BlockDevice*> ssds,
                                     workload::TraceGroup group, double k,
                                     u64 seed = 42) {
  const Geometry geo = Geometry::at(k);
  workload::TraceSet set =
      workload::make_trace_set(group, geo.group_footprint_bytes, seed);
  workload::Runner runner(cache, std::move(ssds));
  workload::RunConfig rc;
  rc.threads_per_gen = 4;  // the paper replays each trace with 4 threads
  rc.iodepth = 4;
  rc.duration = run_duration();
  rc.warmup_bytes = 2 * 3 * geo.region_bytes_per_ssd;  // ~2x data capacity
  rc.timeseries_interval = repro_timeseries_interval();
  return runner.run(set.generators(), rc);
}

// SRC-rig overload: also measures the metrics registry and the write-
// provenance ledger across the run and, with REPRO_TRACE set, records and
// writes a Chrome trace of the run (merged with op-span trees when
// REPRO_SPAN_SAMPLE is on).
inline workload::RunResult run_group(SrcRig& rig, workload::TraceGroup group,
                                     double k, u64 seed = 42) {
  const Geometry geo = Geometry::at(k);
  workload::TraceSet set =
      workload::make_trace_set(group, geo.group_footprint_bytes, seed);
  workload::Runner runner(rig.cache.get(), rig.ssd_ptrs());
  workload::RunConfig rc;
  rc.threads_per_gen = 4;
  rc.iodepth = 4;
  rc.duration = run_duration();
  rc.warmup_bytes = 2 * 3 * geo.region_bytes_per_ssd;
  rc.registry = &rig.registry;
  rc.timeseries_interval = repro_timeseries_interval();
  rc.provenance = &rig.cache->provenance();
  if (repro_span_sample() > 0.0) {
    // Span-tracer seed derived (not equal to) the trace seed, so the
    // sampling stream never aliases the workload's own RNG streams.
    rc.spans = &enable_spans(rig, common::SplitMix64(seed).next(),
                             repro_span_sample());
  }
  if (repro_trace_path() != nullptr) {
    rc.trace = &enable_tracing(rig);
    rc.trace_track = obs::kTrackApp;
  }
  workload::RunResult res = runner.run(set.generators(), rc);
  if (repro_trace_path() != nullptr)
    write_chrome_trace(rig.trace.get(), rig.spans.get());
  return res;
}

// --- sharded-engine replay (src/engine) ------------------------------------

// The fixed logical partition bench groups are split into. A property of
// the experiment, NOT of REPRO_SHARDS: every execution configuration runs
// these same domains, which is what makes the merged output bit-identical
// across shard counts. 8 matches the paper-scale geometry exactly (at the
// default REPRO_SCALE=0.25 each domain's erase group lands on the 8 MiB
// floor rather than below it).
inline constexpr u32 kEngineDomains = 8;

// One engine domain's rig: a full (1/kEngineDomains-scale) SRC stack plus
// the trace set whose generators the domain replays. Owned via
// DomainSetup::owned so it outlives the engine run.
struct EngineDomainRig {
  std::unique_ptr<SrcRig> rig;
  workload::TraceSet set;
  // Armed only under REPRO_FAULT_PLAN: the domain's scripted injector and
  // the rebuild engine its replace/spare actions drive.
  std::unique_ptr<fault::FaultInjector> fault;
  std::unique_ptr<raid::RebuildManager> rebuild;
  // Armed only with a tier budget (REPRO_TIER_MB or a bench override): the
  // compressed DRAM tier fronting this domain's SRC stack.
  std::unique_ptr<tier::TierCache> tier;
};

// Per-domain seed stream: expand the group seed so domains replay distinct
// (but fixed) trace sets regardless of build order or lane placement.
inline u64 domain_seed(u64 seed, u32 index) {
  common::SplitMix64 seq(seed);
  u64 dseed = 0;
  for (u32 i = 0; i <= index; ++i) dseed = seq.next();
  return dseed;
}

// Shared tail of every sharded bench run: engine configuration from the
// REPRO_SHARDS/REPRO_THREADS knobs, the epoch SLO watchdog when any
// REPRO_SLO_* target is armed, the [engine] stdout line, the REPRO_JSON
// "perf" record, and the merged-run report. The watchdog hook is a
// deterministic function of quiescent index-ordered domain state (exact op/
// byte sums, bucket-exact histogram merges), so arming it never perturbs the
// bit-identity contract of the run itself.
inline workload::RunResult run_engine_sharded(
    const char* bench, const std::string& name, u32 num_domains,
    const engine::DomainFactory& factory) {
  engine::EngineConfig ecfg;
  ecfg.shards = repro_shards();
  ecfg.threads = repro_threads();
  engine::ParallelEngine eng(ecfg);

  // Pump every domain's background rebuild at the barrier, so rate-limited
  // reconstruction advances through op-sparse stretches too. pump(now) is
  // monotone and idempotent, the barrier time is a fixed window-relative
  // virtual time, and domains are walked in index order — the hook is a
  // deterministic function of quiescent domain state, as the engine
  // contract requires. Registered first so an SLO hook at the same barrier
  // judges the post-pump state.
  eng.add_epoch_hook([](const engine::EpochView& v) {
    for (const auto& dom : *v.domains) {
      raid::RebuildManager* mgr = dom->config().rebuild;
      if (mgr != nullptr) mgr->pump(dom->window_start() + v.rel_end);
    }
  });

  const obs::SloPolicy policy = repro_slo_policy();
  std::shared_ptr<obs::SloWatchdog> watchdog;
  if (policy.any()) {
    watchdog = std::make_shared<obs::SloWatchdog>(policy);
    eng.add_epoch_hook([watchdog](const engine::EpochView& v) {
      u64 ops = 0;
      u64 bytes = 0;
      common::Histogram reads;
      common::Histogram writes;
      u32 degraded = 0;
      for (const auto& dom : *v.domains) {
        ops += dom->ops();
        bytes += dom->bytes();
        reads.merge(dom->latency().reads());
        writes.merge(dom->latency().writes());
        bool any_degraded = false;
        for (const blockdev::BlockDevice* d : dom->ssds())
          any_degraded = any_degraded || d->failed();
        // A domain mid-rebuild is degraded too: the replacement is installed
        // but still serves reconstructed reads until the copy completes.
        const raid::RebuildManager* mgr = dom->config().rebuild;
        if (mgr != nullptr && mgr->rebuilding()) any_degraded = true;
        if (any_degraded) ++degraded;
      }
      watchdog->observe_epoch(v.rel_end, ops, bytes, reads, writes, degraded);
    });
  }

  engine::EngineResult er = eng.run(num_domains, factory);
  // Assigned on the merged result (not merged per-domain): the verdicts are
  // properties of the whole fleet at each barrier.
  if (watchdog) er.merged.slo = watchdog->outcome();

  std::printf(
      "[engine] %s: domains=%u shards=%u threads=%u epochs=%u "
      "wall=%.2fs sim-ops/s=%.0f\n",
      name.c_str(), er.domains, er.shards, er.threads, er.epochs,
      er.wall_seconds, er.sim_ops_per_sec);
  if (watchdog && er.merged.slo.active) {
    std::printf("[slo] %s: epochs=%u violations=%u burn=%.2f %s\n",
                name.c_str(), er.merged.slo.epochs, er.merged.slo.violations,
                er.merged.slo.burn_rate,
                er.merged.slo.breached ? "BREACHED" : "ok");
  }

  if (repro_json_path() != nullptr) {
    json_report().set_perf_config(er.shards, er.threads);
    workload::PerfRun pr;
    pr.bench = bench;
    pr.name = name;
    pr.wall_seconds = er.wall_seconds;
    pr.sim_ops_per_sec = er.sim_ops_per_sec;
    pr.per_shard.reserve(er.per_shard.size());
    for (const engine::ShardPerf& sp : er.per_shard)
      pr.per_shard.push_back({sp.ops, sp.wall_seconds});
    json_report().add_perf(std::move(pr));
  }
  report_run(bench, name, er.merged);
  return std::move(er.merged);
}

// Sharded equivalent of run_group(SrcRig&, ...): partitions the group into
// kEngineDomains independent domains — each a full SRC stack at scale
// k/kEngineDomains replaying its own seed-derived trace set over its own
// footprint slice — and drives them through engine::ParallelEngine under
// REPRO_SHARDS/REPRO_THREADS. The write-provenance ledger is always wired;
// op-span tracing follows REPRO_SPAN_SAMPLE with a per-domain tracer (seeded
// from the domain seed, merged exactly). Returns the deterministically
// merged result; wall-clock numbers go to the REPRO_JSON "perf" section and
// stdout. `name_override` labels the run in reports (default: the group
// name), letting one bench report several schemes over the same group.
// `tier_mb` overrides the compressed-DRAM-tier budget: -1 follows the
// REPRO_TIER_MB knob, 0 forces the tier off, >0 forces that many MiB summed
// across the domain partition — bench_tier uses the override to A/B
// tier-on/tier-off in one process. `cfg_tweak` is forwarded to every
// domain's make_src_rig (see there).
inline workload::RunResult run_group_sharded(
    const src::SrcConfig& overrides, const flash::SsdSpec& base_spec,
    workload::TraceGroup group, double k, const char* bench, u64 seed = 42,
    const char* name_override = nullptr, i64 tier_mb = -1,
    const std::function<void(src::SrcConfig&, const Geometry&)>& cfg_tweak =
        {}) {
  const double dk = k / kEngineDomains;
  const bool want_trace = repro_trace_path() != nullptr;
  const u64 tier_bytes =
      (tier_mb < 0 ? static_cast<u64>(repro_tier_mb())
                   : static_cast<u64>(tier_mb)) *
      MiB;
  // Keeps domain 0's rig (the only traced one) alive past the engine run so
  // the trace can be written afterwards.
  std::shared_ptr<EngineDomainRig> traced;

  const auto factory = [&overrides, &base_spec, group, dk, seed, want_trace,
                        tier_bytes, &cfg_tweak, &traced](u32 index, u32 count) {
    auto holder = std::make_shared<EngineDomainRig>();
    holder->rig = make_src_rig(overrides, base_spec, dk, true, cfg_tweak);
    const Geometry geo = holder->rig->geo;
    const u64 dseed = domain_seed(seed, index);
    holder->set =
        workload::make_trace_set(group, geo.group_footprint_bytes, dseed);

    engine::DomainSetup s;
    s.cache = holder->rig->cache.get();
    s.ssds = holder->rig->ssd_ptrs();
    s.gens = holder->set.generators();
    s.cfg.threads_per_gen = 4;
    s.cfg.iodepth = 4;
    s.cfg.duration = run_duration();
    s.cfg.warmup_bytes = 2 * 3 * geo.region_bytes_per_ssd;
    s.cfg.registry = &holder->rig->registry;
    s.cfg.timeseries_interval = repro_timeseries_interval();
    s.cfg.provenance = &holder->rig->cache->provenance();
    if (tier_bytes > 0) {
      // One tier per domain, budget split evenly — the same 1/kEngineDomains
      // scaling every other capacity gets, so pressure ratios are preserved
      // and the merged outcome stays bit-identical across shard counts.
      tier::TierConfig tc;
      tc.budget_bytes = std::max<u64>(kBlockSize, tier_bytes / kEngineDomains);
      tc.dirty_pct = repro_tier_dirty_pct();
      tc.eviction = repro_tier_policy();
      tc.cpu_ns_per_byte = repro_tier_cpu_nspb();
      tc.destage_batch_blocks = static_cast<u32>(
          holder->rig->cache->config().segment_data_slots(true));
      holder->tier = std::make_unique<tier::TierCache>(
          tc, holder->rig->cache.get(), holder->rig->cache.get());
      holder->tier->register_metrics(obs::Scope(holder->rig->registry, "tier"));
      s.cache = holder->tier.get();
      s.cfg.tier = holder->tier.get();
    }
    if (repro_span_sample() > 0.0) {
      s.cfg.spans = &enable_spans(*holder->rig,
                                  common::SplitMix64(dseed).next(),
                                  repro_span_sample());
    }
    if (repro_fault_plan() != nullptr) {
      // Scripted faults per domain: the plan syntax was validated up front
      // (validate_repro_knobs); the domain seed feeds the plan's RNG so
      // seeded-random corruption picks differ (but are fixed) per domain.
      holder->fault = std::make_unique<fault::FaultInjector>(
          fault::FaultPlan::parse_or_die(repro_fault_plan(), dseed));
      holder->fault->attach_ssds(holder->rig->ssd_ptrs());
      holder->fault->attach_primary(holder->rig->primary.get());

      raid::RebuildConfig rbc;
      rbc.mbps = repro_rebuild_mbps();
      rbc.spares = repro_rebuild_spares();
      holder->rebuild =
          std::make_unique<raid::RebuildManager>(rbc, holder->rig->ssd_ptrs());
      src::SrcCache* cache = holder->rig->cache.get();
      raid::RebuildManager* mgr = holder->rebuild.get();
      // SRC-aware reconstruction: the cache exports its live-segment map as
      // the extent source (trimmed/invalid stripes are skipped), diverts
      // reads of still-blank replacement blocks to the repair path, and
      // drops-and-counts blocks a second failure makes unrecoverable.
      mgr->set_extent_source(
          [cache](size_t dev) { return cache->rebuild_extents(dev); });
      mgr->set_abort_callback(
          [cache](size_t dev, const std::vector<raid::RebuildExtent>& lost) {
            cache->on_rebuild_lost(dev, lost);
          });
      mgr->set_provenance(&cache->mutable_provenance());
      mgr->set_fault_ledger(&holder->fault->ledger());
      if (holder->rig->spans) mgr->set_span(holder->rig->spans.get());
      cache->set_rebuild(mgr);
      holder->fault->set_failure_callback(
          [cache, mgr](size_t dev, sim::SimTime t) {
            cache->on_ssd_failure(dev);
            mgr->on_device_failed(dev, t);
          });
      holder->fault->set_replace_callback([mgr](size_t dev, sim::SimTime t) {
        mgr->on_device_replaced(dev, t);
      });
      holder->fault->set_spare_callback([mgr](u32 n) { mgr->add_spares(n); });
      if (holder->tier) {
        // DRAM vanishes at a power cut: dirty tier blocks are counted lost
        // and ledgered as injected+detected data loss, never silently
        // dropped (tier::TierCache::on_power_cut).
        holder->tier->set_fault_ledger(&holder->fault->ledger());
        tier::TierCache* tcache = holder->tier.get();
        holder->fault->set_powercut_callback(
            [tcache](sim::SimTime t) { tcache->on_power_cut(t); });
      }
      s.cfg.fault = holder->fault.get();
      s.cfg.rebuild = mgr;
    }
    if (want_trace && index == 0) {
      // One domain's worth of timeline is what a Chrome trace can usefully
      // show; domain 0 is the deterministic choice.
      s.cfg.trace = &enable_tracing(*holder->rig);
      s.cfg.trace_track = obs::kTrackApp;
      traced = holder;
    }
    (void)count;
    s.owned = holder;
    return s;
  };

  const std::string name =
      name_override != nullptr ? name_override : workload::to_string(group);
  workload::RunResult res =
      run_engine_sharded(bench, name, kEngineDomains, factory);
  if (traced)
    write_chrome_trace(traced->rig->trace.get(), traced->rig->spans.get());
  return res;
}

// One engine domain's baseline rig (Bcache5/Flashcache5 over RAID), owned
// via DomainSetup::owned.
struct BaselineDomainRig {
  std::unique_ptr<BaselineRig> rig;
  workload::TraceSet set;
};

// Sharded replay for the baseline schemes: same fixed kEngineDomains
// partition and per-domain seed stream as run_group_sharded, with
// `make_rig(dk)` building each domain's cache stack. With REPRO_SPAN_SAMPLE
// on, each domain's RAID layer and SSDs contribute spans under the op roots
// (baselines have no provenance ledger — that is an SRC-cache property).
template <typename MakeRig>
inline workload::RunResult run_baseline_group_sharded(
    const char* bench, const std::string& name, MakeRig make_rig,
    workload::TraceGroup group, double k, u64 seed = 42) {
  const double dk = k / kEngineDomains;
  const auto factory = [&make_rig, group, dk, seed](u32 index, u32 count) {
    auto holder = std::make_shared<BaselineDomainRig>();
    holder->rig = make_rig(dk);
    const Geometry geo = holder->rig->geo;
    const u64 dseed = domain_seed(seed, index);
    holder->set =
        workload::make_trace_set(group, geo.group_footprint_bytes, dseed);

    engine::DomainSetup s;
    s.cache = holder->rig->cache.get();
    s.ssds = holder->rig->ssd_ptrs();
    s.gens = holder->set.generators();
    s.cfg.threads_per_gen = 4;
    s.cfg.iodepth = 4;
    s.cfg.duration = run_duration();
    s.cfg.warmup_bytes = 2 * 3 * geo.region_bytes_per_ssd;
    s.cfg.timeseries_interval = repro_timeseries_interval();
    if (repro_span_sample() > 0.0) {
      holder->rig->spans = std::make_unique<obs::SpanTracer>(
          common::SplitMix64(dseed).next(), repro_span_sample());
      holder->rig->raid5->set_span(holder->rig->spans.get());
      for (size_t i = 0; i < holder->rig->ssds.size(); ++i)
        holder->rig->ssds[i]->set_span(holder->rig->spans.get(),
                                       static_cast<u32>(i));
      s.cfg.spans = holder->rig->spans.get();
    }
    (void)count;
    s.owned = holder;
    return s;
  };
  return run_engine_sharded(bench, name, kEngineDomains, factory);
}

inline void print_header(const char* experiment, const char* paper_ref) {
  validate_repro_knobs();
  std::printf("=== %s ===\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("scale=%.3g (REPRO_SCALE), duration=%.3gs virtual (REPRO_SECONDS)\n",
              scale(), sim::to_seconds(run_duration()));
  if (repro_shards() > 1) {
    std::printf("shards=%u (REPRO_SHARDS), threads=%u (REPRO_THREADS, 0=auto)\n",
                repro_shards(), repro_threads());
  }
  if (repro_span_sample() > 0.0) {
    std::printf("span_sample=%.3g (REPRO_SPAN_SAMPLE)\n", repro_span_sample());
  }
  if (repro_tier_mb() > 0) {
    std::printf(
        "tier=%u MiB (REPRO_TIER_MB), policy=%s (REPRO_TIER_POLICY), "
        "dirty<=%u%% (REPRO_TIER_DIRTY_PCT), cpu=%.3g ns/B "
        "(REPRO_TIER_CPU_NSPB)\n",
        repro_tier_mb(), policy::to_string(repro_tier_policy()),
        repro_tier_dirty_pct(), repro_tier_cpu_nspb());
  }
  std::printf("\n");
}

}  // namespace srcache::bench
