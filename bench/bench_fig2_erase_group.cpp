// Figure 2: sustained write bandwidth vs write-unit size on a raw SSD, for
// over-provisioning 0%..50%.
//
// Paper result: bandwidth climbs with the write unit and saturates at
// ~400 MB/s once the unit reaches the erase group size (256 MiB for the
// 840 Pro); small units at low OPS collapse due to internal GC.
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

namespace {

double run_point(const flash::SsdSpec& spec, u64 unit_bytes, u64 seed) {
  flash::SimSsd ssd(spec, false);
  ssd.precondition();
  const u64 unit_blocks = std::max<u64>(1, unit_bytes / kBlockSize);
  const u64 units = ssd.capacity_blocks() / unit_blocks;
  if (units == 0) return 0.0;
  common::Xoshiro256 rng(seed);
  sim::SimTime t = 0;
  // Overwrite aligned units at random until we have rewritten ~1.5x the
  // device (steady state), then measure a second sweep.
  const u64 total_units = units * 3 / 2;
  u64 bytes = 0;
  sim::SimTime t_start = 0;
  u64 measured = 0;
  for (u64 i = 0; i < total_units + units; ++i) {
    const u64 u = rng.below(units);
    // One unit is written as a burst of 512 KiB requests (the largest
    // transfer unit, as in SRC).
    for (u64 off = 0; off < unit_blocks; off += 128) {
      const u32 n = static_cast<u32>(std::min<u64>(128, unit_blocks - off));
      auto w = ssd.write(t, u * unit_blocks + off, n, {});
      t = w.done;
      if (i >= total_units) bytes += blocks_to_bytes(n);
    }
    if (i + 1 == total_units) t_start = t;
    if (i >= total_units) ++measured;
  }
  return sim::mb_per_sec(bytes, t - t_start);
}

}  // namespace

int main() {
  print_header("Figure 2: erase group size of the cache SSD", "Fig. 2");
  const double k = scale();
  // A larger device than the cache benches use: the OPS sweep needs the
  // spare pool (not the FTL's fixed open-block minimum) to dominate.
  flash::SsdSpec base = sized_spec(flash::spec_840pro_128(),
                                   32 * Geometry::at(k).erase_group_bytes, k);
  std::printf("modeled erase group: %llu MiB (paper: 256 MiB at full scale)\n\n",
              static_cast<unsigned long long>(base.erase_group_bytes() / MiB));

  std::vector<u64> unit_bytes;
  for (u64 u = 2 * MiB; u <= 4 * base.erase_group_bytes(); u *= 2)
    unit_bytes.push_back(u);

  std::vector<std::string> header = {"OPS \\ unit"};
  for (u64 u : unit_bytes)
    header.push_back(std::to_string(u / MiB) + "M");
  common::Table t(header);

  for (double ops : {0.0, 0.10, 0.20, 0.30, 0.50}) {
    flash::SsdSpec spec = base;
    spec.ops_fraction = ops;
    std::vector<std::string> row = {
        std::to_string(static_cast<int>(ops * 100)) + "%"};
    for (u64 u : unit_bytes)
      row.push_back(common::Table::num(run_point(spec, u, 3), 0));
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\n(MB/s; paper shape: all OPS curves converge to ~400 MB/s at"
              " the erase-group size)\n");
  return 0;
}
