// Table 6: characteristics of the synthetic trace sets. The synthesizer is
// configured from the paper's Table 6 rows; this bench verifies (by
// sampling) that the generated streams match the targets, then replays each
// group against the SRC stack and reports throughput plus end-to-end latency
// percentiles (machine-readable via REPRO_JSON).
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

int main() {
  print_header("Table 6: trace set characteristics (synthetic equivalents)",
               "Table 6");
  common::Table t({"Set", "Trace", "target KB", "measured KB", "target R%",
                   "measured R%", "footprint MiB"});
  const double k = scale();
  for (auto group : {workload::TraceGroup::kWrite, workload::TraceGroup::kMixed,
                     workload::TraceGroup::kRead}) {
    workload::TraceSet set = workload::make_trace_set(
        group, Geometry::at(k).group_footprint_bytes, 1);
    for (const auto& tr : set.traces) {
      double blocks = 0;
      int reads = 0;
      const int n = 20000;
      workload::TraceSynth probe(tr->config());
      for (int i = 0; i < n; ++i) {
        const auto op = probe.next();
        blocks += op.nblocks;
        reads += op.is_write ? 0 : 1;
      }
      t.add_row({workload::to_string(group), tr->config().spec.name,
                 common::Table::num(tr->config().spec.avg_req_kb, 2),
                 common::Table::num(blocks / n * 4.0, 2),
                 std::to_string(tr->config().spec.read_pct),
                 common::Table::num(100.0 * reads / n, 0),
                 common::Table::num(
                     static_cast<double>(blocks_to_bytes(
                         tr->config().footprint_blocks)) / (1 << 20),
                     0)});
    }
  }
  t.print();

  // Measured replay runs through the sharded engine: the group is split
  // into kEngineDomains independent array slices and executed under
  // REPRO_SHARDS/REPRO_THREADS (results are bit-identical across both; see
  // src/engine/engine.hpp). run_group_sharded reports into REPRO_JSON
  // itself, wall-clock numbers included.
  std::printf("\nmeasured replay against the SRC stack (%u domains):\n",
              kEngineDomains);
  common::Table m({"Set", "MB/s", "IOA", "hit", "r p50us", "r p95us",
                   "r p99us", "w p50us", "w p95us", "w p99us"});
  for (auto group : {workload::TraceGroup::kWrite, workload::TraceGroup::kMixed,
                     workload::TraceGroup::kRead}) {
    const auto res = run_group_sharded(default_src_config(),
                                       flash::spec_840pro_128(), group, k,
                                       "bench_table6_traces");
    m.add_row({workload::to_string(group),
               common::Table::num(res.throughput_mbps, 1),
               common::Table::num(res.io_amplification, 2),
               common::Table::num(res.hit_ratio, 3),
               common::Table::num(res.read_lat.p50 / 1e3, 1),
               common::Table::num(res.read_lat.p95 / 1e3, 1),
               common::Table::num(res.read_lat.p99 / 1e3, 1),
               common::Table::num(res.write_lat.p50 / 1e3, 1),
               common::Table::num(res.write_lat.p95 / 1e3, 1),
               common::Table::num(res.write_lat.p99 / 1e3, 1)});
  }
  m.print();
  return 0;
}
