// Table 6: characteristics of the synthetic trace sets. The synthesizer is
// configured from the paper's Table 6 rows; this bench verifies (by
// sampling) that the generated streams match the targets.
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

int main() {
  print_header("Table 6: trace set characteristics (synthetic equivalents)",
               "Table 6");
  common::Table t({"Set", "Trace", "target KB", "measured KB", "target R%",
                   "measured R%", "footprint MiB"});
  const double k = scale();
  for (auto group : {workload::TraceGroup::kWrite, workload::TraceGroup::kMixed,
                     workload::TraceGroup::kRead}) {
    workload::TraceSet set = workload::make_trace_set(
        group, Geometry::at(k).group_footprint_bytes, 1);
    for (const auto& tr : set.traces) {
      double blocks = 0;
      int reads = 0;
      const int n = 20000;
      workload::TraceSynth probe(tr->config());
      for (int i = 0; i < n; ++i) {
        const auto op = probe.next();
        blocks += op.nblocks;
        reads += op.is_write ? 0 : 1;
      }
      t.add_row({workload::to_string(group), tr->config().spec.name,
                 common::Table::num(tr->config().spec.avg_req_kb, 2),
                 common::Table::num(blocks / n * 4.0, 2),
                 std::to_string(tr->config().spec.read_pct),
                 common::Table::num(100.0 * reads / n, 0),
                 common::Table::num(
                     static_cast<double>(blocks_to_bytes(
                         tr->config().footprint_blocks)) / (1 << 20),
                     0)});
    }
  }
  t.print();
  return 0;
}
