// Figure 7: SRC vs SRC-S2D vs Bcache5 vs Flashcache5 on the three trace
// groups — throughput (a), I/O amplification (b), hit ratio (c).
//
// Paper result: SRC outperforms Bcache5 by 2.8-3.1x and Flashcache5 by
// 2.3-2.8x; Sel-GC beats S2D with higher I/O amplification but a higher
// hit ratio.
//
// All four schemes run through the sharded engine (run_group_sharded /
// run_baseline_group_sharded): the same fixed kEngineDomains partition and
// per-domain seed stream for every scheme, so REPRO_SHARDS/REPRO_THREADS
// change wall-clock only and every run lands in REPRO_JSON as
// "<group>/<scheme>".
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

int main() {
  print_header("Figure 7: SRC vs existing solutions (RAID-5)",
               "Fig. 7(a) throughput, 7(b) I/O amplification, 7(c) hit ratio");
  const double k = scale();
  const flash::SsdSpec spec = flash::spec_840pro_128();

  common::Table table({"Workload", "Scheme", "MB/s", "I/O amp", "Hit ratio"});
  struct Row {
    workload::TraceGroup group;
    const char* scheme;
    double mbps, amp, hit;
  };
  std::vector<Row> rows;
  const auto name_for = [](workload::TraceGroup g, const char* scheme) {
    return std::string(workload::to_string(g)) + "/" + scheme;
  };

  for (auto group : {workload::TraceGroup::kWrite, workload::TraceGroup::kMixed,
                     workload::TraceGroup::kRead}) {
    // SRC (defaults: Sel-GC).
    {
      auto res = run_group_sharded(default_src_config(), spec, group, k,
                                   "fig7", 42, name_for(group, "SRC").c_str());
      rows.push_back({group, "SRC", res.throughput_mbps, res.io_amplification,
                      res.hit_ratio});
    }
    // SRC-S2D.
    {
      src::SrcConfig cfg = default_src_config();
      cfg.gc = src::GcPolicy::kS2D;
      auto res = run_group_sharded(cfg, spec, group, k, "fig7", 42,
                                   name_for(group, "SRC-S2D").c_str());
      rows.push_back({group, "SRC-S2D", res.throughput_mbps,
                      res.io_amplification, res.hit_ratio});
    }
    // Bcache5.
    {
      auto res = run_baseline_group_sharded(
          "fig7", name_for(group, "Bcache5"),
          [&spec](double dk) { return make_bcache5_rig(spec, dk); }, group, k);
      rows.push_back({group, "Bcache5", res.throughput_mbps,
                      res.io_amplification, res.hit_ratio});
    }
    // Flashcache5.
    {
      auto res = run_baseline_group_sharded(
          "fig7", name_for(group, "Flashcache5"),
          [&spec](double dk) { return make_flashcache5_rig(spec, dk); }, group,
          k);
      rows.push_back({group, "Flashcache5", res.throughput_mbps,
                      res.io_amplification, res.hit_ratio});
    }
  }

  for (const Row& r : rows) {
    table.add_row({workload::to_string(r.group), r.scheme,
                   common::Table::num(r.mbps, 1), common::Table::num(r.amp, 2),
                   common::Table::num(r.hit, 2)});
  }
  table.print();

  // Paper's headline ratios for quick comparison.
  std::printf("\npaper: SRC/Bcache5 = 2.83/2.92/3.09x (W/M/R), "
              "SRC/Flashcache5 = 2.50/2.75/2.34x\n");
  auto at = [&](size_t g, size_t s) { return rows[g * 4 + s].mbps; };
  for (size_t g = 0; g < 3; ++g) {
    std::printf("measured %s: SRC/Bcache5 = %.2fx, SRC/Flashcache5 = %.2fx, "
                "SRC/SRC-S2D = %.2fx\n",
                workload::to_string(rows[g * 4].group), at(g, 0) / at(g, 2),
                at(g, 0) / at(g, 3), at(g, 0) / at(g, 1));
  }
  return 0;
}
