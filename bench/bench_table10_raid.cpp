// Table 10: SRC RAID protection levels (0, 4, 5).
//
// Paper result: RAID-0 best (no redundancy, ~650 MB/s Write), RAID-5
// slightly above RAID-4 (parity distribution smooths load), RAID-5 about
// 20% below RAID-0.
//
// Runs on the sharded engine (run_group_sharded), so REPRO_SHARDS/
// REPRO_THREADS parallelize each cell and REPRO_FAULT_PLAN can script a
// fail/replace/rebuild scenario against any protection level — this is the
// bench the rebuild CI matrix drives.
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

int main() {
  print_header("Table 10: RAID level performance (SRC)", "Table 10");
  const double k = scale();

  common::Table t({"Workload", "RAID-0", "RAID-4", "RAID-5",
                   "(MB/s, amp in parens)"});
  for (auto group : {workload::TraceGroup::kWrite, workload::TraceGroup::kMixed,
                     workload::TraceGroup::kRead}) {
    std::vector<std::string> row = {workload::to_string(group)};
    for (auto raid : {src::SrcRaidLevel::kRaid0, src::SrcRaidLevel::kRaid4,
                      src::SrcRaidLevel::kRaid5}) {
      src::SrcConfig cfg = default_src_config();
      cfg.raid = raid;
      const std::string name = std::string(workload::to_string(group)) + "/" +
                               src::to_string(raid);
      const auto res = run_group_sharded(cfg, flash::spec_840pro_128(), group,
                                         k, "table10_raid", /*seed=*/42,
                                         name.c_str());
      row.push_back(common::Table::num(res.throughput_mbps, 0) + " (" +
                    common::Table::num(res.io_amplification, 2) + ")");
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\npaper: Write 650/482/508, Mixed 686/521/547, Read 791/699/726"
              " MB/s (RAID-0/-4/-5).\n");
  return 0;
}
