// Table 10: SRC RAID protection levels (0, 4, 5).
//
// Paper result: RAID-0 best (no redundancy, ~650 MB/s Write), RAID-5
// slightly above RAID-4 (parity distribution smooths load), RAID-5 about
// 20% below RAID-0.
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

int main() {
  print_header("Table 10: RAID level performance (SRC)", "Table 10");
  const double k = scale();

  common::Table t({"Workload", "RAID-0", "RAID-4", "RAID-5",
                   "(MB/s, amp in parens)"});
  for (auto group : {workload::TraceGroup::kWrite, workload::TraceGroup::kMixed,
                     workload::TraceGroup::kRead}) {
    std::vector<std::string> row = {workload::to_string(group)};
    for (auto raid : {src::SrcRaidLevel::kRaid0, src::SrcRaidLevel::kRaid4,
                      src::SrcRaidLevel::kRaid5}) {
      src::SrcConfig cfg = default_src_config();
      cfg.raid = raid;
      auto rig = make_src_rig(cfg, flash::spec_840pro_128(), k);
      const auto res = run_group(rig->cache.get(), rig->ssd_ptrs(), group, k);
      row.push_back(common::Table::num(res.throughput_mbps, 0) + " (" +
                    common::Table::num(res.io_amplification, 2) + ")");
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\npaper: Write 650/482/508, Mixed 686/521/547, Read 791/699/726"
              " MB/s (RAID-0/-4/-5).\n");
  return 0;
}
