// Table 9: Parity-for-Clean vs No-Parity-for-Clean.
//
// Paper result: NPC beats PC for all groups (508 vs 431 on Write: +18%),
// because clean segments without parity carry one extra data chunk.
//
// Runs on the sharded engine (run_group_sharded), so REPRO_SHARDS/
// REPRO_THREADS parallelize the six points and every run lands in
// REPRO_JSON with the full observability surface.
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

int main() {
  print_header("Table 9: PC vs NPC mode", "Table 9");
  const double k = scale();

  common::Table t({"Workload", "PC (MB/s)", "PC amp", "NPC (MB/s)", "NPC amp",
                   "paper PC", "paper NPC"});
  const char* paper_pc[] = {"431.13", "520.95", "669.67"};
  const char* paper_npc[] = {"507.89", "547.36", "725.95"};
  int row = 0;
  for (auto group : {workload::TraceGroup::kWrite, workload::TraceGroup::kMixed,
                     workload::TraceGroup::kRead}) {
    double mbps[2], amp[2];
    int idx = 0;
    for (auto mode : {src::CleanRedundancy::kPC, src::CleanRedundancy::kNPC}) {
      src::SrcConfig cfg = default_src_config();
      cfg.clean_redundancy = mode;
      const std::string name =
          std::string(workload::to_string(group)) +
          (mode == src::CleanRedundancy::kPC ? "/pc" : "/npc");
      const auto res =
          run_group_sharded(cfg, flash::spec_840pro_128(), group, k,
                            "bench_table9_npc", 42, name.c_str());
      mbps[idx] = res.throughput_mbps;
      amp[idx] = res.io_amplification;
      ++idx;
    }
    t.add_row({workload::to_string(group), common::Table::num(mbps[0], 1),
               common::Table::num(amp[0], 2), common::Table::num(mbps[1], 1),
               common::Table::num(amp[1], 2), paper_pc[row], paper_npc[row]});
    ++row;
  }
  t.print();
  return 0;
}
