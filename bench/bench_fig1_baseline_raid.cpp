// Figure 1: Bcache and Flashcache (write-back) over RAID-0/1/4/5 of four
// SSDs, FIO 4 KiB uniform-random writes.
//
// Paper shape: RAID-0 best; RAID-1 roughly half; parity levels hurt
// Flashcache badly (read-modify-write) while Bcache's log-structured
// writes cope better but suffer from its flushes.
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

int main() {
  print_header("Figure 1: baselines over RAID levels (FIO 4K UR write)",
               "Fig. 1");
  const double k = scale();
  common::Table t(
      {"Scheme", "RAID-0", "RAID-1", "RAID-4", "RAID-5", "(MB/s)"});

  for (const char* scheme : {"Bcache", "Flashcache"}) {
    std::vector<std::string> row = {scheme};
    for (auto level : {raid::RaidLevel::kRaid0, raid::RaidLevel::kRaid1,
                       raid::RaidLevel::kRaid4, raid::RaidLevel::kRaid5}) {
      std::unique_ptr<BaselineRig> rig;
      if (scheme[0] == 'B') {
        rig = make_bcache5_rig(flash::spec_840pro_128(), k, level);
        static_cast<baselines::BcacheLike*>(rig->cache.get());
      } else {
        rig = make_flashcache5_rig(flash::spec_840pro_128(), k, level);
      }
      workload::FioGen::Config fc;
      fc.span_blocks = 2 * baseline_cache_blocks(*rig);
      fc.req_blocks = 1;
      fc.read_pct = 0;
      fc.seed = 11;
      workload::FioGen gen(fc);
      workload::Runner runner(rig->cache.get(), rig->ssd_ptrs());
      workload::RunConfig rc;
      rc.threads_per_gen = 4;
      rc.iodepth = 32;
      rc.duration = run_duration();
      const auto res = runner.run({&gen}, rc);
      row.push_back(common::Table::num(res.throughput_mbps, 1));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf(
      "\npaper shape: RAID-0 ~190-230, RAID-1 ~100-120, RAID-4/5 Flashcache"
      " degraded by parity updates, Bcache less so but flush-bound.\n");
  return 0;
}
