// Table 3: impact of the flush command on a raw commodity SSD.
// Sequential: flush after every 512 KiB. Random: flush after every 32
// 4 KiB writes. Paper: 402 -> 96 MB/s (4.1x) and 249 -> 30 MB/s (8.3x).
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

namespace {

struct Measure {
  double no_flush, with_flush;
};

Measure run_seq(const flash::SsdSpec& spec) {
  Measure m{};
  for (bool with_flush : {false, true}) {
    flash::SimSsd ssd(spec, false);
    ssd.precondition();
    sim::SimTime t = 0;
    u64 cursor = 0;
    const int n = 400;
    for (int i = 0; i < n; ++i) {
      auto w = ssd.write(t, cursor, 128, {});  // 512 KiB
      t = w.done;
      if (with_flush) t = ssd.flush(t).done;
      cursor = (cursor + 128) % (ssd.capacity_blocks() - 128);
    }
    const double mbps = sim::mb_per_sec(static_cast<u64>(n) * 128 * kBlockSize, t);
    (with_flush ? m.with_flush : m.no_flush) = mbps;
  }
  return m;
}

Measure run_random(const flash::SsdSpec& spec) {
  Measure m{};
  for (bool with_flush : {false, true}) {
    flash::SimSsd ssd(spec, false);
    ssd.precondition();
    common::Xoshiro256 rng(5);
    sim::SimTime t = 0;
    const int groups = 300;
    for (int g = 0; g < groups; ++g) {
      for (int i = 0; i < 32; ++i) {
        auto w = ssd.write(t, rng.below(ssd.capacity_blocks()), 1, {});
        t = w.done;
      }
      if (with_flush) t = ssd.flush(t).done;
    }
    const double mbps =
        sim::mb_per_sec(static_cast<u64>(groups) * 32 * kBlockSize, t);
    (with_flush ? m.with_flush : m.no_flush) = mbps;
  }
  return m;
}

}  // namespace

int main() {
  print_header("Table 3: impact of the flush command (raw SSD)", "Table 3");
  const flash::SsdSpec spec =
      sized_spec(flash::spec_840pro_128(), Geometry::at(scale()).ssd_capacity_bytes);

  const Measure seq = run_seq(spec);
  const Measure rnd = run_random(spec);

  common::Table t({"Pattern", "No flush (MB/s)", "flush (MB/s)",
                   "Reduction (x)", "paper no-flush", "paper flush",
                   "paper (x)"});
  t.add_row({"Sequential", common::Table::num(seq.no_flush, 0),
             common::Table::num(seq.with_flush, 0),
             common::Table::num(seq.no_flush / seq.with_flush, 1), "402", "96",
             "4.1"});
  t.add_row({"Random", common::Table::num(rnd.no_flush, 0),
             common::Table::num(rnd.with_flush, 0),
             common::Table::num(rnd.no_flush / rnd.with_flush, 1), "249", "30",
             "8.3"});
  t.print();
  return 0;
}
