// Table 8: free-space management — S2D vs Sel-GC, FIFO vs Greedy victim
// selection (UMAX = 90%).
//
// Paper result: Sel-GC considerably outperforms S2D (keeping hot data via
// S2S copies pays off) at the cost of higher I/O amplification; FIFO and
// Greedy trade places by workload (Greedy wins the Read group).
//
// Runs on the sharded engine (run_group_sharded): each of the twelve
// (group x gc x victim) cells replays the fixed kEngineDomains partition
// under REPRO_SHARDS/REPRO_THREADS, so the wall clock is a knob while the
// merged numbers stay bit-identical across execution configurations.
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

int main() {
  print_header("Table 8: free space management performance", "Table 8");
  const double k = scale();

  common::Table t({"Workload", "S2D/FIFO", "S2D/Greedy", "SelGC/FIFO",
                   "SelGC/Greedy", "(MB/s, amp in parens)"});
  for (auto group : {workload::TraceGroup::kWrite, workload::TraceGroup::kMixed,
                     workload::TraceGroup::kRead}) {
    std::vector<std::string> row = {workload::to_string(group)};
    for (auto gc : {src::GcPolicy::kS2D, src::GcPolicy::kSelGc}) {
      for (auto victim : {src::VictimPolicy::kFifo, src::VictimPolicy::kGreedy}) {
        src::SrcConfig cfg = default_src_config();
        cfg.gc = gc;
        cfg.victim = victim;
        cfg.umax = 0.90;
        const std::string name =
            std::string(workload::to_string(group)) + "/" +
            (gc == src::GcPolicy::kS2D ? "S2D" : "SelGC") + "/" +
            (victim == src::VictimPolicy::kFifo ? "FIFO" : "Greedy");
        const auto res =
            run_group_sharded(cfg, flash::spec_840pro_128(), group, k,
                              "bench_table8_gc", 42, name.c_str());
        row.push_back(common::Table::num(res.throughput_mbps, 0) + " (" +
                      common::Table::num(res.io_amplification, 2) + ")");
      }
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf(
      "\npaper: Write 301/312/522/507, Mixed 491/466/581/547, "
      "Read 480/596/619/725 MB/s;\n"
      "Sel-GC > S2D everywhere, Greedy best for Read.\n");
  return 0;
}
