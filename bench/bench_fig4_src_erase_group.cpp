// Figure 4: impact of SRC's erase-group (segment-group) size on throughput
// and I/O amplification, for the Write/Mixed/Read trace groups.
//
// Paper result: throughput improves as the SG size grows toward the
// device's erase group (256 MB), while cache-level I/O amplification is
// lowest at small sizes (small SGs are more often fully dead).
//
// Runs on the sharded engine (run_group_sharded): the swept segment-group
// size is geometry-coupled, so it goes in through make_src_rig's cfg_tweak
// hook — applied after the per-domain geometry is derived, keeping the
// cache region fixed while the SG size varies. Sizes are computed against
// the *domain* geometry (scale k/kEngineDomains), since that is the region
// each stack actually manages.
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

int main() {
  print_header("Figure 4: impact of erase group size on SRC", "Fig. 4");
  const double k = scale();
  const double dk = k / kEngineDomains;
  const Geometry geo = Geometry::at(dk);
  const u64 device_eg =
      sized_spec(flash::spec_840pro_128(), geo.ssd_capacity_bytes, dk)
          .erase_group_bytes();
  std::printf(
      "device erase group: %llu MiB (region fixed at %llu MiB/SSD, per "
      "domain)\n\n",
      static_cast<unsigned long long>(device_eg / MiB),
      static_cast<unsigned long long>(geo.region_bytes_per_ssd / MiB));

  std::vector<u64> sizes;
  for (u64 s = 2 * MiB; s <= 2 * device_eg && geo.region_bytes_per_ssd % s == 0;
       s *= 2) {
    sizes.push_back(s);
  }

  common::Table t({"Workload", "SG size (MiB/SSD)", "MB/s", "I/O amp"});
  for (auto group : {workload::TraceGroup::kWrite, workload::TraceGroup::kMixed,
                     workload::TraceGroup::kRead}) {
    for (u64 s : sizes) {
      src::SrcConfig cfg = default_src_config();
      cfg.umax = 0.90;
      const std::string name = std::string(workload::to_string(group)) +
                               "/sg-" + std::to_string(s / MiB) + "MiB";
      const auto res = run_group_sharded(
          cfg, flash::spec_840pro_128(), group, k, "bench_fig4_src_erase_group",
          42, name.c_str(), -1,
          [s](src::SrcConfig& c, const Geometry&) {
            c.erase_group_bytes = s;  // sweep the SG size, region fixed
          });
      t.add_row({workload::to_string(group), std::to_string(s / MiB),
                 common::Table::num(res.throughput_mbps, 1),
                 common::Table::num(res.io_amplification, 2)});
    }
  }
  t.print();
  std::printf("\npaper shape: throughput rises with SG size and saturates at"
              " the device erase group; amplification lowest at 2 MiB.\n");
  return 0;
}
