// Figure 4: impact of SRC's erase-group (segment-group) size on throughput
// and I/O amplification, for the Write/Mixed/Read trace groups.
//
// Paper result: throughput improves as the SG size grows toward the
// device's erase group (256 MB), while cache-level I/O amplification is
// lowest at small sizes (small SGs are more often fully dead).
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

int main() {
  print_header("Figure 4: impact of erase group size on SRC", "Fig. 4");
  const double k = scale();
  const Geometry geo = Geometry::at(k);
  const u64 device_eg = sized_spec(flash::spec_840pro_128(),
                                   geo.ssd_capacity_bytes)
                            .erase_group_bytes();
  std::printf("device erase group: %llu MiB (region fixed at %llu MiB/SSD)\n\n",
              static_cast<unsigned long long>(device_eg / MiB),
              static_cast<unsigned long long>(geo.region_bytes_per_ssd / MiB));

  std::vector<u64> sizes;
  for (u64 s = 2 * MiB; s <= 2 * device_eg && geo.region_bytes_per_ssd % s == 0;
       s *= 2) {
    sizes.push_back(s);
  }

  common::Table t({"Workload", "SG size (MiB/SSD)", "MB/s", "I/O amp"});
  for (auto group : {workload::TraceGroup::kWrite, workload::TraceGroup::kMixed,
                     workload::TraceGroup::kRead}) {
    for (u64 s : sizes) {
      src::SrcConfig cfg = default_src_config();
      cfg.umax = 0.90;
      auto rig = make_src_rig(cfg, flash::spec_840pro_128(), k);
      // Override the erase-group choice while keeping the region fixed.
      src::SrcConfig cfg2 = rig->cache->config();
      cfg2.erase_group_bytes = s;
      std::vector<blockdev::BlockDevice*> devs = rig->ssd_ptrs();
      rig->cache = std::make_unique<src::SrcCache>(cfg2, devs,
                                                   rig->primary.get());
      rig->cache->format(0);
      const auto res = run_group(rig->cache.get(), devs, group, k);
      t.add_row({workload::to_string(group), std::to_string(s / MiB),
                 common::Table::num(res.throughput_mbps, 1),
                 common::Table::num(res.io_amplification, 2)});
    }
  }
  t.print();
  std::printf("\npaper shape: throughput rises with SG size and saturates at"
              " the device erase group; amplification lowest at 2 MiB.\n");
  return 0;
}
