// Table 11: influence of the flush issue point — per segment write vs per
// segment-group write.
//
// Paper result: per-segment flushing costs ~10% on Write workloads and
// more than 40% on Read workloads (flush barriers stall reads too).
//
// Runs on the sharded engine (run_group_sharded), so REPRO_SHARDS/
// REPRO_THREADS parallelize the six points and every run lands in
// REPRO_JSON with the full observability surface.
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

int main() {
  print_header("Table 11: flush command control", "Table 11");
  const double k = scale();

  common::Table t({"Workload", "Per segment", "Per SG",
                   "(MB/s, amp in parens)", "paper per-seg", "paper per-SG"});
  const char* paper_seg[] = {"462.53", "480.74", "418.03"};
  const char* paper_sg[] = {"507.89", "547.36", "725.95"};
  int row = 0;
  for (auto group : {workload::TraceGroup::kWrite, workload::TraceGroup::kMixed,
                     workload::TraceGroup::kRead}) {
    std::vector<std::string> cells = {workload::to_string(group)};
    for (auto fc : {src::FlushControl::kPerSegment,
                    src::FlushControl::kPerSegmentGroup}) {
      src::SrcConfig cfg = default_src_config();
      cfg.flush_control = fc;
      const std::string name =
          std::string(workload::to_string(group)) +
          (fc == src::FlushControl::kPerSegment ? "/per-seg" : "/per-sg");
      const auto res =
          run_group_sharded(cfg, flash::spec_840pro_128(), group, k,
                            "bench_table11_flush_ctl", 42, name.c_str());
      cells.push_back(common::Table::num(res.throughput_mbps, 0) + " (" +
                      common::Table::num(res.io_amplification, 2) + ")");
    }
    cells.push_back("");
    cells.push_back(paper_seg[row]);
    cells.push_back(paper_sg[row]);
    t.add_row(std::move(cells));
    ++row;
  }
  t.print();
  return 0;
}
