// Compressed DRAM tier A/B: each trace group replayed tier-off and tier-on
// over the same seeds and the same SRC stack, so the delta is the tier's
// doing alone.
//
// Expected shape: the tier absorbs write bursts in DRAM and serves hot reads
// before they touch flash, so tier-on must strictly reduce cache-SSD write
// bytes at an equal-or-better end-to-end hit ratio (the tier-smoke CI job
// asserts exactly this on the Read group via tools/repro_report
// --assert-tier). The price is virtual CPU time for the simulated
// compressor, reported per run, and DRAM dollars, folded into the
// effective-capacity-per-dollar column (cost/cost_model.hpp).
#include "harness.hpp"

using namespace srcache;
using namespace srcache::bench;

int main() {
  print_header("Compressed DRAM tier in front of the SSD array",
               "multi-tier extension (ROADMAP); baseline: Table 6 replay");
  const double k = scale();

  // REPRO_TIER_MB picks the budget; unset, default to half of one SSD's
  // cache region per domain — large enough to matter, small enough that
  // flash still does the bulk of the caching.
  const u64 tier_mb =
      repro_tier_mb() != 0
          ? repro_tier_mb()
          : Geometry::at(k / kEngineDomains).region_bytes_per_ssd / MiB / 2 *
                kEngineDomains;
  std::printf("tier budget: %llu MiB total across %u domains\n\n",
              static_cast<unsigned long long>(tier_mb), kEngineDomains);

  const cost::ArrayConfig array{flash::spec_840pro_128(), 4};
  common::Table t({"Run", "MB/s", "hit", "flash wr MiB", "tier hit",
                   "comp ratio", "cpu ms", "eff GB/$"});
  for (auto group : {workload::TraceGroup::kWrite, workload::TraceGroup::kMixed,
                     workload::TraceGroup::kRead}) {
    const std::string base = workload::to_string(group);
    u64 off_write_blocks = 0;
    double off_hit = 0.0;
    for (const bool tier_on : {false, true}) {
      const std::string name = base + (tier_on ? "/tier-on" : "/tier-off");
      const auto res = run_group_sharded(
          default_src_config(), flash::spec_840pro_128(), group, k,
          "bench_tier", 42, name.c_str(),
          tier_on ? static_cast<i64>(tier_mb) : 0);
      const double eff =
          tier_on ? cost::effective_gb_per_dollar(
                        array, static_cast<double>(res.tier.budget_bytes),
                        res.tier.compression_ratio())
                  : array.gb_per_dollar();
      t.add_row({name, common::Table::num(res.throughput_mbps, 1),
                 common::Table::num(res.hit_ratio, 3),
                 common::Table::num(static_cast<double>(res.ssd.write_blocks) *
                                        kBlockSize / (1 << 20),
                                    1),
                 tier_on ? common::Table::num(res.tier.hit_ratio(), 3) : "-",
                 tier_on ? common::Table::num(res.tier.compression_ratio(), 3)
                         : "-",
                 tier_on ? common::Table::num(
                               static_cast<double>(res.tier.cpu_compress_ns +
                                                   res.tier.cpu_decompress_ns) /
                                   1e6,
                               1)
                         : "-",
                 common::Table::num(eff, 2)});
      if (!tier_on) {
        off_write_blocks = res.ssd.write_blocks;
        off_hit = res.hit_ratio;
      } else {
        std::printf("[tier] %s: flash writes %llu -> %llu blocks, hit %.3f -> "
                    "%.3f\n",
                    base.c_str(),
                    static_cast<unsigned long long>(off_write_blocks),
                    static_cast<unsigned long long>(res.ssd.write_blocks),
                    off_hit, res.hit_ratio);
      }
    }
  }
  t.print();
  std::printf(
      "\nexpected shape: tier-on strictly lowers flash write bytes at "
      "equal-or-better hit ratio; compression ratio < 1 stretches the DRAM "
      "budget and the effective GB/$ column.\n");
  return 0;
}
