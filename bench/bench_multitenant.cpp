// Multi-tenant adaptive partitioning (extension over the paper's §4 SRC).
//
// Two deliberately mismatched tenants share one SRC stack: tenant 0 is a
// Zipf-hot, read-heavy server trace whose working set roughly fits the
// cache; tenant 1 is a scan-heavy sequential reader sweeping ~4x the cache.
// A static split wastes whatever it grants the scan (its re-reference
// distance exceeds any affordable share), so the adaptive controller —
// online per-tenant MRCs (SHARDS-sampled ghost LRU) feeding a greedy
// marginal-gain partitioner each epoch — should shift capacity to tenant 0
// and beat every static split on aggregate hit ratio.
//
// Runs: static-25-75, static-50-50, static-75-25 (tenant 0's share first),
// then adaptive. Knobs: REPRO_EPOCH_MS (epoch length, default 1000) and
// REPRO_SHARDS_RATE (MRC sampling rate, default 0.1) on top of the usual
// REPRO_SCALE / REPRO_SECONDS / REPRO_JSON. CI asserts adaptive beats
// static-50-50 via `repro_report --assert-hit-gt`.
#include "harness.hpp"

#include "adapt/adaptive.hpp"

using namespace srcache;
using namespace srcache::bench;

namespace {

struct MtWorkload {
  std::unique_ptr<workload::TraceSynth> hot;   // tenant 0
  std::unique_ptr<workload::FioGen> scan;      // tenant 1
  std::unique_ptr<workload::TenantMixGen> mix;
};

MtWorkload make_workload(u64 capacity_blocks, u64 seed) {
  MtWorkload w;
  // Footprint ~1.3x the cache with moderate skew: the MRC keeps a slope all
  // the way to full capacity, so every extra block granted to tenant 0 buys
  // hits — the signal the partitioner is supposed to find. Half writes, so
  // the tenant builds residency at SSD speed instead of HDD-fetch speed.
  workload::TraceSynth::Config hot;
  hot.spec = {"zipf-hot", 4.0, 0.0, 50};
  hot.footprint_blocks = capacity_blocks * 13 / 10;
  hot.offset_blocks = 0;
  hot.zipf_theta = 0.9;
  hot.seed = seed;
  hot.tenant = 0;
  w.hot = std::make_unique<workload::TraceSynth>(hot);

  // An ingest-style sequential write sweep over 4x the cache: none of it is
  // ever re-referenced, so every cached block is pure pollution — the
  // capacity it occupies is exactly what a static split wastes on it.
  workload::FioGen::Config scan;
  scan.span_blocks = capacity_blocks * 4;
  scan.offset_blocks = capacity_blocks * 2;  // disjoint from tenant 0's region
  scan.req_blocks = 16;                      // 64 KiB sequential sweeps
  scan.read_pct = 0;
  scan.sequential = true;
  scan.seed = seed + 1;
  scan.tenant = 1;
  w.scan = std::make_unique<workload::FioGen>(scan);

  // The hot tenant issues 3x the requests; the sweep still moves more bytes
  // (16-block writes), so neither tenant is negligible in the aggregate.
  w.mix = std::make_unique<workload::TenantMixGen>(
      std::vector<workload::TenantMixGen::Source>{{w.hot.get(), 3.0},
                                                  {w.scan.get(), 1.0}},
      seed + 2);
  return w;
}

// A deliberately small cache region (6 erase groups per SSD instead of the
// paper's 18): partitioning only matters when capacity is the contended
// resource, and the closed loop at bench scale cannot push enough traffic to
// contend 18 SGs. Everything else matches make_src_rig.
std::unique_ptr<SrcRig> make_mt_rig(double k) {
  auto rig = std::make_unique<SrcRig>();
  rig->geo = Geometry::at(k);
  rig->geo.region_bytes_per_ssd = 6 * rig->geo.erase_group_bytes;

  src::SrcConfig cfg = default_src_config();
  cfg.erase_group_bytes = rig->geo.erase_group_bytes;
  cfg.chunk_bytes = rig->geo.chunk_bytes;
  cfg.region_bytes_per_ssd = rig->geo.region_bytes_per_ssd;
  cfg.verify_checksums = false;
  cfg.twait = 10 * sim::kMs;

  const flash::SsdSpec spec =
      sized_spec(flash::spec_840pro_128(), rig->geo.ssd_capacity_bytes, k);
  for (u32 i = 0; i < cfg.num_ssds; ++i) {
    rig->ssds.push_back(
        std::make_unique<flash::SimSsd>(spec, /*track_content=*/false));
    rig->ssds.back()->precondition();
    rig->ssds.back()->register_metrics(
        obs::Scope(rig->registry, "ssd." + std::to_string(i)));
  }
  rig->primary = make_primary(k);
  rig->primary->register_metrics(obs::Scope(rig->registry, "hdd"));
  rig->cache =
      std::make_unique<src::SrcCache>(cfg, rig->ssd_ptrs(), rig->primary.get());
  rig->cache->register_metrics(obs::Scope(rig->registry, "src"));
  rig->cache->format(0);
  return rig;
}

}  // namespace

int main() {
  print_header("Multi-tenant adaptive partitioning",
               "extension: adaptive capacity split over the §4 SRC stack");
  const double k = scale();

  common::Table t({"Run", "MB/s", "hit", "t0 hit", "t1 hit", "t0 share",
                   "epochs", "rebal"});
  struct StaticSplit {
    const char* name;
    double t0_share;
  };
  const StaticSplit splits[] = {
      {"static-25-75", 0.25}, {"static-50-50", 0.50}, {"static-75-25", 0.75}};

  auto run_one = [&](const char* name, double t0_share, bool adaptive) {
    auto rig = make_mt_rig(k);
    const u64 cap = rig->cache->config().capacity_blocks();
    MtWorkload w = make_workload(cap, /*seed=*/42);

    workload::RunConfig rc;
    rc.threads_per_gen = 8;
    rc.iodepth = 8;
    rc.duration = run_duration();
    rc.warmup_bytes = 2 * 3 * rig->geo.region_bytes_per_ssd;
    rc.registry = &rig->registry;
    rc.timeseries_interval = repro_timeseries_interval();
    rc.num_tenants = 2;

    std::unique_ptr<adapt::AdaptiveController> ctrl;
    if (adaptive) {
      adapt::AdaptConfig ac;
      ac.num_tenants = 2;
      ac.capacity_blocks = cap;
      ac.epoch = repro_epoch();
      ac.sampling_rate = repro_shards_rate();
      ctrl = std::make_unique<adapt::AdaptiveController>(
          ac, [&rig](const std::vector<u64>& q) {
            rig->cache->set_tenant_quotas(q);
          });
      ctrl->register_metrics(obs::Scope(rig->registry, "adapt"));
      rc.adapt = ctrl.get();
    } else {
      const u64 t0 = static_cast<u64>(static_cast<double>(cap) * t0_share);
      rig->cache->set_tenant_quotas({t0, cap - t0});
    }

    workload::Runner runner(rig->cache.get(), rig->ssd_ptrs());
    const workload::RunResult res = runner.run({w.mix.get()}, rc);

    const double t0_final_share =
        adaptive && !res.tenants.empty()
            ? static_cast<double>(res.tenants[0].target_blocks) /
                  static_cast<double>(cap)
            : t0_share;
    t.add_row({name, common::Table::num(res.throughput_mbps, 1),
               common::Table::num(res.hit_ratio, 3),
               common::Table::num(res.tenants[0].hit_ratio(), 3),
               common::Table::num(res.tenants[1].hit_ratio(), 3),
               common::Table::num(t0_final_share, 2),
               std::to_string(res.adapt_epochs),
               std::to_string(res.adapt_rebalances)});
    report_run("bench_multitenant", name, res);
    return res;
  };

  for (const StaticSplit& s : splits) run_one(s.name, s.t0_share, false);
  run_one("adaptive", 0.0, true);
  t.print();
  return 0;
}
