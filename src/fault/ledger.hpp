// FaultLedger: per-fault accounting that must reconcile.
//
// Every injected fault opens a record; the cache reports back when a fault
// manifests (a checksum mismatch, a media error, a failed device) and when
// it is repaired. The four exported counters obey, structurally,
//
//     fault.injected == fault.detected + fault.undetected
//     fault.repaired <= fault.detected
//
// so the crash/fault harnesses can assert the stack never "loses" a fault:
// an undetected fault is one that genuinely never manifested (the block was
// overwritten or never read again), not one the detection path dropped.
// Records are keyed (device, lba) so double reads of the same corrupted
// block count one detection, and repair reports that match no open fault
// (e.g. an ordinary degraded-mode reconstruction) are ignored rather than
// inflating the ledger.
#pragma once

#include <map>
#include <utility>

#include "common/types.hpp"
#include "fault/fault_plan.hpp"

namespace srcache::fault {

class FaultLedger {
 public:
  // Block-granular faults use the block's device LBA; device-scope faults
  // (fail-stop, link degradation) use kDeviceScope.
  static constexpr u64 kDeviceScope = ~0ull;

  void record_injected(FaultKind kind, int dev, u64 lba = kDeviceScope) {
    (void)kind;
    auto [it, fresh] = records_.try_emplace(key(dev, lba), State::kOpen);
    if (!fresh) {
      // Re-injecting into the same block re-opens the record: a repaired
      // block corrupted again must be detected again.
      if (it->second == State::kRepaired) repaired_--;
      if (it->second != State::kOpen) detected_--;
      it->second = State::kOpen;
    }
    injected_++;
  }

  // Reported by the detection path (CRC mismatch, media error, fail-stop
  // observation). Returns whether this matched an open injected fault.
  bool record_detected(int dev, u64 lba = kDeviceScope) {
    auto it = records_.find(key(dev, lba));
    if (it == records_.end() || it->second != State::kOpen) return false;
    it->second = State::kDetected;
    detected_++;
    return true;
  }

  // Reported after a successful repair (parity/mirror rebuild, refetch).
  // A repair implies detection, so an open record counts both.
  bool record_repaired(int dev, u64 lba = kDeviceScope) {
    auto it = records_.find(key(dev, lba));
    if (it == records_.end() || it->second == State::kRepaired) return false;
    if (it->second == State::kOpen) detected_++;
    it->second = State::kRepaired;
    repaired_++;
    return true;
  }

  // Reported by the background rebuild engine when a replaced device has
  // been fully reconstructed. Counts in its own bucket, distinct from the
  // on-the-fly refetch/parity repairs above, but still inside `repaired`
  // so the reconciliation invariants are unchanged.
  bool record_repaired_by_rebuild(int dev, u64 lba = kDeviceScope) {
    if (!record_repaired(dev, lba)) return false;
    repaired_by_rebuild_++;
    return true;
  }

  [[nodiscard]] u64 injected() const { return injected_; }
  [[nodiscard]] u64 detected() const { return detected_; }
  [[nodiscard]] u64 repaired() const { return repaired_; }
  [[nodiscard]] u64 repaired_by_rebuild() const {
    return repaired_by_rebuild_;
  }
  // Faults injected but never observed by any read/scrub/recovery path.
  [[nodiscard]] u64 undetected() const { return injected_ - detected_; }

  [[nodiscard]] bool reconciles() const {
    return injected_ == detected_ + undetected() && repaired_ <= detected_;
  }

  void reset() {
    records_.clear();
    injected_ = detected_ = repaired_ = repaired_by_rebuild_ = 0;
  }

 private:
  enum class State : u8 { kOpen, kDetected, kRepaired };

  static std::pair<int, u64> key(int dev, u64 lba) { return {dev, lba}; }

  std::map<std::pair<int, u64>, State> records_;
  u64 injected_ = 0;
  u64 detected_ = 0;
  u64 repaired_ = 0;
  u64 repaired_by_rebuild_ = 0;
};

}  // namespace srcache::fault
