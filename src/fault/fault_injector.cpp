#include "fault/fault_injector.hpp"

#include <stdexcept>

namespace srcache::fault {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      fired_flags_(plan_.events().size(), false),
      rng_(plan_.seed()) {}

void FaultInjector::attach_ssds(std::vector<blockdev::BlockDevice*> ssds) {
  ssds_ = std::move(ssds);
  for (const FaultEvent& ev : plan_.events()) {
    if (ev.dev != kPrimaryDev &&
        static_cast<size_t>(ev.dev) >= ssds_.size()) {
      throw std::invalid_argument("fault plan targets ssd" +
                                  std::to_string(ev.dev) + " but only " +
                                  std::to_string(ssds_.size()) +
                                  " SSDs are attached");
    }
  }
}

void FaultInjector::attach_primary(blockdev::BlockDevice* primary) {
  primary_ = primary;
}

void FaultInjector::set_failure_callback(
    std::function<void(size_t, sim::SimTime)> cb) {
  on_ssd_failure_ = std::move(cb);
}

void FaultInjector::set_replace_callback(
    std::function<void(size_t, sim::SimTime)> cb) {
  on_ssd_replace_ = std::move(cb);
}

void FaultInjector::set_spare_callback(std::function<void(u32)> cb) {
  on_spare_ = std::move(cb);
}

void FaultInjector::set_powercut_callback(
    std::function<void(sim::SimTime)> cb) {
  on_powercut_ = std::move(cb);
}

blockdev::BlockDevice* FaultInjector::device(int dev) const {
  if (dev == kPrimaryDev) return primary_;
  return static_cast<size_t>(dev) < ssds_.size()
             ? ssds_[static_cast<size_t>(dev)]
             : nullptr;
}

bool FaultInjector::advance(sim::SimTime now, u64 ops) {
  if (fired_ == plan_.events().size()) return false;
  const sim::SimTime rel = now > epoch_ ? now - epoch_ : 0;
  bool any = false;
  for (size_t i = 0; i < plan_.events().size(); ++i) {
    if (fired_flags_[i]) continue;
    const FaultEvent& ev = plan_.events()[i];
    if (!ev.trigger.due(rel, ops)) continue;
    fired_flags_[i] = true;
    fired_++;
    if (first_fire_ < 0) first_fire_ = now;
    fire(ev, now);
    any = true;
  }
  return any;
}

void FaultInjector::fire(const FaultEvent& ev, sim::SimTime now) {
  blockdev::BlockDevice* dev = device(ev.dev);
  switch (ev.kind) {
    case FaultKind::kFailStop:
      if (dev == nullptr) return;
      dev->fail();
      // A fail-stop is device-reported, hence detected the moment the array
      // observes it — which is immediately, via the failure callback.
      ledger_.record_injected(ev.kind, ev.dev);
      ledger_.record_detected(ev.dev);
      if (ev.dev != kPrimaryDev && on_ssd_failure_)
        on_ssd_failure_(static_cast<size_t>(ev.dev), now);
      break;
    case FaultKind::kHeal:
      if (dev != nullptr) dev->heal();
      break;
    case FaultKind::kReplace:
      // A drive swap is a repair step, not a new fault: no ledger record is
      // opened here. The earlier fail-stop's device-scope record is marked
      // repaired by the rebuild manager once reconstruction completes.
      if (dev == nullptr) return;
      dev->replace_media();
      if (ev.dev != kPrimaryDev && on_ssd_replace_)
        on_ssd_replace_(static_cast<size_t>(ev.dev), now);
      break;
    case FaultKind::kSpare:
      if (on_spare_) on_spare_(static_cast<u32>(ev.count));
      break;
    case FaultKind::kCorrupt: {
      if (dev == nullptr) return;
      if (ev.count == 0) {
        for (u64 lba = ev.lba_begin; lba < ev.lba_end; ++lba) {
          dev->corrupt(lba);
          ledger_.record_injected(ev.kind, ev.dev, lba);
        }
      } else {
        for (u64 i = 0; i < ev.count; ++i) {
          const u64 lba =
              ev.lba_begin + rng_.below(ev.lba_end - ev.lba_begin);
          dev->corrupt(lba);
          ledger_.record_injected(ev.kind, ev.dev, lba);
        }
      }
      break;
    }
    case FaultKind::kLatent:
      if (dev == nullptr) return;
      dev->inject_media_errors(ev.lba_begin, ev.lba_end - ev.lba_begin);
      for (u64 lba = ev.lba_begin; lba < ev.lba_end; ++lba)
        ledger_.record_injected(ev.kind, ev.dev, lba);
      break;
    case FaultKind::kLinkDegrade:
      if (dev == nullptr) return;
      dev->degrade_service(ev.factor, now + ev.duration);
      // A slow link is immediately visible in latency; performance faults
      // count as detected on injection.
      ledger_.record_injected(ev.kind, ev.dev);
      ledger_.record_detected(ev.dev);
      break;
    case FaultKind::kPowerCut:
      ledger_.record_injected(ev.kind, kPrimaryDev, now);
      if (on_powercut_) on_powercut_(now);
      break;
  }
}

void FaultInjector::register_metrics(const obs::Scope& scope) {
  scope.counter_fn("injected", [this] { return ledger_.injected(); });
  scope.counter_fn("detected", [this] { return ledger_.detected(); });
  scope.counter_fn("repaired", [this] { return ledger_.repaired(); });
  scope.counter_fn("undetected", [this] { return ledger_.undetected(); });
  scope.counter_fn("events_fired", [this] { return fired_; });
}

}  // namespace srcache::fault
