// FaultInjector: arms a FaultPlan against a device stack and fires events
// as virtual time / measured-op count advance.
//
// The injector is driven by workload::Runner (RunConfig::fault): before each
// measured request it calls advance(now, ops), which fires every due event
// exactly once, in plan order. Effects go through the BlockDevice fault
// hooks (fail/heal/corrupt/inject_media_errors/degrade_service), so any
// simulated device participates; the SRC-specific reaction to a fail-stop
// (drop unprotected blocks, §4.3) is delivered through an optional callback
// so this layer stays independent of the cache.
//
// All bookkeeping flows into the FaultLedger; register_metrics() exports
// fault.injected / fault.detected / fault.repaired / fault.undetected plus
// fault.events_fired, which REPRO_JSON picks up like any other counters.
#pragma once

#include <functional>
#include <vector>

#include "block/block_device.hpp"
#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "fault/ledger.hpp"
#include "obs/metrics.hpp"

namespace srcache::fault {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Borrowed devices; indices match the plan's ssd<i> targets.
  void attach_ssds(std::vector<blockdev::BlockDevice*> ssds);
  void attach_primary(blockdev::BlockDevice* primary);
  // Invoked with the SSD index and fire time after a fail-stop fires (wire
  // to SrcCache::on_ssd_failure so the array reacts as in §4.3, and to
  // raid::RebuildManager::on_device_failed so the degraded clock starts).
  void set_failure_callback(std::function<void(size_t, sim::SimTime)> cb);
  // Invoked with the SSD index and fire time after a `replace` action has
  // installed a blank device (wire to RebuildManager::on_device_replaced so
  // background reconstruction starts).
  void set_replace_callback(std::function<void(size_t, sim::SimTime)> cb);
  // Invoked with the spare count when a `spare` action fires (wire to
  // RebuildManager::add_spares).
  void set_spare_callback(std::function<void(u32)> cb);
  // Invoked when a powercut event fires (wire to the crash harness; without
  // a callback the event is recorded but has no device effect).
  void set_powercut_callback(std::function<void(sim::SimTime)> cb);

  // Triggers are relative to the measurement window; the runner sets the
  // window start so plans read "2s into the measured run".
  void set_epoch(sim::SimTime epoch) { epoch_ = epoch; }

  // Fires every due, not-yet-fired event. Returns true if any fired.
  bool advance(sim::SimTime now, u64 ops);

  [[nodiscard]] u64 events_fired() const { return fired_; }
  [[nodiscard]] u64 events_pending() const {
    return plan_.events().size() - fired_;
  }
  // Absolute sim time of the first event to fire; -1 before any fires.
  [[nodiscard]] sim::SimTime first_fire_time() const { return first_fire_; }

  [[nodiscard]] FaultLedger& ledger() { return ledger_; }
  [[nodiscard]] const FaultLedger& ledger() const { return ledger_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  // Exports the reconciling fault counters under `scope`, e.g. "fault".
  void register_metrics(const obs::Scope& scope);

 private:
  void fire(const FaultEvent& ev, sim::SimTime now);
  [[nodiscard]] blockdev::BlockDevice* device(int dev) const;

  FaultPlan plan_;
  std::vector<bool> fired_flags_;
  u64 fired_ = 0;
  sim::SimTime epoch_ = 0;
  sim::SimTime first_fire_ = -1;

  std::vector<blockdev::BlockDevice*> ssds_;
  blockdev::BlockDevice* primary_ = nullptr;
  std::function<void(size_t, sim::SimTime)> on_ssd_failure_;
  std::function<void(size_t, sim::SimTime)> on_ssd_replace_;
  std::function<void(u32)> on_spare_;
  std::function<void(sim::SimTime)> on_powercut_;

  common::Xoshiro256 rng_;
  FaultLedger ledger_;
};

}  // namespace srcache::fault
