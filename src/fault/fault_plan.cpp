#include "fault/fault_plan.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

namespace srcache::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kFailStop: return "fail";
    case FaultKind::kHeal: return "heal";
    case FaultKind::kReplace: return "replace";
    case FaultKind::kSpare: return "spare";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kLatent: return "latent";
    case FaultKind::kLinkDegrade: return "degrade";
    case FaultKind::kPowerCut: return "powercut";
  }
  return "?";
}

namespace {

// One ';'-clause split into whitespace-separated "key=value" (or bare)
// tokens. All parse helpers report errors through `err` so the caller can
// attribute them to the clause.
struct Clause {
  std::string text;
  std::map<std::string, std::string> kv;
  std::string action;
};

bool parse_u64(const std::string& s, u64* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = static_cast<u64>(v);
  return true;
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

// "2s" | "500ms" | "30us" | "1000ns" -> nanoseconds.
bool parse_duration(const std::string& s, sim::SimTime* out) {
  size_t unit = 0;
  while (unit < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[unit])) != 0 ||
          s[unit] == '.')) {
    ++unit;
  }
  if (unit == 0) return false;
  double num = 0.0;
  if (!parse_double(s.substr(0, unit), &num) || num < 0) return false;
  const std::string suffix = s.substr(unit);
  double mult = 0.0;
  if (suffix == "s") {
    mult = 1e9;
  } else if (suffix == "ms") {
    mult = 1e6;
  } else if (suffix == "us") {
    mult = 1e3;
  } else if (suffix == "ns") {
    mult = 1.0;
  } else {
    return false;
  }
  *out = static_cast<sim::SimTime>(num * mult);
  return true;
}

// "ssd3" -> 3, "primary" -> kPrimaryDev.
bool parse_dev(const std::string& s, int* out) {
  if (s == "primary") {
    *out = kPrimaryDev;
    return true;
  }
  if (s.rfind("ssd", 0) == 0) {
    u64 idx = 0;
    if (!parse_u64(s.substr(3), &idx) || idx > 255) return false;
    *out = static_cast<int>(idx);
    return true;
  }
  return false;
}

// "a..b" -> [a, b).
bool parse_range(const std::string& s, u64* begin, u64* end) {
  const size_t dots = s.find("..");
  if (dots == std::string::npos) return false;
  if (!parse_u64(s.substr(0, dots), begin) ||
      !parse_u64(s.substr(dots + 2), end)) {
    return false;
  }
  return *begin < *end;
}

Status clause_error(const Clause& c, const std::string& why) {
  return Status(ErrorCode::kInvalidArgument,
                "fault plan: " + why + " in clause '" + c.text + "'");
}

}  // namespace

std::string FaultEvent::describe() const {
  std::ostringstream os;
  if (trigger.kind == Trigger::Kind::kOps) {
    os << "at=ops:" << trigger.at_ops;
  } else {
    os << "at=" << static_cast<double>(trigger.at_time) / 1e9 << "s";
  }
  os << " " << to_string(kind);
  if (kind != FaultKind::kPowerCut && kind != FaultKind::kSpare) {
    os << " dev=" << (dev == kPrimaryDev ? std::string("primary")
                                         : "ssd" + std::to_string(dev));
  }
  if (kind == FaultKind::kSpare) os << " count=" << count;
  if (kind == FaultKind::kCorrupt || kind == FaultKind::kLatent) {
    os << " lba=" << lba_begin << ".." << lba_end;
    if (count > 0) os << " count=" << count;
  }
  if (kind == FaultKind::kLinkDegrade) {
    os << " factor=" << factor
       << " for=" << static_cast<double>(duration) / 1e9 << "s";
  }
  return os.str();
}

std::string FaultPlan::describe() const {
  std::string s;
  for (const FaultEvent& ev : events_) {
    if (!s.empty()) s += "; ";
    s += ev.describe();
  }
  return s;
}

Result<FaultPlan> FaultPlan::parse(const std::string& spec, u64 seed) {
  FaultPlan plan;
  plan.seed_ = seed;

  std::stringstream clauses(spec);
  std::string raw;
  while (std::getline(clauses, raw, ';')) {
    Clause c;
    c.text = raw;
    std::stringstream tokens(raw);
    std::string tok;
    while (tokens >> tok) {
      const size_t eq = tok.find('=');
      if (eq == std::string::npos) {
        if (!c.action.empty())
          return clause_error(c, "more than one action ('" + c.action +
                                     "' and '" + tok + "')");
        c.action = tok;
      } else {
        const std::string key = tok.substr(0, eq);
        if (c.kv.contains(key))
          return clause_error(c, "duplicate key '" + key + "'");
        c.kv[key] = tok.substr(eq + 1);
      }
    }
    if (c.action.empty() && c.kv.empty()) continue;  // blank clause
    if (c.action.empty()) return clause_error(c, "missing action");

    FaultEvent ev;

    // Trigger.
    auto at = c.kv.find("at");
    if (at == c.kv.end()) return clause_error(c, "missing at=<trigger>");
    if (at->second.rfind("ops:", 0) == 0) {
      ev.trigger.kind = Trigger::Kind::kOps;
      if (!parse_u64(at->second.substr(4), &ev.trigger.at_ops))
        return clause_error(c, "bad op-count trigger '" + at->second + "'");
    } else {
      ev.trigger.kind = Trigger::Kind::kTime;
      if (!parse_duration(at->second, &ev.trigger.at_time))
        return clause_error(c, "bad time trigger '" + at->second + "'");
    }
    c.kv.erase("at");

    // Action + parameters.
    auto take_dev = [&]() -> Status {
      auto it = c.kv.find("dev");
      if (it == c.kv.end()) return clause_error(c, "missing dev=");
      if (!parse_dev(it->second, &ev.dev))
        return clause_error(c, "bad device '" + it->second + "'");
      c.kv.erase(it);
      return Status::ok();
    };
    auto take_range = [&]() -> Status {
      auto it = c.kv.find("lba");
      if (it == c.kv.end()) return clause_error(c, "missing lba=<a>..<b>");
      if (!parse_range(it->second, &ev.lba_begin, &ev.lba_end))
        return clause_error(c, "bad block range '" + it->second + "'");
      c.kv.erase(it);
      return Status::ok();
    };

    if (c.action == "fail" || c.action == "heal") {
      ev.kind = c.action == "fail" ? FaultKind::kFailStop : FaultKind::kHeal;
      if (Status s = take_dev(); !s.is_ok()) return s;
    } else if (c.action == "replace") {
      ev.kind = FaultKind::kReplace;
      if (Status s = take_dev(); !s.is_ok()) return s;
      if (ev.dev == kPrimaryDev)
        return clause_error(c, "replace targets an SSD, not the primary");
    } else if (c.action == "spare") {
      ev.kind = FaultKind::kSpare;
      ev.count = 1;
      if (auto it = c.kv.find("count"); it != c.kv.end()) {
        if (!parse_u64(it->second, &ev.count) || ev.count == 0 ||
            ev.count > 255) {
          return clause_error(c, "bad count '" + it->second + "'");
        }
        c.kv.erase(it);
      }
    } else if (c.action == "corrupt" || c.action == "latent") {
      ev.kind = c.action == "corrupt" ? FaultKind::kCorrupt : FaultKind::kLatent;
      if (Status s = take_dev(); !s.is_ok()) return s;
      if (Status s = take_range(); !s.is_ok()) return s;
      if (auto it = c.kv.find("count"); it != c.kv.end()) {
        if (ev.kind != FaultKind::kCorrupt)
          return clause_error(c, "count= only applies to corrupt");
        if (!parse_u64(it->second, &ev.count) || ev.count == 0)
          return clause_error(c, "bad count '" + it->second + "'");
        c.kv.erase(it);
      }
      if (ev.dev == kPrimaryDev)
        return clause_error(c, c.action + " targets an SSD, not the primary");
      // Unbounded per-block fault records would swamp the ledger.
      const u64 span = ev.count > 0 ? ev.count : ev.lba_end - ev.lba_begin;
      if (span > 1u << 20)
        return clause_error(c, "range injects > 1Mi block faults");
    } else if (c.action == "degrade") {
      ev.kind = FaultKind::kLinkDegrade;
      if (Status s = take_dev(); !s.is_ok()) return s;
      auto f = c.kv.find("factor");
      if (f == c.kv.end()) return clause_error(c, "missing factor=");
      if (!parse_double(f->second, &ev.factor) || ev.factor < 1.0 ||
          ev.factor > 1e6) {
        return clause_error(c, "factor must be in [1, 1e6], got '" +
                                   f->second + "'");
      }
      c.kv.erase(f);
      auto d = c.kv.find("for");
      if (d == c.kv.end()) return clause_error(c, "missing for=<duration>");
      if (!parse_duration(d->second, &ev.duration) || ev.duration == 0)
        return clause_error(c, "bad duration '" + d->second + "'");
      c.kv.erase(d);
    } else if (c.action == "powercut") {
      ev.kind = FaultKind::kPowerCut;
    } else {
      return clause_error(c, "unknown action '" + c.action + "'");
    }

    if (!c.kv.empty())
      return clause_error(c, "unknown key '" + c.kv.begin()->first + "'");
    plan.events_.push_back(ev);
  }
  return plan;
}

FaultPlan FaultPlan::parse_or_die(const std::string& spec, u64 seed) {
  auto r = parse(spec, seed);
  if (!r.is_ok()) throw std::invalid_argument(r.status().to_string());
  return std::move(r).take();
}

}  // namespace srcache::fault
