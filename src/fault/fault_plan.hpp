// FaultPlan: a deterministic, scripted schedule of device faults.
//
// The paper's reliability claims (§4.3, Table 10) rest on the cache
// surviving the faults commodity SSDs actually produce: whole-device
// fail-stop, latent sector errors, silent corruption (Bairavasundaram et
// al.), degraded interconnects, and power cuts that tear in-flight metadata
// writes. A FaultPlan scripts those faults at virtual-time or op-count
// triggers so every scenario is reproducible bit-for-bit under a seed and
// can be swept as a CI matrix instead of hand-written one-off tests.
//
// Plan syntax (one event per ';'-separated clause, whitespace-insensitive):
//
//   at=<trigger> <action> [key=value ...]
//
//   trigger:  "2s" | "500ms" | "30us" (virtual time into the measurement
//             window) or "ops:1000" (after the 1000th measured request).
//   actions:
//     fail     dev=ssd<i>|primary            whole-device fail-stop
//     heal     dev=ssd<i>|primary            undo an earlier fail (transient
//              fault: the device's contents survive)
//     replace  dev=ssd<i>                    physical drive swap: installs a
//              blank device (contents cleared, FTL state reset). The rebuild
//              engine (raid/rebuild.hpp) reconstructs it in the background.
//     spare    [count=N]                     add N (default 1) hot spares to
//              the rebuild manager's pool
//     corrupt  dev=ssd<i> lba=<a>..<b> [count=N]
//              silent bit flips; all blocks of [a,b), or N seeded-random
//              picks from it when count is given
//     latent   dev=ssd<i> lba=<a>..<b>       latent sector errors: reads of
//              the range return media errors until the range is rewritten
//     degrade  dev=primary factor=<f> for=<dur>
//              interconnect degradation: link transfers and RTT are
//              multiplied by f for the duration
//     powercut                               schedule a power cut (consumed
//              by the crash-consistency harness; see crash_harness.hpp)
//
// Example: "at=2s fail dev=ssd1; at=ops:5000 corrupt dev=ssd0
//           lba=1024..4096 count=16; at=4s degrade dev=primary factor=8
//           for=1s"
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "sim/time.hpp"

namespace srcache::fault {

enum class FaultKind : u8 {
  kFailStop,
  kHeal,
  kReplace,
  kSpare,
  kCorrupt,
  kLatent,
  kLinkDegrade,
  kPowerCut,
};

const char* to_string(FaultKind k);

// When an event fires: at a virtual time into the measurement window, or
// once a number of measured requests have been issued.
struct Trigger {
  enum class Kind : u8 { kTime, kOps };
  Kind kind = Kind::kTime;
  sim::SimTime at_time = 0;  // kTime: ns into the window
  u64 at_ops = 0;            // kOps: measured-request count

  [[nodiscard]] bool due(sim::SimTime rel_now, u64 ops) const {
    return kind == Kind::kTime ? rel_now >= at_time : ops >= at_ops;
  }
};

// Target device: SSD index, or kPrimary for the backing store / its link.
inline constexpr int kPrimaryDev = -1;

struct FaultEvent {
  Trigger trigger;
  FaultKind kind = FaultKind::kFailStop;
  int dev = kPrimaryDev;
  u64 lba_begin = 0;  // corrupt/latent: [lba_begin, lba_end)
  u64 lba_end = 0;
  u64 count = 0;        // corrupt: random picks from the range (0 = all)
  double factor = 1.0;  // degrade: service-time multiplier
  sim::SimTime duration = 0;  // degrade: how long the window lasts

  [[nodiscard]] std::string describe() const;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // Parses the plan syntax above. Rejects unknown actions, malformed
  // triggers, empty/backwards ranges and out-of-range numbers with a
  // message naming the offending clause.
  static Result<FaultPlan> parse(const std::string& spec, u64 seed = 1);

  // Convenience: parse-or-throw for statically known specs (tests, benches).
  static FaultPlan parse_or_die(const std::string& spec, u64 seed = 1);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] u64 seed() const { return seed_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::string describe() const;

  void add(const FaultEvent& ev) { events_.push_back(ev); }

 private:
  std::vector<FaultEvent> events_;
  u64 seed_ = 1;
};

}  // namespace srcache::fault
