#include "fault/crash_harness.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_map>

#include "block/mem_disk.hpp"
#include "common/rng.hpp"
#include "tier/tier_cache.hpp"

namespace srcache::fault {

namespace {

using blockdev::MemDisk;
using blockdev::MemDiskConfig;
using src::SrcCache;
using CrashPoint = SrcCache::CrashPoint;

constexpr CrashPoint kPoints[] = {CrashPoint::kBeforeSeg, CrashPoint::kAfterMs,
                                  CrashPoint::kAfterData};

const char* point_name(CrashPoint p) {
  switch (p) {
    case CrashPoint::kBeforeSeg: return "before-seg";
    case CrashPoint::kAfterMs: return "after-ms";
    case CrashPoint::kAfterData: return "after-data";
    case CrashPoint::kNone: break;
  }
  return "none";
}

struct Op {
  bool is_write = false;
  u64 lba = 0;
  u32 nblocks = 1;
  u8 comp_pct = 60;       // per-op compressibility stamp (tier replays)
  std::vector<u64> tags;  // writes only
};

// The whole workload is materialized up front so every replay issues an
// identical prefix, whatever boundary it is cut at.
struct Script {
  std::vector<Op> ops;
  // Per LBA, every (tag, op index) ever written to it, in issue order.
  // Version index 0 is the implicit never-written content (tag 0).
  std::unordered_map<u64, std::vector<std::pair<u64, u64>>> history;

  [[nodiscard]] long version_index(u64 lba, u64 tag) const {
    if (tag == 0) return 0;
    auto it = history.find(lba);
    if (it == history.end()) return -1;
    for (size_t i = 0; i < it->second.size(); ++i)
      if (it->second[i].first == tag) return static_cast<long>(i) + 1;
    return -1;
  }

  // Was a version newer than `floor_idx` written to `lba` before op
  // `crash_op`? If so, that write superseded the durable copy in RAM and was
  // itself lost with the cut — the paper's accepted (TWAIT-bounded) loss
  // window, within which the durable version may regress.
  [[nodiscard]] bool newer_write_before(u64 lba, long floor_idx,
                                        u64 crash_op) const {
    auto it = history.find(lba);
    if (it == history.end()) return false;
    for (size_t i = 0; i < it->second.size(); ++i) {
      if (static_cast<long>(i) + 1 > floor_idx &&
          it->second[i].second < crash_op)
        return true;
    }
    return false;
  }
};

Script make_script(const CrashSweepConfig& cfg) {
  Script sc;
  common::Xoshiro256 rng(cfg.seed);
  const u64 ws = std::max<u64>(cfg.working_set_blocks, 8);
  const auto write_permille = static_cast<u64>(cfg.write_fraction * 1000.0);
  u64 version = 0;
  for (u64 i = 0; i < cfg.ops; ++i) {
    Op op;
    op.is_write = rng.below(1000) < write_permille;
    op.nblocks = 1 + static_cast<u32>(rng.below(4));
    op.lba = rng.below(ws - op.nblocks);
    // 20..100%: mostly compressible, with a tail above the tier's
    // incompressible threshold so the bypass path gets exercised too.
    op.comp_pct = static_cast<u8>(20 + rng.below(81));
    if (op.is_write) {
      for (u32 k = 0; k < op.nblocks; ++k) {
        const u64 tag = blockdev::make_tag(op.lba + k, ++version);
        op.tags.push_back(tag);
        sc.history[op.lba + k].emplace_back(tag, i);
      }
    }
    sc.ops.push_back(std::move(op));
  }
  return sc;
}

// A fresh device set + cache, mirroring the small test rig: MemDisks keep
// the sweep (hundreds of replays) cheap while exercising the full SRC stack.
struct Rig {
  std::vector<std::unique_ptr<MemDisk>> ssds;
  std::unique_ptr<MemDisk> primary;
  std::unique_ptr<SrcCache> cache;
  std::unique_ptr<tier::TierCache> tier;  // optional DRAM tier above cache
  src::SrcConfig cfg;
  u64 tier_budget;
  u32 tier_dirty_pct;

  Rig(const src::SrcConfig& c, u64 tier_budget_bytes, u32 dirty_pct)
      : cfg(c), tier_budget(tier_budget_bytes), tier_dirty_pct(dirty_pct) {
    MemDiskConfig fast;
    fast.capacity_blocks =
        cfg.region_start_block + cfg.region_bytes_per_ssd / kBlockSize + 64;
    fast.op_latency = 20 * sim::kUs;
    fast.bandwidth_mbps = 500.0;
    fast.flush_latency = 4 * sim::kMs;
    for (u32 i = 0; i < cfg.num_ssds; ++i)
      ssds.push_back(std::make_unique<MemDisk>(fast));
    MemDiskConfig slow;
    slow.capacity_blocks = 1 * GiB / kBlockSize;
    slow.op_latency = 5 * sim::kMs;
    slow.bandwidth_mbps = 110.0;
    primary = std::make_unique<MemDisk>(slow);
    reattach();
    cache->format(0);
  }

  // Reboot: all in-memory cache state is discarded, the media survives.
  // The DRAM tier does not survive a reboot — post-recovery reads go
  // straight to the rebuilt cache.
  void reattach() {
    tier.reset();
    std::vector<blockdev::BlockDevice*> devs;
    for (auto& s : ssds) devs.push_back(s.get());
    cache = std::make_unique<SrcCache>(cfg, devs, primary.get());
    if (tier_budget > 0) {
      tier::TierConfig tc;
      tc.budget_bytes = tier_budget;
      tc.dirty_pct = tier_dirty_pct;
      tc.destage_batch_blocks =
          static_cast<u32>(cfg.segment_data_slots(true));
      tier = std::make_unique<tier::TierCache>(tc, cache.get(), cache.get());
    }
  }
};

// Replays the script until done or the scheduled power cut fires. Returns
// the number of ops issued (the crashing op counts as issued). With a tier,
// requests enter through it — the cut can then fire mid-destage, while the
// crashed inner cache drops everything else the tier pushes down.
u64 replay(Rig& rig, const Script& sc) {
  cache::CacheDevice* front =
      rig.tier != nullptr ? static_cast<cache::CacheDevice*>(rig.tier.get())
                          : rig.cache.get();
  sim::SimTime now = 1;
  u64 issued = 0;
  for (const Op& op : sc.ops) {
    cache::AppRequest req;
    req.now = now;
    req.is_write = op.is_write;
    req.lba = op.lba;
    req.nblocks = op.nblocks;
    req.comp_pct = op.comp_pct;
    if (op.is_write) req.tags = op.tags.data();
    front->submit(req);
    issued++;
    if (rig.cache->crashed()) break;
    now += 50 * sim::kUs;
  }
  return issued;
}

struct SnapshotEntry {
  u64 lba;
  bool dirty;
  u64 tag;

  bool operator==(const SnapshotEntry& o) const {
    return lba == o.lba && dirty == o.dirty && tag == o.tag;
  }
};

// Reads back every recovered block through the normal (checksum-verified)
// read path. Reading only resident blocks keeps the snapshot side-effect
// free: hits never fetch, stage or seal anything.
std::vector<SnapshotEntry> snapshot(Rig& rig, u64 working_set,
                                    std::vector<std::string>* violations,
                                    const std::string& ctx) {
  std::vector<SnapshotEntry> snap;
  sim::SimTime now = 1;
  for (u64 lba = 0; lba < working_set; ++lba) {
    const auto res = rig.cache->residence(lba);
    if (res == SrcCache::Residence::kAbsent) continue;
    const bool dirty = res == SrcCache::Residence::kCachedDirty ||
                       res == SrcCache::Residence::kDirtyBuffer;
    u64 tag = 0;
    cache::AppRequest req;
    req.now = now;
    req.lba = lba;
    req.nblocks = 1;
    req.tags_out = &tag;
    rig.cache->submit(req);
    now += 10 * sim::kUs;
    snap.push_back({lba, dirty, tag});
  }
  if (rig.cache->extra().unrecoverable_blocks != 0) {
    violations->push_back(ctx + ": unrecoverable blocks after recovery");
  }
  return snap;
}

}  // namespace

CrashSweepResult run_crash_sweep(const CrashSweepConfig& cfg) {
  CrashSweepResult res;
  src::SrcConfig sc_cfg = cfg.src;
  sc_cfg.verify_checksums = true;

  const Script script = make_script(cfg);

  // Baseline pass enumerates the power-cut boundaries: one per segment seal.
  // The tier (if any) is present here too, so the seal schedule matches the
  // crashing replays exactly.
  u64 total_seals = 0;
  {
    Rig rig(sc_cfg, cfg.tier_budget_bytes, cfg.tier_dirty_pct);
    replay(rig, script);
    total_seals = rig.cache->seals();
  }
  if (total_seals == 0) {
    res.violations.push_back(
        "workload sealed no segments; nothing to crash into");
    return res;
  }

  u64 stride = 1;
  if (cfg.max_boundaries > 0 && total_seals > cfg.max_boundaries)
    stride = (total_seals + cfg.max_boundaries - 1) / cfg.max_boundaries;

  FaultLedger ledger;
  FaultLedger tier_ledger;  // one injected+detected pair per lost dirty block
  // Per LBA, the version index durably recovered at the previous boundary;
  // monotone durability means it never decreases as the cut moves later.
  std::map<u64, long> durable_floor;
  u64 case_id = 0;

  for (u64 b = 0; b < total_seals; b += stride) {
    res.boundaries++;
    std::vector<std::vector<SnapshotEntry>> snaps;

    for (CrashPoint point : kPoints) {
      const std::string ctx = "boundary " + std::to_string(b) + " " +
                              point_name(point);
      res.cases++;
      ledger.record_injected(FaultKind::kPowerCut, kPrimaryDev, case_id);

      Rig rig(sc_cfg, cfg.tier_budget_bytes, cfg.tier_dirty_pct);
      if (rig.tier != nullptr) rig.tier->set_fault_ledger(&tier_ledger);
      rig.cache->schedule_crash(b, point);
      const u64 crash_op = replay(rig, script);
      if (!rig.cache->crashed()) {
        res.violations.push_back(ctx + ": scheduled cut never fired");
        case_id++;
        continue;
      }

      // DRAM dies with the power: dirty tier residents are lost and each
      // loss is ledgered before the reboot discards the tier.
      if (rig.tier != nullptr) {
        rig.tier->on_power_cut(1);
        res.tier_lost_dirty += rig.tier->tier_stats().lost_dirty_blocks;
      }

      rig.reattach();  // reboot
      sim::SimTime done = 0;
      const Status st = rig.cache->recover(0, &done);
      if (!st.is_ok()) {
        res.violations.push_back(ctx + ": recovery failed: " + st.to_string());
        case_id++;
        continue;
      }
      const Status audit = rig.cache->verify_consistency();
      if (!audit.is_ok()) {
        res.violations.push_back(ctx + ": post-recovery audit: " +
                                 audit.to_string());
      }

      const u64 torn = rig.cache->extra().torn_segments_discarded;
      res.torn_segments += torn;
      if (torn > 0) ledger.record_detected(kPrimaryDev, case_id);

      auto snap = snapshot(rig, cfg.working_set_blocks, &res.violations, ctx);

      // Invariant 3: every surviving block holds a value actually written.
      for (const SnapshotEntry& e : snap) {
        if (script.version_index(e.lba, e.tag) < 0) {
          res.violations.push_back(ctx + ": lba " + std::to_string(e.lba) +
                                   " recovered a tag never written to it");
        }
      }

      // Invariant 4: durability is monotone in the boundary index. The
      // durable version of an LBA is what a reboot serves: the recovered
      // cache copy, else primary storage's copy. Checked once per boundary
      // (the cut points recover identical state per invariant 2).
      if (point == CrashPoint::kAfterData) {
        std::unordered_map<u64, u64> cached;
        for (const SnapshotEntry& e : snap) cached[e.lba] = e.tag;
        sim::SimTime now = 1;
        for (u64 lba = 0; lba < cfg.working_set_blocks; ++lba) {
          u64 tag = 0;
          if (auto it = cached.find(lba); it != cached.end()) {
            tag = it->second;
          } else {
            rig.primary->read(now, lba, 1, std::span<u64>(&tag, 1));
            now += 1 * sim::kUs;
          }
          const long idx = script.version_index(lba, tag);
          auto it = durable_floor.find(lba);
          if (it != durable_floor.end() && idx >= 0 && idx < it->second &&
              !script.newer_write_before(lba, it->second, crash_op)) {
            res.violations.push_back(
                ctx + ": lba " + std::to_string(lba) +
                " regressed from version " + std::to_string(it->second) +
                " to " + std::to_string(idx));
          }
          if (idx >= 0)
            durable_floor[lba] =
                std::max(it == durable_floor.end() ? idx : it->second, idx);
        }
      }

      snaps.push_back(std::move(snap));
      case_id++;
    }

    // Invariant 2: how much of the torn segment reached media must not
    // matter — the three cut points recover bit-identical state.
    for (size_t p = 1; p < snaps.size(); ++p) {
      if (!(snaps[p] == snaps[0])) {
        res.violations.push_back(
            "boundary " + std::to_string(b) + ": " + point_name(kPoints[p]) +
            " recovered different state than " + point_name(kPoints[0]));
      }
    }

  }

  res.injected = ledger.injected();
  res.detected = ledger.detected();
  res.undetected = ledger.undetected();
  if (!ledger.reconciles())
    res.violations.push_back("power-cut fault ledger does not reconcile");
  if (res.injected != res.cases)
    res.violations.push_back("ledger injected count != cases run");
  if (cfg.tier_budget_bytes > 0) {
    if (!tier_ledger.reconciles())
      res.violations.push_back("tier data-loss ledger does not reconcile");
    if (tier_ledger.injected() != res.tier_lost_dirty)
      res.violations.push_back(
          "tier ledger injected != lost dirty tier blocks");
  }
  return res;
}

}  // namespace srcache::fault
