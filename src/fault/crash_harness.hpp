// Crash-consistency harness: sweeps a power cut across *every* segment-write
// boundary of a deterministic workload and proves the §4.1/§4.3 recovery
// invariants at each one.
//
// For each boundary b (the b-th segment seal of the replay) and each cut
// point within the stripe write — before anything hits media (kBeforeSeg),
// after the MS blocks (kAfterMs), after MS + data (kAfterData) — the harness
// replays the workload into a fresh device set, cuts power via
// SrcCache::schedule_crash, reboots (a fresh SrcCache over the surviving
// media), runs recovery, and asserts:
//
//   1. recovery succeeds and the rebuilt state passes verify_consistency();
//   2. the recovered state is identical across the three cut points at the
//      same boundary — MS/ME generation matching means a torn segment
//      contributes *nothing*, no matter how much of it reached media;
//   3. every recovered block's content is a value that was actually written
//      to that LBA (tag-history membership: no torn or cross-wired state is
//      ever admitted);
//   4. durability is monotone: once a version of an LBA survives recovery at
//      boundary b, no later boundary may regress it to an older version —
//      except within the paper's accepted loss window, when a newer acked
//      write superseded the durable copy in RAM and was lost with the cut;
//   5. no block is unrecoverable, and the power-cut fault ledger reconciles
//      (injected == detected + undetected; a cut that tore a segment is
//      detected via the discarded-torn-segment count, a cut before any media
//      write legitimately leaves no evidence).
//
// With tier_budget_bytes > 0 the replay runs through a compressed DRAM tier
// (tier::TierCache) above the cache. DRAM vanishes at the cut: every dirty
// block resident in the tier is *lost* — an accepted widening of the paper's
// loss window, which invariant 4's newer_write_before escape already covers
// (the lost write was acked after the durable copy, and the cut took it).
// The harness fires TierCache::on_power_cut at each cut and additionally
// asserts that the tier's own data-loss ledger reconciles: one
// injected+detected record per lost dirty block, nothing silent.
#pragma once

#include <string>
#include <vector>

#include "fault/ledger.hpp"
#include "src_cache/src_cache.hpp"

namespace srcache::fault {

struct CrashSweepConfig {
  // Cache geometry; verify_checksums is forced on so the post-recovery read
  // sweep re-validates every surviving block.
  src::SrcConfig src;
  u64 ops = 400;                 // deterministic replayed requests
  u64 working_set_blocks = 2048;
  double write_fraction = 0.7;
  u64 seed = 1;
  // 0 sweeps every seal boundary; N > 0 subsamples evenly to bound cost.
  u64 max_boundaries = 0;
  // > 0 interposes a compressed DRAM tier with this budget above the cache
  // for every replay (small budgets force destages, so seals still happen).
  u64 tier_budget_bytes = 0;
  u32 tier_dirty_pct = 50;
};

struct CrashSweepResult {
  u64 boundaries = 0;        // seal boundaries swept
  u64 cases = 0;             // boundary x cut-point replays executed
  u64 torn_segments = 0;     // segments recovery discarded across all cases
  u64 injected = 0;          // power cuts injected (== cases)
  u64 detected = 0;          // cuts that left a discarded torn segment
  u64 undetected = 0;        // cuts before any media write (no evidence)
  u64 tier_lost_dirty = 0;   // dirty tier blocks lost across all cases
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

// Runs the sweep. Deterministic for a given config (workload, seal schedule
// and every assertion input derive from cfg.seed).
CrashSweepResult run_crash_sweep(const CrashSweepConfig& cfg);

}  // namespace srcache::fault
