// Sharded parallel simulation engine.
//
// The rest of srcache advances one virtual timeline; wall-clock speed is the
// binding constraint on every full-footprint experiment. This engine
// exploits the paper's own structure — an SSD-array cache is an array of
// *independent* extent groups over *independent* devices — by partitioning a
// run into N shard domains, each owning a complete simulation instance: its
// own virtual timeline, SrcCache + SimSsd + backend stack, generators, RNG
// streams, and obs registry. Domains never share mutable state, so a fixed
// pool of worker threads advances them concurrently, synchronizing at epoch
// barriers where per-shard clocks meet and cross-domain work (fault-plan
// events, adapt quota decisions, telemetry merges) runs on the coordinator
// thread against quiescent domains.
//
// Determinism contract (what makes this a simulation engine rather than a
// thread-pool hack): the merged result is bit-identical regardless of
// REPRO_SHARDS and REPRO_THREADS.
//  1. The domain partition is a property of the experiment (num_domains in
//     run()), never of the execution configuration. Shards are execution
//     lanes over that fixed partition; lane d runs domains {d, d+shards,
//     ...} but a domain's execution depends only on its own inputs, so
//     placement is free.
//  2. Epoch boundaries are window-relative virtual times, identical for
//     every domain and every execution configuration. Epoch hooks run on
//     the coordinator thread, after every domain reached the barrier and
//     before any resumes, and must themselves be deterministic functions of
//     the (index-ordered) domain states they observe.
//  3. Merging walks domains in index order; all aggregation is exact
//     (integer sums, histogram-bucket adds) or a fixed-order function of
//     exact aggregates.
// Wall-clock measurements (per-lane busy time, ops/sec) are inherently
// execution-dependent and are reported only through EngineResult's perf
// fields, which the bench harness emits into the REPRO_JSON "perf" section
// — explicitly excluded from the bit-identity contract.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "workload/closed_loop.hpp"
#include "workload/runner.hpp"

namespace srcache::engine {

struct EngineConfig {
  // Execution lanes over the domain partition (REPRO_SHARDS). Lanes beyond
  // the domain count idle; 1 reproduces the serial runner.
  u32 shards = 1;
  // Worker threads (REPRO_THREADS); 0 = min(lanes, hardware_concurrency).
  // Fewer threads than lanes just multiplexes lanes onto the pool.
  u32 threads = 0;
  // Virtual time between epoch barriers; 0 = duration / 8.
  sim::SimTime epoch = 0;
};

// Everything one shard domain needs: a cache stack, the devices whose
// traffic counts as cache-layer I/O, generators, and a per-domain RunConfig
// (registry/fault/adapt wired to *this domain's* instances). `owned` keeps
// the whole rig alive for the engine's lifetime.
struct DomainSetup {
  cache::CacheDevice* cache = nullptr;
  std::vector<blockdev::BlockDevice*> ssds;
  std::vector<workload::Generator*> gens;
  workload::RunConfig cfg;
  std::shared_ptr<void> owned;
};

// Builds domain `index` of `count`. May run on a worker thread; factories
// must not touch shared mutable state (build your rig from the arguments
// and values captured by copy).
using DomainFactory = std::function<DomainSetup(u32 index, u32 count)>;

// One shard domain under engine control. Epoch hooks receive these (index-
// ordered) to observe per-domain state and deliver cross-domain events
// against a quiescent simulation.
class ShardDomain {
 public:
  [[nodiscard]] u32 index() const { return index_; }
  [[nodiscard]] u32 lane() const { return lane_; }
  [[nodiscard]] u64 ops() const { return loop_->ops(); }
  [[nodiscard]] u64 bytes() const { return loop_->bytes(); }
  [[nodiscard]] bool finished() const { return loop_->finished(); }
  [[nodiscard]] sim::SimTime window_start() const {
    return loop_->window_start();
  }
  // Next pending completion, relative to the domain's window start. At an
  // epoch-k barrier this is >= the barrier's rel_end for every unfinished
  // domain — the quiescence invariant hooks may rely on.
  [[nodiscard]] sim::SimTime rel_next_event() const {
    return loop_->next_event() - loop_->window_start();
  }
  [[nodiscard]] cache::CacheDevice* cache() const { return setup_.cache; }
  // Cumulative measured-window latency of this domain so far — the input an
  // epoch SLO watchdog deltas at barriers.
  [[nodiscard]] const obs::LatencyRecorder& latency() const {
    return loop_->latency();
  }
  // The domain's cache-layer devices — what a fault-plan hook fails, heals
  // or degrades at a barrier.
  [[nodiscard]] const std::vector<blockdev::BlockDevice*>& ssds() const {
    return setup_.ssds;
  }
  [[nodiscard]] const workload::RunConfig& config() const {
    return setup_.cfg;
  }

 private:
  friend class ParallelEngine;

  DomainSetup setup_;
  std::optional<workload::ClosedLoop> loop_;
  u32 index_ = 0;
  u32 lane_ = 0;
};

// Barrier context handed to epoch hooks.
struct EpochView {
  u32 epoch = 0;                // 0-based barrier index
  sim::SimTime rel_end = 0;     // window-relative virtual time of the barrier
  sim::SimTime epoch_length = 0;
  const std::vector<std::unique_ptr<ShardDomain>>* domains = nullptr;
};

// Runs on the coordinator thread at every barrier; must be a deterministic
// function of the view (see the contract above).
using EpochHook = std::function<void(const EpochView&)>;

// Wall-clock view of one execution lane (nondeterministic by nature).
struct ShardPerf {
  u32 lane = 0;
  u32 domains = 0;
  u64 ops = 0;
  u64 bytes = 0;
  double wall_seconds = 0.0;  // lane busy time across all phases
};

struct EngineResult {
  // Deterministic merged run (res.engine carries the partition shape).
  workload::RunResult merged;
  // Per-domain results in index order, for callers that want the slices.
  std::vector<workload::RunResult> per_domain;

  u32 domains = 0;
  u32 shards = 0;   // lanes actually used (min(cfg.shards, domains))
  u32 threads = 0;  // pool size actually used
  u32 epochs = 0;   // barriers crossed

  // Wall-clock performance (excluded from the determinism contract).
  double wall_seconds = 0.0;
  double sim_ops_per_sec = 0.0;
  std::vector<ShardPerf> per_shard;
};

class ParallelEngine {
 public:
  explicit ParallelEngine(const EngineConfig& cfg);

  // Hooks run at every barrier in registration order.
  void add_epoch_hook(EpochHook hook);

  // Builds `num_domains` domains via `factory` (on the lanes, in parallel),
  // runs warm-up, then the epoch-barrier loop, then merges. Every domain
  // must use the same cfg.duration. Throws std::invalid_argument on
  // misconfiguration; exceptions from domain code are rethrown (lowest
  // domain index wins when several lanes fail).
  EngineResult run(u32 num_domains, const DomainFactory& factory);

 private:
  EngineConfig cfg_;
  std::vector<EpochHook> hooks_;
};

// Deterministic merge of per-domain results (exposed for tests). `parts`
// must be index-ordered and share seconds/duration; derived doubles are
// recomputed from the exact integer aggregates.
workload::RunResult merge_results(
    const std::vector<workload::RunResult>& parts);

}  // namespace srcache::engine
