#include "engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace srcache::engine {

namespace {

// Fixed pool of workers executing "fn(lane) for every lane" phases. Lanes
// are claimed dynamically — placement is free because domains never share
// state; only the wall-clock a thread charges to a lane depends on it.
// Constructed with 0 threads the pool runs phases inline on the caller.
class LanePool {
 public:
  explicit LanePool(u32 threads) {
    workers_.reserve(threads);
    for (u32 i = 0; i < threads; ++i)
      workers_.emplace_back([this] { worker(); });
  }

  LanePool(const LanePool&) = delete;
  LanePool& operator=(const LanePool&) = delete;

  ~LanePool() {
    {
      const std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  // Blocks until fn ran for every lane in [0, lanes). A lane's exception
  // lands in errs[lane]; the caller decides which to rethrow.
  void run(u32 lanes, const std::function<void(u32)>& fn,
           std::vector<std::exception_ptr>& errs) {
    if (lanes == 0) return;
    if (workers_.empty()) {
      for (u32 lane = 0; lane < lanes; ++lane) run_lane(lane, fn, errs);
      return;
    }
    std::unique_lock<std::mutex> lk(mu_);
    fn_ = &fn;
    errs_ = &errs;
    lanes_ = lanes;
    next_ = 0;
    pending_ = lanes;
    ++generation_;
    cv_.notify_all();
    done_cv_.wait(lk, [this] { return pending_ == 0; });
    fn_ = nullptr;
    errs_ = nullptr;
  }

 private:
  static void run_lane(u32 lane, const std::function<void(u32)>& fn,
                       std::vector<std::exception_ptr>& errs) {
    try {
      fn(lane);
    } catch (...) {
      errs[lane] = std::current_exception();
    }
  }

  void worker() {
    u64 seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      while (next_ < lanes_) {
        const u32 lane = next_++;
        lk.unlock();
        run_lane(lane, *fn_, *errs_);
        lk.lock();
        if (--pending_ == 0) done_cv_.notify_one();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
  u64 generation_ = 0;

  const std::function<void(u32)>* fn_ = nullptr;
  std::vector<std::exception_ptr>* errs_ = nullptr;
  u32 lanes_ = 0;
  u32 next_ = 0;
  u32 pending_ = 0;
};

// Sample-wise merge of per-domain time series. Domains share the window
// duration and sampling interval but not their absolute window anchors, so
// the merged series is re-anchored at 0 and samples are matched by index
// (sample i of every domain covers the same window-relative span).
// Extensive quantities (ops, bytes, gc counters, tenant activity, gauges)
// sum across domains; "util.<resource>" utilizations average over the
// domains reporting the resource — each domain owns its own copy of the
// device array, so the mean is the array-wide utilization.
obs::TimeSeries merge_timeseries(const std::vector<workload::RunResult>& parts) {
  obs::TimeSeries out;
  out.interval = parts[0].timeseries.interval;
  out.window_start = 0;
  size_t n = 0;
  for (const workload::RunResult& p : parts) {
    out.truncated = out.truncated || p.timeseries.truncated;
    n = std::max(n, p.timeseries.samples.size());
  }
  if (out.interval <= 0 || n == 0) return out;

  out.samples.resize(n);
  for (size_t i = 0; i < n; ++i) {
    obs::TimeSample& s = out.samples[i];
    std::map<std::string, u32> util_count;
    // Per-sample SSD traffic isn't stored raw, only as io_amplification;
    // reconstruct the numerator per domain to merge the ratio exactly up to
    // the (deterministic, index-ordered) floating-point sum.
    double ssd_blocks = 0.0;
    bool anchored = false;
    for (const workload::RunResult& p : parts) {
      const obs::TimeSeries& ts = p.timeseries;
      if (i >= ts.samples.size()) continue;
      const obs::TimeSample& ps = ts.samples[i];
      if (!anchored) {
        s.start = ps.start - ts.window_start;
        s.end = ps.end - ts.window_start;
        anchored = true;
      }
      s.ops += ps.ops;
      s.bytes += ps.bytes;
      s.app_blocks += ps.app_blocks;
      s.hits += ps.hits;
      s.misses += ps.misses;
      ssd_blocks += ps.io_amplification * static_cast<double>(ps.app_blocks);
      for (const auto& [name, v] : ps.series) {
        s.series[name] += v;
        if (name.starts_with("util.")) util_count[name]++;
      }
    }
    const double secs = sim::to_seconds(s.duration());
    s.throughput_mbps =
        secs > 0.0 ? static_cast<double>(s.bytes) / 1e6 / secs : 0.0;
    const u64 classified = s.hits + s.misses;
    s.hit_ratio = classified == 0 ? 0.0
                                  : static_cast<double>(s.hits) /
                                        static_cast<double>(classified);
    s.io_amplification =
        s.app_blocks == 0 ? 0.0
                          : ssd_blocks / static_cast<double>(s.app_blocks);
    for (const auto& [name, cnt] : util_count)
      if (cnt > 1) s.series[name] /= static_cast<double>(cnt);
  }
  return out;
}

}  // namespace

workload::RunResult merge_results(
    const std::vector<workload::RunResult>& parts) {
  if (parts.empty())
    throw std::invalid_argument("engine: merge of zero results");
  workload::RunResult m;
  m.seconds = parts[0].seconds;

  for (const workload::RunResult& p : parts) {
    m.ops += p.ops;
    m.bytes += p.bytes;

    m.cache.app_read_ops += p.cache.app_read_ops;
    m.cache.app_read_blocks += p.cache.app_read_blocks;
    m.cache.app_write_ops += p.cache.app_write_ops;
    m.cache.app_write_blocks += p.cache.app_write_blocks;
    m.cache.read_hit_blocks += p.cache.read_hit_blocks;
    m.cache.read_miss_blocks += p.cache.read_miss_blocks;
    m.cache.write_hit_blocks += p.cache.write_hit_blocks;
    m.cache.write_new_blocks += p.cache.write_new_blocks;
    m.cache.fetch_blocks += p.cache.fetch_blocks;
    m.cache.destage_blocks += p.cache.destage_blocks;
    m.cache.gc_copy_blocks += p.cache.gc_copy_blocks;
    m.cache.dropped_clean_blocks += p.cache.dropped_clean_blocks;
    m.cache.app_flushes += p.cache.app_flushes;

    m.ssd.read_ops += p.ssd.read_ops;
    m.ssd.read_blocks += p.ssd.read_blocks;
    m.ssd.write_ops += p.ssd.write_ops;
    m.ssd.write_blocks += p.ssd.write_blocks;
    m.ssd.flushes += p.ssd.flushes;
    m.ssd.trim_ops += p.ssd.trim_ops;
    m.ssd.trim_blocks += p.ssd.trim_blocks;

    m.latency.merge_from(p.latency);
    m.metrics.merge_add(p.metrics);
    m.provenance.merge_add(p.provenance);
    m.spans.merge_add(p.spans);

    m.fault.active = m.fault.active || p.fault.active;
    m.fault.events_fired += p.fault.events_fired;
    m.fault.injected += p.fault.injected;
    m.fault.detected += p.fault.detected;
    m.fault.repaired += p.fault.repaired;
    m.fault.repaired_by_rebuild += p.fault.repaired_by_rebuild;
    m.fault.undetected += p.fault.undetected;
    m.rebuild.merge_add(p.rebuild);
    m.tier.merge_add(p.tier);
    if (p.fault.first_fault_s >= 0.0 &&
        (m.fault.first_fault_s < 0.0 ||
         p.fault.first_fault_s < m.fault.first_fault_s))
      m.fault.first_fault_s = p.fault.first_fault_s;
    m.fault.degraded_bytes += p.fault.degraded_bytes;
    m.fault.degraded_latency.merge_from(p.fault.degraded_latency);

    if (p.tenants.size() > m.tenants.size()) m.tenants.resize(p.tenants.size());
    for (size_t t = 0; t < p.tenants.size(); ++t) {
      workload::TenantOutcome& to = m.tenants[t];
      to.ops += p.tenants[t].ops;
      to.bytes += p.tenants[t].bytes;
      to.hit_blocks += p.tenants[t].hit_blocks;
      to.miss_blocks += p.tenants[t].miss_blocks;
      to.target_blocks += p.tenants[t].target_blocks;
    }
    // Epoch counts coincide across domains (same window, same epoch length);
    // max keeps the invariant when a domain ran out of ops early.
    m.adapt_epochs = std::max(m.adapt_epochs, p.adapt_epochs);
    m.adapt_rebalances += p.adapt_rebalances;

    m.trace_info.present = m.trace_info.present || p.trace_info.present;
    m.trace_info.malformed_lines += p.trace_info.malformed_lines;
  }

  m.throughput_mbps =
      m.seconds > 0.0 ? static_cast<double>(m.bytes) / 1e6 / m.seconds : 0.0;
  const u64 app_blocks = m.cache.app_blocks();
  m.io_amplification = app_blocks == 0
                           ? 0.0
                           : static_cast<double>(m.ssd.total_blocks()) /
                                 static_cast<double>(app_blocks);
  m.hit_ratio = m.cache.hit_ratio();

  m.read_lat = obs::LatencySummary::of(m.latency.reads());
  m.write_lat = obs::LatencySummary::of(m.latency.writes());
  for (int c = 0; c < obs::kNumReqClasses; ++c) {
    m.class_lat[static_cast<size_t>(c)] = obs::LatencySummary::of(
        m.latency.histogram(static_cast<obs::ReqClass>(c)));
  }
  m.latency_clamped = m.latency.clamped();
  m.metrics.counters["obs.latency.clamped"] = m.latency_clamped;

  if (m.fault.active) {
    // The merged healthy/degraded split uses the earliest fault across
    // domains. When the same plan is delivered to every domain at the same
    // window-relative time (the engine's normal mode) all domains agree and
    // this is exact; with heterogeneous plans it is the conservative split.
    if (m.fault.first_fault_s >= 0.0) {
      const double healthy_s = m.fault.first_fault_s;
      const double degraded_s = m.seconds - healthy_s;
      const u64 healthy_bytes = m.bytes - m.fault.degraded_bytes;
      if (healthy_s > 0.0)
        m.fault.healthy_mbps =
            static_cast<double>(healthy_bytes) / 1e6 / healthy_s;
      if (degraded_s > 0.0)
        m.fault.degraded_mbps =
            static_cast<double>(m.fault.degraded_bytes) / 1e6 / degraded_s;
      m.fault.degraded_read_lat =
          obs::LatencySummary::of(m.fault.degraded_latency.reads());
      m.fault.degraded_write_lat =
          obs::LatencySummary::of(m.fault.degraded_latency.writes());
    } else {
      m.fault.healthy_mbps = m.throughput_mbps;
    }
  }

  m.timeseries = merge_timeseries(parts);
  return m;
}

ParallelEngine::ParallelEngine(const EngineConfig& cfg) : cfg_(cfg) {}

void ParallelEngine::add_epoch_hook(EpochHook hook) {
  hooks_.push_back(std::move(hook));
}

EngineResult ParallelEngine::run(u32 num_domains,
                                 const DomainFactory& factory) {
  if (num_domains == 0)
    throw std::invalid_argument("engine: num_domains must be >= 1");
  if (!factory) throw std::invalid_argument("engine: null domain factory");

  const u32 lanes = std::min(std::max(cfg_.shards, u32{1}), num_domains);
  u32 threads = cfg_.threads;
  if (threads == 0)
    threads = std::min(lanes, std::max(1u, std::thread::hardware_concurrency()));
  threads = std::min(threads, lanes);

  const auto wall0 = std::chrono::steady_clock::now();

  std::vector<std::unique_ptr<ShardDomain>> domains(num_domains);
  std::vector<double> lane_wall(lanes, 0.0);
  std::vector<std::exception_ptr> errs(lanes);
  LanePool pool(threads > 1 ? threads : 0);

  // Runs lane_fn for every lane across the pool, charges each lane's wall
  // time, and rethrows the lowest failing lane (= lowest failing domain).
  auto phase = [&](const std::function<void(u32)>& lane_fn) {
    std::fill(errs.begin(), errs.end(), nullptr);
    const std::function<void(u32)> timed = [&](u32 lane) {
      const auto t0 = std::chrono::steady_clock::now();
      lane_fn(lane);
      lane_wall[lane] +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    };
    pool.run(lanes, timed, errs);
    for (u32 lane = 0; lane < lanes; ++lane)
      if (errs[lane]) std::rethrow_exception(errs[lane]);
  };

  // Build + warm-up + window open, one pass per lane over its domains.
  phase([&](u32 lane) {
    for (u32 d = lane; d < num_domains; d += lanes) {
      auto dom = std::make_unique<ShardDomain>();
      dom->index_ = d;
      dom->lane_ = lane;
      dom->setup_ = factory(d, num_domains);
      if (dom->setup_.cache == nullptr)
        throw std::invalid_argument("engine: domain factory returned no cache");
      dom->loop_.emplace(dom->setup_.cache, dom->setup_.ssds,
                         dom->setup_.gens, dom->setup_.cfg);
      dom->loop_->warmup();
      dom->loop_->start();
      domains[d] = std::move(dom);
    }
  });

  const sim::SimTime duration = domains[0]->setup_.cfg.duration;
  if (duration <= 0)
    throw std::invalid_argument("engine: non-positive duration");
  for (const auto& dom : domains) {
    if (dom->setup_.cfg.duration != duration)
      throw std::invalid_argument("engine: domains disagree on duration");
  }
  sim::SimTime epoch_len = cfg_.epoch > 0 ? cfg_.epoch : duration / 8;
  if (epoch_len <= 0) epoch_len = duration;

  // Epoch-barrier loop. Barriers are window-relative virtual times, so each
  // domain advances to its own window_start + rel_end; the pool barrier
  // quiesces every domain before hooks run on this (coordinator) thread.
  u32 epochs = 0;
  for (u32 k = 1;; ++k) {
    const sim::SimTime rel_end = std::min<sim::SimTime>(
        duration, epoch_len * static_cast<sim::SimTime>(k));
    phase([&](u32 lane) {
      for (u32 d = lane; d < num_domains; d += lanes) {
        ShardDomain& dom = *domains[d];
        if (!dom.loop_->finished())
          dom.loop_->run_until(dom.loop_->window_start() + rel_end);
      }
    });
    ++epochs;
    EpochView view;
    view.epoch = epochs - 1;
    view.rel_end = rel_end;
    view.epoch_length = epoch_len;
    view.domains = &domains;
    for (const EpochHook& h : hooks_) h(view);
    bool all_done = true;
    for (const auto& dom : domains)
      all_done = all_done && dom->loop_->finished();
    // Early break is deterministic: finishing is a property of each
    // domain's simulation and the (fixed) barrier schedule.
    if (all_done || rel_end >= duration) break;
  }

  std::vector<workload::RunResult> parts(num_domains);
  phase([&](u32 lane) {
    for (u32 d = lane; d < num_domains; d += lanes)
      parts[d] = domains[d]->loop_->finish();
  });

  EngineResult out;
  out.merged = merge_results(parts);
  out.merged.engine.active = true;
  out.merged.engine.domains = num_domains;
  out.merged.engine.epochs = epochs;
  out.merged.engine.per_domain.reserve(num_domains);
  for (const workload::RunResult& p : parts)
    out.merged.engine.per_domain.push_back({p.ops, p.bytes});

  out.domains = num_domains;
  out.shards = lanes;
  out.threads = threads;
  out.epochs = epochs;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  out.sim_ops_per_sec =
      out.wall_seconds > 0.0
          ? static_cast<double>(out.merged.ops) / out.wall_seconds
          : 0.0;
  out.per_shard.resize(lanes);
  for (u32 lane = 0; lane < lanes; ++lane) {
    ShardPerf& sp = out.per_shard[lane];
    sp.lane = lane;
    sp.wall_seconds = lane_wall[lane];
    for (u32 d = lane; d < num_domains; d += lanes) {
      sp.domains++;
      sp.ops += parts[d].ops;
      sp.bytes += parts[d].bytes;
    }
  }
  out.per_domain = std::move(parts);
  return out;
}

}  // namespace srcache::engine
