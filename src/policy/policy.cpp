#include "policy/policy.hpp"

#include <algorithm>

namespace srcache::policy {

namespace {

// Ghost structures remember roughly one cache's worth of evicted lbas —
// the standard S3-FIFO setting, and enough reuse history for admission —
// clamped so tiny test rigs still get a useful window and a huge cache
// cannot make policy metadata unbounded.
constexpr u64 kGhostMin = 16;
constexpr u64 kGhostMax = u64{1} << 20;

u64 ghost_capacity_for(u64 capacity_blocks) {
  return std::clamp(capacity_blocks, kGhostMin, kGhostMax);
}

}  // namespace

std::optional<EvictionKind> parse_eviction(const std::string& s) {
  if (s == "paper") return EvictionKind::kPaper;
  if (s == "s3fifo") return EvictionKind::kS3Fifo;
  if (s == "sieve") return EvictionKind::kSieve;
  return std::nullopt;
}

std::optional<AdmissionKind> parse_admission(const std::string& s) {
  if (s == "always") return AdmissionKind::kAlways;
  if (s == "ghost") return AdmissionKind::kGhost;
  return std::nullopt;
}

const char* to_string(EvictionKind k) {
  switch (k) {
    case EvictionKind::kPaper: return "paper";
    case EvictionKind::kS3Fifo: return "s3fifo";
    case EvictionKind::kSieve: return "sieve";
  }
  return "?";
}

const char* to_string(AdmissionKind k) {
  switch (k) {
    case AdmissionKind::kAlways: return "always";
    case AdmissionKind::kGhost: return "ghost";
  }
  return "?";
}

// --- PaperEviction ---------------------------------------------------------

bool PaperEviction::keep_on_gc(u64 lba, bool hot, bool dirty) {
  (void)lba;
  // Sel-GC as written: dirty blocks are copied unconditionally, clean ones
  // get the hot-flag second chance.
  const bool keep = dirty || hot;
  if (keep) {
    stats_.gc_kept++;
  } else {
    stats_.gc_evicted++;
  }
  return keep;
}

// --- S3FifoEviction --------------------------------------------------------

S3FifoEviction::S3FifoEviction(u64 capacity_blocks)
    : ghost_capacity_(ghost_capacity_for(capacity_blocks)) {}

void S3FifoEviction::ghost_insert(u64 lba) {
  if (ghost_index_.contains(lba)) return;  // already remembered
  ghost_fifo_.push_front(lba);
  ghost_index_.emplace(lba, ghost_fifo_.begin());
  if (ghost_fifo_.size() > ghost_capacity_) {
    ghost_index_.erase(ghost_fifo_.back());
    ghost_fifo_.pop_back();
  }
}

void S3FifoEviction::on_admit(u64 lba) {
  auto [it, inserted] = resident_.try_emplace(lba);
  if (!inserted) {
    // Already resident (rewrite of a tracked block): treat as an access.
    it->second.freq = static_cast<u8>(std::min<u32>(it->second.freq + 1,
                                                    kFreqCap));
    return;
  }
  const auto ghost = ghost_index_.find(lba);
  if (ghost != ghost_index_.end()) {
    // Quick demotion was a mistake for this lba: readmit straight to main,
    // with one wrap of guaranteed survival — the reuse is proven, and for a
    // destaged dirty block the readmission already cost a write-back cycle.
    ghost_fifo_.erase(ghost->second);
    ghost_index_.erase(ghost);
    it->second.main = true;
    it->second.freq = 1;
    stats_.ghost_hits++;
  }
}

void S3FifoEviction::on_access(u64 lba) {
  const auto it = resident_.find(lba);
  if (it == resident_.end()) return;
  it->second.freq = static_cast<u8>(std::min<u32>(it->second.freq + 1,
                                                  kFreqCap));
}

bool S3FifoEviction::keep_on_gc(u64 lba, bool hot, bool dirty) {
  // Survival is decided by observed reuse: a cold dirty block is destaged
  // by the caller instead of being recopied forever (safe — the destage
  // lands it on primary storage before the drop). Evicting dirty data is a
  // full write-back, so cold dirty blocks in small get one promotion
  // before the verdict lands (destage at the second cold wrap, not the
  // first), and every dirty eviction enters the ghost: a rewrite after a
  // destage is reuse evidence worth readmitting straight to main.
  (void)hot;
  const auto it = resident_.find(lba);
  if (it == resident_.end()) {
    // Not tracked (e.g. resident before a policy switch at recovery): the
    // conservative verdict is evict — the block is recoverable (refetch
    // for clean, destage-then-refetch for dirty).
    stats_.gc_evicted++;
    ghost_insert(lba);
    return false;
  }
  Entry& e = it->second;
  if (!e.main) {
    if (e.freq == 0) {
      if (dirty) {
        // Cold dirty in small: promote with one credit — the destage
        // verdict lands only after two further wraps without reuse.
        // Evicting dirty data costs a write-back plus a possible
        // refetch, so it takes more evidence of deadness than a clean
        // drop does.
        e.main = true;
        e.freq = 1;
        stats_.gc_kept++;
        return true;
      }
      // Never re-accessed while in small: quick demotion to ghost.
      resident_.erase(it);
      stats_.gc_evicted++;
      ghost_insert(lba);
      return false;
    }
    // Survived small with reuse: promote to main.
    e.main = true;
    e.freq = 0;
    stats_.promotions++;
    stats_.gc_kept++;
    return true;
  }
  if (e.freq > 0) {
    e.freq--;
    stats_.gc_kept++;
    return true;
  }
  // Main block whose reuse ran out. Clean main evictions do not enter the
  // ghost (standard S3-FIFO); dirty ones do, to catch rewrite churn.
  resident_.erase(it);
  stats_.gc_evicted++;
  if (dirty) ghost_insert(lba);
  return false;
}

void S3FifoEviction::on_evict(u64 lba) { resident_.erase(lba); }

S3FifoEviction::Queue S3FifoEviction::queue_of(u64 lba) const {
  const auto it = resident_.find(lba);
  if (it != resident_.end()) {
    return it->second.main ? Queue::kMain : Queue::kSmall;
  }
  if (ghost_index_.contains(lba)) return Queue::kGhost;
  return Queue::kNone;
}

// --- SieveEviction ---------------------------------------------------------

void SieveEviction::on_admit(u64 lba) { visited_.try_emplace(lba, false); }

void SieveEviction::on_access(u64 lba) {
  const auto it = visited_.find(lba);
  if (it != visited_.end()) it->second = true;
}

bool SieveEviction::keep_on_gc(u64 lba, bool hot, bool dirty) {
  (void)hot;
  (void)dirty;
  const auto it = visited_.find(lba);
  if (it == visited_.end()) {
    stats_.gc_evicted++;
    return false;
  }
  if (it->second) {
    // The hand passes: one more life, bit cleared.
    it->second = false;
    stats_.gc_kept++;
    return true;
  }
  visited_.erase(it);
  stats_.gc_evicted++;
  return false;
}

void SieveEviction::on_evict(u64 lba) { visited_.erase(lba); }

bool SieveEviction::visited(u64 lba) const {
  const auto it = visited_.find(lba);
  return it != visited_.end() && it->second;
}

// --- AlwaysAdmission -------------------------------------------------------

bool AlwaysAdmission::admit(u64 lba) {
  (void)lba;
  stats_.admitted++;
  return true;
}

// --- GhostAdmission --------------------------------------------------------

GhostAdmission::GhostAdmission(u64 capacity_blocks)
    : ghost_capacity_(ghost_capacity_for(capacity_blocks)),
      ghost_([this] {
        adapt::GhostCache::Config c;
        c.sampling_rate = 1.0;  // admission needs exact evidence, not MRCs
        c.max_entries = ghost_capacity_;
        c.sizes = {ghost_capacity_};
        return c;
      }()) {}

bool GhostAdmission::admit(u64 lba) {
  const bool seen = ghost_.contains(lba);
  ghost_.access(lba);
  if (seen) {
    stats_.admitted++;
    stats_.ghost_hits++;
    return true;
  }
  stats_.rejected++;
  return false;
}

// --- factories -------------------------------------------------------------

std::unique_ptr<EvictionPolicy> make_eviction(EvictionKind kind,
                                              u64 capacity_blocks) {
  switch (kind) {
    case EvictionKind::kPaper:
      return std::make_unique<PaperEviction>();
    case EvictionKind::kS3Fifo:
      return std::make_unique<S3FifoEviction>(capacity_blocks);
    case EvictionKind::kSieve:
      return std::make_unique<SieveEviction>();
  }
  return std::make_unique<PaperEviction>();
}

std::unique_ptr<AdmissionPolicy> make_admission(AdmissionKind kind,
                                                u64 capacity_blocks) {
  switch (kind) {
    case AdmissionKind::kAlways:
      return std::make_unique<AlwaysAdmission>();
    case AdmissionKind::kGhost:
      return std::make_unique<GhostAdmission>(capacity_blocks);
  }
  return std::make_unique<AlwaysAdmission>();
}

}  // namespace srcache::policy
