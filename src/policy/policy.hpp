// Pluggable replacement/admission policies for the SRC cache.
//
// The paper's SRC cache hard-codes one scheme: a hot-flag second chance at
// GC time (Sel-GC keeps a clean block iff it was touched since it was
// staged) and admit-everything on the fill path. Its central claim — cost-
// effective flash caching — is really a point on the hit-ratio vs
// NAND-write-amplification frontier, so this subsystem extracts both
// decisions behind narrow interfaces and adds the modern low-write
// algorithms next to the paper's policy:
//
//  * EvictionPolicy — consulted by GC when a live block's segment group is
//    reclaimed ("keep = copy forward" vs "evict"). Evicting a clean block
//    drops it (refetchable from primary); evicting a dirty block destages
//    it to primary storage instead of copying it SSD-to-SSD. The paper's
//    Sel-GC recopies every dirty block at every reclaim no matter how cold
//    — that recurring NAND cost for write-once data is exactly where the
//    modern policies pull ahead on the frontier. Whole-victim destage
//    (S2D mode, over-UMAX, quota shed) stays with GcPolicy and bypasses
//    the per-block verdict.
//      - kPaper:  keep iff dirty or the hot flag is set (bit-identical to
//                 the hard-coded behaviour this subsystem replaced).
//      - kS3Fifo: small/main queues with a ghost FIFO (S3-FIFO, SOSP'23
//                 lineage; shape follows lsc's block_gc_cache). New blocks
//                 enter "small"; a small block that was never re-accessed
//                 is evicted to the ghost list, a re-accessed one is
//                 promoted to "main"; a ghost hit on re-admission goes
//                 straight to main. Main blocks survive GC while their
//                 (capped) access count lets them.
//      - kSieve:  one visited bit per resident block; GC keeps a visited
//                 block once (clearing the bit), evicts unvisited ones.
//    The log itself provides the FIFO order (GC reclaims in log order), so
//    the policies keep membership metadata only — no duplicate queues of
//    the data path.
//
//  * AdmissionPolicy — consulted once per block on the read-miss fill path
//    ("cache this fetched block or serve it through?"). Dirty user writes
//    are always absorbed (the cache is the write-back tier; bouncing them
//    would change durability semantics), so admission only gates clean
//    fills — the dominant source of NAND writes on read-heavy traces.
//      - kAlways: the paper's behaviour.
//      - kGhost:  admit on reuse evidence only. A rejected fill's lba is
//                 remembered in a ghost LRU (adapt::GhostCache at sampling
//                 rate 1.0); the next miss on that lba is admitted. One-hit
//                 wonders never touch flash.
//
// Determinism contract: every policy is a deterministic function of its own
// call sequence (no clocks, no RNG), and SrcCache owns one instance per
// cache — under the sharded engine each domain's cache carries its own
// policy state, so merged REPRO_JSON stays bit-identical across
// REPRO_SHARDS/REPRO_THREADS for every policy choice (engine_test proves
// it).
#pragma once

#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "adapt/ghost_cache.hpp"
#include "common/types.hpp"

namespace srcache::policy {

enum class EvictionKind { kPaper, kS3Fifo, kSieve };
enum class AdmissionKind { kAlways, kGhost };

// Strict parsers for the REPRO_POLICY / REPRO_ADMIT knobs: the exact
// lowercase names or nothing (misspellings must fail loudly, not fall back
// to a default mid-experiment).
std::optional<EvictionKind> parse_eviction(const std::string& s);
std::optional<AdmissionKind> parse_admission(const std::string& s);
const char* to_string(EvictionKind k);
const char* to_string(AdmissionKind k);

// Monotonic tallies surfaced through the cache's metrics scope
// ("src.policy.*" counters in REPRO_JSON).
struct EvictionStats {
  u64 gc_kept = 0;       // keep_on_gc said copy forward
  u64 gc_evicted = 0;    // keep_on_gc said drop
  u64 promotions = 0;    // small -> main transitions (S3-FIFO)
  u64 ghost_hits = 0;    // re-admissions recognised from the ghost FIFO
};
struct AdmissionStats {
  u64 admitted = 0;
  u64 rejected = 0;
  u64 ghost_hits = 0;    // admits justified by ghost-LRU reuse evidence
};

// Replacement decisions for clean resident blocks. SrcCache drives the
// lifecycle hooks from the data path; `keep_on_gc` is the decision point.
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  [[nodiscard]] virtual EvictionKind kind() const = 0;

  // A block became resident (miss fill or new user write). try_emplace
  // semantics: re-admitting a tracked block is a no-op access.
  virtual void on_admit(u64 lba) = 0;
  // A resident block was hit (read hit or rewrite).
  virtual void on_access(u64 lba) = 0;
  // GC is reclaiming this live block's segment group: keep (copy forward)
  // or evict (drop if clean, destage to primary if dirty)? Called exactly
  // once per live block per reclaim — the call may transition internal
  // state (S3-FIFO queue moves, SIEVE bit clear, ghost insertion on
  // evict), so callers must not re-ask. `hot` is the cache's second-chance
  // flag (the paper policy's only input); `dirty` lets the paper policy
  // reproduce Sel-GC's unconditional dirty copy.
  [[nodiscard]] virtual bool keep_on_gc(u64 lba, bool hot, bool dirty) = 0;
  // The block left the cache without a keep_on_gc verdict (S2D drop,
  // destage, quota shed, unrecoverable read, SSD failure). Idempotent.
  virtual void on_evict(u64 lba) = 0;

  [[nodiscard]] const EvictionStats& stats() const { return stats_; }

 protected:
  EvictionStats stats_;
};

// Admission decisions for clean read-miss fills.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  [[nodiscard]] virtual AdmissionKind kind() const = 0;
  // Cache this fetched block? May record the lba for future evidence.
  [[nodiscard]] virtual bool admit(u64 lba) = 0;
  [[nodiscard]] const AdmissionStats& stats() const { return stats_; }

 protected:
  AdmissionStats stats_;
};

// --- concrete policies (public so policy_test can introspect) --------------

// The paper's hot-flag second chance, stateless by construction: SrcCache
// already keeps the hot bit in its map entries, so this class only turns it
// into a verdict (and tallies).
class PaperEviction final : public EvictionPolicy {
 public:
  [[nodiscard]] EvictionKind kind() const override {
    return EvictionKind::kPaper;
  }
  void on_admit(u64 lba) override { (void)lba; }
  void on_access(u64 lba) override { (void)lba; }
  [[nodiscard]] bool keep_on_gc(u64 lba, bool hot, bool dirty) override;
  void on_evict(u64 lba) override { (void)lba; }
};

class S3FifoEviction final : public EvictionPolicy {
 public:
  // Which structure tracks an lba right now (testing/introspection).
  enum class Queue { kNone, kSmall, kMain, kGhost };

  explicit S3FifoEviction(u64 capacity_blocks);
  [[nodiscard]] EvictionKind kind() const override {
    return EvictionKind::kS3Fifo;
  }
  void on_admit(u64 lba) override;
  void on_access(u64 lba) override;
  [[nodiscard]] bool keep_on_gc(u64 lba, bool hot, bool dirty) override;
  void on_evict(u64 lba) override;

  [[nodiscard]] Queue queue_of(u64 lba) const;
  [[nodiscard]] u64 ghost_capacity() const { return ghost_capacity_; }

 private:
  struct Entry {
    bool main = false;   // false: small queue; true: main queue
    u8 freq = 0;         // capped access count (kFreqCap)
  };
  static constexpr u8 kFreqCap = 3;

  void ghost_insert(u64 lba);

  u64 ghost_capacity_;
  std::unordered_map<u64, Entry> resident_;
  // Ghost FIFO of recently evicted small-queue lbas: list front = newest.
  std::list<u64> ghost_fifo_;
  std::unordered_map<u64, std::list<u64>::iterator> ghost_index_;
};

class SieveEviction final : public EvictionPolicy {
 public:
  [[nodiscard]] EvictionKind kind() const override {
    return EvictionKind::kSieve;
  }
  void on_admit(u64 lba) override;
  void on_access(u64 lba) override;
  [[nodiscard]] bool keep_on_gc(u64 lba, bool hot, bool dirty) override;
  void on_evict(u64 lba) override;

  [[nodiscard]] bool visited(u64 lba) const;
  [[nodiscard]] bool tracked(u64 lba) const {
    return visited_.contains(lba);
  }

 private:
  std::unordered_map<u64, bool> visited_;
};

class AlwaysAdmission final : public AdmissionPolicy {
 public:
  [[nodiscard]] AdmissionKind kind() const override {
    return AdmissionKind::kAlways;
  }
  [[nodiscard]] bool admit(u64 lba) override;
};

class GhostAdmission final : public AdmissionPolicy {
 public:
  explicit GhostAdmission(u64 capacity_blocks);
  [[nodiscard]] AdmissionKind kind() const override {
    return AdmissionKind::kGhost;
  }
  [[nodiscard]] bool admit(u64 lba) override;

  [[nodiscard]] u64 ghost_capacity() const { return ghost_capacity_; }

 private:
  u64 ghost_capacity_;
  adapt::GhostCache ghost_;
};

// Factories used by SrcCache's constructor; `capacity_blocks` sizes the
// ghost structures (bounded, so a misconfigured huge cache cannot make
// policy metadata unbounded).
std::unique_ptr<EvictionPolicy> make_eviction(EvictionKind kind,
                                              u64 capacity_blocks);
std::unique_ptr<AdmissionPolicy> make_admission(AdmissionKind kind,
                                                u64 capacity_blocks);

}  // namespace srcache::policy
