// Deterministic random sources for workload generation and fault injection.
//
// Simulation runs must be reproducible bit-for-bit, so every random draw in
// srcache flows through one of these seeded generators — never std::rand or
// a default-seeded std engine.
#pragma once

#include <cmath>
#include <vector>

#include "common/types.hpp"

namespace srcache::common {

// SplitMix64: used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(u64 seed) : state_(seed) {}

  u64 next() {
    u64 z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

// xoshiro256**: the main workhorse generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(u64 seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  u64 next() {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  u64 below(u64 bound) { return next() % bound; }

  // Uniform integer in [lo, hi].
  u64 range(u64 lo, u64 hi) { return lo + below(hi - lo + 1); }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform() < p; }

 private:
  static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 s_[4];
};

// Zipf(theta) sampler over [0, n) using the rejection-inversion free
// precomputed-harmonic approach; O(1) draws after O(n)-free setup via the
// standard two-candidate approximation (Gray et al., SIGMOD'94 style).
class ZipfSampler {
 public:
  ZipfSampler(u64 n, double theta, u64 seed)
      : n_(n), theta_(theta), rng_(seed) {
    if (n_ == 0) n_ = 1;
    zetan_ = zeta(n_, theta_);
    zeta2_ = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  // Rank 0 is the hottest item.
  u64 next() {
    const double u = rng_.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto v = static_cast<u64>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

  u64 n() const { return n_; }

 private:
  static double zeta(u64 n, double theta) {
    // Exact for small n; sampled + extrapolated for large n to keep setup
    // cost constant for multi-GiB footprints.
    constexpr u64 kExact = 1u << 20;
    double sum = 0.0;
    const u64 lim = n < kExact ? n : kExact;
    for (u64 i = 1; i <= lim; ++i) sum += std::pow(1.0 / static_cast<double>(i), theta);
    if (n > kExact) {
      // Integral tail approximation of sum_{kExact+1..n} i^-theta.
      const double a = static_cast<double>(kExact);
      const double b = static_cast<double>(n);
      sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) / (1.0 - theta);
    }
    return sum;
  }

  u64 n_;
  double theta_;
  Xoshiro256 rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace srcache::common
