#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

namespace srcache::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      line += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string out = emit_row(header_);
  std::string sep = "|";
  for (size_t c = 0; c < header_.size(); ++c)
    sep += std::string(width[c] + 2, '-') + "|";
  out += sep + "\n";
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace srcache::common
