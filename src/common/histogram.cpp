#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace srcache::common {

Histogram::Histogram() : buckets_(kBuckets, 0) {}

void Histogram::record(u64 value) {
  const int b = value == 0 ? 0 : 64 - std::countl_zero(value);
  buckets_[std::min(b, kBuckets - 1)]++;
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram Histogram::minus(const Histogram& earlier) const {
  Histogram d;
  for (int i = 0; i < kBuckets; ++i) {
    d.buckets_[i] =
        buckets_[i] >= earlier.buckets_[i] ? buckets_[i] - earlier.buckets_[i] : 0;
    d.count_ += d.buckets_[i];
  }
  d.sum_ = sum_ >= earlier.sum_ ? sum_ - earlier.sum_ : 0;
  d.min_ = min_;
  d.max_ = max_;
  if (d.count_ == 0) {
    d.min_ = ~0ull;
    d.max_ = 0;
  }
  return d;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = max_ = 0;
  min_ = ~0ull;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  u64 seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const u64 next = seen + buckets_[b];
    if (static_cast<double>(next) >= target) {
      // Bucket b holds values in [2^(b-1), 2^b); interpolate linearly.
      const double lo = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
      const double hi = static_cast<double>(b >= 63 ? max_ : (1ull << b));
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets_[b]);
      return lo + frac * (hi - lo);
    }
    seen = next;
  }
  return static_cast<double>(max_);
}

std::string Histogram::summary(const std::string& unit) const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f p50=%.0f p99=%.0f max=%llu %s",
                static_cast<unsigned long long>(count_), mean(),
                percentile(50), percentile(99),
                static_cast<unsigned long long>(max_), unit.c_str());
  return buf;
}

}  // namespace srcache::common
