// Fundamental typedefs and storage units shared by every srcache module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace srcache {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

inline constexpr u64 KiB = 1024;
inline constexpr u64 MiB = 1024 * KiB;
inline constexpr u64 GiB = 1024 * MiB;

// The universal I/O unit: the paper caches and maps data in 4 KiB blocks.
inline constexpr u64 kBlockSize = 4 * KiB;

constexpr u64 bytes_to_blocks(u64 bytes) {
  return (bytes + kBlockSize - 1) / kBlockSize;
}
constexpr u64 blocks_to_bytes(u64 blocks) { return blocks * kBlockSize; }

constexpr u64 div_ceil(u64 a, u64 b) { return (a + b - 1) / b; }

}  // namespace srcache
