// CRC-32C (Castagnoli), the checksum SRC stores alongside each cached block
// and inside every segment-metadata block (paper §4.1, "Metadata management").
#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"

namespace srcache::common {

// One-shot CRC-32C over a byte span. seed allows chaining.
u32 crc32c(std::span<const u8> data, u32 seed = 0);

// Convenience: checksum of a trivially-copyable value (e.g. a block tag).
template <typename T>
u32 crc32c_of(const T& v, u32 seed = 0) {
  static_assert(std::is_trivially_copyable_v<T>);
  return crc32c(std::span<const u8>(reinterpret_cast<const u8*>(&v), sizeof(v)),
                seed);
}

}  // namespace srcache::common
