// Minimal Result<T> / Status for expected, recoverable failures.
//
// Style note (per the C++ Core Guidelines): exceptions are reserved for
// programming and configuration errors (violated preconditions, impossible
// states); results the simulation *expects* to happen — checksum mismatch,
// cache miss on a failed device, unrecoverable segment — travel as values.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace srcache {

enum class ErrorCode {
  kOk = 0,
  kNotFound,
  kCorrupted,
  kDeviceFailed,
  kOutOfSpace,
  kInvalidArgument,
  kUnrecoverable,
  kMediaError,
};

inline const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kCorrupted: return "corrupted";
    case ErrorCode::kDeviceFailed: return "device-failed";
    case ErrorCode::kOutOfSpace: return "out-of-space";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kUnrecoverable: return "unrecoverable";
    case ErrorCode::kMediaError: return "media-error";
  }
  return "unknown";
}

class Status {
 public:
  Status() = default;
  explicit Status(ErrorCode code, std::string msg = {})
      : code_(code), msg_(std::move(msg)) {}

  static Status ok() { return Status{}; }

  [[nodiscard]] bool is_ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return msg_; }

  [[nodiscard]] std::string to_string() const {
    std::string s = srcache::to_string(code_);
    if (!msg_.empty()) s += ": " + msg_;
    return s;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string msg_;
};

template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {  // NOLINT
    if (std::get<Status>(v_).is_ok()) {
      throw std::logic_error("Result constructed from OK status without value");
    }
  }

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const T& value() const& {
    if (!is_ok()) throw std::logic_error("Result::value on error: " + status().to_string());
    return std::get<T>(v_);
  }
  [[nodiscard]] T& value() & {
    if (!is_ok()) throw std::logic_error("Result::value on error: " + status().to_string());
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& take() && {
    if (!is_ok()) throw std::logic_error("Result::take on error: " + status().to_string());
    return std::get<T>(std::move(v_));
  }

  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(v_);
  }
  [[nodiscard]] ErrorCode code() const { return status().code(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace srcache
