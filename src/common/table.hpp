// Plain-text aligned table printer used by the bench harness to emit
// paper-style tables and figure series.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace srcache::common {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  [[nodiscard]] std::string to_string() const;
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace srcache::common
