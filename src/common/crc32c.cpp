#include "common/crc32c.hpp"

#include <array>

namespace srcache::common {
namespace {

constexpr u32 kPoly = 0x82F63B78u;  // reversed Castagnoli polynomial

std::array<u32, 256> make_table() {
  std::array<u32, 256> t{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

const std::array<u32, 256>& table() {
  static const std::array<u32, 256> t = make_table();
  return t;
}

}  // namespace

u32 crc32c(std::span<const u8> data, u32 seed) {
  const auto& t = table();
  u32 c = seed ^ 0xFFFFFFFFu;
  for (u8 b : data) c = t[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace srcache::common
