// Log-bucketed histogram for latencies and request sizes.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace srcache::common {

// Power-of-two bucketed histogram over u64 samples (e.g. nanoseconds or
// bytes). Percentiles are linearly interpolated within a bucket.
class Histogram {
 public:
  Histogram();

  void record(u64 value);
  void merge(const Histogram& other);
  void reset();

  [[nodiscard]] u64 count() const { return count_; }
  [[nodiscard]] u64 min() const { return count_ ? min_ : 0; }
  [[nodiscard]] u64 max() const { return max_; }
  [[nodiscard]] double mean() const;
  // p in [0, 100].
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] std::string summary(const std::string& unit) const;

 private:
  static constexpr int kBuckets = 64;
  std::vector<u64> buckets_;
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = ~0ull;
  u64 max_ = 0;
};

}  // namespace srcache::common
