// Log-bucketed histogram for latencies and request sizes.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace srcache::common {

// Power-of-two bucketed histogram over u64 samples (e.g. nanoseconds or
// bytes). Percentiles are linearly interpolated within a bucket.
class Histogram {
 public:
  Histogram();

  void record(u64 value);
  void merge(const Histogram& other);
  void reset();

  [[nodiscard]] u64 count() const { return count_; }
  [[nodiscard]] u64 min() const { return count_ ? min_ : 0; }
  [[nodiscard]] u64 max() const { return max_; }
  [[nodiscard]] double mean() const;
  // p in [0, 100].
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] std::string summary(const std::string& unit) const;

  // Bucket access for serialization and delta math. Bucket b counts samples
  // in [2^(b-1), 2^b) (bucket 0: the value 0).
  static constexpr int num_buckets() { return kBuckets; }
  [[nodiscard]] u64 bucket(int b) const { return buckets_[b]; }
  [[nodiscard]] u64 sum() const { return sum_; }

  // Delta of two cumulative snapshots: the samples recorded after `earlier`
  // was taken (`earlier` must be an earlier copy of this histogram).
  // min/max cannot be un-merged, so the delta keeps this histogram's; the
  // percentiles, count, mean and buckets are exact for the window.
  [[nodiscard]] Histogram minus(const Histogram& earlier) const;

 private:
  static constexpr int kBuckets = 64;
  std::vector<u64> buckets_;
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = ~0ull;
  u64 max_ = 0;
};

}  // namespace srcache::common
