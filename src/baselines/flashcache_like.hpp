// FlashcacheLike: a faithful model of Facebook's Flashcache at the level
// the paper analyses it (§3.1, Table 5):
//  * set-associative placement (2 MiB sets of 4 KiB blocks by default);
//  * write-back with dirty_thresh_pct, but *tolerant* — destaging trickles
//    and the dirty ratio may overshoot the threshold;
//  * a metadata block write accompanies every dirty-data write; clean-data
//    metadata lives only in memory (clean data is lost on restart);
//  * application flush commands are ignored entirely.
#pragma once

#include <unordered_map>
#include <vector>

#include "block/block_device.hpp"
#include "cache/cache_device.hpp"

namespace srcache::baselines {

using blockdev::BlockDevice;
using sim::SimTime;

struct FlashcacheConfig {
  u64 cache_blocks = 0;        // data blocks on the cache device
  u32 set_blocks = 512;        // 2 MiB default set size
  double dirty_thresh_pct = 0.20;
  bool write_back = true;      // false = write-through (Table 2)
  u32 destage_batch = 8;       // blocks destaged per overshooting write
  u32 md_entries_per_block = 128;
};

class FlashcacheLike final : public cache::CacheDevice {
 public:
  // `ssd` may be a single SimSsd or a RaidDevice (Flashcache5). The device
  // must hold cache_blocks plus the metadata partition.
  FlashcacheLike(const FlashcacheConfig& cfg, BlockDevice* ssd,
                 BlockDevice* primary);

  SimTime submit(const cache::AppRequest& req) override;
  SimTime flush(SimTime now) override;  // ignored by design
  [[nodiscard]] const cache::CacheStats& stats() const override { return stats_; }
  [[nodiscard]] u64 cached_blocks() const override { return map_.size(); }

  [[nodiscard]] double dirty_ratio() const {
    return cache_blocks() == 0
               ? 0.0
               : static_cast<double>(dirty_count_) /
                     static_cast<double>(cfg_.cache_blocks);
  }
  [[nodiscard]] u64 cache_blocks() const { return cfg_.cache_blocks; }

 private:
  struct Slot {
    u64 lba = kInvalid;
    bool dirty = false;
    u64 tag = 0;
    u64 tick = 0;  // LRU within the set
  };
  static constexpr u64 kInvalid = ~0ull;

  [[nodiscard]] u64 set_of(u64 lba) const;
  // Finds or allocates a slot for lba in its set; destages/evicts as
  // needed. Returns the slot index and the time all required I/O finished.
  u64 allocate_slot(SimTime now, u64 lba, SimTime* done);
  SimTime destage_slot(SimTime now, u64 slot);
  SimTime write_metadata(SimTime now, u64 slot);
  SimTime maybe_trickle_destage(SimTime now, u64 set);

  FlashcacheConfig cfg_;
  BlockDevice* ssd_;
  BlockDevice* primary_;
  std::vector<Slot> slots_;
  std::unordered_map<u64, u64> map_;  // lba -> slot index
  u64 dirty_count_ = 0;
  u64 tick_ = 0;
  u64 md_base_;  // metadata partition start block on the SSD
  cache::CacheStats stats_;
};

}  // namespace srcache::baselines
