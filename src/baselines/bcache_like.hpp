// BcacheLike: a model of Bcache at the level the paper analyses it (§3.1,
// Table 5):
//  * bucket-based log layout (2 MiB buckets): writes append sequentially
//    into the open bucket;
//  * write-back: dirty data is written to the cache, then the metadata is
//    journaled **with a flush command** — group-committed like the real
//    B+tree journal, and the dominant cost on commodity SSDs;
//  * clean-data metadata stays in memory only (clean contents are lost on
//    restart);
//  * writeback_percent: destaging starts immediately once the dirty ratio
//    exceeds the threshold;
//  * application flushes are honored (forwarded to the devices).
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "block/block_device.hpp"
#include "cache/cache_device.hpp"

namespace srcache::baselines {

using blockdev::BlockDevice;
using sim::SimTime;

struct BcacheConfig {
  u64 cache_blocks = 0;
  u32 bucket_blocks = 512;  // 2 MiB default
  double writeback_percent = 0.10;
  bool write_back = true;   // false = write-through (Table 2)
  bool flush_on_commit = true;  // issue flush with every journal commit
  u32 destage_batch = 32;
  u32 journal_blocks = 256;  // rotating journal region
};

class BcacheLike final : public cache::CacheDevice {
 public:
  BcacheLike(const BcacheConfig& cfg, BlockDevice* ssd, BlockDevice* primary);

  SimTime submit(const cache::AppRequest& req) override;
  SimTime flush(SimTime now) override;
  [[nodiscard]] const cache::CacheStats& stats() const override { return stats_; }
  [[nodiscard]] u64 cached_blocks() const override { return map_.size(); }

  [[nodiscard]] double dirty_ratio() const {
    return static_cast<double>(dirty_count_) /
           static_cast<double>(cfg_.cache_blocks);
  }

 private:
  struct Entry {
    u64 block = 0;  // location on the cache device
    bool dirty = false;
  };
  struct Bucket {
    u32 fill = 0;   // blocks appended so far
    u32 live = 0;
    u64 alloc_seq = 0;
    std::vector<u64> lbas;  // inserted lbas (validated against map_ on use)
  };

  // Appends `n` blocks to the log; returns the first device block and the
  // completion of the involved writes.
  u64 append(SimTime now, u64 lba0, u32 n, const u64* tags, SimTime* done);
  u64 take_bucket(SimTime now, SimTime* done);
  SimTime reclaim_bucket(SimTime now, u64 bucket);
  SimTime destage_some(SimTime now, u32 max_blocks);
  SimTime destage_lba(SimTime now, u64 lba);
  // Group-committed journal write (+flush); returns the ack time for a
  // request joining the commit at `now`.
  SimTime journal_commit(SimTime now);

  BcacheConfig cfg_;
  BlockDevice* ssd_;
  BlockDevice* primary_;
  std::vector<Bucket> buckets_;
  std::deque<u64> free_buckets_;
  u64 open_bucket_ = ~0ull;
  std::unordered_map<u64, Entry> map_;
  std::deque<u64> dirty_fifo_;
  u64 dirty_count_ = 0;
  u64 alloc_seq_ = 0;
  u64 journal_base_;
  u32 journal_cursor_ = 0;
  SimTime commit_inflight_done_ = 0;  // commit currently on the device
  SimTime commit_pending_done_ = 0;   // group commit queued behind it
  u64 tag_seq_ = 0;
  cache::CacheStats stats_;
};

}  // namespace srcache::baselines
