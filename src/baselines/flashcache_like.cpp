#include "baselines/flashcache_like.hpp"

#include <algorithm>
#include <stdexcept>

namespace srcache::baselines {

FlashcacheLike::FlashcacheLike(const FlashcacheConfig& cfg, BlockDevice* ssd,
                               BlockDevice* primary)
    : cfg_(cfg), ssd_(ssd), primary_(primary) {
  if (cfg_.cache_blocks == 0 || cfg_.set_blocks == 0)
    throw std::invalid_argument("Flashcache: empty cache");
  cfg_.cache_blocks -= cfg_.cache_blocks % cfg_.set_blocks;
  md_base_ = cfg_.cache_blocks;
  const u64 md_blocks = div_ceil(cfg_.cache_blocks, cfg_.md_entries_per_block);
  if (ssd_->capacity_blocks() < md_base_ + md_blocks)
    throw std::invalid_argument("Flashcache: device too small for metadata");
  slots_.resize(cfg_.cache_blocks);
}

u64 FlashcacheLike::set_of(u64 lba) const {
  const u64 num_sets = cfg_.cache_blocks / cfg_.set_blocks;
  // dm-flashcache maps consecutive backing regions to one set
  // (dbn / associativity), preserving spatial locality within a set so
  // per-set destaging can merge neighbouring blocks.
  return (lba / cfg_.set_blocks) % num_sets;
}

SimTime FlashcacheLike::write_metadata(SimTime now, u64 slot) {
  // One 4 KiB metadata-sector write per dirty-data update (§3.1).
  const u64 md_block = md_base_ + slot / cfg_.md_entries_per_block;
  auto r = ssd_->write(now, md_block, 1, {});
  return r.ok() ? r.done : now;
}

SimTime FlashcacheLike::destage_slot(SimTime now, u64 slot) {
  Slot& s = slots_[slot];
  u64 tag = 0;
  auto r = ssd_->read(now, slot, 1, std::span<u64>(&tag, 1));
  SimTime t = r.ok() ? r.done : now;
  auto w = primary_->write(t, s.lba, 1, std::span<const u64>(&tag, 1));
  if (w.ok()) t = w.done;
  stats_.destage_blocks++;
  s.dirty = false;
  dirty_count_--;
  return std::max(t, write_metadata(t, slot));
}

SimTime FlashcacheLike::maybe_trickle_destage(SimTime now, u64 set) {
  // Flashcache cleans the accessed set toward dirty_thresh_pct (per-set
  // accounting, like flashcache_clean_set); it tolerates overshoot rather
  // than blocking the foreground write.
  const u64 base = set * cfg_.set_blocks;
  SimTime t = now;
  // Oldest dirty blocks of the set first.
  std::vector<u64> dirty;
  for (u64 i = base; i < base + cfg_.set_blocks; ++i)
    if (slots_[i].lba != kInvalid && slots_[i].dirty) dirty.push_back(i);
  if (static_cast<double>(dirty.size()) <=
      cfg_.dirty_thresh_pct * static_cast<double>(cfg_.set_blocks)) {
    return now;
  }
  std::sort(dirty.begin(), dirty.end(), [&](u64 a, u64 b) {
    return slots_[a].tick < slots_[b].tick;
  });
  dirty.resize(std::min<size_t>(dirty.size(), cfg_.destage_batch));
  primary_->set_background(true);  // kcached-style background cleaner
  // Write back in dbn order: the set holds a contiguous backing region, so
  // sorted victims merge into few primary writes.
  std::sort(dirty.begin(), dirty.end(),
            [&](u64 a, u64 b) { return slots_[a].lba < slots_[b].lba; });
  size_t i = 0;
  while (i < dirty.size()) {
    size_t j = i + 1;
    while (j < dirty.size() &&
           slots_[dirty[j]].lba == slots_[dirty[j - 1]].lba + 1) {
      ++j;
    }
    std::vector<u64> tags(j - i, 0);
    SimTime rt = now;
    for (size_t k = i; k < j; ++k) {
      auto r = ssd_->read(now, dirty[k], 1, std::span<u64>(&tags[k - i], 1));
      if (r.ok()) rt = std::max(rt, r.done);
      Slot& s = slots_[dirty[k]];
      s.dirty = false;
      dirty_count_--;
      stats_.destage_blocks++;
      t = std::max(t, write_metadata(now, dirty[k]));
    }
    // Background lane: the cleaner's primary writes never gate foreground.
    primary_->write(rt, slots_[dirty[i]].lba, static_cast<u32>(j - i),
                    std::span<const u64>(tags.data(), tags.size()));
    i = j;
  }
  primary_->set_background(false);
  (void)t;  // kcached-style cleaner: asynchronous, never gates the app ack
  return now;
}

u64 FlashcacheLike::allocate_slot(SimTime now, u64 lba, SimTime* done) {
  const u64 set = set_of(lba);
  const u64 base = set * cfg_.set_blocks;
  u64 victim = kInvalid;
  // Prefer an invalid slot, then the LRU clean slot, then the LRU dirty.
  u64 best_clean = kInvalid, best_dirty = kInvalid;
  for (u64 i = base; i < base + cfg_.set_blocks; ++i) {
    Slot& s = slots_[i];
    if (s.lba == kInvalid) {
      victim = i;
      break;
    }
    if (!s.dirty) {
      if (best_clean == kInvalid || s.tick < slots_[best_clean].tick)
        best_clean = i;
    } else {
      if (best_dirty == kInvalid || s.tick < slots_[best_dirty].tick)
        best_dirty = i;
    }
  }
  if (victim == kInvalid) victim = best_clean;
  if (victim == kInvalid) {
    victim = best_dirty;
    *done = std::max(*done, destage_slot(now, victim));
  }
  Slot& s = slots_[victim];
  if (s.lba != kInvalid) {
    map_.erase(s.lba);
    if (!s.dirty) stats_.dropped_clean_blocks++;
  }
  s = Slot{};
  s.lba = lba;
  s.tick = ++tick_;
  map_[lba] = victim;
  return victim;
}

SimTime FlashcacheLike::submit(const cache::AppRequest& req) {
  const SimTime now = req.now;
  SimTime done = now;
  if (req.is_write) {
    stats_.app_write_ops++;
    stats_.app_write_blocks += req.nblocks;
  } else {
    stats_.app_read_ops++;
    stats_.app_read_blocks += req.nblocks;
  }

  for (u32 i = 0; i < req.nblocks; ++i) {
    const u64 lba = req.lba + i;
    auto it = map_.find(lba);
    if (req.is_write) {
      const u64 tag = req.tags != nullptr ? req.tags[i]
                                          : blockdev::make_tag(lba, ++tick_);
      u64 slot;
      if (it != map_.end()) {
        stats_.write_hit_blocks++;
        slot = it->second;
        slots_[slot].tick = ++tick_;
      } else {
        stats_.write_new_blocks++;
        slot = allocate_slot(now, lba, &done);
      }
      Slot& s = slots_[slot];
      s.tag = tag;
      auto w = ssd_->write(now, slot, 1, std::span<const u64>(&tag, 1));
      if (w.ok()) done = std::max(done, w.done);
      if (cfg_.write_back) {
        if (!s.dirty) {
          s.dirty = true;
          dirty_count_++;
        }
        done = std::max(done, write_metadata(now, slot));
        done = std::max(done, maybe_trickle_destage(now, set_of(lba)));
      } else {
        // Write-through: the write must be durable on primary before the
        // ack (FUA semantics), so the target's volatile cache cannot
        // absorb it.
        auto p = primary_->write(now, lba, 1, std::span<const u64>(&tag, 1));
        if (p.ok()) done = std::max(done, p.done);
        auto f = primary_->flush(done);
        if (f.ok()) done = std::max(done, f.done);
      }
    } else {  // read
      if (it != map_.end()) {
        stats_.read_hit_blocks++;
        const u64 slot = it->second;
        slots_[slot].tick = ++tick_;
        u64 tag = 0;
        auto r = ssd_->read(now, slot, 1, std::span<u64>(&tag, 1));
        if (r.ok()) done = std::max(done, r.done);
        if (req.tags_out != nullptr) req.tags_out[i] = tag;
      } else {
        stats_.read_miss_blocks++;
        u64 tag = 0;
        auto r = primary_->read(now, lba, 1, std::span<u64>(&tag, 1));
        if (r.ok()) done = std::max(done, r.done);
        stats_.fetch_blocks++;
        if (req.tags_out != nullptr) req.tags_out[i] = tag;
        // Load into the cache: a clean-data write plus an in-memory
        // metadata update only (§3.1).
        const u64 slot = allocate_slot(now, lba, &done);
        slots_[slot].tag = tag;
        ssd_->write(now, slot, 1, std::span<const u64>(&tag, 1));
      }
    }
  }
  return done;
}

SimTime FlashcacheLike::flush(SimTime now) {
  // Flashcache acknowledges flushes immediately without forwarding them —
  // fast but vulnerable to file-system inconsistency (§3.1).
  stats_.app_flushes++;
  return now;
}

}  // namespace srcache::baselines
