#include "baselines/bcache_like.hpp"

#include <algorithm>
#include <stdexcept>

namespace srcache::baselines {

BcacheLike::BcacheLike(const BcacheConfig& cfg, BlockDevice* ssd,
                       BlockDevice* primary)
    : cfg_(cfg), ssd_(ssd), primary_(primary) {
  if (cfg_.cache_blocks == 0 || cfg_.bucket_blocks == 0)
    throw std::invalid_argument("Bcache: empty cache");
  cfg_.cache_blocks -= cfg_.cache_blocks % cfg_.bucket_blocks;
  journal_base_ = cfg_.cache_blocks;
  if (ssd_->capacity_blocks() < journal_base_ + cfg_.journal_blocks)
    throw std::invalid_argument("Bcache: device too small for journal");
  const u64 n = cfg_.cache_blocks / cfg_.bucket_blocks;
  buckets_.resize(n);
  for (u64 b = 0; b < n; ++b) free_buckets_.push_back(b);
}

u64 BcacheLike::take_bucket(SimTime now, SimTime* done) {
  if (free_buckets_.empty()) {
    // Invalidate the LRU bucket (oldest allocation), destaging its dirty
    // blocks first (§3.1).
    u64 victim = ~0ull;
    for (u64 b = 0; b < buckets_.size(); ++b) {
      if (b == open_bucket_ || buckets_[b].fill == 0) continue;
      if (victim == ~0ull || buckets_[b].alloc_seq < buckets_[victim].alloc_seq)
        victim = b;
    }
    if (victim == ~0ull) throw std::logic_error("Bcache: no reclaimable bucket");
    *done = std::max(*done, reclaim_bucket(now, victim));
  }
  const u64 b = free_buckets_.front();
  free_buckets_.pop_front();
  buckets_[b].fill = 0;
  buckets_[b].live = 0;
  buckets_[b].lbas.clear();
  buckets_[b].alloc_seq = ++alloc_seq_;
  return b;
}

SimTime BcacheLike::reclaim_bucket(SimTime now, u64 bucket) {
  Bucket& bk = buckets_[bucket];
  SimTime t = now;
  bool journaled = false;
  for (u64 lba : bk.lbas) {
    auto it = map_.find(lba);
    if (it == map_.end()) continue;
    const u64 loc = it->second.block;
    if (loc / cfg_.bucket_blocks != bucket) continue;  // moved since
    if (it->second.dirty) {
      t = std::max(t, destage_lba(now, lba));
      journaled = true;
    } else {
      stats_.dropped_clean_blocks++;
    }
    map_.erase(it);
  }
  if (journaled) t = std::max(t, journal_commit(t));
  bk.fill = 0;
  bk.live = 0;
  bk.lbas.clear();
  free_buckets_.push_back(bucket);
  return t;
}

SimTime BcacheLike::destage_lba(SimTime now, u64 lba) {
  auto it = map_.find(lba);
  if (it == map_.end() || !it->second.dirty) return now;
  u64 tag = 0;
  auto r = ssd_->read(now, it->second.block, 1, std::span<u64>(&tag, 1));
  SimTime t = r.ok() ? r.done : now;
  auto w = primary_->write(t, lba, 1, std::span<const u64>(&tag, 1));
  if (w.ok()) t = w.done;
  it->second.dirty = false;
  dirty_count_--;
  stats_.destage_blocks++;
  return t;
}

SimTime BcacheLike::destage_some(SimTime now, u32 max_blocks) {
  // Like the real writeback thread, victims are processed in disk-offset
  // order (bcache keys its writeback keybuf by backing-device offset), so
  // contiguous dirty blocks merge into single primary writes.
  std::vector<u64> batch;
  while (batch.size() < max_blocks &&
         dirty_ratio() > cfg_.writeback_percent && !dirty_fifo_.empty()) {
    const u64 lba = dirty_fifo_.front();
    dirty_fifo_.pop_front();
    auto it = map_.find(lba);
    if (it == map_.end() || !it->second.dirty) continue;  // stale entry
    batch.push_back(lba);
  }
  if (batch.empty()) return now;
  std::sort(batch.begin(), batch.end());
  primary_->set_background(true);  // the writeback thread yields to misses
  SimTime t = now;  // SSD-side time only; background writes do not block
  size_t i = 0;
  while (i < batch.size()) {
    size_t j = i + 1;
    while (j < batch.size() && batch[j] == batch[j - 1] + 1) ++j;
    // Read the run from the cache device, write it to primary storage.
    SimTime rt = now;
    std::vector<u64> tags(j - i, 0);
    for (size_t k = i; k < j; ++k) {
      auto it = map_.find(batch[k]);
      auto r = ssd_->read(now, it->second.block, 1,
                          std::span<u64>(&tags[k - i], 1));
      if (r.ok()) rt = std::max(rt, r.done);
      it->second.dirty = false;
      dirty_count_--;
      stats_.destage_blocks++;
    }
    t = std::max(t, rt);
    primary_->write(rt, batch[i], static_cast<u32>(j - i),
                    std::span<const u64>(tags.data(), tags.size()));
    i = j;
  }
  primary_->set_background(false);
  (void)t;  // writeback runs asynchronously; it never gates the app ack
  return std::max(now, journal_commit(now));
}

u64 BcacheLike::append(SimTime now, u64 lba0, u32 n, const u64* tags,
                       SimTime* done) {
  // The log may wrap buckets; for simplicity requests never straddle one:
  // if the open bucket cannot hold the run, it is closed with dead space
  // (bcache similarly allocates whole-extent).
  if (open_bucket_ == ~0ull ||
      buckets_[open_bucket_].fill + n > cfg_.bucket_blocks) {
    open_bucket_ = take_bucket(now, done);
  }
  Bucket& bk = buckets_[open_bucket_];
  const u64 block = open_bucket_ * cfg_.bucket_blocks + bk.fill;
  bk.fill += n;
  bk.live += n;
  auto w = ssd_->write(now, block, n,
                       tags != nullptr ? std::span<const u64>(tags, n)
                                       : std::span<const u64>{});
  if (w.ok()) *done = std::max(*done, w.done);
  for (u32 i = 0; i < n; ++i) bk.lbas.push_back(lba0 + i);
  return block;
}

SimTime BcacheLike::journal_commit(SimTime now) {
  // Group commit: a request arriving while a commit is on the device joins
  // the next one, which starts when the current commit completes. The
  // journal write is a single 4 KiB block followed by a flush — the cost
  // the paper identifies as Bcache's bottleneck (§3.1, Table 2).
  auto do_commit = [&](SimTime start) {
    auto w = ssd_->write(start, journal_base_ + journal_cursor_, 1, {});
    journal_cursor_ = (journal_cursor_ + 1) % cfg_.journal_blocks;
    SimTime t = w.ok() ? w.done : start;
    if (cfg_.flush_on_commit) {
      auto f = ssd_->flush(t);
      if (f.ok()) t = f.done;
    }
    return t;
  };
  if (now >= commit_pending_done_) {
    // Device idle (journal-wise): commit immediately.
    commit_inflight_done_ = do_commit(now);
    commit_pending_done_ = commit_inflight_done_;
    return commit_inflight_done_;
  }
  if (commit_pending_done_ <= commit_inflight_done_) {
    // Join a new group commit queued behind the in-flight one.
    commit_pending_done_ = do_commit(commit_inflight_done_);
  }
  return commit_pending_done_;
}

SimTime BcacheLike::submit(const cache::AppRequest& req) {
  const SimTime now = req.now;
  SimTime done = now;
  if (req.is_write) {
    stats_.app_write_ops++;
    stats_.app_write_blocks += req.nblocks;

    std::vector<u64> tags(req.nblocks);
    for (u32 i = 0; i < req.nblocks; ++i) {
      tags[i] = req.tags != nullptr ? req.tags[i]
                                    : blockdev::make_tag(req.lba + i, ++tag_seq_);
    }
    // Invalidate any previous versions, then append the run to the log.
    for (u32 i = 0; i < req.nblocks; ++i) {
      auto it = map_.find(req.lba + i);
      if (it != map_.end()) {
        stats_.write_hit_blocks++;
        buckets_[it->second.block / cfg_.bucket_blocks].live--;
        if (it->second.dirty) dirty_count_--;
        map_.erase(it);
      } else {
        stats_.write_new_blocks++;
      }
    }
    const u64 block = append(now, req.lba, req.nblocks, tags.data(), &done);
    for (u32 i = 0; i < req.nblocks; ++i) {
      map_[req.lba + i] = Entry{block + i, cfg_.write_back};
      if (cfg_.write_back) {
        dirty_count_++;
        dirty_fifo_.push_back(req.lba + i);
      }
    }
    if (cfg_.write_back) {
      // Metadata is durable before the ack: journal + flush (§3.1). The
      // commit is joined at arrival time (requests in flight together share
      // a group commit, like the real journal).
      done = std::max(done, journal_commit(now));
      done = std::max(done, destage_some(now, cfg_.destage_batch));
    } else {
      // Write-through with FUA semantics: durable on the spindles.
      auto p = primary_->write(now, req.lba, req.nblocks,
                               std::span<const u64>(tags.data(), tags.size()));
      if (p.ok()) done = std::max(done, p.done);
      auto f = primary_->flush(done);
      if (f.ok()) done = std::max(done, f.done);
    }
    return done;
  }

  // Read path.
  stats_.app_read_ops++;
  stats_.app_read_blocks += req.nblocks;
  struct HitRead {
    u64 block;
    u32 idx;
  };
  std::vector<HitRead> hits;
  std::vector<std::pair<u64, u32>> miss_runs;
  for (u32 i = 0; i < req.nblocks; ++i) {
    const u64 lba = req.lba + i;
    auto it = map_.find(lba);
    if (it != map_.end()) {
      stats_.read_hit_blocks++;
      hits.push_back({it->second.block, i});
    } else {
      stats_.read_miss_blocks++;
      if (!miss_runs.empty() &&
          miss_runs.back().first + miss_runs.back().second == lba) {
        miss_runs.back().second++;
      } else {
        miss_runs.emplace_back(lba, 1);
      }
    }
  }
  // Cache hits: merge contiguous log locations into single reads.
  std::sort(hits.begin(), hits.end(),
            [](const HitRead& a, const HitRead& b) { return a.block < b.block; });
  std::vector<u64> buf;
  size_t i = 0;
  while (i < hits.size()) {
    size_t j = i + 1;
    while (j < hits.size() && hits[j].block == hits[j - 1].block + 1) ++j;
    buf.resize(j - i);
    auto r = ssd_->read(now, hits[i].block, static_cast<u32>(j - i),
                        std::span<u64>(buf.data(), buf.size()));
    if (r.ok()) {
      done = std::max(done, r.done);
      if (req.tags_out != nullptr)
        for (size_t k = i; k < j; ++k) req.tags_out[hits[k].idx] = buf[k - i];
    }
    i = j;
  }
  // Misses: fetch and insert as clean data (in-memory metadata only).
  std::vector<u64> fetched;
  for (const auto& [lba, cnt] : miss_runs) {
    fetched.assign(cnt, 0);
    auto r = primary_->read(now, lba, cnt, std::span<u64>(fetched.data(), cnt));
    if (!r.ok()) continue;
    done = std::max(done, r.done);
    stats_.fetch_blocks += cnt;
    if (req.tags_out != nullptr)
      for (u32 k = 0; k < cnt; ++k) req.tags_out[lba - req.lba + k] = fetched[k];
    SimTime fill_done = now;  // off the ack path
    const u64 block = append(now, lba, cnt, fetched.data(), &fill_done);
    for (u32 k = 0; k < cnt; ++k) map_[lba + k] = Entry{block + k, false};
  }
  return done;
}

SimTime BcacheLike::flush(SimTime now) {
  // Bcache honors flushes: forward to both devices.
  stats_.app_flushes++;
  SimTime t = now;
  auto f1 = ssd_->flush(now);
  if (f1.ok()) t = std::max(t, f1.done);
  auto f2 = primary_->flush(now);
  if (f2.ok()) t = std::max(t, f2.done);
  return t;
}

}  // namespace srcache::baselines
