#include "block/mem_disk.hpp"

#include <stdexcept>

namespace srcache::blockdev {

MemDisk::MemDisk(const MemDiskConfig& cfg)
    : cfg_(cfg), content_(cfg.track_content) {
  if (cfg_.capacity_blocks == 0) {
    throw std::invalid_argument("MemDisk capacity must be > 0");
  }
}

SimTime MemDisk::scaled(SimTime now, SimTime service) const {
  if (now >= degrade_until_ || degrade_factor_ <= 1.0) return service;
  return static_cast<SimTime>(static_cast<double>(service) * degrade_factor_);
}

IoResult MemDisk::transfer(SimTime now, u64 lba, u32 n) {
  if (failed_) return {now, ErrorCode::kDeviceFailed};
  if (lba + n > cfg_.capacity_blocks) return {now, ErrorCode::kInvalidArgument};
  const SimTime service =
      cfg_.op_latency + sim::transfer_time(blocks_to_bytes(n), cfg_.bandwidth_mbps);
  return {line_.submit(now, scaled(now, service)), ErrorCode::kOk};
}

IoResult MemDisk::read(SimTime now, u64 lba, u32 n, std::span<u64> tags_out) {
  IoResult r = transfer(now, lba, n);
  if (!r.ok()) return r;
  stats_.read_ops++;
  stats_.read_blocks += n;
  if (media_.affects(lba, n)) return {r.done, ErrorCode::kMediaError};
  content_.read(lba, n, tags_out);
  return r;
}

IoResult MemDisk::write(SimTime now, u64 lba, u32 n, std::span<const u64> tags) {
  IoResult r = transfer(now, lba, n);
  if (!r.ok()) return r;
  media_.on_write(lba, n);
  content_.write(lba, n, tags);
  stats_.write_ops++;
  stats_.write_blocks += n;
  return r;
}

IoResult MemDisk::write_payload(SimTime now, u64 lba, Payload payload) {
  const u32 n = static_cast<u32>(bytes_to_blocks(payload ? payload->size() : 1));
  IoResult r = transfer(now, lba, n == 0 ? 1 : n);
  if (!r.ok()) return r;
  media_.on_write(lba, n == 0 ? 1 : n);
  content_.write_payload(lba, n == 0 ? 1 : n, std::move(payload));
  stats_.write_ops++;
  stats_.write_blocks += n == 0 ? 1 : n;
  return r;
}

Result<Payload> MemDisk::read_payload(SimTime now, u64 lba, SimTime* done) {
  if (failed_) return Status(ErrorCode::kDeviceFailed);
  IoResult r = transfer(now, lba, 1);
  if (done != nullptr) *done = r.done;
  stats_.read_ops++;
  stats_.read_blocks += 1;
  if (media_.affects(lba, 1)) return Status(ErrorCode::kMediaError);
  return content_.read_payload(lba);
}

IoResult MemDisk::flush(SimTime now) {
  if (failed_) return {now, ErrorCode::kDeviceFailed};
  stats_.flushes++;
  return {line_.submit(now, cfg_.flush_latency), ErrorCode::kOk};
}

IoResult MemDisk::trim(SimTime now, u64 lba, u64 n) {
  if (failed_) return {now, ErrorCode::kDeviceFailed};
  media_.on_write(lba, n);
  content_.discard(lba, n);
  stats_.trim_ops++;
  stats_.trim_blocks += n;
  return {line_.submit(now, cfg_.op_latency), ErrorCode::kOk};
}

}  // namespace srcache::blockdev
