// The block-device abstraction every srcache layer stacks on: simulated SSDs,
// simulated HDD arrays, software RAID, and the iSCSI primary-storage target
// all implement this interface, mirroring how the paper's SRC prototype sits
// in the Linux Device Mapper stack.
//
// Content model: a device addresses fixed 4 KiB blocks. Each block's content
// is represented by a 64-bit *tag* (a logical data version stamped by the
// writer) plus, for blocks that carry structured metadata (SRC's MS/ME
// blocks, superblocks, journals), an optional byte payload. Tags are enough
// to implement and *test* real checksums, XOR parity, and recovery scans
// without materializing gigabytes.
//
// Timing model: every operation takes its issue time and returns an IoResult
// whose `done` is the completion time on the device's internal timelines.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "sim/time.hpp"

namespace srcache::blockdev {

using sim::SimTime;

// Payloads are immutable and shared; devices store the pointer, so a reader
// sees exactly the bytes the writer produced (or a corrupted copy).
using Payload = std::shared_ptr<const std::vector<u8>>;

struct IoResult {
  SimTime done = 0;
  ErrorCode error = ErrorCode::kOk;

  [[nodiscard]] bool ok() const { return error == ErrorCode::kOk; }
};

// Cumulative per-device accounting, used by the bench harness to compute
// I/O amplification and by the cost model to estimate lifetime.
struct DeviceStats {
  u64 read_ops = 0;
  u64 read_blocks = 0;
  u64 write_ops = 0;
  u64 write_blocks = 0;
  u64 flushes = 0;
  u64 trim_ops = 0;
  u64 trim_blocks = 0;

  DeviceStats operator-(const DeviceStats& o) const {
    return DeviceStats{read_ops - o.read_ops,     read_blocks - o.read_blocks,
                       write_ops - o.write_ops,   write_blocks - o.write_blocks,
                       flushes - o.flushes,       trim_ops - o.trim_ops,
                       trim_blocks - o.trim_blocks};
  }
  [[nodiscard]] u64 total_blocks() const { return read_blocks + write_blocks; }
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  [[nodiscard]] virtual u64 capacity_blocks() const = 0;

  // Reads `n` blocks starting at `lba`. If `tags_out` is non-empty it must
  // hold at least n entries and receives the stored tags (0 for
  // never-written blocks, or when content tracking is disabled).
  virtual IoResult read(SimTime now, u64 lba, u32 n,
                        std::span<u64> tags_out = {}) = 0;

  // Writes `n` blocks starting at `lba`. `tags` is either empty (content
  // becomes tag 0) or holds n entries.
  virtual IoResult write(SimTime now, u64 lba, u32 n,
                         std::span<const u64> tags = {}) = 0;

  // Writes a structured payload spanning ceil(size / 4 KiB) blocks at `lba`.
  // The payload is retrievable via read_payload until overwritten.
  virtual IoResult write_payload(SimTime now, u64 lba, Payload payload) = 0;

  // Reads back the payload most recently stored at `lba`, or kNotFound if
  // the block was overwritten by a plain write / trimmed / never written.
  virtual Result<Payload> read_payload(SimTime now, u64 lba,
                                       SimTime* done = nullptr) = 0;

  // Durability barrier: completes once all previously-acknowledged writes
  // have reached stable media (paper §3: the expensive operation).
  virtual IoResult flush(SimTime now) = 0;

  // Discards a block range (advisory; SSDs reclaim the space).
  virtual IoResult trim(SimTime now, u64 lba, u64 n) = 0;

  [[nodiscard]] virtual const DeviceStats& stats() const = 0;

  // --- fault injection (testing & the paper's failure-handling paths) ---

  // Whole-device fail-stop. All subsequent ops return kDeviceFailed.
  virtual void fail() = 0;
  virtual void heal() = 0;
  [[nodiscard]] virtual bool failed() const = 0;

  // Physical drive swap: the device comes back serviceable but *blank* —
  // all stored content and payloads are gone and any internal translation
  // state is reset, unlike heal(), whose contents survive (a transient
  // fault). Devices that track no content just heal.
  virtual void replace_media() { heal(); }

  // Silent corruption (paper §4.1 cites Bairavasundaram et al.): flips the
  // stored content of one block without any device-visible error.
  virtual void corrupt(u64 lba) = 0;

  // Latent sector errors: reads touching [lba, lba + n) return kMediaError
  // until the blocks are rewritten (remap-on-write). Devices that do not
  // model media errors ignore the injection.
  virtual void inject_media_errors(u64 lba, u64 n) {
    (void)lba;
    (void)n;
  }
  virtual void clear_media_errors() {}

  // Service degradation (link congestion, failing interconnect): service
  // times are multiplied by `factor` until virtual time `until`. Devices
  // without a degradable path ignore it.
  virtual void degrade_service(double factor, SimTime until) {
    (void)factor;
    (void)until;
  }

  // Marks subsequent operations as background (destaging, rebuild): they
  // yield to foreground traffic on devices that support priorities.
  // Default: no distinction.
  virtual void set_background(bool background) { (void)background; }
};

// Tag helpers: writers stamp data blocks with tags derived from (lba,
// version) so that integrity checks and parity reconstruction are testable.
constexpr u64 make_tag(u64 lba, u64 version) {
  return (version << 40) ^ (lba + 1) * 0x9E3779B97F4A7C15ull;
}

// A rebuild-in-progress mask over an array of devices. A replaced (blank)
// member must not serve reads for block ranges the rebuilder has not copied
// yet — a blank device would happily return tag 0, which is silent
// corruption. Read paths consult covers(dev, block) and treat covered
// blocks exactly like a failed device (reconstruct via mirror/parity).
// Blocks that lost their redundancy to a second failure stay covered
// forever. Implemented by raid::RebuildManager; declared here so both the
// RAID layer and the SRC cache can consume it without new dependencies.
struct RebuildMask {
  virtual ~RebuildMask() = default;
  [[nodiscard]] virtual bool covers(size_t dev, u64 block) const = 0;
};

}  // namespace srcache::blockdev
