// MediaErrorSet: latent-sector-error tracking shared by simulated devices.
//
// Latent sector errors are the device-*reported* failure mode (as opposed
// to silent corruption): a read touching a marked block returns
// kMediaError. Writing the block succeeds and clears the mark — the
// device's remap-on-write behaviour — which is what makes parity rebuild +
// write-back an actual repair.
#pragma once

#include <map>

#include "common/types.hpp"

namespace srcache::blockdev {

class MediaErrorSet {
 public:
  // Marks [lba, lba + n) as unreadable.
  void add(u64 lba, u64 n) {
    if (n == 0) return;
    for (u64 i = 0; i < n; ++i) bad_.insert_or_assign(lba + i, true);
  }

  // Does any block of [lba, lba + n) carry a latent error?
  [[nodiscard]] bool affects(u64 lba, u64 n) const {
    if (bad_.empty()) return false;
    auto it = bad_.lower_bound(lba);
    return it != bad_.end() && it->first < lba + n;
  }

  // Remap-on-write: a write over marked blocks clears them.
  void on_write(u64 lba, u64 n) {
    if (bad_.empty()) return;
    auto it = bad_.lower_bound(lba);
    while (it != bad_.end() && it->first < lba + n) it = bad_.erase(it);
  }

  void clear() { bad_.clear(); }
  [[nodiscard]] u64 size() const { return bad_.size(); }
  [[nodiscard]] bool empty() const { return bad_.empty(); }

 private:
  std::map<u64, bool> bad_;
};

}  // namespace srcache::blockdev
