// Anchor TU for srcache_block.
#include "block/block_device.hpp"
