// MemDisk: an idealized constant-latency, bandwidth-limited block device.
// Used as a test double and as the "infinitely good" device in ablations.
#pragma once

#include "block/block_device.hpp"
#include "block/content_store.hpp"
#include "block/media_errors.hpp"
#include "sim/timeline.hpp"

namespace srcache::blockdev {

struct MemDiskConfig {
  u64 capacity_blocks = 1 * GiB / kBlockSize;
  SimTime op_latency = 10 * sim::kUs;
  double bandwidth_mbps = 1000.0;
  SimTime flush_latency = 100 * sim::kUs;
  bool track_content = true;
};

class MemDisk final : public BlockDevice {
 public:
  explicit MemDisk(const MemDiskConfig& cfg);

  [[nodiscard]] u64 capacity_blocks() const override { return cfg_.capacity_blocks; }

  IoResult read(SimTime now, u64 lba, u32 n, std::span<u64> tags_out) override;
  IoResult write(SimTime now, u64 lba, u32 n, std::span<const u64> tags) override;
  IoResult write_payload(SimTime now, u64 lba, Payload payload) override;
  Result<Payload> read_payload(SimTime now, u64 lba, SimTime* done) override;
  IoResult flush(SimTime now) override;
  IoResult trim(SimTime now, u64 lba, u64 n) override;

  [[nodiscard]] const DeviceStats& stats() const override { return stats_; }

  void fail() override { failed_ = true; }
  void heal() override { failed_ = false; }
  void replace_media() override {
    failed_ = false;
    content_.clear();
    media_.clear();
  }
  [[nodiscard]] bool failed() const override { return failed_; }
  void corrupt(u64 lba) override { content_.corrupt(lba); }
  void inject_media_errors(u64 lba, u64 n) override { media_.add(lba, n); }
  void clear_media_errors() override { media_.clear(); }
  void degrade_service(double factor, SimTime until) override {
    degrade_factor_ = factor;
    degrade_until_ = until;
  }
  [[nodiscard]] u64 media_error_blocks() const { return media_.size(); }

 private:
  IoResult transfer(SimTime now, u64 lba, u32 n);
  [[nodiscard]] SimTime scaled(SimTime now, SimTime service) const;

  MemDiskConfig cfg_;
  ContentStore content_;
  MediaErrorSet media_;
  sim::ServiceTimeline line_;
  DeviceStats stats_;
  bool failed_ = false;
  double degrade_factor_ = 1.0;
  SimTime degrade_until_ = 0;
};

}  // namespace srcache::blockdev
