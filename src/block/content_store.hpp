// Sparse per-block content (tags + payloads) shared by all simulated devices.
#pragma once

#include <unordered_map>

#include "block/block_device.hpp"

namespace srcache::blockdev {

// Tracks block content for a device. Tracking can be disabled for large
// performance-only runs; reads then report tag 0 and payload kNotFound.
class ContentStore {
 public:
  explicit ContentStore(bool enabled) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const { return enabled_; }

  void write(u64 lba, u32 n, std::span<const u64> tags) {
    if (!enabled_) return;
    for (u32 i = 0; i < n; ++i) {
      tags_[lba + i] = tags.empty() ? 0 : tags[i];
      payloads_.erase(lba + i);
    }
  }

  void write_payload(u64 lba, u32 n, Payload payload) {
    if (!enabled_) return;
    for (u32 i = 0; i < n; ++i) {
      tags_.erase(lba + i);
      payloads_.erase(lba + i);
    }
    payloads_[lba] = std::move(payload);
  }

  void read(u64 lba, u32 n, std::span<u64> tags_out) const {
    if (tags_out.empty()) return;
    for (u32 i = 0; i < n; ++i) {
      auto it = tags_.find(lba + i);
      tags_out[i] = it == tags_.end() ? 0 : it->second;
    }
  }

  [[nodiscard]] Result<Payload> read_payload(u64 lba) const {
    auto it = payloads_.find(lba);
    if (it == payloads_.end())
      return Status(ErrorCode::kNotFound, "no payload at block");
    return it->second;
  }

  void discard(u64 lba, u64 n) {
    if (!enabled_) return;
    for (u64 i = 0; i < n; ++i) {
      tags_.erase(lba + i);
      payloads_.erase(lba + i);
    }
  }

  // Silent corruption: flip tag bits; if the block holds a payload, flip a
  // byte so any serialized checksum no longer verifies.
  void corrupt(u64 lba) {
    if (auto it = payloads_.find(lba); it != payloads_.end()) {
      auto broken = std::make_shared<std::vector<u8>>(*it->second);
      if (!broken->empty()) (*broken)[broken->size() / 2] ^= 0xA5;
      it->second = std::move(broken);
      return;
    }
    tags_[lba] ^= 0xDEADBEEFCAFEBABEull;
  }

  void clear() {
    tags_.clear();
    payloads_.clear();
  }

 private:
  bool enabled_;
  std::unordered_map<u64, u64> tags_;
  std::unordered_map<u64, Payload> payloads_;
};

}  // namespace srcache::blockdev
