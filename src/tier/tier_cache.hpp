// Compressed DRAM tier in front of the SSD array (ZipCache-style
// multi-tier, see ROADMAP).
//
// A size-bounded in-memory cache of 4 KiB blocks held in compressed form,
// interposed above the flash cache (normally SrcCache) on the I/O path. The
// compressor is simulated: the workload layer stamps a deterministic
// per-block compressibility ratio (AppRequest::comp_pct, a percentage of
// kBlockSize) onto every request, and the tier charges calibrated virtual
// CPU time per byte for compression (writes, fills) and decompression
// (read hits). The byte budget applies to *compressed* size, so effective
// capacity floats with how well the data compresses.
//
// Data movement contract:
//  * Writes are absorbed write-back: compressible blocks land dirty in the
//    tier without touching flash; the dirty share of the budget is bounded
//    (dirty_pct) and overflow destages to the flash cache in segment-sized
//    batches under the tier_destage provenance cause.
//  * Read misses forward to the inner cache; blocks filled from primary are
//    admitted (read-miss fill), blocks that hit in the inner cache are
//    promoted up only when the inner cache's hot hint says they earn DRAM.
//  * Incompressible blocks (comp_pct > incompressible_pct) bypass the tier
//    entirely — holding them would spend DRAM at ~1x.
//  * Budget overflow evicts in FIFO order with a policy second chance
//    (src/policy: paper / s3fifo / sieve all work here); an evicted dirty
//    block destages down, an evicted clean block is demoted into the inner
//    cache (tier_demote) unless it is still resident there, in which case
//    it is simply dropped.
//
// Determinism: one tier per engine domain, no clocks, no RNG — every
// decision is a function of the request stream and the (deterministic)
// policy state, so merged REPRO_JSON stays bit-identical across
// REPRO_SHARDS/REPRO_THREADS.
//
// Crash model: DRAM vanishes at a power cut. Dirty blocks resident in the
// tier at the cut are *lost*, never silently corrupted: on_power_cut counts
// each one as lost-dirty and records an injected+detected data-loss pair in
// the FaultLedger, so the ledger still reconciles.
#pragma once

#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache_device.hpp"
#include "fault/ledger.hpp"
#include "obs/metrics.hpp"
#include "policy/policy.hpp"
#include "src_cache/src_cache.hpp"

namespace srcache::tier {

using sim::SimTime;

struct TierConfig {
  u64 budget_bytes = 64 * MiB;   // bound on total *compressed* resident size
  u32 dirty_pct = 50;            // max dirty share of the budget, percent
  policy::EvictionKind eviction = policy::EvictionKind::kPaper;
  double cpu_ns_per_byte = 1.0;  // compression cost; decompression at half
  u32 destage_batch_blocks = 24; // segment-sized write-back batches
  u8 incompressible_pct = 95;    // comp_pct above this bypasses the tier

  void validate() const;
};

// Monotonic tallies; window deltas and cross-domain merges are exact
// integer arithmetic (workload::TierOutcome mirrors these fields).
struct TierStats {
  u64 hit_blocks = 0;           // reads served from the tier
  u64 miss_blocks = 0;          // reads forwarded to the inner cache
  u64 admit_blocks = 0;         // blocks that entered the tier
  u64 bypass_blocks = 0;        // incompressible blocks passed through
  u64 promote_blocks = 0;       // admits of inner-cache-hot blocks
  u64 destage_blocks = 0;       // dirty blocks written back down
  u64 demote_blocks = 0;        // clean evictions re-admitted below
  u64 drop_blocks = 0;          // clean evictions already resident below
  u64 evict_blocks = 0;         // blocks that left the tier
  u64 uncompressed_bytes = 0;   // cumulative admitted bytes (blocks * 4K)
  u64 compressed_bytes = 0;     // cumulative compressed size of the same
  u64 cpu_compress_ns = 0;      // virtual CPU time charged to compression
  u64 cpu_decompress_ns = 0;    // ... and decompression
  u64 lost_dirty_blocks = 0;    // dirty blocks in DRAM at a power cut
};

class TierCache final : public cache::CacheDevice {
 public:
  // `inner` is the flash cache below (borrowed). When it is a SrcCache,
  // pass it as `src` too: destages/demotes then ride its provenance-
  // attributed staging paths and promotion uses its hot hint. With a
  // generic inner cache, destages forward as plain writes and clean
  // evictions drop.
  TierCache(const TierConfig& cfg, cache::CacheDevice* inner,
            src::SrcCache* src = nullptr);

  SimTime submit(const cache::AppRequest& req) override;
  SimTime flush(SimTime now) override;
  [[nodiscard]] const cache::CacheStats& stats() const override {
    return stats_;
  }
  [[nodiscard]] u64 cached_blocks() const override { return map_.size(); }

  [[nodiscard]] const TierConfig& config() const { return cfg_; }
  [[nodiscard]] const TierStats& tier_stats() const { return tstats_; }
  [[nodiscard]] u64 resident_blocks() const { return map_.size(); }
  [[nodiscard]] u64 resident_compressed_bytes() const { return resident_csize_; }
  [[nodiscard]] u64 dirty_blocks() const { return dirty_blocks_; }
  [[nodiscard]] u64 dirty_compressed_bytes() const { return dirty_csize_; }
  // Average compression ratio of everything admitted so far (compressed /
  // uncompressed; 1.0 when nothing was admitted).
  [[nodiscard]] double compression_ratio() const;
  [[nodiscard]] double hit_ratio() const;

  // Power cut: DRAM is gone. Dirty residents are counted lost (TierStats::
  // lost_dirty_blocks and, when a ledger is attached, an injected+detected
  // data-loss record each) and the tier empties.
  void on_power_cut(SimTime now);
  // Ledger device id for tier data-loss records: distinct from every flash
  // index and from fault::kPrimaryDev.
  static constexpr int kLedgerDev = -2;
  void set_fault_ledger(fault::FaultLedger* ledger) { fault_ledger_ = ledger; }

  // Exports tier counters/gauges under `scope` (e.g. "tier"); the
  // timeseries sampler then captures hit ratio, compression ratio and CPU
  // cost per interval like any other registry series.
  void register_metrics(const obs::Scope& scope);

 private:
  struct Entry {
    u64 tag = 0;
    std::list<u64>::iterator pos;  // position in fifo_ (front = oldest)
    u32 csize = 0;                 // compressed bytes
    u16 tenant = 0;
    bool dirty = false;
    bool hot = false;              // second-chance bit (paper policy input)
  };

  SimTime do_read(const cache::AppRequest& req);
  SimTime do_write(const cache::AppRequest& req);

  [[nodiscard]] u32 compressed_size(u8 comp_pct) const;
  void admit(u64 lba, u64 tag, u16 tenant, u32 csize, bool dirty);
  void remove_entry(u64 lba, Entry& e);

  // Destages the oldest dirty blocks in place (they stay resident, clean)
  // until the dirty share is within bound.
  SimTime enforce_dirty_bound(SimTime now);
  // Evicts (policy second chance) until compressed size fits the budget.
  SimTime enforce_budget(SimTime now);
  SimTime destage_batch(SimTime now, std::vector<u64>& lbas,
                        std::vector<u64>& tags, std::vector<u16>& tenants);

  TierConfig cfg_;
  cache::CacheDevice* inner_;
  src::SrcCache* src_;

  std::unordered_map<u64, Entry> map_;
  std::list<u64> fifo_;
  std::unique_ptr<policy::EvictionPolicy> eviction_;

  u64 resident_csize_ = 0;
  u64 dirty_csize_ = 0;
  u64 dirty_blocks_ = 0;
  u64 tag_version_ = 0;
  SimTime compress_ns_ = 0;    // per-block virtual-time charges
  SimTime decompress_ns_ = 0;

  cache::CacheStats stats_;
  TierStats tstats_;
  fault::FaultLedger* fault_ledger_ = nullptr;
};

}  // namespace srcache::tier
