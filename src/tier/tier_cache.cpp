#include "tier/tier_cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace srcache::tier {

void TierConfig::validate() const {
  if (budget_bytes == 0)
    throw std::invalid_argument("tier: budget_bytes must be > 0");
  if (dirty_pct > 100)
    throw std::invalid_argument("tier: dirty_pct must be in [0, 100]");
  if (cpu_ns_per_byte < 0.0)
    throw std::invalid_argument("tier: cpu_ns_per_byte must be >= 0");
  if (destage_batch_blocks == 0)
    throw std::invalid_argument("tier: destage_batch_blocks must be > 0");
  if (incompressible_pct > 100)
    throw std::invalid_argument("tier: incompressible_pct must be in [0, 100]");
}

TierCache::TierCache(const TierConfig& cfg, cache::CacheDevice* inner,
                     src::SrcCache* src)
    : cfg_(cfg), inner_(inner), src_(src) {
  cfg_.validate();
  if (inner_ == nullptr)
    throw std::invalid_argument("tier: inner cache is required");
  // The policy's ghost structures are sized in blocks as if the budget held
  // incompressible data — a lower bound on residency, which only makes the
  // ghosts conservative.
  eviction_ =
      policy::make_eviction(cfg_.eviction, cfg_.budget_bytes / kBlockSize);
  // Calibrated virtual CPU cost: compression charges per uncompressed byte;
  // decompression runs roughly twice as fast for LZ-class codecs.
  compress_ns_ = static_cast<SimTime>(cfg_.cpu_ns_per_byte *
                                      static_cast<double>(kBlockSize));
  decompress_ns_ = compress_ns_ / 2;
}

u32 TierCache::compressed_size(u8 comp_pct) const {
  // 0 means the workload stamped nothing: treat as incompressible.
  const u32 pct = comp_pct == 0 ? 100 : std::min<u32>(comp_pct, 100);
  return std::max<u32>(1, static_cast<u32>(kBlockSize) * pct / 100);
}

double TierCache::compression_ratio() const {
  return tstats_.uncompressed_bytes == 0
             ? 1.0
             : static_cast<double>(tstats_.compressed_bytes) /
                   static_cast<double>(tstats_.uncompressed_bytes);
}

double TierCache::hit_ratio() const {
  const u64 total = tstats_.hit_blocks + tstats_.miss_blocks;
  return total == 0 ? 0.0
                    : static_cast<double>(tstats_.hit_blocks) /
                          static_cast<double>(total);
}

void TierCache::admit(u64 lba, u64 tag, u16 tenant, u32 csize, bool dirty) {
  Entry e;
  e.tag = tag;
  e.csize = csize;
  e.tenant = tenant;
  e.dirty = dirty;
  fifo_.push_back(lba);
  e.pos = std::prev(fifo_.end());
  map_.emplace(lba, e);
  resident_csize_ += csize;
  if (dirty) {
    dirty_csize_ += csize;
    dirty_blocks_++;
  }
  tstats_.admit_blocks++;
  tstats_.uncompressed_bytes += kBlockSize;
  tstats_.compressed_bytes += csize;
  eviction_->on_admit(lba);
}

void TierCache::remove_entry(u64 lba, Entry& e) {
  resident_csize_ -= e.csize;
  if (e.dirty) {
    dirty_csize_ -= e.csize;
    dirty_blocks_--;
  }
  fifo_.erase(e.pos);
  map_.erase(lba);
  tstats_.evict_blocks++;
}

SimTime TierCache::destage_batch(SimTime now, std::vector<u64>& lbas,
                                 std::vector<u64>& tags,
                                 std::vector<u16>& tenants) {
  if (lbas.empty()) return now;
  SimTime done = now;
  if (src_ != nullptr) {
    done = src_->tier_destage(now, lbas, tags, tenants);
  } else {
    for (size_t i = 0; i < lbas.size(); ++i) {
      cache::AppRequest w;
      w.now = now;
      w.is_write = true;
      w.lba = lbas[i];
      w.tenant = tenants[i];
      w.tags = &tags[i];
      done = std::max(done, inner_->submit(w));
    }
  }
  tstats_.destage_blocks += lbas.size();
  stats_.destage_blocks += lbas.size();
  lbas.clear();
  tags.clear();
  tenants.clear();
  return done;
}

SimTime TierCache::enforce_dirty_bound(SimTime now) {
  const u64 limit = cfg_.budget_bytes / 100 * cfg_.dirty_pct;
  if (dirty_csize_ <= limit) return now;
  SimTime done = now;
  std::vector<u64> lbas, tags;
  std::vector<u16> tenants;
  // Oldest-first write-back: blocks stay resident, flipped clean — the
  // bound limits exposure, it does not evict.
  for (auto it = fifo_.begin(); it != fifo_.end() && dirty_csize_ > limit;
       ++it) {
    Entry& e = map_.at(*it);
    if (!e.dirty) continue;
    lbas.push_back(*it);
    tags.push_back(e.tag);
    tenants.push_back(e.tenant);
    e.dirty = false;
    dirty_csize_ -= e.csize;
    dirty_blocks_--;
    if (lbas.size() >= cfg_.destage_batch_blocks)
      done = std::max(done, destage_batch(now, lbas, tags, tenants));
  }
  done = std::max(done, destage_batch(now, lbas, tags, tenants));
  return done;
}

SimTime TierCache::enforce_budget(SimTime now) {
  if (resident_csize_ <= cfg_.budget_bytes) return now;
  SimTime done = now;
  std::vector<u64> lbas, tags;
  std::vector<u16> tenants;
  // FIFO walk with a policy second chance; after one full pass every block
  // has been consulted once, and the front is force-evicted so a
  // keep-everything policy (the paper policy keeps all dirty blocks) cannot
  // livelock the walk.
  size_t walked = 0;
  const size_t pass = fifo_.size();
  while (resident_csize_ > cfg_.budget_bytes && !fifo_.empty()) {
    const u64 lba = fifo_.front();
    Entry& e = map_.at(lba);
    const bool keep =
        walked < pass && eviction_->keep_on_gc(lba, e.hot, e.dirty);
    ++walked;
    if (keep) {
      e.hot = false;  // second chance spent
      fifo_.pop_front();
      fifo_.push_back(lba);
      e.pos = std::prev(fifo_.end());
      continue;
    }
    if (walked > pass) eviction_->on_evict(lba);  // forced, no gc verdict
    if (e.dirty) {
      lbas.push_back(lba);
      tags.push_back(e.tag);
      tenants.push_back(e.tenant);
      if (lbas.size() >= cfg_.destage_batch_blocks)
        done = std::max(done, destage_batch(now, lbas, tags, tenants));
    } else if (src_ != nullptr &&
               src_->residence(lba) == src::SrcCache::Residence::kAbsent) {
      done = std::max(done, src_->tier_demote(now, lba, e.tag, e.tenant));
      tstats_.demote_blocks++;
    } else {
      tstats_.drop_blocks++;
    }
    remove_entry(lba, e);
  }
  done = std::max(done, destage_batch(now, lbas, tags, tenants));
  return done;
}

SimTime TierCache::do_write(const cache::AppRequest& req) {
  const SimTime now = req.now;
  stats_.app_write_ops++;
  stats_.app_write_blocks += req.nblocks;
  const u32 csize = compressed_size(req.comp_pct);
  const bool incompressible =
      req.comp_pct == 0 || req.comp_pct > cfg_.incompressible_pct;
  SimTime ack = now;
  SimTime cpu = 0;

  std::vector<u64> bypass_lbas;
  std::vector<u64> bypass_tags;
  for (u32 i = 0; i < req.nblocks; ++i) {
    const u64 lba = req.lba + i;
    const u64 tag = req.tags != nullptr
                        ? req.tags[i]
                        : blockdev::make_tag(lba, ++tag_version_);
    if (incompressible) {
      // An incompressible overwrite of a tier-resident block must not leave
      // a stale compressed copy behind.
      if (auto it = map_.find(lba); it != map_.end()) {
        eviction_->on_evict(lba);
        tstats_.drop_blocks++;
        remove_entry(lba, it->second);
      }
      tstats_.bypass_blocks++;
      bypass_lbas.push_back(lba);
      bypass_tags.push_back(tag);
      continue;
    }
    cpu += compress_ns_;
    if (auto it = map_.find(lba); it != map_.end()) {
      Entry& e = it->second;
      stats_.write_hit_blocks++;
      // Subtract-then-add: the deltas are unsigned, so a shrinking
      // overwrite must never form `csize - e.csize` directly.
      resident_csize_ -= e.csize;
      resident_csize_ += csize;
      if (e.dirty) {
        dirty_csize_ -= e.csize;
        dirty_csize_ += csize;
      } else {
        dirty_csize_ += csize;
        dirty_blocks_++;
        e.dirty = true;
      }
      e.csize = csize;
      e.tag = tag;
      e.tenant = static_cast<u16>(req.tenant);
      e.hot = true;
      eviction_->on_access(lba);
    } else {
      stats_.write_new_blocks++;
      admit(lba, tag, static_cast<u16>(req.tenant), csize, /*dirty=*/true);
    }
  }

  // Bypass runs go straight down; the inner cache's own classification
  // (hit vs new) carries up so the tier-level ratio stays honest.
  const u64 inner_hit0 = inner_->stats().write_hit_blocks;
  size_t i = 0;
  while (i < bypass_lbas.size()) {
    size_t j = i + 1;
    while (j < bypass_lbas.size() && bypass_lbas[j] == bypass_lbas[j - 1] + 1)
      ++j;
    cache::AppRequest w;
    w.now = now;
    w.is_write = true;
    w.lba = bypass_lbas[i];
    w.nblocks = static_cast<u32>(j - i);
    w.tenant = req.tenant;
    w.comp_pct = req.comp_pct;
    w.tags = &bypass_tags[i];
    ack = std::max(ack, inner_->submit(w));
    i = j;
  }
  if (!bypass_lbas.empty()) {
    const u64 inner_hits = inner_->stats().write_hit_blocks - inner_hit0;
    stats_.write_hit_blocks += inner_hits;
    stats_.write_new_blocks += bypass_lbas.size() - inner_hits;
  }

  tstats_.cpu_compress_ns += static_cast<u64>(cpu);
  ack = std::max(ack, enforce_dirty_bound(now));
  ack = std::max(ack, enforce_budget(now));
  return ack + cpu;
}

SimTime TierCache::do_read(const cache::AppRequest& req) {
  const SimTime now = req.now;
  stats_.app_read_ops++;
  stats_.app_read_blocks += req.nblocks;
  const u32 csize = compressed_size(req.comp_pct);
  const bool compressible =
      req.comp_pct != 0 && req.comp_pct <= cfg_.incompressible_pct;
  SimTime ack = now;
  SimTime cpu = 0;

  // Tags for missed blocks always come back from below (scratch buffer when
  // the caller did not ask), so admitted blocks carry real content.
  std::vector<u64> scratch;
  u64* tags_out = req.tags_out;
  if (tags_out == nullptr) {
    scratch.assign(req.nblocks, 0);
    tags_out = scratch.data();
  }

  u32 admits = 0;
  u32 k = 0;
  while (k < req.nblocks) {
    const u64 lba = req.lba + k;
    if (auto it = map_.find(lba); it != map_.end()) {
      Entry& e = it->second;
      tstats_.hit_blocks++;
      stats_.read_hit_blocks++;
      cpu += decompress_ns_;
      tags_out[k] = e.tag;
      e.hot = true;
      eviction_->on_access(lba);
      ++k;
      continue;
    }
    // Contiguous run of tier misses, forwarded as one inner request.
    u32 run = 1;
    while (k + run < req.nblocks && !map_.contains(req.lba + k + run)) ++run;
    // Pre-read snapshot of what is resident (and already hot) below: the
    // read itself marks blocks hot, so promotion must look first.
    std::vector<u8> below(run, 0);
    if (src_ != nullptr) {
      for (u32 r = 0; r < run; ++r) {
        const u64 l = req.lba + k + r;
        if (src_->residence(l) != src::SrcCache::Residence::kAbsent)
          below[r] = src_->hot_hint(l) ? 2 : 1;
      }
    }
    const u64 inner_miss0 = inner_->stats().read_miss_blocks;
    cache::AppRequest sub;
    sub.now = now;
    sub.lba = req.lba + k;
    sub.nblocks = run;
    sub.tenant = req.tenant;
    sub.comp_pct = req.comp_pct;
    sub.tags_out = tags_out + k;
    ack = std::max(ack, inner_->submit(sub));
    const u64 inner_misses = inner_->stats().read_miss_blocks - inner_miss0;
    tstats_.miss_blocks += run;
    stats_.read_miss_blocks += std::min<u64>(inner_misses, run);
    stats_.read_hit_blocks += run - std::min<u64>(inner_misses, run);

    for (u32 r = 0; r < run; ++r) {
      const u64 l = req.lba + k + r;
      if (!compressible) {
        tstats_.bypass_blocks++;
        continue;
      }
      // Admit read-miss fills; promote inner-cache residents only on the
      // hot hint (they are already one flash read away).
      const bool promote = below[r] == 2;
      if (below[r] == 1 && src_ != nullptr) continue;
      if (map_.contains(l)) continue;  // runs can overlap after admits
      stats_.fetch_blocks++;
      if (promote) tstats_.promote_blocks++;
      admit(l, tags_out[k + r], static_cast<u16>(req.tenant), csize,
            /*dirty=*/false);
      ++admits;
      cpu += compress_ns_;
    }
    k += run;
  }

  tstats_.cpu_decompress_ns +=
      static_cast<u64>(cpu - compress_ns_ * admits);
  tstats_.cpu_compress_ns += static_cast<u64>(compress_ns_ * admits);
  ack = std::max(ack, enforce_budget(now));
  return ack + cpu;
}

SimTime TierCache::submit(const cache::AppRequest& req) {
  return req.is_write ? do_write(req) : do_read(req);
}

SimTime TierCache::flush(SimTime now) {
  stats_.app_flushes++;
  SimTime done = now;
  std::vector<u64> lbas, tags;
  std::vector<u16> tenants;
  for (auto it = fifo_.begin(); it != fifo_.end(); ++it) {
    Entry& e = map_.at(*it);
    if (!e.dirty) continue;
    lbas.push_back(*it);
    tags.push_back(e.tag);
    tenants.push_back(e.tenant);
    e.dirty = false;
    dirty_csize_ -= e.csize;
    dirty_blocks_--;
    if (lbas.size() >= cfg_.destage_batch_blocks)
      done = std::max(done, destage_batch(now, lbas, tags, tenants));
  }
  done = std::max(done, destage_batch(now, lbas, tags, tenants));
  return std::max(done, inner_->flush(now));
}

void TierCache::on_power_cut(SimTime now) {
  (void)now;
  // Walk in FIFO order so policy teardown (ghost insertions) is
  // deterministic across shard/thread counts.
  for (u64 lba : fifo_) {
    const Entry& e = map_.at(lba);
    if (e.dirty) {
      tstats_.lost_dirty_blocks++;
      if (fault_ledger_ != nullptr) {
        // Write-back loss is *accounted*, never silent: each lost block is
        // an injected fault that is immediately detected.
        fault_ledger_->record_injected(fault::FaultKind::kPowerCut,
                                       kLedgerDev, lba);
        fault_ledger_->record_detected(kLedgerDev, lba);
      }
    }
    eviction_->on_evict(lba);
  }
  tstats_.evict_blocks += map_.size();
  map_.clear();
  fifo_.clear();
  resident_csize_ = 0;
  dirty_csize_ = 0;
  dirty_blocks_ = 0;
}

void TierCache::register_metrics(const obs::Scope& scope) {
  scope.counter_fn("hit_blocks", [this] { return tstats_.hit_blocks; });
  scope.counter_fn("miss_blocks", [this] { return tstats_.miss_blocks; });
  scope.counter_fn("admit_blocks", [this] { return tstats_.admit_blocks; });
  scope.counter_fn("bypass_blocks", [this] { return tstats_.bypass_blocks; });
  scope.counter_fn("promote_blocks",
                   [this] { return tstats_.promote_blocks; });
  scope.counter_fn("destage_blocks",
                   [this] { return tstats_.destage_blocks; });
  scope.counter_fn("demote_blocks", [this] { return tstats_.demote_blocks; });
  scope.counter_fn("drop_blocks", [this] { return tstats_.drop_blocks; });
  scope.counter_fn("evict_blocks", [this] { return tstats_.evict_blocks; });
  scope.counter_fn("cpu_compress_ns",
                   [this] { return tstats_.cpu_compress_ns; });
  scope.counter_fn("cpu_decompress_ns",
                   [this] { return tstats_.cpu_decompress_ns; });
  scope.counter_fn("lost_dirty_blocks",
                   [this] { return tstats_.lost_dirty_blocks; });
  scope.gauge_fn("resident_blocks",
                 [this] { return static_cast<double>(map_.size()); });
  scope.gauge_fn("compressed_bytes",
                 [this] { return static_cast<double>(resident_csize_); });
  scope.gauge_fn("dirty_bytes",
                 [this] { return static_cast<double>(dirty_csize_); });
  scope.gauge_fn("cpu_ns", [this] {
    return static_cast<double>(tstats_.cpu_compress_ns +
                               tstats_.cpu_decompress_ns);
  });
  // Ratio gauges live under the top-level "util." namespace so the engine's
  // merged time series averages them across domains instead of summing.
  const obs::Scope util(scope.registry(), "util." + scope.prefix());
  util.gauge_fn("hit_ratio", [this] { return hit_ratio(); });
  util.gauge_fn("compression_ratio", [this] { return compression_ratio(); });
}

}  // namespace srcache::tier
