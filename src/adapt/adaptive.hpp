// AdaptiveController: the adapt subsystem's front door.
//
// One instance manages cache capacity as a per-tenant resource for a whole
// run: it owns one GhostCache per tenant (online MRC profiling), counts each
// tenant's accesses per epoch, and at every epoch boundary asks the
// PartitionController for a new capacity split, which it pushes into the
// cache under management through an apply callback — typically
// SrcCache::set_tenant_quotas. The controller never evicts anything itself:
// enforcement is the cache's job (admission gating plus GC steering), so a
// shrinking tenant drains by attrition instead of an eviction storm.
//
// The driver (workload::Runner) calls observe() for every request and
// epoch_due()/run_epoch() at request boundaries; epochs are measured in
// simulated time, anchored by set_epoch_start() at the measurement-window
// start (mirroring how FaultInjector is anchored).
#pragma once

#include <functional>
#include <vector>

#include "adapt/ghost_cache.hpp"
#include "adapt/partition.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace srcache::adapt {

struct AdaptConfig {
  u32 num_tenants = 2;
  // Managed capacity: normally SrcConfig::capacity_blocks() of the cache
  // under management.
  u64 capacity_blocks = 0;
  // Epoch length in simulated time; every boundary re-solves the split.
  sim::SimTime epoch = 1 * sim::kSec;
  // SHARDS sampling rate for the ghost caches.
  double sampling_rate = 0.1;
  // Hard per-tenant ghost memory budget (entries).
  u64 ghost_max_entries = 1 << 16;
  // MRC resolution: candidate sizes at capacity * k / mrc_points.
  u32 mrc_points = 32;
  double ghost_decay = 0.5;

  // Partitioner stabilizers (see partition.hpp).
  double min_share = 0.05;
  double hysteresis = 0.02;
  u64 quantum_blocks = 0;            // 0 = capacity/64
  std::vector<double> weights;       // per-tenant miss cost, empty = 1.0

  void validate() const;
};

class AdaptiveController {
 public:
  using ApplyFn = std::function<void(const std::vector<u64>&)>;

  // `apply` receives every adopted split (called once at construction with
  // the even split so the cache starts managed, then at epoch boundaries).
  AdaptiveController(const AdaptConfig& cfg, ApplyFn apply);

  // One application request: feeds the tenant's ghost cache and the epoch
  // access counters. Cheap for non-sampled lbas.
  void observe(u32 tenant, u64 lba, u32 nblocks);

  // Anchors epoch boundaries (e.g. at the measurement-window start). Resets
  // the epoch clock but keeps ghost state — warm-up traffic profiles too.
  void set_epoch_start(sim::SimTime t0);

  [[nodiscard]] bool epoch_due(sim::SimTime now) const;

  // Closes the epoch at `now`: solve, apply on change, decay ghosts.
  // Returns the (possibly unchanged) enforced split.
  const std::vector<u64>& run_epoch(sim::SimTime now);

  [[nodiscard]] const std::vector<u64>& targets() const { return targets_; }
  [[nodiscard]] u32 epochs_completed() const { return epochs_; }
  [[nodiscard]] u32 rebalances() const { return rebalances_; }
  [[nodiscard]] const GhostCache& ghost(u32 tenant) const {
    return ghosts_[tenant];
  }
  [[nodiscard]] u64 ghost_entries_total() const;
  [[nodiscard]] size_t ghost_memory_bytes() const;
  [[nodiscard]] const AdaptConfig& config() const { return cfg_; }

  // Registers "epochs"/"rebalances" counters, ghost-budget gauges and
  // per-tenant "tenant.<t>.target_blocks" gauges under `scope` (e.g.
  // "adapt"). The controller must outlive the registry's snapshots.
  void register_metrics(const obs::Scope& scope);

 private:
  AdaptConfig cfg_;
  ApplyFn apply_;
  PartitionController partitioner_;
  std::vector<GhostCache> ghosts_;
  std::vector<double> epoch_accesses_;  // per-tenant blocks this epoch

  std::vector<u64> targets_;
  sim::SimTime epoch_start_ = 0;
  u32 epochs_ = 0;
  u32 rebalances_ = 0;
};

}  // namespace srcache::adapt
