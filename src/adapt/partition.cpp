#include "adapt/partition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace srcache::adapt {

void PartitionController::Config::validate(u32 num_tenants) const {
  if (num_tenants == 0)
    throw std::invalid_argument("PartitionController: no tenants");
  if (capacity_blocks == 0)
    throw std::invalid_argument("PartitionController: zero capacity");
  if (min_share < 0.0 || min_share * num_tenants > 1.0)
    throw std::invalid_argument(
        "PartitionController: min_share * tenants must be <= 1");
  if (hysteresis < 0.0 || hysteresis >= 1.0)
    throw std::invalid_argument("PartitionController: hysteresis in [0, 1)");
  if (!weights.empty() && weights.size() != num_tenants)
    throw std::invalid_argument("PartitionController: weights size mismatch");
}

std::vector<u64> PartitionController::even_split(u32 num_tenants) const {
  cfg_.validate(num_tenants);
  std::vector<u64> shares(num_tenants, cfg_.capacity_blocks / num_tenants);
  shares[0] += cfg_.capacity_blocks - shares[0] * num_tenants;  // remainder
  return shares;
}

std::vector<u64> PartitionController::solve(
    const std::vector<GhostCache::Mrc>& mrcs,
    const std::vector<double>& accesses, const std::vector<u64>& prev) const {
  const u32 n = static_cast<u32>(mrcs.size());
  cfg_.validate(n);
  if (accesses.size() != n)
    throw std::invalid_argument("PartitionController: accesses size mismatch");

  const u64 quantum = cfg_.quantum_blocks != 0
                          ? cfg_.quantum_blocks
                          : std::max<u64>(1, cfg_.capacity_blocks / 64);
  const u64 floor_blocks = static_cast<u64>(
      cfg_.min_share * static_cast<double>(cfg_.capacity_blocks));

  std::vector<u64> shares(n, floor_blocks);
  u64 granted = floor_blocks * n;
  if (granted > cfg_.capacity_blocks) {  // floors alone exhaust capacity
    return even_split(n);
  }

  auto weight = [&](u32 t) {
    return cfg_.weights.empty() ? 1.0 : cfg_.weights[t];
  };
  // Marginal miss-cost reduction of granting `quantum` more blocks to t,
  // priced at the steepest average slope from the current share to ANY
  // deeper ladder point (the concave-hull direction), not just the next
  // quantum. A cliff MRC — flat, then a step at the working-set size — has
  // zero one-quantum gain everywhere below the step; the lookahead still
  // sees the step and keeps granting toward it.
  auto gain = [&](u32 t) {
    const double h_now = mrcs[t].hit_ratio_at(shares[t]);
    double slope = (mrcs[t].hit_ratio_at(shares[t] + quantum) - h_now) /
                   static_cast<double>(quantum);
    for (const u64 p : mrcs[t].sizes) {
      if (p <= shares[t]) continue;
      const double s = (mrcs[t].hit_ratio_at(p) - h_now) /
                       static_cast<double>(p - shares[t]);
      slope = std::max(slope, s);
    }
    return weight(t) * accesses[t] * slope * static_cast<double>(quantum);
  };

  while (granted < cfg_.capacity_blocks) {
    const u64 grant = std::min(quantum, cfg_.capacity_blocks - granted);
    u32 best = 0;
    double best_gain = -1.0;
    for (u32 t = 0; t < n; ++t) {
      const double g = gain(t);
      if (g > best_gain) {
        best_gain = g;
        best = t;
      }
    }
    // All-zero marginal gains (idle epoch, saturated or flat-tailed curves):
    // hand the rest out by demonstrated utility — weighted hits at the share
    // granted so far — not evenly. A hot tenant whose sampled curve went
    // flat from tail noise still has hits and takes the surplus; a scan's
    // MRC is flat at zero hits, and no access volume makes up for that.
    // Even split only when nobody hit anything this epoch (cold start).
    if (best_gain <= 0.0) {
      u64 rest = cfg_.capacity_blocks - granted;
      std::vector<double> utility(n, 0.0);
      double total_utility = 0.0;
      for (u32 t = 0; t < n; ++t) {
        utility[t] = weight(t) * accesses[t] * mrcs[t].hit_ratio_at(shares[t]);
        total_utility += utility[t];
      }
      const u64 rest0 = rest;
      for (u32 t = 0; t + 1 < n; ++t) {
        const u64 part =
            total_utility <= 0.0
                ? rest / (n - t)  // cold start: even
                : static_cast<u64>(static_cast<double>(rest0) * utility[t] /
                                   total_utility);
        shares[t] += std::min(part, rest);
        rest -= std::min(part, rest);
      }
      shares[n - 1] += rest;
      granted = cfg_.capacity_blocks;
      break;
    }
    shares[best] += grant;
    granted += grant;
  }

  // Hysteresis: keep the enforced split unless some tenant moves by more
  // than the configured fraction of total capacity.
  if (prev.size() == n) {
    const double thresh =
        cfg_.hysteresis * static_cast<double>(cfg_.capacity_blocks);
    double max_move = 0.0;
    for (u32 t = 0; t < n; ++t) {
      const double d = std::abs(static_cast<double>(shares[t]) -
                                static_cast<double>(prev[t]));
      max_move = std::max(max_move, d);
    }
    if (max_move < thresh) return prev;
  }
  return shares;
}

}  // namespace srcache::adapt
