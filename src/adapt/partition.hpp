// Epoch-based capacity partitioning across tenants.
//
// Given each tenant's miss-ratio curve (GhostCache::Mrc) and its access
// volume over the closing epoch, the controller solves for the capacity
// split minimizing aggregate miss cost:
//
//     min  sum_t  weight_t * accesses_t * MR_t(share_t)
//     s.t. sum_t share_t = capacity,  share_t >= floor
//
// MRCs are concave enough in practice that greedy marginal-gain allocation
// is the standard solver (ECI-Cache does the same): start every tenant at
// the min-share floor, then hand out one quantum at a time to whichever
// tenant's curve promises the largest miss-cost reduction for it.
//
// Two stabilizers keep the cache from thrashing:
//  * min-share floor — no tenant is starved below a configured fraction,
//    so a quiet tenant retains enough cache to show reuse when it returns;
//  * hysteresis — a new solution is adopted only when some tenant's share
//    moves by more than a configured fraction of capacity; below that the
//    previous split stands and no enforcement churn happens at all.
#pragma once

#include <vector>

#include "adapt/ghost_cache.hpp"
#include "common/types.hpp"

namespace srcache::adapt {

class PartitionController {
 public:
  struct Config {
    u64 capacity_blocks = 0;  // total managed capacity
    u64 quantum_blocks = 0;   // allocation granularity (0 = capacity/64)
    double min_share = 0.05;  // guaranteed fraction of capacity per tenant
    double hysteresis = 0.02; // min share movement (fraction) to re-balance
    // Optional per-tenant miss cost; empty = all 1.0. A tenant with weight
    // 2 counts each miss twice in the objective.
    std::vector<double> weights;

    void validate(u32 num_tenants) const;
  };

  explicit PartitionController(const Config& cfg) : cfg_(cfg) {}

  // Solves for the next split. `prev` carries the currently-enforced shares
  // (empty on the first epoch — hysteresis then never suppresses). Returns
  // shares in blocks, one per tenant, summing to capacity_blocks (up to
  // quantum rounding absorbed by the last grant).
  [[nodiscard]] std::vector<u64> solve(const std::vector<GhostCache::Mrc>& mrcs,
                                       const std::vector<double>& accesses,
                                       const std::vector<u64>& prev) const;

  // Capacity / num_tenants each, floored to >= min-share: the split a
  // static, non-adaptive deployment would use.
  [[nodiscard]] std::vector<u64> even_split(u32 num_tenants) const;

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  Config cfg_;
};

}  // namespace srcache::adapt
