// Online miss-ratio-curve profiling via a sampled ghost LRU (ECI-Cache /
// SHARDS lineage; see PAPERS.md).
//
// A GhostCache tracks *metadata only* for a spatially-sampled subset of one
// tenant's block accesses and answers: "what would this tenant's miss ratio
// be if it owned s blocks of cache?" for a fixed ladder of candidate sizes.
// Three ideas keep it cheap enough to run inline with the workload:
//
//  * SHARDS spatial sampling: a block participates iff
//    hash(lba) mod P < R * P. Every sampled block stands for 1/R blocks, so
//    candidate sizes shrink by R in ghost space and the curve shape is
//    preserved; memory and per-access cost shrink by the same factor.
//  * Mattson boundary markers: one LRU list with one marker per candidate
//    size gives the hit's size-bucket in O(#sizes) per access instead of
//    O(stack distance) — no counting walk, no balanced tree.
//  * Hard entry cap: the list never exceeds the deepest (sampled) candidate
//    size nor `max_entries`; deeper reuse simply reads as a miss at every
//    candidate size, which is exactly what a bounded cache would see.
//
// Epoch protocol: the partition controller reads mrc() at each epoch
// boundary, then calls new_epoch(), which decays the per-bucket hit counts
// (EWMA) so the curve tracks phase changes without forgetting everything.
#pragma once

#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace srcache::adapt {

class GhostCache {
 public:
  struct Config {
    // SHARDS sampling rate R in (0, 1]. 1.0 profiles every access.
    double sampling_rate = 0.1;
    // Hard bound on ghost entries (sampled blocks tracked), regardless of
    // the candidate ladder. This is the configured memory budget.
    u64 max_entries = 1 << 16;
    // Candidate cache sizes in blocks (actual, unsampled space), strictly
    // ascending. The MRC is evaluated exactly at these points.
    std::vector<u64> sizes;
    // EWMA decay applied to hit/miss counts at new_epoch(); 0 forgets
    // everything each epoch, 1 never forgets.
    double decay = 0.5;
  };

  // Miss-ratio curve snapshot: miss_ratio[k] estimates the tenant's miss
  // ratio with a private cache of sizes[k] blocks.
  struct Mrc {
    std::vector<u64> sizes;
    std::vector<double> miss_ratio;
    double accesses = 0.0;  // decayed sampled accesses behind the estimate

    // Hit ratio at an arbitrary size, linearly interpolated between ladder
    // points (0 below the first point's share of reuse, flat past the last).
    [[nodiscard]] double hit_ratio_at(u64 size_blocks) const;
  };

  explicit GhostCache(const Config& cfg);

  // Feed one block access. Non-sampled lbas return immediately.
  void access(u64 lba);

  [[nodiscard]] Mrc mrc() const;

  // Epoch boundary: decay the accumulated counts (the ghost LRU itself is
  // kept — recency survives epochs, only the statistics age out).
  void new_epoch();

  [[nodiscard]] size_t entries() const { return index_.size(); }
  // Whether the (sampled) lba is currently tracked by the ghost LRU — i.e.
  // the next access(lba) would be a ghost hit. Read-only; does not touch
  // recency. Used by policy::GhostAdmission as its reuse evidence.
  [[nodiscard]] bool contains(u64 lba) const { return index_.contains(lba); }
  [[nodiscard]] u64 max_entries() const { return capacity_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  // Approximate resident bytes of the ghost structures (for budget tests).
  [[nodiscard]] size_t memory_bytes() const;

 private:
  struct Node {
    u64 lba;
    u32 region;  // index into sampled_sizes_ of the stack-depth bucket
  };
  using List = std::list<Node>;

  [[nodiscard]] bool sampled(u64 lba) const;
  void demote_overflow(u32 first_region);
  void touch_front(List::iterator it);

  Config cfg_;
  std::vector<u64> sampled_sizes_;  // ladder scaled by R, cumulative depths
  u64 capacity_ = 0;                // min(deepest sampled size, max_entries)

  List lru_;  // front = MRU; regions are contiguous runs in list order
  std::unordered_map<u64, List::iterator> index_;
  // markers_[k]: iterator to the LAST (deepest) element of region k; only
  // meaningful while count_[k] > 0.
  std::vector<List::iterator> markers_;
  std::vector<u64> count_;

  std::vector<double> hits_;  // per-region decayed hit counts
  double misses_ = 0.0;       // cold or deeper-than-ladder, decayed
};

}  // namespace srcache::adapt
