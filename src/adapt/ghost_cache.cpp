#include "adapt/ghost_cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace srcache::adapt {

namespace {

// SplitMix64 finalizer: a well-mixed stateless hash, so spatial sampling is
// deterministic across runs and uncorrelated with Zipf rank scrambling.
u64 mix(u64 x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

constexpr u64 kHashMod = 1ull << 24;

}  // namespace

GhostCache::GhostCache(const Config& cfg) : cfg_(cfg) {
  if (cfg_.sampling_rate <= 0.0 || cfg_.sampling_rate > 1.0)
    throw std::invalid_argument("GhostCache: sampling_rate in (0, 1]");
  if (cfg_.sizes.empty())
    throw std::invalid_argument("GhostCache: no candidate sizes");
  if (!std::is_sorted(cfg_.sizes.begin(), cfg_.sizes.end()) ||
      cfg_.sizes.front() == 0)
    throw std::invalid_argument("GhostCache: sizes must ascend from > 0");
  if (cfg_.decay < 0.0 || cfg_.decay > 1.0)
    throw std::invalid_argument("GhostCache: decay in [0, 1]");

  sampled_sizes_.reserve(cfg_.sizes.size());
  u64 prev = 0;
  for (const u64 s : cfg_.sizes) {
    // Scale to ghost space; keep the ladder strictly ascending so every
    // region has width >= 1 even after aggressive sampling.
    u64 scaled = static_cast<u64>(static_cast<double>(s) * cfg_.sampling_rate);
    scaled = std::max<u64>(scaled, prev + 1);
    sampled_sizes_.push_back(scaled);
    prev = scaled;
  }
  capacity_ = std::min<u64>(sampled_sizes_.back(), cfg_.max_entries);
  markers_.assign(sampled_sizes_.size(), lru_.end());
  count_.assign(sampled_sizes_.size(), 0);
  hits_.assign(sampled_sizes_.size(), 0.0);
}

bool GhostCache::sampled(u64 lba) const {
  if (cfg_.sampling_rate >= 1.0) return true;
  const u64 threshold =
      static_cast<u64>(cfg_.sampling_rate * static_cast<double>(kHashMod));
  return (mix(lba) % kHashMod) < threshold;
}

// Restores the region-capacity invariant after one element entered region
// `first_region` from above: each overfull region demotes its deepest
// element to the next region, cascading; an overflow past the last region
// (or the entry cap) evicts the global LRU tail.
void GhostCache::demote_overflow(u32 first_region) {
  const u32 last = static_cast<u32>(sampled_sizes_.size()) - 1;
  for (u32 k = first_region; k <= last; ++k) {
    const u64 width = k == 0 ? sampled_sizes_[0]
                             : sampled_sizes_[k] - sampled_sizes_[k - 1];
    if (count_[k] <= width) return;  // no overflow: deeper regions untouched
    List::iterator deepest = markers_[k];
    if (k == last) break;  // falls off the ladder: evict below
    markers_[k] = std::prev(deepest);  // count_[k] > width >= 1
    deepest->region = k + 1;
    count_[k]--;
    if (count_[k + 1] == 0) markers_[k + 1] = deepest;
    count_[k + 1]++;
  }
  // Last region overflowed: drop the global tail.
  List::iterator tail = std::prev(lru_.end());
  const u32 r = tail->region;
  if (markers_[r] == tail) markers_[r] = count_[r] > 1 ? std::prev(tail) : lru_.end();
  count_[r]--;
  index_.erase(tail->lba);
  lru_.pop_back();
}

// Moves an existing node to the MRU position (region 0), keeping markers
// consistent. The caller fixes region counts/overflow afterwards.
void GhostCache::touch_front(List::iterator it) {
  const u32 r = it->region;
  if (markers_[r] == it)
    markers_[r] = count_[r] > 1 ? std::prev(it) : lru_.end();
  lru_.splice(lru_.begin(), lru_, it);
  count_[r]--;
  it->region = 0;
  count_[0]++;
  if (count_[0] == 1) markers_[0] = lru_.begin();
}

void GhostCache::access(u64 lba) {
  if (!sampled(lba)) return;
  const auto found = index_.find(lba);
  if (found != index_.end()) {
    const u32 r = found->second->region;
    hits_[r] += 1.0;
    touch_front(found->second);
    demote_overflow(0);
    return;
  }
  misses_ += 1.0;
  lru_.push_front(Node{lba, 0});
  index_.emplace(lba, lru_.begin());
  count_[0]++;
  if (count_[0] == 1) markers_[0] = lru_.begin();
  if (index_.size() > capacity_) {
    // The hard budget can be tighter than the ladder: evict the tail first,
    // then let the cascade settle region counts.
    List::iterator tail = std::prev(lru_.end());
    const u32 tr = tail->region;
    if (markers_[tr] == tail)
      markers_[tr] = count_[tr] > 1 ? std::prev(tail) : lru_.end();
    count_[tr]--;
    index_.erase(tail->lba);
    lru_.pop_back();
  }
  demote_overflow(0);
}

GhostCache::Mrc GhostCache::mrc() const {
  Mrc out;
  out.sizes = cfg_.sizes;
  out.miss_ratio.resize(cfg_.sizes.size(), 1.0);
  double accesses = misses_;
  for (const double h : hits_) accesses += h;
  out.accesses = accesses;
  if (accesses <= 0.0) return out;  // all-miss prior until data arrives
  double cum = 0.0;
  for (size_t k = 0; k < hits_.size(); ++k) {
    cum += hits_[k];
    out.miss_ratio[k] = 1.0 - cum / accesses;
  }
  return out;
}

double GhostCache::Mrc::hit_ratio_at(u64 size_blocks) const {
  if (sizes.empty() || accesses <= 0.0) return 0.0;
  if (size_blocks == 0) return 0.0;
  if (size_blocks <= sizes.front()) {
    // Linear ramp from (0, 0) to the first ladder point.
    const double h0 = 1.0 - miss_ratio.front();
    return h0 * static_cast<double>(size_blocks) /
           static_cast<double>(sizes.front());
  }
  if (size_blocks >= sizes.back()) return 1.0 - miss_ratio.back();
  const auto hi = std::upper_bound(sizes.begin(), sizes.end(), size_blocks);
  const size_t j = static_cast<size_t>(hi - sizes.begin());
  const double h_lo = 1.0 - miss_ratio[j - 1];
  const double h_hi = 1.0 - miss_ratio[j];
  const double span = static_cast<double>(sizes[j] - sizes[j - 1]);
  const double frac =
      static_cast<double>(size_blocks - sizes[j - 1]) / span;
  return h_lo + (h_hi - h_lo) * frac;
}

void GhostCache::new_epoch() {
  for (double& h : hits_) h *= cfg_.decay;
  misses_ *= cfg_.decay;
}

size_t GhostCache::memory_bytes() const {
  // One list node (lba + region + two links) and one hash slot per entry,
  // plus the fixed per-region vectors.
  const size_t per_entry = sizeof(Node) + 2 * sizeof(void*) +
                           sizeof(std::pair<u64, List::iterator>);
  return index_.size() * per_entry +
         sampled_sizes_.size() *
             (sizeof(u64) * 2 + sizeof(double) + sizeof(List::iterator));
}

}  // namespace srcache::adapt
