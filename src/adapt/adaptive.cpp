#include "adapt/adaptive.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace srcache::adapt {

void AdaptConfig::validate() const {
  if (num_tenants == 0)
    throw std::invalid_argument("AdaptConfig: num_tenants must be > 0");
  if (capacity_blocks == 0)
    throw std::invalid_argument("AdaptConfig: capacity_blocks must be > 0");
  if (epoch <= 0) throw std::invalid_argument("AdaptConfig: epoch must be > 0");
  if (mrc_points == 0)
    throw std::invalid_argument("AdaptConfig: mrc_points must be > 0");
  if (ghost_max_entries == 0)
    throw std::invalid_argument("AdaptConfig: ghost_max_entries must be > 0");
  PartitionController::Config pc;
  pc.capacity_blocks = capacity_blocks;
  pc.quantum_blocks = quantum_blocks;
  pc.min_share = min_share;
  pc.hysteresis = hysteresis;
  pc.weights = weights;
  pc.validate(num_tenants);
}

namespace {

PartitionController::Config partition_config(const AdaptConfig& cfg) {
  PartitionController::Config pc;
  pc.capacity_blocks = cfg.capacity_blocks;
  pc.quantum_blocks = cfg.quantum_blocks;
  pc.min_share = cfg.min_share;
  pc.hysteresis = cfg.hysteresis;
  pc.weights = cfg.weights;
  return pc;
}

GhostCache::Config ghost_config(const AdaptConfig& cfg) {
  GhostCache::Config gc;
  gc.sampling_rate = cfg.sampling_rate;
  gc.max_entries = cfg.ghost_max_entries;
  gc.decay = cfg.ghost_decay;
  // Candidate ladder: capacity * k / mrc_points for k = 1..mrc_points. The
  // deepest point is full capacity — one tenant owning everything is a
  // feasible (if extreme) split the solver must be able to price.
  gc.sizes.reserve(cfg.mrc_points);
  for (u32 k = 1; k <= cfg.mrc_points; ++k) {
    const u64 s = cfg.capacity_blocks * k / cfg.mrc_points;
    if (gc.sizes.empty() || s > gc.sizes.back()) gc.sizes.push_back(s);
  }
  if (gc.sizes.empty()) gc.sizes.push_back(cfg.capacity_blocks);
  return gc;
}

}  // namespace

AdaptiveController::AdaptiveController(const AdaptConfig& cfg, ApplyFn apply)
    : cfg_(cfg), apply_(std::move(apply)), partitioner_(partition_config(cfg)) {
  cfg_.validate();
  const GhostCache::Config gc = ghost_config(cfg_);
  ghosts_.reserve(cfg_.num_tenants);
  for (u32 t = 0; t < cfg_.num_tenants; ++t) ghosts_.emplace_back(gc);
  epoch_accesses_.assign(cfg_.num_tenants, 0.0);
  // Start managed: until the first epoch closes there is no MRC evidence, so
  // the fair even split stands in.
  targets_ = partitioner_.even_split(cfg_.num_tenants);
  if (apply_) apply_(targets_);
}

void AdaptiveController::observe(u32 tenant, u64 lba, u32 nblocks) {
  if (tenant >= cfg_.num_tenants) return;
  epoch_accesses_[tenant] += static_cast<double>(nblocks);
  GhostCache& g = ghosts_[tenant];
  for (u32 i = 0; i < nblocks; ++i) g.access(lba + i);
}

void AdaptiveController::set_epoch_start(sim::SimTime t0) { epoch_start_ = t0; }

bool AdaptiveController::epoch_due(sim::SimTime now) const {
  return now - epoch_start_ >= cfg_.epoch;
}

const std::vector<u64>& AdaptiveController::run_epoch(sim::SimTime now) {
  std::vector<GhostCache::Mrc> mrcs;
  mrcs.reserve(cfg_.num_tenants);
  for (const GhostCache& g : ghosts_) mrcs.push_back(g.mrc());

  std::vector<u64> next = partitioner_.solve(mrcs, epoch_accesses_, targets_);
  if (next != targets_) {
    targets_ = std::move(next);
    rebalances_++;
    if (apply_) apply_(targets_);
  }
  for (GhostCache& g : ghosts_) g.new_epoch();
  epoch_accesses_.assign(cfg_.num_tenants, 0.0);
  epochs_++;
  epoch_start_ = now;
  return targets_;
}

u64 AdaptiveController::ghost_entries_total() const {
  u64 total = 0;
  for (const GhostCache& g : ghosts_) total += g.entries();
  return total;
}

size_t AdaptiveController::ghost_memory_bytes() const {
  size_t total = 0;
  for (const GhostCache& g : ghosts_) total += g.memory_bytes();
  return total;
}

void AdaptiveController::register_metrics(const obs::Scope& scope) {
  scope.counter_fn("epochs", [this] { return static_cast<u64>(epochs_); });
  scope.counter_fn("rebalances",
                   [this] { return static_cast<u64>(rebalances_); });
  scope.gauge_fn("ghost.entries", [this] {
    return static_cast<double>(ghost_entries_total());
  });
  scope.gauge_fn("ghost.memory_bytes", [this] {
    return static_cast<double>(ghost_memory_bytes());
  });
  for (u32 t = 0; t < cfg_.num_tenants; ++t) {
    scope.gauge_fn("tenant." + std::to_string(t) + ".target_blocks",
                   [this, t] { return static_cast<double>(targets_[t]); });
  }
}

}  // namespace srcache::adapt
