// The application-facing caching interface implemented by SRC and by the
// Bcache/Flashcache baselines: a block cache interposed between the host and
// primary storage, exactly where the Device Mapper target sits in the
// paper's prototype.
#pragma once

#include "block/block_device.hpp"
#include "sim/time.hpp"

namespace srcache::cache {

using sim::SimTime;

struct AppRequest {
  SimTime now = 0;
  bool is_write = false;
  u64 lba = 0;     // 4 KiB block address in primary-storage space
  u32 nblocks = 1;
  u32 tenant = 0;  // owning tenant in multi-tenant runs (0 otherwise)
  // Compressed size of each block as a percentage of kBlockSize, stamped by
  // the workload layer (deterministic per LBA). 0 means "unknown" — a
  // compressed tier treats such blocks as incompressible.
  u8 comp_pct = 0;
  // Optional content: `tags` supplies one tag per block on writes;
  // `tags_out` (capacity nblocks) receives block content on reads. Both may
  // be null for performance-only runs.
  const u64* tags = nullptr;
  u64* tags_out = nullptr;
};

// Cache-level accounting. Device-level I/O amplification is computed by the
// run harness from the SSD DeviceStats (so it includes metadata, parity and
// GC traffic regardless of which layer issued it).
struct CacheStats {
  u64 app_read_ops = 0;
  u64 app_read_blocks = 0;
  u64 app_write_ops = 0;
  u64 app_write_blocks = 0;

  u64 read_hit_blocks = 0;
  u64 read_miss_blocks = 0;
  u64 write_hit_blocks = 0;  // writes to an already-cached block
  u64 write_new_blocks = 0;

  u64 fetch_blocks = 0;      // primary -> cache fills
  u64 destage_blocks = 0;    // cache -> primary write-backs
  u64 gc_copy_blocks = 0;    // cache-internal (S2S) copies
  u64 dropped_clean_blocks = 0;
  u64 app_flushes = 0;

  // Fraction of accessed blocks already present in the cache.
  [[nodiscard]] double hit_ratio() const {
    const u64 hits = read_hit_blocks + write_hit_blocks;
    const u64 total = app_read_blocks + app_write_blocks;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
  [[nodiscard]] double read_hit_ratio() const {
    return app_read_blocks == 0
               ? 0.0
               : static_cast<double>(read_hit_blocks) /
                     static_cast<double>(app_read_blocks);
  }
  [[nodiscard]] u64 app_blocks() const { return app_read_blocks + app_write_blocks; }
};

class CacheDevice {
 public:
  virtual ~CacheDevice() = default;

  // Serves one request; returns its completion time.
  virtual SimTime submit(const AppRequest& req) = 0;

  // Application/file-system flush (fsync). Baselines differ in whether they
  // honor it (Bcache) or ignore it (Flashcache, §3.1).
  virtual SimTime flush(SimTime now) = 0;

  [[nodiscard]] virtual const CacheStats& stats() const = 0;

  // Number of distinct blocks currently cached (for utilization checks).
  [[nodiscard]] virtual u64 cached_blocks() const = 0;
};

}  // namespace srcache::cache
