// Anchor TU for srcache_cache.
#include "cache/cache_device.hpp"
