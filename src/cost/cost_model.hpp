// Cost-effectiveness model (§5.3, Fig. 6): throughput per dollar and
// expected lifetime per dollar for SSD-array configurations, using the
// lifetime-estimation approach of Jeong et al. [23]: a drive lasts until
// its rated P/E cycles are consumed by (daily host writes × total write
// amplification) spread over its capacity.
#pragma once

#include <vector>

#include "flash/ssd_specs.hpp"

namespace srcache::cost {

struct ArrayConfig {
  flash::SsdSpec spec;
  int count = 4;

  [[nodiscard]] double total_price() const {
    return spec.price_usd * count;
  }
  [[nodiscard]] double total_capacity_bytes() const {
    return static_cast<double>(spec.capacity_bytes) * count;
  }
  [[nodiscard]] double gb_per_dollar() const {
    return total_capacity_bytes() / 1e9 / total_price();
  }
};

struct CostReport {
  double throughput_mbps = 0.0;
  double mbps_per_dollar = 0.0;
  double lifetime_days = 0.0;
  double lifetime_days_per_dollar = 0.0;
};

// `daily_write_bytes` is the host-side volume the cache absorbs per day
// (the paper assumes 512 GB/day); `write_amplification` is the measured
// ratio of NAND program bytes to application write bytes (cache-layer
// amplification × FTL amplification).
double lifetime_days(const ArrayConfig& array, double daily_write_bytes,
                     double write_amplification);

CostReport evaluate(const ArrayConfig& array, double throughput_mbps,
                    double daily_write_bytes, double write_amplification);

}  // namespace srcache::cost
