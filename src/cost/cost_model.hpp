// Cost-effectiveness model (§5.3, Fig. 6): throughput per dollar and
// expected lifetime per dollar for SSD-array configurations, using the
// lifetime-estimation approach of Jeong et al. [23]: a drive lasts until
// its rated P/E cycles are consumed by (daily host writes × total write
// amplification) spread over its capacity.
#pragma once

#include <vector>

#include "flash/ssd_specs.hpp"

namespace srcache::cost {

struct ArrayConfig {
  flash::SsdSpec spec;
  int count = 4;

  [[nodiscard]] double total_price() const {
    return spec.price_usd * count;
  }
  [[nodiscard]] double total_capacity_bytes() const {
    return static_cast<double>(spec.capacity_bytes) * count;
  }
  [[nodiscard]] double gb_per_dollar() const {
    return total_capacity_bytes() / 1e9 / total_price();
  }
};

struct CostReport {
  double throughput_mbps = 0.0;
  double mbps_per_dollar = 0.0;
  double lifetime_days = 0.0;
  double lifetime_days_per_dollar = 0.0;
};

// `daily_write_bytes` is the host-side volume the cache absorbs per day
// (the paper assumes 512 GB/day); `write_amplification` is the measured
// ratio of NAND program bytes to application write bytes (cache-layer
// amplification × FTL amplification).
double lifetime_days(const ArrayConfig& array, double daily_write_bytes,
                     double write_amplification);

CostReport evaluate(const ArrayConfig& array, double throughput_mbps,
                    double daily_write_bytes, double write_amplification);

// --- compressed DRAM tier economics (src/tier) ---

// Server DRAM street price used when a compressed tier fronts the array.
// Deliberately a constant, like SsdSpec::price_usd: the model compares
// configurations, it does not track spot markets.
inline constexpr double kDramUsdPerGb = 4.0;

// Effective cache capacity of flash + compressed DRAM tier, in bytes: the
// tier's DRAM budget stretches by the measured compression ratio
// (compressed/uncompressed, in (0, 1]), so 64 GB of DRAM at ratio 0.5 adds
// 128 GB of logical reach.
double effective_capacity_bytes(const ArrayConfig& array,
                                double tier_budget_bytes,
                                double compression_ratio);

// The Fig. 6-style cost-effectiveness of that combination: effective
// gigabytes per dollar of (flash price + DRAM price). A tier pays for
// itself when this exceeds the array's bare gb_per_dollar().
double effective_gb_per_dollar(const ArrayConfig& array,
                               double tier_budget_bytes,
                               double compression_ratio,
                               double dram_usd_per_gb = kDramUsdPerGb);

}  // namespace srcache::cost
