#include "cost/cost_model.hpp"

#include <stdexcept>

namespace srcache::cost {

double lifetime_days(const ArrayConfig& array, double daily_write_bytes,
                     double write_amplification) {
  if (daily_write_bytes <= 0.0 || write_amplification <= 0.0)
    throw std::invalid_argument("lifetime_days: non-positive inputs");
  const double endurance_bytes =
      static_cast<double>(array.spec.endurance_cycles) *
      array.total_capacity_bytes();
  return endurance_bytes / (daily_write_bytes * write_amplification);
}

CostReport evaluate(const ArrayConfig& array, double throughput_mbps,
                    double daily_write_bytes, double write_amplification) {
  CostReport r;
  r.throughput_mbps = throughput_mbps;
  r.mbps_per_dollar = throughput_mbps / array.total_price();
  r.lifetime_days = lifetime_days(array, daily_write_bytes, write_amplification);
  r.lifetime_days_per_dollar = r.lifetime_days / array.total_price();
  return r;
}

}  // namespace srcache::cost
