#include "cost/cost_model.hpp"

#include <stdexcept>

namespace srcache::cost {

double lifetime_days(const ArrayConfig& array, double daily_write_bytes,
                     double write_amplification) {
  if (daily_write_bytes <= 0.0 || write_amplification <= 0.0)
    throw std::invalid_argument("lifetime_days: non-positive inputs");
  const double endurance_bytes =
      static_cast<double>(array.spec.endurance_cycles) *
      array.total_capacity_bytes();
  return endurance_bytes / (daily_write_bytes * write_amplification);
}

CostReport evaluate(const ArrayConfig& array, double throughput_mbps,
                    double daily_write_bytes, double write_amplification) {
  CostReport r;
  r.throughput_mbps = throughput_mbps;
  r.mbps_per_dollar = throughput_mbps / array.total_price();
  r.lifetime_days = lifetime_days(array, daily_write_bytes, write_amplification);
  r.lifetime_days_per_dollar = r.lifetime_days / array.total_price();
  return r;
}

double effective_capacity_bytes(const ArrayConfig& array,
                                double tier_budget_bytes,
                                double compression_ratio) {
  if (tier_budget_bytes < 0.0 || compression_ratio <= 0.0 ||
      compression_ratio > 1.0)
    throw std::invalid_argument("effective_capacity_bytes: bad tier inputs");
  return array.total_capacity_bytes() + tier_budget_bytes / compression_ratio;
}

double effective_gb_per_dollar(const ArrayConfig& array,
                               double tier_budget_bytes,
                               double compression_ratio,
                               double dram_usd_per_gb) {
  const double capacity =
      effective_capacity_bytes(array, tier_budget_bytes, compression_ratio);
  const double price =
      array.total_price() + tier_budget_bytes / 1e9 * dram_usd_per_gb;
  return capacity / 1e9 / price;
}

}  // namespace srcache::cost
