#include "hdd/sim_hdd.hpp"

#include <cmath>
#include <stdexcept>

namespace srcache::hdd {

SimHdd::SimHdd(const HddConfig& cfg)
    : cfg_(cfg),
      blocks_(cfg.capacity_bytes / kBlockSize),
      content_(cfg.track_content) {
  if (blocks_ == 0) throw std::invalid_argument("SimHdd capacity too small");
}

IoResult SimHdd::access(SimTime now, u64 lba, u32 n) {
  if (failed_) return {now, ErrorCode::kDeviceFailed};
  if (lba + n > blocks_) return {now, ErrorCode::kInvalidArgument};
  SimTime service = cfg_.command_overhead +
                    sim::transfer_time(blocks_to_bytes(n), cfg_.transfer_mbps);
  if (lba != head_pos_) {
    // Positioning: seek distance scales the seek time down to a
    // track-to-track floor, plus rotational delay. Background batches
    // (elevator-sorted destage sweeps) see rotational-position-ordered
    // scheduling: half the average rotational latency.
    const u64 gap = lba > head_pos_ ? lba - head_pos_ : head_pos_ - lba;
    const double dist = static_cast<double>(gap) / static_cast<double>(blocks_);
    const auto seek = static_cast<SimTime>(
        static_cast<double>(cfg_.avg_seek) * (0.1 + 0.9 * std::sqrt(dist)));
    const SimTime rotation =
        background_ ? cfg_.avg_rotation / 2 : cfg_.avg_rotation;
    // Near-contiguous forward skips do not pay a mechanical seek at all:
    // the head streams over the gap.
    const SimTime stream_over =
        sim::transfer_time(blocks_to_bytes(gap), cfg_.transfer_mbps) +
        500 * sim::kUs;
    service += std::min(seek + rotation, stream_over);
  }
  head_pos_ = lba + n;
  return {arm_.submit(now, service, background_), ErrorCode::kOk};
}

IoResult SimHdd::read(SimTime now, u64 lba, u32 n, std::span<u64> tags_out) {
  IoResult r = access(now, lba, n);
  if (!r.ok()) return r;
  stats_.read_ops++;
  stats_.read_blocks += n;
  if (media_.affects(lba, n)) return {r.done, ErrorCode::kMediaError};
  content_.read(lba, n, tags_out);
  return r;
}

IoResult SimHdd::write(SimTime now, u64 lba, u32 n, std::span<const u64> tags) {
  IoResult r = access(now, lba, n);
  if (!r.ok()) return r;
  media_.on_write(lba, n);
  content_.write(lba, n, tags);
  stats_.write_ops++;
  stats_.write_blocks += n;
  return r;
}

IoResult SimHdd::write_payload(SimTime now, u64 lba, Payload payload) {
  const u32 n = std::max<u32>(
      1, static_cast<u32>(bytes_to_blocks(payload ? payload->size() : 1)));
  IoResult r = access(now, lba, n);
  if (!r.ok()) return r;
  media_.on_write(lba, n);
  content_.write_payload(lba, n, std::move(payload));
  stats_.write_ops++;
  stats_.write_blocks += n;
  return r;
}

Result<Payload> SimHdd::read_payload(SimTime now, u64 lba, SimTime* done) {
  if (failed_) return Status(ErrorCode::kDeviceFailed);
  IoResult r = access(now, lba, 1);
  if (done != nullptr) *done = r.done;
  stats_.read_ops++;
  stats_.read_blocks++;
  if (media_.affects(lba, 1)) return Status(ErrorCode::kMediaError);
  return content_.read_payload(lba);
}

IoResult SimHdd::flush(SimTime now) {
  if (failed_) return {now, ErrorCode::kDeviceFailed};
  stats_.flushes++;
  // Drain the on-disk write cache: wait for the arm to go idle.
  return {arm_.submit(now, 0, background_), ErrorCode::kOk};
}

IoResult SimHdd::trim(SimTime now, u64 lba, u64 n) {
  if (failed_) return {now, ErrorCode::kDeviceFailed};
  media_.on_write(lba, n);
  content_.discard(lba, n);
  stats_.trim_ops++;
  stats_.trim_blocks += n;
  return {now + cfg_.command_overhead, ErrorCode::kOk};
}

}  // namespace srcache::hdd
