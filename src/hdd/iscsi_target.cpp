#include "hdd/iscsi_target.hpp"

#include <algorithm>

namespace srcache::hdd {

IscsiTarget::IscsiTarget(const IscsiConfig& cfg) : cfg_(cfg) {
  for (int i = 0; i < cfg_.num_disks; ++i)
    disks_.push_back(std::make_unique<SimHdd>(cfg_.disk));
  std::vector<blockdev::BlockDevice*> members;
  members.reserve(disks_.size());
  for (auto& d : disks_) members.push_back(d.get());
  raid::RaidConfig rc{raid::RaidLevel::kRaid1, cfg_.chunk_blocks};
  volume_ = std::make_unique<raid::RaidDevice>(rc, std::move(members));
  gen_capacity_blocks_ = std::max<u64>(1, cfg_.server_cache_bytes / kBlockSize / 2);
}

u64 IscsiTarget::capacity_blocks() const { return volume_->capacity_blocks(); }

void IscsiTarget::register_metrics(const obs::Scope& scope) {
  scope.counter_fn("read_ops", [this] { return stats_.read_ops; });
  scope.counter_fn("read_blocks", [this] { return stats_.read_blocks; });
  scope.counter_fn("write_ops", [this] { return stats_.write_ops; });
  scope.counter_fn("write_blocks", [this] { return stats_.write_blocks; });
  scope.counter_fn("flushes", [this] { return stats_.flushes; });
  scope.counter_fn("ram_hits", [this] { return ram_hits_; });
  scope.counter_fn("ram_misses", [this] { return ram_misses_; });
  scope.counter_fn("link.busy_ns",
                   [this] { return static_cast<u64>(link_.busy_time()); });
  // Per-arm busy time: lets the time-series sampler attribute utilization to
  // individual spindles ("util.hdd.disk.N.arm") and expose destage skew.
  for (size_t i = 0; i < disks_.size(); ++i) {
    scope.counter_fn("disk." + std::to_string(i) + ".arm_busy_ns",
                     [this, i] {
                       return static_cast<u64>(disks_[i]->arm_busy_time());
                     });
  }
  scope.gauge_fn("dirty_backlog_bytes",
                 [this] { return static_cast<double>(pending_bytes_); });
}

SimTime IscsiTarget::link_transfer(SimTime now, u64 bytes) {
  SimTime service = sim::transfer_time(bytes, cfg_.link_mbps);
  if (degraded(now))
    service = static_cast<SimTime>(static_cast<double>(service) *
                                   degrade_factor_);
  return link_.submit(now, service, background_);
}

SimTime IscsiTarget::half_rtt(SimTime now) const {
  const SimTime half = cfg_.rtt / 2;
  if (!degraded(now)) return half;
  return static_cast<SimTime>(static_cast<double>(half) * degrade_factor_);
}

bool IscsiTarget::cache_lookup(u64 lba, u64* tag) const {
  if (auto it = gen_cur_.find(lba); it != gen_cur_.end()) {
    if (tag != nullptr) *tag = it->second;
    return true;
  }
  if (auto it = gen_prev_.find(lba); it != gen_prev_.end()) {
    if (tag != nullptr) *tag = it->second;
    return true;
  }
  return false;
}

void IscsiTarget::cache_insert(u64 lba, u64 tag) {
  gen_cur_[lba] = tag;
  gen_prev_.erase(lba);
  if (gen_cur_.size() >= gen_capacity_blocks_) {
    gen_prev_ = std::move(gen_cur_);
    gen_cur_.clear();
  }
}

SimTime IscsiTarget::absorb_write(SimTime now, SimTime drained_at, u64 bytes) {
  if (bytes > cfg_.dirty_limit_bytes) return drained_at;  // cannot absorb
  while (!pending_.empty() && pending_.front().first <= now) {
    pending_bytes_ -= pending_.front().second;
    pending_.pop_front();
  }
  SimTime admitted = now;
  while (pending_bytes_ + bytes > cfg_.dirty_limit_bytes && !pending_.empty()) {
    admitted = std::max(admitted, pending_.front().first);
    pending_bytes_ -= pending_.front().second;
    pending_.pop_front();
  }
  pending_.emplace_back(drained_at, bytes);
  pending_bytes_ += bytes;
  return admitted;
}

blockdev::IoResult IscsiTarget::read(SimTime now, u64 lba, u32 n,
                                     std::span<u64> tags_out) {
  if (failed_) return {now, ErrorCode::kDeviceFailed};
  stats_.read_ops++;
  stats_.read_blocks += n;
  // Server page cache: if the whole range is resident, serve at link speed.
  bool all_cached = true;
  for (u32 i = 0; i < n && all_cached; ++i)
    all_cached = cache_lookup(lba + i, nullptr);
  if (all_cached) {
    ram_hits_ += n;
    for (u32 i = 0; i < n; ++i) {
      u64 tag = 0;
      (void)cache_lookup(lba + i, &tag);  // resident: checked just above
      if (!tags_out.empty()) tags_out[i] = tag;
    }
    const SimTime done = link_transfer(now + half_rtt(now), blocks_to_bytes(n)) +
                         half_rtt(now);
    if (trace_ != nullptr)
      trace_->complete("hdd.read_ram", trace_track_, now, done, n);
    return {done, ErrorCode::kOk};
  }
  ram_misses_ += n;
  blockdev::IoResult r = volume_->read(now + half_rtt(now), lba, n, tags_out);
  if (!r.ok()) return r;
  for (u32 i = 0; i < n; ++i)
    cache_insert(lba + i, tags_out.empty() ? 0 : tags_out[i]);
  const SimTime done = link_transfer(r.done, blocks_to_bytes(n)) + half_rtt(now);
  if (trace_ != nullptr)
    trace_->complete("hdd.read_disk", trace_track_, now, done, n);
  return {done, ErrorCode::kOk};
}

blockdev::IoResult IscsiTarget::write(SimTime now, u64 lba, u32 n,
                                      std::span<const u64> tags) {
  if (failed_) return {now, ErrorCode::kDeviceFailed};
  stats_.write_ops++;
  stats_.write_blocks += n;
  const SimTime sent = link_transfer(now, blocks_to_bytes(n)) + half_rtt(now);
  for (u32 i = 0; i < n; ++i)
    cache_insert(lba + i, tags.empty() ? 0 : tags[i]);
  // Server-side writeback: the volume write drains in the background; the
  // command completes once the data is in server RAM (admission-bounded).
  volume_->set_background(true);
  blockdev::IoResult r = volume_->write(sent, lba, n, tags);
  volume_->set_background(false);
  const SimTime drained = r.ok() ? r.done : sent;
  const SimTime admitted = absorb_write(sent, drained, blocks_to_bytes(n));
  if (trace_ != nullptr)
    trace_->complete("hdd.write", trace_track_, now, admitted + half_rtt(now), n);
  return {admitted + half_rtt(now), ErrorCode::kOk};
}

blockdev::IoResult IscsiTarget::write_payload(SimTime now, u64 lba,
                                              blockdev::Payload payload) {
  if (failed_) return {now, ErrorCode::kDeviceFailed};
  const u64 bytes = payload ? payload->size() : 1;
  const SimTime sent = link_transfer(now, bytes) + half_rtt(now);
  for (u64 i = 0; i < bytes_to_blocks(bytes); ++i) gen_cur_.erase(lba + i);
  blockdev::IoResult r = volume_->write_payload(sent, lba, std::move(payload));
  if (!r.ok()) return r;
  stats_.write_ops++;
  stats_.write_blocks += bytes_to_blocks(bytes);
  return {r.done + half_rtt(now), ErrorCode::kOk};
}

Result<blockdev::Payload> IscsiTarget::read_payload(SimTime now, u64 lba,
                                                    SimTime* done) {
  if (failed_) return Status(ErrorCode::kDeviceFailed);
  auto r = volume_->read_payload(now + half_rtt(now), lba, done);
  if (done != nullptr) *done += half_rtt(now);
  return r;
}

blockdev::IoResult IscsiTarget::flush(SimTime now) {
  if (failed_) return {now, ErrorCode::kDeviceFailed};
  // Drain the server's dirty pages, then flush the disks.
  SimTime drained = now;
  if (!pending_.empty()) drained = std::max(drained, pending_.back().first);
  pending_.clear();
  pending_bytes_ = 0;
  blockdev::IoResult r = volume_->flush(drained + half_rtt(now));
  if (!r.ok()) return r;
  stats_.flushes++;
  if (trace_ != nullptr)
    trace_->complete("hdd.flush", trace_track_, now, r.done + half_rtt(now));
  return {r.done + half_rtt(now), ErrorCode::kOk};
}

blockdev::IoResult IscsiTarget::trim(SimTime now, u64 lba, u64 n) {
  if (failed_) return {now, ErrorCode::kDeviceFailed};
  for (u64 i = 0; i < n; ++i) {
    gen_cur_.erase(lba + i);
    gen_prev_.erase(lba + i);
  }
  stats_.trim_ops++;
  stats_.trim_blocks += n;
  return volume_->trim(now + 2 * half_rtt(now), lba, n);
}

}  // namespace srcache::hdd
