// IscsiTarget: the paper's primary storage — a RAID-10 volume of eight
// 7.2K-RPM disks exported over a 1 Gbps iSCSI link (Table 1).
//
// The target is a Linux storage server, so it has a page cache: reads that
// hit server RAM are served at link speed, and writes are absorbed into
// RAM (bounded by a dirty limit) and drained to the disks by a background
// writeback path. Without this, no mechanical array could absorb the
// destage rates the paper sustains.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "block/block_device.hpp"
#include "hdd/sim_hdd.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "raid/raid_device.hpp"
#include "sim/timeline.hpp"

namespace srcache::hdd {

struct IscsiConfig {
  int num_disks = 8;
  HddConfig disk;
  double link_mbps = 117.0;             // 1 Gbps effective
  sim::SimTime rtt = 300 * sim::kUs;    // per-command network round trip
  u32 chunk_blocks = 16;                // RAID-10 chunk (64 KiB)
  // Server page cache (the paper's target host has 32 GB RAM).
  u64 server_cache_bytes = 24 * GiB;
  // Writes beyond this un-drained backlog block at disk speed.
  u64 dirty_limit_bytes = 4 * GiB;
};

class IscsiTarget final : public blockdev::BlockDevice {
 public:
  explicit IscsiTarget(const IscsiConfig& cfg);

  [[nodiscard]] u64 capacity_blocks() const override;

  blockdev::IoResult read(SimTime now, u64 lba, u32 n,
                          std::span<u64> tags_out) override;
  blockdev::IoResult write(SimTime now, u64 lba, u32 n,
                           std::span<const u64> tags) override;
  blockdev::IoResult write_payload(SimTime now, u64 lba,
                                   blockdev::Payload payload) override;
  Result<blockdev::Payload> read_payload(SimTime now, u64 lba,
                                         SimTime* done) override;
  blockdev::IoResult flush(SimTime now) override;
  blockdev::IoResult trim(SimTime now, u64 lba, u64 n) override;

  [[nodiscard]] const blockdev::DeviceStats& stats() const override {
    return stats_;
  }

  void set_background(bool background) override { background_ = background; }

  void fail() override { failed_ = true; }
  void heal() override { failed_ = false; }
  [[nodiscard]] bool failed() const override {
    return failed_ || volume_->failed();
  }
  void corrupt(u64 lba) override { volume_->corrupt(lba); }

  // Link degradation (iSCSI path congestion / flaky interconnect): wire
  // transfers and round trips are stretched by `factor` until `until`.
  void degrade_service(double factor, SimTime until) override {
    degrade_factor_ = factor;
    degrade_until_ = until;
  }
  [[nodiscard]] bool degraded(SimTime now) const {
    return now < degrade_until_ && degrade_factor_ > 1.0;
  }

  [[nodiscard]] raid::RaidDevice& volume() { return *volume_; }
  // Member-disk access for fault-injection tests.
  [[nodiscard]] SimHdd& disk(size_t i) { return *disks_.at(i); }
  [[nodiscard]] size_t num_disks() const { return disks_.size(); }
  // Server page-cache hit counters (for model sanity checks).
  [[nodiscard]] u64 ram_hits() const { return ram_hits_; }
  [[nodiscard]] u64 ram_misses() const { return ram_misses_; }

  // Registers pull-style observability metrics (link busy time, page-cache
  // hits, I/O and dirty-backlog accounting) under `scope`, e.g. "hdd". The
  // callbacks read this target; it must outlive the registry's snapshots.
  void register_metrics(const obs::Scope& scope);

  // Attaches an event trace (nullptr detaches): per-command read/write/flush
  // events are emitted on `track` (opt-in; traced runs only).
  void set_trace(obs::TraceLog* log, u32 track) {
    trace_ = log;
    trace_track_ = track;
  }

 private:
  SimTime link_transfer(SimTime now, u64 bytes);
  // Half a network round trip, stretched while the link is degraded.
  [[nodiscard]] SimTime half_rtt(SimTime now) const;
  // Two-generation LRU approximation over 4 KiB blocks (lba -> tag).
  [[nodiscard]] bool cache_lookup(u64 lba, u64* tag) const;
  void cache_insert(u64 lba, u64 tag);
  // Admission-controlled write-back: absorbs bytes into server RAM, drains
  // to the volume in the background; returns the admission time.
  SimTime absorb_write(SimTime now, SimTime drained_at, u64 bytes);

  IscsiConfig cfg_;
  std::vector<std::unique_ptr<SimHdd>> disks_;
  std::unique_ptr<raid::RaidDevice> volume_;
  sim::PriorityTimeline link_;
  bool background_ = false;
  bool failed_ = false;
  double degrade_factor_ = 1.0;
  SimTime degrade_until_ = 0;

  std::unordered_map<u64, u64> gen_cur_, gen_prev_;
  u64 gen_capacity_blocks_;
  std::deque<std::pair<SimTime, u64>> pending_;  // (drain done, bytes)
  u64 pending_bytes_ = 0;
  u64 ram_hits_ = 0, ram_misses_ = 0;
  blockdev::DeviceStats stats_;

  obs::TraceLog* trace_ = nullptr;
  u32 trace_track_ = 0;
};

}  // namespace srcache::hdd
