// SimHdd: a mechanical disk model — one arm, positioning cost for
// non-sequential access, streaming transfer rate. Eight of these in RAID-10
// behind a 1 Gbps link form the paper's primary storage (Table 1).
#pragma once

#include "block/block_device.hpp"
#include "block/content_store.hpp"
#include "block/media_errors.hpp"
#include "sim/timeline.hpp"

namespace srcache::hdd {

using blockdev::BlockDevice;
using blockdev::DeviceStats;
using blockdev::IoResult;
using blockdev::Payload;
using sim::SimTime;

struct HddConfig {
  u64 capacity_bytes = 64 * GiB;      // scaled stand-in for a 2 TB spindle
  double transfer_mbps = 150.0;       // media streaming rate
  sim::SimTime avg_seek = 8 * sim::kMs;        // 7.2K RPM class
  sim::SimTime avg_rotation = 4170 * sim::kUs; // half a revolution at 7200 rpm
  sim::SimTime command_overhead = 200 * sim::kUs;
  bool track_content = true;
};

class SimHdd final : public BlockDevice {
 public:
  explicit SimHdd(const HddConfig& cfg);

  [[nodiscard]] u64 capacity_blocks() const override { return blocks_; }

  IoResult read(SimTime now, u64 lba, u32 n, std::span<u64> tags_out) override;
  IoResult write(SimTime now, u64 lba, u32 n, std::span<const u64> tags) override;
  IoResult write_payload(SimTime now, u64 lba, Payload payload) override;
  Result<Payload> read_payload(SimTime now, u64 lba, SimTime* done) override;
  IoResult flush(SimTime now) override;
  IoResult trim(SimTime now, u64 lba, u64 n) override;

  [[nodiscard]] const DeviceStats& stats() const override { return stats_; }

  void fail() override { failed_ = true; }
  void heal() override { failed_ = false; }
  [[nodiscard]] bool failed() const override { return failed_; }
  void corrupt(u64 lba) override { content_.corrupt(lba); }
  void inject_media_errors(u64 lba, u64 n) override { media_.add(lba, n); }
  void clear_media_errors() override { media_.clear(); }
  [[nodiscard]] u64 media_error_blocks() const { return media_.size(); }
  // Background ops (destage sweeps) yield to foreground ones on the arm.
  void set_background(bool background) override { background_ = background; }

  // Cumulative arm service time (seek + rotation + transfer), for per-disk
  // utilization attribution by the observability layer.
  [[nodiscard]] SimTime arm_busy_time() const { return arm_.busy_time(); }

 private:
  IoResult access(SimTime now, u64 lba, u32 n);

  HddConfig cfg_;
  u64 blocks_;
  blockdev::ContentStore content_;
  blockdev::MediaErrorSet media_;
  sim::PriorityTimeline arm_;
  u64 head_pos_ = 0;  // LBA after the last access (sequentiality detection)
  bool background_ = false;
  DeviceStats stats_;
  bool failed_ = false;
};

}  // namespace srcache::hdd
