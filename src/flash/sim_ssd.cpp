#include "flash/sim_ssd.hpp"

#include <algorithm>

namespace srcache::flash {

namespace {
FtlConfig make_ftl_config(const SsdSpec& spec) {
  FtlConfig cfg;
  cfg.units = spec.units;
  cfg.pages_per_block = spec.pages_per_block;
  cfg.exported_pages = spec.capacity_bytes / kBlockSize;
  cfg.ops_fraction = spec.ops_fraction;
  return cfg;
}
}  // namespace

SimSsd::SimSsd(const SsdSpec& spec, bool track_content)
    : spec_(spec),
      exported_blocks_(spec.capacity_bytes / kBlockSize),
      ftl_(make_ftl_config(spec)),
      content_(track_content),
      controller_(spec.controller_lanes),
      interface_(spec.interface_mbps),
      nand_(spec.units) {}

IoResult SimSsd::check(SimTime now, u64 lba, u64 n) const {
  if (failed_) return {now, ErrorCode::kDeviceFailed};
  if (lba + n > exported_blocks_) return {now, ErrorCode::kInvalidArgument};
  return {now, ErrorCode::kOk};
}

SimTime SimSsd::charge_nand(SimTime start, const NandOps& ops) {
  SimTime done = start;
  if (ops.gc_reads > 0)
    done = std::max(done, nand_.submit_batch(start, ops.gc_reads, spec_.read_latency));
  if (ops.programs > 0)
    done = std::max(done, nand_.submit_batch(start, ops.programs, spec_.program_latency));
  if (ops.erases > 0)
    done = std::max(done, nand_.submit_batch(start, ops.erases, spec_.erase_latency));
  return done;
}

SimTime SimSsd::admit_to_buffer(SimTime ready, u64 bytes, SimTime nand_done) {
  // Reclaim space for writes whose NAND programs already finished.
  while (!pending_.empty() && pending_.front().first <= ready) {
    pending_bytes_ -= pending_.front().second;
    pending_.pop_front();
  }
  // If the buffer cannot hold this write, stall until enough drains.
  while (pending_bytes_ + bytes > spec_.write_buffer_bytes && !pending_.empty()) {
    ready = std::max(ready, pending_.front().first);
    pending_bytes_ -= pending_.front().second;
    pending_.pop_front();
  }
  pending_.emplace_back(nand_done, bytes);
  pending_bytes_ += bytes;
  return ready;
}

IoResult SimSsd::read(SimTime now, u64 lba, u32 n, std::span<u64> tags_out) {
  IoResult c = check(now, lba, n);
  if (!c.ok()) return c;
  const SimTime t_ctrl = controller_.submit(now, spec_.command_overhead);
  // Count mapped pages; unmapped reads return zeroes without NAND work.
  u64 mapped = 0;
  for (u32 i = 0; i < n; ++i)
    if (ftl_.is_mapped(lba + i)) ++mapped;
  const SimTime t_nand = nand_.submit_batch(t_ctrl, mapped, spec_.read_latency);
  const SimTime done = interface_.transfer(std::max(t_ctrl, t_nand),
                                           blocks_to_bytes(n));
  stats_.read_ops++;
  stats_.read_blocks += n;
  if (span_ != nullptr && span_->sampling()) {
    const u32 s = span_->begin_span("ssd.read", now, span_dev_);
    if (s != obs::kNoSpan) {
      if (mapped > 0) {
        const u32 ns = span_->begin_span("nand.read", t_ctrl, span_dev_);
        if (ns != obs::kNoSpan) span_->end_span(ns, t_nand, mapped);
      }
      span_->end_span(s, done, n);
    }
  }
  // A latent sector error is reported only after the device has attempted
  // the read (ECC retries), so timing is charged before failing.
  if (media_.affects(lba, n)) return {done, ErrorCode::kMediaError};
  content_.read(lba, n, tags_out);
  return {done, ErrorCode::kOk};
}

IoResult SimSsd::write(SimTime now, u64 lba, u32 n, std::span<const u64> tags) {
  IoResult c = check(now, lba, n);
  if (!c.ok()) return c;
  const SimTime t_ctrl = controller_.submit(now, spec_.command_overhead);
  const SimTime t_iface = interface_.transfer(t_ctrl, blocks_to_bytes(n));

  NandOps ops;
  for (u32 i = 0; i < n; ++i) ops += ftl_.write(lba + i);
  const SimTime nand_done = charge_nand(t_iface, ops);
  const SimTime done = admit_to_buffer(t_iface, blocks_to_bytes(n), nand_done);

  if (trace_ != nullptr && (ops.gc_reads > 0 || ops.erases > 0))
    trace_->complete("ssd.gc", trace_track_, t_iface, nand_done, ops.erases);
  if (span_ != nullptr && span_->sampling()) {
    const u32 s = span_->begin_span("ssd.write", now, span_dev_);
    if (s != obs::kNoSpan) {
      if (ops.programs > 0) {
        const u32 ns = span_->begin_span("nand.program", t_iface, span_dev_);
        if (ns != obs::kNoSpan) span_->end_span(ns, nand_done, ops.programs);
      }
      span_->end_span(s, done, n);
    }
  }
  media_.on_write(lba, n);
  content_.write(lba, n, tags);
  stats_.write_ops++;
  stats_.write_blocks += n;
  return {done, ErrorCode::kOk};
}

IoResult SimSsd::write_payload(SimTime now, u64 lba, Payload payload) {
  const u32 n = std::max<u32>(
      1, static_cast<u32>(bytes_to_blocks(payload ? payload->size() : 1)));
  IoResult c = check(now, lba, n);
  if (!c.ok()) return c;
  const SimTime t_ctrl = controller_.submit(now, spec_.command_overhead);
  const SimTime t_iface = interface_.transfer(t_ctrl, blocks_to_bytes(n));
  NandOps ops;
  for (u32 i = 0; i < n; ++i) ops += ftl_.write(lba + i);
  const SimTime nand_done = charge_nand(t_iface, ops);
  const SimTime done = admit_to_buffer(t_iface, blocks_to_bytes(n), nand_done);
  media_.on_write(lba, n);
  content_.write_payload(lba, n, std::move(payload));
  stats_.write_ops++;
  stats_.write_blocks += n;
  return {done, ErrorCode::kOk};
}

Result<Payload> SimSsd::read_payload(SimTime now, u64 lba, SimTime* done) {
  if (failed_) return Status(ErrorCode::kDeviceFailed);
  if (lba >= exported_blocks_) return Status(ErrorCode::kInvalidArgument);
  u64 tag;
  IoResult r = read(now, lba, 1, std::span<u64>(&tag, 1));
  if (done != nullptr) *done = r.done;
  if (!r.ok()) return Status(r.error);
  return content_.read_payload(lba);
}

IoResult SimSsd::flush(SimTime now) {
  if (failed_) return {now, ErrorCode::kDeviceFailed};
  // Drain: every buffered write must reach NAND; then a fixed barrier while
  // the controller persists its mapping state. The controller is occupied
  // for the whole period, so queued reads/writes stall behind the flush.
  SimTime drain = now;
  if (!pending_.empty()) drain = std::max(drain, pending_.back().first);
  pending_.clear();
  pending_bytes_ = 0;
  const SimTime service = (drain - now) + spec_.flush_barrier;
  SimTime done = now;
  for (int lane = 0; lane < controller_.units(); ++lane)
    done = std::max(done, controller_.submit(now, service));
  stats_.flushes++;
  if (trace_ != nullptr) trace_->complete("ssd.flush", trace_track_, now, done);
  return {done, ErrorCode::kOk};
}

IoResult SimSsd::trim(SimTime now, u64 lba, u64 n) {
  IoResult c = check(now, lba, n);
  if (!c.ok()) return c;
  const SimTime done = controller_.submit(now, spec_.command_overhead);
  ftl_.trim(lba, n);
  media_.on_write(lba, n);
  content_.discard(lba, n);
  stats_.trim_ops++;
  stats_.trim_blocks += n;
  return {done, ErrorCode::kOk};
}

void SimSsd::register_metrics(const obs::Scope& scope) {
  scope.counter_fn("read_ops", [this] { return stats_.read_ops; });
  scope.counter_fn("read_blocks", [this] { return stats_.read_blocks; });
  scope.counter_fn("write_ops", [this] { return stats_.write_ops; });
  scope.counter_fn("write_blocks", [this] { return stats_.write_blocks; });
  scope.counter_fn("flushes", [this] { return stats_.flushes; });
  scope.counter_fn("trim_blocks", [this] { return stats_.trim_blocks; });
  scope.counter_fn("gc.pages_copied",
                   [this] { return ftl_.stats().gc_pages_copied; });
  scope.counter_fn("gc.erases", [this] { return ftl_.stats().blocks_erased; });
  scope.counter_fn("host_pages_written",
                   [this] { return ftl_.stats().host_pages_written; });
  scope.counter_fn("pages_programmed",
                   [this] { return ftl_.stats().total_pages_programmed; });
  scope.counter_fn("nand_busy_ns",
                   [this] { return static_cast<u64>(nand_.busy_time()); });
  scope.counter_fn("controller_busy_ns", [this] {
    return static_cast<u64>(controller_.busy_time());
  });
  scope.counter_fn("interface_busy_ns", [this] {
    return static_cast<u64>(interface_.busy_time());
  });
  // Unit counts let the time-series sampler normalize busy-time deltas into
  // 0..1 utilizations ("util.ssd.N.nand" etc.); per-die busy counters expose
  // placement skew that the aggregate hides.
  scope.gauge_fn("nand_units",
                 [this] { return static_cast<double>(nand_.units()); });
  scope.gauge_fn("controller_units",
                 [this] { return static_cast<double>(controller_.units()); });
  for (int die = 0; die < nand_.units(); ++die) {
    scope.counter_fn("nand.die." + std::to_string(die) + ".busy_ns",
                     [this, die] {
                       return static_cast<u64>(
                           nand_.busy_time(static_cast<size_t>(die)));
                     });
  }
  scope.gauge_fn("write_amplification",
                 [this] { return ftl_.stats().write_amplification(); });
  scope.gauge_fn("write_buffer_bytes",
                 [this] { return static_cast<double>(pending_bytes_); });
  scope.gauge_fn("media_error_blocks",
                 [this] { return static_cast<double>(media_.size()); });
}

void SimSsd::precondition() {
  for (u64 lba = 0; lba < exported_blocks_; ++lba) ftl_.write(lba);
  reset_timing();
}

void SimSsd::replace_media() {
  // A physical drive swap: the replacement arrives blank with a fresh FTL.
  // Timing pipelines and cumulative I/O stats belong to the array slot, not
  // the media, so they survive — provenance balances against cumulative
  // write_blocks across the swap.
  failed_ = false;
  content_.clear();
  media_.clear();
  ftl_ = Ftl(ftl_.config());
  pending_.clear();
  pending_bytes_ = 0;
}

void SimSsd::reset_timing() {
  controller_.reset();
  interface_.reset();
  nand_.reset();
  pending_.clear();
  pending_bytes_ = 0;
  stats_ = DeviceStats{};
}

}  // namespace srcache::flash
