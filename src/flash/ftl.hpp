// Page-mapped Flash Translation Layer.
//
// This is the mechanism behind every observation the paper builds on: small
// random overwrites force the FTL to copy live pages during internal garbage
// collection (write amplification), while host writes recycled in units of
// the *erase group* — the set of flash blocks filled in parallel across all
// dies — invalidate whole blocks and keep amplification near 1. The erase
// group size therefore equals parallel_units × block_bytes (§2.1, §3.3,
// Fig. 2), and over-provisioning trades capacity for GC efficiency.
//
// The FTL is purely a placement/accounting engine; SimSsd converts the
// returned operation counts into NAND time.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace srcache::flash {

struct FtlConfig {
  // Parallel NAND units (channels × dies). Host and GC write streams are
  // striped page-by-page across this many open blocks.
  int units = 32;
  u64 pages_per_block = 2048;  // 4 KiB pages -> 8 MiB flash blocks
  u64 exported_pages = 0;      // logical capacity in 4 KiB pages
  // Over-provisioned fraction of exported capacity (0.0 means "only the
  // internal minimum spare", as commodity drives always reserve a little).
  double ops_fraction = 0.07;

  [[nodiscard]] u64 erase_group_pages() const {
    return static_cast<u64>(units) * pages_per_block;
  }
};

// NAND work performed by one host operation (including any internal GC it
// triggered). SimSsd turns these into time on the NAND servers.
struct NandOps {
  u64 programs = 0;   // host + GC page programs
  u64 gc_reads = 0;   // GC copy-back page reads
  u64 erases = 0;

  NandOps& operator+=(const NandOps& o) {
    programs += o.programs;
    gc_reads += o.gc_reads;
    erases += o.erases;
    return *this;
  }
};

// Lifetime/accounting counters (cost model, Fig. 6).
struct FtlStats {
  u64 host_pages_written = 0;
  u64 total_pages_programmed = 0;
  u64 gc_pages_copied = 0;
  u64 blocks_erased = 0;

  // NAND-level write amplification.
  [[nodiscard]] double write_amplification() const {
    return host_pages_written == 0
               ? 1.0
               : static_cast<double>(total_pages_programmed) /
                     static_cast<double>(host_pages_written);
  }
};

class Ftl {
 public:
  explicit Ftl(const FtlConfig& cfg);

  // Maps and programs one logical page; runs GC if free space is low.
  NandOps write(u64 lpage);
  // True if the logical page is mapped (affects read timing: unmapped reads
  // return zeroes without touching NAND).
  [[nodiscard]] bool is_mapped(u64 lpage) const;
  // Unmaps a range (TRIM). Cheap: only map/valid-count updates.
  void trim(u64 lpage, u64 n);

  [[nodiscard]] const FtlConfig& config() const { return cfg_; }
  [[nodiscard]] const FtlStats& stats() const { return stats_; }
  [[nodiscard]] u64 free_blocks() const { return free_.size(); }
  [[nodiscard]] u64 total_blocks() const { return blocks_.size(); }
  [[nodiscard]] u64 mapped_pages() const { return mapped_pages_; }
  // Highest erase count over all blocks (wear; cost model uses the mean).
  [[nodiscard]] u32 max_erase_count() const;
  [[nodiscard]] double mean_erase_count() const;

  // Debug/verification: physical page for a logical page, or kUnmapped.
  static constexpr u32 kUnmapped = ~0u;
  [[nodiscard]] u32 l2p(u64 lpage) const { return l2p_[lpage]; }

 private:
  enum class BlockState : u8 { kFree, kOpen, kClosed };

  struct BlockInfo {
    u32 valid = 0;
    u32 erase_count = 0;
    BlockState state = BlockState::kFree;
  };

  u32 allocate_page(std::vector<u32>& open_blocks, u32& rr, NandOps& ops);
  u32 take_free_block(NandOps& ops);
  void invalidate(u32 ppage);
  void collect_garbage(NandOps& ops);
  u32 pick_victim() const;

  FtlConfig cfg_;
  FtlStats stats_;
  std::vector<u32> l2p_;          // logical page -> physical page
  std::vector<u32> p2l_;          // physical page -> logical page
  std::vector<BlockInfo> blocks_;
  std::vector<u32> free_;         // free block ids (LIFO)
  std::vector<u32> host_open_;    // per-unit open blocks for host writes
  std::vector<u32> gc_open_;      // per-unit open blocks for GC writes
  std::vector<u32> write_ptr_;    // next page offset per open block id
  u32 host_rr_ = 0;
  u32 gc_rr_ = 0;
  u64 mapped_pages_ = 0;
  u64 gc_low_;                    // run GC when free blocks fall below this
};

}  // namespace srcache::flash
