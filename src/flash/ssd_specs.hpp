// Calibrated SSD profiles.
//
// Each profile corresponds to a product class from the paper's Tables 4 and
// 12. The timing knobs are calibrated so the simulated device reproduces the
// spec-sheet numbers (sequential read/write MB/s, 4 KiB random read/write
// IOPS) within a few percent; tests/flash/ssd_calibration_test.cpp asserts
// this.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/time.hpp"

namespace srcache::flash {

struct SsdSpec {
  std::string name;
  std::string interface;  // "SATA" or "NVMe"
  std::string nand;       // "MLC" or "TLC"

  u64 capacity_bytes = 128 * GiB;
  double interface_mbps = 550.0;     // host link bandwidth
  int controller_lanes = 1;          // parallel command processors
  sim::SimTime command_overhead = 10 * sim::kUs;  // per-command controller cost

  int units = 32;                    // channels × dies
  u64 pages_per_block = 2048;        // 4 KiB pages (8 MiB flash block)
  sim::SimTime read_latency = 60 * sim::kUs;
  sim::SimTime program_latency = 340 * sim::kUs;
  sim::SimTime erase_latency = 8 * sim::kMs;
  double ops_fraction = 0.07;

  u64 write_buffer_bytes = 8 * MiB;
  sim::SimTime flush_barrier = 4 * sim::kMs;

  u32 endurance_cycles = 3000;       // rated P/E cycles
  double price_usd = 0.0;
  int year_released = 0;

  // Erase group size (§3.3): the write unit at which sustained performance
  // is reached — all parallel blocks filled and recycled together.
  [[nodiscard]] u64 erase_group_bytes() const {
    return static_cast<u64>(units) * pages_per_block * kBlockSize;
  }
  // Peak NAND program bandwidth in MB/s (decimal), before interface caps.
  [[nodiscard]] double nand_write_mbps() const {
    return static_cast<double>(units) * static_cast<double>(kBlockSize) * 1e3 /
           static_cast<double>(program_latency);
  }

  // Returns a copy with capacity (and write buffer) scaled by `factor`,
  // used to run paper-shaped experiments at laptop scale.
  [[nodiscard]] SsdSpec scaled(double factor) const;
};

// The prototype cache device: Samsung 840 Pro 128 GB class (Table 1),
// erase group 256 MiB (Fig. 2), SATA 3.0.
SsdSpec spec_840pro_128();

// Table 12 product classes (prices are per-drive, from the paper).
SsdSpec spec_a_mlc_sata();   // company A, MLC, 128 GB, $104.5
SsdSpec spec_a_tlc_sata();   // company A, TLC, 120 GB, $68
SsdSpec spec_b_mlc_sata();   // company B, MLC, 128 GB, $93.5
SsdSpec spec_b_tlc_sata();   // company B, TLC, 128 GB, $56.25
SsdSpec spec_c_mlc_nvme();   // company C, MLC, 400 GB NVMe, $469

// All five Table 12 entries in presentation order.
std::vector<SsdSpec> table12_catalog();

}  // namespace srcache::flash
