#include "flash/ssd_specs.hpp"

#include <algorithm>

namespace srcache::flash {

SsdSpec SsdSpec::scaled(double factor) const {
  SsdSpec s = *this;
  s.capacity_bytes = std::max<u64>(
      static_cast<u64>(static_cast<double>(capacity_bytes) * factor),
      static_cast<u64>(units) * pages_per_block * kBlockSize * 4);
  s.write_buffer_bytes = std::max<u64>(
      static_cast<u64>(static_cast<double>(write_buffer_bytes) * factor), 8 * MiB);
  return s;
}

SsdSpec spec_840pro_128() {
  SsdSpec s;
  s.name = "840Pro-128G";
  s.interface = "SATA";
  s.nand = "MLC";
  s.capacity_bytes = 128 * GiB;
  s.interface_mbps = 550.0;   // SATA 3.0 effective
  s.controller_lanes = 1;
  s.command_overhead = 10 * sim::kUs;  // -> ~97 KIOPS 4 KiB random read
  s.units = 32;                        // 8 channels × 4 dies
  s.pages_per_block = 2048;            // erase group = 32 × 8 MiB = 256 MiB
  s.read_latency = 60 * sim::kUs;
  s.program_latency = 340 * sim::kUs;  // -> ~385 MB/s sustained program
  s.erase_latency = 8 * sim::kMs;
  s.ops_fraction = 0.07;
  s.endurance_cycles = 3000;
  s.price_usd = 129.0;  // Table 4, SSD-A 128 GB
  s.year_released = 2012;
  return s;
}

SsdSpec spec_a_mlc_sata() {
  SsdSpec s = spec_840pro_128();
  s.name = "A-MLC(SATA)";
  s.price_usd = 418.0 / 4.0;  // Table 12 reports the 4-drive set price
  return s;
}

SsdSpec spec_a_tlc_sata() {
  SsdSpec s = spec_840pro_128();
  s.name = "A-TLC(SATA)";
  s.nand = "TLC";
  s.capacity_bytes = 120 * GiB;
  s.read_latency = 75 * sim::kUs;
  s.program_latency = 620 * sim::kUs;  // ~210 MB/s sustained program
  s.erase_latency = 10 * sim::kMs;
  s.endurance_cycles = 1000;
  s.price_usd = 272.0 / 4.0;
  s.year_released = 2013;
  return s;
}

SsdSpec spec_b_mlc_sata() {
  SsdSpec s = spec_840pro_128();
  s.name = "B-MLC(SATA)";
  s.program_latency = 360 * sim::kUs;  // slightly slower than company A
  s.price_usd = 374.0 / 4.0;
  s.year_released = 2014;
  return s;
}

SsdSpec spec_b_tlc_sata() {
  SsdSpec s = spec_a_tlc_sata();
  s.name = "B-TLC(SATA)";
  s.capacity_bytes = 128 * GiB;
  s.program_latency = 680 * sim::kUs;
  s.price_usd = 225.0 / 4.0;
  s.year_released = 2014;
  return s;
}

SsdSpec spec_c_mlc_nvme() {
  SsdSpec s;
  s.name = "C-MLC(NVMe)";
  s.interface = "NVMe";
  s.nand = "MLC";
  s.capacity_bytes = 400 * GiB;
  s.interface_mbps = 2800.0;           // Table 4 SSD-B SR for 400 GB: 2700
  s.controller_lanes = 4;              // multi-queue controller
  s.command_overhead = 8 * sim::kUs;   // -> ~450 KIOPS random read
  s.units = 90;
  s.pages_per_block = 2048;
  s.read_latency = 60 * sim::kUs;
  s.program_latency = 340 * sim::kUs;  // -> ~1.08 GB/s sustained program
  s.erase_latency = 8 * sim::kMs;
  s.ops_fraction = 0.12;               // enterprise drives provision more
  s.write_buffer_bytes = 32 * MiB;
  s.flush_barrier = 2 * sim::kMs;
  s.endurance_cycles = 3000;
  s.price_usd = 469.0;
  s.year_released = 2015;
  return s;
}

std::vector<SsdSpec> table12_catalog() {
  return {spec_a_mlc_sata(), spec_a_tlc_sata(), spec_b_mlc_sata(),
          spec_b_tlc_sata(), spec_c_mlc_nvme()};
}

}  // namespace srcache::flash
