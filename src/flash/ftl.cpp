#include "flash/ftl.hpp"

#include <algorithm>
#include <stdexcept>

namespace srcache::flash {

namespace {
constexpr u32 kNoBlock = ~0u;
}

Ftl::Ftl(const FtlConfig& cfg) : cfg_(cfg) {
  if (cfg_.units <= 0 || cfg_.pages_per_block == 0 || cfg_.exported_pages == 0) {
    throw std::invalid_argument("Ftl: units, pages_per_block and exported_pages must be > 0");
  }
  const u64 needed = div_ceil(cfg_.exported_pages, cfg_.pages_per_block);
  const auto provisioned = static_cast<u64>(
      static_cast<double>(cfg_.exported_pages) * (1.0 + cfg_.ops_fraction));
  u64 physical = div_ceil(provisioned, cfg_.pages_per_block);
  // Commodity drives always keep an internal minimum spare so GC can make
  // progress even at "0% OPS" (§3.3): two open-block stripes plus margin.
  const u64 min_spare = 2 * static_cast<u64>(cfg_.units) + 8;
  physical = std::max(physical, needed + min_spare);

  l2p_.assign(cfg_.exported_pages, kUnmapped);
  p2l_.assign(physical * cfg_.pages_per_block, kUnmapped);
  blocks_.assign(physical, {});
  write_ptr_.assign(physical, 0);
  free_.reserve(physical);
  // LIFO from the back so block 0 is allocated first (cosmetic determinism).
  for (u64 b = physical; b-- > 0;) free_.push_back(static_cast<u32>(b));
  std::reverse(free_.begin(), free_.end());
  host_open_.assign(static_cast<size_t>(cfg_.units), kNoBlock);
  gc_open_.assign(static_cast<size_t>(cfg_.units), kNoBlock);
  gc_low_ = static_cast<u64>(cfg_.units) + 8;
}

u32 Ftl::take_free_block(NandOps& /*ops*/) {
  if (free_.empty()) {
    throw std::logic_error("Ftl: free block pool exhausted (GC margin bug)");
  }
  const u32 b = free_.back();
  free_.pop_back();
  blocks_[b].state = BlockState::kOpen;
  blocks_[b].valid = 0;
  write_ptr_[b] = 0;
  return b;
}

u32 Ftl::allocate_page(std::vector<u32>& open_blocks, u32& rr, NandOps& ops) {
  const u32 unit = rr++ % static_cast<u32>(cfg_.units);
  u32 blk = open_blocks[unit];
  if (blk == kNoBlock || write_ptr_[blk] >= cfg_.pages_per_block) {
    if (blk != kNoBlock) blocks_[blk].state = BlockState::kClosed;
    blk = take_free_block(ops);
    open_blocks[unit] = blk;
  }
  const u32 off = write_ptr_[blk]++;
  if (write_ptr_[blk] >= cfg_.pages_per_block) {
    blocks_[blk].state = BlockState::kClosed;
    open_blocks[unit] = kNoBlock;
  }
  return blk * static_cast<u32>(cfg_.pages_per_block) + off;
}

void Ftl::invalidate(u32 ppage) {
  const u32 blk = ppage / static_cast<u32>(cfg_.pages_per_block);
  blocks_[blk].valid--;
  p2l_[ppage] = kUnmapped;
}

NandOps Ftl::write(u64 lpage) {
  if (lpage >= cfg_.exported_pages) {
    throw std::out_of_range("Ftl::write beyond exported capacity");
  }
  NandOps ops;
  if (l2p_[lpage] != kUnmapped) {
    invalidate(l2p_[lpage]);
  } else {
    ++mapped_pages_;
  }
  const u32 ppage = allocate_page(host_open_, host_rr_, ops);
  l2p_[lpage] = ppage;
  p2l_[ppage] = static_cast<u32>(lpage);
  blocks_[ppage / cfg_.pages_per_block].valid++;
  ops.programs++;
  stats_.host_pages_written++;
  stats_.total_pages_programmed++;

  if (free_.size() < gc_low_) collect_garbage(ops);
  return ops;
}

bool Ftl::is_mapped(u64 lpage) const {
  return lpage < cfg_.exported_pages && l2p_[lpage] != kUnmapped;
}

void Ftl::trim(u64 lpage, u64 n) {
  const u64 end = std::min(lpage + n, cfg_.exported_pages);
  for (u64 p = lpage; p < end; ++p) {
    if (l2p_[p] == kUnmapped) continue;
    invalidate(l2p_[p]);
    l2p_[p] = kUnmapped;
    --mapped_pages_;
  }
}

u32 Ftl::pick_victim() const {
  u32 best = kNoBlock;
  u32 best_valid = ~0u;
  for (u32 b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].state != BlockState::kClosed) continue;
    if (blocks_[b].valid < best_valid) {
      best = b;
      best_valid = blocks_[b].valid;
      if (best_valid == 0) break;
    }
  }
  return best;
}

void Ftl::collect_garbage(NandOps& ops) {
  // Two-phase greedy GC. Fully-invalid blocks are erased eagerly (free
  // space, no copying). Copy-back GC is deferred until the pool is
  // critically low: host streams that recycle whole erase groups then get
  // the chance to finish invalidating their blocks before any copying
  // happens — the mechanism that makes erase-group-aligned writes sustain
  // full bandwidth even at 0% OPS (Fig. 2).
  const u64 critical = static_cast<u64>(cfg_.units) + 6;
  while (free_.size() < gc_low_ + 4) {
    const u32 victim = pick_victim();
    if (victim == kNoBlock) return;
    if (blocks_[victim].valid > 0 && free_.size() >= critical) return;
    if (blocks_[victim].valid >= cfg_.pages_per_block) return;

    const u64 base = static_cast<u64>(victim) * cfg_.pages_per_block;
    for (u64 off = 0; off < cfg_.pages_per_block && blocks_[victim].valid > 0; ++off) {
      const u32 src = static_cast<u32>(base + off);
      const u32 lpage = p2l_[src];
      if (lpage == kUnmapped) continue;
      const u32 dst = allocate_page(gc_open_, gc_rr_, ops);
      p2l_[src] = kUnmapped;
      blocks_[victim].valid--;
      l2p_[lpage] = dst;
      p2l_[dst] = lpage;
      blocks_[dst / cfg_.pages_per_block].valid++;
      ops.gc_reads++;
      ops.programs++;
      stats_.gc_pages_copied++;
      stats_.total_pages_programmed++;
    }
    blocks_[victim].state = BlockState::kFree;
    blocks_[victim].erase_count++;
    write_ptr_[victim] = 0;
    free_.push_back(victim);
    ops.erases++;
    stats_.blocks_erased++;
  }
}

u32 Ftl::max_erase_count() const {
  u32 m = 0;
  for (const auto& b : blocks_) m = std::max(m, b.erase_count);
  return m;
}

double Ftl::mean_erase_count() const {
  u64 sum = 0;
  for (const auto& b : blocks_) sum += b.erase_count;
  return blocks_.empty() ? 0.0 : static_cast<double>(sum) / static_cast<double>(blocks_.size());
}

}  // namespace srcache::flash
