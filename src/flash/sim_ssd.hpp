// SimSsd: a timing-accurate simulated SATA/NVMe SSD.
//
// Composition (all contention via sim timelines):
//   host command  ->  controller (per-command overhead, 1..k lanes)
//                 ->  host interface (shared bandwidth pipe)
//                 ->  DRAM write buffer (writes ack here; drains to NAND)
//                 ->  NAND (units parallel dies; FTL decides placement & GC)
//
// Reproduces the three device behaviours the paper's design leans on:
//  * flush is expensive — it drains the write buffer and stalls the
//    controller for a barrier period (Table 3);
//  * small random overwrites trigger internal GC and collapse sustained
//    bandwidth, large erase-group-aligned writes do not (Fig. 2);
//  * the host interface caps reads (SATA vs NVMe price/perf split, §3.3).
#pragma once

#include <deque>
#include <memory>

#include "block/block_device.hpp"
#include "block/content_store.hpp"
#include "block/media_errors.hpp"
#include "flash/ftl.hpp"
#include "flash/ssd_specs.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/timeline.hpp"

namespace srcache::flash {

using blockdev::BlockDevice;
using blockdev::DeviceStats;
using blockdev::IoResult;
using blockdev::Payload;
using sim::SimTime;

class SimSsd final : public BlockDevice {
 public:
  // `track_content` disables the per-block tag store for large perf-only
  // runs (reads then report tag 0).
  explicit SimSsd(const SsdSpec& spec, bool track_content = true);

  [[nodiscard]] u64 capacity_blocks() const override { return exported_blocks_; }
  [[nodiscard]] const SsdSpec& spec() const { return spec_; }
  [[nodiscard]] const Ftl& ftl() const { return ftl_; }

  IoResult read(SimTime now, u64 lba, u32 n, std::span<u64> tags_out) override;
  IoResult write(SimTime now, u64 lba, u32 n, std::span<const u64> tags) override;
  IoResult write_payload(SimTime now, u64 lba, Payload payload) override;
  Result<Payload> read_payload(SimTime now, u64 lba, SimTime* done) override;
  IoResult flush(SimTime now) override;
  IoResult trim(SimTime now, u64 lba, u64 n) override;

  [[nodiscard]] const DeviceStats& stats() const override { return stats_; }

  void fail() override { failed_ = true; }
  void heal() override { failed_ = false; }
  void replace_media() override;
  [[nodiscard]] bool failed() const override { return failed_; }
  void corrupt(u64 lba) override { content_.corrupt(lba); }
  void inject_media_errors(u64 lba, u64 n) override { media_.add(lba, n); }
  void clear_media_errors() override { media_.clear(); }
  [[nodiscard]] u64 media_error_blocks() const { return media_.size(); }

  // Fills the whole exported LBA space with dummy data, then resets timing
  // and statistics — the paper's preconditioning step (§5.1) that brings the
  // FTL to steady state before measuring.
  void precondition();

  // Resets time, stats and the write buffer but keeps FTL occupancy/wear.
  void reset_timing();

  // Registers pull-style observability metrics (FTL GC/erase/WA counters,
  // device I/O counters, resource busy times) under `scope`, e.g. "ssd.0".
  // The callbacks read this device; it must outlive the registry's snapshots.
  void register_metrics(const obs::Scope& scope);

  // Attaches an event trace (nullptr detaches). Emits internal-GC and flush
  // events on `track`.
  void set_trace(obs::TraceLog* log, u32 track) {
    trace_ = log;
    trace_track_ = track;
  }

  // Attaches an op-span tracer (nullptr detaches). When the ambient op is
  // sampled, reads/writes contribute "ssd.read"/"ssd.write" spans with
  // NAND-phase children, labelled with this device's array index.
  void set_span(obs::SpanTracer* tracer, u32 dev) {
    span_ = tracer;
    span_dev_ = dev;
  }

 private:
  IoResult check(SimTime now, u64 lba, u64 n) const;
  // Applies FTL-reported NAND work to the die servers; returns completion.
  SimTime charge_nand(SimTime start, const NandOps& ops);
  SimTime admit_to_buffer(SimTime ready, u64 bytes, SimTime nand_done);

  SsdSpec spec_;
  u64 exported_blocks_;
  Ftl ftl_;
  blockdev::ContentStore content_;
  blockdev::MediaErrorSet media_;

  sim::MultiServer controller_;
  sim::BandwidthPipe interface_;
  sim::MultiServer nand_;

  // Write-buffer occupancy: (drain completion, bytes) per admitted write.
  std::deque<std::pair<SimTime, u64>> pending_;
  u64 pending_bytes_ = 0;

  DeviceStats stats_;
  bool failed_ = false;

  obs::TraceLog* trace_ = nullptr;
  u32 trace_track_ = 0;
  obs::SpanTracer* span_ = nullptr;
  u32 span_dev_ = 0;
};

}  // namespace srcache::flash
