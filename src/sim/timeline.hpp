// Contention primitives.
//
// srcache models devices as servers with explicit availability timelines:
// a request submitted at `now` begins service at max(now, server free time)
// and occupies the server for its service time. Composing these timelines
// bottom-up (NAND die -> SSD controller -> host interface -> RAID -> cache)
// reproduces queueing delay and parallelism without a full event calendar.
#pragma once

#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace srcache::sim {

// A single serially-used resource (e.g. a SATA link, an HDD arm).
class ServiceTimeline {
 public:
  // Occupy the resource for `service` starting no earlier than `now`.
  // Returns the completion time.
  SimTime submit(SimTime now, SimTime service) {
    const SimTime start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + service;
    busy_time_ += service;
    return busy_until_;
  }

  // Earliest time a new request could start service.
  [[nodiscard]] SimTime free_at() const { return busy_until_; }
  // Total time spent serving (for utilization accounting).
  [[nodiscard]] SimTime busy_time() const { return busy_time_; }

  // Backlog relative to `now` (how far the queue extends into the future).
  [[nodiscard]] SimTime backlog(SimTime now) const {
    return busy_until_ > now ? busy_until_ - now : 0;
  }

  void reset() { busy_until_ = 0; busy_time_ = 0; }

 private:
  SimTime busy_until_ = 0;
  SimTime busy_time_ = 0;
};

// k identical parallel units fed from one queue (e.g. NAND dies across
// channels). Work is placed on the earliest-free unit: a min-heap over
// (free time, unit index) makes each placement O(log k) instead of a linear
// scan — this is the innermost loop of every simulated device, hit once per
// page op from every engine shard. Ties break toward the lowest index,
// matching the original scan's first-minimum choice exactly.
class MultiServer {
 public:
  explicit MultiServer(int units)
      : free_at_(static_cast<size_t>(units), 0),
        unit_busy_(static_cast<size_t>(units), 0) {
    rebuild_heap();
  }

  SimTime submit(SimTime now, SimTime service) {
    const size_t best = heap_[0].second;
    const SimTime start = free_at_[best] > now ? free_at_[best] : now;
    free_at_[best] = start + service;
    unit_busy_[best] += service;
    busy_time_ += service;
    sift_down(free_at_[best], best);
    return free_at_[best];
  }

  // Distributes `count` equal ops of `per_op` service across the units,
  // giving each unit a contiguous share. Equivalent to `count` single
  // submits for symmetric loads but O(units) instead of O(count · units).
  // Returns the completion time of the last op.
  SimTime submit_batch(SimTime now, u64 count, SimTime per_op) {
    if (count == 0) return now;
    const auto u = static_cast<u64>(free_at_.size());
    const u64 per_unit = count / u;
    u64 extra = count % u;
    SimTime last = now;
    for (u64 i = 0; i < u && count > 0; ++i) {
      u64 share = per_unit + (extra > 0 ? 1 : 0);
      if (extra > 0) --extra;
      if (share == 0) continue;
      const SimTime done = submit(now, static_cast<SimTime>(share) * per_op);
      last = done > last ? done : last;
      count -= share;
    }
    return last;
  }

  // Time at which all units are idle (used for flush/drain semantics).
  [[nodiscard]] SimTime all_idle_at() const {
    SimTime t = 0;
    for (SimTime f : free_at_) t = f > t ? f : t;
    return t;
  }

  [[nodiscard]] SimTime earliest_free() const { return heap_[0].first; }

  [[nodiscard]] int units() const { return static_cast<int>(free_at_.size()); }
  [[nodiscard]] SimTime busy_time() const { return busy_time_; }
  // Per-unit share of busy_time() — exposes placement skew (a single die
  // serving a long erase while its siblings idle) that the aggregate hides.
  [[nodiscard]] SimTime busy_time(size_t unit) const {
    return unit_busy_.at(unit);
  }

  void reset() {
    for (auto& f : free_at_) f = 0;
    for (auto& b : unit_busy_) b = 0;
    busy_time_ = 0;
    rebuild_heap();
  }

 private:
  // (free time, unit index), heap-ordered so the root is the unit the old
  // linear scan would pick: smallest free time, lowest index among ties.
  using Slot = std::pair<SimTime, size_t>;

  void rebuild_heap() {
    heap_.resize(free_at_.size());
    for (size_t i = 0; i < free_at_.size(); ++i) heap_[i] = {free_at_[i], i};
    // All-equal keys with ascending indices already satisfy the heap
    // property; after reset/construction every free time is 0.
  }

  // Re-keys the root (the unit just scheduled) and restores heap order.
  void sift_down(SimTime key, size_t unit) {
    const size_t n = heap_.size();
    size_t hole = 0;
    const Slot updated{key, unit};
    while (true) {
      const size_t left = 2 * hole + 1;
      if (left >= n) break;
      const size_t right = left + 1;
      size_t child = left;
      if (right < n && heap_[right] < heap_[left]) child = right;
      if (!(heap_[child] < updated)) break;
      heap_[hole] = heap_[child];
      hole = child;
    }
    heap_[hole] = updated;
  }

  std::vector<SimTime> free_at_;
  std::vector<SimTime> unit_busy_;
  std::vector<Slot> heap_;
  SimTime busy_time_ = 0;
};

// Two-class strict-priority server: foreground ops (application reads and
// writes) preempt background ones (destaging, rebuilds). Foreground work
// sees only foreground contention; background work is pushed behind all
// committed work, conserving capacity. This models a background writeback
// thread sharing a device with the foreground path.
class PriorityTimeline {
 public:
  SimTime submit_fg(SimTime now, SimTime service) {
    const SimTime start = fg_free_ > now ? fg_free_ : now;
    fg_free_ = start + service;
    const SimTime bg_base = bg_free_ > start ? bg_free_ : start;
    bg_free_ = bg_base + service;  // fg work also delays background
    busy_time_ += service;
    return fg_free_;
  }

  SimTime submit_bg(SimTime now, SimTime service) {
    SimTime start = bg_free_ > now ? bg_free_ : now;
    if (fg_free_ > start) start = fg_free_;
    bg_free_ = start + service;
    busy_time_ += service;
    return bg_free_;
  }

  SimTime submit(SimTime now, SimTime service, bool background) {
    return background ? submit_bg(now, service) : submit_fg(now, service);
  }

  [[nodiscard]] SimTime busy_time() const { return busy_time_; }
  void reset() { fg_free_ = bg_free_ = busy_time_ = 0; }

 private:
  SimTime fg_free_ = 0;
  SimTime bg_free_ = 0;
  SimTime busy_time_ = 0;
};

// Shared bandwidth pipe (network link / host interface): a transfer of b
// bytes occupies the pipe for b / rate. Per-transfer latency is added by the
// caller, not the pipe, so pipelined transfers overlap correctly.
class BandwidthPipe {
 public:
  explicit BandwidthPipe(double mbps) : mbps_(mbps) {}

  SimTime transfer(SimTime now, u64 bytes) {
    return line_.submit(now, transfer_time(bytes, mbps_));
  }

  [[nodiscard]] double mbps() const { return mbps_; }
  [[nodiscard]] SimTime backlog(SimTime now) const { return line_.backlog(now); }
  [[nodiscard]] SimTime busy_time() const { return line_.busy_time(); }
  void reset() { line_.reset(); }

 private:
  double mbps_;
  ServiceTimeline line_;
};

}  // namespace srcache::sim
