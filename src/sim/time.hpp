// Virtual time. All srcache simulation timestamps and durations are integer
// nanoseconds; helper literals keep device parameter tables readable.
#pragma once

#include "common/types.hpp"

namespace srcache::sim {

// A point in virtual time (ns since simulation start) or a duration (ns).
using SimTime = i64;

inline constexpr SimTime kNs = 1;
inline constexpr SimTime kUs = 1000 * kNs;
inline constexpr SimTime kMs = 1000 * kUs;
inline constexpr SimTime kSec = 1000 * kMs;

constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }
constexpr double to_ms(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double to_us(SimTime t) { return static_cast<double>(t) / 1e3; }

// Throughput helper: bytes moved over a virtual interval, in MB/s (decimal
// megabytes, matching how the paper and vendor spec sheets report bandwidth).
constexpr double mb_per_sec(u64 bytes, SimTime interval) {
  if (interval <= 0) return 0.0;
  return static_cast<double>(bytes) / 1e6 / to_seconds(interval);
}

// Duration to move `bytes` at `mbps` decimal-MB/s.
constexpr SimTime transfer_time(u64 bytes, double mbps) {
  if (mbps <= 0.0) return 0;
  return static_cast<SimTime>(static_cast<double>(bytes) * 1e3 / mbps);
}

}  // namespace srcache::sim
