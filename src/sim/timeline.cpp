// Intentionally header-only logic; this TU anchors the srcache_sim library.
#include "sim/timeline.hpp"
