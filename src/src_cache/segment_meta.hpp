// On-SSD segment metadata blocks (MS at the head, ME at the tail of each
// per-SSD chunk, §4.1 "Metadata management"). An extension of the LFS
// summary block: checksummed, versioned, and carrying per-block LBA and
// content checksums so that recovery and silent-corruption detection work
// from the SSDs alone.
#pragma once

#include <optional>
#include <vector>

#include "block/block_device.hpp"
#include "common/crc32c.hpp"
#include "common/types.hpp"

namespace srcache::src {

inline constexpr u64 kSegmentMetaMagic = 0x5352435F4D455441ull;  // "SRC_META"
inline constexpr u64 kSuperblockMagic = 0x5352435F53555052ull;   // "SRC_SUPR"
inline constexpr u64 kDeadSlot = ~0ull;  // slot holds no live block

struct SegmentMeta {
  u64 generation = 0;
  u32 sg = 0;
  u32 seg = 0;
  bool dirty = false;       // segment type
  bool has_parity = false;
  u8 parity_col = 0;        // device index of the parity column
  bool is_tail = false;     // MS (false) or ME (true)

  struct Entry {
    u64 lba = kDeadSlot;    // primary-storage block, kDeadSlot if the slot
                            // was unused (partial segment) or already dead
    u32 crc = 0;            // CRC-32C of the block's content tag
    u32 tenant = 0;         // owning tenant, so per-tenant accounting
                            // survives crash recovery
  };
  std::vector<Entry> entries;  // one per data slot of the whole segment

  // Serializes with a trailing CRC-32C over everything before it.
  [[nodiscard]] blockdev::Payload serialize() const;

  // Deserializes and verifies magic + checksum; nullopt if invalid/corrupt.
  static std::optional<SegmentMeta> deserialize(const blockdev::Payload& p);
};

struct Superblock {
  u64 create_seq = 0;
  u32 num_ssds = 0;
  u64 erase_group_bytes = 0;
  u64 chunk_bytes = 0;
  u64 region_bytes_per_ssd = 0;

  [[nodiscard]] blockdev::Payload serialize() const;
  static std::optional<Superblock> deserialize(const blockdev::Payload& p);
};

}  // namespace srcache::src
