// Crash recovery, failure handling, and internal-invariant auditing (§4.1).
#include <algorithm>
#include <optional>

#include "common/crc32c.hpp"
#include "src_cache/src_cache.hpp"

namespace srcache::src {

Status SrcCache::recover(SimTime now, SimTime* done_out) {
  SimTime t = now;

  // 1. Superblock: first valid copy wins (it is replicated on every SSD).
  std::optional<Superblock> sb;
  for (auto* d : ssds_) {
    if (d->failed()) continue;
    SimTime rt = now;
    auto p = d->read_payload(now, sg_base_block(0), &rt);
    t = std::max(t, rt);
    if (!p.is_ok()) continue;
    sb = Superblock::deserialize(p.value());
    if (sb.has_value()) break;
  }
  if (!sb.has_value())
    return Status(ErrorCode::kCorrupted, "no valid superblock");
  if (sb->num_ssds != cfg_.num_ssds ||
      sb->erase_group_bytes != cfg_.erase_group_bytes ||
      sb->chunk_bytes != cfg_.chunk_bytes ||
      sb->region_bytes_per_ssd != cfg_.region_bytes_per_ssd) {
    return Status(ErrorCode::kInvalidArgument,
                  "superblock geometry does not match configuration");
  }

  // 2. Reset volatile state. Anything that was only in the segment buffers
  // is gone — that is the bounded TWAIT loss window the paper accepts.
  map_.clear();
  free_sgs_.clear();
  dirty_buf_.clear();
  clean_buf_.clear();
  inflight_.clear();
  active_sg_ = kBufferSg;
  live_total_ = 0;
  gen_seq_ = 0;
  seal_seq_ = 0;
  for (TenantStats& ts : tenants_) ts.live_blocks = 0;
  // Policy state is volatile: start cold and re-seed from the rebuilt map
  // (step 4) so the policies know exactly the surviving residents.
  eviction_ = policy::make_eviction(cfg_.eviction, cfg_.capacity_blocks());
  admission_ = policy::make_admission(cfg_.admission, cfg_.capacity_blocks());

  // 3. Scan every segment's MS/ME pair; matching generations mean the
  // segment was written completely (§4.1 failure handling).
  const u64 rows = cfg_.slots_per_chunk();
  struct Winner {
    u64 gen;
    u32 sg, seg, slot;
  };
  std::unordered_map<u64, Winner> best;  // lba -> newest location

  for (u32 s = 1; s < cfg_.sg_count(); ++s) {
    SgInfo fresh;
    fresh.segs.resize(cfg_.segments_per_sg());
    sgs_[s] = std::move(fresh);
    SgInfo& sg = sgs_[s];

    u32 last_valid = 0;
    bool any_valid = false;
    for (u32 g = 0; g < cfg_.segments_per_sg(); ++g) {
      const u64 base = chunk_base_block(s, g);
      std::optional<SegmentMeta> ms, me;
      for (auto* d : ssds_) {
        if (d->failed()) continue;
        SimTime rt = now;
        auto pms = d->read_payload(now, base, &rt);
        t = std::max(t, rt);
        if (pms.is_ok() && !ms.has_value())
          ms = SegmentMeta::deserialize(pms.value());
        auto pme = d->read_payload(now, base + 1 + rows, &rt);
        t = std::max(t, rt);
        if (pme.is_ok() && !me.has_value())
          me = SegmentMeta::deserialize(pme.value());
        if (ms.has_value() && me.has_value()) break;
      }
      if (!ms.has_value() || !me.has_value()) {
        // One present without the other is a torn write; neither present is
        // simply a never-written chunk.
        if (ms.has_value() != me.has_value()) extra_.torn_segments_discarded++;
        continue;
      }
      if (ms->generation != me->generation || ms->sg != s || ms->seg != g) {
        extra_.torn_segments_discarded++;
        continue;  // torn segment: discarded, space reused
      }

      SegmentInfo& si = sg.segs[g];
      si.type = ms->dirty ? SegType::kDirty : SegType::kClean;
      si.has_parity = ms->has_parity;
      si.parity_col = ms->parity_col;
      si.generation = ms->generation;
      si.slot_lba.assign(ms->entries.size(), kDeadSlot);
      si.slot_crc.assign(ms->entries.size(), 0);
      si.slot_tenant.assign(ms->entries.size(), 0);
      si.live = 0;
      for (u32 slot = 0; slot < ms->entries.size(); ++slot) {
        const auto& e = ms->entries[slot];
        si.slot_lba[slot] = e.lba;
        si.slot_crc[slot] = e.crc;
        si.slot_tenant[slot] = norm_tenant(e.tenant);
        if (e.lba == kDeadSlot) continue;
        auto it = best.find(e.lba);
        if (it == best.end() || it->second.gen < si.generation) {
          best[e.lba] = Winner{si.generation, s, g, slot};
        }
      }
      gen_seq_ = std::max(gen_seq_, si.generation);
      last_valid = g;
      any_valid = true;
    }

    if (!any_valid) {
      sg.state = SgState::kFree;
      free_sgs_.push_back(s);
    } else {
      // Partially-filled SGs are sealed conservatively; the unwritten tail
      // is reclaimed with the SG.
      sg.next_seg = last_valid + 1;
      sg.state = SgState::kSealed;
      u64 max_gen = 0;
      for (const auto& si : sg.segs) max_gen = std::max(max_gen, si.generation);
      sg.seal_seq = max_gen;
    }
  }
  sgs_[0].state = SgState::kSuper;
  seal_seq_ = gen_seq_;

  // 4. Mark losers dead and build the mapping table from the winners.
  for (u32 s = 1; s < cfg_.sg_count(); ++s) {
    SgInfo& sg = sgs_[s];
    for (u32 g = 0; g < sg.next_seg; ++g) {
      SegmentInfo& si = sg.segs[g];
      if (si.type == SegType::kNone) continue;
      for (u32 slot = 0; slot < si.slot_lba.size(); ++slot) {
        const u64 lba = si.slot_lba[slot];
        if (lba == kDeadSlot) continue;
        const auto& w = best.at(lba);
        if (w.sg != s || w.seg != g || w.slot != slot) {
          si.slot_lba[slot] = kDeadSlot;  // superseded by a newer segment
          continue;
        }
        MapEntry e;
        e.sg = s;
        e.seg = g;
        e.slot = slot;
        e.tenant = si.slot_tenant[slot];
        e.flags = si.type == SegType::kDirty ? kFlagDirty : 0;
        map_.emplace(lba, e);
        eviction_->on_admit(lba);
        si.live++;
        sg.live++;
        census_add(sg, e.tenant, 1);
        tenants_[e.tenant].live_blocks++;
        live_total_++;
      }
    }
  }

  if (done_out != nullptr) *done_out = t;
  return Status::ok();
}

void SrcCache::on_ssd_failure(size_t ssd) {
  // Fail-stop handling (§4.3): parity-protected blocks stay cached and are
  // reconstructed on access; unprotected ones are dropped — clean blocks
  // refetch on the next miss, dirty ones (RAID-0 only) are lost.
  if (trace_ != nullptr)
    trace_->instant("src.ssd_failure", trace_track_, 0, ssd);
  std::vector<u64> to_drop;
  for (auto& [lba, e] : map_) {
    if (e.buffered()) continue;
    const SegmentInfo& si = sgs_[e.sg].segs[e.seg];
    const SlotAddr a = addr_of(e.sg, e.seg, e.slot, si);
    bool affected = a.dev == ssd;
    if (cfg_.raid == SrcRaidLevel::kRaid1) {
      affected = (a.dev == ssd || a.mirror_dev == ssd) &&
                 ssds_[a.dev]->failed() && ssds_[a.mirror_dev]->failed();
    } else if (si.has_parity) {
      affected = false;  // reconstructable via the stripe
    }
    if (affected) to_drop.push_back(lba);
  }
  for (u64 lba : to_drop) {
    const MapEntry e = map_.at(lba);
    if (e.dirty()) {
      extra_.lost_dirty_blocks++;
    } else {
      extra_.lost_clean_blocks++;
    }
    invalidate_slot(lba, e);
    map_.erase(lba);
    tenants_[e.tenant].live_blocks--;
    eviction_->on_evict(lba);
  }
}

std::vector<raid::RebuildExtent> SrcCache::rebuild_extents(size_t dev) const {
  std::vector<raid::RebuildExtent> ext;
  const u64 rows = cfg_.slots_per_chunk();

  // Superblock replica (SG 0): rewritten from configuration — it is pure
  // metadata and every copy is identical.
  Superblock sb;
  sb.create_seq = 1;
  sb.num_ssds = cfg_.num_ssds;
  sb.erase_group_bytes = cfg_.erase_group_bytes;
  sb.chunk_bytes = cfg_.chunk_bytes;
  sb.region_bytes_per_ssd = cfg_.region_bytes_per_ssd;
  ext.push_back({sg_base_block(0), 1, raid::RebuildHow::kMetadata, SIZE_MAX,
                 sb.serialize()});

  size_t mirror_partner = SIZE_MAX;
  if (cfg_.raid == SrcRaidLevel::kRaid1) {
    const size_t half = cfg_.num_ssds / 2;
    mirror_partner = dev < half ? dev + half : dev - half;
  }

  for (u32 s = 1; s < cfg_.sg_count(); ++s) {
    const SgInfo& sg = sgs_[s];
    if (sg.state == SgState::kFree) continue;
    for (u32 g = 0; g < sg.segs.size(); ++g) {
      const SegmentInfo& si = sg.segs[g];
      if (si.type == SegType::kNone) continue;
      const u64 base = chunk_base_block(s, g);
      // MS/ME replicas are rewritten from in-RAM state (invalidated slots
      // come back as dead, which only sharpens a later recovery scan).
      SegmentMeta meta;
      meta.generation = si.generation;
      meta.sg = s;
      meta.seg = g;
      meta.dirty = si.type == SegType::kDirty;
      meta.has_parity = si.has_parity;
      meta.parity_col = si.parity_col;
      meta.entries.resize(si.slot_lba.size());
      for (u32 k = 0; k < si.slot_lba.size(); ++k) {
        meta.entries[k].lba = si.slot_lba[k];
        meta.entries[k].crc = si.slot_crc[k];
        meta.entries[k].tenant = si.slot_tenant[k];
      }
      meta.is_tail = false;
      ext.push_back(
          {base, 1, raid::RebuildHow::kMetadata, SIZE_MAX, meta.serialize()});
      // Data rows decode only where the stripe carries redundancy. NPC
      // clean rows were dropped from the map at fail time: nothing live to
      // restore, the rebuilder skips the whole run.
      if (cfg_.raid == SrcRaidLevel::kRaid1) {
        ext.push_back({base + 1, rows, raid::RebuildHow::kMirror,
                       mirror_partner, nullptr});
      } else if (si.has_parity) {
        ext.push_back(
            {base + 1, rows, raid::RebuildHow::kParityXor, SIZE_MAX, nullptr});
      }
      meta.is_tail = true;
      ext.push_back({base + 1 + rows, 1, raid::RebuildHow::kMetadata, SIZE_MAX,
                     meta.serialize()});
    }
  }
  return ext;
}

void SrcCache::on_rebuild_lost(size_t dev,
                               const std::vector<raid::RebuildExtent>& lost) {
  const auto in_lost = [&lost](u64 b) {
    for (const raid::RebuildExtent& ex : lost)
      if (b >= ex.block && b < ex.block + ex.count) return true;
    return false;
  };
  std::vector<u64> to_drop;
  for (const auto& [lba, e] : map_) {
    if (e.buffered()) continue;
    const SegmentInfo& si = sgs_[e.sg].segs[e.seg];
    const SlotAddr a = addr_of(e.sg, e.seg, e.slot, si);
    const bool here = a.dev == dev || a.mirror_dev == dev;
    if (!here || !in_lost(a.block)) continue;
    // The copy on `dev` is gone for good; the block survives only if some
    // other replica can still serve it.
    bool survivor = false;
    if (a.dev != dev && !dev_dead(a.dev, a.block)) survivor = true;
    if (a.mirror_dev != SIZE_MAX && a.mirror_dev != dev &&
        !dev_dead(a.mirror_dev, a.block))
      survivor = true;
    if (!survivor) to_drop.push_back(lba);
  }
  for (u64 lba : to_drop) {
    const MapEntry e = map_.at(lba);
    if (e.dirty()) {
      extra_.lost_dirty_blocks++;
    } else {
      extra_.lost_clean_blocks++;
    }
    invalidate_slot(lba, e);
    map_.erase(lba);
    tenants_[e.tenant].live_blocks--;
    eviction_->on_evict(lba);
  }
  if (trace_ != nullptr)
    trace_->instant("src.rebuild_lost", trace_track_, 0, to_drop.size());
}

SrcCache::ScrubReport SrcCache::scrub(SimTime now, SimTime* done) {
  ScrubReport rep;
  const auto before = extra_;
  SimTime t = now;
  for (u32 s = 1; s < cfg_.sg_count(); ++s) {
    const SgInfo& sg = sgs_[s];
    for (u32 g = 0; g < sg.next_seg; ++g) {
      const SegmentInfo& si = sg.segs[g];
      if (si.type == SegType::kNone) continue;
      for (u32 slot = 0; slot < si.slot_lba.size(); ++slot) {
        if (si.slot_lba[slot] == kDeadSlot) continue;
        ++rep.scanned;
        SimTime rt = t;
        (void)read_slot(t, s, g, slot, &rt);
        t = std::max(t, rt);
      }
    }
  }
  rep.repaired = extra_.parity_repairs - before.parity_repairs;
  rep.refetched = extra_.refetch_repairs - before.refetch_repairs;
  rep.unrecoverable = extra_.unrecoverable_blocks - before.unrecoverable_blocks;
  if (done != nullptr) *done = t;
  return rep;
}

Status SrcCache::verify_consistency() const {
  u64 live_on_ssd = 0;
  for (u32 s = 0; s < sgs_.size(); ++s) {
    const SgInfo& sg = sgs_[s];
    u64 sg_live = 0;
    for (u32 g = 0; g < sg.segs.size(); ++g) {
      const SegmentInfo& si = sg.segs[g];
      if (si.type == SegType::kNone) {
        if (si.live != 0)
          return Status(ErrorCode::kCorrupted, "empty segment with live count");
        continue;
      }
      u64 seg_live = 0;
      for (u32 slot = 0; slot < si.slot_lba.size(); ++slot) {
        const u64 lba = si.slot_lba[slot];
        if (lba == kDeadSlot) continue;
        ++seg_live;
        auto it = map_.find(lba);
        if (it == map_.end())
          return Status(ErrorCode::kCorrupted, "live slot without map entry");
        const MapEntry& e = it->second;
        if (e.buffered() || e.sg != s || e.seg != g || e.slot != slot)
          return Status(ErrorCode::kCorrupted, "map entry does not point back");
        if (e.dirty() != (si.type == SegType::kDirty))
          return Status(ErrorCode::kCorrupted, "dirty flag mismatch");
      }
      if (seg_live != si.live)
        return Status(ErrorCode::kCorrupted, "segment live count drift");
      sg_live += seg_live;
    }
    if (sg_live != sg.live)
      return Status(ErrorCode::kCorrupted, "SG live count drift");
    live_on_ssd += sg_live;
  }
  if (live_on_ssd != live_total_)
    return Status(ErrorCode::kCorrupted, "global live count drift");

  u64 buffered = 0;
  std::vector<u64> tenant_live(tenants_.size(), 0);
  for (const SegBuffer* buf : {&dirty_buf_, &clean_buf_}) {
    u64 live = 0;
    for (size_t i = 0; i < buf->lbas.size(); ++i) {
      if (buf->lbas[i] == kDeadSlot) continue;
      ++live;
      if (buf->tenants[i] >= tenant_live.size())
        return Status(ErrorCode::kCorrupted, "buffered tenant out of range");
      tenant_live[buf->tenants[i]]++;
    }
    if (live != buf->live)
      return Status(ErrorCode::kCorrupted, "buffer live count drift");
    buffered += live;
  }
  if (map_.size() != live_on_ssd + buffered)
    return Status(ErrorCode::kCorrupted, "map size != live blocks");

  // Per-tenant accounting: SG censuses and buffers must add up to each
  // tenant's occupancy.
  for (const SgInfo& sg : sgs_) {
    u64 census = 0;
    for (size_t t = 0; t < sg.live_by_tenant.size(); ++t) {
      if (t >= tenant_live.size() && sg.live_by_tenant[t] != 0)
        return Status(ErrorCode::kCorrupted, "SG census tenant out of range");
      if (t < tenant_live.size()) tenant_live[t] += sg.live_by_tenant[t];
      census += sg.live_by_tenant[t];
    }
    if (census != sg.live)
      return Status(ErrorCode::kCorrupted, "SG tenant census drift");
  }
  for (size_t t = 0; t < tenants_.size(); ++t) {
    if (tenant_live[t] != tenants_[t].live_blocks)
      return Status(ErrorCode::kCorrupted, "tenant occupancy drift");
  }
  return Status::ok();
}

}  // namespace srcache::src
