// Free-space reclamation (§4.2): S2D destaging vs Sel-GC selective copying.
#include <algorithm>

#include "common/crc32c.hpp"
#include "src_cache/src_cache.hpp"

namespace srcache::src {

using obs::WriteCause;

u32 SrcCache::pick_victim() const {
  u32 best = kBufferSg;
  for (u32 s = 0; s < sgs_.size(); ++s) {
    if (sgs_[s].state != SgState::kSealed) continue;
    if (best == kBufferSg) {
      best = s;
      continue;
    }
    switch (cfg_.victim) {
      case VictimPolicy::kFifo:
        if (sgs_[s].seal_seq < sgs_[best].seal_seq) best = s;
        break;
      case VictimPolicy::kGreedy:  // least-utilized SG, FIFO tie-break
        // reclaimable_live prices over-quota tenants' blocks as garbage, so
        // GC gravitates to SGs rich in blocks the partitioner wants gone.
        if (reclaimable_live(sgs_[s]) < reclaimable_live(sgs_[best]) ||
            (reclaimable_live(sgs_[s]) == reclaimable_live(sgs_[best]) &&
             sgs_[s].seal_seq < sgs_[best].seal_seq)) {
          best = s;
        }
        break;
      case VictimPolicy::kCostBenefit: {
        // LFS cost-benefit: maximize age x (1 - u) / (1 + u). Older, less
        // utilized groups win; young hot groups get time to decay.
        auto score = [&](u32 g) {
          const double cap = static_cast<double>(
              cfg_.segments_per_sg() * cfg_.segment_data_slots(true));
          const double u =
              static_cast<double>(reclaimable_live(sgs_[g])) / cap;
          const double age =
              static_cast<double>(seal_seq_ - sgs_[g].seal_seq + 1);
          return age * (1.0 - u) / (1.0 + u);
        };
        if (score(s) > score(best)) best = s;
        break;
      }
    }
  }
  return best;
}

SimTime SrcCache::ensure_free_sg(SimTime now) {
  SimTime t = now;
  while (free_sgs_.size() <= cfg_.free_sg_reserve) {
    const size_t before = free_sgs_.size();
    t = std::max(t, reclaim_one(now, /*force_s2d=*/false));
    if (free_sgs_.size() == before) break;  // nothing reclaimable
  }
  return t;
}

SimTime SrcCache::reclaim_one(SimTime now, bool force_s2d) {
  const u32 v = pick_victim();
  if (v == kBufferSg) return now;

  // Sel-GC policy decision (§4.2): below UMAX keep hot data with
  // SSD-to-SSD copies; above it, destage to make real room. A nearly-full
  // victim is also destaged — copying it would reclaim no space.
  u64 victim_slots = 0;
  for (u32 g = 0; g < sgs_[v].next_seg; ++g)
    victim_slots += sgs_[v].segs[g].slot_lba.size();
  const bool victim_nearly_full =
      victim_slots > 0 &&
      static_cast<double>(sgs_[v].live) >
          0.95 * static_cast<double>(victim_slots);
  const bool use_s2d = force_s2d || cfg_.gc == GcPolicy::kS2D ||
                       utilization() > cfg_.umax || victim_nearly_full;
  extra_.sg_reclaims++;
  if (use_s2d) extra_.s2d_reclaims++; else extra_.s2s_reclaims++;

  SgInfo& sg = sgs_[v];
  sg.state = SgState::kReclaiming;  // not selectable by nested reclaims
  const bool was_in_gc = in_gc_;
  in_gc_ = true;
  SimTime t = now;
  const u32 reclaim_span = (span_ != nullptr && span_->sampling())
                               ? span_->begin_span("src.reclaim", now)
                               : obs::kNoSpan;

  struct Move {
    u64 lba;
    u64 tag;
    u16 tenant;
    bool dirty;
    bool shed;  // destaged to squeeze an over-quota tenant, not for space
  };
  std::vector<Move> destages;
  std::vector<Move> copies;

  const u64 rows = cfg_.slots_per_chunk();
  for (u32 g = 0; g < sg.next_seg; ++g) {
    SegmentInfo& si = sg.segs[g];
    if (si.type == SegType::kNone) continue;
    const u32 nslots = static_cast<u32>(si.slot_lba.size());

    // Per-slot decision. Data is needed for destages and S2S copies; cold
    // clean blocks are simply dropped (§4.2). The keep-vs-evict verdict is
    // the eviction policy's call (paper = hot-flag second chance for clean,
    // unconditional copy for dirty; the modern policies also evict cold
    // dirty blocks, which destages them below) and is asked exactly once
    // here — keep_on_gc may transition policy state, and over_quota can
    // flip while loop 2 drains live_blocks, so re-deriving the decision
    // later is not allowed. S2D mode and quota sheds bypass the policy:
    // those are whole-victim decisions, not per-block ones.
    std::vector<char> need(nslots, 0);
    std::vector<char> keepv(nslots, 0);
    std::vector<u64> tag(nslots, 0);
    for (u32 s = 0; s < nslots; ++s) {
      const u64 lba = si.slot_lba[s];
      if (lba == kDeadSlot) continue;
      const MapEntry& e = map_.at(lba);
      // Over-quota tenants' blocks are shed even when hot: the quota
      // squeeze works by attrition through GC, never by bulk eviction.
      bool keep = false;
      if (!use_s2d && !over_quota(e.tenant))
        keep = eviction_->keep_on_gc(lba, e.hot(), e.dirty());
      keepv[s] = keep ? 1 : 0;
      need[s] = (e.dirty() || keep) ? 1 : 0;
    }

    // Batched reads: column-major slots are contiguous on one device.
    u32 s = 0;
    while (s < nslots) {
      if (!need[s]) {
        ++s;
        continue;
      }
      u32 e = s + 1;
      while (e < nslots && need[e] && e / rows == s / rows) ++e;
      const SlotAddr a = addr_of(v, g, s, si);
      std::vector<u64> buf(e - s, 0);
      bool slow = false;
      for (u32 k = s; k < e && !slow; ++k)
        slow = dev_dead(a.dev, a.block + (k - s));
      if (!slow) {
        auto r = ssds_[a.dev]->read(now, a.block, e - s,
                                    std::span<u64>(buf.data(), buf.size()));
        if (!r.ok()) {
          slow = true;
        } else {
          t = std::max(t, r.done);
          if (cfg_.verify_checksums) {
            for (u32 k = s; k < e && !slow; ++k) {
              if (si.slot_lba[k] != kDeadSlot &&
                  common::crc32c_of(buf[k - s]) != si.slot_crc[k])
                slow = true;
            }
          }
        }
      }
      if (!slow) {
        for (u32 k = s; k < e; ++k) tag[k] = buf[k - s];
      } else {
        for (u32 k = s; k < e; ++k) {
          SimTime rt = now;
          auto rec = read_slot(now, v, g, k, &rt);
          t = std::max(t, rt);
          if (rec.is_ok()) {
            tag[k] = rec.value();
          } else {
            need[k] = 2;  // unrecoverable: drop below
          }
        }
      }
      s = e;
    }

    for (u32 k = 0; k < nslots; ++k) {
      const u64 lba = si.slot_lba[k];
      if (lba == kDeadSlot) continue;
      const MapEntry e = map_.at(lba);
      invalidate_slot(lba, e);
      map_.erase(lba);
      tenants_[e.tenant].live_blocks--;
      if (need[k] == 2) {
        if (e.dirty()) extra_.lost_dirty_blocks++;
        eviction_->on_evict(lba);
        continue;
      }
      const bool shed = over_quota(e.tenant);
      if (e.dirty()) {
        // A squeezed tenant's dirty data is destaged rather than S2S-copied:
        // safe on primary, and its cache share shrinks. A policy-evicted
        // dirty block takes the same path — written back once instead of
        // recopied at every future reclaim.
        if (use_s2d || shed || !keepv[k]) {
          if (!use_s2d && shed) tenants_[e.tenant].gc_shed_blocks++;
          destages.push_back({lba, tag[k], e.tenant, true, shed && !use_s2d});
          eviction_->on_evict(lba);
        } else {
          copies.push_back({lba, tag[k], e.tenant, true, false});
        }
      } else if (keepv[k]) {
        copies.push_back({lba, tag[k], e.tenant, false, false});
      } else {
        if (shed && !use_s2d && e.hot()) tenants_[e.tenant].gc_shed_blocks++;
        stats_.dropped_clean_blocks++;
        eviction_->on_evict(lba);
      }
    }
  }

  // Destages: contiguous LBA runs become single primary-storage writes,
  // issued as background traffic (the real destager is a worker thread that
  // yields to foreground misses). Their completion times stay on the
  // background lane and must not feed back into SSD-side scheduling.
  std::sort(destages.begin(), destages.end(),
            [](const Move& a, const Move& b) { return a.lba < b.lba; });
  primary_->set_background(true);
  SimTime destaged_at = t;
  const u32 destage_span =
      (!destages.empty() && span_ != nullptr && span_->sampling())
          ? span_->begin_span("src.destage", t)
          : obs::kNoSpan;
  std::vector<u64> wtags;
  size_t i = 0;
  while (i < destages.size()) {
    size_t j = i + 1;
    while (j < destages.size() && destages[j].lba == destages[j - 1].lba + 1) ++j;
    wtags.clear();
    for (size_t k = i; k < j; ++k) wtags.push_back(destages[k].tag);
    auto r = primary_->write(t, destages[i].lba, static_cast<u32>(j - i),
                             std::span<const u64>(wtags.data(), wtags.size()));
    if (r.ok()) {
      destaged_at = std::max(destaged_at, r.done);
      for (size_t k = i; k < j; ++k)
        ledger_.add(obs::kPrimaryDevice, destages[k].tenant,
                    destages[k].shed ? WriteCause::kQuotaShed
                                     : WriteCause::kDestage,
                    kBlockSize);
    }
    stats_.destage_blocks += j - i;
    for (size_t k = i; k < j; ++k)
      tenants_[destages[k].tenant].destage_blocks++;
    i = j;
  }
  if (destage_span != obs::kNoSpan)
    span_->end_span(destage_span, destaged_at, destages.size());
  primary_->set_background(false);

  // S2S copies re-enter the segment buffers cold (second chance). They are
  // staged only; the seal_buffer drain loop that triggered this reclaim
  // writes them out (staging never re-enters a seal).
  for (const Move& m : copies) {
    stats_.gc_copy_blocks++;
    if (m.dirty) {
      stage_dirty(m.lba, m.tag, m.tenant, now, WriteCause::kGcRewrite);
      map_.at(m.lba).flags &= static_cast<u8>(~kFlagHot);
    } else {
      stage_clean(m.lba, m.tag, m.tenant, now, WriteCause::kGcRewrite);
    }
  }

  // The whole SG is dead: TRIM it so the SSDs reclaim the erase groups
  // without copying (the log-structured payoff, §4.1).
  for (auto* d : ssds_) {
    if (d->failed()) continue;
    auto r = d->trim(t, sg_base_block(v), cfg_.eg_blocks());
    if (r.ok()) t = std::max(t, r.done);
  }
  // The whole SG is garbage now: pending rebuild copies into it are stale.
  if (rebuild_ != nullptr) rebuild_->discard(sg_base_block(v), cfg_.eg_blocks());

  SgInfo fresh;
  fresh.segs.resize(cfg_.segments_per_sg());
  // The SG may be rewritten only once its dirty data is safe on primary
  // storage; until then, writes into it stall (back-pressure).
  fresh.ready_at = destaged_at;
  sgs_[v] = std::move(fresh);
  free_sgs_.push_back(v);
  in_gc_ = was_in_gc;
  if (trace_ != nullptr)
    trace_->complete(use_s2d ? "src.sg_reclaim_s2d" : "src.sg_reclaim_s2s",
                     trace_track_, now, t, v);
  if (reclaim_span != obs::kNoSpan) span_->end_span(reclaim_span, t, v);
  return t;
}

}  // namespace srcache::src
