#include "src_cache/segment_meta.hpp"

#include <cstring>

namespace srcache::src {

namespace {

void put_u64(std::vector<u8>& out, u64 v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}
void put_u32(std::vector<u8>& out, u32 v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

class Reader {
 public:
  explicit Reader(const std::vector<u8>& buf) : buf_(buf) {}
  bool u64v(u64* v) {
    if (pos_ + 8 > buf_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<u64>(buf_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return true;
  }
  bool u32v(u32* v) {
    if (pos_ + 4 > buf_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<u32>(buf_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return true;
  }
  [[nodiscard]] size_t pos() const { return pos_; }

 private:
  const std::vector<u8>& buf_;
  size_t pos_ = 0;
};

void append_crc(std::vector<u8>& buf) {
  const u32 crc = common::crc32c(std::span<const u8>(buf.data(), buf.size()));
  put_u32(buf, crc);
}

bool check_crc(const std::vector<u8>& buf) {
  if (buf.size() < 4) return false;
  const u32 stored = static_cast<u32>(buf[buf.size() - 4]) |
                     static_cast<u32>(buf[buf.size() - 3]) << 8 |
                     static_cast<u32>(buf[buf.size() - 2]) << 16 |
                     static_cast<u32>(buf[buf.size() - 1]) << 24;
  const u32 actual =
      common::crc32c(std::span<const u8>(buf.data(), buf.size() - 4));
  return stored == actual;
}

}  // namespace

blockdev::Payload SegmentMeta::serialize() const {
  auto buf = std::make_shared<std::vector<u8>>();
  buf->reserve(48 + entries.size() * 16 + 4);
  put_u64(*buf, kSegmentMetaMagic);
  put_u64(*buf, generation);
  put_u32(*buf, sg);
  put_u32(*buf, seg);
  put_u32(*buf, (dirty ? 1u : 0u) | (has_parity ? 2u : 0u) |
                    (is_tail ? 4u : 0u) | (static_cast<u32>(parity_col) << 8));
  put_u32(*buf, static_cast<u32>(entries.size()));
  for (const Entry& e : entries) {
    put_u64(*buf, e.lba);
    put_u32(*buf, e.crc);
    put_u32(*buf, e.tenant);
  }
  append_crc(*buf);
  return buf;
}

std::optional<SegmentMeta> SegmentMeta::deserialize(const blockdev::Payload& p) {
  if (!p || !check_crc(*p)) return std::nullopt;
  Reader r(*p);
  u64 magic = 0;
  SegmentMeta m;
  u32 flags = 0, count = 0;
  if (!r.u64v(&magic) || magic != kSegmentMetaMagic) return std::nullopt;
  if (!r.u64v(&m.generation) || !r.u32v(&m.sg) || !r.u32v(&m.seg) ||
      !r.u32v(&flags) || !r.u32v(&count)) {
    return std::nullopt;
  }
  m.dirty = (flags & 1u) != 0;
  m.has_parity = (flags & 2u) != 0;
  m.is_tail = (flags & 4u) != 0;
  m.parity_col = static_cast<u8>(flags >> 8);
  m.entries.resize(count);
  for (u32 i = 0; i < count; ++i) {
    if (!r.u64v(&m.entries[i].lba) || !r.u32v(&m.entries[i].crc) ||
        !r.u32v(&m.entries[i].tenant)) {
      return std::nullopt;
    }
  }
  return m;
}

blockdev::Payload Superblock::serialize() const {
  auto buf = std::make_shared<std::vector<u8>>();
  put_u64(*buf, kSuperblockMagic);
  put_u64(*buf, create_seq);
  put_u32(*buf, num_ssds);
  put_u64(*buf, erase_group_bytes);
  put_u64(*buf, chunk_bytes);
  put_u64(*buf, region_bytes_per_ssd);
  append_crc(*buf);
  return buf;
}

std::optional<Superblock> Superblock::deserialize(const blockdev::Payload& p) {
  if (!p || !check_crc(*p)) return std::nullopt;
  Reader r(*p);
  u64 magic = 0;
  Superblock s;
  if (!r.u64v(&magic) || magic != kSuperblockMagic) return std::nullopt;
  if (!r.u64v(&s.create_seq) || !r.u32v(&s.num_ssds) ||
      !r.u64v(&s.erase_group_bytes) || !r.u64v(&s.chunk_bytes) ||
      !r.u64v(&s.region_bytes_per_ssd)) {
    return std::nullopt;
  }
  return s;
}

}  // namespace srcache::src
