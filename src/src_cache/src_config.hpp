// SRC configuration — the design space of the paper's Table 7.
#pragma once

#include <stdexcept>
#include <string>

#include "common/types.hpp"
#include "policy/policy.hpp"
#include "sim/time.hpp"

namespace srcache::src {

// Free-space reclamation policy (§4.2). S2D destages dirty victims to
// primary storage and drops clean ones; Sel-GC keeps hot data by copying
// SSD-to-SSD while utilization is below UMAX.
enum class GcPolicy { kS2D, kSelGc };

// Victim segment-group selection (§4.2). kCostBenefit is our
// implementation of the paper's §6 future-work direction: the classic LFS
// age x free-space benefit ratio, which beats pure Greedy when hot and
// cold SGs coexist.
enum class VictimPolicy { kFifo, kGreedy, kCostBenefit };

// Stripe organisation of a segment across the SSD array (§5.2, Table 10;
// RAID-1 is our extension for parity with the Fig. 1 baseline set).
enum class SrcRaidLevel { kRaid0, kRaid1, kRaid4, kRaid5 };

// Clean-data redundancy (§4.3): Parity-for-Clean writes parity for clean
// segments too; No-Parity-for-Clean reclaims that space since clean blocks
// can always be refetched from primary storage.
enum class CleanRedundancy { kPC, kNPC };

// flush issue points (§4.1): after every segment write, or only when the
// active segment group fills.
enum class FlushControl { kPerSegment, kPerSegmentGroup };

const char* to_string(GcPolicy p);
const char* to_string(VictimPolicy p);
const char* to_string(SrcRaidLevel l);
const char* to_string(CleanRedundancy c);
const char* to_string(FlushControl f);

struct SrcConfig {
  u32 num_ssds = 4;

  // Per-SSD region granted to one segment group; matched to the device
  // erase group size (256 MiB for the prototype's SSDs, Fig. 2).
  u64 erase_group_bytes = 256 * MiB;
  // Per-SSD share of one segment (512 KiB in the paper: the largest unit
  // transferable to the device in one request).
  u64 chunk_bytes = 512 * KiB;
  // Per-SSD cache region size; region/erase_group = segment-group count
  // (the paper uses 18 SGs: 18 GB of cache over 4 SSDs).
  u64 region_bytes_per_ssd = 4608ull * MiB;
  // First block of the region on each SSD.
  u64 region_start_block = 0;

  SrcRaidLevel raid = SrcRaidLevel::kRaid5;
  CleanRedundancy clean_redundancy = CleanRedundancy::kNPC;
  GcPolicy gc = GcPolicy::kSelGc;
  VictimPolicy victim = VictimPolicy::kFifo;
  double umax = 0.90;
  FlushControl flush_control = FlushControl::kPerSegmentGroup;

  // Replacement/admission scheme (src/policy): which clean blocks GC keeps
  // and which read-miss fills are cached. The defaults reproduce the
  // paper's hard-coded behaviour exactly; the REPRO_POLICY/REPRO_ADMIT
  // knobs select alternatives for the frontier bake-off.
  policy::EvictionKind eviction = policy::EvictionKind::kPaper;
  policy::AdmissionKind admission = policy::AdmissionKind::kAlways;

  // Partial-segment timeout: seal a non-empty dirty segment buffer if no
  // write arrives for this long. The paper quotes 20 us (§4.1), which at
  // our request granularity would seal almost every buffer partially and
  // waste most slots; 10 ms preserves the intent (a bounded loss window)
  // without the artifact. EXPERIMENTS.md records this deviation.
  sim::SimTime twait = 10 * sim::kMs;

  // Verify per-block CRCs on cache-hit reads (§4.1 silent-corruption
  // handling). Disable for runs whose devices don't track content.
  bool verify_checksums = true;

  // Segment writes allowed in flight before write acks are throttled.
  u32 max_inflight_segment_writes = 4;
  // Free segment groups maintained by GC.
  u32 free_sg_reserve = 2;

  // --- derived geometry -----------------------------------------------

  [[nodiscard]] u64 eg_blocks() const { return erase_group_bytes / kBlockSize; }
  [[nodiscard]] u64 chunk_blocks() const { return chunk_bytes / kBlockSize; }
  [[nodiscard]] u64 slots_per_chunk() const { return chunk_blocks() - 2; }  // minus MS, ME
  [[nodiscard]] u64 segments_per_sg() const { return eg_blocks() / chunk_blocks(); }
  [[nodiscard]] u64 sg_count() const { return region_bytes_per_ssd / erase_group_bytes; }

  [[nodiscard]] u64 data_cols(bool with_parity) const {
    switch (raid) {
      case SrcRaidLevel::kRaid0: return num_ssds;
      case SrcRaidLevel::kRaid1: return num_ssds / 2;
      case SrcRaidLevel::kRaid4:
      case SrcRaidLevel::kRaid5: return with_parity ? num_ssds - 1 : num_ssds;
    }
    return 0;
  }

  // Whether segments of the given type carry redundancy.
  [[nodiscard]] bool segment_has_parity(bool dirty) const {
    if (raid == SrcRaidLevel::kRaid0) return false;
    if (raid == SrcRaidLevel::kRaid1) return true;  // mirroring
    return dirty || clean_redundancy == CleanRedundancy::kPC;
  }

  // Data slots per segment for the given segment type.
  [[nodiscard]] u64 segment_data_slots(bool dirty) const {
    if (raid == SrcRaidLevel::kRaid1) return data_cols(true) * slots_per_chunk();
    const bool parity = segment_has_parity(dirty);
    return (parity ? num_ssds - 1 : num_ssds) * slots_per_chunk();
  }

  // Conservative cache data capacity in blocks (all-dirty segments), used
  // for the UMAX utilization threshold. SG 0 holds the superblock.
  [[nodiscard]] u64 capacity_blocks() const {
    return (sg_count() - 1) * segments_per_sg() * segment_data_slots(true);
  }

  void validate() const {
    if (num_ssds < 2) throw std::invalid_argument("SRC needs >= 2 SSDs");
    if (raid == SrcRaidLevel::kRaid1 && num_ssds % 2 != 0)
      throw std::invalid_argument("SRC RAID-1 needs an even SSD count");
    if (chunk_bytes % kBlockSize != 0 || chunk_blocks() < 3)
      throw std::invalid_argument("chunk must hold MS, ME and >= 1 data block");
    if (erase_group_bytes % chunk_bytes != 0)
      throw std::invalid_argument("erase group must be a multiple of the chunk");
    if (region_bytes_per_ssd % erase_group_bytes != 0 || sg_count() < 3)
      throw std::invalid_argument("region must hold >= 3 segment groups");
    if (umax <= 0.0 || umax > 1.0) throw std::invalid_argument("umax in (0, 1]");
  }

  [[nodiscard]] std::string describe() const;
};

}  // namespace srcache::src
