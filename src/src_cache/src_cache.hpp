// SRC — SSD RAID as a Cache (the paper's contribution, §4).
//
// A write-back block cache over an array of commodity SSDs organised as a
// log of *segment groups* (SGs). Each SG spans all SSDs and is sized to the
// devices' erase group; segments (chunk × num_ssds) are written whole —
// data, MS/ME metadata blocks and parity in one stripe — so the SSDs see
// only large sequential writes and whole-SG TRIMs, and the RAID layer never
// needs a read-modify-write.
//
// Implemented design space (Table 7): RAID-0/1/4/5 stripe formation,
// PC/NPC clean-data redundancy, S2D vs Sel-GC reclamation with FIFO/Greedy
// victim selection and the UMAX threshold, flush per segment vs per SG,
// partial-segment timeout, checksum verification with parity / refetch
// repair, crash recovery from MS/ME generation matching, and fail-stop SSD
// handling.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "block/block_device.hpp"
#include "cache/cache_device.hpp"
#include "fault/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "raid/rebuild.hpp"
#include "src_cache/segment_meta.hpp"
#include "src_cache/src_config.hpp"

namespace srcache::src {

using blockdev::BlockDevice;
using sim::SimTime;

class SrcCache final : public cache::CacheDevice {
 public:
  // Counters beyond the generic CacheStats.
  struct ExtraStats {
    u64 segments_written = 0;
    u64 partial_segments = 0;
    u64 clean_segments = 0;
    u64 dirty_segments = 0;
    u64 sg_reclaims = 0;
    u64 s2d_reclaims = 0;
    u64 s2s_reclaims = 0;
    u64 flushes_issued = 0;      // flush commands SRC sent to the SSDs
    u64 checksum_errors = 0;
    u64 media_errors = 0;        // device-reported latent sector errors
    u64 parity_repairs = 0;
    u64 refetch_repairs = 0;
    u64 unrecoverable_blocks = 0;
    u64 lost_clean_blocks = 0;   // dropped on SSD failure (NPC mode)
    u64 lost_dirty_blocks = 0;   // data loss (RAID-0 only)
    u64 torn_segments_discarded = 0;  // MS/ME generation mismatch in recover
  };

  enum class Residence {
    kAbsent,
    kDirtyBuffer,
    kCleanBuffer,
    kCachedDirty,
    kCachedClean,
  };

  // Per-tenant accounting. Slot 0 always exists; set_tenant_quotas (or a
  // request carrying a new tenant id) grows the vector.
  struct TenantStats {
    u64 read_hit_blocks = 0;
    u64 read_miss_blocks = 0;
    u64 write_blocks = 0;
    u64 fetch_bypass_blocks = 0;  // misses served but not admitted (over quota)
    u64 write_bypass_blocks = 0;  // new writes sent to primary (over quota)
    u64 gc_shed_blocks = 0;       // blocks GC would have kept, shed over quota
    u64 destage_blocks = 0;
    u64 live_blocks = 0;   // current occupancy, buffers included
    u64 quota_blocks = 0;  // enforced share (0 while unmanaged)
  };

  // Testing hook: abort a segment write at a chosen point to model a torn
  // write / power loss (recovery must then discard the segment).
  // kBeforeSeg cuts power before anything of the segment reaches media.
  enum class CrashPoint { kNone, kAfterMs, kAfterData, kBeforeSeg };

  // `ssds` are borrowed and must each expose at least
  // region_start_block + region blocks. `primary` is the backing store.
  SrcCache(const SrcConfig& cfg, std::vector<BlockDevice*> ssds,
           BlockDevice* primary);

  // Initializes an empty cache: writes the superblock into SG 0 (§4.1).
  SimTime format(SimTime now);

  // Rebuilds the in-memory state from on-SSD metadata after a crash:
  // validates the superblock, scans every segment's MS/ME pair, keeps
  // segments whose generations match, newest generation wins per LBA.
  Status recover(SimTime now, SimTime* done = nullptr);

  SimTime submit(const cache::AppRequest& req) override;
  SimTime flush(SimTime now) override;
  [[nodiscard]] const cache::CacheStats& stats() const override { return stats_; }
  [[nodiscard]] u64 cached_blocks() const override { return map_.size(); }

  [[nodiscard]] const SrcConfig& config() const { return cfg_; }
  [[nodiscard]] const ExtraStats& extra() const { return extra_; }

  // Multi-tenant capacity steering. Quotas (blocks per tenant) are soft
  // targets enforced without eviction storms: an over-quota tenant's misses
  // are served but not admitted, GC victim selection favours SGs rich in its
  // blocks, and Sel-GC sheds (destages or drops) its blocks instead of
  // keeping them — the tenant drains by attrition. Typically driven by
  // adapt::AdaptiveController at epoch boundaries.
  void set_tenant_quotas(const std::vector<u64>& quotas);
  [[nodiscard]] const std::vector<TenantStats>& tenant_stats() const {
    return tenants_;
  }
  [[nodiscard]] u32 tenant_count() const {
    return static_cast<u32>(tenants_.size());
  }
  [[nodiscard]] double utilization() const;
  [[nodiscard]] u64 free_sg_count() const { return free_sgs_.size(); }
  [[nodiscard]] Residence residence(u64 lba) const;

  // Reacts to a fail-stopped SSD: drops unprotected blocks, keeps
  // parity-protected ones for on-the-fly reconstruction (§4.3).
  void on_ssd_failure(size_t ssd);

  // --- online rebuild (raid/rebuild.hpp) ---
  // Live-segment map export: the extents a replaced SSD must be rebuilt
  // from, in device-block order. MS/ME and superblock replicas are
  // rewritten from in-RAM state; data rows decode via mirror or parity.
  // Rows without redundancy (NPC clean segments) were already dropped at
  // fail time and are skipped — the SRC-aware saving over a blind
  // full-device sweep.
  [[nodiscard]] std::vector<raid::RebuildExtent> rebuild_extents(
      size_t dev) const;
  // Attaches the rebuild engine: its mask diverts reads of not-yet-rebuilt
  // blocks off the blank replacement, and segment seals / SG trims discard
  // stale pending stripes. Wire on_rebuild_lost to its abort callback and
  // rebuild_extents as its extent source.
  void set_rebuild(raid::RebuildManager* mgr) { rebuild_ = mgr; }
  // A second failure made `lost` ranges of `dev` unreconstructable: drops
  // the cached blocks addressed there, counted lost, dirty or clean.
  void on_rebuild_lost(size_t dev,
                       const std::vector<raid::RebuildExtent>& lost);

  // Proactive integrity scrub: reads and checksum-verifies every live
  // cached block, repairing through parity/mirror/refetch as on the read
  // path (§4.1). Returns per-outcome counts.
  struct ScrubReport {
    u64 scanned = 0;
    u64 repaired = 0;       // parity/mirror reconstructions
    u64 refetched = 0;      // clean blocks re-read from primary
    u64 unrecoverable = 0;  // lost (RAID-0 dirty only)
  };
  ScrubReport scrub(SimTime now, SimTime* done = nullptr);

  // Internal-invariant audit for tests: mapping table vs segment census vs
  // live counters. Returns the first violated invariant.
  [[nodiscard]] Status verify_consistency() const;

  void set_crash_point(CrashPoint p) { crash_point_ = p; }

  // Crash-consistency harness hooks: power-cut exactly at the `nth_seal`-th
  // segment write (0-indexed), at the chosen point within the stripe. Once
  // the cut fires, no further I/O of any kind reaches the devices; the
  // instance is then only good for inspecting what made it to media.
  void schedule_crash(u64 nth_seal, CrashPoint p) {
    crash_scheduled_ = true;
    crash_at_seal_ = nth_seal;
    crash_at_point_ = p;
  }
  [[nodiscard]] bool crashed() const { return crashed_; }
  // Segment writes issued so far; a full run's count enumerates the
  // power-cut boundaries the harness sweeps.
  [[nodiscard]] u64 seals() const { return seal_count_; }

  // --- compressed DRAM tier hand-off (src/tier) ---
  // Dirty blocks destaged by the tier enter the normal dirty staging path
  // under the kTierDestage provenance cause; clean blocks demoted on tier
  // eviction stage as clean fills under kTierDemote (a no-op when the block
  // is already resident — the cached copy wins). Both return the ack time
  // after draining full segments and applying the in-flight throttle.
  SimTime tier_destage(SimTime now, std::span<const u64> lbas,
                       std::span<const u64> tags,
                       std::span<const u16> tenants);
  SimTime tier_demote(SimTime now, u64 lba, u64 tag, u16 tenant);
  // Promotion hint for the tier: true when the block is resident here and
  // marked hot (recently re-accessed), i.e. worth holding in DRAM too.
  [[nodiscard]] bool hot_hint(u64 lba) const;

  // Optional fault accounting: detection (CRC mismatch, media error) and
  // repair events on the read path are reported to `ledger`, keyed by
  // (ssd index, device block), matching FaultInjector's injection records.
  void set_fault_ledger(fault::FaultLedger* ledger) { fault_ledger_ = ledger; }

  // Registers pull-style observability metrics (segment/reclaim/repair
  // counters, utilization, free-SG gauge) under `scope`, e.g. "src". The
  // callbacks read this cache; it must outlive the registry's snapshots.
  void register_metrics(const obs::Scope& scope);

  // Attaches an event trace (nullptr detaches): segment seals, SG reclaims,
  // flushes, repairs and failure handling are emitted on `track`.
  void set_trace(obs::TraceLog* log, u32 track) {
    trace_ = log;
    trace_track_ = track;
  }

  // Attaches an op-span tracer (nullptr detaches): segment fills, reclaims,
  // destages and backend fetches become child spans of the sampled op.
  void set_span(obs::SpanTracer* tracer) { span_ = tracer; }

  // Cumulative write-provenance ledger: every byte this cache wrote to the
  // SSDs (obs device index = array position) or to primary storage
  // (obs::kPrimaryDevice), attributed to its cause. Always on — recording is
  // integer adds on the seal/destage paths. The balance invariant (per
  // device: ledger bytes == DeviceStats::write_blocks x kBlockSize) is
  // asserted by provenance_test.
  [[nodiscard]] const obs::ProvenanceLedger& provenance() const {
    return ledger_;
  }
  // Mutable handle for external writers sharing this cache's SSDs: the
  // background rebuild engine ledgers its spare writes here (rebuild_copy)
  // so the per-device balance invariant keeps holding during a rebuild.
  [[nodiscard]] obs::ProvenanceLedger& mutable_provenance() { return ledger_; }

 private:
  static constexpr u32 kBufferSg = ~0u;
  static constexpr u8 kFlagDirty = 1;
  static constexpr u8 kFlagHot = 2;

  struct MapEntry {
    u32 sg = 0;
    u32 seg = 0;
    u32 slot = 0;
    u16 tenant = 0;
    u8 flags = 0;
    [[nodiscard]] bool dirty() const { return (flags & kFlagDirty) != 0; }
    [[nodiscard]] bool hot() const { return (flags & kFlagHot) != 0; }
    [[nodiscard]] bool buffered() const { return sg == kBufferSg; }
  };

  enum class SegType : u8 { kNone, kClean, kDirty };

  struct SegmentInfo {
    SegType type = SegType::kNone;
    bool has_parity = false;
    u8 parity_col = 0;
    u64 generation = 0;
    u32 live = 0;
    std::vector<u64> slot_lba;
    std::vector<u32> slot_crc;
    std::vector<u16> slot_tenant;
  };

  enum class SgState : u8 { kFree, kActive, kSealed, kReclaiming, kSuper };

  struct SgInfo {
    SgState state = SgState::kFree;
    u64 seal_seq = 0;
    u32 live = 0;
    u32 next_seg = 0;
    // Earliest time the (freed) SG may be rewritten: its destages must have
    // reached primary storage first. Writes into it stall until then,
    // which is how destage pressure throttles the foreground (§4.2).
    SimTime ready_at = 0;
    std::vector<SegmentInfo> segs;
    // Live blocks per tenant in this SG (grown lazily); lets GC victim
    // selection price over-quota tenants' blocks as reclaimable.
    std::vector<u32> live_by_tenant;
  };

  struct SegBuffer {
    std::vector<u64> lbas;  // kDeadSlot marks an invalidated staged block
    std::vector<u64> tags;
    std::vector<u16> tenants;
    // Why each staged block exists (obs::WriteCause); rides along to the
    // seal so the flash bytes it turns into are attributed at stage time.
    std::vector<u8> causes;
    u32 live = 0;
    void clear() {
      lbas.clear();
      tags.clear();
      tenants.clear();
      causes.clear();
      live = 0;
    }
  };

  struct SlotAddr {
    size_t dev;
    u64 block;
    size_t mirror_dev = SIZE_MAX;  // RAID-1 replica
  };

  // --- geometry ---
  [[nodiscard]] u64 sg_base_block(u32 sg) const;
  [[nodiscard]] u64 chunk_base_block(u32 sg, u32 seg) const;
  [[nodiscard]] u64 seg_data_cols(const SegmentInfo& si) const;
  [[nodiscard]] SlotAddr addr_of(u32 sg, u32 seg, u32 slot,
                                 const SegmentInfo& si) const;

  // --- tenants ---
  // Clamps an application tenant id into the stats vector, growing it when
  // quotas are not enforced (unmanaged runs still account per tenant).
  u16 norm_tenant(u32 tenant);
  [[nodiscard]] bool over_quota(u16 tenant) const;
  void census_add(SgInfo& sg, u16 tenant, u32 n);
  void census_sub(SgInfo& sg, u16 tenant, u32 n);
  // Victim live count with over-quota tenants' blocks priced as garbage.
  [[nodiscard]] u64 reclaimable_live(const SgInfo& sg) const;
  void register_tenant_metrics();

  // --- write path ---
  SimTime do_write(const cache::AppRequest& req);
  // Staging only appends to a segment buffer; sealing is driven by
  // seal_buffer so that GC-induced appends can never re-enter a seal.
  void stage_dirty(u64 lba, u64 tag, u16 tenant, SimTime now,
                   obs::WriteCause cause);
  void stage_clean(u64 lba, u64 tag, u16 tenant, SimTime now,
                   obs::WriteCause cause);
  // Drains every full segment from the buffer (and, when force_partial, a
  // trailing partial one). GC triggered by SG allocation may append more
  // entries; the drain loop absorbs them.
  SimTime seal_buffer(SimTime now, bool dirty_type, bool force_partial);
  // Writes exactly one segment from the buffer front (count entries).
  SimTime write_one_segment(SimTime now, bool dirty_type, u64 count);
  SimTime drain_buffers(SimTime now);
  u32 allocate_sg(SimTime now);
  SimTime throttle(SimTime now, SimTime ack);
  void maybe_timeout_partial(SimTime now);

  // --- read path ---
  SimTime do_read(const cache::AppRequest& req);
  // Reads one cached slot with checksum verification and repair; used by
  // both the degraded/corrupt read path and GC.
  Result<u64> read_slot(SimTime now, u32 sg, u32 seg, u32 slot, SimTime* done);
  Result<u64> reconstruct_from_stripe(SimTime now, u32 sg, u32 seg, u32 slot,
                                      SimTime* done);

  // --- reclamation ---
  SimTime ensure_free_sg(SimTime now);
  SimTime reclaim_one(SimTime now, bool force_s2d);
  [[nodiscard]] u32 pick_victim() const;

  // --- bookkeeping ---
  // True when the block must not be served from the device itself: the
  // device is failed, or a blank replacement has not been rebuilt here yet
  // (a masked read would return stale/blank data, not an error).
  [[nodiscard]] bool dev_dead(size_t dev, u64 block) const {
    if (ssds_[dev]->failed()) return true;
    return rebuild_ != nullptr && rebuild_->covers(dev, block);
  }
  void invalidate_slot(u64 lba, const MapEntry& e);
  void detach(u64 lba, const MapEntry& e);  // invalidate without erasing map
  SimTime flush_all_ssds(SimTime now);
  [[nodiscard]] u64 buffer_capacity(bool dirty_type) const;

  SrcConfig cfg_;
  std::vector<BlockDevice*> ssds_;
  BlockDevice* primary_;

  // Replacement/admission policies (src/policy), chosen by cfg_.eviction /
  // cfg_.admission. Recreated cold by recover() and re-seeded from the
  // rebuilt map, so a crash never carries policy state across the cut.
  std::unique_ptr<policy::EvictionPolicy> eviction_;
  std::unique_ptr<policy::AdmissionPolicy> admission_;

  std::unordered_map<u64, MapEntry> map_;
  std::vector<SgInfo> sgs_;
  std::deque<u32> free_sgs_;
  u32 active_sg_ = kBufferSg;

  SegBuffer dirty_buf_;
  SegBuffer clean_buf_;

  std::deque<SimTime> inflight_;  // outstanding segment-write completions
  u64 live_total_ = 0;            // live blocks on SSDs (not buffered)
  u64 gen_seq_ = 0;
  u64 seal_seq_ = 0;
  u64 tag_version_ = 0;
  SimTime last_dirty_stage_ = 0;
  bool in_gc_ = false;
  CrashPoint crash_point_ = CrashPoint::kNone;
  bool crash_scheduled_ = false;
  u64 crash_at_seal_ = 0;
  CrashPoint crash_at_point_ = CrashPoint::kNone;
  bool crashed_ = false;
  u64 seal_count_ = 0;
  fault::FaultLedger* fault_ledger_ = nullptr;
  raid::RebuildManager* rebuild_ = nullptr;

  cache::CacheStats stats_;
  ExtraStats extra_;
  std::vector<TenantStats> tenants_{1};
  bool quotas_enforced_ = false;

  obs::TraceLog* trace_ = nullptr;
  u32 trace_track_ = 0;
  obs::SpanTracer* span_ = nullptr;
  obs::ProvenanceLedger ledger_;
  // Kept so tenants configured after register_metrics still get per-tenant
  // metrics registered (set_tenant_quotas may run later).
  std::optional<obs::Scope> metrics_scope_;
  size_t tenants_registered_ = 0;
};

}  // namespace srcache::src
