#include "src_cache/src_cache.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/crc32c.hpp"

namespace srcache::src {

namespace {
// CPU cost of staging one block into a segment buffer / serving from RAM.
constexpr SimTime kStageCost = 1 * sim::kUs;
constexpr SimTime kRamReadCost = 500 * sim::kNs;

using obs::WriteCause;

// Blocks a payload write occupies — must match the devices' rounding
// (MemDisk/SimSsd: ceil(size / block), at least 1) so the provenance ledger
// balances bit-exactly against DeviceStats::write_blocks.
u64 payload_blocks(const blockdev::Payload& p) {
  const u64 n = bytes_to_blocks(p ? p->size() : 1);
  return n == 0 ? 1 : n;
}
}  // namespace

const char* to_string(GcPolicy p) {
  return p == GcPolicy::kS2D ? "S2D" : "Sel-GC";
}
const char* to_string(VictimPolicy p) {
  switch (p) {
    case VictimPolicy::kFifo: return "FIFO";
    case VictimPolicy::kGreedy: return "Greedy";
    case VictimPolicy::kCostBenefit: return "CostBenefit";
  }
  return "?";
}
const char* to_string(SrcRaidLevel l) {
  switch (l) {
    case SrcRaidLevel::kRaid0: return "RAID-0";
    case SrcRaidLevel::kRaid1: return "RAID-1";
    case SrcRaidLevel::kRaid4: return "RAID-4";
    case SrcRaidLevel::kRaid5: return "RAID-5";
  }
  return "?";
}
const char* to_string(CleanRedundancy c) {
  return c == CleanRedundancy::kPC ? "PC" : "NPC";
}
const char* to_string(FlushControl f) {
  return f == FlushControl::kPerSegment ? "per-segment" : "per-SG";
}

std::string SrcConfig::describe() const {
  std::string s = "SRC{";
  s += std::to_string(num_ssds) + " SSDs, EG ";
  s += std::to_string(erase_group_bytes / MiB) + "MiB, ";
  s += to_string(raid);
  s += ", ";
  s += to_string(clean_redundancy);
  s += ", ";
  s += to_string(gc);
  s += "/";
  s += to_string(victim);
  s += ", umax " + std::to_string(static_cast<int>(umax * 100)) + "%, flush ";
  s += to_string(flush_control);
  s += ", ";
  s += policy::to_string(eviction);
  s += "+";
  s += policy::to_string(admission);
  s += "}";
  return s;
}

SrcCache::SrcCache(const SrcConfig& cfg, std::vector<BlockDevice*> ssds,
                   BlockDevice* primary)
    : cfg_(cfg), ssds_(std::move(ssds)), primary_(primary) {
  cfg_.validate();
  if (ssds_.size() != cfg_.num_ssds)
    throw std::invalid_argument("SRC: device count != config");
  const u64 region_blocks = cfg_.region_bytes_per_ssd / kBlockSize;
  for (auto* d : ssds_) {
    if (d->capacity_blocks() < cfg_.region_start_block + region_blocks)
      throw std::invalid_argument("SRC: SSD smaller than cache region");
  }
  sgs_.resize(cfg_.sg_count());
  for (auto& sg : sgs_) sg.segs.resize(cfg_.segments_per_sg());
  eviction_ = policy::make_eviction(cfg_.eviction, cfg_.capacity_blocks());
  admission_ = policy::make_admission(cfg_.admission, cfg_.capacity_blocks());
}

// --- geometry ---------------------------------------------------------------

u64 SrcCache::sg_base_block(u32 sg) const {
  return cfg_.region_start_block + static_cast<u64>(sg) * cfg_.eg_blocks();
}

u64 SrcCache::chunk_base_block(u32 sg, u32 seg) const {
  return sg_base_block(sg) + static_cast<u64>(seg) * cfg_.chunk_blocks();
}

u64 SrcCache::seg_data_cols(const SegmentInfo& si) const {
  if (cfg_.raid == SrcRaidLevel::kRaid1) return cfg_.num_ssds / 2;
  return si.has_parity ? cfg_.num_ssds - 1 : cfg_.num_ssds;
}

SrcCache::SlotAddr SrcCache::addr_of(u32 sg, u32 seg, u32 slot,
                                     const SegmentInfo& si) const {
  const u64 rows = cfg_.slots_per_chunk();
  const u64 col = slot / rows;  // column-major: each column is one SSD chunk
  const u64 row = slot % rows;
  size_t dev;
  size_t mirror = SIZE_MAX;
  if (cfg_.raid == SrcRaidLevel::kRaid1) {
    dev = static_cast<size_t>(col);
    mirror = dev + cfg_.num_ssds / 2;
  } else if (si.has_parity && col >= si.parity_col) {
    dev = static_cast<size_t>(col) + 1;
  } else {
    dev = static_cast<size_t>(col);
  }
  // +1 skips the MS block at the chunk head.
  return {dev, chunk_base_block(sg, seg) + 1 + row, mirror};
}

u64 SrcCache::buffer_capacity(bool dirty_type) const {
  return cfg_.segment_data_slots(dirty_type);
}

double SrcCache::utilization() const {
  const u64 cap = cfg_.capacity_blocks();
  return cap == 0 ? 0.0
                  : static_cast<double>(live_total_) / static_cast<double>(cap);
}

SrcCache::Residence SrcCache::residence(u64 lba) const {
  auto it = map_.find(lba);
  if (it == map_.end()) return Residence::kAbsent;
  const MapEntry& e = it->second;
  if (e.buffered())
    return e.dirty() ? Residence::kDirtyBuffer : Residence::kCleanBuffer;
  return e.dirty() ? Residence::kCachedDirty : Residence::kCachedClean;
}

// --- lifecycle --------------------------------------------------------------

SimTime SrcCache::format(SimTime now) {
  Superblock sb;
  sb.create_seq = 1;
  sb.num_ssds = cfg_.num_ssds;
  sb.erase_group_bytes = cfg_.erase_group_bytes;
  sb.chunk_bytes = cfg_.chunk_bytes;
  sb.region_bytes_per_ssd = cfg_.region_bytes_per_ssd;
  const auto payload = sb.serialize();
  SimTime done = now;
  for (size_t d = 0; d < ssds_.size(); ++d) {
    auto r = ssds_[d]->write_payload(now, sg_base_block(0), payload);
    if (r.ok()) {
      done = std::max(done, r.done);
      ledger_.add(static_cast<u32>(d), obs::kSharedTenant, WriteCause::kParity,
                  payload_blocks(payload) * kBlockSize);
    }
  }
  // SG 0 holds the superblock and is never written again (§4.1).
  sgs_[0].state = SgState::kSuper;
  free_sgs_.clear();
  for (u32 s = 1; s < cfg_.sg_count(); ++s) {
    sgs_[s] = SgInfo{};
    sgs_[s].segs.resize(cfg_.segments_per_sg());
    free_sgs_.push_back(s);
  }
  done = flush_all_ssds(done);
  return done;
}

SimTime SrcCache::flush_all_ssds(SimTime now) {
  if (crashed_) return now;  // power is off: nothing reaches the devices
  SimTime done = now;
  for (auto* d : ssds_) {
    if (d->failed()) continue;
    auto r = d->flush(now);
    if (r.ok()) done = std::max(done, r.done);
  }
  extra_.flushes_issued++;
  if (trace_ != nullptr) trace_->complete("src.flush", trace_track_, now, done);
  return done;
}

void SrcCache::register_metrics(const obs::Scope& scope) {
  scope.counter_fn("segments_written",
                   [this] { return extra_.segments_written; });
  scope.counter_fn("partial_segments",
                   [this] { return extra_.partial_segments; });
  scope.counter_fn("clean_segments", [this] { return extra_.clean_segments; });
  scope.counter_fn("dirty_segments", [this] { return extra_.dirty_segments; });
  scope.counter_fn("sg_reclaims", [this] { return extra_.sg_reclaims; });
  scope.counter_fn("s2d_reclaims", [this] { return extra_.s2d_reclaims; });
  scope.counter_fn("s2s_reclaims", [this] { return extra_.s2s_reclaims; });
  scope.counter_fn("flushes", [this] { return extra_.flushes_issued; });
  scope.counter_fn("checksum_errors",
                   [this] { return extra_.checksum_errors; });
  scope.counter_fn("media_errors", [this] { return extra_.media_errors; });
  scope.counter_fn("parity_repairs", [this] { return extra_.parity_repairs; });
  scope.counter_fn("refetch_repairs",
                   [this] { return extra_.refetch_repairs; });
  scope.counter_fn("unrecoverable_blocks",
                   [this] { return extra_.unrecoverable_blocks; });
  scope.counter_fn("lost_clean_blocks",
                   [this] { return extra_.lost_clean_blocks; });
  scope.counter_fn("lost_dirty_blocks",
                   [this] { return extra_.lost_dirty_blocks; });
  scope.counter_fn("torn_segments_discarded",
                   [this] { return extra_.torn_segments_discarded; });
  scope.counter_fn("segment_seals", [this] { return seal_count_; });
  scope.counter_fn("fetch_blocks", [this] { return stats_.fetch_blocks; });
  scope.counter_fn("destage_blocks", [this] { return stats_.destage_blocks; });
  scope.counter_fn("gc_copy_blocks", [this] { return stats_.gc_copy_blocks; });
  scope.counter_fn("app_flushes", [this] { return stats_.app_flushes; });
  scope.gauge_fn("utilization", [this] { return utilization(); });
  scope.gauge_fn("free_sgs",
                 [this] { return static_cast<double>(free_sgs_.size()); });
  scope.gauge_fn("cached_blocks",
                 [this] { return static_cast<double>(map_.size()); });
  // Segment-buffer occupancy (staged blocks and fill fraction): sampled over
  // time this shows the stage-seal-flush rhythm behind the flush plateaus.
  scope.gauge_fn("dirty_buffer_blocks", [this] {
    return static_cast<double>(dirty_buf_.lbas.size());
  });
  scope.gauge_fn("clean_buffer_blocks", [this] {
    return static_cast<double>(clean_buf_.lbas.size());
  });
  scope.gauge_fn("dirty_buffer_frac", [this] {
    const u64 cap = buffer_capacity(/*dirty_type=*/true);
    return cap == 0 ? 0.0
                    : static_cast<double>(dirty_buf_.lbas.size()) /
                          static_cast<double>(cap);
  });
  scope.gauge_fn("clean_buffer_frac", [this] {
    const u64 cap = buffer_capacity(/*dirty_type=*/false);
    return cap == 0 ? 0.0
                    : static_cast<double>(clean_buf_.lbas.size()) /
                          static_cast<double>(cap);
  });
  // Policy tallies (src/policy). The lambdas read through the unique_ptrs
  // at snapshot time, so recover() swapping in fresh policies is safe.
  const obs::Scope ps = scope.scope("policy");
  ps.counter_fn("gc_kept", [this] { return eviction_->stats().gc_kept; });
  ps.counter_fn("gc_evicted",
                [this] { return eviction_->stats().gc_evicted; });
  ps.counter_fn("promotions",
                [this] { return eviction_->stats().promotions; });
  ps.counter_fn("ghost_hits",
                [this] { return eviction_->stats().ghost_hits; });
  ps.counter_fn("fills_admitted",
                [this] { return admission_->stats().admitted; });
  ps.counter_fn("fills_rejected",
                [this] { return admission_->stats().rejected; });
  ps.counter_fn("admit_ghost_hits",
                [this] { return admission_->stats().ghost_hits; });
  metrics_scope_ = scope;
  tenants_registered_ = 0;
  register_tenant_metrics();
}

void SrcCache::register_tenant_metrics() {
  // Per-tenant metrics appear lazily: tenants can be configured (or first
  // observed) after register_metrics ran.
  if (!metrics_scope_.has_value()) return;
  for (; tenants_registered_ < tenants_.size(); ++tenants_registered_) {
    const size_t t = tenants_registered_;
    const obs::Scope ts =
        metrics_scope_->scope("tenant." + std::to_string(t));
    ts.counter_fn("read_hit_blocks",
                  [this, t] { return tenants_[t].read_hit_blocks; });
    ts.counter_fn("read_miss_blocks",
                  [this, t] { return tenants_[t].read_miss_blocks; });
    ts.counter_fn("write_blocks",
                  [this, t] { return tenants_[t].write_blocks; });
    ts.counter_fn("fetch_bypass_blocks",
                  [this, t] { return tenants_[t].fetch_bypass_blocks; });
    ts.counter_fn("write_bypass_blocks",
                  [this, t] { return tenants_[t].write_bypass_blocks; });
    ts.counter_fn("gc_shed_blocks",
                  [this, t] { return tenants_[t].gc_shed_blocks; });
    ts.counter_fn("destage_blocks",
                  [this, t] { return tenants_[t].destage_blocks; });
    ts.gauge_fn("live_blocks", [this, t] {
      return static_cast<double>(tenants_[t].live_blocks);
    });
    ts.gauge_fn("quota_blocks", [this, t] {
      return static_cast<double>(tenants_[t].quota_blocks);
    });
  }
}

// --- tenants ----------------------------------------------------------------

u16 SrcCache::norm_tenant(u32 tenant) {
  if (tenant >= tenants_.size()) {
    if (quotas_enforced_) return static_cast<u16>(tenants_.size() - 1);
    tenants_.resize(std::min<u32>(tenant, 0xFFFF) + 1);
    register_tenant_metrics();
  }
  return static_cast<u16>(std::min<u32>(tenant, 0xFFFF));
}

bool SrcCache::over_quota(u16 tenant) const {
  if (!quotas_enforced_) return false;
  const TenantStats& t = tenants_[tenant];
  return t.live_blocks >= t.quota_blocks;
}

void SrcCache::census_add(SgInfo& sg, u16 tenant, u32 n) {
  if (tenant >= sg.live_by_tenant.size()) sg.live_by_tenant.resize(tenant + 1, 0);
  sg.live_by_tenant[tenant] += n;
}

void SrcCache::census_sub(SgInfo& sg, u16 tenant, u32 n) {
  sg.live_by_tenant[tenant] -= n;
}

u64 SrcCache::reclaimable_live(const SgInfo& sg) const {
  u64 live = sg.live;
  if (!quotas_enforced_) return live;
  for (u16 t = 0; t < sg.live_by_tenant.size() && t < tenants_.size(); ++t) {
    if (over_quota(t)) live -= std::min<u64>(live, sg.live_by_tenant[t]);
  }
  return live;
}

void SrcCache::set_tenant_quotas(const std::vector<u64>& quotas) {
  if (quotas.empty()) throw std::invalid_argument("SRC: empty tenant quotas");
  if (quotas.size() > 0x10000)
    throw std::invalid_argument("SRC: too many tenants");
  if (quotas.size() > tenants_.size()) tenants_.resize(quotas.size());
  for (size_t t = 0; t < tenants_.size(); ++t)
    tenants_[t].quota_blocks = t < quotas.size() ? quotas[t] : 0;
  quotas_enforced_ = true;
  register_tenant_metrics();
}

// --- bookkeeping ------------------------------------------------------------

void SrcCache::invalidate_slot(u64 lba, const MapEntry& e) {
  (void)lba;
  if (e.buffered()) {
    SegBuffer& buf = e.dirty() ? dirty_buf_ : clean_buf_;
    buf.lbas[e.slot] = kDeadSlot;
    buf.live--;
    return;
  }
  SgInfo& sg = sgs_[e.sg];
  SegmentInfo& si = sg.segs[e.seg];
  si.slot_lba[e.slot] = kDeadSlot;
  si.live--;
  sg.live--;
  census_sub(sg, e.tenant, 1);
  live_total_--;
}

// --- app entry points -------------------------------------------------------

SimTime SrcCache::submit(const cache::AppRequest& req) {
  if (crashed_) return req.now;  // power is off
  maybe_timeout_partial(req.now);
  return req.is_write ? do_write(req) : do_read(req);
}

void SrcCache::maybe_timeout_partial(SimTime now) {
  // Partial-segment timeout (§4.1): if no write arrived for TWAIT and dirty
  // data is buffered, seal what we have to bound the loss window.
  if (dirty_buf_.lbas.empty()) return;
  if (now - last_dirty_stage_ <= cfg_.twait) return;
  seal_buffer(now, /*dirty_type=*/true, /*force_partial=*/true);
}

SimTime SrcCache::flush(SimTime now) {
  stats_.app_flushes++;
  seal_buffer(now, /*dirty_type=*/true, /*force_partial=*/true);
  return flush_all_ssds(now);
}

SimTime SrcCache::throttle(SimTime now, SimTime ack) {
  while (!inflight_.empty() && inflight_.front() <= now) inflight_.pop_front();
  while (inflight_.size() >= cfg_.max_inflight_segment_writes) {
    ack = std::max(ack, inflight_.front());
    inflight_.pop_front();
  }
  return ack;
}

// --- write path -------------------------------------------------------------

void SrcCache::stage_dirty(u64 lba, u64 tag, u16 tenant, SimTime now,
                           obs::WriteCause cause) {
  auto it = map_.find(lba);
  if (it != map_.end()) {
    MapEntry& e = it->second;
    if (e.tenant != tenant) {  // ownership follows the last writer
      tenants_[e.tenant].live_blocks--;
      tenants_[tenant].live_blocks++;
    }
    if (e.buffered() && e.dirty()) {
      dirty_buf_.tags[e.slot] = tag;  // overwrite in place
      dirty_buf_.tenants[e.slot] = tenant;
      dirty_buf_.causes[e.slot] = static_cast<u8>(cause);
      e.tenant = tenant;
      e.flags |= kFlagHot;
      if (cause != WriteCause::kGcRewrite) eviction_->on_access(lba);
      return;
    }
    invalidate_slot(lba, e);
    e.sg = kBufferSg;
    e.seg = 0;
    e.slot = static_cast<u32>(dirty_buf_.lbas.size());
    e.tenant = tenant;
    e.flags = kFlagDirty | kFlagHot;  // a rewrite makes the block hot
    if (cause != WriteCause::kGcRewrite) eviction_->on_access(lba);
  } else {
    MapEntry e;
    e.sg = kBufferSg;
    e.slot = static_cast<u32>(dirty_buf_.lbas.size());
    e.tenant = tenant;
    e.flags = kFlagDirty;
    map_.emplace(lba, e);
    tenants_[tenant].live_blocks++;
    // GC rewrites keep their policy entry (the block never left the cache);
    // everything else is a (re)admission.
    if (cause != WriteCause::kGcRewrite) eviction_->on_admit(lba);
  }
  dirty_buf_.lbas.push_back(lba);
  dirty_buf_.tags.push_back(tag);
  dirty_buf_.tenants.push_back(tenant);
  dirty_buf_.causes.push_back(static_cast<u8>(cause));
  dirty_buf_.live++;
  last_dirty_stage_ = now;
}

void SrcCache::stage_clean(u64 lba, u64 tag, u16 tenant, SimTime now,
                           obs::WriteCause cause) {
  (void)now;
  auto it = map_.find(lba);
  if (it != map_.end()) {
    // Raced with a write or a duplicate fetch; the cached copy wins.
    return;
  }
  MapEntry e;
  e.sg = kBufferSg;
  e.slot = static_cast<u32>(clean_buf_.lbas.size());
  e.tenant = tenant;
  e.flags = 0;
  map_.emplace(lba, e);
  tenants_[tenant].live_blocks++;
  if (cause != WriteCause::kGcRewrite) eviction_->on_admit(lba);
  clean_buf_.lbas.push_back(lba);
  clean_buf_.tags.push_back(tag);
  clean_buf_.tenants.push_back(tenant);
  clean_buf_.causes.push_back(static_cast<u8>(cause));
  clean_buf_.live++;
}

SimTime SrcCache::drain_buffers(SimTime now) {
  SimTime done = now;
  done = std::max(done, seal_buffer(now, /*dirty_type=*/true, false));
  done = std::max(done, seal_buffer(now, /*dirty_type=*/false, false));
  return done;
}

SimTime SrcCache::do_write(const cache::AppRequest& req) {
  const SimTime now = req.now;
  const u16 tenant = norm_tenant(req.tenant);
  stats_.app_write_ops++;
  stats_.app_write_blocks += req.nblocks;
  tenants_[tenant].write_blocks += req.nblocks;
  // Quota admission gate, write side: an over-quota tenant's NEW blocks go
  // straight to primary storage instead of staging, so its occupancy decays
  // toward the quota as GC drains what is already resident. Overwrites of
  // resident blocks still stage — bypassing those would leave stale data in
  // the cache — but they do not grow the footprint.
  std::vector<u64> bypass_lbas;
  std::vector<u64> bypass_tags;
  for (u32 i = 0; i < req.nblocks; ++i) {
    const u64 lba = req.lba + i;
    const u64 tag = req.tags != nullptr
                        ? req.tags[i]
                        : blockdev::make_tag(lba, ++tag_version_);
    if (map_.contains(lba)) {
      stats_.write_hit_blocks++;
    } else if (over_quota(tenant)) {
      // Still a new-block write — it just was not admitted. Counting it keeps
      // hit/miss classification honest: the op paid primary latency.
      stats_.write_new_blocks++;
      tenants_[tenant].write_bypass_blocks++;
      bypass_lbas.push_back(lba);
      bypass_tags.push_back(tag);
      continue;
    } else {
      stats_.write_new_blocks++;
    }
    stage_dirty(lba, tag, tenant, now, WriteCause::kUserWrite);
  }
  drain_buffers(now);
  // Writes are acknowledged once staged in the segment buffer (§4.1); the
  // in-flight throttle applies device back-pressure.
  SimTime ack = now + kStageCost * req.nblocks;
  // Bypassed blocks are acknowledged at primary speed (write-through): the
  // squeezed tenant feels HDD latency, which is exactly the cost its quota
  // says it has not earned the flash to avoid.
  size_t i = 0;
  while (i < bypass_lbas.size()) {
    size_t j = i + 1;
    while (j < bypass_lbas.size() && bypass_lbas[j] == bypass_lbas[j - 1] + 1)
      ++j;
    auto r = primary_->write(now, bypass_lbas[i], static_cast<u32>(j - i),
                             std::span<const u64>(&bypass_tags[i], j - i));
    if (r.ok()) {
      ack = std::max(ack, r.done);
      ledger_.add(obs::kPrimaryDevice, tenant, WriteCause::kQuotaShed,
                  (j - i) * kBlockSize);
    }
    i = j;
  }
  ack = throttle(now, ack);
  return ack;
}

// --- compressed DRAM tier hand-off ------------------------------------------

SimTime SrcCache::tier_destage(SimTime now, std::span<const u64> lbas,
                               std::span<const u64> tags,
                               std::span<const u16> tenants) {
  if (crashed_) return now;
  // Destages carry dirty data that only the tier holds, so they stage
  // unconditionally — the quota gate applies to admissions, not durability.
  for (size_t i = 0; i < lbas.size(); ++i) {
    stage_dirty(lbas[i], tags[i], norm_tenant(tenants[i]), now,
                WriteCause::kTierDestage);
  }
  drain_buffers(now);
  return throttle(now, now + kStageCost * static_cast<SimTime>(lbas.size()));
}

SimTime SrcCache::tier_demote(SimTime now, u64 lba, u64 tag, u16 tenant) {
  if (crashed_) return now;
  stage_clean(lba, tag, norm_tenant(tenant), now, WriteCause::kTierDemote);
  drain_buffers(now);
  return throttle(now, now + kStageCost);
}

bool SrcCache::hot_hint(u64 lba) const {
  const auto it = map_.find(lba);
  return it != map_.end() && it->second.hot();
}

// --- segment sealing --------------------------------------------------------

u32 SrcCache::allocate_sg(SimTime now) {
  if (!in_gc_) ensure_free_sg(now);
  if (free_sgs_.empty()) reclaim_one(now, /*force_s2d=*/true);
  if (free_sgs_.empty())
    throw std::logic_error("SRC: no reclaimable segment group");
  const u32 sg = free_sgs_.front();
  free_sgs_.pop_front();
  sgs_[sg].state = SgState::kActive;
  sgs_[sg].next_seg = 0;
  return sg;
}

SimTime SrcCache::seal_buffer(SimTime now, bool dirty_type, bool force_partial) {
  SegBuffer& buf = dirty_type ? dirty_buf_ : clean_buf_;
  const u64 cap = buffer_capacity(dirty_type);
  SimTime done = now;
  // Drain full segments; GC triggered by SG allocation below may append
  // further entries, which this loop absorbs.
  while (buf.lbas.size() >= cap)
    done = std::max(done, write_one_segment(now, dirty_type, cap));
  if (force_partial && !buf.lbas.empty())
    done = std::max(done, write_one_segment(now, dirty_type, buf.lbas.size()));
  return done;
}

SimTime SrcCache::write_one_segment(SimTime now, bool dirty_type, u64 count) {
  if (crashed_) return now;  // power is off
  SegBuffer& buf = dirty_type ? dirty_buf_ : clean_buf_;
  const u64 capacity = buffer_capacity(dirty_type);
  count = std::min<u64>({count, capacity, buf.lbas.size()});
  if (count == 0) return now;

  // Scheduled power cut (crash-consistency harness): the Nth seal tears at
  // the chosen point, and from then on nothing reaches the devices.
  CrashPoint point = crash_point_;
  if (crash_scheduled_ && seal_count_ == crash_at_seal_) {
    point = crash_at_point_;
    crashed_ = true;
  }
  seal_count_++;

  // Take the front `count` entries by value; re-index what remains so GC
  // appends (during SG allocation) see a consistent buffer.
  std::vector<u64> taken_lba(buf.lbas.begin(),
                             buf.lbas.begin() + static_cast<long>(count));
  std::vector<u64> taken_tag(buf.tags.begin(),
                             buf.tags.begin() + static_cast<long>(count));
  std::vector<u16> taken_tenant(buf.tenants.begin(),
                                buf.tenants.begin() + static_cast<long>(count));
  std::vector<u8> taken_cause(buf.causes.begin(),
                              buf.causes.begin() + static_cast<long>(count));
  buf.lbas.erase(buf.lbas.begin(), buf.lbas.begin() + static_cast<long>(count));
  buf.tags.erase(buf.tags.begin(), buf.tags.begin() + static_cast<long>(count));
  buf.tenants.erase(buf.tenants.begin(),
                    buf.tenants.begin() + static_cast<long>(count));
  buf.causes.erase(buf.causes.begin(),
                   buf.causes.begin() + static_cast<long>(count));
  u32 taken_live = 0;
  for (u64 lba : taken_lba)
    if (lba != kDeadSlot) ++taken_live;
  buf.live -= taken_live;
  for (u32 i = 0; i < buf.lbas.size(); ++i) {
    if (buf.lbas[i] != kDeadSlot) map_.at(buf.lbas[i]).slot = i;
  }

  // Allocating the SG may run GC; by now the taken entries are private and
  // GC can only touch the (re-indexed) buffer tail.
  if (active_sg_ == kBufferSg) active_sg_ = allocate_sg(now);
  SgInfo& sg = sgs_[active_sg_];
  // A freshly reclaimed SG is only writable once its destages reached
  // primary storage — destage pressure throttles foreground writes here.
  const SimTime issue = std::max(now, sg.ready_at);
  const u32 seg = sg.next_seg++;
  SegmentInfo& si = sg.segs[seg];

  si.type = dirty_type ? SegType::kDirty : SegType::kClean;
  si.has_parity = cfg_.segment_has_parity(dirty_type);
  si.generation = ++gen_seq_;
  si.parity_col = 0;
  if (si.has_parity && cfg_.raid != SrcRaidLevel::kRaid1) {
    si.parity_col = cfg_.raid == SrcRaidLevel::kRaid4
                        ? static_cast<u8>(cfg_.num_ssds - 1)
                        : static_cast<u8>(gen_seq_ % cfg_.num_ssds);
  }
  si.slot_lba = taken_lba;
  si.slot_lba.resize(capacity, kDeadSlot);
  si.slot_crc.assign(capacity, 0);
  si.slot_tenant = taken_tenant;
  si.slot_tenant.resize(capacity, 0);
  si.live = taken_live;
  sg.live += taken_live;
  for (u64 s = 0; s < taken_lba.size(); ++s)
    if (taken_lba[s] != kDeadSlot) census_add(sg, taken_tenant[s], 1);
  live_total_ += taken_live;

  // Per-device tag images (column-major slot layout; see addr_of).
  const u64 rows = cfg_.slots_per_chunk();
  const u64 ncols = seg_data_cols(si);
  std::vector<std::vector<u64>> images(cfg_.num_ssds,
                                       std::vector<u64>(rows, 0));
  SegmentMeta meta;
  meta.generation = si.generation;
  meta.sg = active_sg_;
  meta.seg = seg;
  meta.dirty = dirty_type;
  meta.has_parity = si.has_parity;
  meta.parity_col = si.parity_col;
  meta.entries.resize(capacity);

  for (u32 s = 0; s < capacity; ++s) {
    const u64 lba = si.slot_lba[s];
    const u64 tag = s < taken_tag.size() ? taken_tag[s] : 0;
    const u64 col = s / rows;
    const u64 row = s % rows;
    size_t dev;
    if (cfg_.raid == SrcRaidLevel::kRaid1) {
      dev = static_cast<size_t>(col);
    } else if (si.has_parity && col >= si.parity_col) {
      dev = static_cast<size_t>(col) + 1;
    } else {
      dev = static_cast<size_t>(col);
    }
    images[dev][row] = tag;
    if (cfg_.raid == SrcRaidLevel::kRaid1) images[dev + ncols][row] = tag;
    meta.entries[s].lba = lba;
    meta.entries[s].tenant = si.slot_tenant[s];
    if (lba != kDeadSlot) {
      const u32 crc = common::crc32c_of(tag);
      si.slot_crc[s] = crc;
      meta.entries[s].crc = crc;
      // Relocate the mapping from the buffer to the sealed slot.
      MapEntry& e = map_.at(lba);
      e.sg = active_sg_;
      e.seg = seg;
      e.slot = s;
    }
  }
  if (si.has_parity && cfg_.raid != SrcRaidLevel::kRaid1) {
    auto& parity = images[si.parity_col];
    for (size_t d = 0; d < ssds_.size(); ++d) {
      if (d == si.parity_col) continue;
      for (u64 r = 0; r < rows; ++r) parity[r] ^= images[d][r];
    }
  }

  // Issue the stripe: MS + data + ME per SSD, all in parallel (§4.1).
  const u64 base = chunk_base_block(active_sg_, seg);
  meta.is_tail = false;
  const auto ms_payload = meta.serialize();
  meta.is_tail = true;
  const auto me_payload = meta.serialize();
  SimTime done = issue;
  const u32 fill_span = span_ != nullptr && span_->sampling()
                            ? span_->begin_span("src.segment_fill", issue)
                            : obs::kNoSpan;
  // Ledger attribution of one device's data chunk: every row of a data
  // column carries its slot's staged cause/tenant (dead and padding slots
  // are layout overhead -> parity/shared); mirror and parity columns are
  // redundancy overhead wholesale. Co-located with the device writes and
  // gated on the same success/crash conditions, so per-device ledger bytes
  // stay exactly equal to DeviceStats::write_blocks.
  const auto account_data_chunk = [&](size_t d) {
    const u32 dev32 = static_cast<u32>(d);
    if (cfg_.raid == SrcRaidLevel::kRaid1 && d >= ncols) {
      ledger_.add(dev32, obs::kSharedTenant, WriteCause::kParity,
                  rows * kBlockSize);
      return;
    }
    if (si.has_parity && cfg_.raid != SrcRaidLevel::kRaid1 &&
        d == si.parity_col) {
      ledger_.add(dev32, obs::kSharedTenant, WriteCause::kParity,
                  rows * kBlockSize);
      return;
    }
    u64 col = d;
    if (si.has_parity && cfg_.raid != SrcRaidLevel::kRaid1 &&
        d > si.parity_col)
      col = d - 1;
    for (u64 r = 0; r < rows; ++r) {
      const u64 s = col * rows + r;
      if (s < taken_cause.size()) {
        ledger_.add(dev32, taken_tenant[s],
                    static_cast<WriteCause>(taken_cause[s]), kBlockSize);
      } else {
        ledger_.add(dev32, obs::kSharedTenant, WriteCause::kParity,
                    kBlockSize);
      }
    }
  };
  for (size_t d = 0; d < ssds_.size(); ++d) {
    BlockDevice* dev = ssds_[d];
    if (dev->failed()) continue;
    if (point == CrashPoint::kBeforeSeg) break;
    auto rms = dev->write_payload(issue, base, ms_payload);
    if (rms.ok()) {
      done = std::max(done, rms.done);
      ledger_.add(static_cast<u32>(d), obs::kSharedTenant, WriteCause::kParity,
                  payload_blocks(ms_payload) * kBlockSize);
    }
    if (point == CrashPoint::kAfterMs) continue;
    auto rdata = dev->write(issue, base + 1, static_cast<u32>(rows),
                            std::span<const u64>(images[d].data(), rows));
    if (rdata.ok()) {
      done = std::max(done, rdata.done);
      account_data_chunk(d);
    }
    if (point == CrashPoint::kAfterData) continue;
    auto rme = dev->write_payload(issue, base + 1 + rows, me_payload);
    if (rme.ok()) {
      done = std::max(done, rme.done);
      ledger_.add(static_cast<u32>(d), obs::kSharedTenant, WriteCause::kParity,
                  payload_blocks(me_payload) * kBlockSize);
    }
  }
  if (fill_span != obs::kNoSpan) span_->end_span(fill_span, done, count);
  // A fresh stripe just landed on every non-failed device, including a
  // rebuilding replacement: pending rebuild copies of this chunk are stale.
  if (rebuild_ != nullptr && point == CrashPoint::kNone)
    rebuild_->discard(base, cfg_.chunk_blocks());

  extra_.segments_written++;
  if (trace_ != nullptr)
    trace_->complete("src.segment_seal", trace_track_, issue, done, count);
  if (dirty_type) {
    extra_.dirty_segments++;
    if (count < capacity) extra_.partial_segments++;
  } else {
    extra_.clean_segments++;
  }

  const bool sg_full = sg.next_seg >= cfg_.segments_per_sg();
  if (cfg_.flush_control == FlushControl::kPerSegment) {
    done = flush_all_ssds(done);
  } else if (sg_full) {
    done = flush_all_ssds(done);
  }
  if (sg_full) {
    sg.state = SgState::kSealed;
    sg.seal_seq = ++seal_seq_;
    active_sg_ = kBufferSg;
  }
  inflight_.push_back(done);
  return done;
}

// --- read path --------------------------------------------------------------

SimTime SrcCache::do_read(const cache::AppRequest& req) {
  const SimTime now = req.now;
  const u16 tenant = norm_tenant(req.tenant);
  stats_.app_read_ops++;
  stats_.app_read_blocks += req.nblocks;
  SimTime done = now + kRamReadCost * req.nblocks;

  struct SsdRead {
    size_t dev;
    u64 block;
    u32 idx;  // request block index
    u32 sg, seg, slot;
  };
  std::vector<SsdRead> ssd_reads;
  std::vector<std::pair<u64, u32>> miss_runs;  // (lba, count)

  for (u32 i = 0; i < req.nblocks; ++i) {
    const u64 lba = req.lba + i;
    auto it = map_.find(lba);
    if (it == map_.end()) {
      stats_.read_miss_blocks++;
      tenants_[tenant].read_miss_blocks++;
      if (!miss_runs.empty() &&
          miss_runs.back().first + miss_runs.back().second == lba) {
        miss_runs.back().second++;
      } else {
        miss_runs.emplace_back(lba, 1);
      }
      continue;
    }
    MapEntry& e = it->second;
    e.flags |= kFlagHot;
    eviction_->on_access(lba);
    stats_.read_hit_blocks++;
    tenants_[tenant].read_hit_blocks++;
    if (e.buffered()) {
      const SegBuffer& buf = e.dirty() ? dirty_buf_ : clean_buf_;
      if (req.tags_out != nullptr) req.tags_out[i] = buf.tags[e.slot];
      continue;
    }
    const SegmentInfo& si = sgs_[e.sg].segs[e.seg];
    SlotAddr a = addr_of(e.sg, e.seg, e.slot, si);
    if (dev_dead(a.dev, a.block) && a.mirror_dev != SIZE_MAX &&
        !dev_dead(a.mirror_dev, a.block)) {
      a.dev = a.mirror_dev;
    }
    if (dev_dead(a.dev, a.block)) {
      // Failed, or a blank replacement not yet rebuilt here — the device
      // would serve garbage, not an error. Straight to the repair path.
      SimTime t = now;
      auto rec = read_slot(now, e.sg, e.seg, e.slot, &t);
      done = std::max(done, t);
      if (rec.is_ok() && req.tags_out != nullptr)
        req.tags_out[i] = rec.value();
      continue;
    }
    ssd_reads.push_back({a.dev, a.block, i, e.sg, e.seg, e.slot});
  }

  // Batched cache-hit reads: contiguous per-device runs become one command.
  std::sort(ssd_reads.begin(), ssd_reads.end(),
            [](const SsdRead& a, const SsdRead& b) {
              return a.dev != b.dev ? a.dev < b.dev : a.block < b.block;
            });
  std::vector<u64> buf;
  size_t i = 0;
  while (i < ssd_reads.size()) {
    size_t j = i + 1;
    while (j < ssd_reads.size() && ssd_reads[j].dev == ssd_reads[i].dev &&
           ssd_reads[j].block == ssd_reads[j - 1].block + 1) {
      ++j;
    }
    const size_t cnt = j - i;
    buf.resize(cnt);
    auto r = ssds_[ssd_reads[i].dev]->read(now, ssd_reads[i].block,
                                           static_cast<u32>(cnt),
                                           std::span<u64>(buf.data(), cnt));
    bool need_slow_path = !r.ok();
    if (r.ok()) {
      done = std::max(done, r.done);
      if (cfg_.verify_checksums) {
        for (size_t k = 0; k < cnt && !need_slow_path; ++k) {
          const SsdRead& sr = ssd_reads[i + k];
          const SegmentInfo& si = sgs_[sr.sg].segs[sr.seg];
          if (common::crc32c_of(buf[k]) != si.slot_crc[sr.slot])
            need_slow_path = true;
        }
      }
    }
    if (!need_slow_path) {
      if (req.tags_out != nullptr)
        for (size_t k = 0; k < cnt; ++k)
          req.tags_out[ssd_reads[i + k].idx] = buf[k];
    } else {
      // Per-block verified read with repair (§4.1 failure handling).
      for (size_t k = 0; k < cnt; ++k) {
        const SsdRead& sr = ssd_reads[i + k];
        SimTime t = now;
        auto rec = read_slot(now, sr.sg, sr.seg, sr.slot, &t);
        done = std::max(done, t);
        if (rec.is_ok() && req.tags_out != nullptr)
          req.tags_out[sr.idx] = rec.value();
      }
    }
    i = j;
  }

  // Misses: fetch from primary storage into the staging/clean buffer (§4.1).
  std::vector<u64> fetched;
  for (const auto& [lba, cnt] : miss_runs) {
    fetched.assign(cnt, 0);
    const u32 fetch_span = span_ != nullptr && span_->sampling()
                               ? span_->begin_span("backend.fetch", now)
                               : obs::kNoSpan;
    auto r = primary_->read(now, lba, cnt, std::span<u64>(fetched.data(), cnt));
    if (fetch_span != obs::kNoSpan)
      span_->end_span(fetch_span, r.ok() ? r.done : now, cnt);
    if (!r.ok()) continue;
    done = std::max(done, r.done);
    stats_.fetch_blocks += cnt;
    if (req.tags_out != nullptr)
      for (u32 k = 0; k < cnt; ++k)
        req.tags_out[lba - req.lba + k] = fetched[k];
    // Quota admission gate: an over-quota tenant's misses are served from
    // primary but not cached, so its footprint shrinks by attrition.
    if (over_quota(tenant)) {
      tenants_[tenant].fetch_bypass_blocks += cnt;
    } else {
      // Policy admission gate, per block: a rejected fill is served through
      // without touching flash (the dominant NAND-write saving on
      // read-heavy traces). The reject itself is evidence — GhostAdmission
      // remembers the lba and admits its next miss.
      for (u32 k = 0; k < cnt; ++k) {
        if (!admission_->admit(lba + k)) continue;
        stage_clean(lba + k, fetched[k], tenant, now, WriteCause::kMissFill);
      }
    }
  }
  // Clean segment writes happen off the critical path; back-pressure only.
  drain_buffers(now);
  return throttle(now, done);
}

Result<u64> SrcCache::read_slot(SimTime now, u32 sg, u32 seg, u32 slot,
                                SimTime* done) {
  const SegmentInfo& si = sgs_[sg].segs[seg];
  const u64 lba = si.slot_lba[slot];
  const SlotAddr a = addr_of(sg, seg, slot, si);
  const u32 want_crc = si.slot_crc[slot];

  if (!dev_dead(a.dev, a.block)) {
    u64 tag = 0;
    auto r = ssds_[a.dev]->read(now, a.block, 1, std::span<u64>(&tag, 1));
    if (r.ok()) {
      if (done != nullptr) *done = std::max(*done, r.done);
      if (!cfg_.verify_checksums || common::crc32c_of(tag) == want_crc)
        return tag;
      extra_.checksum_errors++;
      if (fault_ledger_ != nullptr)
        fault_ledger_->record_detected(static_cast<int>(a.dev), a.block);
      if (trace_ != nullptr)
        trace_->instant("src.checksum_error", trace_track_, now, lba);
    } else if (r.error == ErrorCode::kMediaError) {
      if (done != nullptr) *done = std::max(*done, r.done);
      extra_.media_errors++;
      if (fault_ledger_ != nullptr)
        fault_ledger_->record_detected(static_cast<int>(a.dev), a.block);
      if (trace_ != nullptr)
        trace_->instant("src.media_error", trace_track_, now, lba);
    }
  }
  // Mirror copy (RAID-1).
  if (a.mirror_dev != SIZE_MAX && !dev_dead(a.mirror_dev, a.block)) {
    u64 tag = 0;
    auto r = ssds_[a.mirror_dev]->read(now, a.block, 1, std::span<u64>(&tag, 1));
    if (r.ok() &&
        (!cfg_.verify_checksums || common::crc32c_of(tag) == want_crc)) {
      if (done != nullptr) *done = std::max(*done, r.done);
      extra_.parity_repairs++;
      if (!ssds_[a.dev]->failed()) {
        // The write-back overwrites the bad copy (remap-on-write also clears
        // a latent sector error), so the fault is genuinely gone.
        auto wr =
            ssds_[a.dev]->write(now, a.block, 1, std::span<const u64>(&tag, 1));
        if (wr.ok())
          ledger_.add(static_cast<u32>(a.dev), si.slot_tenant[slot],
                      WriteCause::kRepairRemap, kBlockSize);
        if (fault_ledger_ != nullptr)
          fault_ledger_->record_repaired(static_cast<int>(a.dev), a.block);
      }
      return tag;
    }
    if (r.ok()) {
      extra_.checksum_errors++;
      if (fault_ledger_ != nullptr)
        fault_ledger_->record_detected(static_cast<int>(a.mirror_dev), a.block);
    } else if (r.error == ErrorCode::kMediaError) {
      extra_.media_errors++;
      if (fault_ledger_ != nullptr)
        fault_ledger_->record_detected(static_cast<int>(a.mirror_dev), a.block);
    }
  }
  // Parity reconstruction across the stripe row.
  if (si.has_parity && cfg_.raid != SrcRaidLevel::kRaid1) {
    SimTime t = now;
    auto rec = reconstruct_from_stripe(now, sg, seg, slot, &t);
    if (rec.is_ok()) {
      const u64 tag = rec.value();
      if (!cfg_.verify_checksums || common::crc32c_of(tag) == want_crc) {
        if (done != nullptr) *done = std::max(*done, t);
        extra_.parity_repairs++;
        if (trace_ != nullptr)
          trace_->instant("src.parity_repair", trace_track_, now, lba);
        if (!ssds_[a.dev]->failed()) {
          auto wr = ssds_[a.dev]->write(now, a.block, 1,
                                        std::span<const u64>(&tag, 1));
          if (wr.ok())
            ledger_.add(static_cast<u32>(a.dev), si.slot_tenant[slot],
                        WriteCause::kRepairRemap, kBlockSize);
          if (fault_ledger_ != nullptr)
            fault_ledger_->record_repaired(static_cast<int>(a.dev), a.block);
        }
        return tag;
      }
    }
  }
  // Clean data can always be refetched from primary storage (§4.3).
  if (si.type == SegType::kClean && lba != kDeadSlot) {
    u64 tag = 0;
    auto r = primary_->read(now, lba, 1, std::span<u64>(&tag, 1));
    if (r.ok()) {
      if (done != nullptr) *done = std::max(*done, r.done);
      extra_.refetch_repairs++;
      if (!ssds_[a.dev]->failed()) {
        // Rewrite the slot so the repair sticks: remap-on-write clears a
        // latent sector error and the good tag replaces the corrupt one
        // (without this every later read re-pays the refetch).
        auto wr =
            ssds_[a.dev]->write(now, a.block, 1, std::span<const u64>(&tag, 1));
        if (wr.ok())
          ledger_.add(static_cast<u32>(a.dev), si.slot_tenant[slot],
                      WriteCause::kRepairRemap, kBlockSize);
        if (fault_ledger_ != nullptr)
          fault_ledger_->record_repaired(static_cast<int>(a.dev), a.block);
      }
      if (trace_ != nullptr)
        trace_->instant("src.refetch_repair", trace_track_, now, lba);
      return tag;
    }
  }
  extra_.unrecoverable_blocks++;
  if (trace_ != nullptr)
    trace_->instant("src.unrecoverable", trace_track_, now, lba);
  return Status(ErrorCode::kUnrecoverable, "cached block lost");
}

Result<u64> SrcCache::reconstruct_from_stripe(SimTime now, u32 sg, u32 seg,
                                              u32 slot, SimTime* done) {
  const SegmentInfo& si = sgs_[sg].segs[seg];
  const SlotAddr target = addr_of(sg, seg, slot, si);
  const u64 rows = cfg_.slots_per_chunk();
  const u64 row = slot % rows;
  const u64 block = chunk_base_block(sg, seg) + 1 + row;
  u64 acc = 0;
  SimTime t = now;
  for (size_t d = 0; d < ssds_.size(); ++d) {
    if (d == target.dev) continue;
    if (dev_dead(d, block))
      return Status(ErrorCode::kDeviceFailed, "double failure in stripe");
    u64 tag = 0;
    auto r = ssds_[d]->read(now, block, 1, std::span<u64>(&tag, 1));
    if (!r.ok()) {
      if (r.error == ErrorCode::kMediaError) {
        extra_.media_errors++;
        if (fault_ledger_ != nullptr)
          fault_ledger_->record_detected(static_cast<int>(d), block);
      }
      return Status(r.error);
    }
    acc ^= tag;
    t = std::max(t, r.done);
  }
  if (done != nullptr) *done = std::max(*done, t);
  return acc;
}

}  // namespace srcache::src
