// Workload generation: an FIO-equivalent synthetic generator (§3.1, §5.1)
// and the Generator interface the trace synthesizer and the replayer share.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace srcache::workload {

struct Op {
  bool is_write = false;
  u64 lba = 0;
  u32 nblocks = 1;
};

// A closed-loop request source. next() returns the stream's next request;
// generators own their RNG so runs are deterministic per seed.
class Generator {
 public:
  virtual ~Generator() = default;
  virtual Op next() = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

// FIO-style generator: fixed request size, uniform-random or sequential
// placement over a span, fixed read percentage.
class FioGen final : public Generator {
 public:
  struct Config {
    u64 span_blocks = 0;    // working area size
    u64 offset_blocks = 0;  // start of the working area
    u32 req_blocks = 1;     // request size (4 KiB units)
    int read_pct = 0;       // 0 = pure write
    bool sequential = false;
    u64 seed = 1;
  };

  explicit FioGen(const Config& cfg);

  Op next() override;
  [[nodiscard]] const char* name() const override { return "fio"; }

 private:
  Config cfg_;
  common::Xoshiro256 rng_;
  u64 cursor_ = 0;  // sequential mode
};

}  // namespace srcache::workload
