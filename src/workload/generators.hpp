// Workload generation: an FIO-equivalent synthetic generator (§3.1, §5.1)
// and the Generator interface the trace synthesizer and the replayer share.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace srcache::workload {

struct Op {
  bool is_write = false;
  u64 lba = 0;
  u32 nblocks = 1;
  u32 tenant = 0;  // multi-tenant runs tag each request with its owner
  // Compressed size of the request's blocks as a percentage of kBlockSize.
  // A pure function of the LBA (plus per-stream distribution parameters),
  // so every read and write of a block agrees on its compressibility.
  u8 comp_pct = 0;
};

// Deterministic per-block compressibility: a SplitMix-style hash of the LBA
// picks a point in [mean - jitter, mean + jitter], clamped to [5, 100].
// Content is a property of the block, not of the request, so this must stay
// a pure function of (lba, mean, jitter).
[[nodiscard]] u8 comp_pct_for(u64 lba, u32 mean_pct, u32 jitter_pct);

// A closed-loop request source. next() returns the stream's next request;
// generators own their RNG so runs are deterministic per seed.
class Generator {
 public:
  virtual ~Generator() = default;
  virtual Op next() = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

// FIO-style generator: fixed request size, uniform-random or sequential
// placement over a span, fixed read percentage.
class FioGen final : public Generator {
 public:
  struct Config {
    u64 span_blocks = 0;    // working area size
    u64 offset_blocks = 0;  // start of the working area
    u32 req_blocks = 1;     // request size (4 KiB units)
    int read_pct = 0;       // 0 = pure write
    bool sequential = false;
    u64 seed = 1;
    u32 tenant = 0;
    // Per-block compressibility distribution stamped onto each Op (see
    // comp_pct_for). The FIO default mimics a mixed server image: ~60% of
    // raw size on average, +/- 30 points of spread.
    u32 comp_mean_pct = 60;
    u32 comp_jitter_pct = 30;
  };

  explicit FioGen(const Config& cfg);

  Op next() override;
  [[nodiscard]] const char* name() const override { return "fio"; }

 private:
  Config cfg_;
  common::Xoshiro256 rng_;
  u64 cursor_ = 0;  // sequential mode
};

// Interleaves several tenant streams into one request source. Each pull
// picks a source with probability proportional to its weight (seeded RNG,
// so the merged stream is deterministic); the chosen source's own tenant
// tag rides through untouched. This is the tenant-mixing scheduler for
// multi-tenant runs driven by a single closed loop.
class TenantMixGen final : public Generator {
 public:
  struct Source {
    Generator* gen = nullptr;  // not owned
    double weight = 1.0;       // relative share of issued requests
  };

  TenantMixGen(std::vector<Source> sources, u64 seed);

  Op next() override;
  [[nodiscard]] const char* name() const override { return "tenant-mix"; }

 private:
  std::vector<Source> sources_;
  std::vector<double> cumulative_;  // normalized CDF over sources
  common::Xoshiro256 rng_;
};

}  // namespace srcache::workload
