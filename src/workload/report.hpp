// Machine-readable bench output (REPRO_JSON).
//
// Every bench binary prints human tables; with REPRO_JSON=<path> in the
// environment the harness also appends each measured run — the paper metrics
// (throughput, I/O amplification, hit ratio), the latency percentiles, and
// the full metrics-registry delta for the measurement window — to one JSON
// document, so the perf trajectory across commits is machine-tracked instead
// of scraped from text tables.
//
// Schema (stable; version bumps change "schema"):
//   { "schema": "srcache-repro-v3",
//     "scale": 0.25, "virtual_seconds": 10,
//     "runs": [ { "bench": ..., "name": ...,
//                 "seconds", "ops", "bytes",
//                 "throughput_mbps", "io_amplification", "hit_ratio",
//                 "latency_ns": { "clamped",
//                                 "read"|"write"|<class>:
//                                 {count,mean,p50,p95,p99,p999,max} },
//                 "cache": {...}, "ssd": {...},
//                 "metrics": {"counters":{},"gauges":{},"histograms":{}},
//                 "timeseries": { "interval_ns", "window_start_ns",
//                                 "truncated", "samples": [...] } } ] }
//
// v2 is a superset of v1: every v1 field is unchanged; v2 adds
// "latency_ns.clamped" and, for runs sampled with REPRO_TIMESERIES_MS, the
// per-interval "timeseries" object (obs/timeseries.hpp). Runs driven with a
// fault plan (RunConfig::fault) additionally carry a "fault" object — the
// reconciling ledger counters plus the healthy/degraded window split:
//   "fault": { "events_fired", "injected", "detected", "repaired",
//              "undetected", "first_fault_s", "healthy_mbps",
//              "degraded_mbps", "degraded_read": {...},
//              "degraded_write": {...} }
// Consumers keyed on the v1 fields keep working against either version.
//
// v3 is a strict superset of v2: every v2 field is unchanged. Multi-tenant
// runs (RunConfig::num_tenants > 0) add a per-tenant array and the adaptive
// controller's epoch counters:
//   "tenants": [ { "tenant", "ops", "bytes", "hit_blocks", "miss_blocks",
//                  "hit_ratio", "target_blocks" } ],
//   "adapt": { "epochs", "rebalances" }
// Runs replaying a parsed trace file add its provenance:
//   "trace": { "malformed_lines" }
//
// v4 is a strict superset of v3. Runs merged by the sharded engine
// (engine::ParallelEngine) add the deterministic partition shape:
//   "engine": { "domains", "epochs",
//               "per_domain": [ { "ops", "bytes" } ] }
// and the document gains an optional top-level "perf" section with the
// wall-clock side of those runs:
//   "perf": { "shards", "threads",
//             "runs": [ { "bench", "name", "wall_seconds",
//                         "sim_ops_per_sec",
//                         "per_shard": [ { "ops", "wall_seconds" } ] } ] }
// Everything under "perf" depends on the execution configuration and host
// load; it is the ONLY part of the document excluded from the engine's
// bit-identical-across-shard-counts contract (tools/repro_report --digest
// hashes the document minus "perf" for exactly this reason).
//
// v5 is a strict superset of v4. Runs with the causal observability layer
// wired add up to three blocks, each only when its feature was active:
//   "provenance": { "flash_bytes", "primary_bytes", "by_cause": {...},
//                   "devices": [ { "device", "bytes", by_cause... } ],
//                   "tenants": [ { "tenant", "bytes", by_cause... } ] }
// (write-provenance ledger; sum over causes == total flash bytes written),
//   "spans": { "rate", "ops_seen", "ops_sampled", "spans", "dropped",
//              "by_name": { <span>: { "count", "total_ns" } } }
// (REPRO_SPAN_SAMPLE op-span tracing aggregate), and
//   "slo": { "policy": {...}, "epochs", "violations", "degraded_epochs",
//            "burn_rate", "breached", "verdicts": [ {...} ] }
// (epoch SLO watchdog verdicts; see obs/slo.hpp and repro_report --slo).
//
// v6 is a strict superset of v5: runs with a background rebuild engine
// attached add the "rebuild" object (hot-spare reconstruction outcome).
//
// v7 is a strict superset of v6. Runs fronted by the compressed DRAM tier
// (REPRO_TIER_MB > 0) add a "tier" object:
//   "tier": { "hit_blocks", "miss_blocks", "hit_ratio", "admit_blocks",
//             "bypass_blocks", "promote_blocks", "destage_blocks",
//             "demote_blocks", "drop_blocks", "evict_blocks",
//             "uncompressed_bytes", "compressed_bytes", "compression_ratio",
//             "cpu_compress_ns", "cpu_decompress_ns", "lost_dirty_blocks",
//             "resident_blocks", "resident_compressed_bytes",
//             "dirty_blocks", "budget_bytes" }
// and the provenance "by_cause" map gains "tier_destage" / "tier_demote"
// entries (the map was always open-ended, so v6 consumers keep working).
#pragma once

#include <string>
#include <vector>

#include "workload/runner.hpp"

namespace srcache::workload {

// One run as a JSON object (the element of "runs" above).
std::string run_json(const std::string& bench, const std::string& name,
                     const RunResult& r);

// Wall-clock record of one engine-driven run for the "perf" section. Kept
// as plain values so workload does not depend on the engine library.
struct PerfShard {
  u64 ops = 0;
  double wall_seconds = 0.0;
};
struct PerfRun {
  std::string bench;
  std::string name;
  double wall_seconds = 0.0;
  double sim_ops_per_sec = 0.0;
  std::vector<PerfShard> per_shard;
};

class ReproReport {
 public:
  ReproReport(double scale, double virtual_seconds)
      : scale_(scale), virtual_seconds_(virtual_seconds) {}

  void add(const std::string& bench, const std::string& name,
           const RunResult& r) {
    runs_.push_back(run_json(bench, name, r));
  }

  // Execution configuration for the "perf" section (REPRO_SHARDS /
  // REPRO_THREADS as resolved by the engine). The section is emitted once
  // any perf run was added.
  void set_perf_config(u32 shards, u32 threads) {
    perf_shards_ = shards;
    perf_threads_ = threads;
  }
  void add_perf(PerfRun run) { perf_runs_.push_back(std::move(run)); }

  [[nodiscard]] size_t size() const { return runs_.size(); }
  [[nodiscard]] std::string to_json() const;
  // Atomically-ish rewrites `path` (write temp, rename); returns success.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  double scale_;
  double virtual_seconds_;
  std::vector<std::string> runs_;  // pre-serialized run objects
  u32 perf_shards_ = 0;
  u32 perf_threads_ = 0;
  std::vector<PerfRun> perf_runs_;
};

}  // namespace srcache::workload
