// Machine-readable bench output (REPRO_JSON).
//
// Every bench binary prints human tables; with REPRO_JSON=<path> in the
// environment the harness also appends each measured run — the paper metrics
// (throughput, I/O amplification, hit ratio), the latency percentiles, and
// the full metrics-registry delta for the measurement window — to one JSON
// document, so the perf trajectory across commits is machine-tracked instead
// of scraped from text tables.
//
// Schema (stable; version bumps change "schema"):
//   { "schema": "srcache-repro-v1",
//     "scale": 0.25, "virtual_seconds": 10,
//     "runs": [ { "bench": ..., "name": ...,
//                 "seconds", "ops", "bytes",
//                 "throughput_mbps", "io_amplification", "hit_ratio",
//                 "latency_ns": { "read"|"write"|<class>:
//                                 {count,mean,p50,p95,p99,p999,max} },
//                 "cache": {...}, "ssd": {...},
//                 "metrics": {"counters":{},"gauges":{},"histograms":{}} } ] }
#pragma once

#include <string>
#include <vector>

#include "workload/runner.hpp"

namespace srcache::workload {

// One run as a JSON object (the element of "runs" above).
std::string run_json(const std::string& bench, const std::string& name,
                     const RunResult& r);

class ReproReport {
 public:
  ReproReport(double scale, double virtual_seconds)
      : scale_(scale), virtual_seconds_(virtual_seconds) {}

  void add(const std::string& bench, const std::string& name,
           const RunResult& r) {
    runs_.push_back(run_json(bench, name, r));
  }

  [[nodiscard]] size_t size() const { return runs_.size(); }
  [[nodiscard]] std::string to_json() const;
  // Atomically-ish rewrites `path` (write temp, rename); returns success.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  double scale_;
  double virtual_seconds_;
  std::vector<std::string> runs_;  // pre-serialized run objects
};

}  // namespace srcache::workload
