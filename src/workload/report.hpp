// Machine-readable bench output (REPRO_JSON).
//
// Every bench binary prints human tables; with REPRO_JSON=<path> in the
// environment the harness also appends each measured run — the paper metrics
// (throughput, I/O amplification, hit ratio), the latency percentiles, and
// the full metrics-registry delta for the measurement window — to one JSON
// document, so the perf trajectory across commits is machine-tracked instead
// of scraped from text tables.
//
// Schema (stable; version bumps change "schema"):
//   { "schema": "srcache-repro-v3",
//     "scale": 0.25, "virtual_seconds": 10,
//     "runs": [ { "bench": ..., "name": ...,
//                 "seconds", "ops", "bytes",
//                 "throughput_mbps", "io_amplification", "hit_ratio",
//                 "latency_ns": { "clamped",
//                                 "read"|"write"|<class>:
//                                 {count,mean,p50,p95,p99,p999,max} },
//                 "cache": {...}, "ssd": {...},
//                 "metrics": {"counters":{},"gauges":{},"histograms":{}},
//                 "timeseries": { "interval_ns", "window_start_ns",
//                                 "truncated", "samples": [...] } } ] }
//
// v2 is a superset of v1: every v1 field is unchanged; v2 adds
// "latency_ns.clamped" and, for runs sampled with REPRO_TIMESERIES_MS, the
// per-interval "timeseries" object (obs/timeseries.hpp). Runs driven with a
// fault plan (RunConfig::fault) additionally carry a "fault" object — the
// reconciling ledger counters plus the healthy/degraded window split:
//   "fault": { "events_fired", "injected", "detected", "repaired",
//              "undetected", "first_fault_s", "healthy_mbps",
//              "degraded_mbps", "degraded_read": {...},
//              "degraded_write": {...} }
// Consumers keyed on the v1 fields keep working against either version.
//
// v3 is a strict superset of v2: every v2 field is unchanged. Multi-tenant
// runs (RunConfig::num_tenants > 0) add a per-tenant array and the adaptive
// controller's epoch counters:
//   "tenants": [ { "tenant", "ops", "bytes", "hit_blocks", "miss_blocks",
//                  "hit_ratio", "target_blocks" } ],
//   "adapt": { "epochs", "rebalances" }
// Runs replaying a parsed trace file add its provenance:
//   "trace": { "malformed_lines" }
#pragma once

#include <string>
#include <vector>

#include "workload/runner.hpp"

namespace srcache::workload {

// One run as a JSON object (the element of "runs" above).
std::string run_json(const std::string& bench, const std::string& name,
                     const RunResult& r);

class ReproReport {
 public:
  ReproReport(double scale, double virtual_seconds)
      : scale_(scale), virtual_seconds_(virtual_seconds) {}

  void add(const std::string& bench, const std::string& name,
           const RunResult& r) {
    runs_.push_back(run_json(bench, name, r));
  }

  [[nodiscard]] size_t size() const { return runs_.size(); }
  [[nodiscard]] std::string to_json() const;
  // Atomically-ish rewrites `path` (write temp, rename); returns success.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  double scale_;
  double virtual_seconds_;
  std::vector<std::string> runs_;  // pre-serialized run objects
};

}  // namespace srcache::workload
