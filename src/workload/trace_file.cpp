#include "workload/trace_file.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_set>

namespace srcache::workload {

namespace {

// Splits one CSV line into at most `n` fields (no quoting in MSR traces).
bool split_fields(const std::string& line, std::vector<std::string>& out,
                  size_t n) {
  out.clear();
  size_t start = 0;
  while (out.size() < n) {
    const size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return out.size() >= n;
}

}  // namespace

Result<ParsedTrace> parse_msr_csv(std::istream& in, const ParseOptions& opts) {
  ParsedTrace out;
  std::string line;
  std::vector<std::string> f;
  auto malformed = [&]() -> bool {
    return ++out.malformed_lines > opts.max_malformed;
  };
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (!split_fields(line, f, 7)) {
      if (malformed()) break;
      continue;
    }
    TimedOp op;
    op.tenant = opts.tenant;
    char* end = nullptr;
    op.timestamp_100ns = std::strtoull(f[0].c_str(), &end, 10);
    if (end == f[0].c_str()) {
      if (malformed()) break;  // header line or garbage
      continue;
    }
    // Field 3: "Read" or "Write" (case-insensitive in the wild).
    if (f[3].empty()) {
      if (malformed()) break;
      continue;
    }
    const char t = static_cast<char>(std::tolower(f[3][0]));
    if (t != 'r' && t != 'w') {
      if (malformed()) break;
      continue;
    }
    op.is_write = t == 'w';
    const u64 offset_bytes = std::strtoull(f[4].c_str(), nullptr, 10);
    const u64 size_bytes = std::strtoull(f[5].c_str(), nullptr, 10);
    if (size_bytes == 0) {
      if (malformed()) break;
      continue;
    }
    op.lba = offset_bytes / kBlockSize;
    const u64 end_block = div_ceil(offset_bytes + size_bytes, kBlockSize);
    op.nblocks = static_cast<u32>(
        std::min<u64>(end_block - op.lba, 1 * MiB / kBlockSize));
    out.ops.push_back(op);
  }
  if (out.malformed_lines > opts.max_malformed)
    return Status(ErrorCode::kInvalidArgument,
                  "trace exceeds malformed-line threshold (" +
                      std::to_string(out.malformed_lines) + " > " +
                      std::to_string(opts.max_malformed) + ")");
  if (out.ops.empty())
    return Status(ErrorCode::kInvalidArgument, "no parsable trace records");
  return out;
}

Result<std::vector<TimedOp>> parse_msr_csv(std::istream& in, size_t* skipped) {
  Result<ParsedTrace> parsed = parse_msr_csv(in, ParseOptions{});
  if (!parsed.is_ok()) return parsed.status();
  if (skipped != nullptr) *skipped = parsed.value().malformed_lines;
  return std::move(parsed.value().ops);
}

void write_msr_csv(std::ostream& out, const std::vector<TimedOp>& ops,
                   const std::string& hostname) {
  for (const TimedOp& op : ops) {
    out << op.timestamp_100ns << ',' << hostname << ",0,"
        << (op.is_write ? "Write" : "Read") << ','
        << blocks_to_bytes(op.lba) << ',' << blocks_to_bytes(op.nblocks)
        << ",0\n";
  }
}

TraceFileStats summarize(const std::vector<TimedOp>& ops) {
  TraceFileStats s;
  s.ops = ops.size();
  if (ops.empty()) return s;
  u64 blocks = 0, reads = 0;
  std::unordered_set<u64> touched;
  for (const TimedOp& op : ops) {
    blocks += op.nblocks;
    reads += op.is_write ? 0 : 1;
    for (u32 i = 0; i < op.nblocks; ++i) touched.insert(op.lba + i);
  }
  s.avg_req_kb = static_cast<double>(blocks) * 4.0 / static_cast<double>(s.ops);
  s.read_pct = 100.0 * static_cast<double>(reads) / static_cast<double>(s.ops);
  s.footprint_blocks = touched.size();
  s.volume_bytes = blocks_to_bytes(blocks);
  return s;
}

TraceFileGen::TraceFileGen(std::vector<TimedOp> ops, u64 lba_offset,
                           u64 lba_clamp_blocks)
    : ops_(std::move(ops)), offset_(lba_offset), clamp_(lba_clamp_blocks) {
  if (ops_.empty()) throw std::invalid_argument("TraceFileGen: empty trace");
}

Op TraceFileGen::next() {
  const TimedOp& t = ops_[pos_];
  if (++pos_ >= ops_.size()) {
    pos_ = 0;
    ++loops_;
  }
  Op op;
  op.tenant = t.tenant;
  op.is_write = t.is_write;
  op.nblocks = t.nblocks;
  op.lba = t.lba;
  if (clamp_ != 0) {
    if (op.nblocks > clamp_) op.nblocks = static_cast<u32>(clamp_);
    op.lba %= (clamp_ - op.nblocks + 1);
  }
  op.lba += offset_;
  return op;
}

}  // namespace srcache::workload
