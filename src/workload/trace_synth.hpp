// Synthetic equivalents of the paper's trace sets (Table 6).
//
// The real MSR-Cambridge / Microsoft-Production-Server traces are not
// redistributable with this repository, so each trace is replaced by a
// generator matching the row's reported characteristics: mean request size,
// I/O-volume share (which sets its footprint share), and read ratio —
// with Zipfian spatial skew and short sequential runs, the two robust
// properties of these server traces. DESIGN.md documents the substitution.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workload/generators.hpp"

namespace srcache::workload {

enum class TraceGroup { kWrite, kMixed, kRead };

const char* to_string(TraceGroup g);

// One Table 6 row.
struct TraceSpec {
  const char* name;
  double avg_req_kb;   // mean request size
  double size_gb;      // trace I/O volume (drives the footprint share)
  int read_pct;        // read ratio
};

// The Table 6 rows of one group, in paper order.
const std::vector<TraceSpec>& traces_in_group(TraceGroup g);

// Generator for one trace: Zipf-skewed placement over a private footprint
// region, geometric request sizes around the trace mean, sequential-run
// probability, read/write mix per the spec.
class TraceSynth final : public Generator {
 public:
  struct Config {
    TraceSpec spec{};
    u64 footprint_blocks = 0;
    u64 offset_blocks = 0;
    // Spatial skew. MSR-class server traces are strongly concentrated; a
    // theta slightly above 1 reproduces their ~80-90% hit ratios against a
    // cache ~1/3 the footprint (Fig. 7(c)).
    double zipf_theta = 1.1;
    double seq_prob = 0.6;  // chance to continue the previous run
    // Hotness is drawn per *extent*, not per block: server traces touch
    // files/objects, so hot blocks cluster spatially. This is what makes
    // sorted destage sweeps to the HDD array effective.
    u64 extent_blocks = 32;  // 128 KiB
    u64 seed = 1;
    u32 tenant = 0;
    // Per-block compressibility distribution (see comp_pct_for). Server
    // traces differ widely in content — make_trace_set spreads the means
    // across rows so a trace group mixes well- and poorly-compressing data.
    u32 comp_mean_pct = 60;
    u32 comp_jitter_pct = 30;
  };

  explicit TraceSynth(const Config& cfg);

  Op next() override;
  [[nodiscard]] const char* name() const override { return cfg_.spec.name; }
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  [[nodiscard]] u32 sample_req_blocks();

  Config cfg_;
  common::Xoshiro256 rng_;
  common::ZipfSampler zipf_;
  u64 last_end_ = 0;
  double mean_blocks_;
};

// A whole trace group laid out over one primary-storage LBA space: each
// trace gets a footprint proportional to its I/O-volume share, summing to
// `total_footprint_bytes` (the paper sizes each group's working set at
// roughly 50 GB against an 18 GB cache).
struct TraceSet {
  std::vector<std::unique_ptr<TraceSynth>> traces;
  u64 total_blocks = 0;

  [[nodiscard]] std::vector<Generator*> generators() const;
};

// `tenant` tags every trace in the set (the whole group acts as one tenant
// in multi-tenant runs; single-tenant callers keep the default 0).
TraceSet make_trace_set(TraceGroup g, u64 total_footprint_bytes, u64 seed,
                        u32 tenant = 0);

}  // namespace srcache::workload
