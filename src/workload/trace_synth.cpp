#include "workload/trace_synth.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace srcache::workload {

const char* to_string(TraceGroup g) {
  switch (g) {
    case TraceGroup::kWrite: return "Write";
    case TraceGroup::kMixed: return "Mixed";
    case TraceGroup::kRead: return "Read";
  }
  return "?";
}

const std::vector<TraceSpec>& traces_in_group(TraceGroup g) {
  // Table 6 of the paper, verbatim.
  static const std::vector<TraceSpec> kWrite = {
      {"prxy0", 7.07, 84.44, 3},   {"exch9", 21.06, 110.46, 31},
      {"mds0", 9.59, 11.08, 29},   {"mds1", 9.59, 11.08, 29},
      {"stg0", 11.95, 23.16, 31},  {"msn0", 21.73, 31.28, 6},
      {"msn1", 17.84, 37.80, 44},  {"src12", 29.25, 53.23, 16},
      {"src20", 7.59, 11.28, 12},  {"src22", 56.31, 62.12, 36},
  };
  static const std::vector<TraceSpec> kMixed = {
      {"rsrch0", 9.07, 12.41, 11}, {"exch5", 18.02, 85.628, 31},
      {"hm0", 8.88, 33.84, 32},    {"fin0", 6.86, 34.91, 19},
      {"web0", 15.29, 29.60, 58},  {"prn0", 12.53, 66.79, 19},
      {"msn4", 21.73, 31.28, 6},
  };
  static const std::vector<TraceSpec> kRead = {
      {"ts0", 9.28, 15.95, 26},   {"usr0", 22.81, 48.694, 72},
      {"proj3", 9.75, 20.87, 87}, {"src21", 59.31, 37.20, 99},
      {"msn5", 10.01, 124.0, 75},
  };
  switch (g) {
    case TraceGroup::kWrite: return kWrite;
    case TraceGroup::kMixed: return kMixed;
    case TraceGroup::kRead: return kRead;
  }
  return kWrite;
}

TraceSynth::TraceSynth(const Config& cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      zipf_(std::max<u64>(1, cfg.footprint_blocks /
                                 std::max<u64>(1, cfg.extent_blocks)),
            cfg.zipf_theta, cfg.seed ^ 0x5eed),
      mean_blocks_(std::max(1.0, cfg.spec.avg_req_kb / 4.0)) {
  if (cfg_.footprint_blocks == 0)
    throw std::invalid_argument("TraceSynth: empty footprint");
  if (cfg_.extent_blocks == 0) cfg_.extent_blocks = 1;
}

u32 TraceSynth::sample_req_blocks() {
  // Geometric with the trace's mean, capped at 1 MiB (256 blocks) — server
  // traces are dominated by small requests with a heavy-ish tail.
  if (mean_blocks_ <= 1.0) return 1;
  const double u = std::max(1e-12, rng_.uniform());
  const double p = 1.0 / mean_blocks_;
  const auto k = 1 + static_cast<u32>(std::log(u) / std::log(1.0 - p));
  return std::min<u32>(std::max<u32>(k, 1), 256);
}

Op TraceSynth::next() {
  Op op;
  op.tenant = cfg_.tenant;
  op.is_write = !rng_.chance(static_cast<double>(cfg_.spec.read_pct) / 100.0);
  op.nblocks = sample_req_blocks();

  u64 lba;
  if (last_end_ != 0 && rng_.chance(cfg_.seq_prob)) {
    lba = last_end_;  // continue the sequential run
  } else {
    // Zipf rank -> scattered extent: a multiplicative-hash permutation
    // keeps the hot set spread over the footprint instead of packed at
    // offset 0; the request starts somewhere inside the extent.
    const u64 extents = zipf_.n();
    const u64 rank = zipf_.next();
    const u64 extent = (rank * 0x9E3779B97F4A7C15ull) % extents;
    lba = extent * cfg_.extent_blocks + rng_.below(cfg_.extent_blocks);
    if (lba >= cfg_.footprint_blocks) lba %= cfg_.footprint_blocks;
  }
  if (lba + op.nblocks > cfg_.footprint_blocks) {
    lba = cfg_.footprint_blocks - op.nblocks;
  }
  last_end_ = lba + op.nblocks >= cfg_.footprint_blocks ? 0 : lba + op.nblocks;
  op.lba = cfg_.offset_blocks + lba;
  op.comp_pct = comp_pct_for(op.lba, cfg_.comp_mean_pct, cfg_.comp_jitter_pct);
  return op;
}

std::vector<Generator*> TraceSet::generators() const {
  std::vector<Generator*> out;
  out.reserve(traces.size());
  for (const auto& t : traces) out.push_back(t.get());
  return out;
}

TraceSet make_trace_set(TraceGroup g, u64 total_footprint_bytes, u64 seed,
                        u32 tenant) {
  const auto& specs = traces_in_group(g);
  double volume = 0.0;
  for (const auto& s : specs) volume += s.size_gb;

  TraceSet set;
  common::SplitMix64 seeder(seed);
  u64 offset = 0;
  u32 row = 0;
  for (const auto& s : specs) {
    TraceSynth::Config cfg;
    cfg.spec = s;
    // Spread content compressibility across the group's rows (fixed per
    // row, independent of the run seed): means walk 40..80 so every group
    // mixes DRAM-friendly and near-incompressible traces.
    cfg.comp_mean_pct = 40 + (row * 13) % 41;
    cfg.comp_jitter_pct = 25;
    row++;
    cfg.footprint_blocks = std::max<u64>(
        256, static_cast<u64>(static_cast<double>(total_footprint_bytes) *
                              (s.size_gb / volume)) /
                 kBlockSize);
    cfg.offset_blocks = offset;
    cfg.seed = seeder.next();
    cfg.tenant = tenant;
    offset += cfg.footprint_blocks;
    set.traces.push_back(std::make_unique<TraceSynth>(cfg));
  }
  set.total_blocks = offset;
  return set;
}

}  // namespace srcache::workload
