#include "workload/runner.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace srcache::workload {

Runner::Runner(cache::CacheDevice* cache,
               std::vector<blockdev::BlockDevice*> ssds)
    : cache_(cache), ssds_(std::move(ssds)) {}

RunResult Runner::run(const std::vector<Generator*>& gens,
                      const RunConfig& cfg) {
  if (gens.empty()) throw std::invalid_argument("Runner: no generators");

  // Closed loop: (completion time, generator) pairs; popping the earliest
  // completion issues that stream's next request at that instant.
  using Entry = std::pair<sim::SimTime, size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  const size_t streams_per_gen =
      static_cast<size_t>(cfg.threads_per_gen) *
      static_cast<size_t>(std::max(1, cfg.iodepth));
  sim::SimTime t0 = 0;
  for (size_t g = 0; g < gens.size(); ++g) {
    for (size_t s = 0; s < streams_per_gen; ++s) {
      heap.emplace(t0, g);
      t0 += 100;  // stagger initial issues slightly
    }
  }

  RunResult res;
  res.tenants.resize(cfg.num_tenants);
  obs::TimeSeriesSampler sampler(cfg.registry, cfg.timeseries_interval);
  // Degraded-window accounting: everything issued at or after the first
  // fired fault event is recorded separately so the failure-handling cost
  // (§4.3) is visible next to the healthy baseline.
  obs::LatencyRecorder degraded_lat;
  u64 degraded_bytes = 0;
  std::vector<u64> tagbuf;
  // `measure` gates latency/trace recording so the warm-up phase stays out
  // of the histograms. Classification reads the cache's own hit counters
  // around the submit — no extra work on the cache's hot path, no per-
  // request allocation here (tagbuf is reused, histograms are preallocated).
  auto issue = [&](sim::SimTime now, size_t g, bool measure) {
    const Op op = gens[g]->next();
    if (cfg.adapt != nullptr) cfg.adapt->observe(op.tenant, op.lba, op.nblocks);
    cache::AppRequest req;
    req.now = now;
    req.is_write = op.is_write;
    req.lba = op.lba;
    req.nblocks = op.nblocks;
    req.tenant = op.tenant;
    if (cfg.with_tags && !op.is_write) {
      tagbuf.resize(op.nblocks);
      req.tags_out = tagbuf.data();
    }
    u64 miss_before = 0;
    if (measure) {
      miss_before = op.is_write ? cache_->stats().write_new_blocks
                                : cache_->stats().read_miss_blocks;
    }
    const sim::SimTime done = cache_->submit(req);
    if (done < now)
      throw std::logic_error("Runner: completion before issue");
    if (measure) {
      const u64 miss_after = op.is_write ? cache_->stats().write_new_blocks
                                         : cache_->stats().read_miss_blocks;
      const bool hit = miss_after == miss_before;
      if (!res.tenants.empty()) {
        const size_t t = std::min<size_t>(op.tenant, res.tenants.size() - 1);
        TenantOutcome& to = res.tenants[t];
        to.ops++;
        to.bytes += blocks_to_bytes(op.nblocks);
        const u64 missed = std::min<u64>(miss_after - miss_before, op.nblocks);
        to.miss_blocks += missed;
        to.hit_blocks += op.nblocks - missed;
      }
      res.latency.record(obs::classify(op.is_write, hit), done - now);
      if (cfg.fault != nullptr && cfg.fault->events_fired() > 0) {
        degraded_lat.record(obs::classify(op.is_write, hit), done - now);
        degraded_bytes += blocks_to_bytes(op.nblocks);
      }
      sampler.record(now, op.is_write, hit, op.nblocks,
                     blocks_to_bytes(op.nblocks));
      if (cfg.trace != nullptr) {
        cfg.trace->complete(op.is_write ? "req.write" : "req.read",
                            cfg.trace_track, now, done, op.nblocks);
      }
    }
    heap.emplace(done, g);
    return blocks_to_bytes(op.nblocks);
  };

  // Untimed warm-up phase.
  u64 warmed = 0;
  while (warmed < cfg.warmup_bytes && !heap.empty()) {
    const auto [now, g] = heap.top();
    heap.pop();
    warmed += issue(now, g, /*measure=*/false);
  }

  // Measurement window starts at the next event after warm-up.
  const sim::SimTime start = heap.empty() ? 0 : heap.top().first;

  blockdev::DeviceStats ssd_before;
  for (auto* d : ssds_) {
    const auto& s = d->stats();
    ssd_before.read_ops += s.read_ops;
    ssd_before.read_blocks += s.read_blocks;
    ssd_before.write_ops += s.write_ops;
    ssd_before.write_blocks += s.write_blocks;
  }
  const cache::CacheStats cache_before = cache_->stats();
  obs::MetricsSnapshot metrics_before;
  if (cfg.registry != nullptr) metrics_before = cfg.registry->snapshot();
  sampler.start(start);
  // Fault-plan triggers are relative to the measurement window ("2s in",
  // "ops:1000"), so the injector is anchored and advanced only inside it.
  if (cfg.fault != nullptr) cfg.fault->set_epoch(start);
  // Adaptive partition epochs are anchored the same way: warm-up traffic
  // profiles the ghost caches, but epoch boundaries tick inside the window.
  if (cfg.adapt != nullptr) cfg.adapt->set_epoch_start(start);

  while (!heap.empty()) {
    const auto [now, g] = heap.top();
    heap.pop();
    if (now >= start + cfg.duration) break;
    if (cfg.max_ops != 0 && res.ops >= cfg.max_ops) break;
    if (cfg.fault != nullptr) cfg.fault->advance(now, res.ops);
    if (cfg.adapt != nullptr && cfg.adapt->epoch_due(now))
      cfg.adapt->run_epoch(now);
    res.bytes += issue(now, g, /*measure=*/true);
    res.ops++;
  }
  // Close out the sampled window at the nominal end: trailing zero-request
  // intervals (op budget exhausted, streams drained) are real idle time.
  sampler.finish(start + cfg.duration);

  res.seconds = sim::to_seconds(cfg.duration);
  res.throughput_mbps = static_cast<double>(res.bytes) / 1e6 / res.seconds;

  blockdev::DeviceStats ssd_after;
  for (auto* d : ssds_) {
    const auto& s = d->stats();
    ssd_after.read_ops += s.read_ops;
    ssd_after.read_blocks += s.read_blocks;
    ssd_after.write_ops += s.write_ops;
    ssd_after.write_blocks += s.write_blocks;
  }
  res.ssd = ssd_after - ssd_before;

  const cache::CacheStats& after = cache_->stats();
  res.cache.app_read_ops = after.app_read_ops - cache_before.app_read_ops;
  res.cache.app_read_blocks = after.app_read_blocks - cache_before.app_read_blocks;
  res.cache.app_write_ops = after.app_write_ops - cache_before.app_write_ops;
  res.cache.app_write_blocks =
      after.app_write_blocks - cache_before.app_write_blocks;
  res.cache.read_hit_blocks = after.read_hit_blocks - cache_before.read_hit_blocks;
  res.cache.read_miss_blocks =
      after.read_miss_blocks - cache_before.read_miss_blocks;
  res.cache.write_hit_blocks =
      after.write_hit_blocks - cache_before.write_hit_blocks;
  res.cache.write_new_blocks =
      after.write_new_blocks - cache_before.write_new_blocks;
  res.cache.fetch_blocks = after.fetch_blocks - cache_before.fetch_blocks;
  res.cache.destage_blocks = after.destage_blocks - cache_before.destage_blocks;
  res.cache.gc_copy_blocks = after.gc_copy_blocks - cache_before.gc_copy_blocks;
  res.cache.dropped_clean_blocks =
      after.dropped_clean_blocks - cache_before.dropped_clean_blocks;

  const u64 app_blocks = res.cache.app_blocks();
  res.io_amplification =
      app_blocks == 0 ? 0.0
                      : static_cast<double>(res.ssd.total_blocks()) /
                            static_cast<double>(app_blocks);
  res.hit_ratio = res.cache.hit_ratio();

  res.read_lat = obs::LatencySummary::of(res.latency.reads());
  res.write_lat = obs::LatencySummary::of(res.latency.writes());
  for (int c = 0; c < obs::kNumReqClasses; ++c) {
    res.class_lat[static_cast<size_t>(c)] = obs::LatencySummary::of(
        res.latency.histogram(static_cast<obs::ReqClass>(c)));
  }
  res.latency_clamped = res.latency.clamped();
  if (cfg.registry != nullptr)
    res.metrics = cfg.registry->snapshot().delta_since(metrics_before);
  // Surface the clamp counter alongside the stack's own metrics so timing
  // bugs show up in REPRO_JSON instead of being swallowed.
  res.metrics.counters["obs.latency.clamped"] = res.latency_clamped;
  res.timeseries = sampler.take();

  if (cfg.fault != nullptr) {
    FaultOutcome& fo = res.fault;
    fo.active = true;
    fo.events_fired = cfg.fault->events_fired();
    const fault::FaultLedger& led = cfg.fault->ledger();
    fo.injected = led.injected();
    fo.detected = led.detected();
    fo.repaired = led.repaired();
    fo.undetected = led.undetected();
    const sim::SimTime first = cfg.fault->first_fire_time();
    if (first >= 0) {
      fo.first_fault_s = sim::to_seconds(first - start);
      const double healthy_s = sim::to_seconds(first - start);
      const double degraded_s = res.seconds - healthy_s;
      const u64 healthy_bytes = res.bytes - degraded_bytes;
      if (healthy_s > 0)
        fo.healthy_mbps = static_cast<double>(healthy_bytes) / 1e6 / healthy_s;
      if (degraded_s > 0)
        fo.degraded_mbps =
            static_cast<double>(degraded_bytes) / 1e6 / degraded_s;
      fo.degraded_read_lat = obs::LatencySummary::of(degraded_lat.reads());
      fo.degraded_write_lat = obs::LatencySummary::of(degraded_lat.writes());
    } else {
      fo.healthy_mbps = res.throughput_mbps;
    }
  }
  if (cfg.adapt != nullptr) {
    res.adapt_epochs = cfg.adapt->epochs_completed();
    res.adapt_rebalances = cfg.adapt->rebalances();
    const std::vector<u64>& targets = cfg.adapt->targets();
    for (size_t t = 0; t < res.tenants.size() && t < targets.size(); ++t)
      res.tenants[t].target_blocks = targets[t];
  }
  return res;
}

}  // namespace srcache::workload
