#include "workload/runner.hpp"

#include "workload/closed_loop.hpp"

namespace srcache::workload {

Runner::Runner(cache::CacheDevice* cache,
               std::vector<blockdev::BlockDevice*> ssds)
    : cache_(cache), ssds_(std::move(ssds)) {}

RunResult Runner::run(const std::vector<Generator*>& gens,
                      const RunConfig& cfg) {
  ClosedLoop loop(cache_, ssds_, gens, cfg);
  loop.warmup();
  loop.start();
  loop.run_to_end();
  return loop.finish();
}

}  // namespace srcache::workload
