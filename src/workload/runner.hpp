// Closed-loop trace replayer and measurement harness — the simulated
// equivalent of the paper's trace-replay tool (§5.1): each trace is replayed
// by a fixed number of threads with a fixed queue depth, all traces of a
// group running simultaneously; throughput and I/O amplification are
// measured over a fixed (virtual) duration.
#pragma once

#include <array>
#include <vector>

#include "adapt/adaptive.hpp"
#include "block/block_device.hpp"
#include "cache/cache_device.hpp"
#include "fault/fault_injector.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "raid/rebuild.hpp"
#include "workload/generators.hpp"

namespace srcache::tier {
class TierCache;
}

namespace srcache::workload {

struct RunConfig {
  int threads_per_gen = 4;   // the paper replays each trace with 4 threads
  int iodepth = 1;           // outstanding requests per thread (FIO: 32)
  sim::SimTime duration = 10 * sim::kSec;
  u64 max_ops = 0;           // optional hard op budget (0 = unlimited)
  bool with_tags = false;    // carry content tags through the cache
  // Bytes of untimed workload to run first (cache warm-up); statistics and
  // the measurement window start after it completes.
  u64 warmup_bytes = 0;
  // Optional: a registry over the stack under test. The runner snapshots it
  // after warm-up and at the end; RunResult.metrics holds the delta, so the
  // measurement window excludes cache-fill traffic.
  const obs::MetricsRegistry* registry = nullptr;
  // Optional: request submit/complete events land here (measurement window
  // only) as "req.read"/"req.write" complete events on `trace_track`.
  obs::TraceLog* trace = nullptr;
  u32 trace_track = obs::kTrackApp;
  // Optional: fixed-interval time-series sampling of the measurement window
  // (0 = off). Derived per-interval series (throughput, hit ratio, per-
  // resource utilization, ...) land in RunResult.timeseries; resource series
  // need `registry` to be set as well.
  sim::SimTime timeseries_interval = 0;
  // Optional: a scripted fault injector (fault/fault_plan.hpp). The runner
  // anchors its triggers at the measurement-window start and advances it
  // before every measured request; RunResult.fault reports the ledger
  // counters and the healthy-vs-degraded split of the window.
  fault::FaultInjector* fault = nullptr;
  // Optional background rebuild engine (raid/rebuild.hpp). The loop pumps
  // it before every measured request (and once at the window end), so the
  // rate-limited reconstruction interleaves with foreground traffic at
  // request granularity; RunResult.rebuild reports the outcome.
  raid::RebuildManager* rebuild = nullptr;
  // Multi-tenant: number of tenants to report per-tenant outcomes for
  // (0 = single-tenant, RunResult.tenants stays empty). Requests carrying a
  // larger tenant id are folded into the last slot.
  u32 num_tenants = 0;
  // Optional adaptive partition controller. Every request (warm-up
  // included) is fed to observe(); epoch boundaries are anchored at the
  // measurement-window start, like fault triggers, and closed at request
  // boundaries inside the window.
  adapt::AdaptiveController* adapt = nullptr;
  // Optional write-provenance ledger of the cache under test. The runner
  // snapshots it after warm-up and reports the measurement-window delta in
  // RunResult.provenance, mirroring the ssd-stats window delta so the
  // balance invariant (ledger flash bytes == SSD write bytes) holds exactly.
  const obs::ProvenanceLedger* provenance = nullptr;
  // Optional op-span tracer. The runner opens a root span ("op.read"/
  // "op.write") around every measured request; components wired to the same
  // tracer attach children. RunResult.spans carries the aggregate outcome.
  obs::SpanTracer* spans = nullptr;
  // Optional compressed DRAM tier sitting above the cache under test
  // (src/tier). The loop snapshots its stats after warm-up and reports the
  // measurement-window delta in RunResult.tier. Note `cache` should already
  // be the tier itself when one is attached — this pointer only adds the
  // tier-specific accounting.
  tier::TierCache* tier = nullptr;
};

// Fault-scenario outcome of a run (RunConfig::fault). The window is split at
// the first fired event: before it the array is healthy, from it on the run
// is the paper's degraded window (§4.3) — failure-handling cost shows up as
// the throughput drop and the degraded-side latency tail.
struct FaultOutcome {
  bool active = false;      // a FaultInjector was attached
  u64 events_fired = 0;
  // FaultLedger counters at the end of the window; the ledger invariant
  // injected == detected + undetected must hold (see fault/ledger.hpp).
  u64 injected = 0;
  u64 detected = 0;
  u64 repaired = 0;
  // Of `repaired`: device-scope repairs completed by the background rebuild
  // engine (a distinct bucket; see FaultLedger::record_repaired_by_rebuild).
  u64 repaired_by_rebuild = 0;
  u64 undetected = 0;
  // Seconds into the measurement window of the first fired event; < 0 when
  // no event fired (plan empty or triggers past the window).
  double first_fault_s = -1.0;
  // Throughput over the healthy prefix / the degraded remainder. With no
  // fired event the whole window is healthy.
  double healthy_mbps = 0.0;
  double degraded_mbps = 0.0;
  // Bytes moved from the first fired event on (the numerator of
  // degraded_mbps; kept so per-shard outcomes merge exactly).
  u64 degraded_bytes = 0;
  // Request latency over the degraded part of the window only. The raw
  // recorder backs the summaries and lets the engine merge shard-domain
  // outcomes bucket-exactly.
  obs::LatencyRecorder degraded_latency;
  obs::LatencySummary degraded_read_lat;
  obs::LatencySummary degraded_write_lat;
};

// Compressed-DRAM-tier outcome of a run (inactive unless RunConfig::tier
// was set): integer mirrors of tier::TierStats over the measurement window
// plus end-of-window occupancy. Everything is exact integer arithmetic so
// per-shard outcomes merge bit-identically.
struct TierOutcome {
  bool active = false;
  u64 hit_blocks = 0;
  u64 miss_blocks = 0;
  u64 admit_blocks = 0;
  u64 bypass_blocks = 0;
  u64 promote_blocks = 0;
  u64 destage_blocks = 0;
  u64 demote_blocks = 0;
  u64 drop_blocks = 0;
  u64 evict_blocks = 0;
  u64 uncompressed_bytes = 0;
  u64 compressed_bytes = 0;
  u64 cpu_compress_ns = 0;
  u64 cpu_decompress_ns = 0;
  u64 lost_dirty_blocks = 0;
  // End-of-window occupancy and configuration (budgets sum across domains,
  // like the flash capacity they shadow).
  u64 resident_blocks = 0;
  u64 resident_compressed_bytes = 0;
  u64 dirty_blocks = 0;
  u64 budget_bytes = 0;

  [[nodiscard]] double hit_ratio() const {
    const u64 total = hit_blocks + miss_blocks;
    return total == 0 ? 0.0
                      : static_cast<double>(hit_blocks) /
                            static_cast<double>(total);
  }
  [[nodiscard]] double compression_ratio() const {
    return uncompressed_bytes == 0
               ? 1.0
               : static_cast<double>(compressed_bytes) /
                     static_cast<double>(uncompressed_bytes);
  }
  void merge_add(const TierOutcome& o) {
    active = active || o.active;
    hit_blocks += o.hit_blocks;
    miss_blocks += o.miss_blocks;
    admit_blocks += o.admit_blocks;
    bypass_blocks += o.bypass_blocks;
    promote_blocks += o.promote_blocks;
    destage_blocks += o.destage_blocks;
    demote_blocks += o.demote_blocks;
    drop_blocks += o.drop_blocks;
    evict_blocks += o.evict_blocks;
    uncompressed_bytes += o.uncompressed_bytes;
    compressed_bytes += o.compressed_bytes;
    cpu_compress_ns += o.cpu_compress_ns;
    cpu_decompress_ns += o.cpu_decompress_ns;
    lost_dirty_blocks += o.lost_dirty_blocks;
    resident_blocks += o.resident_blocks;
    resident_compressed_bytes += o.resident_compressed_bytes;
    dirty_blocks += o.dirty_blocks;
    budget_bytes += o.budget_bytes;
  }
};

// Per-tenant slice of the measurement window (RunConfig::num_tenants > 0).
// Hit/miss blocks are classified runner-side from the cache's miss-counter
// delta around each submit, so any CacheDevice works.
struct TenantOutcome {
  u64 ops = 0;
  u64 bytes = 0;
  u64 hit_blocks = 0;
  u64 miss_blocks = 0;
  u64 target_blocks = 0;  // final enforced share (0 without a controller)
  [[nodiscard]] double hit_ratio() const {
    const u64 total = hit_blocks + miss_blocks;
    return total == 0 ? 0.0
                      : static_cast<double>(hit_blocks) /
                            static_cast<double>(total);
  }
};

struct RunResult {
  double seconds = 0.0;
  u64 ops = 0;
  u64 bytes = 0;
  double throughput_mbps = 0.0;

  cache::CacheStats cache;
  // Sum over the cache SSDs for the run window.
  blockdev::DeviceStats ssd;
  // (SSD reads + writes) / application blocks — the paper's I/O
  // amplification metric ("observed I/Os at the cache layer divided by the
  // actual I/Os requested").
  double io_amplification = 0.0;
  double hit_ratio = 0.0;

  // End-to-end request latency over the measurement window (ns): merged
  // per-direction summaries plus the four read/write x hit/miss classes
  // (indexed by obs::ReqClass) and their full histograms.
  obs::LatencySummary read_lat;
  obs::LatencySummary write_lat;
  std::array<obs::LatencySummary, obs::kNumReqClasses> class_lat;
  obs::LatencyRecorder latency;
  // Samples whose negative latency the recorder clamped to 0 (nonzero means
  // a timing bug in the simulated stack; also exported as the
  // "obs.latency.clamped" metrics counter).
  u64 latency_clamped = 0;

  // Delta of RunConfig::registry across the measurement window (empty when
  // no registry was supplied).
  obs::MetricsSnapshot metrics;

  // Fixed-interval samples of the measurement window (empty unless
  // RunConfig::timeseries_interval > 0).
  obs::TimeSeries timeseries;

  // Fault-scenario outcome (inactive unless RunConfig::fault was set).
  FaultOutcome fault;

  // Background-rebuild outcome (inactive unless RunConfig::rebuild was
  // set). Merged across shard domains by RebuildOutcome::merge_add.
  raid::RebuildOutcome rebuild;

  // Write-provenance ledger delta over the measurement window (empty unless
  // RunConfig::provenance was set). Merged exactly across shard domains.
  obs::ProvenanceLedger provenance;

  // Op-span tracing outcome (inactive unless RunConfig::spans was set).
  obs::SpanOutcome spans;

  // Compressed-DRAM-tier outcome (inactive unless RunConfig::tier was set).
  // Merged across shard domains by TierOutcome::merge_add.
  TierOutcome tier;

  // Epoch SLO watchdog outcome (inactive unless a watchdog observed this
  // run; the engine harness assigns it on the merged result).
  obs::SloOutcome slo;

  // Per-tenant outcomes (empty unless RunConfig::num_tenants > 0) and the
  // adaptive controller's epoch/rebalance counts over the window.
  std::vector<TenantOutcome> tenants;
  u32 adapt_epochs = 0;
  u32 adapt_rebalances = 0;

  // Trace-file provenance, filled by benches replaying parsed traces so the
  // malformed-line count surfaces in REPRO_JSON instead of being swallowed.
  struct TraceInfo {
    bool present = false;
    u64 malformed_lines = 0;
  };
  TraceInfo trace_info;

  // Deterministic shape of a sharded engine run (engine::ParallelEngine
  // fills it on merged results). Only shard-count-invariant facts live here
  // — the domain partition and per-domain slices are a property of the
  // experiment, not of how it was executed. Shard/thread counts and wall-
  // clock timings go to the report-level "perf" section instead, which is
  // explicitly outside the bit-identical-REPRO_JSON contract.
  struct EngineInfo {
    bool active = false;
    u32 domains = 0;
    u32 epochs = 0;  // epoch barriers crossed
    struct DomainSlice {
      u64 ops = 0;
      u64 bytes = 0;
    };
    std::vector<DomainSlice> per_domain;
  };
  EngineInfo engine;
};

class Runner {
 public:
  // `ssds` are the devices whose traffic counts as cache-layer I/O.
  Runner(cache::CacheDevice* cache, std::vector<blockdev::BlockDevice*> ssds);

  RunResult run(const std::vector<Generator*>& gens, const RunConfig& cfg);

 private:
  cache::CacheDevice* cache_;
  std::vector<blockdev::BlockDevice*> ssds_;
};

}  // namespace srcache::workload
