// Resumable closed-loop replay: Runner::run's issue/measure machinery split
// into explicit phases (warmup -> start -> run_until... -> finish) so a
// caller can interleave other work at virtual-time boundaries. Runner drives
// one loop straight through; engine::ParallelEngine drives one loop per
// shard domain and pauses each at epoch barriers.
//
// Determinism contract: given identical construction inputs, the sequence of
// issued requests — and therefore every statistic finish() computes — is a
// pure function of the generators and the cache stack. Where execution is
// paused (which run_until boundaries were used) must not change the result:
// run_until(a); run_until(b) is equivalent to run_until(b) for a <= b.
#pragma once

#include <queue>
#include <vector>

#include "tier/tier_cache.hpp"
#include "workload/runner.hpp"

namespace srcache::workload {

class ClosedLoop {
 public:
  // `gens` are borrowed and must outlive the loop.
  ClosedLoop(cache::CacheDevice* cache,
             std::vector<blockdev::BlockDevice*> ssds,
             const std::vector<Generator*>& gens, const RunConfig& cfg);

  // Untimed warm-up phase (cfg.warmup_bytes of traffic, unmeasured).
  void warmup();

  // Opens the measurement window at the next pending completion: snapshots
  // device/cache/registry state and anchors the fault injector and adaptive
  // controller, exactly like Runner.
  void start();

  [[nodiscard]] sim::SimTime window_start() const { return start_; }
  [[nodiscard]] sim::SimTime window_end() const {
    return start_ + cfg_.duration;
  }

  // Issues every request whose virtual issue time is < min(until,
  // window_end), respecting cfg.max_ops. Returns false once the loop is
  // finished (window elapsed, op budget hit, or streams drained).
  bool run_until(sim::SimTime until);
  void run_to_end();

  [[nodiscard]] bool finished() const { return done_; }
  [[nodiscard]] u64 ops() const { return res_.ops; }
  [[nodiscard]] u64 bytes() const { return res_.bytes; }
  // Cumulative measured-window latency so far — lets barrier hooks (e.g. the
  // epoch SLO watchdog) read per-epoch deltas from quiescent domains.
  [[nodiscard]] const obs::LatencyRecorder& latency() const {
    return res_.latency;
  }
  // Virtual time of the next pending completion (window_end when drained);
  // after run_until(t) returned true this is >= t — the barrier invariant
  // engine_test asserts.
  [[nodiscard]] sim::SimTime next_event() const;

  // Closes the sampled window and computes the final RunResult. Call once,
  // after the loop finished (or to cut a run short deliberately).
  RunResult finish();

 private:
  u64 issue(sim::SimTime now, size_t g, bool measure);

  cache::CacheDevice* cache_;
  std::vector<blockdev::BlockDevice*> ssds_;
  std::vector<Generator*> gens_;
  RunConfig cfg_;

  // Closed loop: (completion time, generator) pairs; popping the earliest
  // completion issues that stream's next request at that instant.
  using Entry = std::pair<sim::SimTime, size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;

  RunResult res_;
  obs::TimeSeriesSampler sampler_;
  std::vector<u64> tagbuf_;

  bool measuring_ = false;
  bool done_ = false;
  sim::SimTime start_ = 0;

  blockdev::DeviceStats ssd_before_;
  cache::CacheStats cache_before_;
  obs::MetricsSnapshot metrics_before_;
  obs::ProvenanceLedger prov_before_;
  tier::TierStats tier_before_;
};

}  // namespace srcache::workload
