// MSR-Cambridge block-trace file support.
//
// The paper replays traces from the SNIA MSR-Cambridge collection
// (http://iotta.snia.org/traces/388), whose CSV schema is
//   Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
// with Timestamp in Windows 100ns ticks, Type "Read"/"Write", Offset and
// Size in bytes. This module parses that format so users holding the real
// traces can replay them through any CacheDevice; the repository itself
// ships only synthetic equivalents (see trace_synth.hpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "workload/generators.hpp"

namespace srcache::workload {

struct TimedOp {
  u64 timestamp_100ns = 0;
  bool is_write = false;
  u64 lba = 0;      // 4 KiB blocks (byte offset rounded down)
  u32 nblocks = 1;  // bytes rounded up
  u32 tenant = 0;   // assigned at parse time in multi-tenant replays
};

struct ParseOptions {
  // Abort with kInvalidArgument once more than this many malformed lines
  // have been skipped: a threshold of 0 demands a pristine trace, the
  // default tolerates the occasional truncated record in the public traces.
  size_t max_malformed = SIZE_MAX;
  u32 tenant = 0;  // stamped on every parsed op
};

struct ParsedTrace {
  std::vector<TimedOp> ops;
  size_t malformed_lines = 0;  // skipped (never silently: see the report)
};

// Parses an MSR-format CSV stream. Malformed lines are counted and skipped
// up to opts.max_malformed; crossing the threshold is an error (a trace
// that malformed is more likely mis-specified than truncated).
Result<ParsedTrace> parse_msr_csv(std::istream& in, const ParseOptions& opts);

// Legacy convenience wrapper: unlimited tolerance, `skipped` reports the
// malformed-line count.
Result<std::vector<TimedOp>> parse_msr_csv(std::istream& in,
                                           size_t* skipped = nullptr);

// Serializes ops back to the MSR CSV schema (for round-trips and for
// exporting synthetic traces to other tools).
void write_msr_csv(std::ostream& out, const std::vector<TimedOp>& ops,
                   const std::string& hostname = "synthetic");

// Summary statistics of a parsed trace, comparable to the Table 6 columns.
struct TraceFileStats {
  u64 ops = 0;
  double avg_req_kb = 0.0;
  double read_pct = 0.0;
  u64 footprint_blocks = 0;  // distinct 4 KiB blocks touched
  u64 volume_bytes = 0;      // total bytes transferred
};
TraceFileStats summarize(const std::vector<TimedOp>& ops);

// Closed-loop generator over a parsed trace: replays ops in order (the
// paper's replay tool drives traces as fast as the device allows), looping
// when exhausted. An optional lba_offset relocates the trace in the
// primary address space; lba_clamp bounds it.
class TraceFileGen final : public Generator {
 public:
  TraceFileGen(std::vector<TimedOp> ops, u64 lba_offset = 0,
               u64 lba_clamp_blocks = 0);

  Op next() override;
  [[nodiscard]] const char* name() const override { return "trace-file"; }
  [[nodiscard]] size_t size() const { return ops_.size(); }
  [[nodiscard]] u64 loops() const { return loops_; }

 private:
  std::vector<TimedOp> ops_;
  u64 offset_;
  u64 clamp_;
  size_t pos_ = 0;
  u64 loops_ = 0;
};

}  // namespace srcache::workload
