#include "workload/closed_loop.hpp"

#include <algorithm>
#include <stdexcept>

namespace srcache::workload {

ClosedLoop::ClosedLoop(cache::CacheDevice* cache,
                       std::vector<blockdev::BlockDevice*> ssds,
                       const std::vector<Generator*>& gens,
                       const RunConfig& cfg)
    : cache_(cache),
      ssds_(std::move(ssds)),
      gens_(gens),
      cfg_(cfg),
      sampler_(cfg.registry, cfg.timeseries_interval) {
  if (gens_.empty()) throw std::invalid_argument("Runner: no generators");
  const size_t streams_per_gen =
      static_cast<size_t>(cfg_.threads_per_gen) *
      static_cast<size_t>(std::max(1, cfg_.iodepth));
  sim::SimTime t0 = 0;
  for (size_t g = 0; g < gens_.size(); ++g) {
    for (size_t s = 0; s < streams_per_gen; ++s) {
      heap_.emplace(t0, g);
      t0 += 100;  // stagger initial issues slightly
    }
  }
  res_.tenants.resize(cfg_.num_tenants);
}

// `measure` gates latency/trace recording so the warm-up phase stays out
// of the histograms. Classification reads the cache's own hit counters
// around the submit — no extra work on the cache's hot path, no per-
// request allocation here (tagbuf is reused, histograms are preallocated).
u64 ClosedLoop::issue(sim::SimTime now, size_t g, bool measure) {
  const Op op = gens_[g]->next();
  if (cfg_.adapt != nullptr) cfg_.adapt->observe(op.tenant, op.lba, op.nblocks);
  cache::AppRequest req;
  req.now = now;
  req.is_write = op.is_write;
  req.lba = op.lba;
  req.nblocks = op.nblocks;
  req.tenant = op.tenant;
  req.comp_pct = op.comp_pct;
  if (cfg_.with_tags && !op.is_write) {
    tagbuf_.resize(op.nblocks);
    req.tags_out = tagbuf_.data();
  }
  u64 miss_before = 0;
  if (measure) {
    miss_before = op.is_write ? cache_->stats().write_new_blocks
                              : cache_->stats().read_miss_blocks;
  }
  // Root op-span: opened before the submit so component spans underneath
  // attach as children; the sampling draw happens on every measured op in
  // issue order, keeping the tracer's RNG stream shard-deterministic.
  const bool op_sampled =
      measure && cfg_.spans != nullptr &&
      cfg_.spans->begin_op(op.is_write ? "op.write" : "op.read", now);
  const sim::SimTime done = cache_->submit(req);
  if (op_sampled) cfg_.spans->end_op(done, op.nblocks);
  if (done < now) throw std::logic_error("Runner: completion before issue");
  if (measure) {
    const u64 miss_after = op.is_write ? cache_->stats().write_new_blocks
                                       : cache_->stats().read_miss_blocks;
    const bool hit = miss_after == miss_before;
    if (!res_.tenants.empty()) {
      const size_t t = std::min<size_t>(op.tenant, res_.tenants.size() - 1);
      TenantOutcome& to = res_.tenants[t];
      to.ops++;
      to.bytes += blocks_to_bytes(op.nblocks);
      const u64 missed = std::min<u64>(miss_after - miss_before, op.nblocks);
      to.miss_blocks += missed;
      to.hit_blocks += op.nblocks - missed;
    }
    res_.latency.record(obs::classify(op.is_write, hit), done - now);
    // Degraded-window accounting: everything issued at or after the first
    // fired fault event is recorded separately so the failure-handling cost
    // (§4.3) is visible next to the healthy baseline.
    if (cfg_.fault != nullptr && cfg_.fault->events_fired() > 0) {
      res_.fault.degraded_latency.record(obs::classify(op.is_write, hit),
                                         done - now);
      res_.fault.degraded_bytes += blocks_to_bytes(op.nblocks);
    }
    sampler_.record(now, op.is_write, hit, op.nblocks,
                    blocks_to_bytes(op.nblocks));
    if (cfg_.trace != nullptr) {
      cfg_.trace->complete(op.is_write ? "req.write" : "req.read",
                           cfg_.trace_track, now, done, op.nblocks);
    }
  }
  heap_.emplace(done, g);
  return blocks_to_bytes(op.nblocks);
}

void ClosedLoop::warmup() {
  u64 warmed = 0;
  while (warmed < cfg_.warmup_bytes && !heap_.empty()) {
    const auto [now, g] = heap_.top();
    heap_.pop();
    warmed += issue(now, g, /*measure=*/false);
  }
}

void ClosedLoop::start() {
  // Measurement window starts at the next event after warm-up.
  start_ = heap_.empty() ? 0 : heap_.top().first;
  measuring_ = true;

  for (auto* d : ssds_) {
    const auto& s = d->stats();
    ssd_before_.read_ops += s.read_ops;
    ssd_before_.read_blocks += s.read_blocks;
    ssd_before_.write_ops += s.write_ops;
    ssd_before_.write_blocks += s.write_blocks;
  }
  cache_before_ = cache_->stats();
  if (cfg_.registry != nullptr) metrics_before_ = cfg_.registry->snapshot();
  if (cfg_.provenance != nullptr) prov_before_ = *cfg_.provenance;
  if (cfg_.tier != nullptr) tier_before_ = cfg_.tier->tier_stats();
  sampler_.start(start_);
  // Fault-plan triggers are relative to the measurement window ("2s in",
  // "ops:1000"), so the injector is anchored and advanced only inside it.
  if (cfg_.fault != nullptr) cfg_.fault->set_epoch(start_);
  // Adaptive partition epochs are anchored the same way: warm-up traffic
  // profiles the ghost caches, but epoch boundaries tick inside the window.
  if (cfg_.adapt != nullptr) cfg_.adapt->set_epoch_start(start_);
}

bool ClosedLoop::run_until(sim::SimTime until) {
  if (!measuring_) throw std::logic_error("ClosedLoop: run before start()");
  const sim::SimTime end = window_end();
  while (!heap_.empty()) {
    const auto [now, g] = heap_.top();
    if (now >= end) {
      done_ = true;
      break;
    }
    if (cfg_.max_ops != 0 && res_.ops >= cfg_.max_ops) {
      done_ = true;
      break;
    }
    if (now >= until) return true;  // barrier reached, more work pending
    heap_.pop();
    if (cfg_.fault != nullptr) cfg_.fault->advance(now, res_.ops);
    // Background reconstruction interleaves at request granularity: the
    // pump is monotone and idempotent in `now`, so per-op pumping here and
    // per-epoch pumping in the engine compose without double-counting.
    if (cfg_.rebuild != nullptr) cfg_.rebuild->pump(now);
    if (cfg_.adapt != nullptr && cfg_.adapt->epoch_due(now))
      cfg_.adapt->run_epoch(now);
    res_.bytes += issue(now, g, /*measure=*/true);
    res_.ops++;
  }
  done_ = done_ || heap_.empty();
  return !done_;
}

void ClosedLoop::run_to_end() {
  // window_end() bounds every issue, so any until past it drains the loop.
  run_until(window_end() + 1);
}

sim::SimTime ClosedLoop::next_event() const {
  return heap_.empty() ? window_end() : heap_.top().first;
}

RunResult ClosedLoop::finish() {
  // Close out the sampled window at the nominal end: trailing zero-request
  // intervals (op budget exhausted, streams drained) are real idle time.
  sampler_.finish(window_end());

  res_.seconds = sim::to_seconds(cfg_.duration);
  res_.throughput_mbps = static_cast<double>(res_.bytes) / 1e6 / res_.seconds;

  blockdev::DeviceStats ssd_after;
  for (auto* d : ssds_) {
    const auto& s = d->stats();
    ssd_after.read_ops += s.read_ops;
    ssd_after.read_blocks += s.read_blocks;
    ssd_after.write_ops += s.write_ops;
    ssd_after.write_blocks += s.write_blocks;
  }
  res_.ssd = ssd_after - ssd_before_;

  const cache::CacheStats& after = cache_->stats();
  res_.cache.app_read_ops = after.app_read_ops - cache_before_.app_read_ops;
  res_.cache.app_read_blocks =
      after.app_read_blocks - cache_before_.app_read_blocks;
  res_.cache.app_write_ops = after.app_write_ops - cache_before_.app_write_ops;
  res_.cache.app_write_blocks =
      after.app_write_blocks - cache_before_.app_write_blocks;
  res_.cache.read_hit_blocks =
      after.read_hit_blocks - cache_before_.read_hit_blocks;
  res_.cache.read_miss_blocks =
      after.read_miss_blocks - cache_before_.read_miss_blocks;
  res_.cache.write_hit_blocks =
      after.write_hit_blocks - cache_before_.write_hit_blocks;
  res_.cache.write_new_blocks =
      after.write_new_blocks - cache_before_.write_new_blocks;
  res_.cache.fetch_blocks = after.fetch_blocks - cache_before_.fetch_blocks;
  res_.cache.destage_blocks =
      after.destage_blocks - cache_before_.destage_blocks;
  res_.cache.gc_copy_blocks =
      after.gc_copy_blocks - cache_before_.gc_copy_blocks;
  res_.cache.dropped_clean_blocks =
      after.dropped_clean_blocks - cache_before_.dropped_clean_blocks;

  const u64 app_blocks = res_.cache.app_blocks();
  res_.io_amplification =
      app_blocks == 0 ? 0.0
                      : static_cast<double>(res_.ssd.total_blocks()) /
                            static_cast<double>(app_blocks);
  res_.hit_ratio = res_.cache.hit_ratio();

  res_.read_lat = obs::LatencySummary::of(res_.latency.reads());
  res_.write_lat = obs::LatencySummary::of(res_.latency.writes());
  for (int c = 0; c < obs::kNumReqClasses; ++c) {
    res_.class_lat[static_cast<size_t>(c)] = obs::LatencySummary::of(
        res_.latency.histogram(static_cast<obs::ReqClass>(c)));
  }
  res_.latency_clamped = res_.latency.clamped();
  if (cfg_.registry != nullptr)
    res_.metrics = cfg_.registry->snapshot().delta_since(metrics_before_);
  // Surface the clamp counter alongside the stack's own metrics so timing
  // bugs show up in REPRO_JSON instead of being swallowed.
  res_.metrics.counters["obs.latency.clamped"] = res_.latency_clamped;
  res_.timeseries = sampler_.take();
  // Window deltas mirror the ssd-stats delta above, so the ledger balance
  // invariant (flash bytes == cache-SSD write bytes) holds per window even
  // with preconditioning traffic before start().
  if (cfg_.provenance != nullptr)
    res_.provenance = cfg_.provenance->delta_since(prov_before_);
  if (cfg_.spans != nullptr) res_.spans = cfg_.spans->outcome();
  if (cfg_.tier != nullptr) {
    TierOutcome& to = res_.tier;
    const tier::TierStats& ts = cfg_.tier->tier_stats();
    to.active = true;
    to.hit_blocks = ts.hit_blocks - tier_before_.hit_blocks;
    to.miss_blocks = ts.miss_blocks - tier_before_.miss_blocks;
    to.admit_blocks = ts.admit_blocks - tier_before_.admit_blocks;
    to.bypass_blocks = ts.bypass_blocks - tier_before_.bypass_blocks;
    to.promote_blocks = ts.promote_blocks - tier_before_.promote_blocks;
    to.destage_blocks = ts.destage_blocks - tier_before_.destage_blocks;
    to.demote_blocks = ts.demote_blocks - tier_before_.demote_blocks;
    to.drop_blocks = ts.drop_blocks - tier_before_.drop_blocks;
    to.evict_blocks = ts.evict_blocks - tier_before_.evict_blocks;
    to.uncompressed_bytes =
        ts.uncompressed_bytes - tier_before_.uncompressed_bytes;
    to.compressed_bytes = ts.compressed_bytes - tier_before_.compressed_bytes;
    to.cpu_compress_ns = ts.cpu_compress_ns - tier_before_.cpu_compress_ns;
    to.cpu_decompress_ns =
        ts.cpu_decompress_ns - tier_before_.cpu_decompress_ns;
    to.lost_dirty_blocks =
        ts.lost_dirty_blocks - tier_before_.lost_dirty_blocks;
    to.resident_blocks = cfg_.tier->resident_blocks();
    to.resident_compressed_bytes = cfg_.tier->resident_compressed_bytes();
    to.dirty_blocks = cfg_.tier->dirty_blocks();
    to.budget_bytes = cfg_.tier->config().budget_bytes;
  }

  if (cfg_.fault != nullptr) {
    FaultOutcome& fo = res_.fault;
    fo.active = true;
    fo.events_fired = cfg_.fault->events_fired();
    const fault::FaultLedger& led = cfg_.fault->ledger();
    fo.injected = led.injected();
    fo.detected = led.detected();
    fo.repaired = led.repaired();
    fo.repaired_by_rebuild = led.repaired_by_rebuild();
    fo.undetected = led.undetected();
    const sim::SimTime first = cfg_.fault->first_fire_time();
    if (first >= 0) {
      fo.first_fault_s = sim::to_seconds(first - start_);
      const double healthy_s = sim::to_seconds(first - start_);
      const double degraded_s = res_.seconds - healthy_s;
      const u64 healthy_bytes = res_.bytes - fo.degraded_bytes;
      if (healthy_s > 0)
        fo.healthy_mbps = static_cast<double>(healthy_bytes) / 1e6 / healthy_s;
      if (degraded_s > 0)
        fo.degraded_mbps =
            static_cast<double>(fo.degraded_bytes) / 1e6 / degraded_s;
      fo.degraded_read_lat =
          obs::LatencySummary::of(fo.degraded_latency.reads());
      fo.degraded_write_lat =
          obs::LatencySummary::of(fo.degraded_latency.writes());
    } else {
      fo.healthy_mbps = res_.throughput_mbps;
    }
  }
  if (cfg_.rebuild != nullptr) {
    // Grant the rebuilder the whole window's rate budget (ops may have run
    // out early), then close any still-open degraded interval at the
    // nominal window end — both deterministic in virtual time.
    cfg_.rebuild->pump(window_end());
    cfg_.rebuild->finalize(window_end());
    res_.rebuild = cfg_.rebuild->outcome();
  }
  if (cfg_.adapt != nullptr) {
    res_.adapt_epochs = cfg_.adapt->epochs_completed();
    res_.adapt_rebalances = cfg_.adapt->rebalances();
    const std::vector<u64>& targets = cfg_.adapt->targets();
    for (size_t t = 0; t < res_.tenants.size() && t < targets.size(); ++t)
      res_.tenants[t].target_blocks = targets[t];
  }
  return std::move(res_);
}

}  // namespace srcache::workload
