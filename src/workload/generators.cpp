#include "workload/generators.hpp"

#include <algorithm>
#include <stdexcept>

namespace srcache::workload {

u8 comp_pct_for(u64 lba, u32 mean_pct, u32 jitter_pct) {
  // SplitMix64 finalizer over the LBA: stateless, so concurrent generators
  // and re-reads of the same block always agree on its content.
  u64 h = lba + 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  const u32 spread = 2 * jitter_pct + 1;
  const auto pct = static_cast<i64>(mean_pct) - jitter_pct +
                   static_cast<i64>(h % spread);
  return static_cast<u8>(std::clamp<i64>(pct, 5, 100));
}

FioGen::FioGen(const Config& cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.span_blocks == 0) throw std::invalid_argument("FioGen: empty span");
  if (cfg_.req_blocks == 0 || cfg_.req_blocks > cfg_.span_blocks)
    throw std::invalid_argument("FioGen: bad request size");
}

Op FioGen::next() {
  Op op;
  op.tenant = cfg_.tenant;
  op.nblocks = cfg_.req_blocks;
  op.is_write = !rng_.chance(static_cast<double>(cfg_.read_pct) / 100.0);
  if (cfg_.sequential) {
    if (cursor_ + cfg_.req_blocks > cfg_.span_blocks) cursor_ = 0;
    op.lba = cfg_.offset_blocks + cursor_;
    cursor_ += cfg_.req_blocks;
  } else {
    // Aligned uniform-random placement, matching FIO's 4 KiB UR profile.
    const u64 slots = cfg_.span_blocks / cfg_.req_blocks;
    op.lba = cfg_.offset_blocks + rng_.below(slots) * cfg_.req_blocks;
  }
  op.comp_pct = comp_pct_for(op.lba, cfg_.comp_mean_pct, cfg_.comp_jitter_pct);
  return op;
}

TenantMixGen::TenantMixGen(std::vector<Source> sources, u64 seed)
    : sources_(std::move(sources)), rng_(seed) {
  if (sources_.empty())
    throw std::invalid_argument("TenantMixGen: no sources");
  double total = 0.0;
  for (const Source& s : sources_) {
    if (s.gen == nullptr || s.weight <= 0.0)
      throw std::invalid_argument("TenantMixGen: bad source");
    total += s.weight;
  }
  cumulative_.reserve(sources_.size());
  double cum = 0.0;
  for (const Source& s : sources_) {
    cum += s.weight / total;
    cumulative_.push_back(cum);
  }
  cumulative_.back() = 1.0;  // absorb rounding
}

Op TenantMixGen::next() {
  const double u = rng_.uniform();
  size_t pick = 0;
  while (pick + 1 < cumulative_.size() && u >= cumulative_[pick]) pick++;
  return sources_[pick].gen->next();
}

}  // namespace srcache::workload
