#include "workload/generators.hpp"

#include <stdexcept>

namespace srcache::workload {

FioGen::FioGen(const Config& cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.span_blocks == 0) throw std::invalid_argument("FioGen: empty span");
  if (cfg_.req_blocks == 0 || cfg_.req_blocks > cfg_.span_blocks)
    throw std::invalid_argument("FioGen: bad request size");
}

Op FioGen::next() {
  Op op;
  op.nblocks = cfg_.req_blocks;
  op.is_write = !rng_.chance(static_cast<double>(cfg_.read_pct) / 100.0);
  if (cfg_.sequential) {
    if (cursor_ + cfg_.req_blocks > cfg_.span_blocks) cursor_ = 0;
    op.lba = cfg_.offset_blocks + cursor_;
    cursor_ += cfg_.req_blocks;
  } else {
    // Aligned uniform-random placement, matching FIO's 4 KiB UR profile.
    const u64 slots = cfg_.span_blocks / cfg_.req_blocks;
    op.lba = cfg_.offset_blocks + rng_.below(slots) * cfg_.req_blocks;
  }
  return op;
}

}  // namespace srcache::workload
