#include "workload/report.hpp"

#include <cstdio>

#include "obs/json.hpp"

namespace srcache::workload {

namespace {

void latency_summary(obs::JsonWriter& w, const char* key,
                     const obs::LatencySummary& s) {
  w.key(key).begin_object();
  w.kv("count", s.count);
  w.kv("mean", s.mean);
  w.kv("p50", s.p50);
  w.kv("p95", s.p95);
  w.kv("p99", s.p99);
  w.kv("p999", s.p999);
  w.kv("max", s.max);
  w.end_object();
}

}  // namespace

std::string run_json(const std::string& bench, const std::string& name,
                     const RunResult& r) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", bench);
  w.kv("name", name);
  w.kv("seconds", r.seconds);
  w.kv("ops", r.ops);
  w.kv("bytes", r.bytes);
  w.kv("throughput_mbps", r.throughput_mbps);
  w.kv("io_amplification", r.io_amplification);
  w.kv("hit_ratio", r.hit_ratio);

  w.key("latency_ns").begin_object();
  w.kv("clamped", r.latency_clamped);
  latency_summary(w, "read", r.read_lat);
  latency_summary(w, "write", r.write_lat);
  for (int c = 0; c < obs::kNumReqClasses; ++c) {
    latency_summary(w, obs::to_string(static_cast<obs::ReqClass>(c)),
                    r.class_lat[static_cast<size_t>(c)]);
  }
  w.end_object();

  w.key("cache").begin_object();
  w.kv("app_read_ops", r.cache.app_read_ops);
  w.kv("app_read_blocks", r.cache.app_read_blocks);
  w.kv("app_write_ops", r.cache.app_write_ops);
  w.kv("app_write_blocks", r.cache.app_write_blocks);
  w.kv("read_hit_blocks", r.cache.read_hit_blocks);
  w.kv("read_miss_blocks", r.cache.read_miss_blocks);
  w.kv("write_hit_blocks", r.cache.write_hit_blocks);
  w.kv("write_new_blocks", r.cache.write_new_blocks);
  w.kv("fetch_blocks", r.cache.fetch_blocks);
  w.kv("destage_blocks", r.cache.destage_blocks);
  w.kv("gc_copy_blocks", r.cache.gc_copy_blocks);
  w.kv("dropped_clean_blocks", r.cache.dropped_clean_blocks);
  w.end_object();

  w.key("ssd").begin_object();
  w.kv("read_ops", r.ssd.read_ops);
  w.kv("read_blocks", r.ssd.read_blocks);
  w.kv("write_ops", r.ssd.write_ops);
  w.kv("write_blocks", r.ssd.write_blocks);
  w.kv("flushes", r.ssd.flushes);
  w.kv("trim_blocks", r.ssd.trim_blocks);
  w.end_object();

  if (r.fault.active) {
    w.key("fault").begin_object();
    w.kv("events_fired", r.fault.events_fired);
    w.kv("injected", r.fault.injected);
    w.kv("detected", r.fault.detected);
    w.kv("repaired", r.fault.repaired);
    w.kv("repaired_by_rebuild", r.fault.repaired_by_rebuild);
    w.kv("undetected", r.fault.undetected);
    w.kv("first_fault_s", r.fault.first_fault_s);
    w.kv("healthy_mbps", r.fault.healthy_mbps);
    w.kv("degraded_mbps", r.fault.degraded_mbps);
    latency_summary(w, "degraded_read", r.fault.degraded_read_lat);
    latency_summary(w, "degraded_write", r.fault.degraded_write_lat);
    w.end_object();
  }

  // v6: background-rebuild outcome, emitted only when a RebuildManager was
  // attached so v5 documents' shapes stay strict subsets.
  if (r.rebuild.active) {
    w.key("rebuild").begin_object();
    w.kv("rebuilds_started", static_cast<u64>(r.rebuild.rebuilds_started));
    w.kv("rebuilds_completed", static_cast<u64>(r.rebuild.rebuilds_completed));
    w.kv("rebuilds_aborted", static_cast<u64>(r.rebuild.rebuilds_aborted));
    w.kv("spares_total", static_cast<u64>(r.rebuild.spares_total));
    w.kv("spares_used", static_cast<u64>(r.rebuild.spares_used));
    w.kv("blocks_at_risk_peak", r.rebuild.blocks_at_risk_peak);
    w.kv("blocks_copied", r.rebuild.blocks_copied);
    w.kv("blocks_skipped", r.rebuild.blocks_skipped);
    w.kv("blocks_unrecovered", r.rebuild.blocks_unrecovered);
    w.kv("read_bytes", r.rebuild.read_bytes);
    w.kv("write_bytes", r.rebuild.write_bytes);
    w.kv("degraded_seconds",
         static_cast<double>(r.rebuild.degraded_ns) / 1e9);
    w.end_object();
  }

  // v7: compressed-DRAM-tier outcome, emitted only when a tier was attached
  // so v6 documents' shapes stay strict subsets.
  if (r.tier.active) {
    w.key("tier").begin_object();
    w.kv("hit_blocks", r.tier.hit_blocks);
    w.kv("miss_blocks", r.tier.miss_blocks);
    w.kv("hit_ratio", r.tier.hit_ratio());
    w.kv("admit_blocks", r.tier.admit_blocks);
    w.kv("bypass_blocks", r.tier.bypass_blocks);
    w.kv("promote_blocks", r.tier.promote_blocks);
    w.kv("destage_blocks", r.tier.destage_blocks);
    w.kv("demote_blocks", r.tier.demote_blocks);
    w.kv("drop_blocks", r.tier.drop_blocks);
    w.kv("evict_blocks", r.tier.evict_blocks);
    w.kv("uncompressed_bytes", r.tier.uncompressed_bytes);
    w.kv("compressed_bytes", r.tier.compressed_bytes);
    w.kv("compression_ratio", r.tier.compression_ratio());
    w.kv("cpu_compress_ns", r.tier.cpu_compress_ns);
    w.kv("cpu_decompress_ns", r.tier.cpu_decompress_ns);
    w.kv("lost_dirty_blocks", r.tier.lost_dirty_blocks);
    w.kv("resident_blocks", r.tier.resident_blocks);
    w.kv("resident_compressed_bytes", r.tier.resident_compressed_bytes);
    w.kv("dirty_blocks", r.tier.dirty_blocks);
    w.kv("budget_bytes", r.tier.budget_bytes);
    w.end_object();
  }

  // v5: causal-observability blocks. Each is emitted only when its feature
  // was wired for the run, keeping older documents' shapes as strict subsets.
  if (!r.provenance.empty()) w.key("provenance").raw(r.provenance.to_json());

  if (r.spans.active) {
    w.key("spans").begin_object();
    w.kv("rate", r.spans.rate);
    w.kv("ops_seen", r.spans.ops_seen);
    w.kv("ops_sampled", r.spans.ops_sampled);
    w.kv("spans", r.spans.spans);
    w.kv("dropped", r.spans.span_dropped);
    w.key("by_name").begin_object();
    for (const auto& [sname, agg] : r.spans.by_name) {
      w.key(sname).begin_object();
      w.kv("count", agg.count);
      w.kv("total_ns", agg.total_ns);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }

  if (r.slo.active) {
    w.key("slo").begin_object();
    w.key("policy").begin_object();
    w.kv("min_throughput_mbps", r.slo.policy.min_throughput_mbps);
    w.kv("max_read_p99_ms", r.slo.policy.max_read_p99_ms);
    w.kv("max_write_p99_ms", r.slo.policy.max_write_p99_ms);
    w.kv("max_degraded_domains",
         static_cast<i64>(r.slo.policy.max_degraded_domains));
    w.kv("error_budget", r.slo.policy.error_budget);
    w.end_object();
    w.kv("epochs", static_cast<u64>(r.slo.epochs));
    w.kv("violations", static_cast<u64>(r.slo.violations));
    w.kv("degraded_epochs", static_cast<u64>(r.slo.degraded_epochs));
    w.kv("burn_rate", r.slo.burn_rate);
    w.kv("breached", r.slo.breached);
    w.key("verdicts").begin_array();
    for (const obs::SloVerdict& v : r.slo.verdicts) {
      w.begin_object();
      w.kv("epoch", static_cast<u64>(v.epoch));
      w.kv("seconds", v.seconds);
      w.kv("ops", v.ops);
      w.kv("bytes", v.bytes);
      w.kv("throughput_mbps", v.throughput_mbps);
      w.kv("read_p99_ms", v.read_p99_ms);
      w.kv("write_p99_ms", v.write_p99_ms);
      w.kv("degraded_domains", static_cast<u64>(v.degraded_domains));
      w.kv("ok", v.ok);
      w.kv("violated", v.violated);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (!r.tenants.empty()) {
    w.key("tenants").begin_array();
    for (size_t t = 0; t < r.tenants.size(); ++t) {
      const TenantOutcome& to = r.tenants[t];
      w.begin_object();
      w.kv("tenant", static_cast<u64>(t));
      w.kv("ops", to.ops);
      w.kv("bytes", to.bytes);
      w.kv("hit_blocks", to.hit_blocks);
      w.kv("miss_blocks", to.miss_blocks);
      w.kv("hit_ratio", to.hit_ratio());
      w.kv("target_blocks", to.target_blocks);
      w.end_object();
    }
    w.end_array();
    w.key("adapt").begin_object();
    w.kv("epochs", static_cast<u64>(r.adapt_epochs));
    w.kv("rebalances", static_cast<u64>(r.adapt_rebalances));
    w.end_object();
  }

  if (r.trace_info.present) {
    w.key("trace").begin_object();
    w.kv("malformed_lines", r.trace_info.malformed_lines);
    w.end_object();
  }

  // Deterministic shape of an engine-merged run. Wall-clock data lives in
  // the document-level "perf" section, never here (see report.hpp).
  if (r.engine.active) {
    w.key("engine").begin_object();
    w.kv("domains", static_cast<u64>(r.engine.domains));
    w.kv("epochs", static_cast<u64>(r.engine.epochs));
    w.key("per_domain").begin_array();
    for (const auto& d : r.engine.per_domain) {
      w.begin_object();
      w.kv("ops", d.ops);
      w.kv("bytes", d.bytes);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  w.key("metrics").raw(r.metrics.to_json());
  if (!r.timeseries.empty()) w.key("timeseries").raw(r.timeseries.to_json());
  w.end_object();
  return w.take();
}

std::string ReproReport::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", "srcache-repro-v7");
  w.kv("scale", scale_);
  w.kv("virtual_seconds", virtual_seconds_);
  w.key("runs").begin_array();
  for (const std::string& run : runs_) w.raw(run);
  w.end_array();
  if (!perf_runs_.empty()) {
    w.key("perf").begin_object();
    w.kv("shards", static_cast<u64>(perf_shards_));
    w.kv("threads", static_cast<u64>(perf_threads_));
    w.key("runs").begin_array();
    for (const PerfRun& p : perf_runs_) {
      w.begin_object();
      w.kv("bench", p.bench);
      w.kv("name", p.name);
      w.kv("wall_seconds", p.wall_seconds);
      w.kv("sim_ops_per_sec", p.sim_ops_per_sec);
      w.key("per_shard").begin_array();
      for (const PerfShard& s : p.per_shard) {
        w.begin_object();
        w.kv("ops", s.ops);
        w.kv("wall_seconds", s.wall_seconds);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  return w.take();
}

bool ReproReport::write_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace srcache::workload
