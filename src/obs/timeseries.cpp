#include "obs/timeseries.hpp"

#include <algorithm>
#include <set>

#include "obs/json.hpp"

namespace srcache::obs {

namespace {

constexpr std::string_view kBusySuffix = "busy_ns";

// "ssd.0.nand_busy_ns" -> "ssd.0.nand"; empty when `name` is not a busy-time
// counter.
std::string busy_resource(const std::string& name) {
  if (name.size() <= kBusySuffix.size() || !name.ends_with(kBusySuffix))
    return {};
  std::string res = name.substr(0, name.size() - kBusySuffix.size());
  if (res.back() == '.' || res.back() == '_') res.pop_back();
  return res;
}

bool is_units_gauge(const std::string& name) {
  return name.ends_with("_units") || name.ends_with(".units");
}

u64 counter_delta(const std::map<std::string, u64>& cur,
                  const std::map<std::string, u64>& prev,
                  const std::string& name) {
  const auto it = cur.find(name);
  if (it == cur.end()) return 0;
  const auto pit = prev.find(name);
  const u64 before = pit == prev.end() ? 0 : pit->second;
  return it->second >= before ? it->second - before : 0;
}

// CSV field per RFC 4180: quote when the value contains , " or a newline.
void csv_field(std::string& out, std::string_view s) {
  if (s.find_first_of(",\"\r\n") == std::string_view::npos) {
    out.append(s);
    return;
  }
  out.push_back('"');
  for (char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

void csv_num(std::string& out, double v) {
  JsonWriter w;  // reuse the JSON double formatter (round-trip precision)
  w.value(v);
  out.append(w.str());
}

double num_field(const JsonValue& obj, std::string_view key, bool* ok) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    *ok = false;
    return 0.0;
  }
  return v->number;
}

}  // namespace

// --- TimeSeries -------------------------------------------------------------

std::vector<std::string> TimeSeries::series_names() const {
  std::set<std::string> names;
  for (const TimeSample& s : samples)
    for (const auto& [name, v] : s.series) names.insert(name);
  return {names.begin(), names.end()};
}

std::string TimeSeries::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("interval_ns", static_cast<i64>(interval));
  w.kv("window_start_ns", static_cast<i64>(window_start));
  w.kv("truncated", truncated);
  w.key("samples").begin_array();
  for (const TimeSample& s : samples) {
    w.begin_object();
    w.kv("t_ns", static_cast<i64>(s.start));
    w.kv("dur_ns", static_cast<i64>(s.duration()));
    w.kv("ops", s.ops);
    w.kv("bytes", s.bytes);
    w.kv("app_blocks", s.app_blocks);
    w.kv("hits", s.hits);
    w.kv("misses", s.misses);
    w.kv("throughput_mbps", s.throughput_mbps);
    w.kv("hit_ratio", s.hit_ratio);
    w.kv("io_amplification", s.io_amplification);
    w.key("series").begin_object();
    for (const auto& [name, v] : s.series) w.kv(name, v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string TimeSeries::to_csv() const {
  const std::vector<std::string> names = series_names();
  std::string out;
  out += "t_ms,dur_ms,ops,bytes,throughput_mbps,hit_ratio,io_amplification";
  for (const std::string& n : names) {
    out.push_back(',');
    csv_field(out, n);
  }
  out.push_back('\n');
  for (const TimeSample& s : samples) {
    csv_num(out, static_cast<double>(s.start - window_start) / 1e6);
    out.push_back(',');
    csv_num(out, static_cast<double>(s.duration()) / 1e6);
    out.push_back(',');
    out += std::to_string(s.ops);
    out.push_back(',');
    out += std::to_string(s.bytes);
    out.push_back(',');
    csv_num(out, s.throughput_mbps);
    out.push_back(',');
    csv_num(out, s.hit_ratio);
    out.push_back(',');
    csv_num(out, s.io_amplification);
    for (const std::string& n : names) {
      out.push_back(',');
      const auto it = s.series.find(n);
      if (it != s.series.end()) csv_num(out, it->second);
      // absent: empty field, distinguishable from 0
    }
    out.push_back('\n');
  }
  return out;
}

Result<TimeSeries> TimeSeries::from_json(const JsonValue& v) {
  if (!v.is_object())
    return Status(ErrorCode::kInvalidArgument, "timeseries: not an object");
  TimeSeries ts;
  bool ok = true;
  ts.interval = static_cast<sim::SimTime>(num_field(v, "interval_ns", &ok));
  ts.window_start =
      static_cast<sim::SimTime>(num_field(v, "window_start_ns", &ok));
  if (const JsonValue* t = v.find("truncated");
      t != nullptr && t->type == JsonValue::Type::kBool)
    ts.truncated = t->boolean;
  const JsonValue* samples = v.find("samples");
  if (!ok || samples == nullptr || !samples->is_array())
    return Status(ErrorCode::kInvalidArgument, "timeseries: bad header");
  for (const JsonValue& sv : samples->array) {
    if (!sv.is_object())
      return Status(ErrorCode::kInvalidArgument, "timeseries: bad sample");
    TimeSample s;
    s.start = static_cast<sim::SimTime>(num_field(sv, "t_ns", &ok));
    s.end = s.start + static_cast<sim::SimTime>(num_field(sv, "dur_ns", &ok));
    s.ops = static_cast<u64>(num_field(sv, "ops", &ok));
    s.bytes = static_cast<u64>(num_field(sv, "bytes", &ok));
    s.app_blocks = static_cast<u64>(num_field(sv, "app_blocks", &ok));
    s.hits = static_cast<u64>(num_field(sv, "hits", &ok));
    s.misses = static_cast<u64>(num_field(sv, "misses", &ok));
    s.throughput_mbps = num_field(sv, "throughput_mbps", &ok);
    s.hit_ratio = num_field(sv, "hit_ratio", &ok);
    s.io_amplification = num_field(sv, "io_amplification", &ok);
    if (!ok)
      return Status(ErrorCode::kInvalidArgument, "timeseries: bad sample");
    if (const JsonValue* series = sv.find("series");
        series != nullptr && series->is_object()) {
      for (const auto& [name, val] : series->object)
        if (val.is_number()) s.series[name] = val.number;
    }
    ts.samples.push_back(std::move(s));
  }
  return ts;
}

// --- TimeSeriesSampler ------------------------------------------------------

TimeSeriesSampler::TimeSeriesSampler(const MetricsRegistry* registry,
                                     sim::SimTime interval,
                                     size_t max_samples)
    : registry_(registry),
      interval_(interval > 0 ? interval : 0),
      max_samples_(max_samples) {
  out_.interval = interval_;
}

void TimeSeriesSampler::start(sim::SimTime t0) {
  if (!enabled()) return;
  started_ = true;
  cur_start_ = t0;
  out_.window_start = t0;
  acc_ = TimeSample{};
  if (registry_ != nullptr) prev_ = registry_->snapshot();
}

void TimeSeriesSampler::record(sim::SimTime now, bool is_write, bool hit,
                               u32 nblocks, u64 bytes) {
  (void)is_write;
  if (!enabled() || !started_ || out_.truncated) return;
  while (now >= cur_start_ + interval_) {
    close_interval(cur_start_ + interval_);
    if (out_.truncated) return;
  }
  acc_.ops++;
  acc_.bytes += bytes;
  acc_.app_blocks += nblocks;
  if (hit)
    acc_.hits++;
  else
    acc_.misses++;
}

void TimeSeriesSampler::finish(sim::SimTime t_end) {
  if (!enabled() || !started_) return;
  while (!out_.truncated && t_end >= cur_start_ + interval_)
    close_interval(cur_start_ + interval_);
  if (!out_.truncated && t_end > cur_start_) close_interval(t_end);
  started_ = false;
}

void TimeSeriesSampler::close_interval(sim::SimTime end) {
  if (out_.samples.size() >= max_samples_) {
    out_.truncated = true;
    return;
  }
  TimeSample s = acc_;
  s.start = cur_start_;
  s.end = end;
  const double secs = sim::to_seconds(s.duration());
  s.throughput_mbps =
      secs > 0.0 ? static_cast<double>(s.bytes) / 1e6 / secs : 0.0;
  const u64 classified = s.hits + s.misses;
  s.hit_ratio =
      classified == 0 ? 0.0
                      : static_cast<double>(s.hits) /
                            static_cast<double>(classified);

  if (registry_ != nullptr) {
    const MetricsSnapshot snap = registry_->snapshot();
    u64 ssd_blocks = 0, gc_erases = 0, gc_pages = 0;
    for (const auto& [name, cur] : snap.counters) {
      const u64 d = counter_delta(snap.counters, prev_.counters, name);
      if (const std::string res = busy_resource(name); !res.empty()) {
        double units = 1.0;
        for (const std::string& g : {res + "_units", res + ".units"}) {
          if (const auto it = snap.gauges.find(g);
              it != snap.gauges.end() && it->second > 0.0) {
            units = it->second;
            break;
          }
        }
        const double denom = static_cast<double>(s.duration()) * units;
        s.series["util." + res] =
            denom > 0.0 ? static_cast<double>(d) / denom : 0.0;
      }
      if (name.starts_with("ssd.")) {
        if (name.ends_with(".read_blocks") || name.ends_with(".write_blocks"))
          ssd_blocks += d;
        else if (name.ends_with(".gc.erases"))
          gc_erases += d;
        else if (name.ends_with(".gc.pages_copied"))
          gc_pages += d;
      }
      // Per-tenant activity (hit/miss/shed counters) as per-interval deltas:
      // this is what makes partition adaptation visible over time.
      if (name.find(".tenant.") != std::string::npos)
        s.series[name] = static_cast<double>(d);
    }
    s.series["gc.erases"] = static_cast<double>(gc_erases);
    s.series["gc.pages_copied"] = static_cast<double>(gc_pages);
    s.io_amplification = s.app_blocks == 0
                             ? 0.0
                             : static_cast<double>(ssd_blocks) /
                                   static_cast<double>(s.app_blocks);
    for (const auto& [name, v] : snap.gauges)
      if (!is_units_gauge(name)) s.series[name] = v;
    prev_ = snap;
  }

  out_.samples.push_back(std::move(s));
  acc_ = TimeSample{};
  cur_start_ = end;
}

}  // namespace srcache::obs
