// MetricsRegistry: named counters / gauges / histograms with hierarchical
// dotted scopes ("ssd.0.gc.erases", "src.flushes", "hdd.link_busy_ns").
//
// Design rules, driven by the bench harness's overhead budget:
//  * Pull-first. Components that already keep their own counters (DeviceStats,
//    FtlStats, SrcCache::ExtraStats) register *callbacks* that read those
//    counters at snapshot time — the hot path is untouched, registering costs
//    nothing per request, and an unregistered component pays zero.
//  * Push metrics (owned Counter / Histogram) have stable addresses for the
//    lifetime of the registry, so instrumentation sites hold a pointer and
//    never do a name lookup or allocation on the hot path.
//  * Snapshot/delta. A MetricsSnapshot captures every metric's value; the
//    delta of two snapshots gives a clean measurement window (counters and
//    histogram buckets subtract; gauges are point-in-time and keep the later
//    value). workload::Runner snapshots after warm-up so run metrics exclude
//    cache-fill traffic.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/histogram.hpp"
#include "common/types.hpp"

namespace srcache::obs {

// Owned monotonic counter (push-style, for sites without an existing stats
// struct). Single-threaded like the rest of the simulator.
class Counter {
 public:
  void inc(u64 d = 1) { v_ += d; }
  void set(u64 v) { v_ = v; }
  [[nodiscard]] u64 value() const { return v_; }

 private:
  u64 v_ = 0;
};

struct HistogramStats {
  u64 count = 0;
  u64 min = 0;
  u64 max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;

  static HistogramStats of(const common::Histogram& h);
};

// Point-in-time capture of a registry. Counters and histograms are cumulative
// and subtract cleanly; gauges are instantaneous.
struct MetricsSnapshot {
  std::map<std::string, u64> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, common::Histogram> histograms;

  // Metrics recorded between `earlier` and this snapshot. Metrics absent
  // from `earlier` (registered mid-run) are taken whole.
  [[nodiscard]] MetricsSnapshot delta_since(const MetricsSnapshot& earlier) const;

  // Folds another snapshot in: counters and gauges add, histograms merge.
  // Used by the engine to aggregate per-shard-domain registries, where the
  // domains are replicas of the same stack and name-wise sums are the fleet
  // totals (gauges included: units, occupancies, backlogs).
  void merge_add(const MetricsSnapshot& other);

  // {"counters":{name:value,...},"gauges":{...},
  //  "histograms":{name:{count,min,max,mean,p50,p95,p99,p999},...}}
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Owned metrics: returns the existing instance when the name is taken.
  Counter& counter(const std::string& name);
  common::Histogram& histogram(const std::string& name);

  // Pull metrics: the callback is evaluated at snapshot time and must stay
  // valid for the registry's lifetime (re-registering a name replaces it).
  void counter_fn(const std::string& name, std::function<u64()> fn);
  void gauge_fn(const std::string& name, std::function<double()> fn);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] size_t size() const;

 private:
  // unique_ptr for stable addresses across rehash/insert.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<common::Histogram>> histograms_;
  std::map<std::string, std::function<u64()>> counter_fns_;
  std::map<std::string, std::function<double()>> gauge_fns_;
};

// Name-prefixing view over a registry: Scope(reg, "ssd.0").counter("gc.erases")
// registers "ssd.0.gc.erases". Copyable, cheap, does not own the registry.
class Scope {
 public:
  Scope(MetricsRegistry& reg, std::string prefix)
      : reg_(&reg), prefix_(std::move(prefix)) {}

  [[nodiscard]] Scope scope(const std::string& sub) const {
    return Scope(*reg_, join(sub));
  }

  Counter& counter(const std::string& name) const {
    return reg_->counter(join(name));
  }
  common::Histogram& histogram(const std::string& name) const {
    return reg_->histogram(join(name));
  }
  void counter_fn(const std::string& name, std::function<u64()> fn) const {
    reg_->counter_fn(join(name), std::move(fn));
  }
  void gauge_fn(const std::string& name, std::function<double()> fn) const {
    reg_->gauge_fn(join(name), std::move(fn));
  }

  [[nodiscard]] const std::string& prefix() const { return prefix_; }
  [[nodiscard]] MetricsRegistry& registry() const { return *reg_; }

 private:
  [[nodiscard]] std::string join(const std::string& name) const {
    return prefix_.empty() ? name : prefix_ + "." + name;
  }

  MetricsRegistry* reg_;
  std::string prefix_;
};

}  // namespace srcache::obs
