#include "obs/latency.hpp"

namespace srcache::obs {

const char* to_string(ReqClass c) {
  switch (c) {
    case ReqClass::kReadHit: return "read_hit";
    case ReqClass::kReadMiss: return "read_miss";
    case ReqClass::kWriteHit: return "write_hit";
    case ReqClass::kWriteMiss: return "write_miss";
  }
  return "?";
}

LatencySummary LatencySummary::of(const common::Histogram& h) {
  LatencySummary s;
  s.count = h.count();
  s.mean = h.mean();
  s.p50 = h.percentile(50);
  s.p95 = h.percentile(95);
  s.p99 = h.percentile(99);
  s.p999 = h.percentile(99.9);
  s.max = h.max();
  return s;
}

common::Histogram LatencyRecorder::reads() const {
  common::Histogram h = histogram(ReqClass::kReadHit);
  h.merge(histogram(ReqClass::kReadMiss));
  return h;
}

common::Histogram LatencyRecorder::writes() const {
  common::Histogram h = histogram(ReqClass::kWriteHit);
  h.merge(histogram(ReqClass::kWriteMiss));
  return h;
}

void LatencyRecorder::merge_from(const LatencyRecorder& other) {
  for (int c = 0; c < kNumReqClasses; ++c)
    hist_[static_cast<size_t>(c)].merge(other.hist_[static_cast<size_t>(c)]);
  clamped_ += other.clamped_;
}

void LatencyRecorder::reset() {
  for (auto& h : hist_) h.reset();
  clamped_ = 0;
}

}  // namespace srcache::obs
