// OpSpan tracing: a per-op causal span tree with deterministic head-based
// sampling.
//
// TraceLog records flat events; SpanTracer records *trees*: one root span
// per sampled application op (ingress), with nested child spans opened by
// every layer the op touches — cache submit, segment fill, destage, RAID
// stripe ops, SSD/NAND phases, backend fetch. Components hold a SpanTracer*
// (nullptr = off) and guard instrumentation with sampling(), so unsampled
// ops cost one branch per would-be span.
//
// Determinism contract (PR 6): the sampling decision consumes exactly one
// RNG draw per *measured* op, in op issue order, from a generator seeded by
// the per-domain seed stream — so which ops are sampled, the span trees, and
// the aggregated SpanOutcome are bit-identical across REPRO_SHARDS /
// REPRO_THREADS. SpanOutcome holds only exact integers (plus the configured
// rate) and merges with integer sums in domain-index order.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/time.hpp"

namespace srcache::obs {

class JsonWriter;
class TraceLog;

inline constexpr u32 kNoSpan = 0xFFFFFFFF;

struct SpanRecord {
  const char* name = "";   // static-lifetime string literal
  u32 trace_id = 0;        // sequential id of the sampled op (per tracer)
  u32 parent = kNoSpan;    // index of the parent record; kNoSpan for roots
  u32 depth = 0;
  u32 dev = 0;             // free slot: device index for per-device spans
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  u64 arg = 0;             // free slot: blocks, lba, ...
};

// Exact aggregate of one tracer's sampled spans; what lands in REPRO_JSON.
struct SpanOutcome {
  bool active = false;
  double rate = 0.0;     // configured sample rate (identical across domains)
  u64 ops_seen = 0;      // measured ops offered to the sampler
  u64 ops_sampled = 0;   // ops whose head draw selected them
  u64 spans = 0;         // span records retained
  u64 span_dropped = 0;  // spans lost to the record cap
  struct NameAgg {
    u64 count = 0;
    u64 total_ns = 0;
  };
  std::map<std::string, NameAgg> by_name;

  void merge_add(const SpanOutcome& o);
};

class SpanTracer {
 public:
  // `rate` in [0, 1] is the head-sampling probability; `seed` must come from
  // the per-domain seed stream; `cap` bounds retained span records.
  SpanTracer(u64 seed, double rate, size_t cap = 1 << 16);

  // Opens the root span for one measured op. Consumes exactly one sampling
  // draw per call. Returns true when the op is sampled (spans nest until
  // end_op); callers must call end_op iff this returned true.
  bool begin_op(const char* name, sim::SimTime start);
  void end_op(sim::SimTime end, u64 arg = 0);

  // True while inside a sampled op — the instrumentation guard.
  [[nodiscard]] bool sampling() const { return !stack_.empty(); }

  // Child span under the innermost open span. No-op (returns kNoSpan)
  // outside a sampled op or past the cap; end_span(kNoSpan, ...) is a no-op.
  u32 begin_span(const char* name, sim::SimTime start, u32 dev = 0);
  void end_span(u32 id, sim::SimTime end, u64 arg = 0);

  [[nodiscard]] const std::vector<SpanRecord>& records() const {
    return records_;
  }
  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] SpanOutcome outcome() const;

  // Chrome trace events: nested 'X' slices (one lane group per trace id)
  // plus flow arrows ('s'/'f') tying each parent to its children.
  void emit_chrome_events(JsonWriter& w) const;
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  common::Xoshiro256 rng_;
  double rate_;
  size_t cap_;
  std::vector<SpanRecord> records_;
  std::vector<u32> stack_;  // open span record indices, root first
  u64 ops_seen_ = 0;
  u64 ops_sampled_ = 0;
  u64 span_dropped_ = 0;
  u32 next_trace_ = 0;
};

// One Chrome trace document combining a TraceLog's flat events with a
// SpanTracer's span tree (either may be null).
std::string combined_chrome_json(const TraceLog* log, const SpanTracer* spans);

}  // namespace srcache::obs
