// TraceLog: a bounded ring buffer of structured simulation events, exportable
// as Chrome trace-event JSON (chrome://tracing, Perfetto) for timeline
// visualization of a run — request lifetimes, segment seals, SG reclaims,
// SSD-internal GC, flushes, failures and repairs on one synchronized axis.
//
// Tracing is opt-in: components hold a TraceLog* that defaults to nullptr,
// so an untraced run pays one branch per would-be event. Event names must be
// string literals (static lifetime); recording never allocates — when the
// buffer is full new events are dropped (the retained prefix stays intact)
// and counted, surfaced as the `obs.trace.dropped` gauge.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/time.hpp"

namespace srcache::obs {

class JsonWriter;

using sim::SimTime;

// Fixed track (Chrome "tid") assignments used by the stock wiring in the
// bench harness and tests. Anything fits — tracks just group timeline rows.
enum TraceTrack : u32 {
  kTrackApp = 0,     // application requests (workload::Runner)
  kTrackSrc = 1,     // SRC cache internals
  kTrackPrimary = 2, // iSCSI primary storage
  kTrackSsdBase = 8, // SSD i uses track kTrackSsdBase + i
};

struct TraceEvent {
  const char* name = "";  // static-lifetime string literal
  char phase = 'i';       // Chrome ph: 'X' complete, 'i' instant
  u32 track = 0;          // Chrome tid
  SimTime ts = 0;         // start (ns, virtual)
  SimTime dur = 0;        // 'X' only
  u64 arg = 0;            // one free payload slot (lba, count, ...)
};

class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 4096);

  // Duration event [start, end). A negative-duration pair is clamped to 0.
  void complete(const char* name, u32 track, SimTime start, SimTime end,
                u64 arg = 0);
  // Point event.
  void instant(const char* name, u32 track, SimTime ts, u64 arg = 0);

  [[nodiscard]] size_t capacity() const { return capacity_; }
  [[nodiscard]] size_t size() const { return ring_.size(); }
  // Events not retained because the buffer was full.
  [[nodiscard]] u64 dropped() const { return dropped_; }
  [[nodiscard]] u64 total_recorded() const { return total_; }

  // Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  // Chrome trace-event "JSON array format": [{"name","ph","ts","pid","tid",
  // ("dur"|"s"),"args":{"v":arg}},...] sorted by ts (so each track is
  // chronological), ts/dur in microseconds as the format requires.
  [[nodiscard]] std::string to_chrome_json() const;
  // The same events written into an already-open JSON array (lets callers
  // combine several event sources into one Chrome document).
  void emit_chrome_events(JsonWriter& w) const;

  void clear();

 private:
  void push(const TraceEvent& e);

  size_t capacity_;
  std::vector<TraceEvent> ring_;  // retained prefix, append-ordered
  u64 total_ = 0;                 // ever recorded
  u64 dropped_ = 0;               // recorded while full
};

}  // namespace srcache::obs
