// LatencyRecorder: per-class end-to-end request latency histograms.
//
// The paper reports throughput and I/O amplification; a production cache is
// judged on tail latency, and the simulator computes exact per-request
// completion times anyway — recording them costs one histogram increment.
// Requests are classified read/write x hit/miss (a "write hit" overwrites a
// cached block; a "write miss" allocates) because the four classes have
// different critical paths: RAM, SSD, primary fetch, segment-buffer staging.
#pragma once

#include <array>
#include <string>

#include "common/histogram.hpp"
#include "sim/time.hpp"

namespace srcache::obs {

enum class ReqClass : u8 {
  kReadHit = 0,
  kReadMiss = 1,
  kWriteHit = 2,
  kWriteMiss = 3,
};
inline constexpr int kNumReqClasses = 4;

const char* to_string(ReqClass c);

inline ReqClass classify(bool is_write, bool hit) {
  return static_cast<ReqClass>((is_write ? 2 : 0) + (hit ? 0 : 1));
}

// Pre-sized percentile summary embedded in RunResult (all values ns).
struct LatencySummary {
  u64 count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  u64 max = 0;

  static LatencySummary of(const common::Histogram& h);
};

class LatencyRecorder {
 public:
  void record(ReqClass c, sim::SimTime latency_ns) {
    if (latency_ns < 0) {
      // A negative latency means a simulator timing bug (completion before
      // issue). Clamp so the histogram stays valid, but count it — silent
      // swallowing is how such bugs stay invisible.
      latency_ns = 0;
      ++clamped_;
    }
    hist_[static_cast<size_t>(c)].record(static_cast<u64>(latency_ns));
  }

  [[nodiscard]] const common::Histogram& histogram(ReqClass c) const {
    return hist_[static_cast<size_t>(c)];
  }
  // Merged hit+miss histogram for one direction.
  [[nodiscard]] common::Histogram reads() const;
  [[nodiscard]] common::Histogram writes() const;

  // Samples whose negative latency was clamped to 0 (surfaced in RunResult
  // and REPRO_JSON as the "obs.latency.clamped" counter; nonzero = bug).
  [[nodiscard]] u64 clamped() const { return clamped_; }

  // Folds another recorder's histograms (and clamp count) into this one.
  // Bucket-exact, so merging per-shard recorders in any grouping yields the
  // same percentiles as recording every sample into one recorder.
  void merge_from(const LatencyRecorder& other);

  void reset();

 private:
  std::array<common::Histogram, kNumReqClasses> hist_;
  u64 clamped_ = 0;
};

}  // namespace srcache::obs
