#include "obs/provenance.hpp"

#include "obs/json.hpp"

namespace srcache::obs {

const char* to_string(WriteCause c) {
  switch (c) {
    case WriteCause::kUserWrite: return "user_write";
    case WriteCause::kMissFill: return "miss_fill";
    case WriteCause::kGcRewrite: return "gc_rewrite";
    case WriteCause::kParity: return "parity";
    case WriteCause::kRepairRemap: return "repair_remap";
    case WriteCause::kDestage: return "destage";
    case WriteCause::kQuotaShed: return "quota_shed";
    case WriteCause::kRebuildCopy: return "rebuild_copy";
    case WriteCause::kTierDestage: return "tier_destage";
    case WriteCause::kTierDemote: return "tier_demote";
  }
  return "?";
}

ProvenanceLedger ProvenanceLedger::delta_since(
    const ProvenanceLedger& earlier) const {
  ProvenanceLedger d;
  for (const auto& [key, cell] : cells_) {
    Cell out{};
    bool any = false;
    const auto it = earlier.cells_.find(key);
    for (size_t c = 0; c < kNumWriteCauses; ++c) {
      const u64 before = it != earlier.cells_.end() ? it->second[c] : 0;
      out[c] = cell[c] - before;
      any = any || out[c] != 0;
    }
    if (any) d.cells_[key] = out;
  }
  return d;
}

void ProvenanceLedger::merge_add(const ProvenanceLedger& other) {
  for (const auto& [key, cell] : other.cells_) {
    auto [it, inserted] = cells_.try_emplace(key);
    if (inserted) it->second.fill(0);
    for (size_t c = 0; c < kNumWriteCauses; ++c) it->second[c] += cell[c];
  }
}

namespace {
u64 cell_total(const ProvenanceLedger::Cell& cell) {
  u64 t = 0;
  for (u64 v : cell) t += v;
  return t;
}
}  // namespace

u64 ProvenanceLedger::flash_bytes() const {
  u64 t = 0;
  for (const auto& [key, cell] : cells_)
    if (key.first != kPrimaryDevice) t += cell_total(cell);
  return t;
}

u64 ProvenanceLedger::primary_bytes() const {
  return device_bytes(kPrimaryDevice);
}

u64 ProvenanceLedger::device_bytes(u32 device) const {
  u64 t = 0;
  for (const auto& [key, cell] : cells_)
    if (key.first == device) t += cell_total(cell);
  return t;
}

u64 ProvenanceLedger::tenant_bytes(u16 tenant) const {
  u64 t = 0;
  for (const auto& [key, cell] : cells_)
    if (key.second == tenant) t += cell_total(cell);
  return t;
}

u64 ProvenanceLedger::cause_bytes(WriteCause c) const {
  u64 t = 0;
  for (const auto& [key, cell] : cells_) {
    (void)key;
    t += cell[static_cast<size_t>(c)];
  }
  return t;
}

std::string ProvenanceLedger::to_json() const {
  // Re-keyed ordered aggregations so the output groups naturally.
  std::map<u32, Cell> by_device;
  std::map<u16, Cell> by_tenant;
  Cell by_cause{};
  for (const auto& [key, cell] : cells_) {
    auto [dit, dnew] = by_device.try_emplace(key.first);
    if (dnew) dit->second.fill(0);
    auto [tit, tnew] = by_tenant.try_emplace(key.second);
    if (tnew) tit->second.fill(0);
    for (size_t c = 0; c < kNumWriteCauses; ++c) {
      dit->second[c] += cell[c];
      tit->second[c] += cell[c];
      by_cause[c] += cell[c];
    }
  }

  JsonWriter w;
  const auto causes = [&w](const Cell& cell) {
    w.key("by_cause").begin_object();
    for (size_t c = 0; c < kNumWriteCauses; ++c)
      if (cell[c] != 0) w.kv(to_string(static_cast<WriteCause>(c)), cell[c]);
    w.end_object();
  };
  w.begin_object();
  w.kv("flash_bytes", flash_bytes());
  w.kv("primary_bytes", primary_bytes());
  causes(by_cause);
  w.key("devices").begin_array();
  for (const auto& [dev, cell] : by_device) {
    w.begin_object();
    if (dev == kPrimaryDevice) w.kv("device", "primary");
    else w.kv("device", static_cast<u64>(dev));
    w.kv("bytes", cell_total(cell));
    causes(cell);
    w.end_object();
  }
  w.end_array();
  w.key("tenants").begin_array();
  for (const auto& [tenant, cell] : by_tenant) {
    w.begin_object();
    if (tenant == kSharedTenant) w.kv("tenant", "shared");
    else w.kv("tenant", static_cast<u64>(tenant));
    w.kv("bytes", cell_total(cell));
    causes(cell);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace srcache::obs
