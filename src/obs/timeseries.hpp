// TimeSeriesSampler: fixed-interval (simulated-time) sampling of the
// measurement window.
//
// The paper's headline results are time-varying — SRC's win over LRU/RAID
// comes from *when* FTL GC and flush stalls fire — but a RunResult only
// reports window averages, which hides the GC dips and flush plateaus behind
// Tables 6/8/11. The sampler closes that gap without an event calendar: the
// closed-loop Runner observes virtual time only at request-completion
// boundaries, so it drives the sampler there; whenever time crosses one or
// more interval boundaries the sampler closes those intervals, snapshotting
// the MetricsRegistry and deriving per-interval series:
//
//  * throughput / IOPS / hit ratio / I/O amplification from the requests
//    the Runner fed into the interval;
//  * GC pressure (summed "ssd.*.gc.erases" / "ssd.*.gc.pages_copied"
//    counter deltas);
//  * every registry gauge as a point-in-time series (segment-buffer
//    occupancy, utilization, dirty backlog, ...);
//  * per-resource utilization "util.<resource>" for every counter named
//    "<resource>{._}busy_ns" (ServiceTimeline / MultiServer busy_time()
//    deltas divided by the interval, normalized by a "<resource>{._}units"
//    gauge when the component registered one — NAND dies, controller lanes).
//
// Busy time is charged at submit, so an interval that *queues* work can show
// utilization > 1 while a later interval shows the matching idle gap; per-
// interval busy deltas are still monotone non-negative. Series embed in
// REPRO_JSON (schema srcache-repro-v2) and export as CSV for plotting
// paper-figure-style timelines.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace srcache::obs {

struct JsonValue;

// One closed interval of the measurement window.
struct TimeSample {
  sim::SimTime start = 0;  // absolute sim time, ns
  sim::SimTime end = 0;    // start + interval, except a shorter tail sample

  // Request-level accumulators fed by the driver (Runner).
  u64 ops = 0;
  u64 bytes = 0;
  u64 app_blocks = 0;
  u64 hits = 0;    // requests, not blocks
  u64 misses = 0;

  // Derived paper metrics for the interval.
  double throughput_mbps = 0.0;
  double hit_ratio = 0.0;        // 0 when the interval saw no requests
  double io_amplification = 0.0; // SSD blocks moved / app blocks, 0 when idle

  // Named derived series: gauges, "util.*" utilizations, GC aggregates.
  std::map<std::string, double> series;

  [[nodiscard]] sim::SimTime duration() const { return end - start; }
};

// A complete sampled window, embeddable in REPRO_JSON and exportable as CSV.
struct TimeSeries {
  sim::SimTime interval = 0;      // 0 = sampling was disabled
  sim::SimTime window_start = 0;  // absolute sim time of the first interval
  bool truncated = false;         // hit the sample cap; tail not recorded
  std::vector<TimeSample> samples;

  [[nodiscard]] bool empty() const { return samples.empty(); }
  // Union of per-sample series names, sorted (CSV column order).
  [[nodiscard]] std::vector<std::string> series_names() const;

  // {"interval_ns":...,"window_start_ns":...,"truncated":...,"samples":[...]}
  [[nodiscard]] std::string to_json() const;
  // RFC-4180 CSV: fixed columns (t_ms relative to window_start, dur_ms, ops,
  // bytes, throughput_mbps, hit_ratio, io_amplification) then one column per
  // series name; fields containing comma/quote/newline are quoted.
  [[nodiscard]] std::string to_csv() const;

  // Inverse of to_json(), used by tools/repro_report to re-export CSV from a
  // parsed REPRO_JSON document.
  static Result<TimeSeries> from_json(const JsonValue& v);
};

class TimeSeriesSampler {
 public:
  // `registry` may be null: request-derived series still work, resource
  // series are skipped. `interval` <= 0 disables the sampler entirely.
  // `max_samples` bounds memory against pathological interval/duration
  // combinations; once reached, sampling stops and `truncated` is set.
  TimeSeriesSampler(const MetricsRegistry* registry, sim::SimTime interval,
                    size_t max_samples = 1 << 16);

  // Opens the measurement window at `t0` and takes the baseline snapshot.
  void start(sim::SimTime t0);

  // Feed one completed request at (monotone non-decreasing) time `now`.
  // Crossing interval boundaries closes the intervals they end.
  void record(sim::SimTime now, bool is_write, bool hit, u32 nblocks,
              u64 bytes);

  // Closes the window at `t_end`: remaining whole intervals are closed
  // (zero-request intervals included) plus a final partial one when `t_end`
  // is not boundary-aligned.
  void finish(sim::SimTime t_end);

  [[nodiscard]] bool enabled() const { return interval_ > 0; }
  [[nodiscard]] const TimeSeries& series() const { return out_; }
  [[nodiscard]] TimeSeries take() { return std::move(out_); }

 private:
  void close_interval(sim::SimTime end);

  const MetricsRegistry* registry_;
  sim::SimTime interval_;
  size_t max_samples_;

  bool started_ = false;
  sim::SimTime cur_start_ = 0;  // start of the open interval
  TimeSample acc_;              // request accumulators for the open interval
  MetricsSnapshot prev_;        // registry state when the open interval began

  TimeSeries out_;
};

}  // namespace srcache::obs
