// Minimal JSON emitter and parser for the observability subsystem.
//
// The emitter is a streaming writer (no DOM, no allocation per value beyond
// the output string); the parser builds a small DOM used by tests to
// round-trip machine-readable bench output and by tools that post-process
// REPRO_JSON files. Both implement strict RFC 8259 JSON — no comments, no
// trailing commas — so any external tool can consume what we emit.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace srcache::obs {

// Streaming JSON writer. Keys/values must be emitted in a valid order; the
// writer inserts commas and separators itself. Doubles are emitted with
// enough precision to round-trip; NaN/Inf (not representable in JSON)
// become null.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(u64 v);
  JsonWriter& value(i64 v);
  JsonWriter& value(u32 v) { return value(static_cast<u64>(v)); }
  JsonWriter& value(int v) { return value(static_cast<i64>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  // key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  // Splices a pre-serialized JSON fragment in value position.
  JsonWriter& raw(std::string_view json);

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

  static void escape_into(std::string& out, std::string_view s);

 private:
  void comma();

  std::string out_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> wrote_elem_;
  bool pending_key_ = false;
};

// Parsed JSON value (small DOM). Object member order is preserved.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }

  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  // find() that dives through dotted paths ("runs.0.throughput_mbps" is not
  // supported — only direct keys; kept simple on purpose).
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
};

// Strict parse of a complete JSON document (trailing whitespace allowed).
Result<JsonValue> parse_json(std::string_view text);

// Canonical re-serialization of a parsed DOM: member order preserved,
// numbers via JsonWriter's round-trip formatting, no whitespace. Two
// structurally identical documents serialize to the same bytes, which is
// what tools/repro_report --digest hashes.
std::string to_json(const JsonValue& v);

}  // namespace srcache::obs
