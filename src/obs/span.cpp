#include "obs/span.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace srcache::obs {

void SpanOutcome::merge_add(const SpanOutcome& o) {
  active = active || o.active;
  rate = std::max(rate, o.rate);
  ops_seen += o.ops_seen;
  ops_sampled += o.ops_sampled;
  spans += o.spans;
  span_dropped += o.span_dropped;
  for (const auto& [name, agg] : o.by_name) {
    NameAgg& mine = by_name[name];
    mine.count += agg.count;
    mine.total_ns += agg.total_ns;
  }
}

SpanTracer::SpanTracer(u64 seed, double rate, size_t cap)
    : rng_(seed), rate_(rate), cap_(cap == 0 ? 1 : cap) {}

bool SpanTracer::begin_op(const char* name, sim::SimTime start) {
  ++ops_seen_;
  // Exactly one draw per measured op, sampled or not: the draw sequence
  // depends only on op order, never on instrumentation below.
  const bool pick = rng_.chance(rate_);
  if (!pick) return false;
  if (records_.size() >= cap_) {
    ++span_dropped_;
    return false;
  }
  ++ops_sampled_;
  SpanRecord r;
  r.name = name;
  r.trace_id = next_trace_++;
  r.start = start;
  records_.push_back(r);
  stack_.push_back(static_cast<u32>(records_.size() - 1));
  return true;
}

void SpanTracer::end_op(sim::SimTime end, u64 arg) {
  // Close every span still open in this op (children a layer forgot to end
  // inherit the op's completion time), the root last.
  while (!stack_.empty()) {
    SpanRecord& r = records_[stack_.back()];
    if (r.end < r.start) r.end = end;
    if (r.end == 0) r.end = end;
    if (stack_.size() == 1) r.arg = arg;
    stack_.pop_back();
  }
}

u32 SpanTracer::begin_span(const char* name, sim::SimTime start, u32 dev) {
  if (stack_.empty()) return kNoSpan;
  if (records_.size() >= cap_) {
    ++span_dropped_;
    return kNoSpan;
  }
  const u32 parent = stack_.back();
  SpanRecord r;
  r.name = name;
  r.trace_id = records_[parent].trace_id;
  r.parent = parent;
  r.depth = records_[parent].depth + 1;
  r.dev = dev;
  r.start = start;
  records_.push_back(r);
  stack_.push_back(static_cast<u32>(records_.size() - 1));
  return static_cast<u32>(records_.size() - 1);
}

void SpanTracer::end_span(u32 id, sim::SimTime end, u64 arg) {
  if (id == kNoSpan) return;
  SpanRecord& r = records_[id];
  r.end = end > r.start ? end : r.start;
  r.arg = arg;
  // Strictly nested instrumentation pops LIFO; tolerate out-of-order ends.
  const auto it = std::find(stack_.begin(), stack_.end(), id);
  if (it != stack_.end()) stack_.erase(it);
}

SpanOutcome SpanTracer::outcome() const {
  SpanOutcome o;
  o.active = true;
  o.rate = rate_;
  o.ops_seen = ops_seen_;
  o.ops_sampled = ops_sampled_;
  o.spans = records_.size();
  o.span_dropped = span_dropped_;
  for (const SpanRecord& r : records_) {
    SpanOutcome::NameAgg& agg = o.by_name[r.name];
    agg.count += 1;
    agg.total_ns += r.end > r.start ? static_cast<u64>(r.end - r.start) : 0;
  }
  return o;
}

void SpanTracer::emit_chrome_events(JsonWriter& w) const {
  // Lane layout: each sampled trace renders its whole tree on one lane
  // (nesting by containment); four lanes keep concurrent traces apart.
  constexpr u32 kSpanLaneBase = 100;
  constexpr u32 kSpanLanes = 4;
  const auto lane = [](const SpanRecord& r) {
    return kSpanLaneBase + (r.trace_id % kSpanLanes);
  };
  for (size_t i = 0; i < records_.size(); ++i) {
    const SpanRecord& r = records_[i];
    w.begin_object();
    w.kv("name", r.name);
    w.kv("ph", "X");
    w.kv("ts", sim::to_us(r.start));
    w.kv("dur", sim::to_us(r.end > r.start ? r.end - r.start : 0));
    w.kv("pid", u64{0});
    w.kv("tid", lane(r));
    w.key("args").begin_object();
    w.kv("trace", r.trace_id);
    w.kv("depth", r.depth);
    w.kv("dev", r.dev);
    w.kv("v", r.arg);
    w.end_object();
    w.end_object();
    if (r.parent == kNoSpan) continue;
    // Flow arrow parent -> child: same cat+id+name pair links the two.
    const u64 flow_id = (static_cast<u64>(r.trace_id) << 24) | i;
    const SpanRecord& p = records_[r.parent];
    w.begin_object();
    w.kv("name", r.name);
    w.kv("cat", "span");
    w.kv("ph", "s");
    w.kv("id", flow_id);
    w.kv("ts", sim::to_us(r.start));
    w.kv("pid", u64{0});
    w.kv("tid", lane(p));
    w.end_object();
    w.begin_object();
    w.kv("name", r.name);
    w.kv("cat", "span");
    w.kv("ph", "f");
    w.kv("bp", "e");
    w.kv("id", flow_id);
    w.kv("ts", sim::to_us(r.start));
    w.kv("pid", u64{0});
    w.kv("tid", lane(r));
    w.end_object();
  }
}

std::string SpanTracer::to_chrome_json() const {
  JsonWriter w;
  w.begin_array();
  emit_chrome_events(w);
  w.end_array();
  return w.take();
}

std::string combined_chrome_json(const TraceLog* log, const SpanTracer* spans) {
  JsonWriter w;
  w.begin_array();
  if (log != nullptr) log->emit_chrome_events(w);
  if (spans != nullptr) spans->emit_chrome_events(w);
  w.end_array();
  return w.take();
}

}  // namespace srcache::obs
