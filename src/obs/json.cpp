#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace srcache::obs {

// --- writer -----------------------------------------------------------------

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key, no comma
  }
  if (!wrote_elem_.empty()) {
    if (wrote_elem_.back()) out_ += ',';
    wrote_elem_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  wrote_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  wrote_elem_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  wrote_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  wrote_elem_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  out_ += '"';
  escape_into(out_, k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += '"';
  escape_into(out_, v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(u64 v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(i64 v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

void JsonWriter::escape_into(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// --- DOM --------------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

// --- parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Result<JsonValue> parse() {
    JsonValue v;
    Status st = parse_value(v, 0);
    if (!st.is_ok()) return st;
    skip_ws();
    if (pos_ != s_.size())
      return Status(ErrorCode::kInvalidArgument, "trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] Status err(const char* what) const {
    return Status(ErrorCode::kInvalidArgument,
                  std::string(what) + " at offset " + std::to_string(pos_));
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status parse_value(JsonValue& out, int depth) {  // NOLINT(misc-no-recursion)
    if (depth > kMaxDepth) return err("nesting too deep");
    skip_ws();
    if (pos_ >= s_.size()) return err("unexpected end");
    switch (s_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': out.type = JsonValue::Type::kString; return parse_string(out.string);
      case 't':
      case 'f': return parse_literal(out);
      case 'n': return parse_literal(out);
      default: return parse_number(out);
    }
  }

  Status parse_object(JsonValue& out, int depth) {  // NOLINT(misc-no-recursion)
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return Status::ok();
    while (true) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') return err("expected key");
      std::string key;
      if (Status st = parse_string(key); !st.is_ok()) return st;
      skip_ws();
      if (!consume(':')) return err("expected ':'");
      JsonValue v;
      if (Status st = parse_value(v, depth + 1); !st.is_ok()) return st;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Status::ok();
      return err("expected ',' or '}'");
    }
  }

  Status parse_array(JsonValue& out, int depth) {  // NOLINT(misc-no-recursion)
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return Status::ok();
    while (true) {
      JsonValue v;
      if (Status st = parse_value(v, depth + 1); !st.is_ok()) return st;
      out.array.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Status::ok();
      return err("expected ',' or ']'");
    }
  }

  Status parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return Status::ok();
      if (static_cast<unsigned char>(c) < 0x20) return err("raw control char");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return err("dangling escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return err("short \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return err("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs not needed for
          // the ASCII-only strings we emit, but escape round-trips fine).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return err("bad escape");
      }
    }
    return err("unterminated string");
  }

  Status parse_literal(JsonValue& out) {
    auto match = [&](std::string_view lit) {
      if (s_.substr(pos_, lit.size()) != lit) return false;
      pos_ += lit.size();
      return true;
    };
    if (match("true")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return Status::ok();
    }
    if (match("false")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return Status::ok();
    }
    if (match("null")) {
      out.type = JsonValue::Type::kNull;
      return Status::ok();
    }
    return err("bad literal");
  }

  Status parse_number(JsonValue& out) {
    const size_t start = pos_;
    if (consume('-')) {}
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_])))
      return err("bad number");
    // Leading zero must not be followed by another digit.
    if (s_[pos_] == '0' && pos_ + 1 < s_.size() &&
        std::isdigit(static_cast<unsigned char>(s_[pos_ + 1])))
      return err("leading zero");
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (consume('.')) {
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_])))
        return err("bad fraction");
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_])))
        return err("bad exponent");
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    out.type = JsonValue::Type::kNumber;
    out.number = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(), nullptr);
    return Status::ok();
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> parse_json(std::string_view text) {
  return Parser(text).parse();
}

namespace {

void serialize_into(JsonWriter& w, const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kNull:
      w.null();
      break;
    case JsonValue::Type::kBool:
      w.value(v.boolean);
      break;
    case JsonValue::Type::kNumber:
      // Integral values parsed into the double field re-serialize without a
      // decimal point, matching what the writers emitted for u64/i64.
      if (v.number == static_cast<double>(static_cast<i64>(v.number)) &&
          std::abs(v.number) < 9.0e15) {
        w.value(static_cast<i64>(v.number));
      } else {
        w.value(v.number);
      }
      break;
    case JsonValue::Type::kString:
      w.value(v.string);
      break;
    case JsonValue::Type::kArray:
      w.begin_array();
      for (const JsonValue& e : v.array) serialize_into(w, e);
      w.end_array();
      break;
    case JsonValue::Type::kObject:
      w.begin_object();
      for (const auto& [k, e] : v.object) {
        w.key(k);
        serialize_into(w, e);
      }
      w.end_object();
      break;
  }
}

}  // namespace

std::string to_json(const JsonValue& v) {
  JsonWriter w;
  serialize_into(w, v);
  return w.take();
}

}  // namespace srcache::obs
