#include "obs/slo.hpp"

namespace srcache::obs {

void SloWatchdog::observe_epoch(sim::SimTime rel_end, u64 cum_ops,
                                u64 cum_bytes,
                                const common::Histogram& cum_read_lat,
                                const common::Histogram& cum_write_lat,
                                u32 degraded_domains) {
  SloVerdict v;
  v.epoch = static_cast<u32>(verdicts_.size());
  v.seconds = sim::to_seconds(rel_end - prev_rel_);
  v.ops = cum_ops - prev_ops_;
  v.bytes = cum_bytes - prev_bytes_;
  v.throughput_mbps =
      v.seconds > 0.0 ? static_cast<double>(v.bytes) / 1e6 / v.seconds : 0.0;
  const common::Histogram reads = cum_read_lat.minus(prev_read_);
  const common::Histogram writes = cum_write_lat.minus(prev_write_);
  v.read_p99_ms = reads.count() > 0 ? reads.percentile(99.0) / 1e6 : 0.0;
  v.write_p99_ms = writes.count() > 0 ? writes.percentile(99.0) / 1e6 : 0.0;
  v.degraded_domains = degraded_domains;

  const auto violate = [&v](const char* what) {
    v.ok = false;
    if (!v.violated.empty()) v.violated += ",";
    v.violated += what;
  };
  if (policy_.min_throughput_mbps > 0.0 &&
      v.throughput_mbps < policy_.min_throughput_mbps)
    violate("throughput");
  if (policy_.max_read_p99_ms > 0.0 && v.read_p99_ms > policy_.max_read_p99_ms)
    violate("read_p99");
  if (policy_.max_write_p99_ms > 0.0 &&
      v.write_p99_ms > policy_.max_write_p99_ms)
    violate("write_p99");
  if (policy_.max_degraded_domains >= 0 &&
      v.degraded_domains > static_cast<u32>(policy_.max_degraded_domains))
    violate("degraded");

  verdicts_.push_back(std::move(v));
  prev_rel_ = rel_end;
  prev_ops_ = cum_ops;
  prev_bytes_ = cum_bytes;
  prev_read_ = cum_read_lat;
  prev_write_ = cum_write_lat;
}

SloOutcome SloWatchdog::outcome() const {
  SloOutcome o;
  o.active = true;
  o.policy = policy_;
  o.epochs = static_cast<u32>(verdicts_.size());
  for (const SloVerdict& v : verdicts_) {
    if (!v.ok) ++o.violations;
    if (v.degraded_domains > 0) ++o.degraded_epochs;
  }
  if (o.epochs > 0 && policy_.error_budget > 0.0) {
    o.burn_rate = (static_cast<double>(o.violations) /
                   static_cast<double>(o.epochs)) /
                  policy_.error_budget;
  }
  o.breached = o.burn_rate > 1.0;
  o.verdicts = verdicts_;
  return o;
}

}  // namespace srcache::obs
