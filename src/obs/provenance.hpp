// Write-provenance ledger: attributes every write the cache issues — to the
// flash array and to primary storage — to a root cause at the call site,
// keyed per (device, tenant), in exact integer bytes.
//
// The paper's cost argument rests on controlling where write amplification
// comes from; aggregate WAF cannot distinguish GC rewrites from parity from
// destages. The ledger can, and it is *provably complete*: for every device
// the sum over causes equals the device's total written bytes
// (DeviceStats::write_blocks x block size), which provenance_test asserts
// after workloads that exercise every cause.
//
// Determinism: cells live in an ordered map and hold only u64 counts, so
// window deltas (delta_since) and cross-domain merges (merge_add) are exact
// integer arithmetic — the ledger is bit-identical across
// REPRO_SHARDS/REPRO_THREADS by construction.
#pragma once

#include <array>
#include <map>
#include <string>
#include <utility>

#include "common/types.hpp"

namespace srcache::obs {

// Why a write happened. Recorded at the call site that decided to write.
enum class WriteCause : u8 {
  kUserWrite = 0,   // application write staged into the cache
  kMissFill = 1,    // read-miss data fetched from primary and admitted
  kGcRewrite = 2,   // live block copied forward by segment reclamation
  kParity = 3,      // redundancy & layout overhead: parity/mirror columns,
                    // MS/ME metadata blocks, padding slots, superblock
  kRepairRemap = 4, // block rewritten after checksum/media-error repair
  kDestage = 5,     // dirty block written back to primary by reclamation
  kQuotaShed = 6,   // write diverted/destaged because a tenant is over quota
  kRebuildCopy = 7, // block reconstructed onto a replacement device by the
                    // background rebuild engine (parity/mirror decode)
  kTierDestage = 8, // dirty block written back from the compressed DRAM
                    // tier into the flash cache (tier write-back)
  kTierDemote = 9,  // clean block demoted from the compressed DRAM tier and
                    // re-admitted into the flash cache
};
inline constexpr size_t kNumWriteCauses = 10;

const char* to_string(WriteCause c);

// Tenant id for bytes not attributable to one tenant (metadata, parity).
inline constexpr u16 kSharedTenant = 0xFFFF;
// Device id for writes to primary storage (destages, quota bypass). Flash
// totals exclude it; it exists so destage/quota_shed causes balance too.
inline constexpr u32 kPrimaryDevice = 0xFFFFFFFF;

class ProvenanceLedger {
 public:
  using Key = std::pair<u32, u16>;                 // (device, tenant)
  using Cell = std::array<u64, kNumWriteCauses>;   // bytes per cause

  void add(u32 device, u16 tenant, WriteCause cause, u64 bytes) {
    if (bytes == 0) return;
    auto [it, inserted] = cells_.try_emplace(Key{device, tenant});
    if (inserted) it->second.fill(0);
    it->second[static_cast<size_t>(cause)] += bytes;
  }

  // Exact window delta: this ledger minus an earlier snapshot of itself.
  // All-zero cells are dropped so the delta is canonical.
  [[nodiscard]] ProvenanceLedger delta_since(
      const ProvenanceLedger& earlier) const;

  // Exact integer sum (cross-domain merge).
  void merge_add(const ProvenanceLedger& other);

  [[nodiscard]] const std::map<Key, Cell>& cells() const { return cells_; }
  [[nodiscard]] bool empty() const { return cells_.empty(); }

  // Flash bytes: every device except kPrimaryDevice.
  [[nodiscard]] u64 flash_bytes() const;
  [[nodiscard]] u64 primary_bytes() const;
  [[nodiscard]] u64 device_bytes(u32 device) const;
  [[nodiscard]] u64 tenant_bytes(u16 tenant) const;  // across all devices
  [[nodiscard]] u64 cause_bytes(WriteCause c) const;

  // JSON object (the REPRO_JSON "provenance" block): exact totals plus
  // per-device and per-tenant breakdowns by cause. Deterministic order.
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<Key, Cell> cells_;
};

}  // namespace srcache::obs
