// Epoch SLO watchdog: per-epoch service-level verdicts over a running
// experiment, designed to run as an engine barrier hook.
//
// At every epoch barrier the engine's domains are quiescent; the hook feeds
// the watchdog the *cumulative* merged state (ops, bytes, read/write latency
// histograms, degraded-domain count) and the watchdog takes exact window
// deltas itself (Histogram::minus is bucket-exact), evaluates the policy
// (min throughput, max read/write p99, tolerated degraded domains), and
// appends a structured verdict. The outcome — per-epoch verdicts, violation
// and degraded counts, and the error-budget burn rate — lands in REPRO_JSON
// ("slo" block) and `repro_report --slo`.
//
// Determinism: verdict inputs are exact integers/bucket counts computed at
// barriers from merged domain state, and the derived doubles are pure
// functions of them, so the outcome is bit-identical across
// REPRO_SHARDS/REPRO_THREADS.
#pragma once

#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/types.hpp"
#include "sim/time.hpp"

namespace srcache::obs {

struct SloPolicy {
  double min_throughput_mbps = 0.0;  // 0 = unchecked
  double max_read_p99_ms = 0.0;      // 0 = unchecked
  double max_write_p99_ms = 0.0;     // 0 = unchecked
  // Degraded domains (>= 1 failed device) tolerated per epoch; an epoch
  // exceeding this is a violation. Negative = unchecked.
  i32 max_degraded_domains = -1;
  // Fraction of epochs allowed to violate before the SLO counts as
  // breached; burn_rate = (violations/epochs)/error_budget.
  double error_budget = 0.1;

  [[nodiscard]] bool any() const {
    return min_throughput_mbps > 0.0 || max_read_p99_ms > 0.0 ||
           max_write_p99_ms > 0.0 || max_degraded_domains >= 0;
  }
};

struct SloVerdict {
  u32 epoch = 0;
  double seconds = 0.0;  // epoch window length (virtual)
  u64 ops = 0;
  u64 bytes = 0;
  double throughput_mbps = 0.0;
  double read_p99_ms = 0.0;
  double write_p99_ms = 0.0;
  u32 degraded_domains = 0;
  bool ok = true;
  std::string violated;  // comma list: "throughput,read_p99,..."
};

struct SloOutcome {
  bool active = false;
  SloPolicy policy;
  u32 epochs = 0;
  u32 violations = 0;
  u32 degraded_epochs = 0;  // epochs with any degraded domain
  double burn_rate = 0.0;
  bool breached = false;  // burn_rate > 1
  std::vector<SloVerdict> verdicts;
};

class SloWatchdog {
 public:
  explicit SloWatchdog(const SloPolicy& policy) : policy_(policy) {}

  // One barrier's cumulative merged state; `rel_end` is the barrier's
  // window-relative time (strictly increasing). The watchdog deltas against
  // the previous call.
  void observe_epoch(sim::SimTime rel_end, u64 cum_ops, u64 cum_bytes,
                     const common::Histogram& cum_read_lat,
                     const common::Histogram& cum_write_lat,
                     u32 degraded_domains);

  [[nodiscard]] SloOutcome outcome() const;

 private:
  SloPolicy policy_;
  sim::SimTime prev_rel_ = 0;
  u64 prev_ops_ = 0;
  u64 prev_bytes_ = 0;
  common::Histogram prev_read_;
  common::Histogram prev_write_;
  std::vector<SloVerdict> verdicts_;
};

}  // namespace srcache::obs
