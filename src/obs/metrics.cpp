#include "obs/metrics.hpp"

#include "obs/json.hpp"

namespace srcache::obs {

HistogramStats HistogramStats::of(const common::Histogram& h) {
  HistogramStats s;
  s.count = h.count();
  s.min = h.min();
  s.max = h.max();
  s.mean = h.mean();
  s.p50 = h.percentile(50);
  s.p95 = h.percentile(95);
  s.p99 = h.percentile(99);
  s.p999 = h.percentile(99.9);
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

common::Histogram& MetricsRegistry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<common::Histogram>();
  return *slot;
}

void MetricsRegistry::counter_fn(const std::string& name,
                                 std::function<u64()> fn) {
  counter_fns_[name] = std::move(fn);
}

void MetricsRegistry::gauge_fn(const std::string& name,
                               std::function<double()> fn) {
  gauge_fns_[name] = std::move(fn);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, fn] : counter_fns_) s.counters[name] = fn();
  for (const auto& [name, fn] : gauge_fns_) s.gauges[name] = fn();
  for (const auto& [name, h] : histograms_) s.histograms[name] = *h;
  return s;
}

size_t MetricsRegistry::size() const {
  return counters_.size() + counter_fns_.size() + gauge_fns_.size() +
         histograms_.size();
}

MetricsSnapshot MetricsSnapshot::delta_since(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot d;
  for (const auto& [name, v] : counters) {
    auto it = earlier.counters.find(name);
    const u64 before = it == earlier.counters.end() ? 0 : it->second;
    d.counters[name] = v >= before ? v - before : 0;
  }
  d.gauges = gauges;  // instantaneous: the window ends at `this`
  for (const auto& [name, h] : histograms) {
    auto it = earlier.histograms.find(name);
    d.histograms[name] =
        it == earlier.histograms.end() ? h : h.minus(it->second);
  }
  return d;
}

void MetricsSnapshot::merge_add(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) {
    auto [it, inserted] = histograms.try_emplace(name, h);
    if (!inserted) it->second.merge(h);
  }
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.kv(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges) w.kv(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    const HistogramStats s = HistogramStats::of(h);
    w.key(name).begin_object();
    w.kv("count", s.count);
    w.kv("min", s.min);
    w.kv("max", s.max);
    w.kv("mean", s.mean);
    w.kv("p50", s.p50);
    w.kv("p95", s.p95);
    w.kv("p99", s.p99);
    w.kv("p999", s.p999);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace srcache::obs
