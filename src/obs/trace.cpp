#include "obs/trace.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace srcache::obs {

TraceLog::TraceLog(size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

void TraceLog::push(const TraceEvent& e) {
  ring_[next_] = e;
  next_ = (next_ + 1) % ring_.size();
  if (count_ < ring_.size()) ++count_;
  ++total_;
}

void TraceLog::complete(const char* name, u32 track, SimTime start,
                        SimTime end, u64 arg) {
  TraceEvent e;
  e.name = name;
  e.phase = 'X';
  e.track = track;
  e.ts = start;
  e.dur = end > start ? end - start : 0;
  e.arg = arg;
  push(e);
}

void TraceLog::instant(const char* name, u32 track, SimTime ts, u64 arg) {
  TraceEvent e;
  e.name = name;
  e.phase = 'i';
  e.track = track;
  e.ts = ts;
  e.arg = arg;
  push(e);
}

std::vector<TraceEvent> TraceLog::events() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  const size_t oldest = count_ < ring_.size() ? 0 : next_;
  for (size_t i = 0; i < count_; ++i)
    out.push_back(ring_[(oldest + i) % ring_.size()]);
  return out;
}

std::string TraceLog::to_chrome_json() const {
  std::vector<TraceEvent> evs = events();
  // The ring is append-ordered per emitter but emitters interleave; a stable
  // sort by ts makes every track chronological as viewers expect.
  std::stable_sort(evs.begin(), evs.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts < b.ts;
                   });
  JsonWriter w;
  w.begin_array();
  for (const TraceEvent& e : evs) {
    w.begin_object();
    w.kv("name", e.name);
    w.key("ph").value(std::string_view(&e.phase, 1));
    w.kv("ts", sim::to_us(e.ts));
    w.kv("pid", u64{0});
    w.kv("tid", e.track);
    if (e.phase == 'X') w.kv("dur", sim::to_us(e.dur));
    else w.kv("s", "t");  // instant scope: thread
    w.key("args").begin_object().kv("v", e.arg).end_object();
    w.end_object();
  }
  w.end_array();
  return w.take();
}

void TraceLog::clear() {
  next_ = 0;
  count_ = 0;
  total_ = 0;
}

}  // namespace srcache::obs
