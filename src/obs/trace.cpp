#include "obs/trace.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace srcache::obs {

TraceLog::TraceLog(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TraceLog::push(const TraceEvent& e) {
  ++total_;
  // Drop-newest: the retained prefix stays contiguous from the start of the
  // run, and the loss is counted instead of silently rewriting history.
  if (ring_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  ring_.push_back(e);
}

void TraceLog::complete(const char* name, u32 track, SimTime start,
                        SimTime end, u64 arg) {
  TraceEvent e;
  e.name = name;
  e.phase = 'X';
  e.track = track;
  e.ts = start;
  e.dur = end > start ? end - start : 0;
  e.arg = arg;
  push(e);
}

void TraceLog::instant(const char* name, u32 track, SimTime ts, u64 arg) {
  TraceEvent e;
  e.name = name;
  e.phase = 'i';
  e.track = track;
  e.ts = ts;
  e.arg = arg;
  push(e);
}

std::vector<TraceEvent> TraceLog::events() const { return ring_; }

void TraceLog::emit_chrome_events(JsonWriter& w) const {
  std::vector<TraceEvent> evs = events();
  // The buffer is append-ordered per emitter but emitters interleave; a
  // stable sort by ts makes every track chronological as viewers expect.
  std::stable_sort(evs.begin(), evs.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts < b.ts;
                   });
  for (const TraceEvent& e : evs) {
    w.begin_object();
    w.kv("name", e.name);
    w.key("ph").value(std::string_view(&e.phase, 1));
    w.kv("ts", sim::to_us(e.ts));
    w.kv("pid", u64{0});
    w.kv("tid", e.track);
    if (e.phase == 'X') w.kv("dur", sim::to_us(e.dur));
    else w.kv("s", "t");  // instant scope: thread
    w.key("args").begin_object().kv("v", e.arg).end_object();
    w.end_object();
  }
}

std::string TraceLog::to_chrome_json() const {
  JsonWriter w;
  w.begin_array();
  emit_chrome_events(w);
  w.end_array();
  return w.take();
}

void TraceLog::clear() {
  ring_.clear();
  total_ = 0;
  dropped_ = 0;
}

}  // namespace srcache::obs
