#include "raid/raid_device.hpp"

#include <algorithm>
#include <stdexcept>

namespace srcache::raid {

namespace {

// One block-granular device access; runs are merged before submission.
struct Cell {
  size_t dev;
  u64 off;
  u64 tag = 0;    // value to write
  u64* out = nullptr;  // destination for reads
};

void sort_cells(std::vector<Cell>& cells) {
  std::sort(cells.begin(), cells.end(), [](const Cell& a, const Cell& b) {
    return a.dev != b.dev ? a.dev < b.dev : a.off < b.off;
  });
}

}  // namespace

const char* to_string(RaidLevel level) {
  switch (level) {
    case RaidLevel::kRaid0: return "RAID-0";
    case RaidLevel::kRaid1: return "RAID-1";
    case RaidLevel::kRaid4: return "RAID-4";
    case RaidLevel::kRaid5: return "RAID-5";
  }
  return "?";
}

RaidDevice::RaidDevice(const RaidConfig& cfg, std::vector<BlockDevice*> devices)
    : cfg_(cfg), devs_(std::move(devices)) {
  if (devs_.size() < 2) throw std::invalid_argument("RAID needs >= 2 devices");
  if (cfg_.chunk_blocks == 0) throw std::invalid_argument("chunk_blocks must be > 0");
  if (cfg_.level == RaidLevel::kRaid1 && devs_.size() % 2 != 0) {
    throw std::invalid_argument("RAID-1 needs an even device count");
  }
  dev_blocks_ = devs_[0]->capacity_blocks();
  for (auto* d : devs_) dev_blocks_ = std::min(dev_blocks_, d->capacity_blocks());
  // Round to whole stripes.
  dev_blocks_ -= dev_blocks_ % cfg_.chunk_blocks;
  const u64 n = devs_.size();
  switch (cfg_.level) {
    case RaidLevel::kRaid0: capacity_blocks_ = dev_blocks_ * n; break;
    case RaidLevel::kRaid1: capacity_blocks_ = dev_blocks_ * (n / 2); break;
    case RaidLevel::kRaid4:
    case RaidLevel::kRaid5: capacity_blocks_ = dev_blocks_ * (n - 1); break;
  }
}

u64 RaidDevice::data_cols() const {
  switch (cfg_.level) {
    case RaidLevel::kRaid0: return devs_.size();
    case RaidLevel::kRaid1: return devs_.size() / 2;
    case RaidLevel::kRaid4:
    case RaidLevel::kRaid5: return devs_.size() - 1;
  }
  return 0;
}

u64 RaidDevice::stripe_of(u64 lba) const {
  return (lba / cfg_.chunk_blocks) / data_cols();
}

size_t RaidDevice::parity_dev(u64 stripe) const {
  if (cfg_.level == RaidLevel::kRaid4) return devs_.size() - 1;
  // RAID-5 left-symmetric rotation.
  return (devs_.size() - 1) - (stripe % devs_.size());
}

RaidDevice::Loc RaidDevice::locate(u64 lba) const {
  const u64 chunk = lba / cfg_.chunk_blocks;
  const u64 row = lba % cfg_.chunk_blocks;
  const u64 cols = data_cols();
  const u64 stripe = chunk / cols;
  const u64 col = chunk % cols;
  switch (cfg_.level) {
    case RaidLevel::kRaid0:
      return {static_cast<size_t>(col), stripe * cfg_.chunk_blocks + row};
    case RaidLevel::kRaid1: {
      const size_t dev = static_cast<size_t>(2 * col);
      return {dev, stripe * cfg_.chunk_blocks + row, dev + 1};
    }
    case RaidLevel::kRaid4:
    case RaidLevel::kRaid5: {
      const size_t pdev = parity_dev(stripe);
      const size_t dev = col >= pdev ? static_cast<size_t>(col) + 1
                                     : static_cast<size_t>(col);
      return {dev, stripe * cfg_.chunk_blocks + row};
    }
  }
  throw std::logic_error("bad raid level");
}

int RaidDevice::redundancy() const {
  switch (cfg_.level) {
    case RaidLevel::kRaid0: return 0;
    case RaidLevel::kRaid1: return 1;  // one per mirror pair, conservatively 1
    case RaidLevel::kRaid4:
    case RaidLevel::kRaid5: return 1;
  }
  return 0;
}

bool RaidDevice::failed() const {
  int dead = 0;
  for (auto* d : devs_) dead += d->failed() ? 1 : 0;
  return dead > redundancy();
}

void RaidDevice::corrupt(u64 lba) {
  const Loc loc = locate(lba);
  devs_[loc.dev]->corrupt(loc.off);
}

// --- batched member access -------------------------------------------------

namespace {

// Merges sorted cells into contiguous per-device runs and applies `fn`
// (dev, off, count, first-cell-index). Returns max completion.
template <typename Fn>
SimTime for_each_run(const std::vector<Cell>& cells, SimTime now, Fn&& fn) {
  SimTime done = now;
  size_t i = 0;
  while (i < cells.size()) {
    size_t j = i + 1;
    while (j < cells.size() && cells[j].dev == cells[i].dev &&
           cells[j].off == cells[j - 1].off + 1) {
      ++j;
    }
    done = std::max(done, fn(cells[i].dev, cells[i].off, j - i, i));
    i = j;
  }
  return done;
}

}  // namespace

IoResult RaidDevice::read(SimTime now, u64 lba, u32 n, std::span<u64> tags_out) {
  if (lba + n > capacity_blocks_) return {now, ErrorCode::kInvalidArgument};
  const u32 sp = (span_ != nullptr && span_->sampling())
                     ? span_->begin_span("raid.read", now)
                     : obs::kNoSpan;
  auto finish = [&](IoResult r) {
    if (sp != obs::kNoSpan) span_->end_span(sp, r.done, n);
    return r;
  };
  std::vector<u64> scratch;
  if (tags_out.empty()) {
    scratch.assign(n, 0);
    tags_out = scratch;
  }
  std::vector<Cell> cells;
  cells.reserve(n);
  bool any_dead = false;
  for (u32 i = 0; i < n; ++i) {
    Loc loc = locate(lba + i);
    if (devs_[loc.dev]->failed()) {
      if (cfg_.level == RaidLevel::kRaid1 && !devs_[loc.mirror]->failed()) {
        loc.dev = loc.mirror;
      } else {
        any_dead = true;
        continue;  // handled in the reconstruction pass below
      }
    } else if (cfg_.level == RaidLevel::kRaid1 && !devs_[loc.mirror]->failed() &&
               (mirror_rr_++ & 1) != 0) {
      loc.dev = loc.mirror;  // balance reads across mirrors
    }
    cells.push_back({loc.dev, loc.off, 0, &tags_out[i]});
  }
  sort_cells(cells);
  std::vector<u64> buf;
  ErrorCode err = ErrorCode::kOk;
  SimTime done = for_each_run(cells, now, [&](size_t dev, u64 off, size_t cnt, size_t first) {
    buf.resize(cnt);
    IoResult r = devs_[dev]->read(now, off, static_cast<u32>(cnt),
                                  std::span<u64>(buf.data(), cnt));
    if (!r.ok()) { err = r.error; return now; }
    for (size_t k = 0; k < cnt; ++k) *cells[first + k].out = buf[k];
    stats_.read_ops++;
    stats_.read_blocks += cnt;
    return r.done;
  });
  if (err != ErrorCode::kOk) return finish({now, err});

  if (any_dead) {
    if (cfg_.level == RaidLevel::kRaid0)
      return finish({now, ErrorCode::kDeviceFailed});
    const u32 rsp = sp != obs::kNoSpan
                        ? span_->begin_span("raid.reconstruct", now)
                        : obs::kNoSpan;
    u64 rebuilt = 0;
    for (u32 i = 0; i < n; ++i) {
      const Loc loc = locate(lba + i);
      if (!devs_[loc.dev]->failed()) continue;
      if (cfg_.level == RaidLevel::kRaid1) {
        if (rsp != obs::kNoSpan) span_->end_span(rsp, now, rebuilt);
        return finish({now, ErrorCode::kDeviceFailed});
      }
      SimTime t = now;
      auto rec = reconstruct_block(now, loc.dev, loc.off, &t);
      if (!rec.is_ok()) {
        if (rsp != obs::kNoSpan) span_->end_span(rsp, t, rebuilt);
        return finish({now, rec.code()});
      }
      tags_out[i] = rec.value();
      rstats_.degraded_reads++;
      ++rebuilt;
      done = std::max(done, t);
    }
    if (rsp != obs::kNoSpan) span_->end_span(rsp, done, rebuilt);
  }
  return finish({done, ErrorCode::kOk});
}

Result<u64> RaidDevice::reconstruct_block(SimTime now, size_t dead_dev, u64 off,
                                          SimTime* done) {
  u64 acc = 0;
  SimTime t = now;
  for (size_t d = 0; d < devs_.size(); ++d) {
    if (d == dead_dev) continue;
    if (devs_[d]->failed()) return Status(ErrorCode::kDeviceFailed, "double failure");
    u64 tag = 0;
    IoResult r = devs_[d]->read(now, off, 1, std::span<u64>(&tag, 1));
    if (!r.ok()) return Status(r.error);
    stats_.read_ops++;
    stats_.read_blocks++;
    acc ^= tag;
    t = std::max(t, r.done);
  }
  if (done != nullptr) *done = t;
  return acc;
}

IoResult RaidDevice::write(SimTime now, u64 lba, u32 n, std::span<const u64> tags) {
  if (lba + n > capacity_blocks_) return {now, ErrorCode::kInvalidArgument};
  const u32 sp = (span_ != nullptr && span_->sampling())
                     ? span_->begin_span("raid.write", now)
                     : obs::kNoSpan;
  auto finish = [&](IoResult r) {
    if (sp != obs::kNoSpan) span_->end_span(sp, r.done, n);
    return r;
  };
  switch (cfg_.level) {
    case RaidLevel::kRaid0:
    case RaidLevel::kRaid1: {
      std::vector<Cell> cells;
      cells.reserve(n * 2);
      for (u32 i = 0; i < n; ++i) {
        const Loc loc = locate(lba + i);
        const u64 tag = tags.empty() ? 0 : tags[i];
        if (!devs_[loc.dev]->failed()) cells.push_back({loc.dev, loc.off, tag});
        if (cfg_.level == RaidLevel::kRaid1 && !devs_[loc.mirror]->failed()) {
          cells.push_back({loc.mirror, loc.off, tag});
        }
      }
      if (cells.empty()) return finish({now, ErrorCode::kDeviceFailed});
      sort_cells(cells);
      std::vector<u64> buf;
      ErrorCode err = ErrorCode::kOk;
      SimTime done = for_each_run(cells, now, [&](size_t dev, u64 off, size_t cnt, size_t first) {
        buf.resize(cnt);
        for (size_t k = 0; k < cnt; ++k) buf[k] = cells[first + k].tag;
        IoResult r = devs_[dev]->write(now, off, static_cast<u32>(cnt),
                                       std::span<const u64>(buf.data(), cnt));
        if (!r.ok()) { err = r.error; return now; }
        stats_.write_ops++;
        stats_.write_blocks += cnt;
        return r.done;
      });
      if (err != ErrorCode::kOk) return finish({now, err});
      return finish({done, ErrorCode::kOk});
    }
    case RaidLevel::kRaid4:
    case RaidLevel::kRaid5:
      return finish(write_parity_level(now, lba, n, tags));
  }
  return finish({now, ErrorCode::kInvalidArgument});
}

IoResult RaidDevice::write_parity_level(SimTime now, u64 lba, u32 n,
                                        std::span<const u64> tags) {
  const u64 cols = data_cols();
  const u64 stripe_data = cols * cfg_.chunk_blocks;
  SimTime done = now;
  u32 pos = 0;
  while (pos < n) {
    const u64 stripe = stripe_of(lba + pos);
    u32 cnt = 1;
    while (pos + cnt < n && stripe_of(lba + pos + cnt) == stripe) ++cnt;

    const size_t pdev = parity_dev(stripe);
    const u64 pbase = stripe * cfg_.chunk_blocks;  // parity chunk offset

    // Cell grid for this stripe: index = col * chunk + row.
    std::vector<u64> new_tag(stripe_data, 0);
    std::vector<char> written(stripe_data, 0);
    for (u32 i = 0; i < cnt; ++i) {
      const u64 b = lba + pos + i;
      const u64 chunk = b / cfg_.chunk_blocks;
      const u64 col = chunk % cols;
      const u64 row = b % cfg_.chunk_blocks;
      new_tag[col * cfg_.chunk_blocks + row] = tags.empty() ? 0 : tags[pos + i];
      written[col * cfg_.chunk_blocks + row] = 1;
    }
    const bool full =
        static_cast<u64>(std::count(written.begin(), written.end(), 1)) == stripe_data;

    bool degraded = devs_[pdev]->failed();
    for (size_t d = 0; d < devs_.size() && !degraded; ++d) degraded = devs_[d]->failed();

    auto data_dev = [&](u64 col) {
      return col >= pdev ? static_cast<size_t>(col) + 1 : static_cast<size_t>(col);
    };
    auto dev_off = [&](u64 row) { return pbase + row; };

    std::vector<u64> parity(cfg_.chunk_blocks, 0);
    std::vector<Cell> reads, writes;
    SimTime t_read = now;
    const char* strategy = "raid.full_stripe";

    if (full) {
      // Degraded members are skipped: a dead data cell's value lives in
      // parity (reads reconstruct it), a dead parity chunk simply stays
      // unwritten until rebuild.
      for (u64 c = 0; c < cols; ++c)
        for (u64 row = 0; row < cfg_.chunk_blocks; ++row) {
          const u64 tag = new_tag[c * cfg_.chunk_blocks + row];
          parity[row] ^= tag;
          if (!devs_[data_dev(c)]->failed())
            writes.push_back({data_dev(c), dev_off(row), tag});
        }
      if (!devs_[pdev]->failed())
        for (u64 row = 0; row < cfg_.chunk_blocks; ++row)
          writes.push_back({pdev, dev_off(row), parity[row]});
      rstats_.full_stripe_writes++;
    } else {
      // Rows needing a parity update.
      std::vector<char> row_touched(cfg_.chunk_blocks, 0);
      u64 written_cells = 0, untouched_in_rows = 0, rows = 0;
      for (u64 c = 0; c < cols; ++c)
        for (u64 row = 0; row < cfg_.chunk_blocks; ++row)
          if (written[c * cfg_.chunk_blocks + row]) {
            row_touched[row] = 1;
            ++written_cells;
          }
      for (u64 row = 0; row < cfg_.chunk_blocks; ++row)
        if (row_touched[row]) ++rows;
      for (u64 c = 0; c < cols; ++c)
        for (u64 row = 0; row < cfg_.chunk_blocks; ++row)
          if (row_touched[row] && !written[c * cfg_.chunk_blocks + row])
            ++untouched_in_rows;

      std::vector<u64> old_vals(stripe_data, 0);
      std::vector<u64> old_parity(cfg_.chunk_blocks, 0);
      const bool use_rmw = written_cells + rows <= untouched_in_rows;
      // Degraded reconstruct-write: the dead data column (if any) and
      // whether its untouched cells must be solved from the old parity.
      size_t dead_col = SIZE_MAX;
      bool solve_dead = false;

      if (use_rmw && !degraded) {
        for (u64 c = 0; c < cols; ++c)
          for (u64 row = 0; row < cfg_.chunk_blocks; ++row)
            if (written[c * cfg_.chunk_blocks + row])
              reads.push_back({data_dev(c), dev_off(row), 0,
                               &old_vals[c * cfg_.chunk_blocks + row]});
        for (u64 row = 0; row < cfg_.chunk_blocks; ++row)
          if (row_touched[row]) reads.push_back({pdev, dev_off(row), 0, &old_parity[row]});
        rstats_.rmw_writes++;
        strategy = "raid.rmw";
      } else {
        // Reconstruct-write (also the degraded fall-back: read what is
        // alive, recompute parity from scratch). A dead data cell left
        // untouched in a touched row holds a value only the old parity
        // remembers — it must be solved from parity + the other cells' old
        // values, never treated as zero (that would silently destroy it).
        size_t dead_members = 0;
        for (size_t d = 0; d < devs_.size(); ++d)
          if (devs_[d]->failed()) ++dead_members;
        for (u64 c = 0; c < cols; ++c)
          if (devs_[data_dev(c)]->failed()) dead_col = c;
        if (dead_col != SIZE_MAX)
          for (u64 row = 0; row < cfg_.chunk_blocks; ++row)
            if (row_touched[row] &&
                !written[dead_col * cfg_.chunk_blocks + row])
              solve_dead = true;
        // With a second member down the lost value is unrecoverable; an
        // explicit error beats quietly corrupting the stripe.
        if (solve_dead && dead_members > 1)
          return {now, ErrorCode::kDeviceFailed};
        for (u64 c = 0; c < cols; ++c)
          for (u64 row = 0; row < cfg_.chunk_blocks; ++row)
            if (row_touched[row] && !devs_[data_dev(c)]->failed() &&
                (solve_dead || !written[c * cfg_.chunk_blocks + row]))
              reads.push_back({data_dev(c), dev_off(row), 0,
                               &old_vals[c * cfg_.chunk_blocks + row]});
        if (solve_dead)
          for (u64 row = 0; row < cfg_.chunk_blocks; ++row)
            if (row_touched[row])
              reads.push_back({pdev, dev_off(row), 0, &old_parity[row]});
        rstats_.reconstruct_writes++;
        strategy = "raid.reconstruct_write";
      }

      sort_cells(reads);
      std::vector<u64> buf;
      ErrorCode err = ErrorCode::kOk;
      t_read = for_each_run(reads, now, [&](size_t dev, u64 off, size_t rcnt, size_t first) {
        buf.resize(rcnt);
        IoResult r = devs_[dev]->read(now, off, static_cast<u32>(rcnt),
                                      std::span<u64>(buf.data(), rcnt));
        if (!r.ok()) { err = r.error; return now; }
        for (size_t k = 0; k < rcnt; ++k) *reads[first + k].out = buf[k];
        stats_.read_ops++;
        stats_.read_blocks += rcnt;
        return r.done;
      });
      if (err != ErrorCode::kOk) return {now, err};

      for (u64 row = 0; row < cfg_.chunk_blocks; ++row) {
        if (!row_touched[row]) continue;
        if (use_rmw && !degraded) {
          u64 p = old_parity[row];
          for (u64 c = 0; c < cols; ++c) {
            const u64 idx = c * cfg_.chunk_blocks + row;
            if (written[idx]) p ^= old_vals[idx] ^ new_tag[idx];
          }
          parity[row] = p;
        } else {
          u64 p = 0;
          for (u64 c = 0; c < cols; ++c) {
            const u64 idx = c * cfg_.chunk_blocks + row;
            if (written[idx]) {
              p ^= new_tag[idx];
            } else if (c == dead_col && solve_dead) {
              // The dead cell's value = old parity ^ every other cell's old
              // value (all read above because solve_dead widened the reads).
              u64 v = old_parity[row];
              for (u64 c2 = 0; c2 < cols; ++c2)
                if (c2 != dead_col) v ^= old_vals[c2 * cfg_.chunk_blocks + row];
              p ^= v;
            } else {
              p ^= old_vals[idx];
            }
          }
          parity[row] = p;
        }
      }

      for (u64 c = 0; c < cols; ++c)
        for (u64 row = 0; row < cfg_.chunk_blocks; ++row) {
          const u64 idx = c * cfg_.chunk_blocks + row;
          if (written[idx] && !devs_[data_dev(c)]->failed())
            writes.push_back({data_dev(c), dev_off(row), new_tag[idx]});
        }
      if (!devs_[pdev]->failed())
        for (u64 row = 0; row < cfg_.chunk_blocks; ++row)
          if (row_touched[row]) writes.push_back({pdev, dev_off(row), parity[row]});
    }

    sort_cells(writes);
    std::vector<u64> wbuf;
    ErrorCode werr = ErrorCode::kOk;
    const SimTime t_write =
        for_each_run(writes, t_read, [&](size_t dev, u64 off, size_t wcnt, size_t first) {
          wbuf.resize(wcnt);
          for (size_t k = 0; k < wcnt; ++k) wbuf[k] = writes[first + k].tag;
          IoResult r = devs_[dev]->write(t_read, off, static_cast<u32>(wcnt),
                                         std::span<const u64>(wbuf.data(), wcnt));
          if (!r.ok()) { werr = r.error; return t_read; }
          stats_.write_ops++;
          stats_.write_blocks += wcnt;
          return r.done;
        });
    if (werr != ErrorCode::kOk) return {now, werr};
    if (span_ != nullptr && span_->sampling()) {
      const u32 ss = span_->begin_span(strategy, now);
      if (ss != obs::kNoSpan) span_->end_span(ss, t_write, cnt);
    }
    done = std::max(done, t_write);
    pos += cnt;
  }
  return {done, ErrorCode::kOk};
}

IoResult RaidDevice::write_payload(SimTime now, u64 lba, Payload payload) {
  const u32 n = std::max<u32>(
      1, static_cast<u32>(bytes_to_blocks(payload ? payload->size() : 1)));
  // The payload must land contiguously on one member (single chunk run).
  const Loc first = locate(lba);
  const Loc last = locate(lba + n - 1);
  if (first.dev != last.dev || last.off != first.off + n - 1) {
    return {now, ErrorCode::kInvalidArgument};
  }
  IoResult r = write(now, lba, n, {});  // timing + parity bookkeeping
  if (!r.ok()) return r;
  devs_[first.dev]->write_payload(r.done, first.off, payload);
  if (cfg_.level == RaidLevel::kRaid1 && first.mirror != SIZE_MAX &&
      !devs_[first.mirror]->failed()) {
    devs_[first.mirror]->write_payload(r.done, first.off, payload);
  }
  return r;
}

Result<Payload> RaidDevice::read_payload(SimTime now, u64 lba, SimTime* done) {
  const Loc loc = locate(lba);
  if (!devs_[loc.dev]->failed()) return devs_[loc.dev]->read_payload(now, loc.off, done);
  if (cfg_.level == RaidLevel::kRaid1 && loc.mirror != SIZE_MAX &&
      !devs_[loc.mirror]->failed()) {
    return devs_[loc.mirror]->read_payload(now, loc.off, done);
  }
  return Status(ErrorCode::kDeviceFailed);
}

IoResult RaidDevice::flush(SimTime now) {
  SimTime done = now;
  for (auto* d : devs_) {
    if (d->failed()) continue;
    IoResult r = d->flush(now);
    if (!r.ok()) return r;
    done = std::max(done, r.done);
  }
  stats_.flushes++;
  return {done, ErrorCode::kOk};
}

IoResult RaidDevice::trim(SimTime now, u64 lba, u64 n) {
  // Trim per member run; parity chunks of fully-trimmed stripes are trimmed
  // too (the cache layers only trim whole stripes / segment groups).
  std::vector<Cell> cells;
  for (u64 i = 0; i < n; ++i) {
    const Loc loc = locate(lba + i);
    if (!devs_[loc.dev]->failed()) cells.push_back({loc.dev, loc.off, 0});
    if (cfg_.level == RaidLevel::kRaid1 && loc.mirror != SIZE_MAX &&
        !devs_[loc.mirror]->failed())
      cells.push_back({loc.mirror, loc.off, 0});
  }
  if (cfg_.level == RaidLevel::kRaid4 || cfg_.level == RaidLevel::kRaid5) {
    const u64 stripe_data = data_cols() * cfg_.chunk_blocks;
    const u64 first_stripe = stripe_of(lba);
    const u64 last_stripe = stripe_of(lba + n - 1);
    for (u64 s = first_stripe; s <= last_stripe; ++s) {
      const u64 s_begin = s * stripe_data;
      if (lba <= s_begin && lba + n >= s_begin + stripe_data) {
        const size_t pdev = parity_dev(s);
        if (!devs_[pdev]->failed())
          for (u64 row = 0; row < cfg_.chunk_blocks; ++row)
            cells.push_back({pdev, s * cfg_.chunk_blocks + row, 0});
      }
    }
  }
  sort_cells(cells);
  SimTime done = for_each_run(cells, now, [&](size_t dev, u64 off, size_t cnt, size_t) {
    IoResult r = devs_[dev]->trim(now, off, cnt);
    return r.ok() ? r.done : now;
  });
  stats_.trim_ops++;
  stats_.trim_blocks += n;
  return {done, ErrorCode::kOk};
}

IoResult RaidDevice::rebuild(SimTime now, size_t dev) {
  if (dev >= devs_.size()) return {now, ErrorCode::kInvalidArgument};
  if (devs_[dev]->failed()) return {now, ErrorCode::kDeviceFailed};
  if (cfg_.level == RaidLevel::kRaid0) return {now, ErrorCode::kUnrecoverable};
  SimTime done = now;
  if (cfg_.level == RaidLevel::kRaid1) {
    const size_t partner = dev ^ 1;
    if (devs_[partner]->failed()) return {now, ErrorCode::kUnrecoverable};
    std::vector<u64> buf(cfg_.chunk_blocks);
    for (u64 off = 0; off < dev_blocks_; off += cfg_.chunk_blocks) {
      IoResult r = devs_[partner]->read(now, off, cfg_.chunk_blocks,
                                        std::span<u64>(buf.data(), buf.size()));
      if (!r.ok()) return r;
      IoResult w = devs_[dev]->write(r.done, off, cfg_.chunk_blocks,
                                     std::span<const u64>(buf.data(), buf.size()));
      if (!w.ok()) return w;
      done = std::max(done, w.done);
    }
    return {done, ErrorCode::kOk};
  }
  // Parity levels: each block is the XOR of the rest of its row.
  for (u64 off = 0; off < dev_blocks_; ++off) {
    u64 acc = 0;
    SimTime t = now;
    for (size_t d = 0; d < devs_.size(); ++d) {
      if (d == dev) continue;
      if (devs_[d]->failed()) return {now, ErrorCode::kUnrecoverable};
      u64 tag = 0;
      IoResult r = devs_[d]->read(now, off, 1, std::span<u64>(&tag, 1));
      if (!r.ok()) return r;
      acc ^= tag;
      t = std::max(t, r.done);
    }
    IoResult w = devs_[dev]->write(t, off, 1, std::span<const u64>(&acc, 1));
    if (!w.ok()) return w;
    done = std::max(done, w.done);
  }
  return {done, ErrorCode::kOk};
}

bool RaidDevice::verify_parity(u64 lba) {
  if (cfg_.level != RaidLevel::kRaid4 && cfg_.level != RaidLevel::kRaid5) return true;
  const u64 stripe = stripe_of(lba);
  const size_t pdev = parity_dev(stripe);
  for (u64 row = 0; row < cfg_.chunk_blocks; ++row) {
    const u64 off = stripe * cfg_.chunk_blocks + row;
    u64 acc = 0;
    for (size_t d = 0; d < devs_.size(); ++d) {
      u64 tag = 0;
      devs_[d]->read(0, off, 1, std::span<u64>(&tag, 1));
      if (d != pdev) acc ^= tag; else acc ^= 0;
    }
    u64 ptag = 0;
    devs_[pdev]->read(0, off, 1, std::span<u64>(&ptag, 1));
    if (acc != ptag) return false;
  }
  return true;
}

}  // namespace srcache::raid
