// RebuildManager: online hot-spare rebuild under full traffic.
//
// The paper puts RAID-4/5 under the SSD cache so a commodity-drive failure
// does not lose dirty cached data (§3.2); this engine pays the recovery
// bill the paper's degraded-mode argument implies. On a device fail-stop it
// starts the degraded clock; when a `replace` fault action installs a blank
// device it consumes a hot spare and drives stripe-by-stripe background
// reconstruction (parity/mirror decode -> spare write), rate-limited by
// REPRO_REBUILD_MBPS and paced by pump() calls the closed loop makes per
// measured op and the engine makes at epoch barriers. pump(now) is monotone
// and idempotent in `now` (budget = rate x elapsed, copy until caught up),
// so double-pumping never changes the outcome and the result stays
// bit-identical across REPRO_SHARDS/REPRO_THREADS.
//
// SRC-awareness: the cache exports its live-segment map as RebuildExtents
// (set_extent_source), so only live stripes are reconstructed and trimmed/
// invalid ones are skipped — the same trick that makes Sel-GC cheap. Plain
// baselines fall back to a full device sweep (full_sweep_source).
//
// The vulnerability window is tracked end to end: degraded duration,
// blocks-at-risk (unprotected until re-parityed), and the second-failure-
// during-rebuild path. A second failure kills every pending extent whose
// reconstruction needs the newly failed device; those blocks move to the
// permanent `dead` mask (a blank device must never serve them — that would
// be silent corruption), are reported through the abort callback so the
// cache can drop and count them, and leave the original fail-stop's ledger
// record detected-but-unrepaired: detected-unrepairable, never silent.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "block/block_device.hpp"
#include "fault/ledger.hpp"
#include "obs/provenance.hpp"
#include "obs/span.hpp"
#include "raid/raid_device.hpp"
#include "sim/time.hpp"

namespace srcache::raid {

// How one extent of the replaced device is reconstructed.
enum class RebuildHow : u8 {
  kParityXor,  // XOR of every other device's block in the row
  kMirror,     // copy from the surviving mirror (`partner`)
  kMetadata,   // rewritten from in-RAM state (`payload`); needs no survivor
};

// A run of device blocks [block, block + count) on the replaced device.
struct RebuildExtent {
  u64 block = 0;
  u64 count = 0;
  RebuildHow how = RebuildHow::kParityXor;
  size_t partner = SIZE_MAX;  // kMirror: surviving mirror device index
  blockdev::Payload payload;  // kMetadata: bytes to write back
};

struct RebuildConfig {
  double mbps = 256.0;   // background copy rate limit (REPRO_REBUILD_MBPS)
  u32 spares = 1;        // initial hot-spare pool (REPRO_REBUILD_SPARES)
  u32 batch_blocks = 64; // blocks decoded per copy batch
};

// What lands in the REPRO_JSON "rebuild" block. Exact integers only, so
// shard-domain outcomes merge deterministically: counters and bytes sum;
// blocks_at_risk_peak sums (the fleet-level exposure is the sum of each
// domain's peak — domains fail simultaneously under the same plan);
// degraded_ns takes the max (domains degrade in parallel virtual time).
struct RebuildOutcome {
  bool active = false;        // a RebuildManager was attached to the run
  u32 rebuilds_started = 0;
  u32 rebuilds_completed = 0; // finished with every extent reconstructed
  u32 rebuilds_aborted = 0;   // finished after losing extents (second fault)
  u32 spares_total = 0;
  u32 spares_used = 0;        // > spares_total means a spare deficit
  u64 blocks_at_risk_peak = 0;
  u64 blocks_copied = 0;
  u64 blocks_skipped = 0;     // SRC-aware savings vs a full device sweep
  u64 blocks_unrecovered = 0; // lost to a second failure during rebuild
  u64 read_bytes = 0;         // survivor reads for reconstruction
  u64 write_bytes = 0;        // writes to the replacement device
  sim::SimTime degraded_ns = 0;

  void merge_add(const RebuildOutcome& o);
};

class RebuildManager final : public blockdev::RebuildMask {
 public:
  // Enumerates the extents a replaced device must be rebuilt from, in copy
  // order (ascending device block). SrcCache::rebuild_extents is the
  // SRC-aware source; full_sweep_source the baseline fallback.
  using ExtentSource = std::function<std::vector<RebuildExtent>(size_t dev)>;
  // Invoked when a second failure makes pending extents unreconstructable;
  // the extents passed are the lost (still-uncopied) ranges.
  using AbortCallback =
      std::function<void(size_t dev, const std::vector<RebuildExtent>& lost)>;

  RebuildManager(const RebuildConfig& cfg,
                 std::vector<blockdev::BlockDevice*> ssds);

  void set_extent_source(ExtentSource src) { source_ = std::move(src); }
  void set_abort_callback(AbortCallback cb) { on_abort_ = std::move(cb); }
  // Rebuild writes to the spare are ledgered as rebuild_copy under the
  // shared tenant, keeping the per-device provenance balance exact.
  void set_provenance(obs::ProvenanceLedger* ledger) { prov_ = ledger; }
  void set_fault_ledger(fault::FaultLedger* ledger) { ledger_ = ledger; }
  void set_span(obs::SpanTracer* tracer) { span_ = tracer; }

  void add_spares(u32 n) { spares_total_ += n; }

  // Failure/replace notifications (wire to FaultInjector's callbacks).
  void on_device_failed(size_t dev, sim::SimTime now);
  void on_device_replaced(size_t dev, sim::SimTime now);

  // Copies until the rate budget at `now` is exhausted or nothing is left.
  void pump(sim::SimTime now);

  // Fresh data was just written (or the range trimmed) at device blocks
  // [block, block + count) on every device: those blocks no longer need
  // reconstruction on any rebuilding device, and previously-lost blocks
  // there hold valid new content again. SrcCache calls this on segment
  // seals and SG trims so the rebuilder never overwrites live stripes with
  // stale decodes.
  void discard(u64 block, u64 count);

  // Closes the degraded window at the end of the measurement window (a
  // second failure can leave the array degraded with no rebuild running).
  void finalize(sim::SimTime now);

  [[nodiscard]] bool rebuilding() const;
  // Blocks still unprotected: pending (uncopied) extents across all devices.
  [[nodiscard]] u64 blocks_at_risk() const;

  // blockdev::RebuildMask: true while `block` of `dev` must not be read
  // from the device itself (still blank, or lost forever).
  [[nodiscard]] bool covers(size_t dev, u64 block) const override;

  [[nodiscard]] RebuildOutcome outcome() const;

 private:
  // Disjoint interval set over device blocks: map from start to end.
  using Intervals = std::map<u64, u64>;
  static void insert(Intervals& set, u64 begin, u64 end);
  static void remove(Intervals& set, u64 begin, u64 end);
  [[nodiscard]] static bool contains(const Intervals& set, u64 block);
  [[nodiscard]] static u64 total(const Intervals& set);

  struct DeviceState {
    bool down = false;        // failed, no replacement installed yet
    bool rebuilding = false;
    bool lost_any = false;    // this rebuild lost extents to a second fault
    std::deque<RebuildExtent> queue;  // uncopied extents, copy order
    u64 cursor = 0;           // blocks already copied within queue.front()
    Intervals pending;        // uncopied mask
    Intervals dead;           // unrecoverable mask; covered forever
  };

  // Copies one batch from devs_[dev].queue.front(); returns blocks copied.
  u64 copy_batch(size_t dev, sim::SimTime now, u64 budget);
  void finish_device(size_t dev, sim::SimTime now);
  // Drops every pending extent of rebuilding device `dev` that needs the
  // newly failed device `lost_dev` for reconstruction.
  void abort_dependent(size_t dev, size_t lost_dev);
  void maybe_stop_clock(sim::SimTime now);
  [[nodiscard]] std::vector<RebuildExtent> extents_for(size_t dev) const;

  RebuildConfig cfg_;
  std::vector<blockdev::BlockDevice*> ssds_;
  std::vector<DeviceState> devs_;
  ExtentSource source_;
  AbortCallback on_abort_;
  obs::ProvenanceLedger* prov_ = nullptr;
  fault::FaultLedger* ledger_ = nullptr;
  obs::SpanTracer* span_ = nullptr;

  u32 spares_total_ = 0;
  sim::SimTime rate_epoch_ = 0;   // rate-limit clock start (first replace)
  u64 budget_spent_bytes_ = 0;
  sim::SimTime degraded_since_ = -1;  // < 0: array healthy
  RebuildOutcome out_;
};

// Baseline fallback extent source: rebuild every device block. RAID-1
// copies from the RaidDevice pair partner (dev ^ 1); parity levels XOR the
// row; RAID-0 has no redundancy, so the sweep is empty (the device stays
// masked dead-free but unrecovered — RAID-0 accepts loss by design).
RebuildManager::ExtentSource full_sweep_source(RaidLevel level,
                                               u64 dev_blocks);

}  // namespace srcache::raid
