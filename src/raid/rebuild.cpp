#include "raid/rebuild.hpp"

#include <algorithm>

namespace srcache::raid {

void RebuildOutcome::merge_add(const RebuildOutcome& o) {
  active = active || o.active;
  rebuilds_started += o.rebuilds_started;
  rebuilds_completed += o.rebuilds_completed;
  rebuilds_aborted += o.rebuilds_aborted;
  spares_total += o.spares_total;
  spares_used += o.spares_used;
  blocks_at_risk_peak += o.blocks_at_risk_peak;
  blocks_copied += o.blocks_copied;
  blocks_skipped += o.blocks_skipped;
  blocks_unrecovered += o.blocks_unrecovered;
  read_bytes += o.read_bytes;
  write_bytes += o.write_bytes;
  degraded_ns = std::max(degraded_ns, o.degraded_ns);
}

RebuildManager::RebuildManager(const RebuildConfig& cfg,
                               std::vector<blockdev::BlockDevice*> ssds)
    : cfg_(cfg), ssds_(std::move(ssds)), devs_(ssds_.size()),
      spares_total_(cfg.spares) {}

// --- interval set -----------------------------------------------------------

void RebuildManager::insert(Intervals& set, u64 begin, u64 end) {
  if (begin >= end) return;
  auto it = set.upper_bound(begin);
  if (it != set.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {
      begin = prev->first;
      end = std::max(end, prev->second);
      it = set.erase(prev);
    }
  }
  while (it != set.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = set.erase(it);
  }
  set[begin] = end;
}

void RebuildManager::remove(Intervals& set, u64 begin, u64 end) {
  if (begin >= end || set.empty()) return;
  auto it = set.upper_bound(begin);
  if (it != set.begin()) --it;
  while (it != set.end() && it->first < end) {
    const u64 s = it->first;
    const u64 e = it->second;
    if (e <= begin) {
      ++it;
      continue;
    }
    it = set.erase(it);
    if (s < begin) set[s] = begin;
    if (e > end) {
      set[end] = e;
      break;
    }
  }
}

bool RebuildManager::contains(const Intervals& set, u64 block) {
  auto it = set.upper_bound(block);
  if (it == set.begin()) return false;
  return std::prev(it)->second > block;
}

u64 RebuildManager::total(const Intervals& set) {
  u64 t = 0;
  for (const auto& [b, e] : set) t += e - b;
  return t;
}

// --- event handlers ---------------------------------------------------------

std::vector<RebuildExtent> RebuildManager::extents_for(size_t dev) const {
  if (source_) return source_(dev);
  // No source wired: full parity sweep of the whole device.
  std::vector<RebuildExtent> ext;
  const u64 blocks = ssds_[dev]->capacity_blocks();
  if (blocks > 0)
    ext.push_back({0, blocks, RebuildHow::kParityXor, SIZE_MAX, nullptr});
  return ext;
}

void RebuildManager::on_device_failed(size_t dev, sim::SimTime now) {
  if (dev >= devs_.size()) return;
  out_.active = true;
  devs_[dev].down = true;
  if (degraded_since_ < 0) degraded_since_ = now;
  // Everything live on the failed device is unprotected from this moment.
  u64 risk = 0;
  for (const RebuildExtent& ex : extents_for(dev)) risk += ex.count;
  out_.blocks_at_risk_peak =
      std::max(out_.blocks_at_risk_peak, risk + blocks_at_risk());
  // Second failure while another device rebuilds: every pending extent
  // whose reconstruction needs `dev` is lost for good.
  for (size_t a = 0; a < devs_.size(); ++a) {
    if (a == dev || !devs_[a].rebuilding) continue;
    abort_dependent(a, dev);
    if (devs_[a].queue.empty()) finish_device(a, now);
  }
}

void RebuildManager::abort_dependent(size_t dev, size_t lost_dev) {
  DeviceState& st = devs_[dev];
  std::vector<RebuildExtent> lost;
  std::deque<RebuildExtent> keep;
  bool front = true;
  for (const RebuildExtent& ex : st.queue) {
    // Only the uncopied remainder of the front extent is still at stake.
    const u64 done = front ? st.cursor : 0;
    front = false;
    const bool needs =
        ex.how == RebuildHow::kParityXor ||
        (ex.how == RebuildHow::kMirror && ex.partner == lost_dev);
    if (!needs) {
      RebuildExtent k = ex;
      k.block += done;
      k.count -= done;
      if (k.count > 0) keep.push_back(k);
      continue;
    }
    const u64 b = ex.block + done;
    const u64 end = ex.block + ex.count;
    if (b >= end) continue;
    // Only still-pending ranges are lost; discarded holes were overwritten
    // with fresh content that needs no reconstruction.
    u64 n = 0;
    auto pit = st.pending.upper_bound(b);
    if (pit != st.pending.begin()) --pit;
    while (pit != st.pending.end() && pit->first < end) {
      const u64 s = std::max(pit->first, b);
      const u64 e = std::min(pit->second, end);
      ++pit;
      if (s >= e) continue;
      insert(st.dead, s, e);
      lost.push_back({s, e - s, ex.how, ex.partner, nullptr});
      n += e - s;
    }
    remove(st.pending, b, end);
    out_.blocks_unrecovered += n;
    if (n > 0) st.lost_any = true;
  }
  st.queue = std::move(keep);
  st.cursor = 0;
  if (!lost.empty() && on_abort_) on_abort_(dev, lost);
}

void RebuildManager::on_device_replaced(size_t dev, sim::SimTime now) {
  if (dev >= devs_.size()) return;
  out_.active = true;
  DeviceState& st = devs_[dev];
  st.down = false;
  // A replace without a preceding fail still installs a *blank* device: the
  // degraded clock runs until its contents are reconstructed.
  if (degraded_since_ < 0) degraded_since_ = now;
  out_.spares_used++;  // > spares_total_ reports a spare-pool deficit
  if (!rebuilding()) {
    rate_epoch_ = now;
    budget_spent_bytes_ = 0;
  }
  st.queue.clear();
  st.cursor = 0;
  st.lost_any = false;
  st.pending.clear();  // dead ranges survive a re-replace: content is gone
  u64 live = 0;
  for (const RebuildExtent& ex : extents_for(dev)) {
    if (ex.count == 0) continue;
    st.queue.push_back(ex);
    insert(st.pending, ex.block, ex.block + ex.count);
    live += ex.count;
  }
  const u64 sweep = ssds_[dev]->capacity_blocks();
  out_.blocks_skipped += sweep > live ? sweep - live : 0;
  out_.blocks_at_risk_peak =
      std::max(out_.blocks_at_risk_peak, blocks_at_risk());
  st.rebuilding = true;
  out_.rebuilds_started++;
  if (st.queue.empty()) finish_device(dev, now);
}

// --- the copy loop ----------------------------------------------------------

void RebuildManager::pump(sim::SimTime now) {
  if (!rebuilding() || now <= rate_epoch_) return;
  const u64 budget = static_cast<u64>(
      static_cast<double>(now - rate_epoch_) * cfg_.mbps / 1000.0);
  if (budget_spent_bytes_ >= budget) return;
  const bool sampled = span_ != nullptr && span_->begin_op("raid.rebuild", now);
  u64 copied = 0;
  for (size_t dev = 0; dev < devs_.size(); ++dev) {
    DeviceState& st = devs_[dev];
    if (!st.rebuilding) continue;
    while (budget_spent_bytes_ < budget && !st.queue.empty())
      copied += copy_batch(dev, now, budget);
    if (st.queue.empty()) finish_device(dev, now);
    if (budget_spent_bytes_ >= budget) break;
  }
  if (sampled) span_->end_op(now, copied);
}

void RebuildManager::discard(u64 block, u64 count) {
  if (count == 0) return;
  for (DeviceState& st : devs_) {
    if (st.pending.empty() && st.dead.empty()) continue;
    const u64 before = total(st.pending);
    remove(st.pending, block, block + count);
    out_.blocks_skipped += before - total(st.pending);
    // Overwritten blocks hold valid new content: no longer lost.
    remove(st.dead, block, block + count);
  }
}

u64 RebuildManager::copy_batch(size_t dev, sim::SimTime now, u64 budget) {
  DeviceState& st = devs_[dev];
  const RebuildExtent& ex = st.queue.front();
  blockdev::BlockDevice* target = ssds_[dev];

  if (ex.how == RebuildHow::kMetadata) {
    if (!contains(st.pending, ex.block)) {
      // Rewritten by a fresh segment seal since the snapshot.
      st.cursor = 0;
      st.queue.pop_front();
      return 0;
    }
    // Rewritten from in-RAM state; one payload write, no survivor reads.
    target->set_background(true);
    target->write_payload(now, ex.block, ex.payload);
    target->set_background(false);
    remove(st.pending, ex.block, ex.block + ex.count);
    // Devices round payload writes up to whole blocks; mirror that rounding
    // so the provenance ledger stays balanced against write_blocks.
    const u64 psize = ex.payload ? ex.payload->size() : 1;
    const u64 pblocks = std::max<u64>(1, (psize + kBlockSize - 1) / kBlockSize);
    const u64 bytes = pblocks * kBlockSize;
    out_.blocks_copied += ex.count;
    out_.write_bytes += bytes;
    budget_spent_bytes_ += bytes;
    if (prov_ != nullptr) {
      prov_->add(static_cast<u32>(dev), obs::kSharedTenant,
                 obs::WriteCause::kRebuildCopy, bytes);
    }
    const u64 n = ex.count;
    st.cursor = 0;
    st.queue.pop_front();
    return n;
  }

  // Fast-forward past blocks discarded since the snapshot (overwritten by
  // fresh seals or trimmed with their SG): only still-pending blocks need
  // reconstruction, and the copy run must not straddle a discarded hole.
  const u64 ex_end = ex.block + ex.count;
  u64 b0 = ex.block + st.cursor;
  u64 run_end = 0;
  auto pit = st.pending.upper_bound(b0);
  if (pit != st.pending.begin() && std::prev(pit)->second > b0) {
    run_end = std::prev(pit)->second;
  } else if (pit != st.pending.end() && pit->first < ex_end) {
    b0 = pit->first;
    run_end = pit->second;
  } else {
    st.cursor = 0;
    st.queue.pop_front();
    return 0;
  }
  st.cursor = b0 - ex.block;
  run_end = std::min(run_end, ex_end);

  const u64 budget_blocks = std::max<u64>(
      1, (budget - budget_spent_bytes_ + kBlockSize - 1) / kBlockSize);
  const u64 m = std::min(
      {static_cast<u64>(cfg_.batch_blocks), run_end - b0, budget_blocks});
  std::vector<u64> acc(m, 0);
  bool read_ok = true;
  if (ex.how == RebuildHow::kMirror) {
    blockdev::BlockDevice* partner = ssds_[ex.partner];
    partner->set_background(true);
    read_ok = partner->read(now, b0, static_cast<u32>(m), acc).ok();
    partner->set_background(false);
    out_.read_bytes += m * kBlockSize;
  } else {
    std::vector<u64> row(m, 0);
    for (size_t d = 0; d < ssds_.size() && read_ok; ++d) {
      if (d == dev) continue;
      ssds_[d]->set_background(true);
      read_ok = ssds_[d]->read(now, b0, static_cast<u32>(m), row).ok();
      ssds_[d]->set_background(false);
      out_.read_bytes += m * kBlockSize;
      for (u64 i = 0; i < m; ++i) acc[i] ^= row[i];
    }
  }
  if (!read_ok) {
    // A survivor died mid-batch (should have been caught by
    // on_device_failed; defensive): the still-pending rest of this extent
    // is lost. Discarded holes hold fresh content and stay alive.
    std::vector<RebuildExtent> lost;
    u64 n = 0;
    auto lit = st.pending.upper_bound(b0);
    if (lit != st.pending.begin()) --lit;
    while (lit != st.pending.end() && lit->first < ex_end) {
      const u64 s = std::max(lit->first, b0);
      const u64 e = std::min(lit->second, ex_end);
      ++lit;
      if (s >= e) continue;
      insert(st.dead, s, e);
      lost.push_back({s, e - s, ex.how, ex.partner, nullptr});
      n += e - s;
    }
    remove(st.pending, b0, ex_end);
    out_.blocks_unrecovered += n;
    if (n > 0) st.lost_any = true;
    if (!lost.empty() && on_abort_) on_abort_(dev, lost);
    st.cursor = 0;
    st.queue.pop_front();
    return 0;
  }
  target->set_background(true);
  target->write(now, b0, static_cast<u32>(m), acc);
  target->set_background(false);
  remove(st.pending, b0, b0 + m);
  st.cursor += m;
  const u64 bytes = m * kBlockSize;
  out_.blocks_copied += m;
  out_.write_bytes += bytes;
  budget_spent_bytes_ += bytes;
  if (prov_ != nullptr) {
    prov_->add(static_cast<u32>(dev), obs::kSharedTenant,
               obs::WriteCause::kRebuildCopy, bytes);
  }
  if (st.cursor == ex.count) {
    st.cursor = 0;
    st.queue.pop_front();
  }
  return m;
}

void RebuildManager::finish_device(size_t dev, sim::SimTime now) {
  DeviceState& st = devs_[dev];
  if (!st.rebuilding) return;
  st.rebuilding = false;
  st.cursor = 0;
  if (st.lost_any) {
    // The original fail-stop's ledger record stays detected-but-unrepaired:
    // detected-unrepairable is the honest verdict after a double fault.
    out_.rebuilds_aborted++;
  } else {
    out_.rebuilds_completed++;
    if (ledger_ != nullptr)
      ledger_->record_repaired_by_rebuild(static_cast<int>(dev));
  }
  maybe_stop_clock(now);
}

void RebuildManager::maybe_stop_clock(sim::SimTime now) {
  if (degraded_since_ < 0) return;
  for (const DeviceState& st : devs_)
    if (st.down || st.rebuilding) return;
  if (now > degraded_since_) out_.degraded_ns += now - degraded_since_;
  degraded_since_ = -1;
}

void RebuildManager::finalize(sim::SimTime now) {
  if (degraded_since_ >= 0 && now > degraded_since_) {
    out_.degraded_ns += now - degraded_since_;
    degraded_since_ = now;  // never double-count if finalize runs again
  }
}

// --- accessors --------------------------------------------------------------

bool RebuildManager::rebuilding() const {
  for (const DeviceState& st : devs_)
    if (st.rebuilding) return true;
  return false;
}

u64 RebuildManager::blocks_at_risk() const {
  u64 t = 0;
  for (const DeviceState& st : devs_) t += total(st.pending);
  return t;
}

bool RebuildManager::covers(size_t dev, u64 block) const {
  if (dev >= devs_.size()) return false;
  const DeviceState& st = devs_[dev];
  if (st.pending.empty() && st.dead.empty()) return false;
  return contains(st.pending, block) || contains(st.dead, block);
}

RebuildOutcome RebuildManager::outcome() const {
  RebuildOutcome o = out_;
  o.active = true;
  o.spares_total = spares_total_;
  return o;
}

RebuildManager::ExtentSource full_sweep_source(RaidLevel level,
                                               u64 dev_blocks) {
  return [level, dev_blocks](size_t dev) {
    std::vector<RebuildExtent> ext;
    switch (level) {
      case RaidLevel::kRaid0:
        break;  // no redundancy: nothing can be reconstructed
      case RaidLevel::kRaid1:
        ext.push_back(
            {0, dev_blocks, RebuildHow::kMirror, dev ^ 1, nullptr});
        break;
      case RaidLevel::kRaid4:
      case RaidLevel::kRaid5:
        ext.push_back(
            {0, dev_blocks, RebuildHow::kParityXor, SIZE_MAX, nullptr});
        break;
    }
    return ext;
  };
}

}  // namespace srcache::raid
