// Software RAID over block devices — the layer the paper puts *under*
// Bcache/Flashcache to build Bcache5/Flashcache5 (§3.2, §5.4), and the
// RAID-10 organisation of the HDD primary storage (Table 1).
//
// RAID-4/5 exhibit the small-write problem: a sub-stripe write needs a
// read-modify-write (read old data + old parity, write new data + new
// parity) or a reconstruct-write (read the untouched blocks, write data +
// parity); the device picks whichever needs fewer reads. Full-stripe writes
// need neither. SRC's log-structured stripe formation exists precisely to
// turn every cache write into the full-stripe case.
#pragma once

#include <vector>

#include "block/block_device.hpp"
#include "obs/span.hpp"

namespace srcache::raid {

using blockdev::BlockDevice;
using blockdev::DeviceStats;
using blockdev::IoResult;
using blockdev::Payload;
using sim::SimTime;

enum class RaidLevel { kRaid0, kRaid1, kRaid4, kRaid5 };

const char* to_string(RaidLevel level);

struct RaidConfig {
  RaidLevel level = RaidLevel::kRaid5;
  u32 chunk_blocks = 1;  // 4 KiB chunks: the paper's Bcache5/Flashcache5 setup
};

// Extra accounting on top of per-device stats.
struct RaidStats {
  u64 full_stripe_writes = 0;
  u64 rmw_writes = 0;          // read-modify-write parity updates
  u64 reconstruct_writes = 0;  // reconstruct-write parity updates
  u64 degraded_reads = 0;
};

class RaidDevice final : public BlockDevice {
 public:
  // Devices are borrowed; all must have equal capacity. RAID-1 requires an
  // even device count and stripes across mirrored pairs (RAID-10 style, the
  // capacity/2 organisation the paper describes).
  RaidDevice(const RaidConfig& cfg, std::vector<BlockDevice*> devices);

  [[nodiscard]] u64 capacity_blocks() const override { return capacity_blocks_; }
  [[nodiscard]] const RaidConfig& config() const { return cfg_; }
  [[nodiscard]] const RaidStats& raid_stats() const { return rstats_; }

  IoResult read(SimTime now, u64 lba, u32 n, std::span<u64> tags_out) override;
  IoResult write(SimTime now, u64 lba, u32 n, std::span<const u64> tags) override;
  IoResult write_payload(SimTime now, u64 lba, Payload payload) override;
  Result<Payload> read_payload(SimTime now, u64 lba, SimTime* done) override;
  IoResult flush(SimTime now) override;
  IoResult trim(SimTime now, u64 lba, u64 n) override;

  [[nodiscard]] const DeviceStats& stats() const override { return stats_; }

  void set_background(bool background) override {
    for (auto* d : devs_) d->set_background(background);
  }

  // Fault injection: RAID itself never "fails"; fail member devices instead.
  void fail() override {}
  void heal() override {}
  [[nodiscard]] bool failed() const override;
  void corrupt(u64 lba) override;

  // Rebuilds the (healed) replacement device `dev` from the survivors.
  // Returns completion time; error if redundancy is insufficient.
  IoResult rebuild(SimTime now, size_t dev);

  // Testing hook: true if every parity block of the stripe containing
  // `lba` equals the XOR of its data blocks (content-tracking devices only).
  [[nodiscard]] bool verify_parity(u64 lba);

  // Number of member-device failures this level can currently tolerate.
  [[nodiscard]] int redundancy() const;

  // Attaches an op-span tracer (nullptr detaches). Sampled ops contribute
  // "raid.read"/"raid.write" spans with per-stripe children naming the
  // parity-update strategy (full-stripe, RMW, reconstruct-write) and a
  // "raid.reconstruct" child on degraded reads.
  void set_span(obs::SpanTracer* tracer) { span_ = tracer; }

 private:
  struct Loc {
    size_t dev;
    u64 off;     // block offset on the device
    size_t mirror = SIZE_MAX;  // RAID-1 partner
  };

  [[nodiscard]] Loc locate(u64 lba) const;
  [[nodiscard]] size_t parity_dev(u64 stripe) const;
  [[nodiscard]] u64 stripe_of(u64 lba) const;
  [[nodiscard]] u64 data_cols() const;

  IoResult read_parity_level(SimTime now, u64 lba, u32 n, std::span<u64> tags_out);
  IoResult write_parity_level(SimTime now, u64 lba, u32 n, std::span<const u64> tags);
  // Reconstructs one block of a failed device from the rest of its row.
  Result<u64> reconstruct_block(SimTime now, size_t dead_dev, u64 off, SimTime* done);

  RaidConfig cfg_;
  std::vector<BlockDevice*> devs_;
  u64 capacity_blocks_ = 0;
  u64 dev_blocks_ = 0;
  DeviceStats stats_;
  RaidStats rstats_;
  u32 mirror_rr_ = 0;
  obs::SpanTracer* span_ = nullptr;
};

}  // namespace srcache::raid
