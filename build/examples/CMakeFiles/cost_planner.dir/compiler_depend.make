# Empty compiler generated dependencies file for cost_planner.
# This may be replaced when dependencies are built.
