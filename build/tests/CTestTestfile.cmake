# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/block_test[1]_include.cmake")
include("/root/repo/build/tests/ftl_test[1]_include.cmake")
include("/root/repo/build/tests/sim_ssd_test[1]_include.cmake")
include("/root/repo/build/tests/hdd_test[1]_include.cmake")
include("/root/repo/build/tests/raid_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/src_basic_test[1]_include.cmake")
include("/root/repo/build/tests/src_gc_test[1]_include.cmake")
include("/root/repo/build/tests/src_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/src_failure_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/trace_file_test[1]_include.cmake")
