file(REMOVE_RECURSE
  "CMakeFiles/src_failure_test.dir/src_failure_test.cpp.o"
  "CMakeFiles/src_failure_test.dir/src_failure_test.cpp.o.d"
  "src_failure_test"
  "src_failure_test.pdb"
  "src_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/src_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
