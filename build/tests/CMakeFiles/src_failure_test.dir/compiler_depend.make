# Empty compiler generated dependencies file for src_failure_test.
# This may be replaced when dependencies are built.
