file(REMOVE_RECURSE
  "CMakeFiles/src_basic_test.dir/src_basic_test.cpp.o"
  "CMakeFiles/src_basic_test.dir/src_basic_test.cpp.o.d"
  "src_basic_test"
  "src_basic_test.pdb"
  "src_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/src_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
