# Empty compiler generated dependencies file for src_basic_test.
# This may be replaced when dependencies are built.
