# Empty dependencies file for hdd_test.
# This may be replaced when dependencies are built.
