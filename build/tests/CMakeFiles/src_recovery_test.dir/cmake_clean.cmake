file(REMOVE_RECURSE
  "CMakeFiles/src_recovery_test.dir/src_recovery_test.cpp.o"
  "CMakeFiles/src_recovery_test.dir/src_recovery_test.cpp.o.d"
  "src_recovery_test"
  "src_recovery_test.pdb"
  "src_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/src_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
