# Empty compiler generated dependencies file for src_recovery_test.
# This may be replaced when dependencies are built.
