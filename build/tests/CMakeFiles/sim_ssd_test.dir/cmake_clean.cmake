file(REMOVE_RECURSE
  "CMakeFiles/sim_ssd_test.dir/sim_ssd_test.cpp.o"
  "CMakeFiles/sim_ssd_test.dir/sim_ssd_test.cpp.o.d"
  "sim_ssd_test"
  "sim_ssd_test.pdb"
  "sim_ssd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_ssd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
