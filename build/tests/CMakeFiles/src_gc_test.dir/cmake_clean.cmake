file(REMOVE_RECURSE
  "CMakeFiles/src_gc_test.dir/src_gc_test.cpp.o"
  "CMakeFiles/src_gc_test.dir/src_gc_test.cpp.o.d"
  "src_gc_test"
  "src_gc_test.pdb"
  "src_gc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/src_gc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
