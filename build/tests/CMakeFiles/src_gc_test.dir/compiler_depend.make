# Empty compiler generated dependencies file for src_gc_test.
# This may be replaced when dependencies are built.
