# Empty dependencies file for srcache_common.
# This may be replaced when dependencies are built.
