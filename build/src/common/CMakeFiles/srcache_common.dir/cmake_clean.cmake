file(REMOVE_RECURSE
  "CMakeFiles/srcache_common.dir/crc32c.cpp.o"
  "CMakeFiles/srcache_common.dir/crc32c.cpp.o.d"
  "CMakeFiles/srcache_common.dir/histogram.cpp.o"
  "CMakeFiles/srcache_common.dir/histogram.cpp.o.d"
  "CMakeFiles/srcache_common.dir/table.cpp.o"
  "CMakeFiles/srcache_common.dir/table.cpp.o.d"
  "libsrcache_common.a"
  "libsrcache_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srcache_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
