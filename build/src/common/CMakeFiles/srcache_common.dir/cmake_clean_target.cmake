file(REMOVE_RECURSE
  "libsrcache_common.a"
)
