file(REMOVE_RECURSE
  "libsrcache_hdd.a"
)
