# Empty compiler generated dependencies file for srcache_hdd.
# This may be replaced when dependencies are built.
