file(REMOVE_RECURSE
  "CMakeFiles/srcache_hdd.dir/iscsi_target.cpp.o"
  "CMakeFiles/srcache_hdd.dir/iscsi_target.cpp.o.d"
  "CMakeFiles/srcache_hdd.dir/sim_hdd.cpp.o"
  "CMakeFiles/srcache_hdd.dir/sim_hdd.cpp.o.d"
  "libsrcache_hdd.a"
  "libsrcache_hdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srcache_hdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
