file(REMOVE_RECURSE
  "CMakeFiles/srcache_raid.dir/raid_device.cpp.o"
  "CMakeFiles/srcache_raid.dir/raid_device.cpp.o.d"
  "libsrcache_raid.a"
  "libsrcache_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srcache_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
