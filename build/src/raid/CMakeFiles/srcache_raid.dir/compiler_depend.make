# Empty compiler generated dependencies file for srcache_raid.
# This may be replaced when dependencies are built.
