file(REMOVE_RECURSE
  "libsrcache_raid.a"
)
