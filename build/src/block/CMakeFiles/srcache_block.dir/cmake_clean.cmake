file(REMOVE_RECURSE
  "CMakeFiles/srcache_block.dir/block_device.cpp.o"
  "CMakeFiles/srcache_block.dir/block_device.cpp.o.d"
  "CMakeFiles/srcache_block.dir/mem_disk.cpp.o"
  "CMakeFiles/srcache_block.dir/mem_disk.cpp.o.d"
  "libsrcache_block.a"
  "libsrcache_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srcache_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
