
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/block/block_device.cpp" "src/block/CMakeFiles/srcache_block.dir/block_device.cpp.o" "gcc" "src/block/CMakeFiles/srcache_block.dir/block_device.cpp.o.d"
  "/root/repo/src/block/mem_disk.cpp" "src/block/CMakeFiles/srcache_block.dir/mem_disk.cpp.o" "gcc" "src/block/CMakeFiles/srcache_block.dir/mem_disk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/srcache_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/srcache_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
