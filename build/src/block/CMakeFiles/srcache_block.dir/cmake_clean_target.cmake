file(REMOVE_RECURSE
  "libsrcache_block.a"
)
