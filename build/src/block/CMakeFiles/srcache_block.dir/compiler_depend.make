# Empty compiler generated dependencies file for srcache_block.
# This may be replaced when dependencies are built.
