file(REMOVE_RECURSE
  "CMakeFiles/srcache_flash.dir/ftl.cpp.o"
  "CMakeFiles/srcache_flash.dir/ftl.cpp.o.d"
  "CMakeFiles/srcache_flash.dir/sim_ssd.cpp.o"
  "CMakeFiles/srcache_flash.dir/sim_ssd.cpp.o.d"
  "CMakeFiles/srcache_flash.dir/ssd_specs.cpp.o"
  "CMakeFiles/srcache_flash.dir/ssd_specs.cpp.o.d"
  "libsrcache_flash.a"
  "libsrcache_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srcache_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
