# Empty dependencies file for srcache_flash.
# This may be replaced when dependencies are built.
