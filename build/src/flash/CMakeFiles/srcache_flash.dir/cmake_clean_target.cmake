file(REMOVE_RECURSE
  "libsrcache_flash.a"
)
