
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flash/ftl.cpp" "src/flash/CMakeFiles/srcache_flash.dir/ftl.cpp.o" "gcc" "src/flash/CMakeFiles/srcache_flash.dir/ftl.cpp.o.d"
  "/root/repo/src/flash/sim_ssd.cpp" "src/flash/CMakeFiles/srcache_flash.dir/sim_ssd.cpp.o" "gcc" "src/flash/CMakeFiles/srcache_flash.dir/sim_ssd.cpp.o.d"
  "/root/repo/src/flash/ssd_specs.cpp" "src/flash/CMakeFiles/srcache_flash.dir/ssd_specs.cpp.o" "gcc" "src/flash/CMakeFiles/srcache_flash.dir/ssd_specs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/srcache_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/srcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/srcache_block.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
