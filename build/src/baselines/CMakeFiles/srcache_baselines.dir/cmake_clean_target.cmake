file(REMOVE_RECURSE
  "libsrcache_baselines.a"
)
