
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bcache_like.cpp" "src/baselines/CMakeFiles/srcache_baselines.dir/bcache_like.cpp.o" "gcc" "src/baselines/CMakeFiles/srcache_baselines.dir/bcache_like.cpp.o.d"
  "/root/repo/src/baselines/flashcache_like.cpp" "src/baselines/CMakeFiles/srcache_baselines.dir/flashcache_like.cpp.o" "gcc" "src/baselines/CMakeFiles/srcache_baselines.dir/flashcache_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/srcache_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/srcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/srcache_block.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/srcache_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/srcache_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
