file(REMOVE_RECURSE
  "CMakeFiles/srcache_baselines.dir/bcache_like.cpp.o"
  "CMakeFiles/srcache_baselines.dir/bcache_like.cpp.o.d"
  "CMakeFiles/srcache_baselines.dir/flashcache_like.cpp.o"
  "CMakeFiles/srcache_baselines.dir/flashcache_like.cpp.o.d"
  "libsrcache_baselines.a"
  "libsrcache_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srcache_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
