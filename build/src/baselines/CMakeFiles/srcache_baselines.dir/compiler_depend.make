# Empty compiler generated dependencies file for srcache_baselines.
# This may be replaced when dependencies are built.
