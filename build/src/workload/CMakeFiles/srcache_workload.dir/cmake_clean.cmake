file(REMOVE_RECURSE
  "CMakeFiles/srcache_workload.dir/generators.cpp.o"
  "CMakeFiles/srcache_workload.dir/generators.cpp.o.d"
  "CMakeFiles/srcache_workload.dir/runner.cpp.o"
  "CMakeFiles/srcache_workload.dir/runner.cpp.o.d"
  "CMakeFiles/srcache_workload.dir/trace_file.cpp.o"
  "CMakeFiles/srcache_workload.dir/trace_file.cpp.o.d"
  "CMakeFiles/srcache_workload.dir/trace_synth.cpp.o"
  "CMakeFiles/srcache_workload.dir/trace_synth.cpp.o.d"
  "libsrcache_workload.a"
  "libsrcache_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srcache_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
