# Empty dependencies file for srcache_workload.
# This may be replaced when dependencies are built.
