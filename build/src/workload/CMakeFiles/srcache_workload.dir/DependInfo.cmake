
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generators.cpp" "src/workload/CMakeFiles/srcache_workload.dir/generators.cpp.o" "gcc" "src/workload/CMakeFiles/srcache_workload.dir/generators.cpp.o.d"
  "/root/repo/src/workload/runner.cpp" "src/workload/CMakeFiles/srcache_workload.dir/runner.cpp.o" "gcc" "src/workload/CMakeFiles/srcache_workload.dir/runner.cpp.o.d"
  "/root/repo/src/workload/trace_file.cpp" "src/workload/CMakeFiles/srcache_workload.dir/trace_file.cpp.o" "gcc" "src/workload/CMakeFiles/srcache_workload.dir/trace_file.cpp.o.d"
  "/root/repo/src/workload/trace_synth.cpp" "src/workload/CMakeFiles/srcache_workload.dir/trace_synth.cpp.o" "gcc" "src/workload/CMakeFiles/srcache_workload.dir/trace_synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/srcache_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/srcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/srcache_block.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/srcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/srcache_flash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
