file(REMOVE_RECURSE
  "libsrcache_workload.a"
)
