file(REMOVE_RECURSE
  "CMakeFiles/srcache_cache.dir/cache_device.cpp.o"
  "CMakeFiles/srcache_cache.dir/cache_device.cpp.o.d"
  "libsrcache_cache.a"
  "libsrcache_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srcache_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
