file(REMOVE_RECURSE
  "libsrcache_cache.a"
)
