# Empty compiler generated dependencies file for srcache_cache.
# This may be replaced when dependencies are built.
