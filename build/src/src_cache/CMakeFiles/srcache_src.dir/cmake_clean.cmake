file(REMOVE_RECURSE
  "CMakeFiles/srcache_src.dir/segment_meta.cpp.o"
  "CMakeFiles/srcache_src.dir/segment_meta.cpp.o.d"
  "CMakeFiles/srcache_src.dir/src_cache.cpp.o"
  "CMakeFiles/srcache_src.dir/src_cache.cpp.o.d"
  "CMakeFiles/srcache_src.dir/src_gc.cpp.o"
  "CMakeFiles/srcache_src.dir/src_gc.cpp.o.d"
  "CMakeFiles/srcache_src.dir/src_recovery.cpp.o"
  "CMakeFiles/srcache_src.dir/src_recovery.cpp.o.d"
  "libsrcache_src.a"
  "libsrcache_src.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srcache_src.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
