# Empty dependencies file for srcache_src.
# This may be replaced when dependencies are built.
