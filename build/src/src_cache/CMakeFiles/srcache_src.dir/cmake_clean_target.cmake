file(REMOVE_RECURSE
  "libsrcache_src.a"
)
