# Empty compiler generated dependencies file for srcache_cost.
# This may be replaced when dependencies are built.
