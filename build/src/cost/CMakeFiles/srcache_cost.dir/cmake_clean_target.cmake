file(REMOVE_RECURSE
  "libsrcache_cost.a"
)
