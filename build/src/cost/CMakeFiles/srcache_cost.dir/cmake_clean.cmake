file(REMOVE_RECURSE
  "CMakeFiles/srcache_cost.dir/cost_model.cpp.o"
  "CMakeFiles/srcache_cost.dir/cost_model.cpp.o.d"
  "libsrcache_cost.a"
  "libsrcache_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srcache_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
