# Empty dependencies file for srcache_sim.
# This may be replaced when dependencies are built.
