file(REMOVE_RECURSE
  "libsrcache_sim.a"
)
