file(REMOVE_RECURSE
  "CMakeFiles/srcache_sim.dir/timeline.cpp.o"
  "CMakeFiles/srcache_sim.dir/timeline.cpp.o.d"
  "libsrcache_sim.a"
  "libsrcache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srcache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
