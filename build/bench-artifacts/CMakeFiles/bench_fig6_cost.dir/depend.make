# Empty dependencies file for bench_fig6_cost.
# This may be replaced when dependencies are built.
