file(REMOVE_RECURSE
  "../bench/bench_table3_flush"
  "../bench/bench_table3_flush.pdb"
  "CMakeFiles/bench_table3_flush.dir/bench_table3_flush.cpp.o"
  "CMakeFiles/bench_table3_flush.dir/bench_table3_flush.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
