# Empty compiler generated dependencies file for bench_table3_flush.
# This may be replaced when dependencies are built.
