# Empty compiler generated dependencies file for bench_fig2_erase_group.
# This may be replaced when dependencies are built.
