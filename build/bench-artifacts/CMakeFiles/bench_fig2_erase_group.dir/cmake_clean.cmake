file(REMOVE_RECURSE
  "../bench/bench_fig2_erase_group"
  "../bench/bench_fig2_erase_group.pdb"
  "CMakeFiles/bench_fig2_erase_group.dir/bench_fig2_erase_group.cpp.o"
  "CMakeFiles/bench_fig2_erase_group.dir/bench_fig2_erase_group.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_erase_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
