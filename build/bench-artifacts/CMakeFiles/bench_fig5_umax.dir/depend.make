# Empty dependencies file for bench_fig5_umax.
# This may be replaced when dependencies are built.
