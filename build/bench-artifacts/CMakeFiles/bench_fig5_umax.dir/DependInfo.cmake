
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_umax.cpp" "bench-artifacts/CMakeFiles/bench_fig5_umax.dir/bench_fig5_umax.cpp.o" "gcc" "bench-artifacts/CMakeFiles/bench_fig5_umax.dir/bench_fig5_umax.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdd/CMakeFiles/srcache_hdd.dir/DependInfo.cmake"
  "/root/repo/build/src/src_cache/CMakeFiles/srcache_src.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/srcache_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/srcache_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/srcache_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/srcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/srcache_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/srcache_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/srcache_block.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/srcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/srcache_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
