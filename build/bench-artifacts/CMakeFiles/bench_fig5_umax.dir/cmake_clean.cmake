file(REMOVE_RECURSE
  "../bench/bench_fig5_umax"
  "../bench/bench_fig5_umax.pdb"
  "CMakeFiles/bench_fig5_umax.dir/bench_fig5_umax.cpp.o"
  "CMakeFiles/bench_fig5_umax.dir/bench_fig5_umax.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_umax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
