file(REMOVE_RECURSE
  "../bench/bench_table2_writeback"
  "../bench/bench_table2_writeback.pdb"
  "CMakeFiles/bench_table2_writeback.dir/bench_table2_writeback.cpp.o"
  "CMakeFiles/bench_table2_writeback.dir/bench_table2_writeback.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_writeback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
