# Empty compiler generated dependencies file for bench_table11_flush_ctl.
# This may be replaced when dependencies are built.
