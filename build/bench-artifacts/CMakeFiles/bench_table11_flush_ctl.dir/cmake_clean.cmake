file(REMOVE_RECURSE
  "../bench/bench_table11_flush_ctl"
  "../bench/bench_table11_flush_ctl.pdb"
  "CMakeFiles/bench_table11_flush_ctl.dir/bench_table11_flush_ctl.cpp.o"
  "CMakeFiles/bench_table11_flush_ctl.dir/bench_table11_flush_ctl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_flush_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
