# Empty dependencies file for bench_table9_npc.
# This may be replaced when dependencies are built.
