file(REMOVE_RECURSE
  "../bench/bench_table9_npc"
  "../bench/bench_table9_npc.pdb"
  "CMakeFiles/bench_table9_npc.dir/bench_table9_npc.cpp.o"
  "CMakeFiles/bench_table9_npc.dir/bench_table9_npc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_npc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
