file(REMOVE_RECURSE
  "../bench/bench_table10_raid"
  "../bench/bench_table10_raid.pdb"
  "CMakeFiles/bench_table10_raid.dir/bench_table10_raid.cpp.o"
  "CMakeFiles/bench_table10_raid.dir/bench_table10_raid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
