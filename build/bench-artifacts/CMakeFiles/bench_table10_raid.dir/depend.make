# Empty dependencies file for bench_table10_raid.
# This may be replaced when dependencies are built.
