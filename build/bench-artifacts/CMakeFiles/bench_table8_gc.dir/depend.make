# Empty dependencies file for bench_table8_gc.
# This may be replaced when dependencies are built.
