file(REMOVE_RECURSE
  "../bench/bench_table8_gc"
  "../bench/bench_table8_gc.pdb"
  "CMakeFiles/bench_table8_gc.dir/bench_table8_gc.cpp.o"
  "CMakeFiles/bench_table8_gc.dir/bench_table8_gc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
