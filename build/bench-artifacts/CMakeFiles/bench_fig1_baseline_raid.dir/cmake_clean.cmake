file(REMOVE_RECURSE
  "../bench/bench_fig1_baseline_raid"
  "../bench/bench_fig1_baseline_raid.pdb"
  "CMakeFiles/bench_fig1_baseline_raid.dir/bench_fig1_baseline_raid.cpp.o"
  "CMakeFiles/bench_fig1_baseline_raid.dir/bench_fig1_baseline_raid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_baseline_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
