file(REMOVE_RECURSE
  "../bench/bench_table6_traces"
  "../bench/bench_table6_traces.pdb"
  "CMakeFiles/bench_table6_traces.dir/bench_table6_traces.cpp.o"
  "CMakeFiles/bench_table6_traces.dir/bench_table6_traces.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
