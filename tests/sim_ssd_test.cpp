#include <gtest/gtest.h>

#include <queue>

#include "common/rng.hpp"
#include "flash/sim_ssd.hpp"

namespace srcache::flash {
namespace {

using sim::SimTime;

SsdSpec test_spec() {
  // 840 Pro class, scaled to 2 GiB for test speed. Scaling shrinks the
  // block count but keeps per-op timing, so bandwidth targets still hold.
  SsdSpec s = spec_840pro_128();
  s.capacity_bytes = 2 * GiB;
  s.pages_per_block = 256;  // keep a sane block count at small capacity
  s.write_buffer_bytes = 16 * MiB;
  return s;
}

// Simple closed-loop driver: `qd` streams, each issuing its next op at its
// previous completion. Returns achieved MB/s over the bytes moved.
template <typename IssueFn>
double closed_loop_mbps(IssueFn&& issue, int qd, u64 total_ops, u64 bytes_per_op) {
  using Entry = std::pair<SimTime, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int i = 0; i < qd; ++i) heap.emplace(0, i);
  SimTime last = 0;
  for (u64 n = 0; n < total_ops; ++n) {
    auto [now, stream] = heap.top();
    heap.pop();
    const SimTime done = issue(now, n);
    last = std::max(last, done);
    heap.emplace(done, stream);
  }
  return sim::mb_per_sec(total_ops * bytes_per_op, last);
}

TEST(SimSsd, CapacityMatchesSpec) {
  SimSsd ssd(test_spec());
  EXPECT_EQ(ssd.capacity_blocks(), 2 * GiB / kBlockSize);
}

TEST(SimSsd, EraseGroupOfPrototypeIs256MiB) {
  EXPECT_EQ(spec_840pro_128().erase_group_bytes(), 256 * MiB);
}

TEST(SimSsd, SequentialWriteNearSpec) {
  // Target: ~390 MB/s sustained sequential write (Table 4, 128 GB SSD-A).
  SimSsd ssd(test_spec());
  const u32 op_blocks = 128;  // 512 KiB requests
  const u64 ops = ssd.capacity_blocks() / op_blocks;
  u64 cursor = 0;
  const double mbps = closed_loop_mbps(
      [&](SimTime now, u64) {
        const auto r = ssd.write(now, cursor, op_blocks, {});
        cursor = (cursor + op_blocks) % (ssd.capacity_blocks() - op_blocks);
        return r.done;
      },
      4, ops, blocks_to_bytes(op_blocks));
  EXPECT_GT(mbps, 330.0);
  EXPECT_LT(mbps, 470.0);
}

TEST(SimSsd, SequentialReadHitsInterfaceCap) {
  SimSsd ssd(test_spec());
  for (u64 b = 0; b < 32768; b += 128) ssd.write(0, b, 128, {});
  ssd.reset_timing();
  u64 cursor = 0;
  const double mbps = closed_loop_mbps(
      [&](SimTime now, u64) {
        const auto r = ssd.read(now, cursor, 128, {});
        cursor = (cursor + 128) % 32768;
        return r.done;
      },
      4, 2000, blocks_to_bytes(128));
  // SATA-bound: ~530-550 MB/s.
  EXPECT_GT(mbps, 450.0);
  EXPECT_LT(mbps, 560.0);
}

TEST(SimSsd, RandomReadIopsNearSpec) {
  // Target: ~97 KIOPS 4 KiB random read (Table 4).
  SimSsd ssd(test_spec());
  for (u64 b = 0; b < ssd.capacity_blocks(); b += 128) ssd.write(0, b, 128, {});
  ssd.reset_timing();
  common::Xoshiro256 rng(1);
  const u64 ops = 200000;
  const double mbps = closed_loop_mbps(
      [&](SimTime now, u64) {
        return ssd.read(now, rng.below(ssd.capacity_blocks()), 1, {}).done;
      },
      32, ops, kBlockSize);
  const double kiops = mbps * 1e6 / kBlockSize / 1e3;
  EXPECT_GT(kiops, 75.0);
  EXPECT_LT(kiops, 120.0);
}

TEST(SimSsd, BurstRandomWriteIopsNearSpec) {
  // Spec-sheet 4 KiB random-write IOPS (~90K) are *burst* numbers: fresh
  // drive, buffered writes, no internal GC yet.
  SimSsd ssd(test_spec());
  common::Xoshiro256 rng(2);
  const u64 ops = 100000;
  const double mbps = closed_loop_mbps(
      [&](SimTime now, u64) {
        return ssd.write(now, rng.below(ssd.capacity_blocks()), 1, {}).done;
      },
      32, ops, kBlockSize);
  const double kiops = mbps * 1e6 / kBlockSize / 1e3;
  EXPECT_GT(kiops, 60.0);
  EXPECT_LT(kiops, 120.0);
}

TEST(SimSsd, SteadyStateRandomWritesPayGcTax) {
  // At steady state (preconditioned, uniform random 4 KiB) internal GC
  // write amplification collapses throughput well below the burst rate —
  // the §3.3 motivation for erase-group-aligned writes.
  SimSsd ssd(test_spec());
  ssd.precondition();
  common::Xoshiro256 rng(2);
  const u64 ops = 300000;
  const double mbps = closed_loop_mbps(
      [&](SimTime now, u64) {
        return ssd.write(now, rng.below(ssd.capacity_blocks()), 1, {}).done;
      },
      32, ops, kBlockSize);
  const double kiops = mbps * 1e6 / kBlockSize / 1e3;
  EXPECT_GT(kiops, 3.0);
  EXPECT_LT(kiops, 45.0);  // far below the ~90K burst rate
  EXPECT_GT(ssd.ftl().stats().write_amplification(), 2.0);
}

TEST(SimSsd, FlushDrainsAndStalls) {
  SimSsd ssd(test_spec());
  const auto w = ssd.write(0, 0, 1024, {});
  const auto f = ssd.flush(w.done);
  // Flush completes no earlier than the NAND drain plus the barrier.
  EXPECT_GE(f.done - w.done, test_spec().flush_barrier);
  // A read issued immediately after queues behind the flush barrier.
  const auto r = ssd.read(f.done - 1 * sim::kMs, 0, 1, {});
  EXPECT_GE(r.done, f.done);
}

TEST(SimSsd, FlushPerWriteCollapsesThroughput) {
  // The Table 3 experiment in miniature: sequential 512 KiB writes with and
  // without a flush per write.
  auto run = [](bool with_flush) {
    SimSsd ssd(test_spec());
    u64 cursor = 0;
    SimTime t = 0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      auto w = ssd.write(t, cursor, 128, {});
      t = w.done;
      if (with_flush) t = ssd.flush(t).done;
      cursor += 128;
    }
    return sim::mb_per_sec(static_cast<u64>(n) * 128 * kBlockSize, t);
  };
  const double no_flush = run(false);
  const double flush = run(true);
  EXPECT_GT(no_flush / flush, 3.0);  // paper: 4.1x for sequential
}

TEST(SimSsd, TrimmedBlocksReadAsZero) {
  SimSsd ssd(test_spec());
  const std::vector<u64> tags = {77};
  ssd.write(0, 5, 1, tags);
  ssd.trim(0, 5, 1);
  std::vector<u64> out(1, 1);
  ssd.read(0, 5, 1, out);
  EXPECT_EQ(out[0], 0u);
  EXPECT_FALSE(ssd.ftl().is_mapped(5));
}

TEST(SimSsd, PayloadRoundTrip) {
  SimSsd ssd(test_spec());
  auto p = std::make_shared<std::vector<u8>>(std::vector<u8>{9, 8, 7});
  ASSERT_TRUE(ssd.write_payload(0, 11, p).ok());
  auto r = ssd.read_payload(0, 11, nullptr);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r.value(), (std::vector<u8>{9, 8, 7}));
}

TEST(SimSsd, FailStops) {
  SimSsd ssd(test_spec());
  ssd.fail();
  EXPECT_EQ(ssd.write(0, 0, 1, {}).error, ErrorCode::kDeviceFailed);
  EXPECT_FALSE(ssd.read_payload(0, 0, nullptr).is_ok());
}

TEST(SimSsd, PreconditionFillsFtl) {
  SimSsd ssd(test_spec());
  ssd.precondition();
  EXPECT_EQ(ssd.ftl().mapped_pages(), ssd.capacity_blocks());
  EXPECT_EQ(ssd.stats().write_blocks, 0u);  // timing/stats were reset
}

TEST(SimSsd, ContentTrackingCanBeDisabled) {
  SimSsd ssd(test_spec(), /*track_content=*/false);
  const std::vector<u64> tags = {123};
  ssd.write(0, 0, 1, tags);
  std::vector<u64> out(1, 55);
  ssd.read(0, 0, 1, out);
  EXPECT_EQ(out[0], 0u);  // content not retained
}

TEST(SsdSpecs, CatalogHasFiveEntries) {
  const auto cat = table12_catalog();
  ASSERT_EQ(cat.size(), 5u);
  EXPECT_EQ(cat[0].name, "A-MLC(SATA)");
  EXPECT_EQ(cat[4].name, "C-MLC(NVMe)");
}

TEST(SsdSpecs, TlcSlowerAndShorterLived) {
  const SsdSpec mlc = spec_a_mlc_sata();
  const SsdSpec tlc = spec_a_tlc_sata();
  EXPECT_GT(tlc.program_latency, mlc.program_latency);
  EXPECT_LT(tlc.endurance_cycles, mlc.endurance_cycles);
  EXPECT_LT(tlc.price_usd, mlc.price_usd);
}

TEST(SsdSpecs, NvmeFasterInterfaceAndNand) {
  const SsdSpec nvme = spec_c_mlc_nvme();
  const SsdSpec sata = spec_a_mlc_sata();
  EXPECT_GT(nvme.interface_mbps, 4 * sata.interface_mbps);
  EXPECT_GT(nvme.nand_write_mbps(), 2 * sata.nand_write_mbps());
}

TEST(SsdSpecs, ScaledKeepsGeometryFloor) {
  const SsdSpec s = spec_840pro_128().scaled(1.0 / 1024.0);
  EXPECT_GE(s.capacity_bytes,
            static_cast<u64>(s.units) * s.pages_per_block * kBlockSize * 4);
}

}  // namespace
}  // namespace srcache::flash
