// Shared rig for SRC cache tests: small geometry over MemDisk devices so
// behaviours (sealing, GC, recovery) trigger quickly.
#pragma once

#include <memory>
#include <vector>

#include "block/mem_disk.hpp"
#include "src_cache/src_cache.hpp"

namespace srcache::src::testutil {

inline SrcConfig small_config() {
  SrcConfig cfg;
  cfg.num_ssds = 4;
  cfg.chunk_bytes = 32 * KiB;          // 8 blocks: MS + 6 slots + ME
  cfg.erase_group_bytes = 256 * KiB;   // 8 segments per SG
  cfg.region_bytes_per_ssd = 4 * MiB;  // 16 SGs (SG 0 = superblock)
  cfg.twait = 1 * sim::kSec;           // effectively off unless tested
  return cfg;
}

struct Rig {
  std::vector<std::unique_ptr<blockdev::MemDisk>> ssds;
  std::unique_ptr<blockdev::MemDisk> primary;
  std::unique_ptr<SrcCache> cache;
  SrcConfig cfg;

  explicit Rig(SrcConfig c = small_config()) : cfg(c) {
    blockdev::MemDiskConfig fast;
    fast.capacity_blocks = cfg.region_bytes_per_ssd / kBlockSize + 64;
    fast.op_latency = 20 * sim::kUs;
    fast.bandwidth_mbps = 500.0;
    fast.flush_latency = 4 * sim::kMs;
    for (u32 i = 0; i < cfg.num_ssds; ++i)
      ssds.push_back(std::make_unique<blockdev::MemDisk>(fast));
    blockdev::MemDiskConfig slow;
    slow.capacity_blocks = 1 * GiB / kBlockSize;
    slow.op_latency = 5 * sim::kMs;
    slow.bandwidth_mbps = 110.0;
    primary = std::make_unique<blockdev::MemDisk>(slow);
    reattach();
    cache->format(0);
  }

  // Builds a fresh SrcCache instance over the same devices (crash model:
  // all in-memory state is discarded).
  void reattach() {
    std::vector<blockdev::BlockDevice*> devs;
    for (auto& s : ssds) devs.push_back(s.get());
    cache = std::make_unique<SrcCache>(cfg, devs, primary.get());
  }

  sim::SimTime write(sim::SimTime now, u64 lba, u32 n = 1,
                     const u64* tags = nullptr) {
    cache::AppRequest r;
    r.now = now;
    r.is_write = true;
    r.lba = lba;
    r.nblocks = n;
    r.tags = tags;
    return cache->submit(r);
  }

  sim::SimTime read(sim::SimTime now, u64 lba, u32 n = 1, u64* out = nullptr) {
    cache::AppRequest r;
    r.now = now;
    r.lba = lba;
    r.nblocks = n;
    r.tags_out = out;
    return cache->submit(r);
  }
};

}  // namespace srcache::src::testutil
