#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "src_test_util.hpp"

namespace srcache::src {
namespace {

using testutil::Rig;
using testutil::small_config;

// Seals one dirty segment with known tags and returns them.
std::vector<u64> seal_one_dirty(Rig& rig, u64 lba_base = 0) {
  const u64 cap = rig.cfg.segment_data_slots(true);
  std::vector<u64> tags(cap);
  for (u64 i = 0; i < cap; ++i) {
    tags[i] = 0xF000 + i;
    rig.write(0, lba_base + i, 1, &tags[i]);
  }
  return tags;
}

// Finds the SSD that stores the given lba by corrupting devices one at a
// time would be invasive; instead we scan for which device read changes the
// result — simpler: corrupt every device block in turn. For these tests we
// instead corrupt through the cache's own geometry knowledge by brute
// force: corrupt a block on each SSD in the data area and let checksum
// verification find it.

TEST(SrcFailure, SilentCorruptionRepairedByParity) {
  SrcConfig cfg = small_config();
  cfg.raid = SrcRaidLevel::kRaid5;
  Rig rig(cfg);
  const auto tags = seal_one_dirty(rig);
  // Corrupt the first data row block on every SSD except one — parity can
  // repair exactly one per stripe row, so corrupt just SSD 0's first slot.
  // Data rows start after the MS block of SG 1, segment 0.
  const u64 chunk_blocks = rig.cfg.chunk_blocks();
  const u64 sg1_base = rig.cfg.eg_blocks();  // SG 0 is the superblock
  rig.ssds[0]->corrupt(sg1_base + 1);        // first data block
  // Every block must still read back correctly.
  const u64 cap = rig.cfg.segment_data_slots(true);
  for (u64 i = 0; i < cap; ++i) {
    u64 out = 0;
    rig.read(1000, i, 1, &out);
    ASSERT_EQ(out, tags[i]) << i;
  }
  EXPECT_GE(rig.cache->extra().checksum_errors, 1u);
  EXPECT_GE(rig.cache->extra().parity_repairs, 1u);
  EXPECT_EQ(rig.cache->extra().unrecoverable_blocks, 0u);
  (void)chunk_blocks;
}

TEST(SrcFailure, RepairWritesBackCorrectData) {
  SrcConfig cfg = small_config();
  Rig rig(cfg);
  const auto tags = seal_one_dirty(rig);
  const u64 sg1_base = rig.cfg.eg_blocks();
  rig.ssds[0]->corrupt(sg1_base + 1);
  u64 out = 0;
  for (u64 i = 0; i < tags.size(); ++i) rig.read(1000, i, 1, &out);
  const auto repairs = rig.cache->extra().parity_repairs;
  ASSERT_GE(repairs, 1u);
  // Second pass: the repaired block verifies cleanly, no new repairs.
  for (u64 i = 0; i < tags.size(); ++i) rig.read(2000, i, 1, &out);
  EXPECT_EQ(rig.cache->extra().parity_repairs, repairs);
}

TEST(SrcFailure, CleanCorruptionRefetchedWithoutParity) {
  SrcConfig cfg = small_config();
  cfg.clean_redundancy = CleanRedundancy::kNPC;  // clean has no parity
  Rig rig(cfg);
  const u64 clean_cap = rig.cfg.segment_data_slots(false);
  const std::vector<u64> ptag = {4321};
  rig.primary->write(0, 100000, 1, ptag);
  sim::SimTime t = 0;
  for (u64 i = 0; i < clean_cap; ++i) t = rig.read(t, 100000 + i);
  ASSERT_EQ(rig.cache->residence(100000), SrcCache::Residence::kCachedClean);
  // Corrupt the whole first clean chunk's data area on SSD 0.
  const u64 sg1_base = rig.cfg.eg_blocks();
  for (u64 b = 1; b + 1 < rig.cfg.chunk_blocks(); ++b)
    rig.ssds[0]->corrupt(sg1_base + b);
  u64 out = 0;
  rig.read(sim::kSec, 100000, 1, &out);
  EXPECT_EQ(out, 4321u);
  EXPECT_GE(rig.cache->extra().refetch_repairs, 1u);
}

TEST(SrcFailure, DirtyRaid0CorruptionIsUnrecoverable) {
  SrcConfig cfg = small_config();
  cfg.raid = SrcRaidLevel::kRaid0;
  Rig rig(cfg);
  seal_one_dirty(rig);
  const u64 sg1_base = rig.cfg.eg_blocks();
  rig.ssds[0]->corrupt(sg1_base + 1);
  u64 out = 0;
  for (u64 i = 0; i < rig.cfg.segment_data_slots(true); ++i)
    rig.read(1000, i, 1, &out);
  EXPECT_GE(rig.cache->extra().unrecoverable_blocks, 1u);
}

TEST(SrcFailure, SsdFailStopParityReconstruction) {
  SrcConfig cfg = small_config();
  cfg.raid = SrcRaidLevel::kRaid5;
  Rig rig(cfg);
  const auto tags = seal_one_dirty(rig);
  rig.ssds[2]->fail();
  rig.cache->on_ssd_failure(2);
  // All dirty data still readable (reconstructed on the fly, §4.3).
  for (u64 i = 0; i < tags.size(); ++i) {
    u64 out = 0;
    rig.read(1000, i, 1, &out);
    ASSERT_EQ(out, tags[i]) << i;
  }
  EXPECT_EQ(rig.cache->extra().lost_dirty_blocks, 0u);
}

TEST(SrcFailure, NpcCleanLostOnSsdFailure) {
  SrcConfig cfg = small_config();
  cfg.clean_redundancy = CleanRedundancy::kNPC;
  Rig rig(cfg);
  const u64 clean_cap = rig.cfg.segment_data_slots(false);
  sim::SimTime t = 0;
  for (u64 i = 0; i < clean_cap; ++i) t = rig.read(t, 100000 + i);
  rig.ssds[1]->fail();
  rig.cache->on_ssd_failure(1);
  // A quarter of the clean blocks lived on the failed SSD and are dropped.
  EXPECT_GT(rig.cache->extra().lost_clean_blocks, 0u);
  EXPECT_EQ(rig.cache->extra().lost_dirty_blocks, 0u);
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok());
  // Dropped blocks simply miss and refetch (degraded performance, not
  // an error).
  u64 out = 0;
  EXPECT_GT(rig.read(sim::kSec, 100000, 1, &out), 0);
}

TEST(SrcFailure, PcCleanSurvivesSsdFailure) {
  SrcConfig cfg = small_config();
  cfg.clean_redundancy = CleanRedundancy::kPC;
  Rig rig(cfg);
  const u64 clean_cap = rig.cfg.segment_data_slots(false);
  const std::vector<u64> ptag = {55};
  rig.primary->write(0, 100000, 1, ptag);
  sim::SimTime t = 0;
  for (u64 i = 0; i < clean_cap; ++i) t = rig.read(t, 100000 + i);
  rig.ssds[1]->fail();
  rig.cache->on_ssd_failure(1);
  EXPECT_EQ(rig.cache->extra().lost_clean_blocks, 0u);
  // Clean hits keep working without touching the primary store.
  const auto disk_reads = rig.primary->stats().read_blocks;
  u64 out = 0;
  rig.read(sim::kSec, 100000, 1, &out);
  EXPECT_EQ(out, 55u);
  EXPECT_EQ(rig.primary->stats().read_blocks, disk_reads);
}

TEST(SrcFailure, Raid0FailureLosesDirtyData) {
  SrcConfig cfg = small_config();
  cfg.raid = SrcRaidLevel::kRaid0;
  Rig rig(cfg);
  seal_one_dirty(rig);
  rig.ssds[0]->fail();
  rig.cache->on_ssd_failure(0);
  EXPECT_GT(rig.cache->extra().lost_dirty_blocks, 0u);
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok());
}

TEST(SrcFailure, Raid1MirrorServesAfterFailure) {
  SrcConfig cfg = small_config();
  cfg.raid = SrcRaidLevel::kRaid1;
  Rig rig(cfg);
  const u64 cap = rig.cfg.segment_data_slots(true);
  std::vector<u64> tags(cap);
  for (u64 i = 0; i < cap; ++i) {
    tags[i] = 0xAB00 + i;
    rig.write(0, i, 1, &tags[i]);
  }
  rig.ssds[0]->fail();
  rig.cache->on_ssd_failure(0);
  for (u64 i = 0; i < cap; ++i) {
    u64 out = 0;
    rig.read(1000, i, 1, &out);
    ASSERT_EQ(out, tags[i]) << i;
  }
  EXPECT_EQ(rig.cache->extra().lost_dirty_blocks, 0u);
}

TEST(SrcFailure, GcContinuesDegraded) {
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kS2D;
  Rig rig(cfg);
  seal_one_dirty(rig);
  rig.ssds[3]->fail();
  rig.cache->on_ssd_failure(3);
  // Keep writing until reclaims happen; destages must reconstruct data
  // from the surviving SSDs.
  const u64 per_sg = cfg.segments_per_sg() * cfg.segment_data_slots(true);
  sim::SimTime t = 0;
  for (u64 i = 0; i < per_sg * (cfg.sg_count() + 1); ++i)
    t = rig.write(t, 1000 + i);
  EXPECT_GT(rig.cache->extra().sg_reclaims, 0u);
  EXPECT_EQ(rig.cache->extra().lost_dirty_blocks, 0u);
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok())
      << rig.cache->verify_consistency().to_string();
}

TEST(SrcScrub, CleanCacheScansWithoutRepairs) {
  Rig rig;
  seal_one_dirty(rig);
  SimTime done = 0;
  const auto rep = rig.cache->scrub(0, &done);
  EXPECT_EQ(rep.scanned, rig.cfg.segment_data_slots(true));
  EXPECT_EQ(rep.repaired, 0u);
  EXPECT_EQ(rep.unrecoverable, 0u);
  EXPECT_GT(done, 0);
}

TEST(SrcScrub, FindsAndRepairsCorruption) {
  Rig rig;
  seal_one_dirty(rig);
  const u64 sg1_base = rig.cfg.eg_blocks();
  // Segment 0's parity column is SSD 1 (generation 1 % 4), so corrupt
  // data blocks on SSDs 0 and 2.
  rig.ssds[0]->corrupt(sg1_base + 1);
  rig.ssds[2]->corrupt(sg1_base + 2);
  const auto rep = rig.cache->scrub(0);
  EXPECT_EQ(rep.repaired, 2u);
  EXPECT_EQ(rep.unrecoverable, 0u);
  // A second scrub finds everything healthy again (repairs wrote back).
  const auto rep2 = rig.cache->scrub(sim::kSec);
  EXPECT_EQ(rep2.repaired, 0u);
}

TEST(SrcScrub, ReportsUnrecoverableOnRaid0) {
  SrcConfig cfg = small_config();
  cfg.raid = SrcRaidLevel::kRaid0;
  Rig rig(cfg);
  seal_one_dirty(rig);
  rig.ssds[0]->corrupt(rig.cfg.eg_blocks() + 1);
  const auto rep = rig.cache->scrub(0);
  EXPECT_GE(rep.unrecoverable, 1u);
}

TEST(SrcScrub, RefetchesCorruptNpcClean) {
  SrcConfig cfg = small_config();
  cfg.clean_redundancy = CleanRedundancy::kNPC;
  Rig rig(cfg);
  const u64 clean_cap = rig.cfg.segment_data_slots(false);
  sim::SimTime t = 0;
  for (u64 i = 0; i < clean_cap; ++i) t = rig.read(t, 100000 + i);
  rig.ssds[0]->corrupt(rig.cfg.eg_blocks() + 1);
  const auto rep = rig.cache->scrub(t);
  EXPECT_GE(rep.refetched, 1u);
  EXPECT_EQ(rep.unrecoverable, 0u);
}

}  // namespace
}  // namespace srcache::src
