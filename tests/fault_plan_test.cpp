#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "block/mem_disk.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "obs/metrics.hpp"

namespace srcache::fault {
namespace {

// --- plan parsing ----------------------------------------------------------

TEST(FaultPlan, ParsesEveryAction) {
  auto r = FaultPlan::parse(
      "at=2s fail dev=ssd1; at=500ms heal dev=ssd1;"
      "at=ops:1000 corrupt dev=ssd0 lba=16..64 count=8;"
      "at=30us latent dev=ssd2 lba=0..4;"
      "at=1s degrade dev=primary factor=8 for=250ms;"
      "at=ops:5 powercut");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const FaultPlan plan = std::move(r).take();
  ASSERT_EQ(plan.events().size(), 6u);

  const auto& ev = plan.events();
  EXPECT_EQ(ev[0].kind, FaultKind::kFailStop);
  EXPECT_EQ(ev[0].trigger.kind, Trigger::Kind::kTime);
  EXPECT_EQ(ev[0].trigger.at_time, 2 * sim::kSec);
  EXPECT_EQ(ev[0].dev, 1);

  EXPECT_EQ(ev[1].kind, FaultKind::kHeal);
  EXPECT_EQ(ev[1].trigger.at_time, 500 * sim::kMs);

  EXPECT_EQ(ev[2].kind, FaultKind::kCorrupt);
  EXPECT_EQ(ev[2].trigger.kind, Trigger::Kind::kOps);
  EXPECT_EQ(ev[2].trigger.at_ops, 1000u);
  EXPECT_EQ(ev[2].dev, 0);
  EXPECT_EQ(ev[2].lba_begin, 16u);
  EXPECT_EQ(ev[2].lba_end, 64u);
  EXPECT_EQ(ev[2].count, 8u);

  EXPECT_EQ(ev[3].kind, FaultKind::kLatent);
  EXPECT_EQ(ev[3].trigger.at_time, 30 * sim::kUs);

  EXPECT_EQ(ev[4].kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(ev[4].dev, kPrimaryDev);
  EXPECT_DOUBLE_EQ(ev[4].factor, 8.0);
  EXPECT_EQ(ev[4].duration, 250 * sim::kMs);

  EXPECT_EQ(ev[5].kind, FaultKind::kPowerCut);
  EXPECT_EQ(ev[5].trigger.at_ops, 5u);
}

TEST(FaultPlan, DescribeRoundTrips) {
  const char* spec =
      "at=2s fail dev=ssd1; at=ops:100 corrupt dev=ssd0 lba=0..8 count=2";
  const FaultPlan a = FaultPlan::parse_or_die(spec);
  // describe() re-parses to the identical plan.
  const FaultPlan b = FaultPlan::parse_or_die(a.describe());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i)
    EXPECT_EQ(a.events()[i].describe(), b.events()[i].describe());
}

TEST(FaultPlan, RejectsMalformedClauses) {
  const char* bad[] = {
      "at=2s",                                    // missing action
      "at=2s explode dev=ssd0",                   // unknown action
      "fail dev=ssd0",                            // missing trigger
      "at=2parsecs fail dev=ssd0",                // bad time unit
      "at=ops:abc fail dev=ssd0",                 // bad op count
      "at=2s fail",                               // missing device
      "at=2s fail dev=floppy0",                   // unknown device
      "at=2s fail dev=ssd0 lba=0..8",             // stray key for action
      "at=2s corrupt dev=ssd0",                   // missing range
      "at=2s corrupt dev=ssd0 lba=8..8",          // empty range
      "at=2s corrupt dev=ssd0 lba=9..8",          // backwards range
      "at=2s corrupt dev=primary lba=0..8",       // corrupt targets SSDs
      "at=2s corrupt dev=ssd0 lba=0..8 count=0",  // zero count
      "at=2s latent dev=ssd0 lba=0..8 count=2",   // count on latent
      "at=2s latent dev=ssd0 lba=0..2097153",     // > 1Mi block faults
      "at=2s degrade dev=primary for=1s",         // missing factor
      "at=2s degrade dev=primary factor=0.5 for=1s",  // speed-up, not fault
      "at=2s degrade dev=primary factor=8",       // missing duration
      "at=2s fail fail dev=ssd0",                 // two actions
      "at=2s at=3s fail dev=ssd0",                // duplicate key
  };
  for (const char* spec : bad) {
    auto r = FaultPlan::parse(spec);
    EXPECT_FALSE(r.is_ok()) << "accepted: " << spec;
  }
}

TEST(FaultPlan, EmptySpecIsAnEmptyPlan) {
  auto r = FaultPlan::parse("  ;  ; ");
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().empty());
}

// --- injector --------------------------------------------------------------

struct InjectorRig {
  std::vector<std::unique_ptr<blockdev::MemDisk>> ssds;
  std::unique_ptr<blockdev::MemDisk> primary;

  explicit InjectorRig(u32 n = 2) {
    blockdev::MemDiskConfig mc;
    mc.capacity_blocks = 1024;
    for (u32 i = 0; i < n; ++i)
      ssds.push_back(std::make_unique<blockdev::MemDisk>(mc));
    primary = std::make_unique<blockdev::MemDisk>(mc);
  }

  [[nodiscard]] std::vector<blockdev::BlockDevice*> ptrs() const {
    std::vector<blockdev::BlockDevice*> v;
    for (const auto& s : ssds) v.push_back(s.get());
    return v;
  }
};

TEST(FaultInjector, FiresAtRelativeTimeTriggers) {
  InjectorRig rig;
  FaultInjector inj(
      FaultPlan::parse_or_die("at=1s fail dev=ssd1; at=2s heal dev=ssd1"));
  inj.attach_ssds(rig.ptrs());
  inj.set_epoch(10 * sim::kSec);  // triggers are window-relative

  EXPECT_FALSE(inj.advance(10 * sim::kSec + 999 * sim::kMs, 0));
  EXPECT_FALSE(rig.ssds[1]->failed());
  EXPECT_EQ(inj.first_fire_time(), -1);

  EXPECT_TRUE(inj.advance(11 * sim::kSec, 0));
  EXPECT_TRUE(rig.ssds[1]->failed());
  EXPECT_EQ(inj.first_fire_time(), 11 * sim::kSec);
  EXPECT_EQ(inj.events_fired(), 1u);
  EXPECT_EQ(inj.events_pending(), 1u);

  EXPECT_TRUE(inj.advance(12 * sim::kSec, 0));
  EXPECT_FALSE(rig.ssds[1]->failed());
  EXPECT_EQ(inj.events_pending(), 0u);
  // Nothing left to fire.
  EXPECT_FALSE(inj.advance(60 * sim::kSec, 1 << 20));
}

TEST(FaultInjector, FiresAtOpCountTriggers) {
  InjectorRig rig;
  FaultInjector inj(
      FaultPlan::parse_or_die("at=ops:100 latent dev=ssd0 lba=0..16"));
  inj.attach_ssds(rig.ptrs());

  EXPECT_FALSE(inj.advance(1, 99));
  EXPECT_TRUE(inj.advance(2, 100));
  EXPECT_EQ(inj.ledger().injected(), 16u);
  EXPECT_EQ(inj.ledger().undetected(), 16u);  // nothing has read them yet
  u64 tag = 0;
  auto r = rig.ssds[0]->read(100, 3, 1, std::span<u64>(&tag, 1));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, ErrorCode::kMediaError);
  // Remap-on-write clears the error.
  const u64 fresh = 42;
  rig.ssds[0]->write(200, 3, 1, std::span<const u64>(&fresh, 1));
  r = rig.ssds[0]->read(300, 3, 1, std::span<u64>(&tag, 1));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(tag, fresh);
}

TEST(FaultInjector, SeededCorruptionIsDeterministic) {
  auto run_once = [] {
    InjectorRig rig;
    // Known content first so corruption is observable.
    std::vector<u64> tags(256);
    for (u64 i = 0; i < tags.size(); ++i) tags[i] = 0x1000 + i;
    rig.ssds[0]->write(0, 0, static_cast<u32>(tags.size()),
                       std::span<const u64>(tags));
    FaultInjector inj(FaultPlan::parse_or_die(
        "at=1s corrupt dev=ssd0 lba=0..256 count=16", /*seed=*/99));
    inj.attach_ssds(rig.ptrs());
    inj.advance(1 * sim::kSec, 0);
    std::vector<u64> corrupted;
    for (u64 i = 0; i < tags.size(); ++i) {
      u64 tag = 0;
      rig.ssds[0]->read(2 * sim::kSec, i, 1, std::span<u64>(&tag, 1));
      if (tag != tags[i]) corrupted.push_back(i);
    }
    return corrupted;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_FALSE(a.empty());
  EXPECT_LE(a.size(), 16u);
  EXPECT_EQ(a, b);  // same plan + seed => same blocks, bit for bit
}

TEST(FaultInjector, PowercutInvokesCallback) {
  InjectorRig rig;
  FaultInjector inj(FaultPlan::parse_or_die("at=ops:10 powercut"));
  inj.attach_ssds(rig.ptrs());
  sim::SimTime cut_at = -1;
  inj.set_powercut_callback([&cut_at](sim::SimTime t) { cut_at = t; });
  inj.advance(5 * sim::kSec, 10);
  EXPECT_EQ(cut_at, 5 * sim::kSec);
  EXPECT_EQ(inj.ledger().injected(), 1u);
}

TEST(FaultInjector, RejectsPlansTargetingMissingDevices) {
  InjectorRig rig(2);
  FaultInjector inj(FaultPlan::parse_or_die("at=1s fail dev=ssd5"));
  EXPECT_THROW(inj.attach_ssds(rig.ptrs()), std::invalid_argument);
}

TEST(FaultInjector, ExportsReconcilingMetrics) {
  InjectorRig rig;
  FaultInjector inj(
      FaultPlan::parse_or_die("at=1s corrupt dev=ssd0 lba=0..4"));
  inj.attach_ssds(rig.ptrs());
  obs::MetricsRegistry registry;
  inj.register_metrics(obs::Scope(registry, "fault"));
  inj.advance(1 * sim::kSec, 0);
  inj.ledger().record_detected(0, 1);
  inj.ledger().record_repaired(0, 1);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("fault.injected"), 4u);
  EXPECT_EQ(snap.counters.at("fault.detected"), 1u);
  EXPECT_EQ(snap.counters.at("fault.repaired"), 1u);
  EXPECT_EQ(snap.counters.at("fault.undetected"), 3u);
  EXPECT_EQ(snap.counters.at("fault.events_fired"), 1u);
  EXPECT_EQ(snap.counters.at("fault.injected"),
            snap.counters.at("fault.detected") +
                snap.counters.at("fault.undetected"));
}

TEST(FaultLedger, ReinjectionReopensARepairedRecord) {
  FaultLedger led;
  led.record_injected(FaultKind::kCorrupt, 0, 7);
  EXPECT_TRUE(led.record_detected(0, 7));
  EXPECT_TRUE(led.record_repaired(0, 7));
  // Same block corrupted again: must be detected (and repaired) afresh.
  led.record_injected(FaultKind::kCorrupt, 0, 7);
  EXPECT_EQ(led.injected(), 2u);
  EXPECT_EQ(led.detected(), 0u);
  EXPECT_EQ(led.repaired(), 0u);
  EXPECT_TRUE(led.record_detected(0, 7));
  EXPECT_TRUE(led.reconciles());
  // Reports that match no injected fault are ignored.
  EXPECT_FALSE(led.record_detected(3, 1234));
  EXPECT_FALSE(led.record_repaired(3, 1234));
  EXPECT_TRUE(led.reconciles());
}

}  // namespace
}  // namespace srcache::fault
