#include <gtest/gtest.h>

#include "block/mem_disk.hpp"

namespace srcache::blockdev {
namespace {

MemDiskConfig small_cfg() {
  MemDiskConfig cfg;
  cfg.capacity_blocks = 1024;
  cfg.op_latency = 10 * sim::kUs;
  cfg.bandwidth_mbps = 1000.0;
  cfg.flush_latency = 100 * sim::kUs;
  return cfg;
}

TEST(MemDisk, Capacity) {
  MemDisk d(small_cfg());
  EXPECT_EQ(d.capacity_blocks(), 1024u);
}

TEST(MemDisk, RejectsZeroCapacity) {
  MemDiskConfig cfg = small_cfg();
  cfg.capacity_blocks = 0;
  EXPECT_THROW(MemDisk{cfg}, std::invalid_argument);
}

TEST(MemDisk, WriteThenReadReturnsTags) {
  MemDisk d(small_cfg());
  const std::vector<u64> tags = {11, 22, 33};
  ASSERT_TRUE(d.write(0, 5, 3, tags).ok());
  std::vector<u64> out(3, 0);
  ASSERT_TRUE(d.read(0, 5, 3, out).ok());
  EXPECT_EQ(out, tags);
}

TEST(MemDisk, UnwrittenBlocksReadZero) {
  MemDisk d(small_cfg());
  std::vector<u64> out(2, 99);
  ASSERT_TRUE(d.read(0, 100, 2, out).ok());
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 0u);
}

TEST(MemDisk, OutOfBoundsRejected) {
  MemDisk d(small_cfg());
  EXPECT_EQ(d.read(0, 1023, 2, {}).error, ErrorCode::kInvalidArgument);
  EXPECT_EQ(d.write(0, 1024, 1, {}).error, ErrorCode::kInvalidArgument);
}

TEST(MemDisk, TimingIncludesLatencyAndTransfer) {
  MemDisk d(small_cfg());
  // 1 block = 4096 B at 1000 MB/s = 4.096 us, + 10 us latency.
  const auto r = d.write(0, 0, 1, {});
  EXPECT_EQ(r.done, 10 * sim::kUs + 4096);
}

TEST(MemDisk, OpsQueueOnDevice) {
  MemDisk d(small_cfg());
  const auto r1 = d.write(0, 0, 1, {});
  const auto r2 = d.write(0, 1, 1, {});
  EXPECT_GT(r2.done, r1.done);
}

TEST(MemDisk, PayloadRoundTrip) {
  MemDisk d(small_cfg());
  auto p = std::make_shared<std::vector<u8>>(std::vector<u8>{1, 2, 3});
  ASSERT_TRUE(d.write_payload(0, 7, p).ok());
  auto r = d.read_payload(0, 7, nullptr);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r.value(), (std::vector<u8>{1, 2, 3}));
}

TEST(MemDisk, PayloadOverwrittenByPlainWrite) {
  MemDisk d(small_cfg());
  d.write_payload(0, 7, std::make_shared<std::vector<u8>>(std::vector<u8>{1}));
  d.write(0, 7, 1, {});
  EXPECT_EQ(d.read_payload(0, 7, nullptr).code(), ErrorCode::kNotFound);
}

TEST(MemDisk, PayloadSpansBlocks) {
  MemDisk d(small_cfg());
  auto big = std::make_shared<std::vector<u8>>(kBlockSize + 100, u8{7});
  ASSERT_TRUE(d.write_payload(0, 10, big).ok());
  ASSERT_TRUE(d.read_payload(0, 10, nullptr).is_ok());
  // The second spanned block has no payload anchor of its own.
  EXPECT_FALSE(d.read_payload(0, 11, nullptr).is_ok());
}

TEST(MemDisk, TrimDiscardsContent) {
  MemDisk d(small_cfg());
  const std::vector<u64> tags = {5};
  d.write(0, 3, 1, tags);
  ASSERT_TRUE(d.trim(0, 3, 1).ok());
  std::vector<u64> out(1, 77);
  d.read(0, 3, 1, out);
  EXPECT_EQ(out[0], 0u);
}

TEST(MemDisk, FailedDeviceRejectsEverything) {
  MemDisk d(small_cfg());
  d.fail();
  EXPECT_TRUE(d.failed());
  EXPECT_EQ(d.read(0, 0, 1, {}).error, ErrorCode::kDeviceFailed);
  EXPECT_EQ(d.write(0, 0, 1, {}).error, ErrorCode::kDeviceFailed);
  EXPECT_EQ(d.flush(0).error, ErrorCode::kDeviceFailed);
  EXPECT_EQ(d.trim(0, 0, 1).error, ErrorCode::kDeviceFailed);
  d.heal();
  EXPECT_TRUE(d.read(0, 0, 1, {}).ok());
}

TEST(MemDisk, CorruptFlipsTag) {
  MemDisk d(small_cfg());
  const std::vector<u64> tags = {0x1234};
  d.write(0, 9, 1, tags);
  d.corrupt(9);
  std::vector<u64> out(1);
  d.read(0, 9, 1, out);
  EXPECT_NE(out[0], 0x1234u);
}

TEST(MemDisk, CorruptBreaksPayload) {
  MemDisk d(small_cfg());
  auto p = std::make_shared<std::vector<u8>>(std::vector<u8>{1, 2, 3, 4});
  d.write_payload(0, 4, p);
  d.corrupt(4);
  auto r = d.read_payload(0, 4, nullptr);
  ASSERT_TRUE(r.is_ok());
  EXPECT_NE(*r.value(), (std::vector<u8>{1, 2, 3, 4}));
}

TEST(MemDisk, StatsAccumulate) {
  MemDisk d(small_cfg());
  d.write(0, 0, 4, {});
  d.read(0, 0, 2, {});
  d.flush(0);
  d.trim(0, 0, 8);
  const DeviceStats& s = d.stats();
  EXPECT_EQ(s.write_ops, 1u);
  EXPECT_EQ(s.write_blocks, 4u);
  EXPECT_EQ(s.read_ops, 1u);
  EXPECT_EQ(s.read_blocks, 2u);
  EXPECT_EQ(s.flushes, 1u);
  EXPECT_EQ(s.trim_blocks, 8u);
}

TEST(DeviceStatsOps, Subtraction) {
  DeviceStats a{10, 100, 20, 200, 3, 1, 8};
  DeviceStats b{4, 40, 5, 50, 1, 0, 0};
  const DeviceStats d = a - b;
  EXPECT_EQ(d.read_ops, 6u);
  EXPECT_EQ(d.write_blocks, 150u);
  EXPECT_EQ(d.total_blocks(), 60u + 150u);
}

TEST(MakeTag, DistinctPerLbaAndVersion) {
  EXPECT_NE(make_tag(1, 1), make_tag(2, 1));
  EXPECT_NE(make_tag(1, 1), make_tag(1, 2));
}

}  // namespace
}  // namespace srcache::blockdev
