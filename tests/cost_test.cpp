#include <gtest/gtest.h>

#include "cost/cost_model.hpp"

namespace srcache::cost {
namespace {

ArrayConfig mlc_array() {
  ArrayConfig a;
  a.spec = flash::spec_a_mlc_sata();
  a.count = 4;
  return a;
}

TEST(CostModel, ArrayTotals) {
  const ArrayConfig a = mlc_array();
  EXPECT_DOUBLE_EQ(a.total_price(), 418.0);
  EXPECT_DOUBLE_EQ(a.total_capacity_bytes(), 4.0 * 128 * GiB);
  EXPECT_NEAR(a.gb_per_dollar(), 4.0 * 128 * 1.073741824 / 418.0, 1e-6);
}

TEST(CostModel, LifetimeArithmetic) {
  // endurance 3000 cycles x 512 GiB total / (512 GB/day x WA 2)
  const ArrayConfig a = mlc_array();
  const double days = lifetime_days(a, 512e9, 2.0);
  const double expected = 3000.0 * 4 * 128 * 1073741824.0 / (512e9 * 2.0);
  EXPECT_NEAR(days, expected, 1e-6);
  EXPECT_GT(days, 1000.0);
}

TEST(CostModel, HigherWaShortensLifetime) {
  const ArrayConfig a = mlc_array();
  EXPECT_GT(lifetime_days(a, 512e9, 1.2), lifetime_days(a, 512e9, 2.4));
}

TEST(CostModel, TlcShorterLifePerDollarTradeoff) {
  ArrayConfig mlc = mlc_array();
  ArrayConfig tlc;
  tlc.spec = flash::spec_a_tlc_sata();
  tlc.count = 4;
  const double mlc_days = lifetime_days(mlc, 512e9, 1.5);
  const double tlc_days = lifetime_days(tlc, 512e9, 1.5);
  EXPECT_GT(mlc_days, tlc_days);  // 3K vs 1K P/E cycles
  // But TLC is cheaper per GB.
  EXPECT_GT(tlc.gb_per_dollar(), mlc.gb_per_dollar());
}

TEST(CostModel, EvaluateComposes) {
  const ArrayConfig a = mlc_array();
  const CostReport r = evaluate(a, 500.0, 512e9, 1.6);
  EXPECT_DOUBLE_EQ(r.throughput_mbps, 500.0);
  EXPECT_NEAR(r.mbps_per_dollar, 500.0 / 418.0, 1e-9);
  EXPECT_NEAR(r.lifetime_days_per_dollar, r.lifetime_days / 418.0, 1e-9);
}

TEST(CostModel, RejectsNonPositive) {
  EXPECT_THROW(lifetime_days(mlc_array(), 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(lifetime_days(mlc_array(), 1.0, 0.0), std::invalid_argument);
}

TEST(CostModel, NvmeSingleDriveCostProfile) {
  ArrayConfig nvme;
  nvme.spec = flash::spec_c_mlc_nvme();
  nvme.count = 1;
  const ArrayConfig sata = mlc_array();
  // The NVMe drive costs more than the whole SATA array (Table 12).
  EXPECT_GT(nvme.total_price(), sata.total_price());
  // And offers less endurance headroom per dollar.
  const double nvme_ld = lifetime_days(nvme, 512e9, 1.5) / nvme.total_price();
  const double sata_ld = lifetime_days(sata, 512e9, 1.5) / sata.total_price();
  EXPECT_GT(sata_ld, nvme_ld * 0.9);
}

}  // namespace
}  // namespace srcache::cost
