#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "flash/ftl.hpp"

namespace srcache::flash {
namespace {

FtlConfig tiny_cfg(double ops = 0.1) {
  FtlConfig cfg;
  cfg.units = 4;
  cfg.pages_per_block = 64;
  cfg.exported_pages = 16 * 1024;  // 64 MiB logical
  cfg.ops_fraction = ops;
  return cfg;
}

TEST(Ftl, RejectsBadConfig) {
  FtlConfig cfg = tiny_cfg();
  cfg.exported_pages = 0;
  EXPECT_THROW(Ftl{cfg}, std::invalid_argument);
}

TEST(Ftl, EraseGroupPages) {
  EXPECT_EQ(tiny_cfg().erase_group_pages(), 4u * 64u);
}

TEST(Ftl, MapsWrittenPages) {
  Ftl ftl(tiny_cfg());
  EXPECT_FALSE(ftl.is_mapped(5));
  ftl.write(5);
  EXPECT_TRUE(ftl.is_mapped(5));
  EXPECT_EQ(ftl.mapped_pages(), 1u);
}

TEST(Ftl, OverwriteKeepsSingleMapping) {
  Ftl ftl(tiny_cfg());
  ftl.write(5);
  const u32 p1 = ftl.l2p(5);
  ftl.write(5);
  const u32 p2 = ftl.l2p(5);
  EXPECT_NE(p1, p2);  // out-of-place update
  EXPECT_EQ(ftl.mapped_pages(), 1u);
}

TEST(Ftl, StripesAcrossUnits) {
  // Consecutive writes land in different flash blocks (one open block per
  // parallel unit) — the mechanism behind the large erase group.
  Ftl ftl(tiny_cfg());
  const u64 ppb = ftl.config().pages_per_block;
  ftl.write(0);
  ftl.write(1);
  ftl.write(2);
  ftl.write(3);
  const u32 b0 = ftl.l2p(0) / ppb;
  const u32 b1 = ftl.l2p(1) / ppb;
  const u32 b2 = ftl.l2p(2) / ppb;
  const u32 b3 = ftl.l2p(3) / ppb;
  EXPECT_NE(b0, b1);
  EXPECT_NE(b1, b2);
  EXPECT_NE(b2, b3);
  EXPECT_NE(b0, b3);
}

TEST(Ftl, SequentialFillNoGc) {
  Ftl ftl(tiny_cfg(0.1));
  for (u64 p = 0; p < ftl.config().exported_pages; ++p) ftl.write(p);
  EXPECT_DOUBLE_EQ(ftl.stats().write_amplification(), 1.0);
  EXPECT_EQ(ftl.stats().blocks_erased, 0u);
}

TEST(Ftl, SequentialOverwriteStaysNearWaOne) {
  Ftl ftl(tiny_cfg(0.1));
  const u64 n = ftl.config().exported_pages;
  for (int pass = 0; pass < 3; ++pass)
    for (u64 p = 0; p < n; ++p) ftl.write(p);
  // Whole erase groups are invalidated together: GC finds empty victims.
  EXPECT_LT(ftl.stats().write_amplification(), 1.05);
}

TEST(Ftl, RandomOverwriteCausesGcCopies) {
  Ftl ftl(tiny_cfg(0.1));
  const u64 n = ftl.config().exported_pages;
  for (u64 p = 0; p < n; ++p) ftl.write(p);  // fill
  common::Xoshiro256 rng(42);
  for (u64 i = 0; i < 4 * n; ++i) ftl.write(rng.below(n));
  EXPECT_GT(ftl.stats().write_amplification(), 1.5);
  EXPECT_GT(ftl.stats().blocks_erased, 0u);
}

TEST(Ftl, MoreOpsLowersWriteAmplification) {
  auto run = [](double ops) {
    Ftl ftl(tiny_cfg(ops));
    const u64 n = ftl.config().exported_pages;
    for (u64 p = 0; p < n; ++p) ftl.write(p);
    common::Xoshiro256 rng(7);
    for (u64 i = 0; i < 4 * n; ++i) ftl.write(rng.below(n));
    return ftl.stats().write_amplification();
  };
  const double wa_low_ops = run(0.05);
  const double wa_high_ops = run(0.40);
  EXPECT_LT(wa_high_ops, wa_low_ops);
}

TEST(Ftl, EraseGroupAlignedOverwritesAvoidGc) {
  // Overwriting whole erase groups (units × block pages, temporally
  // contiguous) leaves only fully-invalid victims: WA stays ~1 even at
  // low OPS. This is the Fig. 2 saturation mechanism.
  Ftl ftl(tiny_cfg(0.05));
  const u64 n = ftl.config().exported_pages;
  const u64 eg = ftl.config().erase_group_pages();
  for (u64 p = 0; p < n; ++p) ftl.write(p);
  common::Xoshiro256 rng(9);
  const u64 groups = n / eg;
  for (u64 i = 0; i < 6 * groups; ++i) {
    const u64 g = rng.below(groups);
    for (u64 p = g * eg; p < (g + 1) * eg; ++p) ftl.write(p);
  }
  EXPECT_LT(ftl.stats().write_amplification(), 1.1);
}

TEST(Ftl, SubEraseGroupOverwritesCauseGc) {
  // Same volume, but in quarter-erase-group extents: victims are ~75%
  // valid, so GC must copy.
  Ftl ftl(tiny_cfg(0.05));
  const u64 n = ftl.config().exported_pages;
  const u64 ext = ftl.config().erase_group_pages() / 4;
  for (u64 p = 0; p < n; ++p) ftl.write(p);
  common::Xoshiro256 rng(9);
  const u64 extents = n / ext;
  for (u64 i = 0; i < 6 * extents; ++i) {
    const u64 e = rng.below(extents);
    for (u64 p = e * ext; p < (e + 1) * ext; ++p) ftl.write(p);
  }
  EXPECT_GT(ftl.stats().write_amplification(), 1.3);
}

TEST(Ftl, TrimUnmapsAndFreesSpace) {
  Ftl ftl(tiny_cfg(0.1));
  const u64 n = ftl.config().exported_pages;
  for (u64 p = 0; p < n; ++p) ftl.write(p);
  ftl.trim(0, n / 2);
  EXPECT_EQ(ftl.mapped_pages(), n / 2);
  EXPECT_FALSE(ftl.is_mapped(0));
  EXPECT_TRUE(ftl.is_mapped(n / 2));
  // Rewriting the trimmed half should find GC-free victims.
  const auto before = ftl.stats().gc_pages_copied;
  for (u64 p = 0; p < n / 2; ++p) ftl.write(p);
  EXPECT_EQ(ftl.stats().gc_pages_copied, before);
}

TEST(Ftl, TrimBeyondCapacityClamps) {
  Ftl ftl(tiny_cfg());
  ftl.write(1);
  ftl.trim(0, ~0ull);  // must not crash
  EXPECT_EQ(ftl.mapped_pages(), 0u);
}

TEST(Ftl, WriteBeyondCapacityThrows) {
  Ftl ftl(tiny_cfg());
  EXPECT_THROW(ftl.write(ftl.config().exported_pages), std::out_of_range);
}

TEST(Ftl, WearTracking) {
  Ftl ftl(tiny_cfg(0.1));
  const u64 n = ftl.config().exported_pages;
  common::Xoshiro256 rng(3);
  for (u64 i = 0; i < 6 * n; ++i) ftl.write(rng.below(n));
  EXPECT_GT(ftl.max_erase_count(), 0u);
  EXPECT_GT(ftl.mean_erase_count(), 0.0);
  EXPECT_GE(ftl.max_erase_count(), static_cast<u32>(ftl.mean_erase_count()));
}

TEST(Ftl, ValidCountInvariant) {
  // Mapped pages must equal the sum of block valid counts at all times.
  Ftl ftl(tiny_cfg(0.08));
  const u64 n = ftl.config().exported_pages;
  common::Xoshiro256 rng(5);
  for (u64 i = 0; i < 3 * n; ++i) {
    if (rng.chance(0.05)) {
      const u64 start = rng.below(n);
      ftl.trim(start, rng.below(64) + 1);
    } else {
      ftl.write(rng.below(n));
    }
  }
  // Re-derive the census through the public mapping view.
  u64 mapped = 0;
  for (u64 p = 0; p < n; ++p) mapped += ftl.is_mapped(p) ? 1 : 0;
  EXPECT_EQ(mapped, ftl.mapped_pages());
}

TEST(Ftl, FreeBlocksStayAboveFloor) {
  Ftl ftl(tiny_cfg(0.06));
  const u64 n = ftl.config().exported_pages;
  common::Xoshiro256 rng(6);
  for (u64 i = 0; i < 5 * n; ++i) {
    ftl.write(rng.below(n));
    ASSERT_GT(ftl.free_blocks(), 0u);
  }
}

}  // namespace
}  // namespace srcache::flash
