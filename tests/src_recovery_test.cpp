#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "src_test_util.hpp"

namespace srcache::src {
namespace {

using testutil::Rig;
using testutil::small_config;

TEST(SrcRecovery, EmptyCacheRecovers) {
  Rig rig;
  rig.reattach();  // crash with nothing written
  EXPECT_TRUE(rig.cache->recover(0).is_ok());
  EXPECT_EQ(rig.cache->cached_blocks(), 0u);
  EXPECT_EQ(rig.cache->free_sg_count(), rig.cfg.sg_count() - 1);
}

TEST(SrcRecovery, SealedDirtyDataSurvivesCrash) {
  Rig rig;
  const u64 cap = rig.cfg.segment_data_slots(true);
  std::vector<u64> tags(cap);
  for (u64 i = 0; i < cap; ++i) {
    tags[i] = 0x9000 + i;
    rig.write(0, i, 1, &tags[i]);
  }
  rig.reattach();  // crash: all RAM state gone
  ASSERT_TRUE(rig.cache->recover(0).is_ok());
  EXPECT_EQ(rig.cache->cached_blocks(), cap);
  for (u64 i = 0; i < cap; ++i) {
    ASSERT_EQ(rig.cache->residence(i), SrcCache::Residence::kCachedDirty) << i;
    u64 out = 0;
    rig.read(1000, i, 1, &out);
    ASSERT_EQ(out, tags[i]) << i;
  }
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok());
}

TEST(SrcRecovery, CleanDataPersists) {
  // Unlike Bcache/Flashcache (Table 5), SRC keeps clean data across
  // restarts because clean segments carry full metadata too.
  Rig rig;
  const u64 clean_cap = rig.cfg.segment_data_slots(false);
  const std::vector<u64> ptag = {777};
  rig.primary->write(0, 100000, 1, ptag);
  sim::SimTime t = 0;
  for (u64 i = 0; i < clean_cap; ++i) t = rig.read(t, 100000 + i);
  ASSERT_EQ(rig.cache->residence(100000), SrcCache::Residence::kCachedClean);
  rig.reattach();
  sim::SimTime recovered_at = 0;
  ASSERT_TRUE(rig.cache->recover(0, &recovered_at).is_ok());
  EXPECT_EQ(rig.cache->residence(100000), SrcCache::Residence::kCachedClean);
  u64 out = 0;
  const auto done = rig.read(recovered_at, 100000, 1, &out);
  EXPECT_EQ(out, 777u);
  // Served from SSD, not the disk.
  EXPECT_LT(done - recovered_at, 5 * sim::kMs);
}

TEST(SrcRecovery, BufferedDataIsLostWithinTwaitWindow) {
  Rig rig;
  rig.write(0, 42);  // still in the segment buffer
  rig.reattach();
  ASSERT_TRUE(rig.cache->recover(0).is_ok());
  EXPECT_EQ(rig.cache->residence(42), SrcCache::Residence::kAbsent);
}

TEST(SrcRecovery, NewestGenerationWinsForRewrittenBlocks) {
  Rig rig;
  const u64 cap = rig.cfg.segment_data_slots(true);
  const u64 old_tag = 1, new_tag = 2;
  rig.write(0, 7, 1, &old_tag);
  for (u64 i = 0; i < cap - 1; ++i) rig.write(0, 1000 + i);  // seal #1
  rig.write(1, 7, 1, &new_tag);
  for (u64 i = 0; i < cap - 1; ++i) rig.write(1, 2000 + i);  // seal #2
  rig.reattach();
  ASSERT_TRUE(rig.cache->recover(0).is_ok());
  u64 out = 0;
  rig.read(10, 7, 1, &out);
  EXPECT_EQ(out, new_tag);
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok());
}

TEST(SrcRecovery, TornSegmentDiscarded) {
  Rig rig;
  const u64 cap = rig.cfg.segment_data_slots(true);
  // First, a complete segment.
  for (u64 i = 0; i < cap; ++i) rig.write(0, i);
  // Then a torn one: crash after MS, before data/ME.
  rig.cache->set_crash_point(SrcCache::CrashPoint::kAfterMs);
  for (u64 i = 0; i < cap; ++i) rig.write(1, 5000 + i);
  rig.reattach();
  ASSERT_TRUE(rig.cache->recover(0).is_ok());
  // Complete segment recovered, torn one discarded.
  EXPECT_EQ(rig.cache->residence(0), SrcCache::Residence::kCachedDirty);
  EXPECT_EQ(rig.cache->residence(5000), SrcCache::Residence::kAbsent);
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok());
}

TEST(SrcRecovery, TornAfterDataAlsoDiscarded) {
  Rig rig;
  const u64 cap = rig.cfg.segment_data_slots(true);
  rig.cache->set_crash_point(SrcCache::CrashPoint::kAfterData);
  for (u64 i = 0; i < cap; ++i) rig.write(0, i);
  rig.reattach();
  ASSERT_TRUE(rig.cache->recover(0).is_ok());
  EXPECT_EQ(rig.cache->cached_blocks(), 0u);
}

TEST(SrcRecovery, CorruptSuperblockRejected) {
  Rig rig;
  for (auto& ssd : rig.ssds) ssd->corrupt(0);  // superblock block on each
  rig.reattach();
  const Status s = rig.cache->recover(0);
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kCorrupted);
}

TEST(SrcRecovery, SuperblockSurvivesSingleSsdCorruption) {
  Rig rig;
  rig.ssds[0]->corrupt(0);  // only one replica damaged
  rig.reattach();
  EXPECT_TRUE(rig.cache->recover(0).is_ok());
}

TEST(SrcRecovery, GeometryMismatchRejected) {
  Rig rig;
  SrcConfig other = rig.cfg;
  other.chunk_bytes = 64 * KiB;
  other.erase_group_bytes = 512 * KiB;
  std::vector<blockdev::BlockDevice*> devs;
  for (auto& s : rig.ssds) devs.push_back(s.get());
  SrcCache wrong(other, devs, rig.primary.get());
  EXPECT_EQ(wrong.recover(0).code(), ErrorCode::kInvalidArgument);
}

TEST(SrcRecovery, ReclaimedSgNotResurrected) {
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kS2D;
  cfg.victim = VictimPolicy::kFifo;
  Rig rig(cfg);
  const u64 per_sg = cfg.segments_per_sg() * cfg.segment_data_slots(true);
  const u64 tag = 0xCAFE;
  rig.write(0, 0, 1, &tag);
  // Fill far enough that block 0's SG is reclaimed (destaged + trimmed).
  sim::SimTime t = 0;
  for (u64 i = 0; i < per_sg * (cfg.sg_count() + 1); ++i)
    t = rig.write(t, 10 + i);
  ASSERT_EQ(rig.cache->residence(0), SrcCache::Residence::kAbsent);
  rig.reattach();
  ASSERT_TRUE(rig.cache->recover(0).is_ok());
  // The trimmed segment's metadata must not bring the block back.
  EXPECT_EQ(rig.cache->residence(0), SrcCache::Residence::kAbsent);
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok());
}

TEST(SrcRecovery, WritesContinueAfterRecovery) {
  Rig rig;
  const u64 cap = rig.cfg.segment_data_slots(true);
  for (u64 i = 0; i < cap; ++i) rig.write(0, i);
  rig.reattach();
  ASSERT_TRUE(rig.cache->recover(0).is_ok());
  // Cache is fully usable: fill several more SGs.
  sim::SimTime t = 0;
  for (u64 i = 0; i < cap * 20; ++i) t = rig.write(t, 10000 + i);
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok())
      << rig.cache->verify_consistency().to_string();
}

TEST(SrcRecovery, RandomWorkloadCrashRecoverEquivalence) {
  // Property: after crash+recover, every block that was in a *sealed*
  // segment reads back with its last sealed value.
  Rig rig;
  common::Xoshiro256 rng(23);
  std::unordered_map<u64, u64> model;  // expectations, maintained via tags
  sim::SimTime t = 0;
  for (int i = 0; i < 4000; ++i) {
    const u64 lba = rng.below(3000);
    const u64 tag = rng.next() | 1;
    t = rig.write(t, lba, 1, &tag);
    model[lba] = tag;
  }
  // Snapshot which blocks are sealed (on SSD) before the crash.
  std::vector<std::pair<u64, u64>> sealed;
  for (const auto& [lba, tag] : model) {
    if (rig.cache->residence(lba) == SrcCache::Residence::kCachedDirty)
      sealed.emplace_back(lba, tag);
  }
  ASSERT_FALSE(sealed.empty());
  rig.reattach();
  ASSERT_TRUE(rig.cache->recover(0).is_ok());
  for (const auto& [lba, tag] : sealed) {
    u64 out = 0;
    rig.read(1000, lba, 1, &out);
    ASSERT_EQ(out, tag) << "lba " << lba;
  }
}

}  // namespace
}  // namespace srcache::src
