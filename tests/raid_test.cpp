#include <gtest/gtest.h>

#include <memory>

#include "block/mem_disk.hpp"
#include "common/rng.hpp"
#include "raid/raid_device.hpp"
#include "raid/rebuild.hpp"

namespace srcache::raid {
namespace {

using blockdev::MemDisk;
using blockdev::MemDiskConfig;

struct Rig {
  std::vector<std::unique_ptr<MemDisk>> disks;
  std::unique_ptr<RaidDevice> raid;

  Rig(RaidLevel level, u32 chunk, int n = 4, u64 blocks_per_dev = 4096) {
    MemDiskConfig cfg;
    cfg.capacity_blocks = blocks_per_dev;
    cfg.op_latency = 10 * sim::kUs;
    for (int i = 0; i < n; ++i) disks.push_back(std::make_unique<MemDisk>(cfg));
    std::vector<blockdev::BlockDevice*> members;
    for (auto& d : disks) members.push_back(d.get());
    raid = std::make_unique<RaidDevice>(RaidConfig{level, chunk}, members);
  }
};

// --- construction -------------------------------------------------------------

TEST(Raid, CapacityPerLevel) {
  EXPECT_EQ(Rig(RaidLevel::kRaid0, 4).raid->capacity_blocks(), 4u * 4096u);
  EXPECT_EQ(Rig(RaidLevel::kRaid1, 4).raid->capacity_blocks(), 2u * 4096u);
  EXPECT_EQ(Rig(RaidLevel::kRaid4, 4).raid->capacity_blocks(), 3u * 4096u);
  EXPECT_EQ(Rig(RaidLevel::kRaid5, 4).raid->capacity_blocks(), 3u * 4096u);
}

TEST(Raid, RejectsBadConfigs) {
  MemDiskConfig cfg;
  std::vector<blockdev::BlockDevice*> one;
  MemDisk d(cfg);
  one.push_back(&d);
  EXPECT_THROW(RaidDevice(RaidConfig{RaidLevel::kRaid0, 1}, one),
               std::invalid_argument);
}

TEST(Raid, Raid1NeedsEvenCount) {
  MemDiskConfig cfg;
  MemDisk a(cfg), b(cfg), c(cfg);
  std::vector<blockdev::BlockDevice*> three{&a, &b, &c};
  EXPECT_THROW(RaidDevice(RaidConfig{RaidLevel::kRaid1, 1}, three),
               std::invalid_argument);
}

// --- content round trips across levels and chunk sizes (property sweep) -------

struct RoundTripParam {
  RaidLevel level;
  u32 chunk;
};

class RaidRoundTrip : public ::testing::TestWithParam<RoundTripParam> {};

TEST_P(RaidRoundTrip, RandomWritesReadBack) {
  const auto p = GetParam();
  Rig rig(p.level, p.chunk);
  common::Xoshiro256 rng(1234);
  // Model of expected contents.
  std::vector<u64> model(rig.raid->capacity_blocks(), 0);
  for (int op = 0; op < 400; ++op) {
    const u32 n = static_cast<u32>(rng.range(1, 16));
    const u64 lba = rng.below(rig.raid->capacity_blocks() - n);
    std::vector<u64> tags(n);
    for (u32 i = 0; i < n; ++i) {
      tags[i] = rng.next() | 1;
      model[lba + i] = tags[i];
    }
    ASSERT_TRUE(rig.raid->write(0, lba, n, tags).ok());
  }
  for (int probe = 0; probe < 300; ++probe) {
    const u32 n = static_cast<u32>(rng.range(1, 16));
    const u64 lba = rng.below(rig.raid->capacity_blocks() - n);
    std::vector<u64> out(n, 0);
    ASSERT_TRUE(rig.raid->read(0, lba, n, out).ok());
    for (u32 i = 0; i < n; ++i) EXPECT_EQ(out[i], model[lba + i]);
  }
}

TEST_P(RaidRoundTrip, ParityConsistentAfterRandomWrites) {
  const auto p = GetParam();
  Rig rig(p.level, p.chunk);
  common::Xoshiro256 rng(77);
  for (int op = 0; op < 300; ++op) {
    const u32 n = static_cast<u32>(rng.range(1, 24));
    const u64 lba = rng.below(rig.raid->capacity_blocks() - n);
    std::vector<u64> tags(n);
    for (u32 i = 0; i < n; ++i) tags[i] = rng.next();
    ASSERT_TRUE(rig.raid->write(0, lba, n, tags).ok());
    EXPECT_TRUE(rig.raid->verify_parity(lba)) << "op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(
    LevelsAndChunks, RaidRoundTrip,
    ::testing::Values(RoundTripParam{RaidLevel::kRaid0, 1},
                      RoundTripParam{RaidLevel::kRaid0, 16},
                      RoundTripParam{RaidLevel::kRaid1, 1},
                      RoundTripParam{RaidLevel::kRaid1, 8},
                      RoundTripParam{RaidLevel::kRaid4, 1},
                      RoundTripParam{RaidLevel::kRaid4, 8},
                      RoundTripParam{RaidLevel::kRaid5, 1},
                      RoundTripParam{RaidLevel::kRaid5, 4},
                      RoundTripParam{RaidLevel::kRaid5, 16}),
    [](const auto& info) {
      return std::string(to_string(info.param.level)).substr(5) + "_chunk" +
             std::to_string(info.param.chunk);
    });

// --- small-write behaviour ------------------------------------------------------

TEST(Raid5, FullStripeWriteAvoidsReads) {
  Rig rig(RaidLevel::kRaid5, 4);  // stripe = 3 data chunks of 4 = 12 blocks
  const u64 before_reads = rig.raid->stats().read_blocks;
  std::vector<u64> tags(12, 1);
  ASSERT_TRUE(rig.raid->write(0, 0, 12, tags).ok());
  EXPECT_EQ(rig.raid->stats().read_blocks, before_reads);
  EXPECT_EQ(rig.raid->raid_stats().full_stripe_writes, 1u);
  // 12 data + 4 parity blocks written.
  EXPECT_EQ(rig.raid->stats().write_blocks, 16u);
}

TEST(Raid5, SmallWriteTriggersRmw) {
  Rig rig(RaidLevel::kRaid5, 4);
  std::vector<u64> tag = {42};
  ASSERT_TRUE(rig.raid->write(0, 0, 1, tag).ok());
  EXPECT_EQ(rig.raid->raid_stats().rmw_writes, 1u);
  // Read old data + old parity, write new data + new parity.
  EXPECT_EQ(rig.raid->stats().read_blocks, 2u);
  EXPECT_EQ(rig.raid->stats().write_blocks, 2u);
}

TEST(Raid5, NearFullStripeUsesReconstructWrite) {
  Rig rig(RaidLevel::kRaid5, 4);
  // 11 of 12 data blocks: reconstruct (1 read) beats RMW (11+rows reads).
  std::vector<u64> tags(11, 3);
  ASSERT_TRUE(rig.raid->write(0, 0, 11, tags).ok());
  EXPECT_EQ(rig.raid->raid_stats().reconstruct_writes, 1u);
  EXPECT_EQ(rig.raid->stats().read_blocks, 1u);
}

TEST(Raid5, SmallWritesCostMoreThanRaid0) {
  // The small-write problem (§2.2): same workload, higher device traffic.
  Rig r5(RaidLevel::kRaid5, 1);
  Rig r0(RaidLevel::kRaid0, 1);
  common::Xoshiro256 rng(5);
  for (int i = 0; i < 200; ++i) {
    const u64 lba = rng.below(r5.raid->capacity_blocks());
    std::vector<u64> tag = {rng.next()};
    r5.raid->write(0, lba, 1, tag);
    r0.raid->write(0, lba % r0.raid->capacity_blocks(), 1, tag);
  }
  const u64 t5 = r5.raid->stats().total_blocks();
  const u64 t0 = r0.raid->stats().total_blocks();
  EXPECT_GE(t5, 4 * t0 - 4);  // 4 I/Os per small write vs 1
}

// --- degraded operation -----------------------------------------------------------

class RaidDegraded : public ::testing::TestWithParam<RaidLevel> {};

TEST_P(RaidDegraded, ReadsSurviveSingleFailure) {
  Rig rig(GetParam(), 4);
  common::Xoshiro256 rng(9);
  std::vector<u64> model(rig.raid->capacity_blocks(), 0);
  for (int op = 0; op < 200; ++op) {
    const u64 lba = rng.below(rig.raid->capacity_blocks());
    std::vector<u64> tag = {rng.next() | 1};
    model[lba] = tag[0];
    ASSERT_TRUE(rig.raid->write(0, lba, 1, tag).ok());
  }
  rig.disks[1]->fail();
  EXPECT_FALSE(rig.raid->failed());  // still serviceable
  for (int probe = 0; probe < 200; ++probe) {
    const u64 lba = rng.below(rig.raid->capacity_blocks());
    std::vector<u64> out(1, 0);
    ASSERT_TRUE(rig.raid->read(0, lba, 1, out).ok());
    EXPECT_EQ(out[0], model[lba]);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, RaidDegraded,
                         ::testing::Values(RaidLevel::kRaid1, RaidLevel::kRaid4,
                                           RaidLevel::kRaid5),
                         [](const auto& info) {
                           return std::string(to_string(info.param)).substr(5);
                         });

TEST(Raid0, FailureIsFatal) {
  Rig rig(RaidLevel::kRaid0, 4);
  rig.raid->write(0, 0, 1, {});
  rig.disks[0]->fail();
  EXPECT_TRUE(rig.raid->failed());
  std::vector<u64> out(1);
  EXPECT_EQ(rig.raid->read(0, 0, 1, out).error, ErrorCode::kDeviceFailed);
}

TEST(Raid5, WritesContinueDegraded) {
  Rig rig(RaidLevel::kRaid5, 4);
  rig.disks[2]->fail();
  std::vector<u64> tags(4, 5);
  ASSERT_TRUE(rig.raid->write(0, 0, 4, tags).ok());
  std::vector<u64> out(4);
  ASSERT_TRUE(rig.raid->read(0, 0, 4, out).ok());
  for (u64 t : out) EXPECT_EQ(t, 5u);
}

TEST(Raid5, RebuildRestoresContent) {
  Rig rig(RaidLevel::kRaid5, 4, 4, 512);
  common::Xoshiro256 rng(11);
  std::vector<u64> model(rig.raid->capacity_blocks(), 0);
  for (u64 lba = 0; lba < rig.raid->capacity_blocks(); ++lba) {
    std::vector<u64> tag = {rng.next() | 1};
    model[lba] = tag[0];
    rig.raid->write(0, lba, 1, tag);
  }
  rig.disks[1]->fail();
  rig.disks[1]->heal();  // replacement drive, but stale/blank content
  // Wipe the "replacement" to simulate a fresh drive.
  rig.disks[1]->trim(0, 0, rig.disks[1]->capacity_blocks());
  ASSERT_TRUE(rig.raid->rebuild(0, 1).ok());
  for (u64 lba = 0; lba < rig.raid->capacity_blocks(); ++lba) {
    std::vector<u64> out(1);
    ASSERT_TRUE(rig.raid->read(0, lba, 1, out).ok());
    ASSERT_EQ(out[0], model[lba]) << lba;
  }
}

// Degraded writes with multi-block chunks: the write path must keep parity
// consistent while one member is down, across runs that straddle chunk and
// stripe boundaries, for both the dedicated-parity and rotated layouts.
class RaidDegradedWrites : public ::testing::TestWithParam<RaidLevel> {};

TEST_P(RaidDegradedWrites, MultiBlockChunkWritesReadBackDegraded) {
  Rig rig(GetParam(), 4);  // chunk_blocks = 4 > 1, stripe = 12 data blocks
  common::Xoshiro256 rng(21);
  std::vector<u64> model(rig.raid->capacity_blocks(), 0);
  for (int op = 0; op < 150; ++op) {
    const u32 n = static_cast<u32>(rng.range(1, 20));
    const u64 lba = rng.below(rig.raid->capacity_blocks() - n);
    std::vector<u64> tags(n);
    for (u32 i = 0; i < n; ++i) {
      tags[i] = rng.next() | 1;
      model[lba + i] = tags[i];
    }
    ASSERT_TRUE(rig.raid->write(0, lba, n, tags).ok());
  }
  rig.disks[2]->fail();
  EXPECT_FALSE(rig.raid->failed());
  for (int op = 0; op < 150; ++op) {
    // Lengths up to 20 blocks cross chunk (4) and stripe (12) boundaries,
    // exercising RMW, reconstruct and full-stripe paths while degraded.
    const u32 n = static_cast<u32>(rng.range(1, 20));
    const u64 lba = rng.below(rig.raid->capacity_blocks() - n);
    std::vector<u64> tags(n);
    for (u32 i = 0; i < n; ++i) {
      tags[i] = rng.next() | 1;
      model[lba + i] = tags[i];
    }
    ASSERT_TRUE(rig.raid->write(0, lba, n, tags).ok()) << "op " << op;
  }
  for (u64 lba = 0; lba < rig.raid->capacity_blocks(); ++lba) {
    std::vector<u64> out(1, 0);
    ASSERT_TRUE(rig.raid->read(0, lba, 1, out).ok()) << lba;
    ASSERT_EQ(out[0], model[lba]) << lba;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, RaidDegradedWrites,
                         ::testing::Values(RaidLevel::kRaid4,
                                           RaidLevel::kRaid5),
                         [](const auto& info) {
                           return std::string(to_string(info.param)).substr(5);
                         });

// A double fault exceeds every single-redundancy level's tolerance. The
// contract is an explicit error, never a fabricated tag: a read that claims
// success must return the true value; reads needing both lost members fail.
class RaidDoubleFault : public ::testing::TestWithParam<RaidLevel> {};

TEST_P(RaidDoubleFault, ReadsErrorNotGarbage) {
  const RaidLevel level = GetParam();
  Rig rig(level, 4, 4, 512);
  common::Xoshiro256 rng(33);
  std::vector<u64> model(rig.raid->capacity_blocks(), 0);
  for (u64 lba = 0; lba < rig.raid->capacity_blocks(); ++lba) {
    std::vector<u64> tag = {rng.next() | 1};
    model[lba] = tag[0];
    ASSERT_TRUE(rig.raid->write(0, lba, 1, tag).ok());
  }
  // RAID-1 pairs are (dev, dev^1): kill both members of pair 0. Parity
  // levels lose any two members.
  rig.disks[0]->fail();
  rig.disks[1]->fail();
  u64 errors = 0;
  for (u64 lba = 0; lba < rig.raid->capacity_blocks(); ++lba) {
    constexpr u64 kSentinel = 0xDEADBEEFDEADBEEFull;
    std::vector<u64> out(1, kSentinel);
    const auto r = rig.raid->read(0, lba, 1, out);
    if (r.ok()) {
      ASSERT_EQ(out[0], model[lba]) << "garbage served at lba " << lba;
    } else {
      ++errors;
    }
  }
  // RAID-1 loses exactly the half of the address space mapped to pair 0;
  // parity levels lose every data block living on the two dead members
  // (about 2/3 of them) — reconstruction hits the second failure. Blocks on
  // survivors still read directly; the contract is they stay correct.
  EXPECT_GT(errors, 0u);
  if (level == RaidLevel::kRaid1) {
    EXPECT_EQ(errors, rig.raid->capacity_blocks() / 2);
  } else {
    EXPECT_GE(errors, rig.raid->capacity_blocks() / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, RaidDoubleFault,
                         ::testing::Values(RaidLevel::kRaid1, RaidLevel::kRaid4,
                                           RaidLevel::kRaid5),
                         [](const auto& info) {
                           return std::string(to_string(info.param)).substr(5);
                         });

TEST(Raid1, ReadsBalanceAcrossMirrors) {
  Rig rig(RaidLevel::kRaid1, 4);
  rig.raid->write(0, 0, 1, {});
  for (int i = 0; i < 100; ++i) rig.raid->read(0, 0, 1, {});
  // Both mirrors of pair 0 should have served reads.
  EXPECT_GT(rig.disks[0]->stats().read_ops, 20u);
  EXPECT_GT(rig.disks[1]->stats().read_ops, 20u);
}

TEST(Raid, TrimFullStripesReachesParity) {
  Rig rig(RaidLevel::kRaid5, 4);
  std::vector<u64> tags(12, 9);
  rig.raid->write(0, 0, 12, tags);
  ASSERT_TRUE(rig.raid->trim(0, 0, 12).ok());
  u64 trimmed = 0;
  for (auto& d : rig.disks) trimmed += d->stats().trim_blocks;
  EXPECT_EQ(trimmed, 16u);  // 12 data + 4 parity blocks
}

TEST(Raid, PayloadWithinChunkRoundTrips) {
  Rig rig(RaidLevel::kRaid5, 8);
  auto p = std::make_shared<std::vector<u8>>(std::vector<u8>{1, 2, 3});
  ASSERT_TRUE(rig.raid->write_payload(0, 8, p).ok());
  auto r = rig.raid->read_payload(0, 8, nullptr);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r.value(), (std::vector<u8>{1, 2, 3}));
}

TEST(Raid, TimingOverlapsAcrossDevices) {
  // A full-stripe write should take about one device-op time, not four.
  Rig rig(RaidLevel::kRaid0, 4);
  std::vector<u64> tags(4, 1);
  const auto r = rig.raid->write(0, 0, 4, tags);
  EXPECT_LT(r.done, 2 * (10 * sim::kUs + 5 * sim::kUs));
}

// --- background rebuild engine (raid/rebuild.hpp) ---------------------------

constexpr u64 kDevBlocks = 512;

// Fill a rig's full address space with distinct tags; returns the model.
std::vector<u64> fill_all(Rig& rig, u64 seed) {
  common::Xoshiro256 rng(seed);
  std::vector<u64> model(rig.raid->capacity_blocks(), 0);
  for (u64 lba = 0; lba < model.size(); ++lba) {
    std::vector<u64> tag = {rng.next() | 1};
    model[lba] = tag[0];
    EXPECT_TRUE(rig.raid->write(0, lba, 1, tag).ok());
  }
  return model;
}

TEST(Rebuild, MirrorSweepRestoresContent) {
  Rig rig(RaidLevel::kRaid1, 1, 4, kDevBlocks);
  const auto model = fill_all(rig, 101);

  RebuildConfig cfg;
  cfg.mbps = 1e6;  // effectively unthrottled: one pump finishes the sweep
  std::vector<blockdev::BlockDevice*> members;
  for (auto& d : rig.disks) members.push_back(d.get());
  RebuildManager mgr(cfg, members);
  mgr.set_extent_source(full_sweep_source(RaidLevel::kRaid1, kDevBlocks));

  rig.disks[1]->fail();
  mgr.on_device_failed(1, 0);
  EXPECT_FALSE(mgr.rebuilding());

  rig.disks[1]->replace_media();  // blank swap-in
  mgr.on_device_replaced(1, sim::kMs);
  EXPECT_TRUE(mgr.rebuilding());
  EXPECT_TRUE(mgr.covers(1, 0));
  EXPECT_EQ(mgr.blocks_at_risk(), kDevBlocks);

  mgr.pump(sim::kSec);
  EXPECT_FALSE(mgr.rebuilding());
  EXPECT_FALSE(mgr.covers(1, 0));

  const RebuildOutcome o = mgr.outcome();
  EXPECT_EQ(o.rebuilds_started, 1u);
  EXPECT_EQ(o.rebuilds_completed, 1u);
  EXPECT_EQ(o.rebuilds_aborted, 0u);
  EXPECT_EQ(o.spares_used, 1u);
  EXPECT_EQ(o.blocks_copied, kDevBlocks);
  EXPECT_EQ(o.blocks_unrecovered, 0u);
  EXPECT_EQ(o.write_bytes, kDevBlocks * kBlockSize);
  EXPECT_EQ(o.blocks_at_risk_peak, kDevBlocks);
  EXPECT_GT(o.degraded_ns, 0);

  for (u64 lba = 0; lba < rig.raid->capacity_blocks(); ++lba) {
    std::vector<u64> out(1, 0);
    ASSERT_TRUE(rig.raid->read(0, lba, 1, out).ok());
    ASSERT_EQ(out[0], model[lba]) << lba;
  }
}

TEST(Rebuild, ParitySweepRestoresContent) {
  Rig rig(RaidLevel::kRaid5, 4, 4, kDevBlocks);
  const auto model = fill_all(rig, 202);

  RebuildConfig cfg;
  cfg.mbps = 1e6;
  std::vector<blockdev::BlockDevice*> members;
  for (auto& d : rig.disks) members.push_back(d.get());
  RebuildManager mgr(cfg, members);
  mgr.set_extent_source(full_sweep_source(RaidLevel::kRaid5, kDevBlocks));

  rig.disks[2]->fail();
  mgr.on_device_failed(2, 0);
  rig.disks[2]->replace_media();
  mgr.on_device_replaced(2, sim::kMs);
  mgr.pump(sim::kSec);
  EXPECT_FALSE(mgr.rebuilding());

  const RebuildOutcome o = mgr.outcome();
  EXPECT_EQ(o.rebuilds_completed, 1u);
  EXPECT_EQ(o.blocks_copied, kDevBlocks);
  // XOR decode reads every survivor: 3 reads per rebuilt block.
  EXPECT_EQ(o.read_bytes, 3 * kDevBlocks * kBlockSize);

  for (u64 lba = 0; lba < rig.raid->capacity_blocks(); ++lba) {
    std::vector<u64> out(1, 0);
    ASSERT_TRUE(rig.raid->read(0, lba, 1, out).ok());
    ASSERT_EQ(out[0], model[lba]) << lba;
  }
}

TEST(Rebuild, RateLimitPacesCopy) {
  Rig rig(RaidLevel::kRaid5, 4, 4, kDevBlocks);
  fill_all(rig, 303);

  RebuildConfig cfg;
  cfg.mbps = 1.0;  // 1 MB/s = ~244 blocks/s of 4 KiB
  std::vector<blockdev::BlockDevice*> members;
  for (auto& d : rig.disks) members.push_back(d.get());
  RebuildManager mgr(cfg, members);
  mgr.set_extent_source(full_sweep_source(RaidLevel::kRaid5, kDevBlocks));

  rig.disks[1]->fail();
  mgr.on_device_failed(1, 0);
  rig.disks[1]->replace_media();
  mgr.on_device_replaced(1, 0);

  // 100 ms at 1 MB/s is a 100 KB budget: ~24 blocks, nowhere near done.
  mgr.pump(100 * sim::kMs);
  EXPECT_TRUE(mgr.rebuilding());
  const u64 early = mgr.outcome().blocks_copied;
  EXPECT_GT(early, 0u);
  EXPECT_LT(early, 100u);
  // Double-pumping the same instant must not copy more (idempotence).
  mgr.pump(100 * sim::kMs);
  EXPECT_EQ(mgr.outcome().blocks_copied, early);
  // Enough virtual time finishes the sweep.
  mgr.pump(10 * sim::kSec);
  EXPECT_FALSE(mgr.rebuilding());
  EXPECT_EQ(mgr.outcome().blocks_copied, kDevBlocks);
}

TEST(Rebuild, SecondFailureAbortsAndMasksDead) {
  Rig rig(RaidLevel::kRaid5, 4, 4, kDevBlocks);
  fill_all(rig, 404);

  RebuildConfig cfg;
  cfg.mbps = 1.0;
  std::vector<blockdev::BlockDevice*> members;
  for (auto& d : rig.disks) members.push_back(d.get());
  RebuildManager mgr(cfg, members);
  mgr.set_extent_source(full_sweep_source(RaidLevel::kRaid5, kDevBlocks));
  u64 lost_blocks = 0;
  size_t lost_dev = SIZE_MAX;
  mgr.set_abort_callback(
      [&](size_t dev, const std::vector<RebuildExtent>& lost) {
        lost_dev = dev;
        for (const auto& ex : lost) lost_blocks += ex.count;
      });

  rig.disks[1]->fail();
  mgr.on_device_failed(1, 0);
  rig.disks[1]->replace_media();
  mgr.on_device_replaced(1, 0);
  mgr.pump(100 * sim::kMs);  // partial copy
  const u64 copied = mgr.outcome().blocks_copied;
  ASSERT_TRUE(mgr.rebuilding());

  // Second failure: every still-pending parity extent needs disk 3.
  rig.disks[3]->fail();
  mgr.on_device_failed(3, sim::kSec);

  EXPECT_EQ(lost_dev, 1u);
  EXPECT_EQ(lost_blocks, kDevBlocks - copied);
  const RebuildOutcome o = mgr.outcome();
  EXPECT_EQ(o.rebuilds_aborted, 1u);
  EXPECT_EQ(o.rebuilds_completed, 0u);
  EXPECT_EQ(o.blocks_unrecovered, kDevBlocks - copied);
  // Copied blocks are served; lost blocks stay masked forever — a blank
  // device must never satisfy a read with fabricated zero tags.
  EXPECT_FALSE(mgr.covers(1, 0));
  EXPECT_TRUE(mgr.covers(1, kDevBlocks - 1));
  // Further pumping is a no-op: nothing is left to rebuild.
  mgr.pump(10 * sim::kSec);
  EXPECT_EQ(mgr.outcome().blocks_copied, copied);
}

TEST(Rebuild, DiscardSkipsFreshlyWrittenBlocks) {
  Rig rig(RaidLevel::kRaid5, 4, 4, kDevBlocks);
  fill_all(rig, 505);

  RebuildConfig cfg;
  cfg.mbps = 1e6;
  std::vector<blockdev::BlockDevice*> members;
  for (auto& d : rig.disks) members.push_back(d.get());
  RebuildManager mgr(cfg, members);
  mgr.set_extent_source(full_sweep_source(RaidLevel::kRaid5, kDevBlocks));

  rig.disks[0]->fail();
  mgr.on_device_failed(0, 0);
  rig.disks[0]->replace_media();
  mgr.on_device_replaced(0, 0);

  // Fresh content lands on the first half of the device (a seal/trim path
  // would report it via discard): rebuild must not overwrite it with a
  // stale decode, so only the second half is copied.
  mgr.discard(0, kDevBlocks / 2);
  EXPECT_FALSE(mgr.covers(0, 0));

  mgr.pump(sim::kSec);
  EXPECT_FALSE(mgr.rebuilding());
  const RebuildOutcome o = mgr.outcome();
  EXPECT_EQ(o.blocks_copied, kDevBlocks / 2);
  EXPECT_EQ(o.blocks_skipped, kDevBlocks / 2);
  EXPECT_EQ(o.rebuilds_completed, 1u);
}

TEST(Rebuild, SpareDeficitIsReported) {
  Rig rig(RaidLevel::kRaid1, 1, 4, kDevBlocks);
  RebuildConfig cfg;
  cfg.spares = 0;  // empty pool: a replace still proceeds but is flagged
  std::vector<blockdev::BlockDevice*> members;
  for (auto& d : rig.disks) members.push_back(d.get());
  RebuildManager mgr(cfg, members);
  mgr.set_extent_source(full_sweep_source(RaidLevel::kRaid1, kDevBlocks));

  rig.disks[1]->fail();
  mgr.on_device_failed(1, 0);
  rig.disks[1]->replace_media();
  mgr.on_device_replaced(1, 0);
  mgr.pump(sim::kSec);

  const RebuildOutcome o = mgr.outcome();
  EXPECT_EQ(o.spares_total, 0u);
  EXPECT_EQ(o.spares_used, 1u);  // used > total: deficit visible in JSON
}

}  // namespace
}  // namespace srcache::raid
