#include <gtest/gtest.h>

#include <memory>
#include <queue>

#include "baselines/bcache_like.hpp"
#include "baselines/flashcache_like.hpp"
#include "block/mem_disk.hpp"
#include "common/rng.hpp"

namespace srcache::baselines {
namespace {

using blockdev::MemDisk;
using blockdev::MemDiskConfig;
using cache::AppRequest;

struct Rig {
  std::unique_ptr<MemDisk> ssd;
  std::unique_ptr<MemDisk> primary;

  Rig() {
    MemDiskConfig fast;
    fast.capacity_blocks = 64 * MiB / kBlockSize;
    fast.op_latency = 20 * sim::kUs;
    fast.bandwidth_mbps = 500.0;
    fast.flush_latency = 4 * sim::kMs;
    ssd = std::make_unique<MemDisk>(fast);
    MemDiskConfig slow;
    slow.capacity_blocks = 256 * MiB / kBlockSize;
    slow.op_latency = 5 * sim::kMs;  // disk-like
    slow.bandwidth_mbps = 110.0;
    primary = std::make_unique<MemDisk>(slow);
  }
};

FlashcacheConfig fc_cfg(u64 cache_blocks = 8192) {
  FlashcacheConfig cfg;
  cfg.cache_blocks = cache_blocks;
  cfg.set_blocks = 512;
  return cfg;
}

BcacheConfig bc_cfg(u64 cache_blocks = 8192) {
  BcacheConfig cfg;
  cfg.cache_blocks = cache_blocks;
  cfg.bucket_blocks = 512;
  return cfg;
}

AppRequest wreq(sim::SimTime now, u64 lba, u32 n = 1, const u64* tags = nullptr) {
  AppRequest r;
  r.now = now;
  r.is_write = true;
  r.lba = lba;
  r.nblocks = n;
  r.tags = tags;
  return r;
}

AppRequest rreq(sim::SimTime now, u64 lba, u32 n = 1, u64* out = nullptr) {
  AppRequest r;
  r.now = now;
  r.lba = lba;
  r.nblocks = n;
  r.tags_out = out;
  return r;
}

// --- Flashcache ------------------------------------------------------------------

TEST(Flashcache, RejectsEmpty) {
  Rig rig;
  FlashcacheConfig cfg;
  EXPECT_THROW(FlashcacheLike(cfg, rig.ssd.get(), rig.primary.get()),
               std::invalid_argument);
}

TEST(Flashcache, WriteThenReadHits) {
  Rig rig;
  FlashcacheLike fc(fc_cfg(), rig.ssd.get(), rig.primary.get());
  const u64 tag = 777;
  fc.submit(wreq(0, 100, 1, &tag));
  u64 out = 0;
  fc.submit(rreq(1000, 100, 1, &out));
  EXPECT_EQ(out, 777u);
  EXPECT_EQ(fc.stats().read_hit_blocks, 1u);
  EXPECT_EQ(fc.stats().read_miss_blocks, 0u);
}

TEST(Flashcache, MissFetchesFromPrimaryAndCaches) {
  Rig rig;
  FlashcacheLike fc(fc_cfg(), rig.ssd.get(), rig.primary.get());
  const std::vector<u64> ptags = {55};
  rig.primary->write(0, 200, 1, ptags);
  u64 out = 0;
  fc.submit(rreq(0, 200, 1, &out));
  EXPECT_EQ(out, 55u);
  EXPECT_EQ(fc.stats().read_miss_blocks, 1u);
  out = 0;
  fc.submit(rreq(1, 200, 1, &out));
  EXPECT_EQ(out, 55u);
  EXPECT_EQ(fc.stats().read_hit_blocks, 1u);
}

TEST(Flashcache, DirtyWritesAddMetadataTraffic) {
  Rig rig;
  FlashcacheLike fc(fc_cfg(), rig.ssd.get(), rig.primary.get());
  const auto before = rig.ssd->stats().write_blocks;
  fc.submit(wreq(0, 1, 1));
  // One data block + one metadata block (§3.1).
  EXPECT_EQ(rig.ssd->stats().write_blocks - before, 2u);
}

TEST(Flashcache, CleanFillsSkipMetadata) {
  Rig rig;
  FlashcacheLike fc(fc_cfg(), rig.ssd.get(), rig.primary.get());
  const auto before = rig.ssd->stats().write_blocks;
  fc.submit(rreq(0, 300));
  EXPECT_EQ(rig.ssd->stats().write_blocks - before, 1u);  // data only
}

TEST(Flashcache, IgnoresFlush) {
  Rig rig;
  FlashcacheLike fc(fc_cfg(), rig.ssd.get(), rig.primary.get());
  fc.submit(wreq(0, 1, 1));
  const auto flushes = rig.ssd->stats().flushes;
  EXPECT_EQ(fc.flush(100), 100);  // immediate ack
  EXPECT_EQ(rig.ssd->stats().flushes, flushes);
}

TEST(Flashcache, WriteThroughWritesPrimary) {
  Rig rig;
  FlashcacheConfig cfg = fc_cfg();
  cfg.write_back = false;
  FlashcacheLike fc(cfg, rig.ssd.get(), rig.primary.get());
  const u64 tag = 3;
  const auto done = fc.submit(wreq(0, 5, 1, &tag));
  EXPECT_EQ(rig.primary->stats().write_blocks, 1u);
  // Ack waits for the slow primary.
  EXPECT_GE(done, 5 * sim::kMs);
  std::vector<u64> out(1);
  rig.primary->read(done, 5, 1, out);
  EXPECT_EQ(out[0], 3u);
}

TEST(Flashcache, WritebackAcksBeforePrimary) {
  Rig rig;
  FlashcacheLike fc(fc_cfg(), rig.ssd.get(), rig.primary.get());
  const auto done = fc.submit(wreq(0, 5, 1));
  EXPECT_LT(done, 5 * sim::kMs);  // SSD-speed ack
  EXPECT_EQ(rig.primary->stats().write_blocks, 0u);
}

TEST(Flashcache, DestagesWhenOverThreshold) {
  Rig rig;
  FlashcacheConfig cfg = fc_cfg(2048);
  cfg.dirty_thresh_pct = 0.10;
  FlashcacheLike fc(cfg, rig.ssd.get(), rig.primary.get());
  sim::SimTime t = 0;
  for (u64 i = 0; i < 1500; ++i) t = fc.submit(wreq(t, i * 7 % 100000));
  EXPECT_GT(fc.stats().destage_blocks, 0u);
  EXPECT_GT(rig.primary->stats().write_blocks, 0u);
  // Tolerant destaging: the ratio may overshoot but must be bounded well
  // below 100%.
  EXPECT_LT(fc.dirty_ratio(), 0.9);
}

TEST(Flashcache, SetConflictEvictsWithinSet) {
  Rig rig;
  // Tiny cache: 2 sets of 512 -> heavy conflict.
  FlashcacheLike fc(fc_cfg(1024), rig.ssd.get(), rig.primary.get());
  sim::SimTime t = 0;
  for (u64 i = 0; i < 5000; ++i) t = fc.submit(rreq(t, i));
  EXPECT_LE(fc.cached_blocks(), 1024u);
  EXPECT_GT(fc.stats().dropped_clean_blocks, 0u);
}

// --- Bcache ----------------------------------------------------------------------

TEST(Bcache, WriteThenReadHits) {
  Rig rig;
  BcacheLike bc(bc_cfg(), rig.ssd.get(), rig.primary.get());
  const u64 tag = 888;
  bc.submit(wreq(0, 40, 1, &tag));
  u64 out = 0;
  bc.submit(rreq(1000, 40, 1, &out));
  EXPECT_EQ(out, 888u);
  EXPECT_EQ(bc.stats().read_hit_blocks, 1u);
}

TEST(Bcache, JournalFlushOnEveryCommit) {
  Rig rig;
  BcacheLike bc(bc_cfg(), rig.ssd.get(), rig.primary.get());
  sim::SimTime t = 0;
  for (int i = 0; i < 10; ++i) t = bc.submit(wreq(t, static_cast<u64>(i) * 1000));
  EXPECT_GT(rig.ssd->stats().flushes, 0u);
}

TEST(Bcache, GroupCommitSharesFlushes) {
  Rig rig;
  BcacheLike bc(bc_cfg(), rig.ssd.get(), rig.primary.get());
  // 64 writes issued at the same instant join few group commits.
  for (int i = 0; i < 64; ++i) bc.submit(wreq(0, static_cast<u64>(i) * 100));
  EXPECT_LT(rig.ssd->stats().flushes, 10u);
}

TEST(Bcache, WriteAckWaitsForJournalFlush) {
  Rig rig;
  BcacheLike bc(bc_cfg(), rig.ssd.get(), rig.primary.get());
  const auto done = bc.submit(wreq(0, 1));
  EXPECT_GE(done, 4 * sim::kMs);  // the flush barrier dominates
}

TEST(Bcache, NoFlushConfigSpeedsAcks) {
  Rig rig;
  BcacheConfig cfg = bc_cfg();
  cfg.flush_on_commit = false;
  BcacheLike bc(cfg, rig.ssd.get(), rig.primary.get());
  const auto done = bc.submit(wreq(0, 1));
  EXPECT_LT(done, 4 * sim::kMs);
}

TEST(Bcache, SequentialAppendsIntoBucket) {
  Rig rig;
  BcacheLike bc(bc_cfg(), rig.ssd.get(), rig.primary.get());
  // Two separate writes land at consecutive log offsets.
  bc.submit(wreq(0, 5000, 4));
  bc.submit(wreq(1, 9000, 4));
  u64 out[4] = {0, 0, 0, 0};
  bc.submit(rreq(2, 9000, 4, out));
  EXPECT_EQ(bc.stats().read_hit_blocks, 4u);
}

TEST(Bcache, CleanFillsSkipJournal) {
  Rig rig;
  BcacheLike bc(bc_cfg(), rig.ssd.get(), rig.primary.get());
  const auto flushes = rig.ssd->stats().flushes;
  bc.submit(rreq(0, 123));
  EXPECT_EQ(rig.ssd->stats().flushes, flushes);  // no journal for clean
}

TEST(Bcache, WritebackDestagesOverThreshold) {
  Rig rig;
  BcacheConfig cfg = bc_cfg(2048);
  cfg.writeback_percent = 0.10;
  BcacheLike bc(cfg, rig.ssd.get(), rig.primary.get());
  sim::SimTime t = 0;
  for (u64 i = 0; i < 1000; ++i) t = bc.submit(wreq(t, i * 13 % 50000));
  EXPECT_GT(bc.stats().destage_blocks, 0u);
  // Aggressive destaging keeps the dirty ratio near the threshold.
  EXPECT_LT(bc.dirty_ratio(), 0.25);
}

TEST(Bcache, BucketReclaimDropsCleanDestagesDirty) {
  Rig rig;
  BcacheConfig cfg = bc_cfg(1024);  // 2 buckets only
  cfg.writeback_percent = 0.95;     // keep destaging out of the way
  BcacheLike bc(cfg, rig.ssd.get(), rig.primary.get());
  sim::SimTime t = 0;
  // Fill with clean (reads) then force reclaim with more fills.
  for (u64 i = 0; i < 3000; ++i) t = bc.submit(rreq(t, i));
  EXPECT_GT(bc.stats().dropped_clean_blocks, 0u);
  EXPECT_LE(bc.cached_blocks(), 1024u);
}

TEST(Bcache, HonorsFlush) {
  Rig rig;
  BcacheLike bc(bc_cfg(), rig.ssd.get(), rig.primary.get());
  const auto before = rig.ssd->stats().flushes;
  bc.flush(0);
  EXPECT_GT(rig.ssd->stats().flushes, before);
}

TEST(Bcache, WriteThroughGoesToPrimary) {
  Rig rig;
  BcacheConfig cfg = bc_cfg();
  cfg.write_back = false;
  BcacheLike bc(cfg, rig.ssd.get(), rig.primary.get());
  const u64 tag = 11;
  bc.submit(wreq(0, 9, 1, &tag));
  std::vector<u64> out(1);
  rig.primary->read(0, 9, 1, out);
  EXPECT_EQ(out[0], 11u);
  EXPECT_EQ(bc.dirty_ratio(), 0.0);
}

// --- shared write-back property: WB beats WT on a slow primary (Table 2) ----------

template <typename Cache, typename Config>
double measure_write_mbps(Config cfg, bool write_back) {
  Rig rig;
  cfg.write_back = write_back;
  // 90% dirty threshold as in the paper's §5.4 configuration, so the
  // write-back path is not destage-bound within the measurement window.
  if constexpr (std::is_same_v<Config, BcacheConfig>) {
    cfg.writeback_percent = 0.9;
  } else {
    cfg.dirty_thresh_pct = 0.9;
  }
  Cache c(cfg, rig.ssd.get(), rig.primary.get());
  common::Xoshiro256 rng(1);
  // Closed loop at queue depth 32 (Table 2 uses iodepth 32 x 4 threads).
  std::priority_queue<std::pair<sim::SimTime, int>,
                      std::vector<std::pair<sim::SimTime, int>>,
                      std::greater<>>
      heap;
  for (int s = 0; s < 32; ++s) heap.emplace(0, s);
  const int ops = 2000;
  sim::SimTime last = 0;
  for (int i = 0; i < ops; ++i) {
    auto [now, stream] = heap.top();
    heap.pop();
    AppRequest r;
    r.now = now;
    r.is_write = true;
    r.lba = rng.below(40000);
    r.nblocks = 1;
    const sim::SimTime done = c.submit(r);
    last = std::max(last, done);
    heap.emplace(done, stream);
  }
  return sim::mb_per_sec(static_cast<u64>(ops) * kBlockSize, last);
}

TEST(Baselines, WritebackBeatsWriteThrough) {
  const double fc_wb = measure_write_mbps<FlashcacheLike>(fc_cfg(8192), true);
  const double fc_wt = measure_write_mbps<FlashcacheLike>(fc_cfg(8192), false);
  EXPECT_GT(fc_wb / fc_wt, 3.0);  // paper: 17.5x on real hardware

  const double bc_wb = measure_write_mbps<BcacheLike>(bc_cfg(8192), true);
  const double bc_wt = measure_write_mbps<BcacheLike>(bc_cfg(8192), false);
  EXPECT_GT(bc_wb / bc_wt, 1.5);  // paper: 4.3x (flush-limited)
}

}  // namespace
}  // namespace srcache::baselines
