#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "sim/time.hpp"
#include "sim/timeline.hpp"

namespace srcache::sim {
namespace {

// --- time helpers -------------------------------------------------------------

TEST(SimTimeUnits, Constants) {
  EXPECT_EQ(kUs, 1000);
  EXPECT_EQ(kMs, 1000 * 1000);
  EXPECT_EQ(kSec, 1000 * 1000 * 1000);
}

TEST(SimTimeUnits, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSec), 2.0);
  EXPECT_DOUBLE_EQ(to_ms(3 * kMs), 3.0);
  EXPECT_DOUBLE_EQ(to_us(5 * kUs), 5.0);
}

TEST(SimTimeUnits, MbPerSec) {
  // 100 MB moved in 1 second -> 100 MB/s.
  EXPECT_NEAR(mb_per_sec(100'000'000, kSec), 100.0, 1e-9);
  EXPECT_EQ(mb_per_sec(1, 0), 0.0);
}

TEST(SimTimeUnits, TransferTime) {
  // 1 MB at 100 MB/s = 10 ms.
  EXPECT_EQ(transfer_time(1'000'000, 100.0), 10 * kMs);
  EXPECT_EQ(transfer_time(123, 0.0), 0);
}

// --- ServiceTimeline -----------------------------------------------------------

TEST(ServiceTimeline, IdleStartsImmediately) {
  ServiceTimeline t;
  EXPECT_EQ(t.submit(100, 50), 150);
}

TEST(ServiceTimeline, BusyQueues) {
  ServiceTimeline t;
  EXPECT_EQ(t.submit(0, 100), 100);
  // Submitted at 10 while busy until 100: starts at 100.
  EXPECT_EQ(t.submit(10, 5), 105);
}

TEST(ServiceTimeline, GapLeavesIdleTime) {
  ServiceTimeline t;
  t.submit(0, 10);
  EXPECT_EQ(t.submit(1000, 10), 1010);
  EXPECT_EQ(t.busy_time(), 20);
}

TEST(ServiceTimeline, Backlog) {
  ServiceTimeline t;
  t.submit(0, 100);
  EXPECT_EQ(t.backlog(30), 70);
  EXPECT_EQ(t.backlog(200), 0);
}

TEST(ServiceTimeline, Reset) {
  ServiceTimeline t;
  t.submit(0, 100);
  t.reset();
  EXPECT_EQ(t.free_at(), 0);
  EXPECT_EQ(t.busy_time(), 0);
}

// --- MultiServer ----------------------------------------------------------------

TEST(MultiServer, ParallelUnitsOverlap) {
  MultiServer m(4);
  // 4 ops of 100 on 4 units all finish at 100.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(m.submit(0, 100), 100);
  // The 5th queues behind one of them.
  EXPECT_EQ(m.submit(0, 100), 200);
}

TEST(MultiServer, AllIdleAt) {
  MultiServer m(2);
  m.submit(0, 10);
  m.submit(0, 30);
  EXPECT_EQ(m.all_idle_at(), 30);
  EXPECT_EQ(m.earliest_free(), 10);
}

TEST(MultiServer, BatchMatchesIndividualSubmits) {
  MultiServer a(8), b(8);
  const SimTime done_a = a.submit_batch(0, 20, 7);
  SimTime done_b = 0;
  for (int i = 0; i < 20; ++i) done_b = std::max(done_b, b.submit(0, 7));
  EXPECT_EQ(done_a, done_b);
  EXPECT_EQ(a.busy_time(), b.busy_time());
}

TEST(MultiServer, BatchZeroIsNoop) {
  MultiServer m(3);
  EXPECT_EQ(m.submit_batch(42, 0, 100), 42);
  EXPECT_EQ(m.busy_time(), 0);
}

TEST(MultiServer, BatchSmallerThanUnits) {
  MultiServer m(8);
  EXPECT_EQ(m.submit_batch(0, 3, 50), 50);
  EXPECT_EQ(m.busy_time(), 150);
}

// The heap-based placement must be observably identical to the original
// linear scan (pick the first unit with the strictly smallest free time):
// engine shards hammer submit() and the obs layer snapshots per-unit busy
// time, so any divergence would break bit-identical replay.
TEST(MultiServer, HeapMatchesLinearScanReference) {
  struct Reference {
    explicit Reference(int units)
        : free_at(static_cast<size_t>(units), 0),
          unit_busy(static_cast<size_t>(units), 0) {}
    SimTime submit(SimTime now, SimTime service) {
      size_t best = 0;
      for (size_t i = 1; i < free_at.size(); ++i)
        if (free_at[i] < free_at[best]) best = i;
      const SimTime start = free_at[best] > now ? free_at[best] : now;
      free_at[best] = start + service;
      unit_busy[best] += service;
      return free_at[best];
    }
    std::vector<SimTime> free_at;
    std::vector<SimTime> unit_busy;
  };

  for (int units : {1, 2, 3, 8, 17}) {
    MultiServer m(units);
    Reference ref(units);
    srcache::common::Xoshiro256 rng(2026u + static_cast<u64>(units));
    SimTime now = 0;
    for (int op = 0; op < 5000; ++op) {
      now += static_cast<SimTime>(rng.below(50));
      // Frequent ties (service times from a tiny set) exercise the
      // lowest-index tie-break; occasional zero-service ops too.
      const SimTime service = static_cast<SimTime>(rng.below(4) * 25);
      ASSERT_EQ(m.submit(now, service), ref.submit(now, service))
          << "units=" << units << " op=" << op;
    }
    SimTime max_free = 0, min_free = ref.free_at[0];
    for (size_t i = 0; i < ref.free_at.size(); ++i) {
      EXPECT_EQ(m.busy_time(i), ref.unit_busy[i]);
      max_free = std::max(max_free, ref.free_at[i]);
      min_free = std::min(min_free, ref.free_at[i]);
    }
    EXPECT_EQ(m.all_idle_at(), max_free);
    EXPECT_EQ(m.earliest_free(), min_free);
    m.reset();
    EXPECT_EQ(m.earliest_free(), 0);
    EXPECT_EQ(m.submit(0, 10), 10);  // heap is rebuilt after reset
  }
}

TEST(MultiServer, PerUnitBusyTimeExposesSkew) {
  MultiServer m(3);
  // One long op lands on the first idle unit; the short ones go elsewhere
  // (earliest-free placement), so the load is visibly skewed per unit even
  // though the aggregate hides it.
  m.submit(0, 300);
  m.submit(0, 10);
  m.submit(0, 10);
  SimTime sum = 0, max_busy = 0, min_busy = m.busy_time();
  for (int i = 0; i < m.units(); ++i) {
    const SimTime b = m.busy_time(static_cast<size_t>(i));
    sum += b;
    max_busy = std::max(max_busy, b);
    min_busy = std::min(min_busy, b);
  }
  EXPECT_EQ(sum, m.busy_time());  // per-unit shares partition the aggregate
  EXPECT_EQ(max_busy, 300);
  EXPECT_EQ(min_busy, 10);
  EXPECT_GT(max_busy, min_busy);  // the skew is observable

  // A symmetric batch spreads evenly: no skew.
  MultiServer even(4);
  even.submit_batch(0, 8, 25);
  for (int i = 0; i < even.units(); ++i)
    EXPECT_EQ(even.busy_time(static_cast<size_t>(i)), 50);

  even.reset();
  for (int i = 0; i < even.units(); ++i)
    EXPECT_EQ(even.busy_time(static_cast<size_t>(i)), 0);
}

TEST(MultiServer, ThroughputScalesWithUnits) {
  // 1000 ops of 10 on k units should take ~10000/k.
  for (int k : {1, 2, 4, 8}) {
    MultiServer m(k);
    const SimTime done = m.submit_batch(0, 1000, 10);
    EXPECT_NEAR(static_cast<double>(done), 10000.0 / k, 10.0 / k + 10);
  }
}

// --- PriorityTimeline ----------------------------------------------------------

TEST(PriorityTimeline, ForegroundIgnoresBackgroundBacklog) {
  PriorityTimeline t;
  t.submit_bg(0, 1000 * kMs);  // a huge background blob
  EXPECT_EQ(t.submit_fg(0, 10), 10);  // fg is not delayed by it
}

TEST(PriorityTimeline, BackgroundWaitsForForeground) {
  PriorityTimeline t;
  t.submit_fg(0, 100);
  EXPECT_EQ(t.submit_bg(0, 50), 150);  // behind the fg work
}

TEST(PriorityTimeline, ForegroundDelaysPendingBackground) {
  PriorityTimeline t;
  t.submit_bg(0, 100);      // bg occupies [0, 100)
  t.submit_fg(0, 50);       // fg inserts 50 of work
  // The next bg op sees both: >= 150.
  EXPECT_GE(t.submit_bg(0, 10), 160);
}

TEST(PriorityTimeline, ForegroundQueuesAmongItself) {
  PriorityTimeline t;
  EXPECT_EQ(t.submit_fg(0, 100), 100);
  EXPECT_EQ(t.submit_fg(0, 100), 200);
}

TEST(PriorityTimeline, CapacityConserved) {
  // Total busy time equals the sum of all service regardless of class mix.
  PriorityTimeline t;
  t.submit_fg(0, 10);
  t.submit_bg(0, 20);
  t.submit_fg(5, 30);
  EXPECT_EQ(t.busy_time(), 60);
}

TEST(PriorityTimeline, DispatchBySwitch) {
  PriorityTimeline t;
  EXPECT_EQ(t.submit(0, 10, false), 10);
  EXPECT_EQ(t.submit(0, 10, true), 20);  // queued behind the fg op
}

TEST(PriorityTimeline, ResetClears) {
  PriorityTimeline t;
  t.submit_fg(0, 100);
  t.submit_bg(0, 100);
  t.reset();
  EXPECT_EQ(t.busy_time(), 0);
  EXPECT_EQ(t.submit_fg(0, 5), 5);
}

// --- BandwidthPipe -----------------------------------------------------------------

TEST(BandwidthPipe, TransfersAtRate) {
  BandwidthPipe p(100.0);  // 100 MB/s
  EXPECT_EQ(p.transfer(0, 1'000'000), 10 * kMs);
}

TEST(BandwidthPipe, SharedBandwidthSerializes) {
  BandwidthPipe p(100.0);
  p.transfer(0, 1'000'000);
  EXPECT_EQ(p.transfer(0, 1'000'000), 20 * kMs);
}

TEST(BandwidthPipe, BacklogVisible) {
  BandwidthPipe p(100.0);
  p.transfer(0, 2'000'000);
  EXPECT_EQ(p.backlog(0), 20 * kMs);
}

}  // namespace
}  // namespace srcache::sim
