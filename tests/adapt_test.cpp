// Tests for src/adapt: ghost-cache MRC profiling (SHARDS sampling, memory
// budget), the greedy partition solver, and the end-to-end acceptance
// scenario — two mismatched tenants on a small SRC rig where the adaptive
// split must beat every static split once it has had 3 epochs to adapt.
#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "adapt/adaptive.hpp"
#include "adapt/ghost_cache.hpp"
#include "adapt/partition.hpp"
#include "src_test_util.hpp"
#include "workload/generators.hpp"
#include "workload/runner.hpp"
#include "workload/trace_synth.hpp"

namespace srcache {
namespace {

using adapt::AdaptConfig;
using adapt::AdaptiveController;
using adapt::GhostCache;
using adapt::PartitionController;

// --- GhostCache -------------------------------------------------------------

GhostCache::Config unsampled(std::vector<u64> sizes) {
  GhostCache::Config cfg;
  cfg.sampling_rate = 1.0;  // exact: every access profiled
  cfg.sizes = std::move(sizes);
  cfg.decay = 1.0;          // no forgetting: counts are exact too
  return cfg;
}

TEST(GhostCache, CyclicReuseClassifiedAtItsStackDepth) {
  // Cycling over 16 blocks: after the cold round every access has stack
  // distance exactly 16 — a miss for any cache smaller than 16 blocks, a
  // hit for any cache of at least 16.
  GhostCache g(unsampled({8, 16, 32}));
  for (int round = 0; round < 10; ++round)
    for (u64 lba = 0; lba < 16; ++lba) g.access(lba);

  const GhostCache::Mrc mrc = g.mrc();
  ASSERT_EQ(mrc.sizes.size(), 3u);
  // 160 accesses, 16 cold misses, 144 hits at depth 16.
  EXPECT_DOUBLE_EQ(mrc.accesses, 160.0);
  EXPECT_DOUBLE_EQ(mrc.miss_ratio[0], 1.0);          // size 8: all miss
  EXPECT_DOUBLE_EQ(mrc.miss_ratio[1], 16.0 / 160.0); // size 16: only cold
  EXPECT_DOUBLE_EQ(mrc.miss_ratio[2], 16.0 / 160.0);
  EXPECT_GT(mrc.hit_ratio_at(16), 0.85);
  EXPECT_LT(mrc.hit_ratio_at(8), 0.05);
}

TEST(GhostCache, SequentialScanIsFlatAllMiss) {
  GhostCache g(unsampled({64, 256}));
  for (u64 lba = 0; lba < 4096; ++lba) g.access(lba);
  const GhostCache::Mrc mrc = g.mrc();
  EXPECT_DOUBLE_EQ(mrc.miss_ratio[0], 1.0);
  EXPECT_DOUBLE_EQ(mrc.miss_ratio[1], 1.0);
  EXPECT_DOUBLE_EQ(mrc.hit_ratio_at(10000), 0.0);
}

TEST(GhostCache, MissRatioMonotoneNonIncreasing) {
  GhostCache::Config cfg;
  cfg.sampling_rate = 1.0;
  cfg.sizes = {16, 32, 64, 128, 256};
  GhostCache g(cfg);
  common::Xoshiro256 rng(11);
  for (int i = 0; i < 20000; ++i) g.access(rng.below(300));
  const GhostCache::Mrc mrc = g.mrc();
  for (size_t k = 1; k < mrc.miss_ratio.size(); ++k)
    EXPECT_LE(mrc.miss_ratio[k], mrc.miss_ratio[k - 1] + 1e-12) << k;
}

TEST(GhostCache, ShardsMemoryStaysWithinBudget) {
  GhostCache::Config cfg;
  cfg.sampling_rate = 0.01;
  cfg.max_entries = 512;
  cfg.sizes = {1 << 16, 1 << 18, 1 << 20};  // ladder far beyond the cap
  GhostCache g(cfg);
  for (u64 lba = 0; lba < 1'000'000; ++lba) g.access(lba);

  EXPECT_LE(g.entries(), 512u);
  EXPECT_LE(g.max_entries(), 512u);
  // The budget holds in bytes too: per-entry cost is a small constant.
  const size_t per_entry_bound = 128;
  EXPECT_LE(g.memory_bytes(), 512 * per_entry_bound + 4096);
}

TEST(GhostCache, SamplingPreservesCurveShape) {
  // The sampled curve must approximate the exact one: uniform reuse over
  // 200 blocks has a sharp knee at size 200.
  GhostCache::Config exact = unsampled({100, 200, 400});
  GhostCache::Config sampled = exact;
  sampled.sampling_rate = 0.25;
  GhostCache ge(exact), gs(sampled);
  common::Xoshiro256 rng(5);
  for (int i = 0; i < 100000; ++i) {
    const u64 lba = rng.below(200);
    ge.access(lba);
    gs.access(lba);
  }
  const auto me = ge.mrc(), ms = gs.mrc();
  for (size_t k = 0; k < me.miss_ratio.size(); ++k)
    EXPECT_NEAR(ms.miss_ratio[k], me.miss_ratio[k], 0.08) << k;
}

TEST(GhostCache, EpochDecayAgesCounts) {
  GhostCache g(unsampled({8}));
  for (int round = 0; round < 4; ++round)
    for (u64 lba = 0; lba < 4; ++lba) g.access(lba);
  const double before = g.mrc().accesses;
  g.new_epoch();  // decay 1.0 in unsampled() — switch to a decaying config
  EXPECT_DOUBLE_EQ(g.mrc().accesses, before);

  GhostCache::Config cfg = unsampled({8});
  cfg.decay = 0.5;
  GhostCache h(cfg);
  for (u64 lba = 0; lba < 4; ++lba) h.access(lba);
  h.new_epoch();
  EXPECT_DOUBLE_EQ(h.mrc().accesses, 2.0);
}

// --- PartitionController ----------------------------------------------------

GhostCache::Mrc linear_mrc(u64 cap, double best_hit) {
  // Hit ratio rising linearly to best_hit at full capacity.
  GhostCache::Mrc m;
  for (u64 k = 1; k <= 8; ++k) {
    m.sizes.push_back(cap * k / 8);
    m.miss_ratio.push_back(1.0 - best_hit * static_cast<double>(k) / 8.0);
  }
  m.accesses = 1000.0;
  return m;
}

GhostCache::Mrc flat_mrc(u64 cap) {
  GhostCache::Mrc m;
  for (u64 k = 1; k <= 8; ++k) {
    m.sizes.push_back(cap * k / 8);
    m.miss_ratio.push_back(1.0);
  }
  m.accesses = 1000.0;
  return m;
}

PartitionController::Config pc_config(u64 cap) {
  PartitionController::Config cfg;
  cfg.capacity_blocks = cap;
  cfg.min_share = 0.05;
  cfg.hysteresis = 0.0;
  return cfg;
}

TEST(Partition, GreedyStarvesTheFlatTenant) {
  const u64 cap = 10000;
  PartitionController pc(pc_config(cap));
  const std::vector<GhostCache::Mrc> mrcs = {linear_mrc(cap, 0.8),
                                             flat_mrc(cap)};
  const std::vector<u64> shares = pc.solve(mrcs, {1000.0, 1000.0}, {});
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares[0] + shares[1], cap);
  // The scan-shaped tenant gets exactly its floor; everything else goes to
  // the tenant whose curve rewards capacity.
  EXPECT_EQ(shares[1], static_cast<u64>(0.05 * cap));
  EXPECT_GE(shares[0], static_cast<u64>(0.95 * cap));
}

TEST(Partition, WeightsBiasTheSplit) {
  const u64 cap = 10000;
  PartitionController::Config cfg = pc_config(cap);
  cfg.weights = {1.0, 4.0};  // tenant 1's misses cost 4x
  PartitionController pc(cfg);
  const std::vector<GhostCache::Mrc> mrcs = {linear_mrc(cap, 0.8),
                                             linear_mrc(cap, 0.8)};
  const std::vector<u64> shares = pc.solve(mrcs, {1000.0, 1000.0}, {});
  EXPECT_GT(shares[1], shares[0]);
}

TEST(Partition, HysteresisKeepsPreviousSplit) {
  const u64 cap = 10000;
  PartitionController::Config cfg = pc_config(cap);
  cfg.hysteresis = 0.5;  // only a move > 50% of capacity may rebalance
  PartitionController pc(cfg);
  const std::vector<GhostCache::Mrc> mrcs = {linear_mrc(cap, 0.8),
                                             linear_mrc(cap, 0.6)};
  const std::vector<u64> prev = {cap / 2, cap / 2};
  EXPECT_EQ(pc.solve(mrcs, {1000.0, 1000.0}, prev), prev);
  // Without hysteresis the same inputs do move.
  PartitionController loose(pc_config(cap));
  EXPECT_NE(loose.solve(mrcs, {1000.0, 1000.0}, prev), prev);
}

TEST(Partition, ColdStartFallsBackToEvenSplit) {
  const u64 cap = 10000;
  PartitionController pc(pc_config(cap));
  const std::vector<GhostCache::Mrc> mrcs = {flat_mrc(cap), flat_mrc(cap)};
  const std::vector<u64> shares = pc.solve(mrcs, {0.0, 0.0}, {});
  EXPECT_EQ(shares[0] + shares[1], cap);
  EXPECT_NEAR(static_cast<double>(shares[0]),
              static_cast<double>(shares[1]),
              static_cast<double>(cap) * 0.01);
}

TEST(Partition, ZeroGainSurplusFollowsDemonstratedUtility) {
  // Both curves saturate instantly (all reuse below the first ladder
  // point): marginal gains are zero everywhere past it, but tenant 0 has
  // hits and tenant 1 has none — the surplus must follow the hits.
  const u64 cap = 10000;
  GhostCache::Mrc sat;
  sat.sizes = {cap / 8, cap};
  sat.miss_ratio = {0.2, 0.2};
  sat.accesses = 1000.0;
  PartitionController pc(pc_config(cap));
  const std::vector<GhostCache::Mrc> mrcs = {sat, flat_mrc(cap)};
  const std::vector<u64> shares = pc.solve(mrcs, {1000.0, 1000.0}, {});
  EXPECT_EQ(shares[1], static_cast<u64>(0.05 * cap));
}

TEST(Partition, FloorsExhaustCapacityFallsBackEven) {
  PartitionController::Config cfg = pc_config(100);
  cfg.min_share = 0.5;
  PartitionController pc(cfg);
  const std::vector<GhostCache::Mrc> mrcs = {linear_mrc(100, 0.8),
                                             flat_mrc(100)};
  const std::vector<u64> shares = pc.solve(mrcs, {10.0, 10.0}, {});
  EXPECT_EQ(shares[0] + shares[1], 100u);
}

// --- AdaptiveController -----------------------------------------------------

TEST(Adaptive, AppliesEvenSplitAtConstructionThenAdapts) {
  AdaptConfig cfg;
  cfg.num_tenants = 2;
  cfg.capacity_blocks = 4096;
  cfg.epoch = 100 * sim::kMs;
  cfg.sampling_rate = 1.0;
  cfg.hysteresis = 0.0;
  std::vector<std::vector<u64>> applied;
  AdaptiveController ctrl(cfg, [&](const std::vector<u64>& q) {
    applied.push_back(q);
  });
  ASSERT_EQ(applied.size(), 1u);  // managed from the start
  EXPECT_EQ(applied[0][0], 2048u);
  EXPECT_EQ(applied[0][1], 2048u);

  // Tenant 0 re-uses a 1024-block set; tenant 1 streams. After one epoch
  // the split must shift toward tenant 0.
  for (int round = 0; round < 20; ++round)
    for (u64 lba = 0; lba < 1024; ++lba) ctrl.observe(0, lba, 1);
  for (u64 lba = 0; lba < 20000; ++lba) ctrl.observe(1, 1 << 20 | lba, 1);

  ctrl.set_epoch_start(0);
  EXPECT_FALSE(ctrl.epoch_due(50 * sim::kMs));
  ASSERT_TRUE(ctrl.epoch_due(100 * sim::kMs));
  const std::vector<u64>& t = ctrl.run_epoch(100 * sim::kMs);
  EXPECT_EQ(ctrl.epochs_completed(), 1u);
  EXPECT_GE(ctrl.rebalances(), 1u);
  EXPECT_GT(t[0], t[1]);
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied.back(), t);
}

TEST(Adaptive, GhostBudgetHoldsAcrossTenants) {
  AdaptConfig cfg;
  cfg.num_tenants = 4;
  cfg.capacity_blocks = 1 << 20;
  cfg.sampling_rate = 0.05;
  cfg.ghost_max_entries = 1024;
  AdaptiveController ctrl(cfg, nullptr);
  for (u64 i = 0; i < 400000; ++i) ctrl.observe(static_cast<u32>(i % 4), i, 1);
  EXPECT_LE(ctrl.ghost_entries_total(), 4u * 1024u);
  EXPECT_LE(ctrl.ghost_memory_bytes(), 4u * 1024u * 128u + 16384u);
}

// --- end-to-end: adaptive vs static on the small SRC rig --------------------

struct MtOutcome {
  workload::RunResult res;
  double late_hit = 0.0;  // op hit ratio after the first 3 epochs
};

constexpr sim::SimTime kEpoch = 500 * sim::kMs;

// One run of the acceptance workload: tenant 0 reuses a near-uniform working
// set ~0.9x the cache (every block granted to it buys hits, so its residency
// is quota-limited); tenant 1 is an ingest-style sequential write sweep over
// 4x the cache that is never re-read. `t0_share` < 0 runs the adaptive
// controller instead of a static split.
MtOutcome run_two_tenant(double t0_share) {
  src::testutil::Rig rig;
  const u64 cap = rig.cache->config().capacity_blocks();

  workload::TraceSynth::Config hot;
  hot.spec = {"zipf-hot", 4.0, 0.0, 50};
  hot.footprint_blocks = cap * 9 / 10;
  hot.zipf_theta = 0.3;
  hot.extent_blocks = 8;  // fine-grained placement: ~243 extents, so the
                          // reuse set spans the whole footprint, not a few
                          // hot extents — residency is then quota-limited
  hot.seed = 7;
  hot.tenant = 0;
  workload::TraceSynth t0(hot);

  workload::FioGen::Config sweep;
  sweep.span_blocks = cap * 4;
  sweep.offset_blocks = cap * 2;
  sweep.req_blocks = 8;
  sweep.read_pct = 0;
  sweep.sequential = true;
  sweep.seed = 8;
  sweep.tenant = 1;
  workload::FioGen t1(sweep);

  workload::TenantMixGen mix({{&t0, 6.0}, {&t1, 1.0}}, 9);

  workload::RunConfig rc;
  rc.threads_per_gen = 4;
  rc.iodepth = 4;
  rc.duration = 6 * sim::kSec;
  rc.warmup_bytes = 2 * blocks_to_bytes(cap);
  rc.timeseries_interval = kEpoch;
  rc.num_tenants = 2;

  std::unique_ptr<AdaptiveController> ctrl;
  if (t0_share < 0.0) {
    AdaptConfig ac;
    ac.num_tenants = 2;
    ac.capacity_blocks = cap;
    ac.epoch = kEpoch;
    ac.sampling_rate = 0.5;  // small cache: sample densely for a crisp MRC
    ctrl = std::make_unique<AdaptiveController>(
        ac, [&rig](const std::vector<u64>& q) {
          rig.cache->set_tenant_quotas(q);
        });
    rc.adapt = ctrl.get();
  } else {
    const u64 q0 = static_cast<u64>(static_cast<double>(cap) * t0_share);
    rig.cache->set_tenant_quotas({q0, cap - q0});
  }

  std::vector<blockdev::BlockDevice*> ssds;
  for (auto& s : rig.ssds) ssds.push_back(s.get());
  workload::Runner runner(rig.cache.get(), ssds);

  MtOutcome out;
  out.res = runner.run({&mix}, rc);
  u64 hits = 0, misses = 0;
  const auto& samples = out.res.timeseries.samples;
  for (size_t i = 3; i < samples.size(); ++i) {
    hits += samples[i].hits;
    misses += samples[i].misses;
  }
  if (hits + misses > 0)
    out.late_hit = static_cast<double>(hits) /
                   static_cast<double>(hits + misses);

  if (ctrl) {
    // The acceptance clock: adaptation must have happened within 3 epochs.
    EXPECT_GE(out.res.adapt_epochs, 3u);
    EXPECT_GE(out.res.adapt_rebalances, 1u);
    // SHARDS budget holds under real traffic.
    for (u32 t = 0; t < 2; ++t)
      EXPECT_LE(ctrl->ghost(t).entries(), ctrl->ghost(t).max_entries());
    EXPECT_LE(ctrl->ghost_memory_bytes(),
              2u * ctrl->config().ghost_max_entries * 128u + 16384u);
    // The split moved toward the tenant that can use the capacity.
    EXPECT_GT(ctrl->targets()[0], ctrl->targets()[1]);
  }
  return out;
}

TEST(AdaptiveEndToEnd, BeatsEveryStaticSplitAfterThreeEpochs) {
  const MtOutcome adaptive = run_two_tenant(-1.0);
  const double statics[] = {0.25, 0.50, 0.75};
  double best_static = 0.0;
  for (const double share : statics) {
    const MtOutcome s = run_two_tenant(share);
    best_static = std::max(best_static, s.late_hit);
  }
  // Once the controller has had 3 epochs to adapt, the adaptive split's
  // aggregate hit ratio exceeds the best static split's over the same
  // window. Fully deterministic: seeded generators, simulated time.
  EXPECT_GT(adaptive.late_hit, best_static);
  // Sanity: the workload is not degenerate — somebody hits the cache.
  EXPECT_GT(adaptive.late_hit, 0.1);
}

}  // namespace
}  // namespace srcache
