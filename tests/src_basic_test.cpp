#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "src_test_util.hpp"

namespace srcache::src {
namespace {

using testutil::Rig;
using testutil::small_config;

// --- config & geometry -------------------------------------------------------

TEST(SrcConfig, DefaultsMatchPaperGeometry) {
  SrcConfig cfg;  // paper defaults
  EXPECT_EQ(cfg.chunk_blocks(), 128u);        // 512 KiB chunks
  EXPECT_EQ(cfg.slots_per_chunk(), 126u);     // minus MS and ME
  EXPECT_EQ(cfg.segments_per_sg(), 512u);     // "divided into 512 segments"
  EXPECT_EQ(cfg.sg_count(), 18u);             // 18 GB cache over 4 SSDs
  EXPECT_EQ(cfg.segment_data_slots(true), 3u * 126u);  // RAID-5 dirty
}

TEST(SrcConfig, NpcCleanSegmentsHaveMoreSlots) {
  SrcConfig cfg;
  cfg.clean_redundancy = CleanRedundancy::kNPC;
  EXPECT_EQ(cfg.segment_data_slots(false), 4u * 126u);
  cfg.clean_redundancy = CleanRedundancy::kPC;
  EXPECT_EQ(cfg.segment_data_slots(false), 3u * 126u);
}

TEST(SrcConfig, Raid0NoParityAnywhere) {
  SrcConfig cfg;
  cfg.raid = SrcRaidLevel::kRaid0;
  EXPECT_FALSE(cfg.segment_has_parity(true));
  EXPECT_EQ(cfg.segment_data_slots(true), 4u * 126u);
}

TEST(SrcConfig, Raid1HalvesDataSlots) {
  SrcConfig cfg;
  cfg.raid = SrcRaidLevel::kRaid1;
  EXPECT_EQ(cfg.segment_data_slots(true), 2u * 126u);
}

TEST(SrcConfig, ValidationCatchesBadGeometry) {
  SrcConfig cfg = small_config();
  cfg.chunk_bytes = 8 * KiB;  // only MS+ME, no data
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config();
  cfg.erase_group_bytes = cfg.chunk_bytes * 3 + 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config();
  cfg.umax = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config();
  cfg.num_ssds = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SrcConfig, DescribeMentionsKeyChoices) {
  SrcConfig cfg;
  const std::string d = cfg.describe();
  EXPECT_NE(d.find("RAID-5"), std::string::npos);
  EXPECT_NE(d.find("NPC"), std::string::npos);
  EXPECT_NE(d.find("Sel-GC"), std::string::npos);
}

// --- segment metadata --------------------------------------------------------

TEST(SegmentMeta, SerializeRoundTrip) {
  SegmentMeta m;
  m.generation = 42;
  m.sg = 3;
  m.seg = 7;
  m.dirty = true;
  m.has_parity = true;
  m.parity_col = 2;
  m.entries = {{100, 0xAB}, {kDeadSlot, 0}, {200, 0xCD}};
  auto p = m.serialize();
  auto back = SegmentMeta::deserialize(p);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->generation, 42u);
  EXPECT_EQ(back->sg, 3u);
  EXPECT_EQ(back->seg, 7u);
  EXPECT_TRUE(back->dirty);
  EXPECT_TRUE(back->has_parity);
  EXPECT_EQ(back->parity_col, 2);
  ASSERT_EQ(back->entries.size(), 3u);
  EXPECT_EQ(back->entries[0].lba, 100u);
  EXPECT_EQ(back->entries[1].lba, kDeadSlot);
  EXPECT_EQ(back->entries[2].crc, 0xCDu);
}

TEST(SegmentMeta, CorruptionDetected) {
  SegmentMeta m;
  m.generation = 1;
  m.entries = {{5, 6}};
  auto p = m.serialize();
  auto broken = std::make_shared<std::vector<u8>>(*p);
  (*broken)[10] ^= 0xFF;
  EXPECT_FALSE(SegmentMeta::deserialize(broken).has_value());
}

TEST(SegmentMeta, RejectsWrongMagic) {
  Superblock sb;
  EXPECT_FALSE(SegmentMeta::deserialize(sb.serialize()).has_value());
}

TEST(SuperblockMeta, RoundTrip) {
  Superblock sb;
  sb.create_seq = 9;
  sb.num_ssds = 4;
  sb.erase_group_bytes = 256 * MiB;
  sb.chunk_bytes = 512 * KiB;
  sb.region_bytes_per_ssd = 4608ull * MiB;
  auto back = Superblock::deserialize(sb.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_ssds, 4u);
  EXPECT_EQ(back->erase_group_bytes, 256 * MiB);
}

// --- basic cache behaviour -----------------------------------------------------

TEST(SrcCache, StartsEmpty) {
  Rig rig;
  EXPECT_EQ(rig.cache->cached_blocks(), 0u);
  EXPECT_EQ(rig.cache->utilization(), 0.0);
  EXPECT_EQ(rig.cache->free_sg_count(), rig.cfg.sg_count() - 1);
}

TEST(SrcCache, WriteLandsInDirtyBuffer) {
  Rig rig;
  rig.write(0, 100);
  EXPECT_EQ(rig.cache->residence(100), SrcCache::Residence::kDirtyBuffer);
  EXPECT_EQ(rig.cache->cached_blocks(), 1u);
}

TEST(SrcCache, ReadYourWriteFromBuffer) {
  Rig rig;
  const u64 tag = 0xBEEF;
  rig.write(0, 100, 1, &tag);
  u64 out = 0;
  rig.read(10, 100, 1, &out);
  EXPECT_EQ(out, tag);
  EXPECT_EQ(rig.cache->stats().read_hit_blocks, 1u);
}

TEST(SrcCache, BufferSealsWhenFull) {
  Rig rig;
  const u64 cap = rig.cfg.segment_data_slots(true);
  for (u64 i = 0; i < cap; ++i) rig.write(0, i);
  EXPECT_EQ(rig.cache->extra().segments_written, 1u);
  EXPECT_EQ(rig.cache->residence(0), SrcCache::Residence::kCachedDirty);
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok());
}

TEST(SrcCache, ReadYourWriteFromSsd) {
  Rig rig;
  const u64 cap = rig.cfg.segment_data_slots(true);
  std::vector<u64> tags(cap);
  for (u64 i = 0; i < cap; ++i) {
    tags[i] = 0x1000 + i;
    rig.write(0, i, 1, &tags[i]);
  }
  for (u64 i = 0; i < cap; ++i) {
    u64 out = 0;
    rig.read(1000, i, 1, &out);
    ASSERT_EQ(out, tags[i]) << i;
  }
}

TEST(SrcCache, ReadMissFetchesFromPrimary) {
  Rig rig;
  const std::vector<u64> ptags = {4242};
  rig.primary->write(0, 500, 1, ptags);
  u64 out = 0;
  const auto done = rig.read(0, 500, 1, &out);
  EXPECT_EQ(out, 4242u);
  EXPECT_GE(done, 5 * sim::kMs);  // waited for the disk
  EXPECT_EQ(rig.cache->stats().read_miss_blocks, 1u);
  // Fetched data is staged as clean.
  EXPECT_EQ(rig.cache->residence(500), SrcCache::Residence::kCleanBuffer);
}

TEST(SrcCache, SecondReadOfMissIsHit) {
  Rig rig;
  rig.read(0, 500);
  const auto t2 = rig.read(sim::kSec, 500);
  EXPECT_LT(t2 - sim::kSec, 1 * sim::kMs);  // RAM/SSD speed, not disk
  EXPECT_EQ(rig.cache->stats().read_hit_blocks, 1u);
}

TEST(SrcCache, WriteOverCleanPromotesToDirty) {
  Rig rig;
  rig.read(0, 700);  // clean
  rig.write(1, 700);
  EXPECT_EQ(rig.cache->residence(700), SrcCache::Residence::kDirtyBuffer);
  EXPECT_EQ(rig.cache->stats().write_hit_blocks, 1u);
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok());
}

TEST(SrcCache, OverwriteInBufferInPlace) {
  Rig rig;
  const u64 t1 = 1, t2 = 2;
  rig.write(0, 900, 1, &t1);
  rig.write(1, 900, 1, &t2);
  EXPECT_EQ(rig.cache->cached_blocks(), 1u);
  u64 out = 0;
  rig.read(2, 900, 1, &out);
  EXPECT_EQ(out, t2);
}

TEST(SrcCache, OverwriteOnSsdInvalidatesOldSlot) {
  Rig rig;
  const u64 cap = rig.cfg.segment_data_slots(true);
  for (u64 i = 0; i < cap; ++i) rig.write(0, i);  // sealed
  const u64 t2 = 0xFEED;
  rig.write(1, 5, 1, &t2);  // overwrite a sealed block
  EXPECT_EQ(rig.cache->residence(5), SrcCache::Residence::kDirtyBuffer);
  u64 out = 0;
  rig.read(2, 5, 1, &out);
  EXPECT_EQ(out, t2);
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok());
}

TEST(SrcCache, PartialSegmentOnTimeout) {
  SrcConfig cfg = small_config();
  cfg.twait = 100 * sim::kUs;
  Rig rig(cfg);
  rig.write(0, 1);
  EXPECT_EQ(rig.cache->extra().segments_written, 0u);
  // A later request (read) past TWAIT seals the partial dirty segment.
  rig.read(10 * sim::kMs, 2);
  EXPECT_EQ(rig.cache->extra().segments_written, 1u);
  EXPECT_EQ(rig.cache->extra().partial_segments, 1u);
  EXPECT_EQ(rig.cache->residence(1), SrcCache::Residence::kCachedDirty);
}

TEST(SrcCache, AppFlushSealsAndFlushes) {
  Rig rig;
  rig.write(0, 1);
  const auto before = rig.ssds[0]->stats().flushes;
  rig.cache->flush(1000);
  EXPECT_GT(rig.ssds[0]->stats().flushes, before);
  EXPECT_EQ(rig.cache->residence(1), SrcCache::Residence::kCachedDirty);
  EXPECT_EQ(rig.cache->stats().app_flushes, 1u);
}

TEST(SrcCache, SegmentWriteTouchesAllSsds) {
  Rig rig;
  const u64 cap = rig.cfg.segment_data_slots(true);
  for (u64 i = 0; i < cap; ++i) rig.write(0, i);
  for (auto& ssd : rig.ssds) {
    // Superblock (format) + MS + 6 data rows + ME = one chunk per SSD.
    EXPECT_EQ(ssd->stats().write_blocks, rig.cfg.chunk_blocks() + 1);
  }
}

TEST(SrcCache, FlushPerSegmentIssuesMoreFlushes) {
  SrcConfig per_seg = small_config();
  per_seg.flush_control = FlushControl::kPerSegment;
  Rig a(per_seg);
  Rig b(small_config());  // per-SG
  const u64 cap = a.cfg.segment_data_slots(true);
  for (u64 i = 0; i < 3 * cap; ++i) {
    a.write(0, i);
    b.write(0, i);
  }
  EXPECT_GT(a.cache->extra().flushes_issued, b.cache->extra().flushes_issued);
}

TEST(SrcCache, CleanBufferSealsIntoCleanSegment) {
  Rig rig;
  const u64 clean_cap = rig.cfg.segment_data_slots(false);
  for (u64 i = 0; i < clean_cap; ++i) rig.read(0, 10000 + i);
  EXPECT_EQ(rig.cache->extra().clean_segments, 1u);
  EXPECT_EQ(rig.cache->residence(10000), SrcCache::Residence::kCachedClean);
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok());
}

TEST(SrcCache, MultiBlockRequestsSplitCorrectly) {
  Rig rig;
  std::vector<u64> tags = {1, 2, 3, 4, 5, 6, 7, 8};
  rig.write(0, 2000, 8, tags.data());
  std::vector<u64> out(8, 0);
  rig.read(1, 2000, 8, out.data());
  EXPECT_EQ(out, tags);
  EXPECT_EQ(rig.cache->stats().app_write_blocks, 8u);
}

TEST(SrcCache, ThrottleBoundsInflightSegments) {
  SrcConfig cfg = small_config();
  cfg.max_inflight_segment_writes = 1;
  Rig rig(cfg);
  const u64 cap = rig.cfg.segment_data_slots(true);
  // Two buffers' worth issued at t=0: the second must wait for the first
  // segment write to complete.
  sim::SimTime last = 0;
  for (u64 i = 0; i < 2 * cap; ++i) last = std::max(last, rig.write(0, i));
  EXPECT_GT(last, 100 * sim::kUs);
}

TEST(SrcCache, ConsistencyAcrossMixedWorkload) {
  Rig rig;
  common::Xoshiro256 rng(3);
  sim::SimTime t = 0;
  for (int i = 0; i < 3000; ++i) {
    const u64 lba = rng.below(4000);
    if (rng.chance(0.6)) {
      t = rig.write(t, lba, static_cast<u32>(rng.range(1, 4)));
    } else {
      t = rig.read(t, lba, static_cast<u32>(rng.range(1, 4)));
    }
  }
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok())
      << rig.cache->verify_consistency().to_string();
}

}  // namespace
}  // namespace srcache::src
