#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "src_test_util.hpp"

namespace srcache::src {
namespace {

using testutil::Rig;
using testutil::small_config;

// Writes enough distinct dirty blocks to fill `sgs` segment groups.
void fill_dirty(Rig& rig, double sgs, u64 lba_base = 0) {
  const u64 per_sg =
      rig.cfg.segments_per_sg() * rig.cfg.segment_data_slots(true);
  const u64 blocks = static_cast<u64>(sgs * static_cast<double>(per_sg));
  sim::SimTime t = 0;
  for (u64 i = 0; i < blocks; ++i) t = rig.write(t, lba_base + i);
}

TEST(SrcGc, FillingCacheTriggersReclaim) {
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kS2D;
  Rig rig(cfg);
  fill_dirty(rig, static_cast<double>(cfg.sg_count()) + 2.0);
  EXPECT_GT(rig.cache->extra().sg_reclaims, 0u);
  EXPECT_GE(rig.cache->free_sg_count(), cfg.free_sg_reserve);
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok());
}

TEST(SrcGc, S2DDestagesDirtyToPrimary) {
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kS2D;
  Rig rig(cfg);
  fill_dirty(rig, static_cast<double>(cfg.sg_count()) + 1.0);
  EXPECT_GT(rig.cache->stats().destage_blocks, 0u);
  EXPECT_GT(rig.primary->stats().write_blocks, 0u);
  EXPECT_EQ(rig.cache->stats().gc_copy_blocks, 0u);
  EXPECT_EQ(rig.cache->extra().s2s_reclaims, 0u);
}

TEST(SrcGc, DestagedDataReadableFromPrimary) {
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kS2D;
  cfg.victim = VictimPolicy::kFifo;
  Rig rig(cfg);
  // Tag block 0 and never touch it again: FIFO will destage it.
  const u64 tag = 0xD00D;
  rig.write(0, 0, 1, &tag);
  fill_dirty(rig, static_cast<double>(cfg.sg_count()) + 2.0, /*lba_base=*/10);
  ASSERT_EQ(rig.cache->residence(0), SrcCache::Residence::kAbsent);
  std::vector<u64> out(1);
  rig.primary->read(0, 0, 1, out);
  EXPECT_EQ(out[0], tag);
}

TEST(SrcGc, SelGcCopiesInsteadOfDestaging) {
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kSelGc;
  cfg.umax = 0.95;
  Rig rig(cfg);
  // Working set smaller than the cache, overwritten repeatedly: utilization
  // stays below UMAX, so reclaims use S2S copies, not destages.
  const u64 per_sg = cfg.segments_per_sg() * cfg.segment_data_slots(true);
  const u64 ws = per_sg * (cfg.sg_count() / 2);
  common::Xoshiro256 rng(1);
  sim::SimTime t = 0;
  for (u64 i = 0; i < 4 * ws; ++i) t = rig.write(t, rng.below(ws));
  EXPECT_GT(rig.cache->extra().s2s_reclaims, 0u);
  EXPECT_GT(rig.cache->stats().gc_copy_blocks, 0u);
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok());
}

TEST(SrcGc, SelGcFallsBackToS2DAboveUmax) {
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kSelGc;
  cfg.umax = 0.10;  // practically always above
  Rig rig(cfg);
  fill_dirty(rig, static_cast<double>(cfg.sg_count()) + 2.0);
  EXPECT_GT(rig.cache->extra().s2d_reclaims, 0u);
  EXPECT_GT(rig.cache->stats().destage_blocks, 0u);
}

TEST(SrcGc, SelGcDropsColdCleanKeepsHotClean) {
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kSelGc;
  cfg.umax = 0.95;
  Rig rig(cfg);
  // Two clean segments: blocks of the first are re-read (hot), the second
  // never touched (cold).
  const u64 clean_cap = rig.cfg.segment_data_slots(false);
  sim::SimTime t = 0;
  for (u64 i = 0; i < 2 * clean_cap; ++i) t = rig.read(t, 100000 + i);
  for (u64 i = 0; i < clean_cap; ++i) t = rig.read(t, 100000 + i);  // heat
  // Fill with dirty data until the clean SG gets reclaimed.
  fill_dirty(rig, static_cast<double>(cfg.sg_count()) + 1.0);
  EXPECT_GT(rig.cache->stats().dropped_clean_blocks, 0u);
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok());
}

TEST(SrcGc, FifoPicksOldestSealed) {
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kS2D;
  cfg.victim = VictimPolicy::kFifo;
  Rig rig(cfg);
  const u64 tag = 0xAA;
  rig.write(0, 99999, 1, &tag);  // lives in the first-sealed SG
  fill_dirty(rig, static_cast<double>(cfg.sg_count()), 0);
  // The first SG must have been reclaimed (oldest first) and the block
  // destaged.
  EXPECT_EQ(rig.cache->residence(99999), SrcCache::Residence::kAbsent);
}

TEST(SrcGc, GreedyPrefersEmptierSg) {
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kS2D;
  cfg.victim = VictimPolicy::kGreedy;
  Rig rig(cfg);
  const u64 per_sg = cfg.segments_per_sg() * cfg.segment_data_slots(true);
  // SG A: written then fully overwritten (0 live). Later SGs: live data.
  sim::SimTime t = 0;
  for (u64 i = 0; i < per_sg; ++i) t = rig.write(t, i);
  for (u64 i = 0; i < per_sg; ++i) t = rig.write(t, i);  // invalidates SG A
  const u64 destaged_before = rig.cache->stats().destage_blocks;
  // Now force a reclaim: fill remaining SGs.
  for (u64 i = 0; i < per_sg * cfg.sg_count(); ++i) {
    t = rig.write(t, 100000 + i);
    if (rig.cache->extra().sg_reclaims > 0) break;
  }
  ASSERT_GT(rig.cache->extra().sg_reclaims, 0u);
  // Greedy found the dead SG: nothing needed destaging.
  EXPECT_EQ(rig.cache->stats().destage_blocks, destaged_before);
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok());
}

TEST(SrcGc, UtilizationTracksLiveBlocks) {
  Rig rig;
  EXPECT_DOUBLE_EQ(rig.cache->utilization(), 0.0);
  const u64 cap = rig.cfg.segment_data_slots(true);
  for (u64 i = 0; i < cap; ++i) rig.write(0, i);
  const double u1 = rig.cache->utilization();
  EXPECT_GT(u1, 0.0);
  // Overwriting the same blocks must not inflate utilization.
  for (u64 i = 0; i < cap; ++i) rig.write(1, i);
  EXPECT_NEAR(rig.cache->utilization(), u1, 1e-9);
}

TEST(SrcGc, ReclaimTrimsTheSegmentGroup) {
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kS2D;
  Rig rig(cfg);
  fill_dirty(rig, static_cast<double>(cfg.sg_count()) + 1.0);
  for (auto& ssd : rig.ssds) EXPECT_GT(ssd->stats().trim_blocks, 0u);
}

TEST(SrcGc, SelGcSurvivesSustainedOverwrite) {
  // Long-running random overwrites with Sel-GC must neither deadlock nor
  // violate invariants (the nested-reclaim path).
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kSelGc;
  cfg.umax = 0.90;
  Rig rig(cfg);
  const u64 per_sg = cfg.segments_per_sg() * cfg.segment_data_slots(true);
  const u64 ws = per_sg * (cfg.sg_count() - 4);
  common::Xoshiro256 rng(7);
  sim::SimTime t = 0;
  for (u64 i = 0; i < 6 * ws; ++i) t = rig.write(t, rng.below(ws));
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok())
      << rig.cache->verify_consistency().to_string();
  EXPECT_GT(rig.cache->extra().sg_reclaims, 0u);
}

TEST(SrcGc, MixedCleanDirtyWorkloadStaysConsistent) {
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kSelGc;
  Rig rig(cfg);
  common::Xoshiro256 rng(11);
  sim::SimTime t = 0;
  for (int i = 0; i < 20000; ++i) {
    const u64 lba = rng.below(6000);
    if (rng.chance(0.5)) {
      t = rig.write(t, lba);
    } else {
      t = rig.read(t, lba);
    }
  }
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok())
      << rig.cache->verify_consistency().to_string();
}

TEST(SrcGc, CostBenefitPrefersDeadOverYoung) {
  // Extension (§6 future work): LFS cost-benefit victim selection must
  // prefer an old mostly-dead SG over a young fuller one, like Greedy...
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kS2D;
  cfg.victim = VictimPolicy::kCostBenefit;
  Rig rig(cfg);
  const u64 per_sg = cfg.segments_per_sg() * cfg.segment_data_slots(true);
  sim::SimTime t = 0;
  for (u64 i = 0; i < per_sg; ++i) t = rig.write(t, i);        // SG A
  for (u64 i = 0; i < per_sg; ++i) t = rig.write(t, i);        // kills SG A
  const u64 destaged_before = rig.cache->stats().destage_blocks;
  for (u64 i = 0; i < per_sg * cfg.sg_count(); ++i) {
    t = rig.write(t, 100000 + i);
    if (rig.cache->extra().sg_reclaims > 0) break;
  }
  ASSERT_GT(rig.cache->extra().sg_reclaims, 0u);
  // The dead SG was chosen: nothing to destage.
  EXPECT_EQ(rig.cache->stats().destage_blocks, destaged_before);
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok());
}

TEST(SrcGc, CostBenefitSurvivesChurn) {
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kSelGc;
  cfg.victim = VictimPolicy::kCostBenefit;
  Rig rig(cfg);
  common::Xoshiro256 rng(31);
  const u64 per_sg = cfg.segments_per_sg() * cfg.segment_data_slots(true);
  const u64 ws = per_sg * (cfg.sg_count() - 4);
  sim::SimTime t = 0;
  for (u64 i = 0; i < 5 * ws; ++i) t = rig.write(t, rng.below(ws));
  EXPECT_TRUE(rig.cache->verify_consistency().is_ok())
      << rig.cache->verify_consistency().to_string();
  EXPECT_GT(rig.cache->extra().sg_reclaims, 0u);
}

TEST(SrcGc, ReclaimedSgNotWritableBeforeDestageCompletes) {
  // ready_at back-pressure: with a crawling primary, S2D reclaims gate
  // segment writes into the recycled SG far into the future.
  SrcConfig cfg = small_config();
  cfg.gc = GcPolicy::kS2D;
  Rig rig(cfg);
  const u64 per_sg = cfg.segments_per_sg() * cfg.segment_data_slots(true);
  sim::SimTime t = 0;
  sim::SimTime last_ack = 0;
  for (u64 i = 0; i < per_sg * (cfg.sg_count() + 3); ++i) {
    t = rig.write(t, i);
    last_ack = std::max(last_ack, t);
  }
  ASSERT_GT(rig.cache->extra().sg_reclaims, 0u);
  // Destages happened and writes experienced back-pressure beyond pure
  // SSD time (the 5 ms/op primary is far slower than the 20 us MemDisks).
  EXPECT_GT(rig.cache->stats().destage_blocks, 0u);
  EXPECT_GT(last_ack, 50 * sim::kMs);
}

}  // namespace
}  // namespace srcache::src
