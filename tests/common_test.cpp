#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/crc32c.hpp"
#include "common/histogram.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace srcache {
namespace {

using common::crc32c;
using common::crc32c_of;
using common::Histogram;
using common::SplitMix64;
using common::Table;
using common::Xoshiro256;
using common::ZipfSampler;

// --- units ------------------------------------------------------------------

TEST(Types, UnitConstants) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
  EXPECT_EQ(kBlockSize, 4096u);
}

TEST(Types, BytesToBlocksRoundsUp) {
  EXPECT_EQ(bytes_to_blocks(0), 0u);
  EXPECT_EQ(bytes_to_blocks(1), 1u);
  EXPECT_EQ(bytes_to_blocks(4096), 1u);
  EXPECT_EQ(bytes_to_blocks(4097), 2u);
  EXPECT_EQ(blocks_to_bytes(3), 12288u);
}

TEST(Types, DivCeil) {
  EXPECT_EQ(div_ceil(0, 5), 0u);
  EXPECT_EQ(div_ceil(10, 5), 2u);
  EXPECT_EQ(div_ceil(11, 5), 3u);
}

// --- crc32c -----------------------------------------------------------------

TEST(Crc32c, KnownVector) {
  // RFC 3720 test vector: 32 bytes of zeros -> 0x8A9136AA.
  std::vector<u8> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32c, KnownVectorOnes) {
  // RFC 3720: 32 bytes of 0xFF -> 0x62A8AB43.
  std::vector<u8> ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32c, KnownVectorAscending) {
  // RFC 3720: bytes 0x00..0x1F -> 0x46DD794E.
  std::vector<u8> asc(32);
  for (size_t i = 0; i < asc.size(); ++i) asc[i] = static_cast<u8>(i);
  EXPECT_EQ(crc32c(asc), 0x46DD794Eu);
}

TEST(Crc32c, EmptyIsZero) { EXPECT_EQ(crc32c({}), 0u); }

TEST(Crc32c, DifferentInputsDiffer) {
  EXPECT_NE(crc32c_of<u64>(1), crc32c_of<u64>(2));
  EXPECT_NE(crc32c_of<u64>(0x1234), crc32c_of<u32>(0x1234));
}

TEST(Crc32c, SingleBitFlipDetected) {
  for (int bit = 0; bit < 64; ++bit) {
    const u64 base = 0xDEADBEEF12345678ull;
    EXPECT_NE(crc32c_of(base), crc32c_of(base ^ (1ull << bit))) << bit;
  }
}

// --- Result / Status ---------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
}

TEST(Status, CarriesCodeAndMessage) {
  Status s(ErrorCode::kCorrupted, "bad block");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.to_string(), "corrupted: bad block");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r{Status(ErrorCode::kNotFound, "missing")};
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
  EXPECT_THROW(r.value(), std::logic_error);
}

TEST(Result, OkStatusRejected) {
  EXPECT_THROW(Result<int>{Status::ok()}, std::logic_error);
}

// --- rng ----------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange) {
  Xoshiro256 r(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 r(5);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Xoshiro256 r(9);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Rng, SplitMixExpandsSeeds) {
  SplitMix64 sm(0);
  const u64 a = sm.next(), b = sm.next();
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0u);
}

TEST(Zipf, RankZeroIsHottest) {
  ZipfSampler z(1000, 0.9, 11);
  std::map<u64, int> counts;
  for (int i = 0; i < 50000; ++i) counts[z.next()]++;
  int max_count = 0;
  u64 max_rank = 0;
  for (auto [rank, c] : counts)
    if (c > max_count) {
      max_count = c;
      max_rank = rank;
    }
  EXPECT_EQ(max_rank, 0u);
}

TEST(Zipf, SkewConcentratesMass) {
  ZipfSampler z(100000, 0.99, 13);
  int in_top_1pct = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (z.next() < 1000) ++in_top_1pct;
  // Zipf(0.99): the top 1% of ranks should carry far more than 1% of mass.
  EXPECT_GT(in_top_1pct, n / 4);
}

TEST(Zipf, StaysInRange) {
  ZipfSampler z(50, 0.5, 17);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.next(), 50u);
}

// --- histogram -----------------------------------------------------------------

TEST(Histogram, CountsMinMaxMean) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, PercentileMonotonic) {
  Histogram h;
  common::Xoshiro256 r(1);
  for (int i = 0; i < 10000; ++i) h.record(r.below(100000));
  double last = 0.0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, last);
    last = v;
  }
}

TEST(Histogram, PercentileApproximatesUniform) {
  Histogram h;
  common::Xoshiro256 r(2);
  for (int i = 0; i < 100000; ++i) h.record(r.below(1u << 20));
  // Log-bucketed: expect the right order of magnitude, not exactness.
  EXPECT_GT(h.percentile(50), (1u << 18));
  EXPECT_LE(h.percentile(50), (1u << 20));
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a, b;
  a.record(5);
  b.record(500);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 500u);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(99), 0.0);
}

// --- table ----------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "23456"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name        | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer-name | 23456 |"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NE(t.to_string().find("| 1 |"), std::string::npos);
}

}  // namespace
}  // namespace srcache
