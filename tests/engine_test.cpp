// engine::ParallelEngine: the determinism contract (bit-identical results
// for every REPRO_SHARDS/REPRO_THREADS combination), the epoch-barrier
// quiescence invariant, deterministic delivery of fault and adapt events at
// barriers, and the exactness of the per-domain merge.
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "block/block_device.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "src_test_util.hpp"
#include "tier/tier_cache.hpp"
#include "workload/generators.hpp"
#include "workload/report.hpp"

namespace srcache {
namespace {

using engine::DomainSetup;
using engine::EngineConfig;
using engine::EngineResult;
using engine::EpochView;
using engine::ParallelEngine;

constexpr sim::SimTime kDuration = 200 * sim::kMs;

// One engine domain over the small SRC test rig: the rig, its generators,
// and (optionally) the per-domain fault injector, owned together so they
// outlive the engine run.
struct TestDomain {
  src::testutil::Rig rig;
  std::vector<std::unique_ptr<workload::Generator>> gens;
  std::vector<workload::Generator*> gen_ptrs;
  // Observability sidecars (make_obs_domain only): per-domain event trace
  // and op-span tracer, owned here so hooks and post-run assertions can
  // reach them.
  std::unique_ptr<obs::TraceLog> trace;
  std::unique_ptr<obs::SpanTracer> spans;
  // Compressed DRAM tier (make_tier_domain only), interposed above the rig.
  std::unique_ptr<tier::TierCache> tier;

  TestDomain() = default;
  explicit TestDomain(const src::SrcConfig& c) : rig(c) {}
};

// Builds domain `index`: a fresh small rig plus two FIO streams whose seeds
// derive from the domain index, mirroring how the bench harness partitions
// a trace group. `cfg` overrides the rig's SRC configuration (policy
// identity tests select eviction/admission through it).
DomainSetup make_test_domain(u32 index, u32 num_tenants = 0,
                             const src::SrcConfig& cfg =
                                 src::testutil::small_config()) {
  auto holder = std::make_shared<TestDomain>(cfg);
  const u64 span =
      holder->rig.cfg.region_bytes_per_ssd / kBlockSize;  // 1k blocks
  workload::FioGen::Config w;
  w.span_blocks = span * 2;  // 2x cache region: forces misses and GC
  w.req_blocks = 8;
  w.read_pct = 0;
  w.seed = 1000 + index;
  workload::FioGen::Config r = w;
  r.read_pct = 70;
  r.seed = 2000 + index;
  r.tenant = num_tenants > 1 ? 1 : 0;
  holder->gens.push_back(std::make_unique<workload::FioGen>(w));
  holder->gens.push_back(std::make_unique<workload::FioGen>(r));
  for (auto& g : holder->gens) holder->gen_ptrs.push_back(g.get());

  DomainSetup s;
  s.cache = holder->rig.cache.get();
  for (auto& d : holder->rig.ssds) s.ssds.push_back(d.get());
  s.gens = holder->gen_ptrs;
  s.cfg.threads_per_gen = 2;
  s.cfg.iodepth = 2;
  s.cfg.duration = kDuration;
  s.cfg.warmup_bytes = 256 * KiB;
  s.cfg.num_tenants = num_tenants;
  s.owned = holder;
  return s;
}

// Like make_test_domain but with the full observability stack wired in:
// event trace (runner request events + SRC internals), op-span tracer
// (deterministic per-domain seed off the same derivation the bench harness
// uses), and the cache's write-provenance ledger. The trace capacity is
// sized so the identity runs never drop an event — asserted by the test.
DomainSetup make_obs_domain(u32 index) {
  DomainSetup s = make_test_domain(index);
  auto* holder = static_cast<TestDomain*>(s.owned.get());
  holder->trace = std::make_unique<obs::TraceLog>(1 << 20);
  holder->rig.cache->set_trace(holder->trace.get(), obs::kTrackSrc);
  s.cfg.trace = holder->trace.get();
  s.cfg.trace_track = obs::kTrackApp;
  holder->spans = std::make_unique<obs::SpanTracer>(
      common::SplitMix64(9000 + index).next(), /*rate=*/0.25);
  holder->rig.cache->set_span(holder->spans.get());
  s.cfg.spans = holder->spans.get();
  s.cfg.provenance = &holder->rig.cache->provenance();
  return s;
}

// Like make_test_domain but with a compressed DRAM tier interposed above
// the rig's cache, exactly as the bench harness wires it: the engine drives
// the tier, the tier drives the SrcCache, and RunConfig::tier makes the
// closed loop report the TierOutcome block.
DomainSetup make_tier_domain(u32 index, policy::EvictionKind ev) {
  DomainSetup s = make_test_domain(index);
  auto* holder = static_cast<TestDomain*>(s.owned.get());
  tier::TierConfig tc;
  tc.budget_bytes = 96 * kBlockSize;  // small: forces destaging + eviction
  tc.dirty_pct = 50;
  tc.eviction = ev;
  tc.destage_batch_blocks =
      static_cast<u32>(holder->rig.cfg.segment_data_slots(true));
  holder->tier = std::make_unique<tier::TierCache>(
      tc, holder->rig.cache.get(), holder->rig.cache.get());
  s.cache = holder->tier.get();
  s.cfg.tier = holder->tier.get();
  return s;
}

EngineResult run_engine(u32 domains, u32 shards, u32 threads,
                        ParallelEngine* prebuilt = nullptr) {
  EngineConfig cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  ParallelEngine local(cfg);
  ParallelEngine& eng = prebuilt != nullptr ? *prebuilt : local;
  return eng.run(domains,
                 [](u32 index, u32) { return make_test_domain(index); });
}

// The serialized run is the equality witness: every field that lands in
// REPRO_JSON — stats, latency histograms, metrics, merged time series —
// must match byte for byte.
std::string fingerprint(const EngineResult& r) {
  return workload::run_json("engine_test", "run", r.merged);
}

TEST(ParallelEngine, BitIdenticalAcrossShardCounts) {
  const EngineResult serial = run_engine(8, 1, 0);
  ASSERT_GT(serial.merged.ops, 0u);
  const std::string want = fingerprint(serial);
  for (u32 shards : {2u, 3u, 8u}) {
    const EngineResult sharded = run_engine(8, shards, 0);
    EXPECT_EQ(want, fingerprint(sharded)) << shards << " shards";
    EXPECT_EQ(sharded.shards, shards);
  }
}

TEST(ParallelEngine, BitIdenticalAcrossThreadCounts) {
  const std::string one = fingerprint(run_engine(8, 4, 1));
  const std::string four = fingerprint(run_engine(8, 4, 4));
  EXPECT_EQ(one, four);
}

// The REPRO_POLICY/REPRO_ADMIT selections must not weaken the determinism
// contract: for every (eviction, admission) combination, serial, sharded
// and multi-threaded execution produce byte-identical merged results. Each
// domain owns its policy instances, so policy state never crosses shards.
TEST(ParallelEngine, BitIdenticalForEveryPolicyCombination) {
  std::vector<std::string> prints;
  for (auto ev : {policy::EvictionKind::kPaper, policy::EvictionKind::kS3Fifo,
                  policy::EvictionKind::kSieve}) {
    for (auto ad :
         {policy::AdmissionKind::kAlways, policy::AdmissionKind::kGhost}) {
      src::SrcConfig cfg = src::testutil::small_config();
      cfg.eviction = ev;
      cfg.admission = ad;
      const auto make = [&cfg](u32 index, u32) {
        return make_test_domain(index, 0, cfg);
      };
      auto run = [&make](u32 shards, u32 threads) {
        EngineConfig ec;
        ec.shards = shards;
        ec.threads = threads;
        return fingerprint(ParallelEngine(ec).run(4, make));
      };
      const std::string label = std::string(policy::to_string(ev)) + "+" +
                                policy::to_string(ad);
      const std::string serial = run(1, 0);
      EXPECT_EQ(serial, run(4, 1)) << label << " serial vs 4 shards";
      EXPECT_EQ(serial, run(4, 4)) << label << " serial vs 4x4 threads";
      prints.push_back(serial);
    }
  }
  // Sanity: a non-default policy actually changes behaviour (otherwise the
  // identity above would be vacuous). paper+always vs s3fifo+ghost.
  EXPECT_NE(prints[0], prints[3]);
}

// The compressed DRAM tier must not weaken the determinism contract: with a
// tier above every domain (for each eviction policy the REPRO_TIER_POLICY
// knob can select), serial, sharded and multi-threaded execution produce
// byte-identical merged results — including the merged TierOutcome block,
// which run_json serializes into the fingerprint.
TEST(ParallelEngine, TierIsBitIdenticalAcrossShardsAndThreads) {
  const std::string bare = fingerprint(run_engine(4, 1, 0));
  for (auto ev : {policy::EvictionKind::kPaper, policy::EvictionKind::kS3Fifo,
                  policy::EvictionKind::kSieve}) {
    const auto make = [ev](u32 index, u32) {
      return make_tier_domain(index, ev);
    };
    auto run = [&make](u32 shards, u32 threads) {
      EngineConfig ec;
      ec.shards = shards;
      ec.threads = threads;
      return ParallelEngine(ec).run(4, make);
    };
    const EngineResult serial = run(1, 0);
    const std::string label = policy::to_string(ev);
    // The tier really participated: absorbed hits, destaged write-back,
    // and its block is active in the merged result.
    EXPECT_TRUE(serial.merged.tier.active) << label;
    EXPECT_GT(serial.merged.tier.hit_blocks, 0u) << label;
    EXPECT_GT(serial.merged.tier.destage_blocks, 0u) << label;
    EXPECT_GT(serial.merged.tier.compressed_bytes, 0u) << label;
    EXPECT_LT(serial.merged.tier.compressed_bytes,
              serial.merged.tier.uncompressed_bytes)
        << label;
    const std::string want = fingerprint(serial);
    EXPECT_EQ(want, fingerprint(run(4, 1))) << label << " serial vs 4 shards";
    EXPECT_EQ(want, fingerprint(run(4, 4))) << label << " serial vs 4x4";
    // And the tier is not a no-op: the merged outcome differs from the
    // bare-cache run (otherwise the identity above proves nothing).
    EXPECT_NE(want, bare) << label;
  }
}

TEST(ParallelEngine, ShardsBeyondDomainsClampToDomains) {
  const EngineResult r = run_engine(3, 8, 0);
  EXPECT_EQ(r.shards, 3u);
  EXPECT_EQ(fingerprint(r), fingerprint(run_engine(3, 1, 0)));
}

TEST(ParallelEngine, EngineInfoAndPerfShape) {
  const EngineResult r = run_engine(4, 2, 2);
  EXPECT_TRUE(r.merged.engine.active);
  EXPECT_EQ(r.merged.engine.domains, 4u);
  EXPECT_EQ(r.merged.engine.epochs, r.epochs);
  ASSERT_EQ(r.merged.engine.per_domain.size(), 4u);
  ASSERT_EQ(r.per_domain.size(), 4u);
  u64 ops = 0, bytes = 0;
  for (size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(r.merged.engine.per_domain[d].ops, r.per_domain[d].ops);
    ops += r.per_domain[d].ops;
    bytes += r.per_domain[d].bytes;
  }
  EXPECT_EQ(r.merged.ops, ops);
  EXPECT_EQ(r.merged.bytes, bytes);
  // Per-shard perf covers every domain exactly once (lane d runs domains
  // d, d+shards, ...).
  ASSERT_EQ(r.per_shard.size(), 2u);
  EXPECT_EQ(r.per_shard[0].domains + r.per_shard[1].domains, 4u);
  EXPECT_EQ(r.per_shard[0].ops + r.per_shard[1].ops, ops);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(ParallelEngine, MergeRecomputesDerivedMetrics) {
  const EngineResult r = run_engine(4, 2, 0);
  const workload::RunResult again = engine::merge_results(r.per_domain);
  // The merged run serializes with its engine block.
  EXPECT_NE(workload::run_json("t", "r", r.merged).find("\"engine\""),
            std::string::npos);
  // merge_results itself is deterministic and pure.
  EXPECT_EQ(again.ops, r.merged.ops);
  EXPECT_DOUBLE_EQ(again.throughput_mbps, r.merged.throughput_mbps);
  EXPECT_DOUBLE_EQ(again.hit_ratio, r.merged.hit_ratio);
  EXPECT_DOUBLE_EQ(again.io_amplification, r.merged.io_amplification);
  // Derived doubles come from the exact integer aggregates.
  EXPECT_DOUBLE_EQ(
      again.throughput_mbps,
      static_cast<double>(again.bytes) / 1e6 / again.seconds);
}

TEST(ParallelEngine, RejectsMisconfiguration) {
  EngineConfig cfg;
  ParallelEngine eng(cfg);
  EXPECT_THROW(eng.run(0, [](u32, u32) { return make_test_domain(0); }),
               std::invalid_argument);
  EXPECT_THROW(eng.run(1, engine::DomainFactory{}), std::invalid_argument);
  // Domains disagreeing on duration break the shared barrier schedule.
  EXPECT_THROW(eng.run(2,
                       [](u32 index, u32) {
                         DomainSetup s = make_test_domain(index);
                         if (index == 1) s.cfg.duration = kDuration / 2;
                         return s;
                       }),
               std::invalid_argument);
  EXPECT_THROW(eng.run(1,
                       [](u32, u32) {
                         DomainSetup s;  // no cache
                         return s;
                       }),
               std::invalid_argument);
}

// --- epoch barriers --------------------------------------------------------

// At every barrier: hooks run on the coordinator against quiescent domains
// (no pending completion before the barrier time), in registration order,
// observing an identical deterministic sequence regardless of shard count.
TEST(ParallelEngine, EpochBarrierQuiescenceAndOrdering) {
  auto run_with_probe = [](u32 shards) {
    EngineConfig cfg;
    cfg.shards = shards;
    cfg.epoch = kDuration / 4;
    ParallelEngine eng(cfg);
    std::vector<std::string> seq;
    eng.add_epoch_hook([&seq](const EpochView& v) {
      std::string line = "epoch " + std::to_string(v.epoch) + " @" +
                         std::to_string(v.rel_end) + ":";
      for (const auto& dom : *v.domains) {
        // Quiescence: nothing pending strictly before the barrier.
        EXPECT_GE(dom->rel_next_event(), v.rel_end)
            << "domain " << dom->index() << " epoch " << v.epoch;
        line += " " + std::to_string(dom->ops());
      }
      seq.push_back(line);
    });
    eng.add_epoch_hook([&seq](const EpochView& v) {
      seq.push_back("second hook " + std::to_string(v.epoch));
    });
    const EngineResult r =
        eng.run(4, [](u32 index, u32) { return make_test_domain(index); });
    EXPECT_EQ(r.epochs, 4u);
    // Hooks ran in registration order at every barrier.
    EXPECT_EQ(seq.size(), 2u * r.epochs);
    for (u32 e = 0; e < r.epochs; ++e) {
      EXPECT_EQ(seq[2 * e].rfind("epoch " + std::to_string(e), 0), 0u);
      EXPECT_EQ(seq[2 * e + 1], "second hook " + std::to_string(e));
    }
    return seq;
  };
  const std::vector<std::string> serial = run_with_probe(1);
  const std::vector<std::string> sharded = run_with_probe(4);
  EXPECT_EQ(serial, sharded);
}

// A fault-plan event delivered at a barrier (fail SSD 0 of every domain at
// epoch 1) must change the outcome — the delivery really happened — and the
// changed outcome must still be bit-identical across shard counts.
TEST(ParallelEngine, FaultDeliveryAtBarrierIsDeterministic) {
  auto run_with_fault = [](u32 shards) {
    EngineConfig cfg;
    cfg.shards = shards;
    cfg.epoch = kDuration / 4;
    ParallelEngine eng(cfg);
    eng.add_epoch_hook([](const EpochView& v) {
      if (v.epoch != 1) return;
      for (const auto& dom : *v.domains) dom->ssds()[0]->fail();
    });
    return fingerprint(
        eng.run(4, [](u32 index, u32) { return make_test_domain(index); }));
  };
  const std::string baseline = fingerprint(run_engine(4, 1, 0, nullptr));
  const std::string faulted1 = run_with_fault(1);
  const std::string faulted4 = run_with_fault(4);
  EXPECT_EQ(faulted1, faulted4);
  EXPECT_NE(faulted1, baseline);
}

// Adapt-style quota decisions delivered at a barrier (shrink tenant 0's
// share on every domain's cache at epoch 2): same contract as faults.
TEST(ParallelEngine, AdaptQuotaDeliveryAtBarrierIsDeterministic) {
  auto run_with_quotas = [](u32 shards) {
    EngineConfig cfg;
    cfg.shards = shards;
    cfg.epoch = kDuration / 4;
    ParallelEngine eng(cfg);
    // The factory records each domain's concrete SrcCache so the hook can
    // reach set_tenant_quotas (ShardDomain exposes the CacheDevice base).
    auto caches = std::make_shared<std::vector<src::SrcCache*>>(4, nullptr);
    eng.add_epoch_hook([caches](const EpochView& v) {
      if (v.epoch != 2) return;
      for (const auto& dom : *v.domains) {
        src::SrcCache* c = (*caches)[dom->index()];
        ASSERT_NE(c, nullptr);
        c->set_tenant_quotas({256, 128});
      }
    });
    const EngineResult r = eng.run(4, [caches](u32 index, u32) {
      DomainSetup s = make_test_domain(index, /*num_tenants=*/2);
      auto* holder = static_cast<TestDomain*>(s.owned.get());
      (*caches)[index] = holder->rig.cache.get();
      return s;
    });
    EXPECT_FALSE(r.merged.tenants.empty());
    return fingerprint(r);
  };
  EXPECT_EQ(run_with_quotas(1), run_with_quotas(4));
}

// --- observability under the engine ----------------------------------------

// Span tracing and the provenance ledger must not perturb the simulation:
// with both enabled in every domain, the fingerprint (which now serializes
// the spans and provenance blocks too) stays bit-identical across shard and
// thread counts. The per-domain traces must also retain every event — a
// dropped event would mean the ring silently truncated the timeline the
// identity claim is made over.
TEST(ParallelEngine, SpansAndLedgerPreserveIdentityWithZeroTraceDrops) {
  auto run_obs = [](u32 shards, u32 threads) {
    EngineConfig cfg;
    cfg.shards = shards;
    cfg.threads = threads;
    ParallelEngine eng(cfg);
    // Keep the domain holders alive past run() so the traces and tracers
    // can be inspected after the engine tears the rigs down.
    auto holders =
        std::make_shared<std::vector<std::shared_ptr<TestDomain>>>(4);
    const EngineResult r = eng.run(4, [holders](u32 index, u32) {
      DomainSetup s = make_obs_domain(index);
      (*holders)[index] = std::static_pointer_cast<TestDomain>(s.owned);
      return s;
    });
    for (const auto& d : *holders) {
      EXPECT_NE(d, nullptr);
      if (d == nullptr) continue;
      EXPECT_EQ(d->trace->dropped(), 0u) << "trace ring truncated";
      EXPECT_GT(d->trace->size(), 0u);
      EXPECT_EQ(d->trace->total_recorded(), d->trace->size());
    }
    // Both observability channels actually fired.
    EXPECT_FALSE(r.merged.provenance.empty());
    EXPECT_TRUE(r.merged.spans.active);
    EXPECT_GT(r.merged.spans.ops_sampled, 0u);
    EXPECT_GT(r.merged.spans.spans, r.merged.spans.ops_sampled);
    return fingerprint(r);
  };
  const std::string serial = run_obs(1, 0);
  EXPECT_EQ(serial, run_obs(4, 0));
  EXPECT_EQ(serial, run_obs(4, 4));
}

// An SLO watchdog fed cumulative merged state at every barrier (the same
// hook shape the bench harness installs) produces a verdict stream that is
// part of the fingerprint and bit-identical across shard counts.
TEST(ParallelEngine, SloWatchdogAtBarriersIsDeterministic) {
  auto run_slo = [](u32 shards) {
    EngineConfig cfg;
    cfg.shards = shards;
    cfg.epoch = kDuration / 4;
    ParallelEngine eng(cfg);
    obs::SloPolicy policy;
    policy.min_throughput_mbps = 1e9;  // unreachable: every epoch violates
    policy.max_degraded_domains = 0;   // no device ever fails here
    auto watchdog = std::make_shared<obs::SloWatchdog>(policy);
    eng.add_epoch_hook([watchdog](const EpochView& v) {
      u64 ops = 0;
      u64 bytes = 0;
      common::Histogram reads;
      common::Histogram writes;
      u32 degraded = 0;
      for (const auto& dom : *v.domains) {
        ops += dom->ops();
        bytes += dom->bytes();
        reads.merge(dom->latency().reads());
        writes.merge(dom->latency().writes());
        bool any_failed = false;
        for (const blockdev::BlockDevice* d : dom->ssds())
          any_failed = any_failed || d->failed();
        if (any_failed) ++degraded;
      }
      watchdog->observe_epoch(v.rel_end, ops, bytes, reads, writes, degraded);
    });
    EngineResult r =
        eng.run(4, [](u32 index, u32) { return make_test_domain(index); });
    r.merged.slo = watchdog->outcome();
    EXPECT_TRUE(r.merged.slo.active);
    EXPECT_EQ(r.merged.slo.epochs, r.epochs);
    EXPECT_EQ(r.merged.slo.violations, r.epochs);  // throughput never met
    EXPECT_EQ(r.merged.slo.degraded_epochs, 0u);
    EXPECT_TRUE(r.merged.slo.breached);
    return fingerprint(r);
  };
  EXPECT_EQ(run_slo(1), run_slo(4));
}

// --- time-series merge edge cases ------------------------------------------

// Domains may close different sample counts (a domain that finished its last
// request just before a boundary closes one fewer interval). The merge
// matches samples by index up to the *maximum* count: indices past a
// domain's end simply get no contribution from it, and "util.*" series
// average over the domains actually reporting at that index — never over
// the full domain count.
TEST(MergeResults, TimeseriesMergesUnequalSampleCountsByIndex) {
  const sim::SimTime iv = 100 * sim::kMs;
  workload::RunResult a;
  a.seconds = 0.2;
  a.timeseries.interval = iv;
  a.timeseries.window_start = 10 * iv;  // anchors differ between domains
  obs::TimeSample a0;
  a0.start = 10 * iv;
  a0.end = 11 * iv;
  a0.ops = 10;
  a0.bytes = 1000000;
  a0.app_blocks = 10;
  a0.hits = 6;
  a0.misses = 4;
  a0.io_amplification = 2.0;
  a0.series["gc.erases"] = 3.0;
  a0.series["util.ssd.0.nand"] = 0.5;
  obs::TimeSample a1 = a0;
  a1.start = 11 * iv;
  a1.end = 12 * iv;
  a1.ops = 20;
  a1.bytes = 2000000;
  a1.app_blocks = 20;
  a1.hits = 20;
  a1.misses = 0;
  a1.io_amplification = 1.5;
  a1.series.clear();
  a1.series["util.ssd.0.nand"] = 1.0;
  a.timeseries.samples = {a0, a1};

  workload::RunResult b;
  b.seconds = 0.2;
  b.timeseries.interval = iv;
  b.timeseries.window_start = 50 * iv;
  obs::TimeSample b0;
  b0.start = 50 * iv;
  b0.end = 51 * iv;
  b0.ops = 30;
  b0.bytes = 3000000;
  b0.app_blocks = 30;
  b0.hits = 0;
  b0.misses = 30;
  b0.io_amplification = 4.0;
  b0.series["gc.erases"] = 1.0;
  b0.series["util.ssd.0.nand"] = 0.7;
  b0.series["util.hdd.link"] = 0.4;  // only domain b has a primary here
  b.timeseries.samples = {b0};

  const workload::RunResult m = engine::merge_results({a, b});
  const obs::TimeSeries& ts = m.timeseries;
  EXPECT_EQ(ts.interval, iv);
  EXPECT_EQ(ts.window_start, 0);
  ASSERT_EQ(ts.samples.size(), 2u);  // max over domains, not min

  // Sample 0: both domains contribute; re-anchored at 0.
  const obs::TimeSample& s0 = ts.samples[0];
  EXPECT_EQ(s0.start, 0);
  EXPECT_EQ(s0.end, iv);
  EXPECT_EQ(s0.ops, 40u);
  EXPECT_EQ(s0.bytes, 4000000u);
  EXPECT_EQ(s0.hits, 6u);
  EXPECT_EQ(s0.misses, 34u);
  EXPECT_DOUBLE_EQ(s0.hit_ratio, 6.0 / 40.0);
  EXPECT_DOUBLE_EQ(s0.throughput_mbps, 4.0 / 0.1);  // 4 MB over 100 ms
  // SSD-blocks numerator reconstructed per domain: 2*10 + 4*30 over 40.
  EXPECT_DOUBLE_EQ(s0.io_amplification, 140.0 / 40.0);
  // Extensive series sum; util averages over the two reporters.
  EXPECT_DOUBLE_EQ(s0.series.at("gc.erases"), 4.0);
  EXPECT_DOUBLE_EQ(s0.series.at("util.ssd.0.nand"), 0.6);
  // A util series only one domain reports is NOT divided by the domain
  // count — the other domain has no such resource, not an idle one.
  EXPECT_DOUBLE_EQ(s0.series.at("util.hdd.link"), 0.4);

  // Sample 1: only domain a reaches index 1; its values pass through
  // unscaled and the util series is untouched (single reporter).
  const obs::TimeSample& s1 = ts.samples[1];
  EXPECT_EQ(s1.start, iv);
  EXPECT_EQ(s1.end, 2 * iv);
  EXPECT_EQ(s1.ops, 20u);
  EXPECT_EQ(s1.bytes, 2000000u);
  EXPECT_DOUBLE_EQ(s1.hit_ratio, 1.0);
  EXPECT_DOUBLE_EQ(s1.io_amplification, 1.5);
  EXPECT_DOUBLE_EQ(s1.series.at("util.ssd.0.nand"), 1.0);
  EXPECT_EQ(s1.series.count("gc.erases"), 0u);
  EXPECT_EQ(s1.series.count("util.hdd.link"), 0u);
}

// A domain whose run produced no samples at all (sampler disabled or the
// window closed before the first boundary) must not shrink or poison the
// merged series.
TEST(MergeResults, TimeseriesIgnoresDomainsWithoutSamples) {
  const sim::SimTime iv = 100 * sim::kMs;
  workload::RunResult empty;
  empty.seconds = 0.1;
  empty.timeseries.interval = iv;  // enabled, but closed zero intervals
  workload::RunResult full = empty;
  obs::TimeSample s;
  s.start = 7 * iv;
  s.end = 8 * iv;
  s.ops = 5;
  s.bytes = 500000;
  s.app_blocks = 5;
  s.hits = 5;
  s.io_amplification = 3.0;
  s.series["util.ssd.0.nand"] = 0.25;
  full.timeseries.window_start = 7 * iv;
  full.timeseries.samples = {s};

  const workload::RunResult m = engine::merge_results({empty, full});
  ASSERT_EQ(m.timeseries.samples.size(), 1u);
  const obs::TimeSample& s0 = m.timeseries.samples[0];
  EXPECT_EQ(s0.start, 0);  // anchored by the only contributor
  EXPECT_EQ(s0.end, iv);
  EXPECT_EQ(s0.ops, 5u);
  EXPECT_DOUBLE_EQ(s0.io_amplification, 3.0);
  EXPECT_DOUBLE_EQ(s0.series.at("util.ssd.0.nand"), 0.25);
}

}  // namespace
}  // namespace srcache
