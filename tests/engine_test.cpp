// engine::ParallelEngine: the determinism contract (bit-identical results
// for every REPRO_SHARDS/REPRO_THREADS combination), the epoch-barrier
// quiescence invariant, deterministic delivery of fault and adapt events at
// barriers, and the exactness of the per-domain merge.
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "src_test_util.hpp"
#include "workload/generators.hpp"
#include "workload/report.hpp"

namespace srcache {
namespace {

using engine::DomainSetup;
using engine::EngineConfig;
using engine::EngineResult;
using engine::EpochView;
using engine::ParallelEngine;

constexpr sim::SimTime kDuration = 200 * sim::kMs;

// One engine domain over the small SRC test rig: the rig, its generators,
// and (optionally) the per-domain fault injector, owned together so they
// outlive the engine run.
struct TestDomain {
  src::testutil::Rig rig;
  std::vector<std::unique_ptr<workload::Generator>> gens;
  std::vector<workload::Generator*> gen_ptrs;
};

// Builds domain `index`: a fresh small rig plus two FIO streams whose seeds
// derive from the domain index, mirroring how the bench harness partitions
// a trace group.
DomainSetup make_test_domain(u32 index, u32 num_tenants = 0) {
  auto holder = std::make_shared<TestDomain>();
  const u64 span =
      holder->rig.cfg.region_bytes_per_ssd / kBlockSize;  // 1k blocks
  workload::FioGen::Config w;
  w.span_blocks = span * 2;  // 2x cache region: forces misses and GC
  w.req_blocks = 8;
  w.read_pct = 0;
  w.seed = 1000 + index;
  workload::FioGen::Config r = w;
  r.read_pct = 70;
  r.seed = 2000 + index;
  r.tenant = num_tenants > 1 ? 1 : 0;
  holder->gens.push_back(std::make_unique<workload::FioGen>(w));
  holder->gens.push_back(std::make_unique<workload::FioGen>(r));
  for (auto& g : holder->gens) holder->gen_ptrs.push_back(g.get());

  DomainSetup s;
  s.cache = holder->rig.cache.get();
  for (auto& d : holder->rig.ssds) s.ssds.push_back(d.get());
  s.gens = holder->gen_ptrs;
  s.cfg.threads_per_gen = 2;
  s.cfg.iodepth = 2;
  s.cfg.duration = kDuration;
  s.cfg.warmup_bytes = 256 * KiB;
  s.cfg.num_tenants = num_tenants;
  s.owned = holder;
  return s;
}

EngineResult run_engine(u32 domains, u32 shards, u32 threads,
                        ParallelEngine* prebuilt = nullptr) {
  EngineConfig cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  ParallelEngine local(cfg);
  ParallelEngine& eng = prebuilt != nullptr ? *prebuilt : local;
  return eng.run(domains,
                 [](u32 index, u32) { return make_test_domain(index); });
}

// The serialized run is the equality witness: every field that lands in
// REPRO_JSON — stats, latency histograms, metrics, merged time series —
// must match byte for byte.
std::string fingerprint(const EngineResult& r) {
  return workload::run_json("engine_test", "run", r.merged);
}

TEST(ParallelEngine, BitIdenticalAcrossShardCounts) {
  const EngineResult serial = run_engine(8, 1, 0);
  ASSERT_GT(serial.merged.ops, 0u);
  const std::string want = fingerprint(serial);
  for (u32 shards : {2u, 3u, 8u}) {
    const EngineResult sharded = run_engine(8, shards, 0);
    EXPECT_EQ(want, fingerprint(sharded)) << shards << " shards";
    EXPECT_EQ(sharded.shards, shards);
  }
}

TEST(ParallelEngine, BitIdenticalAcrossThreadCounts) {
  const std::string one = fingerprint(run_engine(8, 4, 1));
  const std::string four = fingerprint(run_engine(8, 4, 4));
  EXPECT_EQ(one, four);
}

TEST(ParallelEngine, ShardsBeyondDomainsClampToDomains) {
  const EngineResult r = run_engine(3, 8, 0);
  EXPECT_EQ(r.shards, 3u);
  EXPECT_EQ(fingerprint(r), fingerprint(run_engine(3, 1, 0)));
}

TEST(ParallelEngine, EngineInfoAndPerfShape) {
  const EngineResult r = run_engine(4, 2, 2);
  EXPECT_TRUE(r.merged.engine.active);
  EXPECT_EQ(r.merged.engine.domains, 4u);
  EXPECT_EQ(r.merged.engine.epochs, r.epochs);
  ASSERT_EQ(r.merged.engine.per_domain.size(), 4u);
  ASSERT_EQ(r.per_domain.size(), 4u);
  u64 ops = 0, bytes = 0;
  for (size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(r.merged.engine.per_domain[d].ops, r.per_domain[d].ops);
    ops += r.per_domain[d].ops;
    bytes += r.per_domain[d].bytes;
  }
  EXPECT_EQ(r.merged.ops, ops);
  EXPECT_EQ(r.merged.bytes, bytes);
  // Per-shard perf covers every domain exactly once (lane d runs domains
  // d, d+shards, ...).
  ASSERT_EQ(r.per_shard.size(), 2u);
  EXPECT_EQ(r.per_shard[0].domains + r.per_shard[1].domains, 4u);
  EXPECT_EQ(r.per_shard[0].ops + r.per_shard[1].ops, ops);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(ParallelEngine, MergeRecomputesDerivedMetrics) {
  const EngineResult r = run_engine(4, 2, 0);
  const workload::RunResult again = engine::merge_results(r.per_domain);
  // The merged run serializes with its engine block.
  EXPECT_NE(workload::run_json("t", "r", r.merged).find("\"engine\""),
            std::string::npos);
  // merge_results itself is deterministic and pure.
  EXPECT_EQ(again.ops, r.merged.ops);
  EXPECT_DOUBLE_EQ(again.throughput_mbps, r.merged.throughput_mbps);
  EXPECT_DOUBLE_EQ(again.hit_ratio, r.merged.hit_ratio);
  EXPECT_DOUBLE_EQ(again.io_amplification, r.merged.io_amplification);
  // Derived doubles come from the exact integer aggregates.
  EXPECT_DOUBLE_EQ(
      again.throughput_mbps,
      static_cast<double>(again.bytes) / 1e6 / again.seconds);
}

TEST(ParallelEngine, RejectsMisconfiguration) {
  EngineConfig cfg;
  ParallelEngine eng(cfg);
  EXPECT_THROW(eng.run(0, [](u32, u32) { return make_test_domain(0); }),
               std::invalid_argument);
  EXPECT_THROW(eng.run(1, engine::DomainFactory{}), std::invalid_argument);
  // Domains disagreeing on duration break the shared barrier schedule.
  EXPECT_THROW(eng.run(2,
                       [](u32 index, u32) {
                         DomainSetup s = make_test_domain(index);
                         if (index == 1) s.cfg.duration = kDuration / 2;
                         return s;
                       }),
               std::invalid_argument);
  EXPECT_THROW(eng.run(1,
                       [](u32, u32) {
                         DomainSetup s;  // no cache
                         return s;
                       }),
               std::invalid_argument);
}

// --- epoch barriers --------------------------------------------------------

// At every barrier: hooks run on the coordinator against quiescent domains
// (no pending completion before the barrier time), in registration order,
// observing an identical deterministic sequence regardless of shard count.
TEST(ParallelEngine, EpochBarrierQuiescenceAndOrdering) {
  auto run_with_probe = [](u32 shards) {
    EngineConfig cfg;
    cfg.shards = shards;
    cfg.epoch = kDuration / 4;
    ParallelEngine eng(cfg);
    std::vector<std::string> seq;
    eng.add_epoch_hook([&seq](const EpochView& v) {
      std::string line = "epoch " + std::to_string(v.epoch) + " @" +
                         std::to_string(v.rel_end) + ":";
      for (const auto& dom : *v.domains) {
        // Quiescence: nothing pending strictly before the barrier.
        EXPECT_GE(dom->rel_next_event(), v.rel_end)
            << "domain " << dom->index() << " epoch " << v.epoch;
        line += " " + std::to_string(dom->ops());
      }
      seq.push_back(line);
    });
    eng.add_epoch_hook([&seq](const EpochView& v) {
      seq.push_back("second hook " + std::to_string(v.epoch));
    });
    const EngineResult r =
        eng.run(4, [](u32 index, u32) { return make_test_domain(index); });
    EXPECT_EQ(r.epochs, 4u);
    // Hooks ran in registration order at every barrier.
    EXPECT_EQ(seq.size(), 2u * r.epochs);
    for (u32 e = 0; e < r.epochs; ++e) {
      EXPECT_EQ(seq[2 * e].rfind("epoch " + std::to_string(e), 0), 0u);
      EXPECT_EQ(seq[2 * e + 1], "second hook " + std::to_string(e));
    }
    return seq;
  };
  const std::vector<std::string> serial = run_with_probe(1);
  const std::vector<std::string> sharded = run_with_probe(4);
  EXPECT_EQ(serial, sharded);
}

// A fault-plan event delivered at a barrier (fail SSD 0 of every domain at
// epoch 1) must change the outcome — the delivery really happened — and the
// changed outcome must still be bit-identical across shard counts.
TEST(ParallelEngine, FaultDeliveryAtBarrierIsDeterministic) {
  auto run_with_fault = [](u32 shards) {
    EngineConfig cfg;
    cfg.shards = shards;
    cfg.epoch = kDuration / 4;
    ParallelEngine eng(cfg);
    eng.add_epoch_hook([](const EpochView& v) {
      if (v.epoch != 1) return;
      for (const auto& dom : *v.domains) dom->ssds()[0]->fail();
    });
    return fingerprint(
        eng.run(4, [](u32 index, u32) { return make_test_domain(index); }));
  };
  const std::string baseline = fingerprint(run_engine(4, 1, 0, nullptr));
  const std::string faulted1 = run_with_fault(1);
  const std::string faulted4 = run_with_fault(4);
  EXPECT_EQ(faulted1, faulted4);
  EXPECT_NE(faulted1, baseline);
}

// Adapt-style quota decisions delivered at a barrier (shrink tenant 0's
// share on every domain's cache at epoch 2): same contract as faults.
TEST(ParallelEngine, AdaptQuotaDeliveryAtBarrierIsDeterministic) {
  auto run_with_quotas = [](u32 shards) {
    EngineConfig cfg;
    cfg.shards = shards;
    cfg.epoch = kDuration / 4;
    ParallelEngine eng(cfg);
    // The factory records each domain's concrete SrcCache so the hook can
    // reach set_tenant_quotas (ShardDomain exposes the CacheDevice base).
    auto caches = std::make_shared<std::vector<src::SrcCache*>>(4, nullptr);
    eng.add_epoch_hook([caches](const EpochView& v) {
      if (v.epoch != 2) return;
      for (const auto& dom : *v.domains) {
        src::SrcCache* c = (*caches)[dom->index()];
        ASSERT_NE(c, nullptr);
        c->set_tenant_quotas({256, 128});
      }
    });
    const EngineResult r = eng.run(4, [caches](u32 index, u32) {
      DomainSetup s = make_test_domain(index, /*num_tenants=*/2);
      auto* holder = static_cast<TestDomain*>(s.owned.get());
      (*caches)[index] = holder->rig.cache.get();
      return s;
    });
    EXPECT_FALSE(r.merged.tenants.empty());
    return fingerprint(r);
  };
  EXPECT_EQ(run_with_quotas(1), run_with_quotas(4));
}

}  // namespace
}  // namespace srcache
