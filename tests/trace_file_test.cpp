#include <gtest/gtest.h>

#include <sstream>

#include "workload/trace_file.hpp"

namespace srcache::workload {
namespace {

const char* kSample =
    "128166372003061629,usr,0,Write,7014406144,24576,41286\n"
    "128166372016382155,usr,0,Read,2657161216,4096,3693\n"
    "128166372026382245,usr,0,Write,7014430720,8192,1232\n";

TEST(TraceFile, ParsesMsrRecords) {
  std::istringstream in(kSample);
  auto r = parse_msr_csv(in);
  ASSERT_TRUE(r.is_ok());
  const auto& ops = r.value();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_TRUE(ops[0].is_write);
  EXPECT_FALSE(ops[1].is_write);
  EXPECT_EQ(ops[0].lba, 7014406144ull / kBlockSize);
  // Offset is not 4 KiB aligned: 24576 B spill across 7 blocks.
  EXPECT_EQ(ops[0].nblocks, 7u);
  EXPECT_EQ(ops[1].nblocks, 1u);
  EXPECT_EQ(ops[0].timestamp_100ns, 128166372003061629ull);
}

TEST(TraceFile, UnalignedExtentRoundsOut) {
  // Offset 1000, size 5000: covers blocks 0 and 1.
  std::istringstream in("1,h,0,Read,1000,5000,0\n");
  auto r = parse_msr_csv(in);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value()[0].lba, 0u);
  EXPECT_EQ(r.value()[0].nblocks, 2u);
}

TEST(TraceFile, SkipsHeaderAndGarbage) {
  std::istringstream in(
      "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n"
      "not a record\n"
      "5,h,0,Write,4096,4096,0\n"
      "6,h,0,Fnord,4096,4096,0\n"
      "7,h,0,Read,4096,0,0\n");
  size_t skipped = 0;
  auto r = parse_msr_csv(in, &skipped);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().size(), 1u);
  EXPECT_EQ(skipped, 4u);
}

TEST(TraceFile, EmptyInputIsError) {
  std::istringstream in("# only a comment\n");
  EXPECT_FALSE(parse_msr_csv(in).is_ok());
}

// Two malformed lines (bad record, zero-size op) after the header, which is
// counted as skipped but is not an error by itself.
const char* kDirty =
    "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n"
    "not a record\n"
    "5,h,0,Write,4096,4096,0\n"
    "7,h,0,Read,4096,0,0\n";

TEST(TraceFile, MalformedCountReported) {
  std::istringstream in(kDirty);
  auto r = parse_msr_csv(in, ParseOptions{});
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().ops.size(), 1u);
  EXPECT_EQ(r.value().malformed_lines, 3u);  // header + 2 bad records
}

TEST(TraceFile, MalformedOverThresholdIsError) {
  ParseOptions opts;
  opts.max_malformed = 2;  // tolerates header + 1, not header + 2
  std::istringstream in(kDirty);
  auto r = parse_msr_csv(in, opts);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
}

TEST(TraceFile, MalformedAtThresholdIsTolerated) {
  ParseOptions opts;
  opts.max_malformed = 3;  // exactly the dirt in kDirty
  std::istringstream in(kDirty);
  auto r = parse_msr_csv(in, opts);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().malformed_lines, 3u);
}

TEST(TraceFile, ZeroThresholdDemandsPristineTrace) {
  ParseOptions opts;
  opts.max_malformed = 0;
  std::istringstream pristine(kSample);
  EXPECT_TRUE(parse_msr_csv(pristine, opts).is_ok());
  std::istringstream dirty(kDirty);
  EXPECT_FALSE(parse_msr_csv(dirty, opts).is_ok());
}

TEST(TraceFile, ParseOptionsStampTenant) {
  ParseOptions opts;
  opts.tenant = 7;
  std::istringstream in(kSample);
  auto r = parse_msr_csv(in, opts);
  ASSERT_TRUE(r.is_ok());
  for (const TimedOp& op : r.value().ops) EXPECT_EQ(op.tenant, 7u);
}

TEST(TraceFile, WriteReadRoundTrip) {
  std::istringstream in(kSample);
  auto r = parse_msr_csv(in);
  ASSERT_TRUE(r.is_ok());
  std::ostringstream out;
  write_msr_csv(out, r.value(), "usr");
  std::istringstream back(out.str());
  auto r2 = parse_msr_csv(back);
  ASSERT_TRUE(r2.is_ok());
  ASSERT_EQ(r2.value().size(), r.value().size());
  for (size_t i = 0; i < r.value().size(); ++i) {
    EXPECT_EQ(r2.value()[i].lba, r.value()[i].lba);
    EXPECT_EQ(r2.value()[i].nblocks, r.value()[i].nblocks);
    EXPECT_EQ(r2.value()[i].is_write, r.value()[i].is_write);
  }
}

TEST(TraceFile, SummaryMatchesHand) {
  std::istringstream in(kSample);
  auto ops = parse_msr_csv(in).take();
  const TraceFileStats s = summarize(ops);
  EXPECT_EQ(s.ops, 3u);
  EXPECT_NEAR(s.read_pct, 100.0 / 3.0, 0.1);
  // 7 + 1 + 3 = 11 blocks total (unaligned extents round outward).
  EXPECT_NEAR(s.avg_req_kb, 11.0 * 4.0 / 3.0, 1e-9);
  EXPECT_EQ(s.volume_bytes, 11 * kBlockSize);
  // Ops 0 and 2 share one boundary block.
  EXPECT_EQ(s.footprint_blocks, 10u);
}

TEST(TraceFileGen, LoopsOverTrace) {
  std::vector<TimedOp> ops = {{1, true, 10, 2}, {2, false, 20, 1}};
  TraceFileGen gen(ops);
  EXPECT_EQ(gen.next().lba, 10u);
  EXPECT_EQ(gen.next().lba, 20u);
  EXPECT_EQ(gen.next().lba, 10u);  // wrapped
  EXPECT_EQ(gen.loops(), 1u);
}

TEST(TraceFileGen, OffsetAndClampApplied) {
  std::vector<TimedOp> ops = {{1, true, 1000, 4}};
  TraceFileGen gen(ops, /*lba_offset=*/500, /*lba_clamp_blocks=*/100);
  const Op op = gen.next();
  EXPECT_GE(op.lba, 500u);
  EXPECT_LT(op.lba + op.nblocks, 500u + 101u);
}

TEST(TraceFileGen, EmptyRejected) {
  EXPECT_THROW(TraceFileGen(std::vector<TimedOp>{}), std::invalid_argument);
}

}  // namespace
}  // namespace srcache::workload
