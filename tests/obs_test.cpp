// Observability subsystem: registry snapshot/delta, latency summaries,
// trace ring + Chrome export schema, JSON round-trips of REPRO output.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "flash/sim_ssd.hpp"
#include "hdd/iscsi_target.hpp"
#include "obs/json.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "src_cache/src_cache.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

namespace srcache {
namespace {

// --- JSON ------------------------------------------------------------------

TEST(Json, WriterBasics) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("a", static_cast<u64>(1));
  w.kv("b", "x\"y\n");
  w.key("c").begin_array().value(1.5).value(true).null().end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":\"x\\\"y\\n\",\"c\":[1.5,true,null]}");
}

TEST(Json, NonFiniteBecomesNull) {
  obs::JsonWriter w;
  w.begin_array().value(std::nan("")).value(1e308 * 10).end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(Json, ParseRoundTrip) {
  const auto r = obs::parse_json(
      R"({"n": -2.5e3, "s": "aAb", "l": [1, {"k": null}], "t": true})");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const obs::JsonValue& v = r.value();
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.find("n")->number, -2500.0);
  EXPECT_EQ(v.find("s")->string, "aAb");
  ASSERT_TRUE(v.find("l")->is_array());
  EXPECT_EQ(v.find("l")->array.size(), 2u);
  EXPECT_EQ(v.find("l")->array[1].find("k")->type,
            obs::JsonValue::Type::kNull);
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_FALSE(obs::parse_json("{\"a\":1,}").is_ok());   // trailing comma
  EXPECT_FALSE(obs::parse_json("{'a':1}").is_ok());      // single quotes
  EXPECT_FALSE(obs::parse_json("[1 2]").is_ok());        // missing comma
  EXPECT_FALSE(obs::parse_json("{\"a\":1} x").is_ok());  // trailing junk
  EXPECT_FALSE(obs::parse_json("01").is_ok());           // leading zero
  EXPECT_FALSE(obs::parse_json("").is_ok());
}

// --- Histogram extensions --------------------------------------------------

TEST(HistogramDelta, EmptyAndSingleSample) {
  common::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  const auto s0 = obs::HistogramStats::of(h);
  EXPECT_EQ(s0.count, 0u);
  EXPECT_DOUBLE_EQ(s0.p999, 0.0);

  h.record(1000);
  const auto s1 = obs::HistogramStats::of(h);
  EXPECT_EQ(s1.count, 1u);
  EXPECT_EQ(s1.min, 1000u);
  EXPECT_EQ(s1.max, 1000u);
  // A single sample puts every percentile in its (power-of-two) bucket.
  EXPECT_GE(s1.p50, 512.0);
  EXPECT_LE(s1.p50, 1024.0);
  EXPECT_GE(s1.p999, s1.p50);
}

TEST(HistogramDelta, MinusIsTheWindow) {
  common::Histogram h;
  for (int i = 0; i < 100; ++i) h.record(10);
  const common::Histogram before = h;
  for (int i = 0; i < 50; ++i) h.record(100000);
  const common::Histogram win = h.minus(before);
  EXPECT_EQ(win.count(), 50u);
  // Only the large samples are in the window, so its p50 is near them.
  EXPECT_GT(win.percentile(50), 10000.0);
  // Subtracting an identical snapshot leaves an empty histogram.
  const common::Histogram zero = h.minus(h);
  EXPECT_EQ(zero.count(), 0u);
  EXPECT_EQ(zero.min(), 0u);
}

TEST(HistogramDelta, MergeThenStats) {
  common::Histogram a, b;
  for (int i = 0; i < 95; ++i) a.record(8);
  for (int i = 0; i < 5; ++i) b.record(1 << 20);
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  const auto s = obs::HistogramStats::of(a);
  EXPECT_LT(s.p50, 100.0);
  EXPECT_GT(s.p99, 1e5);
  EXPECT_EQ(s.max, 1u << 20);
}

// --- MetricsRegistry -------------------------------------------------------

TEST(Metrics, RegistrySnapshotDelta) {
  obs::MetricsRegistry reg;
  u64 pulled = 10;
  double level = 0.25;
  reg.counter_fn("ssd.0.gc.erases", [&pulled] { return pulled; });
  reg.gauge_fn("src.utilization", [&level] { return level; });
  obs::Counter& c = reg.counter("src.flushes");
  common::Histogram& h = reg.histogram("src.seal_ns");
  c.inc(3);
  h.record(100);

  const obs::MetricsSnapshot s1 = reg.snapshot();
  EXPECT_EQ(s1.counters.at("ssd.0.gc.erases"), 10u);
  EXPECT_EQ(s1.counters.at("src.flushes"), 3u);
  EXPECT_DOUBLE_EQ(s1.gauges.at("src.utilization"), 0.25);
  EXPECT_EQ(s1.histograms.at("src.seal_ns").count(), 1u);

  pulled = 25;
  level = 0.5;
  c.inc();
  h.record(200);
  const obs::MetricsSnapshot d = reg.snapshot().delta_since(s1);
  EXPECT_EQ(d.counters.at("ssd.0.gc.erases"), 15u);  // 25 - 10
  EXPECT_EQ(d.counters.at("src.flushes"), 1u);
  EXPECT_DOUBLE_EQ(d.gauges.at("src.utilization"), 0.5);  // point-in-time
  EXPECT_EQ(d.histograms.at("src.seal_ns").count(), 1u);
}

TEST(Metrics, ScopesNest) {
  obs::MetricsRegistry reg;
  obs::Scope root(reg, "ssd.2");
  root.scope("gc").counter("erases").inc(7);
  EXPECT_EQ(reg.snapshot().counters.at("ssd.2.gc.erases"), 7u);
  // Same name resolves to the same counter.
  root.scope("gc").counter("erases").inc(1);
  EXPECT_EQ(reg.snapshot().counters.at("ssd.2.gc.erases"), 8u);
}

TEST(Metrics, SnapshotJsonParses) {
  obs::MetricsRegistry reg;
  reg.counter("a.b").inc(42);
  reg.gauge_fn("g", [] { return 1.5; });
  reg.histogram("h").record(1000);
  const auto r = obs::parse_json(reg.snapshot().to_json());
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const obs::JsonValue& v = r.value();
  EXPECT_DOUBLE_EQ(v.find("counters")->find("a.b")->number, 42.0);
  EXPECT_DOUBLE_EQ(v.find("gauges")->find("g")->number, 1.5);
  const obs::JsonValue* h = v.find("histograms")->find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("count")->number, 1.0);
  EXPECT_NE(h->find("p99"), nullptr);
}

// --- LatencyRecorder -------------------------------------------------------

TEST(Latency, ClassifyAndMerge) {
  EXPECT_EQ(obs::classify(false, true), obs::ReqClass::kReadHit);
  EXPECT_EQ(obs::classify(false, false), obs::ReqClass::kReadMiss);
  EXPECT_EQ(obs::classify(true, true), obs::ReqClass::kWriteHit);
  EXPECT_EQ(obs::classify(true, false), obs::ReqClass::kWriteMiss);

  obs::LatencyRecorder rec;
  rec.record(obs::ReqClass::kReadHit, 1000);
  rec.record(obs::ReqClass::kReadMiss, 8000000);
  rec.record(obs::ReqClass::kWriteMiss, 2000);
  EXPECT_EQ(rec.reads().count(), 2u);
  EXPECT_EQ(rec.writes().count(), 1u);
  const auto s = obs::LatencySummary::of(rec.reads());
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.max, 8000000u);
  rec.reset();
  EXPECT_EQ(rec.reads().count(), 0u);
}

TEST(Latency, NegativeLatencyClampIsCounted) {
  obs::LatencyRecorder rec;
  rec.record(obs::ReqClass::kReadHit, 500);
  EXPECT_EQ(rec.clamped(), 0u);
  rec.record(obs::ReqClass::kReadHit, -1);
  rec.record(obs::ReqClass::kWriteMiss, -123456);
  // Clamped samples still land in the histograms (as 0) but are counted.
  EXPECT_EQ(rec.clamped(), 2u);
  EXPECT_EQ(rec.reads().count(), 2u);
  EXPECT_EQ(rec.writes().count(), 1u);
  EXPECT_EQ(rec.histogram(obs::ReqClass::kWriteMiss).max(), 0u);
  rec.reset();
  EXPECT_EQ(rec.clamped(), 0u);
}

// --- TraceLog --------------------------------------------------------------

TEST(Trace, CapacityDropsNewestAndCounts) {
  obs::TraceLog log(4);
  for (int i = 0; i < 10; ++i)
    log.instant("e", obs::kTrackApp, i * 100, static_cast<u64>(i));
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_recorded(), 10u);
  // Drop-newest: the retained prefix is intact and the overflow is counted
  // (surfaced as the obs.trace.dropped gauge), never silently overwritten.
  EXPECT_EQ(log.dropped(), 6u);
  const auto evs = log.events();
  ASSERT_EQ(evs.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(evs[i].arg, static_cast<u64>(i));
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(Trace, NegativeDurationClamped) {
  obs::TraceLog log(8);
  log.complete("x", 0, 500, 400);
  EXPECT_EQ(log.events()[0].dur, 0);
}

TEST(Trace, ChromeJsonSchema) {
  obs::TraceLog log(64);
  log.complete("req.read", obs::kTrackApp, 3000, 5000, 8);
  log.instant("src.ssd_failure", obs::kTrackSrc, 1000, 2);
  log.complete("ssd.flush", obs::kTrackSsdBase, 2000, 9000);
  const auto r = obs::parse_json(log.to_chrome_json());
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const obs::JsonValue& v = r.value();
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.array.size(), 3u);
  std::map<u32, double> last_ts;
  for (const auto& e : v.array) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.find("name"), nullptr);
    EXPECT_TRUE(e.find("name")->is_string());
    ASSERT_NE(e.find("ph"), nullptr);
    const std::string& ph = e.find("ph")->string;
    EXPECT_TRUE(ph == "X" || ph == "i");
    ASSERT_NE(e.find("ts"), nullptr);
    EXPECT_TRUE(e.find("ts")->is_number());
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    if (ph == "X") {
      EXPECT_NE(e.find("dur"), nullptr);
    }
    // Chronological per track (and globally: events are sorted by ts).
    const u32 tid = static_cast<u32>(e.find("tid")->number);
    auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(e.find("ts")->number, it->second);
    }
    last_ts[tid] = e.find("ts")->number;
  }
  // ts is microseconds: the instant at 1000 ns sorts first at 1 us.
  EXPECT_DOUBLE_EQ(v.array[0].find("ts")->number, 1.0);
  EXPECT_EQ(v.array[0].find("name")->string, "src.ssd_failure");
}

// --- TimeSeriesSampler ------------------------------------------------------

TEST(TimeSeries, IntervalAlignmentAtWindowEdges) {
  // Window starts off any boundary grid; the tail interval is partial.
  obs::TimeSeriesSampler s(nullptr, 100);
  ASSERT_TRUE(s.enabled());
  s.start(50);
  s.record(60, /*is_write=*/false, /*hit=*/true, 2, 10);
  s.record(149, false, false, 2, 30);
  s.record(250, true, false, 1, 40);  // crosses the 150 and 250 boundaries
  s.finish(305);
  const obs::TimeSeries ts = s.take();
  EXPECT_EQ(ts.interval, 100);
  EXPECT_EQ(ts.window_start, 50);
  EXPECT_FALSE(ts.truncated);
  ASSERT_EQ(ts.samples.size(), 3u);
  EXPECT_EQ(ts.samples[0].start, 50);
  EXPECT_EQ(ts.samples[0].end, 150);
  EXPECT_EQ(ts.samples[0].ops, 2u);
  EXPECT_EQ(ts.samples[0].bytes, 40u);
  EXPECT_DOUBLE_EQ(ts.samples[0].hit_ratio, 0.5);
  EXPECT_EQ(ts.samples[1].ops, 0u);  // [150,250) saw no completions
  EXPECT_DOUBLE_EQ(ts.samples[1].throughput_mbps, 0.0);
  EXPECT_EQ(ts.samples[2].start, 250);
  EXPECT_EQ(ts.samples[2].end, 305);  // partial tail keeps its true length
  EXPECT_EQ(ts.samples[2].ops, 1u);
  // Rates normalize by the actual (shorter) tail duration.
  EXPECT_DOUBLE_EQ(ts.samples[2].throughput_mbps,
                   40.0 / 1e6 / sim::to_seconds(55));
}

TEST(TimeSeries, FinishOnBoundaryProducesNoEmptyTail) {
  obs::TimeSeriesSampler s(nullptr, 100);
  s.start(0);
  s.record(10, false, true, 1, 4096);
  s.finish(200);
  const obs::TimeSeries ts = s.take();
  ASSERT_EQ(ts.samples.size(), 2u);
  EXPECT_EQ(ts.samples[1].start, 100);
  EXPECT_EQ(ts.samples[1].end, 200);
}

TEST(TimeSeries, ZeroRequestIntervalsAreEmitted) {
  obs::TimeSeriesSampler s(nullptr, 100);
  s.start(0);
  s.record(10, false, true, 1, 100);
  s.record(910, false, true, 1, 100);  // long idle gap
  s.finish(1000);
  const obs::TimeSeries ts = s.take();
  ASSERT_EQ(ts.samples.size(), 10u);
  for (size_t i = 1; i <= 8; ++i) {
    EXPECT_EQ(ts.samples[i].ops, 0u) << i;
    EXPECT_EQ(ts.samples[i].bytes, 0u) << i;
    EXPECT_DOUBLE_EQ(ts.samples[i].hit_ratio, 0.0) << i;
  }
  EXPECT_EQ(ts.samples[9].ops, 1u);
}

TEST(TimeSeries, DisabledAndTruncatedSamplers) {
  obs::TimeSeriesSampler off(nullptr, 0);
  EXPECT_FALSE(off.enabled());
  off.start(0);
  off.record(10, false, true, 1, 100);
  off.finish(1000);
  EXPECT_TRUE(off.take().empty());

  obs::TimeSeriesSampler capped(nullptr, 10, /*max_samples=*/3);
  capped.start(0);
  capped.record(5, false, true, 1, 100);
  capped.finish(1000);  // would need 100 samples
  const obs::TimeSeries ts = capped.take();
  EXPECT_TRUE(ts.truncated);
  EXPECT_EQ(ts.samples.size(), 3u);
}

TEST(TimeSeries, UtilizationFromBusyDeltasIsMonotoneNonNegative) {
  obs::MetricsRegistry reg;
  u64 busy = 0;
  reg.counter_fn("ssd.0.nand_busy_ns", [&busy] { return busy; });
  reg.gauge_fn("ssd.0.nand_units", [] { return 2.0; });
  double frac = 0.25;
  reg.gauge_fn("src.dirty_buffer_frac", [&frac] { return frac; });

  obs::TimeSeriesSampler s(&reg, 100);
  s.start(0);
  busy = 100;  // 100 ns of service charged across 2 units in [0,100)
  s.record(100, false, true, 1, 4096);  // closes [0,100)
  busy = 300;  // fully busy interval
  frac = 0.75;
  s.record(250, false, true, 1, 4096);  // closes [100,200)
  busy = 250;  // counter went "backwards" (reset): delta clamps to 0
  s.finish(300);
  const obs::TimeSeries ts = s.take();
  ASSERT_EQ(ts.samples.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.samples[0].series.at("util.ssd.0.nand"), 0.5);
  EXPECT_DOUBLE_EQ(ts.samples[1].series.at("util.ssd.0.nand"), 1.0);
  EXPECT_DOUBLE_EQ(ts.samples[2].series.at("util.ssd.0.nand"), 0.0);
  for (const auto& sample : ts.samples)
    for (const auto& [name, v] : sample.series) {
      if (name.starts_with("util.")) { EXPECT_GE(v, 0.0) << name; }
    }
  // Gauges pass through point-in-time; *_units helper gauges do not.
  EXPECT_DOUBLE_EQ(ts.samples[0].series.at("src.dirty_buffer_frac"), 0.25);
  EXPECT_DOUBLE_EQ(ts.samples[1].series.at("src.dirty_buffer_frac"), 0.75);
  EXPECT_EQ(ts.samples[0].series.count("ssd.0.nand_units"), 0u);
}

// A units gauge that reads zero (component registered before sizing itself,
// or a resource with no active lanes) must not become a divisor: the sampler
// falls back to one unit, keeping utilization finite and exact.
TEST(TimeSeries, ZeroUnitsGaugeFallsBackToOneUnit) {
  obs::MetricsRegistry reg;
  u64 busy = 0;
  reg.counter_fn("ssd.0.nand_busy_ns", [&busy] { return busy; });
  double units = 0.0;
  reg.gauge_fn("ssd.0.nand_units", [&units] { return units; });

  obs::TimeSeriesSampler s(&reg, 100);
  s.start(0);
  busy = 50;
  s.record(100, false, true, 1, 4096);  // closes [0,100) with gauge at 0
  units = 2.0;  // gauge comes alive for the next interval
  busy = 250;
  s.finish(200);
  const obs::TimeSeries ts = s.take();
  ASSERT_EQ(ts.samples.size(), 2u);
  // Zero gauge: 50 ns busy over a 100 ns interval, one implied unit.
  EXPECT_DOUBLE_EQ(ts.samples[0].series.at("util.ssd.0.nand"), 0.5);
  // Positive gauge divides as usual: 200 ns over 100 ns x 2 units.
  EXPECT_DOUBLE_EQ(ts.samples[1].series.at("util.ssd.0.nand"), 1.0);
  // The helper gauge itself still never leaks through as a series.
  for (const auto& sample : ts.samples)
    EXPECT_EQ(sample.series.count("ssd.0.nand_units"), 0u);
}

TEST(TimeSeries, CsvEscaping) {
  obs::TimeSeries ts;
  ts.interval = 100;
  ts.window_start = 0;
  obs::TimeSample a;
  a.start = 0;
  a.end = 100;
  a.ops = 1;
  a.bytes = 4096;
  a.series["plain"] = 2.0;
  a.series["we,\"ird\nname"] = 1.5;
  ts.samples.push_back(a);
  const std::string csv = ts.to_csv();
  const size_t nl = csv.find('\n');
  ASSERT_NE(nl, std::string::npos);
  // The awkward series name is quoted with its inner quote doubled; the
  // plain one is untouched.
  EXPECT_NE(csv.find("\"we,\"\"ird\nname\""), std::string::npos);
  EXPECT_EQ(
      csv.substr(0, nl),
      "t_ms,dur_ms,ops,bytes,throughput_mbps,hit_ratio,io_amplification,"
      "plain,\"we,\"\"ird");  // header row continues past the embedded \n
  EXPECT_NE(csv.find(",2,1.5\n"), std::string::npos);  // data row tail
}

TEST(TimeSeries, JsonRoundTrip) {
  obs::MetricsRegistry reg;
  u64 busy = 0;
  reg.counter_fn("ssd.0.nand_busy_ns", [&busy] { return busy; });
  obs::TimeSeriesSampler s(&reg, 100);
  s.start(40);
  busy = 70;
  s.record(60, false, true, 8, 32768);
  s.record(170, true, false, 2, 8192);
  s.finish(240);
  const obs::TimeSeries ts = s.take();

  const auto parsed = obs::parse_json(ts.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const auto back = obs::TimeSeries::from_json(parsed.value());
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  const obs::TimeSeries& rt = back.value();
  EXPECT_EQ(rt.interval, ts.interval);
  EXPECT_EQ(rt.window_start, ts.window_start);
  EXPECT_EQ(rt.truncated, ts.truncated);
  ASSERT_EQ(rt.samples.size(), ts.samples.size());
  for (size_t i = 0; i < ts.samples.size(); ++i) {
    EXPECT_EQ(rt.samples[i].start, ts.samples[i].start) << i;
    EXPECT_EQ(rt.samples[i].end, ts.samples[i].end) << i;
    EXPECT_EQ(rt.samples[i].ops, ts.samples[i].ops) << i;
    EXPECT_EQ(rt.samples[i].bytes, ts.samples[i].bytes) << i;
    EXPECT_EQ(rt.samples[i].hits, ts.samples[i].hits) << i;
    EXPECT_EQ(rt.samples[i].misses, ts.samples[i].misses) << i;
    EXPECT_DOUBLE_EQ(rt.samples[i].throughput_mbps,
                     ts.samples[i].throughput_mbps)
        << i;
    EXPECT_EQ(rt.samples[i].series, ts.samples[i].series) << i;
  }
  // And the CSV regenerated from the round-tripped series is identical.
  EXPECT_EQ(rt.to_csv(), ts.to_csv());

  EXPECT_FALSE(obs::TimeSeries::from_json(obs::JsonValue{}).is_ok());
}

// --- End-to-end: instrumented SRC stack ------------------------------------

// Small SimSsd-backed SRC rig with registry + trace wired, mirroring the
// bench harness at test scale.
struct ObsRig {
  flash::SsdSpec spec;
  src::SrcConfig cfg;
  std::vector<std::unique_ptr<flash::SimSsd>> ssds;
  std::unique_ptr<hdd::IscsiTarget> primary;
  std::unique_ptr<src::SrcCache> cache;
  obs::MetricsRegistry registry;
  obs::TraceLog trace{1 << 14};

  ObsRig() {
    spec.capacity_bytes = 8 * MiB;
    spec.units = 4;
    spec.pages_per_block = 64;  // erase group = 1 MiB

    cfg.num_ssds = 4;
    cfg.chunk_bytes = 32 * KiB;
    cfg.erase_group_bytes = 256 * KiB;
    cfg.region_bytes_per_ssd = 4 * MiB;
    cfg.verify_checksums = false;
    cfg.twait = 1 * sim::kSec;

    std::vector<blockdev::BlockDevice*> devs;
    for (u32 i = 0; i < cfg.num_ssds; ++i) {
      ssds.push_back(
          std::make_unique<flash::SimSsd>(spec, /*track_content=*/false));
      ssds.back()->precondition();
      ssds.back()->register_metrics(
          obs::Scope(registry, "ssd." + std::to_string(i)));
      ssds.back()->set_trace(&trace, obs::kTrackSsdBase + i);
      devs.push_back(ssds.back().get());
    }
    hdd::IscsiConfig pc;
    pc.disk.capacity_bytes = 1 * GiB;
    pc.server_cache_bytes = 16 * MiB;
    pc.dirty_limit_bytes = 4 * MiB;
    primary = std::make_unique<hdd::IscsiTarget>(pc);
    primary->register_metrics(obs::Scope(registry, "hdd"));
    primary->set_trace(&trace, obs::kTrackPrimary);
    cache = std::make_unique<src::SrcCache>(cfg, devs, primary.get());
    cache->register_metrics(obs::Scope(registry, "src"));
    cache->set_trace(&trace, obs::kTrackSrc);
    cache->format(0);
  }

  workload::RunResult run() {
    workload::FioGen::Config fc;
    fc.span_blocks = 2 * cfg.num_ssds * cfg.region_bytes_per_ssd / kBlockSize;
    fc.req_blocks = 8;
    fc.read_pct = 50;
    fc.seed = 7;
    workload::FioGen gen(fc);
    workload::Runner runner(cache.get(),
                            {ssds[0].get(), ssds[1].get(), ssds[2].get(),
                             ssds[3].get()});
    workload::RunConfig rc;
    rc.threads_per_gen = 2;
    rc.iodepth = 2;
    rc.duration = 2 * sim::kSec;
    rc.warmup_bytes = 8 * MiB;
    rc.registry = &registry;
    rc.trace = &trace;
    rc.timeseries_interval = 100 * sim::kMs;  // 20 intervals per run
    return runner.run({&gen}, rc);
  }
};

TEST(ObsEndToEnd, RunnerFillsLatencyAndMetrics) {
  ObsRig rig;
  const workload::RunResult res = rig.run();
  ASSERT_GT(res.ops, 100u);
  EXPECT_EQ(res.read_lat.count + res.write_lat.count, res.ops);
  EXPECT_GT(res.read_lat.p50, 0.0);
  EXPECT_GE(res.read_lat.p99, res.read_lat.p50);
  EXPECT_GE(res.read_lat.p999, res.read_lat.p99);
  EXPECT_GT(res.write_lat.p50, 0.0);
  // The four classes partition the merged histograms.
  u64 class_total = 0;
  for (const auto& c : res.class_lat) class_total += c.count;
  EXPECT_EQ(class_total, res.ops);

  // Registry delta covers all three layers.
  EXPECT_GT(res.metrics.counters.at("src.segments_written"), 0u);
  EXPECT_GT(res.metrics.counters.at("ssd.0.write_blocks"), 0u);
  ASSERT_TRUE(res.metrics.counters.count("ssd.3.gc.erases"));
  ASSERT_TRUE(res.metrics.counters.count("ssd.0.flushes"));
  ASSERT_TRUE(res.metrics.counters.count("ssd.0.controller_busy_ns"));
  ASSERT_TRUE(res.metrics.counters.count("ssd.0.nand.die.3.busy_ns"));
  ASSERT_TRUE(res.metrics.counters.count("hdd.read_ops"));
  ASSERT_TRUE(res.metrics.counters.count("hdd.disk.0.arm_busy_ns"));
  EXPECT_TRUE(res.metrics.gauges.count("src.utilization"));
  EXPECT_TRUE(res.metrics.gauges.count("src.dirty_buffer_frac"));
  // A clean run clamps no latencies, and says so.
  EXPECT_EQ(res.latency_clamped, 0u);
  EXPECT_EQ(res.metrics.counters.at("obs.latency.clamped"), 0u);

  // The sampled window partitions the run: per-interval ops/bytes sum back
  // to the totals, intervals tile [start, start+duration), and per-resource
  // utilization is present and non-negative throughout.
  const obs::TimeSeries& ts = res.timeseries;
  ASSERT_FALSE(ts.empty());
  EXPECT_FALSE(ts.truncated);
  EXPECT_EQ(ts.samples.size(), 20u);
  u64 ts_ops = 0, ts_bytes = 0;
  sim::SimTime expect_start = ts.window_start;
  for (const auto& sample : ts.samples) {
    EXPECT_EQ(sample.start, expect_start);
    expect_start = sample.end;
    ts_ops += sample.ops;
    ts_bytes += sample.bytes;
    ASSERT_TRUE(sample.series.count("util.ssd.0.nand"));
    ASSERT_TRUE(sample.series.count("util.ssd.0.controller"));
    ASSERT_TRUE(sample.series.count("util.hdd.link"));
    ASSERT_TRUE(sample.series.count("util.hdd.disk.0.arm"));
    ASSERT_TRUE(sample.series.count("gc.erases"));
    for (const auto& [name, v] : sample.series) {
      if (name.starts_with("util.")) { EXPECT_GE(v, 0.0) << name; }
    }
  }
  EXPECT_EQ(ts_ops, res.ops);
  EXPECT_EQ(ts_bytes, res.bytes);
  // The run pushes real traffic, so NAND utilization shows up somewhere.
  double max_nand = 0.0;
  for (const auto& sample : ts.samples)
    max_nand = std::max(max_nand, sample.series.at("util.ssd.0.nand"));
  EXPECT_GT(max_nand, 0.0);

  // The trace saw application requests and cache internals.
  std::set<std::string> names;
  for (const auto& e : rig.trace.events()) names.insert(e.name);
  EXPECT_TRUE(names.count("req.read"));
  EXPECT_TRUE(names.count("req.write"));
  EXPECT_TRUE(names.count("src.segment_seal"));
}

TEST(ObsEndToEnd, ReportJsonRoundTrip) {
  ObsRig rig;
  const workload::RunResult res = rig.run();

  workload::ReproReport report(/*scale=*/0.01, /*virtual_seconds=*/2.0);
  report.add("obs_test", "fio_mixed", res);
  const auto parsed = obs::parse_json(report.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const obs::JsonValue& doc = parsed.value();
  EXPECT_EQ(doc.find("schema")->string, "srcache-repro-v7");
  ASSERT_TRUE(doc.find("runs")->is_array());
  ASSERT_EQ(doc.find("runs")->array.size(), 1u);

  const obs::JsonValue& run = doc.find("runs")->array[0];
  EXPECT_EQ(run.find("bench")->string, "obs_test");
  EXPECT_EQ(run.find("name")->string, "fio_mixed");
  EXPECT_DOUBLE_EQ(run.find("throughput_mbps")->number, res.throughput_mbps);
  EXPECT_DOUBLE_EQ(run.find("io_amplification")->number,
                   res.io_amplification);
  EXPECT_DOUBLE_EQ(run.find("hit_ratio")->number, res.hit_ratio);

  const obs::JsonValue* lat = run.find("latency_ns");
  ASSERT_NE(lat, nullptr);
  for (const char* dir : {"read", "write"}) {
    const obs::JsonValue* d = lat->find(dir);
    ASSERT_NE(d, nullptr) << dir;
    for (const char* p : {"p50", "p95", "p99", "p999"}) {
      ASSERT_NE(d->find(p), nullptr) << dir << "." << p;
      EXPECT_TRUE(d->find(p)->is_number());
    }
  }
  EXPECT_DOUBLE_EQ(lat->find("read")->find("p99")->number, res.read_lat.p99);

  // v2 additions: the clamp counter sits inside latency_ns...
  const obs::JsonValue* clamped = lat->find("clamped");
  ASSERT_NE(clamped, nullptr);
  EXPECT_TRUE(clamped->is_number());
  EXPECT_DOUBLE_EQ(clamped->number, 0.0);

  // ...and the embedded timeseries object round-trips losslessly.
  const obs::JsonValue* ts = run.find("timeseries");
  ASSERT_NE(ts, nullptr);
  ASSERT_TRUE(ts->is_object());
  ASSERT_NE(ts->find("samples"), nullptr);
  EXPECT_EQ(ts->find("samples")->array.size(), res.timeseries.samples.size());
  const auto decoded = obs::TimeSeries::from_json(*ts);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().interval, res.timeseries.interval);
  EXPECT_EQ(decoded.value().window_start, res.timeseries.window_start);
  ASSERT_FALSE(decoded.value().samples.empty());
  const obs::TimeSample& got = decoded.value().samples.front();
  const obs::TimeSample& want = res.timeseries.samples.front();
  EXPECT_EQ(got.ops, want.ops);
  EXPECT_TRUE(got.series.count("util.ssd.0.nand"));
  EXPECT_DOUBLE_EQ(got.series.at("util.ssd.0.nand"),
                   want.series.at("util.ssd.0.nand"));

  // Per-SSD GC / erase / flush counters from the registry delta.
  const obs::JsonValue* counters = run.find("metrics")->find("counters");
  ASSERT_NE(counters, nullptr);
  for (int i = 0; i < 4; ++i) {
    const std::string pre = "ssd." + std::to_string(i) + ".";
    ASSERT_NE(counters->find(pre + "gc.erases"), nullptr);
    ASSERT_NE(counters->find(pre + "gc.pages_copied"), nullptr);
    ASSERT_NE(counters->find(pre + "flushes"), nullptr);
  }
}

TEST(ObsEndToEnd, ReportJsonTenantsBlockRoundTrips) {
  // Schema v3 is a strict superset of v2: the tenants/adapt blocks appear
  // exactly when the run was multi-tenant, and round-trip through the JSON
  // parser field for field.
  ObsRig rig;
  workload::RunResult res = rig.run();
  ASSERT_TRUE(res.tenants.empty());  // single-tenant run: no block emitted
  {
    const auto parsed = obs::parse_json(
        workload::run_json("obs_test", "single", res));
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
    EXPECT_EQ(parsed.value().find("tenants"), nullptr);
    EXPECT_EQ(parsed.value().find("adapt"), nullptr);
  }

  res.tenants.resize(2);
  res.tenants[0] = {/*ops=*/120, /*bytes=*/491520, /*hit_blocks=*/300,
                    /*miss_blocks=*/100, /*target_blocks=*/2052};
  res.tenants[1] = {/*ops=*/40, /*bytes=*/163840, /*hit_blocks=*/10,
                    /*miss_blocks=*/190, /*target_blocks=*/108};
  res.adapt_epochs = 9;
  res.adapt_rebalances = 2;
  const auto parsed = obs::parse_json(
      workload::run_json("obs_test", "two_tenant", res));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const obs::JsonValue& run = parsed.value();

  const obs::JsonValue* tenants = run.find("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_TRUE(tenants->is_array());
  ASSERT_EQ(tenants->array.size(), 2u);
  for (size_t t = 0; t < 2; ++t) {
    const obs::JsonValue& tn = tenants->array[t];
    const workload::TenantOutcome& want = res.tenants[t];
    EXPECT_DOUBLE_EQ(tn.find("tenant")->number, static_cast<double>(t));
    EXPECT_DOUBLE_EQ(tn.find("ops")->number, static_cast<double>(want.ops));
    EXPECT_DOUBLE_EQ(tn.find("bytes")->number,
                     static_cast<double>(want.bytes));
    EXPECT_DOUBLE_EQ(tn.find("hit_blocks")->number,
                     static_cast<double>(want.hit_blocks));
    EXPECT_DOUBLE_EQ(tn.find("miss_blocks")->number,
                     static_cast<double>(want.miss_blocks));
    EXPECT_DOUBLE_EQ(tn.find("hit_ratio")->number, want.hit_ratio());
    EXPECT_DOUBLE_EQ(tn.find("target_blocks")->number,
                     static_cast<double>(want.target_blocks));
  }
  const obs::JsonValue* adapt = run.find("adapt");
  ASSERT_NE(adapt, nullptr);
  EXPECT_DOUBLE_EQ(adapt->find("epochs")->number, 9.0);
  EXPECT_DOUBLE_EQ(adapt->find("rebalances")->number, 2.0);
}

// --- SpanTracer ------------------------------------------------------------

TEST(Span, TreeStructureAndAmbientStack) {
  obs::SpanTracer tr(/*seed=*/1, /*rate=*/1.0);
  ASSERT_TRUE(tr.begin_op("op.write", 100));
  ASSERT_TRUE(tr.sampling());
  const u32 fill = tr.begin_span("src.segment_fill", 110);
  ASSERT_NE(fill, obs::kNoSpan);
  const u32 ssd = tr.begin_span("ssd.write", 120, /*dev=*/2);
  ASSERT_NE(ssd, obs::kNoSpan);
  tr.end_span(ssd, 150, 8);
  tr.end_span(fill, 160, 4);
  tr.end_op(200, 16);
  EXPECT_FALSE(tr.sampling());

  const auto& recs = tr.records();
  ASSERT_EQ(recs.size(), 3u);
  // Root: no parent, depth 0, gets the op arg and the op end time.
  EXPECT_EQ(recs[0].parent, obs::kNoSpan);
  EXPECT_EQ(recs[0].depth, 0u);
  EXPECT_EQ(recs[0].end, 200);
  EXPECT_EQ(recs[0].arg, 16u);
  // Children chain under the root with the root's trace id.
  EXPECT_EQ(recs[1].parent, 0u);
  EXPECT_EQ(recs[1].depth, 1u);
  EXPECT_EQ(recs[2].parent, 1u);
  EXPECT_EQ(recs[2].depth, 2u);
  EXPECT_EQ(recs[2].dev, 2u);
  EXPECT_EQ(recs[1].trace_id, recs[0].trace_id);
  EXPECT_EQ(recs[2].trace_id, recs[0].trace_id);
}

TEST(Span, EndOpClosesForgottenChildren) {
  obs::SpanTracer tr(1, 1.0);
  ASSERT_TRUE(tr.begin_op("op.read", 0));
  const u32 child = tr.begin_span("backend.fetch", 10);
  ASSERT_NE(child, obs::kNoSpan);
  tr.end_op(500, 1);  // child never ended explicitly
  ASSERT_EQ(tr.records().size(), 2u);
  EXPECT_EQ(tr.records()[1].end, 500);  // inherits the op completion time
  EXPECT_FALSE(tr.sampling());
}

TEST(Span, UnsampledOpRecordsNothingButDraws) {
  obs::SpanTracer tr(1, 0.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(tr.begin_op("op.read", i));
    EXPECT_FALSE(tr.sampling());
    EXPECT_EQ(tr.begin_span("ssd.read", i), obs::kNoSpan);
    tr.end_op(i + 1, 1);
  }
  const obs::SpanOutcome o = tr.outcome();
  EXPECT_EQ(o.ops_seen, 10u);
  EXPECT_EQ(o.ops_sampled, 0u);
  EXPECT_EQ(o.spans, 0u);
}

TEST(Span, SamplingDrawIsDeterministicPerSeed) {
  obs::SpanTracer a(42, 0.5);
  obs::SpanTracer b(42, 0.5);
  u32 picked_a = 0, picked_b = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.begin_op("op", i)) ++picked_a;
    a.end_op(i + 1, 1);
    if (b.begin_op("op", i)) ++picked_b;
    b.end_op(i + 1, 1);
  }
  EXPECT_EQ(picked_a, picked_b);
  EXPECT_GT(picked_a, 0u);
  EXPECT_LT(picked_a, 200u);
}

TEST(Span, CapacityCapDropsAndCounts) {
  obs::SpanTracer tr(1, 1.0, /*cap=*/2);
  ASSERT_TRUE(tr.begin_op("op.write", 0));
  EXPECT_NE(tr.begin_span("a", 1), obs::kNoSpan);
  EXPECT_EQ(tr.begin_span("b", 2), obs::kNoSpan);  // over cap
  tr.end_op(10, 1);
  EXPECT_FALSE(tr.begin_op("op.write", 20));  // root itself over cap
  const obs::SpanOutcome o = tr.outcome();
  EXPECT_EQ(o.spans, 2u);
  EXPECT_EQ(o.span_dropped, 2u);
}

TEST(Span, OutcomeMergeAddIsExact) {
  obs::SpanTracer a(1, 1.0);
  ASSERT_TRUE(a.begin_op("op.read", 0));
  a.end_op(100, 1);
  obs::SpanTracer b(2, 1.0);
  ASSERT_TRUE(b.begin_op("op.read", 0));
  b.end_op(50, 1);
  ASSERT_TRUE(b.begin_op("op.write", 60));
  b.end_op(70, 1);

  obs::SpanOutcome m = a.outcome();
  m.merge_add(b.outcome());
  EXPECT_TRUE(m.active);
  EXPECT_EQ(m.ops_seen, 3u);
  EXPECT_EQ(m.ops_sampled, 3u);
  EXPECT_EQ(m.spans, 3u);
  EXPECT_EQ(m.by_name.at("op.read").count, 2u);
  EXPECT_EQ(m.by_name.at("op.read").total_ns, 150u);
  EXPECT_EQ(m.by_name.at("op.write").count, 1u);
  EXPECT_EQ(m.by_name.at("op.write").total_ns, 10u);
}

TEST(Span, CombinedChromeJsonParsesWithFlows) {
  obs::TraceLog log(16);
  log.instant("src.seal", obs::kTrackSrc, 5, 1);
  obs::SpanTracer tr(1, 1.0);
  ASSERT_TRUE(tr.begin_op("op.write", 0));
  const u32 child = tr.begin_span("ssd.write", 10, 1);
  tr.end_span(child, 90, 8);
  tr.end_op(100, 8);

  const auto r = obs::parse_json(obs::combined_chrome_json(&log, &tr));
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const obs::JsonValue& v = r.value();
  ASSERT_TRUE(v.is_array());
  int slices = 0, flow_starts = 0, flow_ends = 0, instants = 0;
  for (const auto& e : v.array) {
    const std::string& ph = e.find("ph")->string;
    if (ph == "X") ++slices;
    if (ph == "s") ++flow_starts;
    if (ph == "f") ++flow_ends;
    if (ph == "i") ++instants;
  }
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(slices, 2);      // root + child
  EXPECT_EQ(flow_starts, 1);  // one parent->child arrow
  EXPECT_EQ(flow_ends, 1);
}

// --- SloWatchdog -----------------------------------------------------------

TEST(Slo, PolicyAnyAndThroughputBurn) {
  obs::SloPolicy off;
  EXPECT_FALSE(off.any());

  obs::SloPolicy p;
  p.min_throughput_mbps = 100.0;  // 100 MB/s floor
  p.error_budget = 0.5;
  ASSERT_TRUE(p.any());
  obs::SloWatchdog dog(p);
  common::Histogram none;
  // Epoch 0: 200 MB in 1 s = 200 MB/s -> ok. Epoch 1: +10 MB -> violation.
  dog.observe_epoch(sim::kSec, 100, 200'000'000, none, none, 0);
  dog.observe_epoch(2 * sim::kSec, 150, 210'000'000, none, none, 0);
  const obs::SloOutcome o = dog.outcome();
  EXPECT_TRUE(o.active);
  EXPECT_EQ(o.epochs, 2u);
  EXPECT_EQ(o.violations, 1u);
  ASSERT_EQ(o.verdicts.size(), 2u);
  EXPECT_TRUE(o.verdicts[0].ok);
  EXPECT_DOUBLE_EQ(o.verdicts[0].throughput_mbps, 200.0);
  EXPECT_FALSE(o.verdicts[1].ok);
  EXPECT_EQ(o.verdicts[1].violated, "throughput");
  EXPECT_EQ(o.verdicts[1].ops, 50u);  // cumulative input, delta verdict
  // burn = (1/2) / 0.5 = 1.0 -> not breached (budget exactly consumed).
  EXPECT_DOUBLE_EQ(o.burn_rate, 1.0);
  EXPECT_FALSE(o.breached);
}

TEST(Slo, LatencyP99IsWindowExact) {
  obs::SloPolicy p;
  p.max_read_p99_ms = 1.0;
  obs::SloWatchdog dog(p);
  common::Histogram reads, writes;
  // Epoch 0: all fast reads (~0.5 ms).
  for (int i = 0; i < 100; ++i) reads.record(500 * 1000);
  dog.observe_epoch(sim::kSec, 100, MiB, reads, writes, 0);
  // Epoch 1: the *new* samples are slow (~8 ms); a cumulative p99 would
  // still pass, the bucket-exact window delta must flag it.
  for (int i = 0; i < 100; ++i) reads.record(8 * 1000 * 1000);
  dog.observe_epoch(2 * sim::kSec, 200, 2 * MiB, reads, writes, 0);
  const obs::SloOutcome o = dog.outcome();
  ASSERT_EQ(o.verdicts.size(), 2u);
  EXPECT_TRUE(o.verdicts[0].ok);
  EXPECT_FALSE(o.verdicts[1].ok);
  EXPECT_EQ(o.verdicts[1].violated, "read_p99");
  EXPECT_GT(o.verdicts[1].read_p99_ms, 1.0);
}

TEST(Slo, DegradedDomainsAndBreach) {
  obs::SloPolicy p;
  p.max_degraded_domains = 0;
  p.error_budget = 0.1;
  obs::SloWatchdog dog(p);
  common::Histogram none;
  dog.observe_epoch(sim::kSec, 10, MiB, none, none, 0);
  dog.observe_epoch(2 * sim::kSec, 20, 2 * MiB, none, none, 1);
  dog.observe_epoch(3 * sim::kSec, 30, 3 * MiB, none, none, 2);
  const obs::SloOutcome o = dog.outcome();
  EXPECT_EQ(o.epochs, 3u);
  EXPECT_EQ(o.violations, 2u);
  EXPECT_EQ(o.degraded_epochs, 2u);
  EXPECT_EQ(o.verdicts[1].violated, "degraded");
  // burn = (2/3)/0.1 >> 1.
  EXPECT_TRUE(o.breached);
}

TEST(ObsEndToEnd, ChromeExportOfRealRunParses) {
  ObsRig rig;
  (void)rig.run();
  ASSERT_GT(rig.trace.size(), 0u);
  const auto r = obs::parse_json(rig.trace.to_chrome_json());
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const obs::JsonValue& v = r.value();
  ASSERT_TRUE(v.is_array());
  EXPECT_EQ(v.array.size(), rig.trace.size());
  double prev = -1.0;
  for (const auto& e : v.array) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.find("ts"), nullptr);
    EXPECT_GE(e.find("ts")->number, prev);
    prev = e.find("ts")->number;
  }
}

}  // namespace
}  // namespace srcache
