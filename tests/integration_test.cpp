// Cross-implementation property tests: every cache (SRC in several
// configurations, BcacheLike, FlashcacheLike) must preserve read-your-writes
// and never lose acknowledged data while healthy, under a randomized
// workload with verification through content tags.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <unordered_map>

#include "baselines/bcache_like.hpp"
#include "baselines/flashcache_like.hpp"
#include "block/mem_disk.hpp"
#include "common/rng.hpp"
#include "src_test_util.hpp"
#include "workload/runner.hpp"
#include "workload/trace_synth.hpp"

namespace srcache {
namespace {

using cache::AppRequest;
using cache::CacheDevice;

struct CacheRig {
  std::vector<std::unique_ptr<blockdev::MemDisk>> ssds;
  std::unique_ptr<blockdev::MemDisk> primary;
  std::unique_ptr<CacheDevice> cache;
  std::string name;
};

using RigFactory = std::function<std::unique_ptr<CacheRig>()>;

std::unique_ptr<CacheRig> make_devices(int num_ssds) {
  auto rig = std::make_unique<CacheRig>();
  blockdev::MemDiskConfig fast;
  fast.capacity_blocks = 8 * MiB / kBlockSize;
  fast.op_latency = 20 * sim::kUs;
  fast.bandwidth_mbps = 500.0;
  fast.flush_latency = 2 * sim::kMs;
  for (int i = 0; i < num_ssds; ++i)
    rig->ssds.push_back(std::make_unique<blockdev::MemDisk>(fast));
  blockdev::MemDiskConfig slow;
  slow.capacity_blocks = 256 * MiB / kBlockSize;
  slow.op_latency = 2 * sim::kMs;
  slow.bandwidth_mbps = 110.0;
  rig->primary = std::make_unique<blockdev::MemDisk>(slow);
  return rig;
}

RigFactory src_factory(src::SrcConfig cfg, const std::string& name) {
  return [cfg, name]() {
    auto rig = make_devices(static_cast<int>(cfg.num_ssds));
    std::vector<blockdev::BlockDevice*> devs;
    for (auto& s : rig->ssds) devs.push_back(s.get());
    auto c = std::make_unique<src::SrcCache>(cfg, devs, rig->primary.get());
    c->format(0);
    rig->cache = std::move(c);
    rig->name = name;
    return rig;
  };
}

RigFactory bcache_factory() {
  return []() {
    auto rig = make_devices(1);
    baselines::BcacheConfig cfg;
    cfg.cache_blocks = 1024;
    cfg.bucket_blocks = 128;
    rig->cache = std::make_unique<baselines::BcacheLike>(
        cfg, rig->ssds[0].get(), rig->primary.get());
    rig->name = "bcache";
    return rig;
  };
}

RigFactory flashcache_factory() {
  return []() {
    auto rig = make_devices(1);
    baselines::FlashcacheConfig cfg;
    cfg.cache_blocks = 1024;
    cfg.set_blocks = 128;
    rig->cache = std::make_unique<baselines::FlashcacheLike>(
        cfg, rig->ssds[0].get(), rig->primary.get());
    rig->name = "flashcache";
    return rig;
  };
}

std::vector<RigFactory> all_factories() {
  using src::CleanRedundancy;
  using src::GcPolicy;
  using src::SrcConfig;
  using src::SrcRaidLevel;
  using src::VictimPolicy;
  std::vector<RigFactory> out;
  SrcConfig base = src::testutil::small_config();
  for (auto raid : {SrcRaidLevel::kRaid0, SrcRaidLevel::kRaid1,
                    SrcRaidLevel::kRaid4, SrcRaidLevel::kRaid5}) {
    for (auto gc : {GcPolicy::kS2D, GcPolicy::kSelGc}) {
      SrcConfig cfg = base;
      cfg.raid = raid;
      cfg.gc = gc;
      cfg.victim = gc == GcPolicy::kSelGc ? VictimPolicy::kGreedy
                                          : VictimPolicy::kFifo;
      cfg.clean_redundancy = gc == GcPolicy::kSelGc ? CleanRedundancy::kNPC
                                                    : CleanRedundancy::kPC;
      out.push_back(src_factory(cfg, std::string("src_") +
                                         src::to_string(raid) + "_" +
                                         src::to_string(gc)));
    }
  }
  out.push_back(bcache_factory());
  out.push_back(flashcache_factory());
  return out;
}

class CacheProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(CacheProperty, ReadYourWritesUnderChurn) {
  auto rig = all_factories()[GetParam()]();
  common::Xoshiro256 rng(101 + GetParam());
  std::unordered_map<u64, u64> model;
  const u64 span = 3000;
  sim::SimTime t = 0;
  u64 version = 0;
  for (int i = 0; i < 6000; ++i) {
    const u64 lba = rng.below(span);
    const u32 n = static_cast<u32>(rng.range(1, 4));
    AppRequest req;
    req.now = t;
    req.lba = lba;
    req.nblocks = n;
    if (rng.chance(0.55)) {
      req.is_write = true;
      std::vector<u64> tags(n);
      for (u32 k = 0; k < n; ++k) {
        tags[k] = blockdev::make_tag(lba + k, ++version);
        model[lba + k] = tags[k];
      }
      req.tags = tags.data();
      t = rig->cache->submit(req);
    } else {
      std::vector<u64> out(n, 0);
      req.tags_out = out.data();
      t = rig->cache->submit(req);
      for (u32 k = 0; k < n; ++k) {
        auto it = model.find(lba + k);
        const u64 expect = it == model.end() ? 0 : it->second;
        ASSERT_EQ(out[k], expect)
            << rig->name << " lba " << lba + k << " op " << i;
      }
    }
    ASSERT_GE(t, req.now) << rig->name;
  }
}

TEST_P(CacheProperty, NoAcknowledgedWriteLostToPrimaryView) {
  // After a full drain (flush + read every block), the combination of cache
  // and primary must serve the newest acknowledged version of every block.
  auto rig = all_factories()[GetParam()]();
  common::Xoshiro256 rng(202 + GetParam());
  std::unordered_map<u64, u64> model;
  sim::SimTime t = 0;
  u64 version = 0;
  for (int i = 0; i < 3000; ++i) {
    const u64 lba = rng.below(2000);
    AppRequest req;
    req.now = t;
    req.lba = lba;
    req.nblocks = 1;
    req.is_write = true;
    const u64 tag = blockdev::make_tag(lba, ++version);
    req.tags = &tag;
    model[lba] = tag;
    t = rig->cache->submit(req);
  }
  t = rig->cache->flush(t);
  for (const auto& [lba, tag] : model) {
    AppRequest req;
    req.now = t;
    req.lba = lba;
    req.nblocks = 1;
    u64 out = 0;
    req.tags_out = &out;
    t = rig->cache->submit(req);
    ASSERT_EQ(out, tag) << rig->name << " lba " << lba;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCaches, CacheProperty,
                         ::testing::Range<size_t>(0, 10),
                         [](const auto& info) {
                           std::string n = all_factories()[info.param]()->name;
                           for (char& c : n)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

// --- full-stack smoke: SRC over simulated SSDs + iSCSI ----------------------------

TEST(Integration, TraceGroupRunsEndToEnd) {
  auto rig = make_devices(4);
  src::SrcConfig cfg = src::testutil::small_config();
  std::vector<blockdev::BlockDevice*> devs;
  for (auto& s : rig->ssds) devs.push_back(s.get());
  auto cache = std::make_unique<src::SrcCache>(cfg, devs, rig->primary.get());
  cache->format(0);

  workload::TraceSet set =
      workload::make_trace_set(workload::TraceGroup::kMixed, 64 * MiB, 7);
  workload::Runner runner(cache.get(), devs);
  workload::RunConfig rc;
  rc.threads_per_gen = 2;
  rc.iodepth = 2;
  rc.duration = 2 * sim::kSec;
  rc.max_ops = 20000;
  const auto res = runner.run(set.generators(), rc);
  EXPECT_GT(res.ops, 1000u);
  EXPECT_GT(res.throughput_mbps, 0.0);
  EXPECT_GT(res.io_amplification, 0.5);
  EXPECT_TRUE(cache->verify_consistency().is_ok())
      << cache->verify_consistency().to_string();
}

}  // namespace
}  // namespace srcache
